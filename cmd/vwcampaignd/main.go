// Command vwcampaignd runs fault-injection campaigns as a service: a
// daemon that accepts versioned campaign specs over an HTTP/JSON API,
// schedules them fairly across tenants within a shared worker budget,
// journals every run to disk, and streams results back to clients (see
// docs/SERVICE.md for the API).
//
//	vwcampaignd -dir /var/lib/vwcampaignd -listen 127.0.0.1:8047
//
// Determinism survives the daemon: a campaign's record stream is
// byte-identical to an in-process `vwcampaign` run of the same spec,
// even when the daemon is killed mid-campaign and restarted — the
// journal resumes at the first run it never recorded. SIGINT/SIGTERM
// shut down cleanly: running campaigns are interrupted without a
// terminal state, so the next start resumes them.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"virtualwire/campaign/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vwcampaignd:", err)
		os.Exit(1)
	}
}

func run() error {
	dir := flag.String("dir", "", "journal root directory (required); jobs live in <dir>/jobs/<id>/")
	listen := flag.String("listen", "127.0.0.1:8047", "HTTP listen address (port 0 picks a free port)")
	budget := flag.Int("budget", 0, "shared worker-slot budget across all jobs (0 = GOMAXPROCS)")
	workers := flag.Int("workers", 0, "default per-job worker grant (0 = the full budget)")
	flag.Parse()

	if *dir == "" {
		flag.Usage()
		return fmt.Errorf("-dir is required")
	}

	m, err := service.Open(service.Config{
		Dir:            *dir,
		Budget:         *budget,
		DefaultWorkers: *workers,
		Logf:           log.Printf,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		m.Close()
		return err
	}
	// The "listening on" line is machine-read (scripts/check.sh parses
	// the bound address out of it when -listen uses port 0).
	log.Printf("vwcampaignd: listening on %s (budget %d slots, %d cpus)",
		ln.Addr(), m.Budget(), runtime.GOMAXPROCS(0))

	srv := &http.Server{Handler: service.NewHandler(m)}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		m.Close()
		return err
	case <-ctx.Done():
	}

	log.Printf("vwcampaignd: shutting down (running campaigns stay resumable)")
	// Close the manager first: it interrupts executors and ends record
	// streams, letting Shutdown drain quickly.
	m.Close()
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return srv.Close()
	}
	return nil
}
