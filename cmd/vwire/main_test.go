package main

import "testing"

func TestParseTCPSpec(t *testing.T) {
	cfg, err := parseTCPSpec("node1:24576-node2:16384:81920")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if cfg.From != "node1" || cfg.To != "node2" {
		t.Errorf("hosts: %s -> %s", cfg.From, cfg.To)
	}
	if cfg.SrcPort != 24576 || cfg.DstPort != 16384 || cfg.Bytes != 81920 {
		t.Errorf("parsed %+v", cfg)
	}
	// Hex ports accepted.
	cfg, err = parseTCPSpec("a:0x6000-b:0x4000:1")
	if err != nil {
		t.Fatalf("hex parse: %v", err)
	}
	if cfg.SrcPort != 0x6000 || cfg.DstPort != 0x4000 {
		t.Errorf("hex ports: %#x %#x", cfg.SrcPort, cfg.DstPort)
	}
	for _, bad := range []string{"", "a:1", "a:1-b:2", "a-b:2:3", "a:x-b:2:3", "a:1-b:2:x"} {
		if _, err := parseTCPSpec(bad); err == nil {
			t.Errorf("parseTCPSpec(%q) succeeded", bad)
		}
	}
}

func TestParseEchoSpec(t *testing.T) {
	cfg, err := parseEchoSpec("node1-node2:9000:250")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if cfg.Client != "node1" || cfg.Server != "node2" ||
		cfg.ServerPort != 9000 || cfg.Count != 250 {
		t.Errorf("parsed %+v", cfg)
	}
	for _, bad := range []string{"", "a", "a-b", "a-b:1", "a-b:x:2", "a-b:1:x"} {
		if _, err := parseEchoSpec(bad); err == nil {
			t.Errorf("parseEchoSpec(%q) succeeded", bad)
		}
	}
}

func TestParsePortPair(t *testing.T) {
	sp, dp, err := parsePortPair("24576:16384")
	if err != nil || sp != 24576 || dp != 16384 {
		t.Errorf("parsed %d:%d err=%v", sp, dp, err)
	}
	for _, bad := range []string{"", "1", "1:2:3", "x:1", "1:x"} {
		if _, _, err := parsePortPair(bad); err == nil {
			t.Errorf("parsePortPair(%q) succeeded", bad)
		}
	}
}
