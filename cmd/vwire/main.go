// Command vwire runs an FSL scenario against a simulated testbed — the
// command-line face of the whole system. Hosts come from the script's
// NODE_TABLE; the workload and testbed shape come from flags.
//
// Examples:
//
//	# The paper's Section 6.1 TCP case study:
//	vwire -script scripts/fig5_tcp_ss_ca.fsl \
//	      -tcp node1:24576-node2:16384:81920
//
//	# The paper's Section 6.2 Rether case study:
//	vwire -script scripts/fig6_rether_failure.fsl -medium bus \
//	      -rether node1,node2,node3,node4 -rt 24576:16384 \
//	      -tcp node1:24576-node4:16384:4194304
//
// The exit status is 0 when the scenario passes (started, no FLAG_ERR,
// and an explicit STOP if the script declares an inactivity timeout).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"virtualwire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vwire:", err)
		os.Exit(1)
	}
}

func run() error {
	scriptPath := flag.String("script", "", "FSL scenario file (required)")
	medium := flag.String("medium", "switch", "testbed medium: switch, bus or fdswitch")
	seed := flag.Int64("seed", 1, "simulation seed")
	rll := flag.Bool("rll", false, "insert the Reliable Link Layer")
	ber := flag.Float64("ber", 0, "wire bit error rate (use with -rll)")
	horizon := flag.Duration("horizon", 60*time.Second, "maximum virtual run time")
	retherRing := flag.String("rether", "", "comma-separated ring order to run Rether on")
	rtStream := flag.String("rt", "", "srcport:dstport marked real-time for Rether")
	tcpSpec := flag.String("tcp", "", "TCP bulk workload: from:port-to:port:bytes")
	echoSpec := flag.String("echo", "", "UDP echo workload: client-server:port:count")
	showTrace := flag.Bool("trace", false, "print the captured packet trace")
	showSummary := flag.Bool("summary", false, "print the per-node engine/protocol summary")
	scenario := flag.String("scenario", "", "scenario name to run from a multi-scenario script")
	pcapPath := flag.String("pcap", "", "write a tcpdump-compatible capture of the control node's interface to this file")
	showTables := flag.Bool("tables", false, "print the compiled six tables before running")
	counters := flag.String("counters", "", "comma-separated node:counter values to print after the run")
	metricsOut := flag.String("metrics-out", "", "write the sampled metrics time series to this file (.json, .csv or .prom by extension)")
	metricsInterval := flag.Duration("metrics-interval", 50*time.Millisecond, "virtual-time sampling interval for -metrics-out")
	flag.Parse()

	if *scriptPath == "" {
		flag.Usage()
		return fmt.Errorf("-script is required")
	}
	src, err := os.ReadFile(*scriptPath)
	if err != nil {
		return err
	}
	script := string(src)

	cfg := virtualwire.Config{Seed: *seed, RLL: *rll, BitErrorRate: *ber}
	switch *medium {
	case "switch":
		cfg.Medium = virtualwire.MediumSwitch
	case "bus":
		cfg.Medium = virtualwire.MediumBus
	case "fdswitch":
		cfg.Medium = virtualwire.MediumSwitchFullDuplex
	default:
		return fmt.Errorf("unknown -medium %q", *medium)
	}
	if *showTrace {
		cfg.TraceCapacity = 100000
	}
	if *metricsOut != "" {
		cfg.MetricsSampleInterval = *metricsInterval
	}
	var pcapFile *os.File
	if *pcapPath != "" {
		pcapFile, err = os.Create(*pcapPath)
		if err != nil {
			return err
		}
		defer pcapFile.Close()
		cfg.Pcap = pcapFile
	}
	tb, err := virtualwire.New(cfg)
	if err != nil {
		return err
	}
	if err := tb.AddNodesFromScript(script); err != nil {
		return err
	}
	if *retherRing != "" {
		ring := strings.Split(*retherRing, ",")
		if err := tb.InstallRether(ring, virtualwire.RetherConfig{}); err != nil {
			return err
		}
	}
	if *rtStream != "" {
		sp, dp, err := parsePortPair(*rtStream)
		if err != nil {
			return fmt.Errorf("-rt: %w", err)
		}
		tb.AddRTStream(sp, dp)
	}
	if *scenario != "" {
		if err := tb.LoadScriptScenario(script, *scenario); err != nil {
			return err
		}
	} else if err := tb.LoadScript(script); err != nil {
		return err
	}
	if *showTables {
		fmt.Println(tb.DumpTables())
	}

	var bulk *virtualwire.TCPBulk
	if *tcpSpec != "" {
		bc, err := parseTCPSpec(*tcpSpec)
		if err != nil {
			return fmt.Errorf("-tcp: %w", err)
		}
		bulk, err = tb.AddTCPBulk(bc)
		if err != nil {
			return err
		}
	}
	var echo *virtualwire.UDPEcho
	if *echoSpec != "" {
		ec, err := parseEchoSpec(*echoSpec)
		if err != nil {
			return fmt.Errorf("-echo: %w", err)
		}
		echo, err = tb.AddUDPEcho(ec)
		if err != nil {
			return err
		}
	}

	rep, err := tb.Run(*horizon)
	if err != nil {
		return err
	}

	fmt.Printf("scenario: %s\n", rep.Result)
	if rep.Result.LaunchFailed {
		fmt.Printf("launch failed; unreachable nodes: %s\n", strings.Join(rep.Unreachable, ", "))
	}
	fmt.Printf("virtual time: %v, events: %d\n", rep.Duration, rep.Events)
	for _, e := range rep.Result.Errors {
		fmt.Printf("  error: %s\n", e)
	}
	if bulk != nil {
		fmt.Printf("tcp: delivered %d bytes, goodput %.1f Mbps, retransmissions %d\n",
			bulk.DeliveredBytes(), bulk.GoodputBitsPerSecond()/1e6,
			bulk.SenderStats().Retransmissions)
	}
	if echo != nil {
		fmt.Printf("echo: %d/%d round trips, mean RTT %v\n",
			echo.Received(), echo.Sent(), echo.MeanRTT())
	}
	if *counters != "" {
		for _, spec := range strings.Split(*counters, ",") {
			parts := strings.SplitN(strings.TrimSpace(spec), ":", 2)
			if len(parts) != 2 {
				return fmt.Errorf("-counters entry %q: want node:counter", spec)
			}
			node, ok := tb.Node(parts[0])
			if !ok {
				return fmt.Errorf("-counters: unknown node %q", parts[0])
			}
			v, ok := node.CounterValue(parts[1])
			if !ok {
				return fmt.Errorf("-counters: node %s has no counter %q", parts[0], parts[1])
			}
			fmt.Printf("counter %s:%s = %d\n", parts[0], parts[1], v)
		}
	}
	if *showTrace {
		fmt.Println("--- trace ---")
		for _, e := range tb.Trace() {
			fmt.Println(e)
		}
	}
	if *showSummary {
		fmt.Println("--- summary ---")
		fmt.Print(rep.Text())
	}
	if *metricsOut != "" {
		if err := writeMetrics(tb, *metricsOut); err != nil {
			return err
		}
		fmt.Printf("metrics written to %s (%d instruments, %d sampled points)\n",
			*metricsOut, rep.Metrics.Instruments, rep.Metrics.SampledPoints)
	}
	if pcapFile != nil {
		fmt.Printf("pcap capture written to %s\n", *pcapPath)
	}
	if !rep.Passed {
		return fmt.Errorf("scenario FAILED")
	}
	fmt.Println("scenario PASSED")
	return nil
}

// writeMetrics exports the run's metrics series, choosing the format
// from the file extension (.csv, .prom/.prometheus/.txt, default JSON).
func writeMetrics(tb *virtualwire.Testbed, path string) error {
	format := "json"
	switch strings.ToLower(filepath.Ext(path)) {
	case ".csv":
		format = "csv"
	case ".prom", ".prometheus", ".txt":
		format = "prom"
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tb.WriteMetricsFile(f, format); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parsePortPair(s string) (uint16, uint16, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want srcport:dstport")
	}
	sp, err := strconv.ParseUint(parts[0], 0, 16)
	if err != nil {
		return 0, 0, err
	}
	dp, err := strconv.ParseUint(parts[1], 0, 16)
	if err != nil {
		return 0, 0, err
	}
	return uint16(sp), uint16(dp), nil
}

// parseTCPSpec parses from:port-to:port:bytes.
func parseTCPSpec(s string) (virtualwire.TCPBulkConfig, error) {
	var cfg virtualwire.TCPBulkConfig
	halves := strings.SplitN(s, "-", 2)
	if len(halves) != 2 {
		return cfg, fmt.Errorf("want from:port-to:port:bytes")
	}
	fp := strings.Split(halves[0], ":")
	tp := strings.Split(halves[1], ":")
	if len(fp) != 2 || len(tp) != 3 {
		return cfg, fmt.Errorf("want from:port-to:port:bytes")
	}
	sport, err := strconv.ParseUint(fp[1], 0, 16)
	if err != nil {
		return cfg, err
	}
	dport, err := strconv.ParseUint(tp[1], 0, 16)
	if err != nil {
		return cfg, err
	}
	bytes, err := strconv.Atoi(tp[2])
	if err != nil {
		return cfg, err
	}
	cfg.From, cfg.To = fp[0], tp[0]
	cfg.SrcPort, cfg.DstPort = uint16(sport), uint16(dport)
	cfg.Bytes = bytes
	return cfg, nil
}

// parseEchoSpec parses client-server:port:count.
func parseEchoSpec(s string) (virtualwire.UDPEchoConfig, error) {
	var cfg virtualwire.UDPEchoConfig
	halves := strings.SplitN(s, "-", 2)
	if len(halves) != 2 {
		return cfg, fmt.Errorf("want client-server:port:count")
	}
	sp := strings.Split(halves[1], ":")
	if len(sp) != 3 {
		return cfg, fmt.Errorf("want client-server:port:count")
	}
	port, err := strconv.ParseUint(sp[1], 0, 16)
	if err != nil {
		return cfg, err
	}
	count, err := strconv.Atoi(sp[2])
	if err != nil {
		return cfg, err
	}
	cfg.Client, cfg.Server = halves[0], sp[0]
	cfg.ServerPort = uint16(port)
	cfg.Count = count
	return cfg, nil
}
