// Command vwregress is the paper's envisioned fully automated regression
// workflow (Section 8) as a tool: it *generates* fault scenarios for a
// target packet stream — one per (fault kind, occurrence) — and runs
// each against a fresh testbed carrying a TCP bulk transfer. A case
// passes when the stream keeps flowing after the injected fault (the
// generated script STOPs); it fails on an analysis error or when the
// connection goes quiet (inactivity timeout).
//
//	vwregress -prologue scripts/prologue_tcp.fsl \
//	    -type TCP_data -from node1 -to node2 -dir RECV \
//	    -srcport 0x6000 -dstport 0x4000 -bytes 262144 \
//	    -faults drop,delay,dup,modify,reorder -occurrences 1,2,10
//
// Exit status is non-zero if any case fails.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"virtualwire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vwregress:", err)
		os.Exit(1)
	}
}

func run() error {
	prologuePath := flag.String("prologue", "", "FSL file with FILTER_TABLE and NODE_TABLE (required)")
	pktType := flag.String("type", "", "target packet type (required)")
	from := flag.String("from", "", "stream source host (required)")
	to := flag.String("to", "", "stream destination host (required)")
	dir := flag.String("dir", "RECV", "observation side: SEND or RECV")
	faults := flag.String("faults", "drop,delay,dup,modify,reorder", "comma-separated fault kinds")
	occurrences := flag.String("occurrences", "1,2,10", "comma-separated packet indices to hit")
	continueCount := flag.Int("continue", 20, "packets that must flow after the fault to pass")
	srcPort := flag.Uint("srcport", 0x6000, "TCP workload source port")
	dstPort := flag.Uint("dstport", 0x4000, "TCP workload destination port")
	bytes := flag.Int("bytes", 256*1024, "TCP workload size")
	seed := flag.Int64("seed", 1, "base simulation seed")
	horizon := flag.Duration("horizon", 2*time.Minute, "per-case virtual time limit")
	flag.Parse()

	if *prologuePath == "" || *pktType == "" || *from == "" || *to == "" {
		flag.Usage()
		return fmt.Errorf("-prologue, -type, -from and -to are required")
	}
	prologue, err := os.ReadFile(*prologuePath)
	if err != nil {
		return err
	}
	var kinds []virtualwire.FaultKind
	for _, f := range strings.Split(*faults, ",") {
		kinds = append(kinds, virtualwire.FaultKind(strings.ToUpper(strings.TrimSpace(f))))
	}
	var occs []int
	for _, o := range strings.Split(*occurrences, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(o))
		if err != nil {
			return fmt.Errorf("-occurrences: %w", err)
		}
		occs = append(occs, v)
	}

	scenarios, err := virtualwire.GenerateScenarios(virtualwire.GenConfig{
		Prologue:      string(prologue),
		PacketType:    *pktType,
		From:          *from,
		To:            *to,
		Dir:           strings.ToUpper(*dir),
		Faults:        kinds,
		Occurrences:   occs,
		ContinueCount: *continueCount,
	})
	if err != nil {
		return err
	}
	fmt.Printf("generated %d scenarios for %s %s->%s %s\n\n",
		len(scenarios), *pktType, *from, *to, strings.ToUpper(*dir))

	failures := 0
	for i, sc := range scenarios {
		verdict, detail, err := runCase(*seed+int64(i), sc.Script, caseParams{
			from: *from, to: *to,
			srcPort: uint16(*srcPort), dstPort: uint16(*dstPort),
			bytes: *bytes, horizon: *horizon,
		})
		if err != nil {
			return fmt.Errorf("%s: %w", sc.Name, err)
		}
		fmt.Printf("  %-30s %-5s %s\n", sc.Name, verdict, detail)
		if verdict != "PASS" {
			failures++
		}
	}
	fmt.Printf("\n%d/%d passed\n", len(scenarios)-failures, len(scenarios))
	if failures > 0 {
		return fmt.Errorf("%d case(s) failed", failures)
	}
	return nil
}

type caseParams struct {
	from, to         string
	srcPort, dstPort uint16
	bytes            int
	horizon          time.Duration
}

func runCase(seed int64, script string, p caseParams) (verdict, detail string, err error) {
	tb, err := virtualwire.New(virtualwire.Config{Seed: seed})
	if err != nil {
		return "", "", err
	}
	if err := tb.AddNodesFromScript(script); err != nil {
		return "", "", err
	}
	if err := tb.LoadScript(script); err != nil {
		return "", "", err
	}
	bulk, err := tb.AddTCPBulk(virtualwire.TCPBulkConfig{
		From: p.from, To: p.to,
		SrcPort: p.srcPort, DstPort: p.dstPort,
		Bytes: p.bytes,
	})
	if err != nil {
		return "", "", err
	}
	rep, err := tb.Run(p.horizon)
	if err != nil {
		return "", "", err
	}
	detail = fmt.Sprintf("(%d bytes, %d rtx, %v)",
		bulk.DeliveredBytes(), bulk.SenderStats().Retransmissions, rep.Result)
	if rep.Passed && rep.Result.Stopped {
		return "PASS", detail, nil
	}
	return "FAIL", detail, nil
}
