// Command vwcampaign executes a scenario matrix — a campaign — across a
// bounded worker pool, streaming one JSON record per run to a JSONL
// file and printing an aggregate summary. Equal specs and seeds give
// byte-identical output at any -workers value.
//
// The matrix comes either from a JSON spec file (-spec, see
// docs/CAMPAIGNS.md for the schema) or from quick flags that cross a
// script with a seed axis and an optional bit-error-rate axis:
//
//	# 1000 runs: 250 seeds x 4 bit error rates, 8 workers:
//	vwcampaign -script scripts/quickstart_drop.fsl \
//	    -tcp node1:0x6000-node2:0x4000:65536 \
//	    -seeds 250 -ber 0,1e-7,1e-6,1e-5 -workers 8 \
//	    -out runs.jsonl -summary text
//
//	# Same matrix from a spec file, JSON summary:
//	vwcampaign -spec campaign.json -out runs.jsonl -summary json
//
// With -addr the same campaign is submitted to a vwcampaignd daemon
// instead of running in-process; records stream back over HTTP into
// -out with the same bytes an in-process run would write (see
// docs/SERVICE.md):
//
//	vwcampaign -addr 127.0.0.1:8047 -spec campaign.json -out runs.jsonl
//	vwcampaign -addr 127.0.0.1:8047 -spec campaign.json -detach   # prints the job id
//	vwcampaign -addr 127.0.0.1:8047 -status j000001
//	vwcampaign -addr 127.0.0.1:8047 -attach j000001 -out runs.jsonl
//	vwcampaign -addr 127.0.0.1:8047 -cancel j000001
//
// The exit status is 0 when every run completed and passed, 1 on a
// campaign-level failure, and 2 when runs failed or were cut short.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"virtualwire"
	"virtualwire/campaign"
	"virtualwire/campaign/service"
	"virtualwire/internal/profiling"
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vwcampaign:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

func run() (code int, retErr error) {
	specPath := flag.String("spec", "", "JSON campaign spec file (alternative to the quick flags)")
	scriptPath := flag.String("script", "", "FSL scenario file for a quick-flag campaign")
	scenario := flag.String("scenario", "", "scenario name from a multi-scenario script")
	nodesPath := flag.String("nodes", "", "FSL file supplying the NODE_TABLE (default: the script)")
	seed := flag.Int64("seed", 1, "campaign master seed")
	seeds := flag.Int("seeds", 1, "seed axis size (per-run seeds derive from -seed and the run index)")
	bers := flag.String("ber", "", "comma-separated bit error rates forming the config axis")
	rll := flag.Bool("rll", false, "insert the Reliable Link Layer in every run")
	medium := flag.String("medium", "", "testbed medium: switch, bus or fdswitch")
	tcpSpec := flag.String("tcp", "", "TCP bulk workload: from:port-to:port:bytes")
	echoSpec := flag.String("echo", "", "UDP echo workload: client-server:port:count")
	hosts := flag.Int("hosts", 0, "scriptless runs over this many generated hosts (alternative to -script)")
	topology := flag.String("topology", "", "multi-switch fabric: kind[:switches], kind = star, ring, fattree or random")
	classifier := flag.String("classifier", "", "classifier strategy: linear, indexed, compiled or auto")
	incastSpec := flag.String("incast", "", "incast workload: senders:bytes (N-to-1 onto the first host)")
	manyflowSpec := flag.String("manyflow", "", "many-flow workload: flows:bytes (random pairs across all hosts)")
	horizon := flag.Duration("horizon", 60*time.Second, "virtual-time horizon per run")
	timeout := flag.Duration("timeout", 0, "wall-clock timeout per run (0 = none)")
	retries := flag.Int("retries", 0, "extra attempts for transiently failing runs")
	workers := flag.Int("workers", 0, "concurrent runs (0 = GOMAXPROCS; never affects output bytes)")
	outPath := flag.String("out", "", "write one JSON record per run to this JSONL file")
	summaryMode := flag.String("summary", "text", "summary format: text, json or none")
	summaryOut := flag.String("summary-out", "", "write the summary here instead of stdout")
	progress := flag.Bool("progress", false, "print per-run progress lines to stderr")
	shardsFlag := flag.String("shards", "", "sharded engine for quick-flag campaigns: a shard count or auto (empty = legacy)")
	trunkFail := flag.String("trunk-fail", "", "comma-separated trunk failures idx@at (e.g. 0@500ms; requires -topology)")
	trunkFlap := flag.String("trunk-flap", "", "comma-separated trunk flaps idx@at:period:count (e.g. 0@500ms:200ms:3; requires -topology)")
	addr := flag.String("addr", "", "vwcampaignd address (host:port or URL): submit to the daemon instead of running in-process")
	tenant := flag.String("tenant", "", "tenant name for daemon submissions (requires -addr)")
	detach := flag.Bool("detach", false, "submit to the daemon and print the job id without waiting (requires -addr)")
	attachID := flag.String("attach", "", "attach to an existing daemon job: stream its records and summary (requires -addr)")
	statusID := flag.String("status", "", "print a daemon job's status as JSON and exit (requires -addr)")
	cancelID := flag.String("cancel", "", "cancel a daemon job and exit (requires -addr)")
	var prof profiling.Flags
	prof.Register()
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		return 1, err
	}
	defer func() {
		if err := stopProf(); err != nil && retErr == nil {
			code, retErr = 1, err
		}
	}()

	// SIGINT/SIGTERM cancel the campaign (or the remote stream);
	// finished records stay flushed.
	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSig()

	if *addr == "" && (*tenant != "" || *detach || *attachID != "" || *statusID != "" || *cancelID != "") {
		return 1, fmt.Errorf("-tenant, -detach, -attach, -status and -cancel require -addr")
	}
	if *addr != "" {
		// Job-management modes need no spec at all.
		c := service.NewClient(*addr)
		switch {
		case *cancelID != "":
			st, err := c.Cancel(ctx, *cancelID)
			if err != nil {
				return 1, err
			}
			return 0, printJobStatus(st)
		case *statusID != "":
			st, err := c.Status(ctx, *statusID)
			if err != nil {
				return 1, err
			}
			return 0, printJobStatus(st)
		case *attachID != "":
			return attachJob(ctx, c, *attachID, *outPath, *progress, *summaryMode, *summaryOut)
		}
	}

	var spec campaign.Spec
	switch {
	case *specPath != "":
		if *scriptPath != "" || *hosts > 0 {
			return 1, fmt.Errorf("-spec is exclusive with -script and -hosts")
		}
		raw, err := os.ReadFile(*specPath)
		if err != nil {
			return 1, err
		}
		parsed, err := campaign.ParseSpec(raw)
		if err != nil {
			return 1, fmt.Errorf("%s: %w", *specPath, err)
		}
		spec = *parsed
	case *scriptPath != "" || *hosts > 0:
		spec = campaign.Spec{
			Name:      strings.TrimSuffix(*scriptPath, ".fsl"),
			Seed:      *seed,
			SeedCount: *seeds,
			Scenario:  *scenario,
			Horizon:   campaign.Duration(*horizon),
			Timeout:   campaign.Duration(*timeout),
			Retries:   *retries,
			Hosts:     *hosts,
		}
		if *scriptPath != "" {
			src, err := os.ReadFile(*scriptPath)
			if err != nil {
				return 1, err
			}
			spec.Script = string(src)
		} else {
			spec.Name = fmt.Sprintf("hosts%d", *hosts)
		}
		if *nodesPath != "" {
			nsrc, err := os.ReadFile(*nodesPath)
			if err != nil {
				return 1, err
			}
			spec.Nodes = string(nsrc)
		}
		if *bers != "" {
			for _, f := range strings.Split(*bers, ",") {
				v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
				if err != nil {
					return 1, fmt.Errorf("-ber: %w", err)
				}
				ber := v
				spec.Configs = append(spec.Configs, campaign.ConfigOverride{
					Label:        "ber=" + f,
					Medium:       *medium,
					BitErrorRate: &ber,
				})
			}
		} else if *medium != "" || *rll {
			spec.Configs = []campaign.ConfigOverride{{Medium: *medium}}
		}
		if *rll {
			on := true
			for i := range spec.Configs {
				spec.Configs[i].RLL = &on
			}
		}
		if *topology != "" || *classifier != "" {
			if len(spec.Configs) == 0 {
				spec.Configs = []campaign.ConfigOverride{{Medium: *medium}}
			}
			var topo *campaign.TopologyOverride
			if *topology != "" {
				var err error
				if topo, err = parseTopology(*topology); err != nil {
					return 1, fmt.Errorf("-topology: %w", err)
				}
			}
			for i := range spec.Configs {
				spec.Configs[i].Classifier = *classifier
				spec.Configs[i].Topology = topo
			}
		}
		if *tcpSpec != "" {
			wl, err := parseTCPSpec(*tcpSpec)
			if err != nil {
				return 1, fmt.Errorf("-tcp: %w", err)
			}
			spec.Workloads = append(spec.Workloads, wl)
		}
		if *echoSpec != "" {
			wl, err := parseEchoSpec(*echoSpec)
			if err != nil {
				return 1, fmt.Errorf("-echo: %w", err)
			}
			spec.Workloads = append(spec.Workloads, wl)
		}
		if *incastSpec != "" {
			wl, err := parseCountBytes("incast", *incastSpec)
			if err != nil {
				return 1, fmt.Errorf("-incast: %w", err)
			}
			spec.Workloads = append(spec.Workloads, wl)
		}
		if *manyflowSpec != "" {
			wl, err := parseCountBytes("manyflow", *manyflowSpec)
			if err != nil {
				return 1, fmt.Errorf("-manyflow: %w", err)
			}
			spec.Workloads = append(spec.Workloads, wl)
		}
		if *trunkFail != "" || *trunkFlap != "" {
			if *topology == "" {
				return 1, fmt.Errorf("-trunk-fail/-trunk-flap require -topology")
			}
			faults, err := parseTrunkFaults(*trunkFail, *trunkFlap)
			if err != nil {
				return 1, err
			}
			for i := range spec.Configs {
				spec.Configs[i].TrunkFaults = faults
			}
		}
		if *shardsFlag != "" {
			k, err := parseShards(*shardsFlag)
			if err != nil {
				return 1, fmt.Errorf("-shards: %w", err)
			}
			if len(spec.Configs) == 0 {
				spec.Configs = []campaign.ConfigOverride{{Medium: *medium}}
			}
			for i := range spec.Configs {
				sh := k
				spec.Configs[i].Shards = &sh
			}
		}
	default:
		flag.Usage()
		return 1, fmt.Errorf("one of -spec, -script or -hosts is required")
	}

	// One normalization path for every consumer: quick flags, -spec and
	// the daemon all run the same canonical spec (campaign.Normalize),
	// so the journal's spec hash is stable however the spec arrived.
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return 1, err
	}

	if *addr != "" {
		raw, err := json.Marshal(&spec)
		if err != nil {
			return 1, err
		}
		c := service.NewClient(*addr)
		st, err := c.Submit(ctx, *tenant, raw, *workers)
		if err != nil {
			return 1, err
		}
		if *detach {
			fmt.Println(st.ID)
			return 0, nil
		}
		fmt.Fprintf(os.Stderr, "vwcampaign: submitted %s (%d runs) to %s\n", st.ID, st.Runs, *addr)
		return attachJob(ctx, c, st.ID, *outPath, *progress, *summaryMode, *summaryOut)
	}

	opts := campaign.Options{Workers: *workers}
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return 1, err
		}
		defer f.Close()
		opts.Sink = f
	}
	total := spec.Runs()
	if *progress {
		opts.OnRecord = func(r campaign.RunRecord) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %-30s %s (seed %d, %d attempt(s))\n",
				r.Index+1, total, r.Label, r.Outcome, r.Seed, r.Attempts)
		}
	}

	sum, runErr := campaign.Run(ctx, spec, opts)
	if sum == nil {
		return 1, runErr
	}

	out := os.Stdout
	if *summaryOut != "" {
		f, err := os.Create(*summaryOut)
		if err != nil {
			return 1, err
		}
		defer f.Close()
		out = f
	}
	switch *summaryMode {
	case "text":
		fmt.Fprint(out, sum.Text())
	case "json":
		if err := sum.WriteJSON(out); err != nil {
			return 1, err
		}
	case "none":
	default:
		return 1, fmt.Errorf("unknown -summary %q (want text, json or none)", *summaryMode)
	}

	if runErr != nil {
		return 2, fmt.Errorf("campaign interrupted: %w", runErr)
	}
	if sum.Passed != sum.Runs {
		return 2, nil
	}
	return 0, nil
}

// printJobStatus writes one job status as indented JSON to stdout.
func printJobStatus(st service.JobStatus) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(st)
}

// attachJob follows a daemon job to completion: records stream into
// -out (byte-identical to an in-process run), progress goes to stderr,
// and the final summary prints per -summary. Exit codes mirror the
// in-process path.
func attachJob(ctx context.Context, c *service.Client, id, outPath string, progress bool, summaryMode, summaryOut string) (int, error) {
	st, err := c.Status(ctx, id)
	if err != nil {
		return 1, err
	}
	var sink *os.File
	if outPath != "" {
		if sink, err = os.Create(outPath); err != nil {
			return 1, err
		}
		defer sink.Close()
	}
	var onRecord func(campaign.RunRecord)
	if progress {
		onRecord = func(r campaign.RunRecord) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %-30s %s (seed %d, %d attempt(s))\n",
				r.Index+1, st.Runs, r.Label, r.Outcome, r.Seed, r.Attempts)
		}
	}
	var sinkW io.Writer
	if sink != nil {
		sinkW = sink
	}
	if err := c.StreamRecords(ctx, id, sinkW, onRecord); err != nil {
		return 1, err
	}
	sum, err := c.Summary(ctx, id, true)
	if err != nil {
		return 1, err
	}
	final, err := c.Status(ctx, id)
	if err != nil {
		return 1, err
	}

	out := os.Stdout
	if summaryOut != "" {
		f, err := os.Create(summaryOut)
		if err != nil {
			return 1, err
		}
		defer f.Close()
		out = f
	}
	if sum != nil {
		switch summaryMode {
		case "text":
			fmt.Fprint(out, sum.Text())
		case "json":
			if err := sum.WriteJSON(out); err != nil {
				return 1, err
			}
		case "none":
		default:
			return 1, fmt.Errorf("unknown -summary %q (want text, json or none)", summaryMode)
		}
	}

	switch final.State {
	case service.StateDone:
		if final.Failed > 0 {
			return 2, nil
		}
		return 0, nil
	case service.StateFailed:
		return 1, fmt.Errorf("job %s failed: %s", id, final.Error)
	default:
		return 2, fmt.Errorf("campaign interrupted: job %s ended %s after %d/%d runs", id, final.State, final.Completed, final.Runs)
	}
}

// parseTCPSpec parses from:port-to:port:bytes (ports accept 0x...).
func parseTCPSpec(s string) (campaign.WorkloadSpec, error) {
	var wl campaign.WorkloadSpec
	halves := strings.SplitN(s, "-", 2)
	if len(halves) != 2 {
		return wl, fmt.Errorf("want from:port-to:port:bytes")
	}
	fp := strings.Split(halves[0], ":")
	tp := strings.Split(halves[1], ":")
	if len(fp) != 2 || len(tp) != 3 {
		return wl, fmt.Errorf("want from:port-to:port:bytes")
	}
	sport, err := strconv.ParseUint(fp[1], 0, 16)
	if err != nil {
		return wl, err
	}
	dport, err := strconv.ParseUint(tp[1], 0, 16)
	if err != nil {
		return wl, err
	}
	bytes, err := strconv.Atoi(tp[2])
	if err != nil {
		return wl, err
	}
	wl.Kind = "tcpbulk"
	wl.From, wl.To = fp[0], tp[0]
	wl.SrcPort, wl.DstPort = uint16(sport), uint16(dport)
	wl.Bytes = bytes
	return wl, nil
}

// parseShards parses -shards: "auto" or a non-negative shard count.
func parseShards(s string) (int, error) {
	if s == "auto" {
		return virtualwire.ShardsAuto, nil
	}
	k, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	if k < 0 {
		return 0, fmt.Errorf("want auto or a non-negative count, got %d", k)
	}
	return k, nil
}

// parseTopology parses kind[:switches].
func parseTopology(s string) (*campaign.TopologyOverride, error) {
	parts := strings.SplitN(s, ":", 2)
	topo := &campaign.TopologyOverride{Kind: parts[0]}
	if len(parts) == 2 {
		n, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, err
		}
		if topo.Kind == "fattree" {
			topo.FatTreeK = n
		} else {
			topo.Switches = n
		}
	}
	return topo, nil
}

// parseTrunkFaults parses the -trunk-fail (idx@at) and -trunk-flap
// (idx@at:period:count) lists into one fault schedule.
func parseTrunkFaults(fail, flap string) ([]campaign.TrunkFault, error) {
	var out []campaign.TrunkFault
	split := func(item string) (int, []string, error) {
		halves := strings.SplitN(item, "@", 2)
		if len(halves) != 2 {
			return 0, nil, fmt.Errorf("want idx@at[:...], got %q", item)
		}
		idx, err := strconv.Atoi(halves[0])
		if err != nil {
			return 0, nil, fmt.Errorf("%q: %w", item, err)
		}
		return idx, strings.Split(halves[1], ":"), nil
	}
	if fail != "" {
		for _, item := range strings.Split(fail, ",") {
			idx, parts, err := split(strings.TrimSpace(item))
			if err != nil {
				return nil, fmt.Errorf("-trunk-fail: %w", err)
			}
			if len(parts) != 1 {
				return nil, fmt.Errorf("-trunk-fail: want idx@at, got %q", item)
			}
			at, err := time.ParseDuration(parts[0])
			if err != nil {
				return nil, fmt.Errorf("-trunk-fail: %q: %w", item, err)
			}
			out = append(out, campaign.TrunkFault{Kind: "trunk_down", Trunk: idx, At: campaign.Duration(at)})
		}
	}
	if flap != "" {
		for _, item := range strings.Split(flap, ",") {
			idx, parts, err := split(strings.TrimSpace(item))
			if err != nil {
				return nil, fmt.Errorf("-trunk-flap: %w", err)
			}
			if len(parts) != 3 {
				return nil, fmt.Errorf("-trunk-flap: want idx@at:period:count, got %q", item)
			}
			at, err := time.ParseDuration(parts[0])
			if err != nil {
				return nil, fmt.Errorf("-trunk-flap: %q: %w", item, err)
			}
			period, err := time.ParseDuration(parts[1])
			if err != nil {
				return nil, fmt.Errorf("-trunk-flap: %q: %w", item, err)
			}
			count, err := strconv.Atoi(parts[2])
			if err != nil {
				return nil, fmt.Errorf("-trunk-flap: %q: %w", item, err)
			}
			out = append(out, campaign.TrunkFault{
				Kind: "trunk_flap", Trunk: idx,
				At: campaign.Duration(at), Period: campaign.Duration(period), Count: count,
			})
		}
	}
	return out, nil
}

// parseCountBytes parses count:bytes into an incast/manyflow workload.
func parseCountBytes(kind, s string) (campaign.WorkloadSpec, error) {
	var wl campaign.WorkloadSpec
	parts := strings.Split(s, ":")
	if len(parts) != 2 {
		return wl, fmt.Errorf("want count:bytes")
	}
	count, err := strconv.Atoi(parts[0])
	if err != nil {
		return wl, err
	}
	bytes, err := strconv.Atoi(parts[1])
	if err != nil {
		return wl, err
	}
	wl.Kind = kind
	wl.Bytes = bytes
	if kind == "manyflow" {
		wl.Flows = count
	} else {
		wl.Count = count
	}
	return wl, nil
}

// parseEchoSpec parses client-server:port:count.
func parseEchoSpec(s string) (campaign.WorkloadSpec, error) {
	var wl campaign.WorkloadSpec
	halves := strings.SplitN(s, "-", 2)
	if len(halves) != 2 {
		return wl, fmt.Errorf("want client-server:port:count")
	}
	sp := strings.Split(halves[1], ":")
	if len(sp) != 3 {
		return wl, fmt.Errorf("want client-server:port:count")
	}
	port, err := strconv.ParseUint(sp[1], 0, 16)
	if err != nil {
		return wl, err
	}
	count, err := strconv.Atoi(sp[2])
	if err != nil {
		return wl, err
	}
	wl.Kind = "udpecho"
	wl.From, wl.To = halves[0], sp[0]
	wl.DstPort = uint16(port)
	wl.Count = count
	return wl, nil
}
