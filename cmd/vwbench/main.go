// Command vwbench regenerates the paper's evaluation figures on the
// simulated testbed and prints them as tables:
//
//	vwbench -fig 7          # TCP throughput vs offered load (Figure 7)
//	vwbench -fig 8          # UDP echo RTT overhead vs #filters (Figure 8)
//	vwbench -fig all        # both
//
// Flags tune the sweeps; defaults match the paper's parameters
// (25 packet definitions, 25 actions per packet, 10..100 Mbps offered).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"virtualwire"
	"virtualwire/internal/experiments"
	"virtualwire/internal/profiling"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vwbench:", err)
		os.Exit(1)
	}
}

func run() (retErr error) {
	fig := flag.String("fig", "all", "which figure to regenerate: 7, 8 or all")
	seed := flag.Int64("seed", 1, "simulation seed")
	duration := flag.Duration("duration", 2*time.Second, "fig 7: paced-transmission window per point")
	rates := flag.String("rates", "", "fig 7: comma-separated offered rates in Mbps (default 10..100)")
	pings := flag.Int("pings", 300, "fig 8: echo round trips per point")
	filters := flag.String("filters", "", "fig 8: comma-separated filter counts (default 1,5,10,15,20,25)")
	metricsOut := flag.String("metrics-out", "", "write per-sub-run metrics time series to this JSON file")
	metricsInterval := flag.Duration("metrics-interval", 50*time.Millisecond, "virtual-time sampling interval for -metrics-out")
	parallel := flag.Int("parallel", 1, "sweep points run concurrently (0 = GOMAXPROCS); results are identical to -parallel 1")
	var prof profiling.Flags
	prof.Register()
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProf(); err != nil && retErr == nil {
			retErr = err
		}
	}()

	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	want7 := *fig == "7" || *fig == "all"
	want8 := *fig == "8" || *fig == "all"
	if !want7 && !want8 {
		return fmt.Errorf("unknown -fig %q (want 7, 8 or all)", *fig)
	}

	// With -metrics-out, every sub-run reports its sampled series under a
	// label like "vw+rll@90Mbps" or "actions@n=10".
	type labeledSeries struct {
		Label  string                    `json:"label"`
		Series virtualwire.MetricsSeries `json:"series"`
	}
	var collected []labeledSeries
	observe := func(label string, tb *virtualwire.Testbed) {
		collected = append(collected, labeledSeries{Label: label, Series: tb.MetricsSeries()})
	}

	if want7 {
		cfg := experiments.Fig7Config{Seed: *seed, Duration: *duration, Parallel: workers}
		if *metricsOut != "" {
			cfg.MetricsInterval = *metricsInterval
			cfg.Observe = observe
		}
		if *rates != "" {
			rs, err := parseFloats(*rates)
			if err != nil {
				return fmt.Errorf("-rates: %w", err)
			}
			cfg.OfferedMbps = rs
		}
		pts, err := experiments.RunFig7(cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatFig7(pts))
	}
	if want8 {
		cfg := experiments.Fig8Config{Seed: *seed, Pings: *pings, Parallel: workers}
		if *metricsOut != "" {
			cfg.MetricsInterval = *metricsInterval
			cfg.Observe = observe
		}
		if *filters != "" {
			fs, err := parseInts(*filters)
			if err != nil {
				return fmt.Errorf("-filters: %w", err)
			}
			cfg.FilterCounts = fs
		}
		pts, err := experiments.RunFig8(cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatFig8(pts))
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Runs []labeledSeries `json:"runs"`
		}{Runs: collected}); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("metrics written to %s (%d sub-runs)\n", *metricsOut, len(collected))
	}
	return nil
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
