// Command vwbench regenerates the paper's evaluation figures on the
// simulated testbed and prints them as tables:
//
//	vwbench -fig 7          # TCP throughput vs offered load (Figure 7)
//	vwbench -fig 8          # UDP echo RTT overhead vs #filters (Figure 8)
//	vwbench -fig all        # both
//
// Flags tune the sweeps; defaults match the paper's parameters
// (25 packet definitions, 25 actions per packet, 10..100 Mbps offered).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"virtualwire/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vwbench:", err)
		os.Exit(1)
	}
}

func run() error {
	fig := flag.String("fig", "all", "which figure to regenerate: 7, 8 or all")
	seed := flag.Int64("seed", 1, "simulation seed")
	duration := flag.Duration("duration", 2*time.Second, "fig 7: paced-transmission window per point")
	rates := flag.String("rates", "", "fig 7: comma-separated offered rates in Mbps (default 10..100)")
	pings := flag.Int("pings", 300, "fig 8: echo round trips per point")
	filters := flag.String("filters", "", "fig 8: comma-separated filter counts (default 1,5,10,15,20,25)")
	flag.Parse()

	want7 := *fig == "7" || *fig == "all"
	want8 := *fig == "8" || *fig == "all"
	if !want7 && !want8 {
		return fmt.Errorf("unknown -fig %q (want 7, 8 or all)", *fig)
	}

	if want7 {
		cfg := experiments.Fig7Config{Seed: *seed, Duration: *duration}
		if *rates != "" {
			rs, err := parseFloats(*rates)
			if err != nil {
				return fmt.Errorf("-rates: %w", err)
			}
			cfg.OfferedMbps = rs
		}
		pts, err := experiments.RunFig7(cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatFig7(pts))
	}
	if want8 {
		cfg := experiments.Fig8Config{Seed: *seed, Pings: *pings}
		if *filters != "" {
			fs, err := parseInts(*filters)
			if err != nil {
				return fmt.Errorf("-filters: %w", err)
			}
			cfg.FilterCounts = fs
		}
		pts, err := experiments.RunFig8(cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatFig8(pts))
	}
	return nil
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
