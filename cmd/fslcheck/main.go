// Command fslcheck parses a Fault Specification Language script and
// prints the six tables the VirtualWire front-end compiles it into
// (filter, node, counter, term, condition, action — Figure 3 of the
// paper), followed by the compiled classifier dispatch shape (tree
// depth, fanout, worst-case tuple comparisons). It is the quickest way
// to validate a script — and to see whether its filter table compiles
// into an effective dispatch tree — before running it.
//
// Usage:
//
//	fslcheck script.fsl [more.fsl ...]
package main

import (
	"fmt"
	"os"

	"virtualwire/internal/core"
	"virtualwire/internal/fsl"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fslcheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: fslcheck script.fsl [more.fsl ...]")
	}
	for _, path := range args {
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		progs, err := fsl.CompileAll(string(src))
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		for _, p := range progs {
			fmt.Printf("=== %s: %s ===\n\n", path, p.Name)
			fmt.Println(p.Dump())
			printDispatchShape(p)
		}
	}
	return nil
}

// printDispatchShape reports the compiled classifier dispatch tree: how
// the filter table will classify under Config.Classifier =
// compiled/auto, and whether the table has discriminating literal
// fields at all.
func printDispatchShape(p *core.Program) {
	s := p.CompiledDispatch().Shape()
	fmt.Println("COMPILED DISPATCH")
	fmt.Printf("  filters           %d\n", s.Filters)
	fmt.Printf("  tree nodes        %d (%d leaves)\n", s.Nodes, s.Leaves)
	fmt.Printf("  depth             %d\n", s.Depth)
	fmt.Printf("  max fanout        %d\n", s.MaxFanout)
	fmt.Printf("  worst-case tuples %d\n", s.WorstCaseTuples)
	if s.Degenerate() {
		fmt.Println("  WARNING: no discriminating literal field — compiled dispatch degenerates to a linear scan")
	}
	fmt.Println()
}
