// Command fslcheck parses a Fault Specification Language script and
// prints the six tables the VirtualWire front-end compiles it into
// (filter, node, counter, term, condition, action — Figure 3 of the
// paper). It is the quickest way to validate a script before running it.
//
// Usage:
//
//	fslcheck script.fsl [more.fsl ...]
package main

import (
	"fmt"
	"os"

	"virtualwire/internal/fsl"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fslcheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: fslcheck script.fsl [more.fsl ...]")
	}
	for _, path := range args {
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		progs, err := fsl.CompileAll(string(src))
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		for _, p := range progs {
			fmt.Printf("=== %s: %s ===\n\n", path, p.Name)
			fmt.Println(p.Dump())
		}
	}
	return nil
}
