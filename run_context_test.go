package virtualwire

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

const ctxScript = `FILTER_TABLE
TCP_data: (34 2 0x6000), (36 2 0x4000), (47 1 0x10 0x10)
END
NODE_TABLE
node1 00:00:00:00:00:01 10.0.0.1
node2 00:00:00:00:00:02 10.0.0.2
END
SCENARIO ctx_drop
DATA: (TCP_data, node1, node2, RECV)
(TRUE) >> ENABLE_CNTR( DATA );
((DATA = 5)) >> DROP TCP_data, node1, node2, RECV;
END`

func ctxTestbed(t *testing.T, seed int64) *Testbed {
	t.Helper()
	tb, err := New(Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AddNodesFromScript(ctxScript); err != nil {
		t.Fatal(err)
	}
	if err := tb.LoadScript(ctxScript); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.AddTCPBulk(TCPBulkConfig{
		From: "node1", To: "node2",
		SrcPort: 0x6000, DstPort: 0x4000, Bytes: 64 * 1024,
	}); err != nil {
		t.Fatal(err)
	}
	return tb
}

// TestRunContextPreCanceled: a context canceled before the run starts
// returns promptly with context.Canceled and a failed report.
func TestRunContextPreCanceled(t *testing.T) {
	tb := ctxTestbed(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := tb.RunContext(ctx, 30*time.Second)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep.Passed {
		t.Error("canceled run reported passed")
	}
	// The poll granularity is 64 events; a pre-canceled context must
	// stop the run within one poll window, long before the transfer
	// completes.
	if rep.Events > 2*ctxPollEvents {
		t.Errorf("canceled run executed %d events", rep.Events)
	}
}

// TestRunContextDeadline: an expiring wall-clock deadline interrupts
// the event loop and wraps both ErrHorizonExceeded and the context
// error, with the partial report still populated.
func TestRunContextDeadline(t *testing.T) {
	tb := ctxTestbed(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // guarantee expiry before the first poll
	rep, err := tb.RunContext(ctx, 30*time.Second)
	if !errors.Is(err, ErrHorizonExceeded) {
		t.Fatalf("err = %v, want ErrHorizonExceeded", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded in the chain", err)
	}
	if rep.Passed {
		t.Error("interrupted run reported passed")
	}
	if rep.Scenario != "ctx_drop" {
		t.Errorf("partial report lost the scenario: %+v", rep)
	}
}

// TestRunContextMidRunCancel cancels from a scheduled callback, at a
// known virtual time, and checks the loop stops within the poll
// granularity instead of running to the horizon.
func TestRunContextMidRunCancel(t *testing.T) {
	tb := ctxTestbed(t, 3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tb.sched.After(5*time.Millisecond, "test.cancel", cancel)
	rep, err := tb.RunContext(ctx, 30*time.Second)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep.Duration < 5*time.Millisecond {
		t.Errorf("canceled before the cancel event itself ran: %v", rep.Duration)
	}
	if rep.Duration > time.Second {
		t.Errorf("run continued to %v after cancellation", rep.Duration)
	}
}

// TestRunMatchesRunContextBackground: Run is a thin wrapper; both paths
// give identical reports for equal seeds.
func TestRunMatchesRunContextBackground(t *testing.T) {
	repA, err := ctxTestbed(t, 4).Run(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	repB, err := ctxTestbed(t, 4).RunContext(context.Background(), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := repA.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := repB.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("Run and RunContext(Background) reports differ")
	}
	if !repA.Passed || repA.Verdict != "horizon" {
		t.Errorf("report = passed %v verdict %q", repA.Passed, repA.Verdict)
	}
}

// TestScriptParseSentinel: every FSL front-end entry point wraps parse
// failures with ErrScriptParse.
func TestScriptParseSentinel(t *testing.T) {
	tb, err := New(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	const garbage = "FILTER_TABLE\nnot a filter\n"
	if err := tb.AddNodesFromScript(garbage); !errors.Is(err, ErrScriptParse) {
		t.Errorf("AddNodesFromScript: err = %v, want ErrScriptParse", err)
	}
	if err := tb.LoadScript(garbage); !errors.Is(err, ErrScriptParse) {
		t.Errorf("LoadScript: err = %v, want ErrScriptParse", err)
	}
	if err := tb.LoadScriptScenario(garbage, "x"); !errors.Is(err, ErrScriptParse) {
		t.Errorf("LoadScriptScenario: err = %v, want ErrScriptParse", err)
	}
	if _, err := ScenarioNames(garbage); !errors.Is(err, ErrScriptParse) {
		t.Errorf("ScenarioNames: err = %v, want ErrScriptParse", err)
	}
	if err := CheckScript(garbage, ""); !errors.Is(err, ErrScriptParse) {
		t.Errorf("CheckScript: err = %v, want ErrScriptParse", err)
	}
	if err := CheckScript(ctxScript, "no_such"); !errors.Is(err, ErrScriptParse) {
		t.Errorf("CheckScript(missing scenario): err = %v, want ErrScriptParse", err)
	}
	if err := CheckScript(ctxScript, "ctx_drop"); err != nil {
		t.Errorf("CheckScript(valid): %v", err)
	}
}

// TestLaunchFailureSentinel: a launch failure surfaces through
// RunReport.Err as both ErrLaunchFailed and ErrUnreachable, naming the
// silent node, while Run's error return stays nil (back compat).
func TestLaunchFailureSentinel(t *testing.T) {
	tb, err := New(Config{Seed: 5, LaunchDeadline: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AddNodesFromScript(ctxScript); err != nil {
		t.Fatal(err)
	}
	if err := tb.LoadScript(ctxScript); err != nil {
		t.Fatal(err)
	}
	rep, err := tb.Run(time.Second)
	if err != nil {
		t.Fatalf("Run must not error on a reported launch failure: %v", err)
	}
	repErr := rep.Err()
	if !errors.Is(repErr, ErrLaunchFailed) || !errors.Is(repErr, ErrUnreachable) {
		t.Fatalf("rep.Err() = %v, want ErrLaunchFailed and ErrUnreachable", repErr)
	}
	if !strings.Contains(repErr.Error(), "node2") {
		t.Errorf("rep.Err() = %v, want the unreachable node named", repErr)
	}
	if rep.Verdict != "launch_failed" {
		t.Errorf("verdict = %q", rep.Verdict)
	}
	// A healthy run's report carries no error.
	if e := ctxReport(t).Err(); e != nil {
		t.Errorf("healthy run Err() = %v", e)
	}
}

func ctxReport(t *testing.T) RunReport {
	t.Helper()
	rep, err := ctxTestbed(t, 6).Run(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestRunReportJSONShape: the unified report marshals with the stable
// snake_case schema campaigns and external tooling consume.
func TestRunReportJSONShape(t *testing.T) {
	rep := ctxReport(t)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"scenario", "seed", "verdict", "result", "passed", "virtual_ns", "events", "faults", "nodes", "metrics"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("report JSON missing %q", key)
		}
	}
	res, ok := doc["result"].(map[string]any)
	if !ok {
		t.Fatal("result not an object")
	}
	if _, ok := res["started"]; !ok {
		t.Error("result JSON not snake_case (missing \"started\")")
	}
	text := rep.Text()
	for _, want := range []string{"ctx_drop", "fault(s) injected", "engine:"} {
		if !strings.Contains(text, want) {
			t.Errorf("report text missing %q:\n%s", want, text)
		}
	}
}
