module virtualwire

go 1.22
