package virtualwire

import (
	"bytes"
	"testing"
	"time"
)

// faultJournalKinds collects the fabric entries of a run's fault journal
// by kind.
func faultJournalKinds(rep RunReport) map[string]int {
	kinds := make(map[string]int)
	for _, f := range rep.Faults {
		if f.Node == "fabric" {
			kinds[f.Kind]++
		}
	}
	return kinds
}

// TestTrunkFailoverReconverges kills the ring's first tree trunk
// mid-run and checks STP-style failover: the redundant blocked trunk
// (trunk 2 on a 4-switch ring) unblocks after the reconvergence delay,
// the failover is counted and journaled, and traffic completes over the
// new tree.
func TestTrunkFailoverReconverges(t *testing.T) {
	tb, err := New(Config{
		Seed:     7,
		Topology: &TopologySpec{Kind: TopoRing, Switches: 4},
		TopologyFaults: []TopologyFaultSpec{
			{Kind: TrunkDown, Trunk: 0, At: 100 * time.Millisecond},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	addGroupHosts(t, tb, 24)
	mf, err := tb.AddManyFlow(ManyFlowConfig{Flows: 12, Bytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tb.Run(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if mf.Completed() != mf.Flows() {
		t.Fatalf("flows completed %d/%d after failover (failed %d)", mf.Completed(), mf.Flows(), mf.Failed())
	}
	if got := rep.Metrics.Totals["fabric/failovers"]; got < 1 {
		t.Fatalf("fabric/failovers = %v, want >= 1", got)
	}
	if got := rep.Metrics.Totals["fabric/reconverge_ns_total"]; got != float64(DefaultReconvergeDelay) {
		t.Fatalf("fabric/reconverge_ns_total = %v, want %v", got, float64(DefaultReconvergeDelay))
	}
	st0, err := tb.TrunkStatus(0)
	if err != nil {
		t.Fatal(err)
	}
	if !st0.Failed || !st0.Blocked {
		t.Fatalf("trunk 0 after kill: %+v, want failed and blocked", st0)
	}
	st2, err := tb.TrunkStatus(2)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Blocked || st2.InTree {
		t.Fatalf("redundant trunk 2 after failover: %+v, want a promoted non-tree trunk", st2)
	}
	kinds := faultJournalKinds(rep)
	if kinds["trunk_down"] != 1 || kinds["reconverge"] != 1 {
		t.Fatalf("fabric journal = %v, want one trunk_down and one reconverge", kinds)
	}
}

// TestTrunkFailbackRestores restores the killed trunk and checks the
// second reconvergence returns the fabric to the build-time tree: the
// restored trunk forwards again, the redundant trunk re-blocks.
func TestTrunkFailbackRestores(t *testing.T) {
	tb, err := New(Config{
		Seed:     7,
		Topology: &TopologySpec{Kind: TopoRing, Switches: 4},
		TopologyFaults: []TopologyFaultSpec{
			{Kind: TrunkDown, Trunk: 0, At: 100 * time.Millisecond},
			{Kind: TrunkUp, Trunk: 0, At: 300 * time.Millisecond},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	addGroupHosts(t, tb, 24)
	if _, err := tb.AddManyFlow(ManyFlowConfig{Flows: 12, Bytes: 2 << 10}); err != nil {
		t.Fatal(err)
	}
	rep, err := tb.Run(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Metrics.Totals["fabric/failovers"]; got != 2 {
		t.Fatalf("fabric/failovers = %v, want 2 (failover + failback)", got)
	}
	st0, _ := tb.TrunkStatus(0)
	if st0.Failed || st0.Blocked {
		t.Fatalf("trunk 0 after failback: %+v, want forwarding", st0)
	}
	st2, _ := tb.TrunkStatus(2)
	if !st2.Blocked {
		t.Fatalf("redundant trunk 2 after failback: %+v, want re-blocked", st2)
	}
}

// TestSwitchCrashRestartReconverges crashes a ring switch and restarts
// it: both transitions are journaled, the restart re-admits the switch
// via reconvergence, and no switch stays down at the end of the run.
func TestSwitchCrashRestartReconverges(t *testing.T) {
	tb, err := New(Config{
		Seed:     11,
		Topology: &TopologySpec{Kind: TopoRing, Switches: 4},
		TopologyFaults: []TopologyFaultSpec{
			// Early enough to catch the ManyFlow mesh in flight: the 2KB
			// flows complete within tens of milliseconds.
			{Kind: SwitchDown, Switch: 3, At: 2 * time.Millisecond},
			{Kind: SwitchUp, Switch: 3, At: 300 * time.Millisecond},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	addGroupHosts(t, tb, 24)
	// Large enough flows that transfers are still in flight at the crash.
	if _, err := tb.AddManyFlow(ManyFlowConfig{Flows: 12, Bytes: 64 << 10}); err != nil {
		t.Fatal(err)
	}
	rep, err := tb.Run(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	kinds := faultJournalKinds(rep)
	if kinds["switch_down"] != 1 || kinds["switch_up"] != 1 {
		t.Fatalf("fabric journal = %v, want one switch_down and one switch_up", kinds)
	}
	if got := rep.Metrics.Totals["fabric/failovers"]; got < 1 {
		t.Fatalf("fabric/failovers = %v, want >= 1", got)
	}
	if down := rep.Metrics.Totals["fabric/blocked_frames"]; down == 0 {
		t.Fatal("a crashed switch discarded no ingress frames")
	}
}

// topoFaultIdentityCases are the (fabric, fault schedule) shapes the
// shard-identity property sweeps: a tree-trunk kill with failover on the
// ring, a kill plus a flapping redundant trunk, and a fat-tree uplink
// kill with multipath redundancy.
var topoFaultIdentityCases = []struct {
	name   string
	spec   TopologySpec
	hosts  int
	faults []TopologyFaultSpec
}{
	{
		"ring-kill", TopologySpec{Kind: TopoRing, Switches: 4}, 24,
		[]TopologyFaultSpec{{Kind: TrunkDown, Trunk: 0, At: 100 * time.Millisecond}},
	},
	{
		"ring-kill-flap", TopologySpec{Kind: TopoRing, Switches: 4}, 24,
		[]TopologyFaultSpec{
			{Kind: TrunkDown, Trunk: 1, At: 80 * time.Millisecond},
			{Kind: TrunkFlap, Trunk: 3, At: 200 * time.Millisecond, Period: 100 * time.Millisecond, Count: 3},
		},
	},
	{
		"fattree-kill-degrade", TopologySpec{Kind: TopoFatTree, FatTreeK: 4}, 16,
		[]TopologyFaultSpec{
			{Kind: TrunkDown, Trunk: 0, At: 100 * time.Millisecond},
			{Kind: TrunkDegrade, Trunk: 2, At: 150 * time.Millisecond, Propagation: 20 * time.Microsecond},
		},
	},
}

// TestTopologyFaultShardIdentity is the tentpole property for the fault
// surface: a run with trunk kills, flaps and degradations produces
// byte-identical reports at 1, 2 and 4 shards. Faults apply at window
// barriers and windows never cross a fault time, so the fault schedule
// is as partition-independent as the traffic itself.
func TestTopologyFaultShardIdentity(t *testing.T) {
	for _, tc := range topoFaultIdentityCases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(shards int) []byte {
				topo := tc.spec
				tb, err := New(Config{
					Seed:           13,
					Shards:         shards,
					Topology:       &topo,
					TopologyFaults: tc.faults,
				})
				if err != nil {
					t.Fatal(err)
				}
				addGroupHosts(t, tb, tc.hosts)
				if _, err := tb.AddManyFlow(ManyFlowConfig{Flows: tc.hosts / 2, Bytes: 2 << 10}); err != nil {
					t.Fatal(err)
				}
				rep, err := tb.Run(3 * time.Second)
				if err != nil {
					t.Fatal(err)
				}
				return reportBytes(t, rep)
			}
			serial := run(1)
			for _, shards := range []int{2, 4} {
				if got := run(shards); !bytes.Equal(got, serial) {
					t.Fatalf("%d-shard faulted report diverges from serial\nserial:\n%s\nsharded:\n%s",
						shards, serial, got)
				}
			}
		})
	}
}

// TestTopologyFaultResetMatchesFresh extends the reset-vs-fresh identity
// to faulted fabrics: after a run that killed and flapped trunks, Reset
// must restore the build-time tree, clear fault state, re-arm the fault
// schedule, and reproduce a fresh testbed's bytes — in both engines.
func TestTopologyFaultResetMatchesFresh(t *testing.T) {
	faults := []TopologyFaultSpec{
		{Kind: TrunkDown, Trunk: 0, At: 100 * time.Millisecond},
		{Kind: TrunkFlap, Trunk: 1, At: 300 * time.Millisecond, Period: 120 * time.Millisecond, Count: 2},
		{Kind: TrunkDegrade, Trunk: 3, At: 150 * time.Millisecond, Propagation: 30 * time.Microsecond},
	}
	for _, shards := range []int{0, 2} {
		build := func() *Testbed {
			topo := TopologySpec{Kind: TopoRing, Switches: 4}
			tb, err := New(Config{
				Seed:           17,
				Shards:         shards,
				Topology:       &topo,
				TopologyFaults: faults,
			})
			if err != nil {
				t.Fatal(err)
			}
			addGroupHosts(t, tb, 24)
			return tb
		}
		runOnce := func(tb *Testbed) []byte {
			if _, err := tb.AddManyFlow(ManyFlowConfig{Flows: 12, Bytes: 2 << 10}); err != nil {
				t.Fatal(err)
			}
			rep, err := tb.Run(2 * time.Second)
			if err != nil {
				t.Fatal(err)
			}
			return reportBytes(t, rep)
		}
		tb := build()
		first := runOnce(tb)
		if err := tb.Reset(17); err != nil {
			t.Fatal(err)
		}
		st0, _ := tb.TrunkStatus(0)
		if st0.Failed || st0.Blocked {
			t.Fatalf("shards=%d: trunk 0 after Reset: %+v, want pristine forwarding", shards, st0)
		}
		st3, _ := tb.TrunkStatus(3)
		if st3.Propagation != 0 && st3.Propagation == 30*time.Microsecond {
			t.Fatalf("shards=%d: trunk 3 kept degraded propagation across Reset", shards)
		}
		reset := runOnce(tb)
		if !bytes.Equal(first, reset) {
			t.Fatalf("shards=%d: reset faulted run diverges from first\nfirst:\n%s\nreset:\n%s", shards, first, reset)
		}
		fresh := runOnce(build())
		if !bytes.Equal(first, fresh) {
			t.Fatalf("shards=%d: fresh faulted run diverges from first", shards)
		}
	}
}

// TestTopologyFaultValidation covers the staging errors: faults without
// a fabric, out-of-range targets, and empty degrades.
func TestTopologyFaultValidation(t *testing.T) {
	cases := []struct {
		name   string
		topo   *TopologySpec
		faults []TopologyFaultSpec
	}{
		{"no-fabric", nil, []TopologyFaultSpec{{Kind: TrunkDown, Trunk: 0, At: time.Millisecond}}},
		{"bad-trunk", &TopologySpec{Kind: TopoRing, Switches: 4},
			[]TopologyFaultSpec{{Kind: TrunkDown, Trunk: 99, At: time.Millisecond}}},
		{"bad-switch", &TopologySpec{Kind: TopoRing, Switches: 4},
			[]TopologyFaultSpec{{Kind: SwitchDown, Switch: -1, At: time.Millisecond}}},
		{"empty-degrade", &TopologySpec{Kind: TopoRing, Switches: 4},
			[]TopologyFaultSpec{{Kind: TrunkDegrade, Trunk: 0, At: time.Millisecond}}},
		{"negative-at", &TopologySpec{Kind: TopoRing, Switches: 4},
			[]TopologyFaultSpec{{Kind: TrunkDown, Trunk: 0, At: -time.Millisecond}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tb, err := New(Config{Seed: 1, Topology: tc.topo, TopologyFaults: tc.faults})
			if err != nil {
				t.Fatal(err)
			}
			addGroupHosts(t, tb, 8)
			if _, err := tb.Run(10 * time.Millisecond); err == nil {
				t.Fatal("faulted build succeeded, want staging error")
			}
		})
	}
}
