#!/bin/sh
# Hot-path benchmark suite: measures the scheduler, classifier, frame
# path, engine interception and the Figure 5/6 scenario benches, and
# records the results as BENCH_core.json at the repository root.
#
# Usage: scripts/bench.sh [count]
#   count  -benchtime iteration spec (default 2s of wall time per bench).
#
# See docs/PERFORMANCE.md for how to interpret the numbers and for the
# recorded before/after history of the allocation overhaul.
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${1:-2s}"
OUT="BENCH_core.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

run_bench() {
    # $1 = package, $2 = benchmark regexp
    go test -run '^$' -bench "$2" -benchmem -benchtime "$BENCHTIME" "$1" \
        | tee -a /dev/stderr
}

{
    run_bench ./internal/sim 'BenchmarkScheduler'
    run_bench ./internal/core 'BenchmarkClassifier'
    run_bench ./internal/ether 'BenchmarkBusForwarding'
    run_bench . 'BenchmarkEngineInterception|BenchmarkFig5Scenario|BenchmarkFig6Scenario'
} > "$RAW"

# Parse `go test -bench` output lines of the form
#   BenchmarkName  <iters>  <ns> ns/op  <bytes> B/op  <allocs> allocs/op
# into a JSON object keyed by benchmark name.
awk '
BEGIN { print "{"; first = 1 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip -GOMAXPROCS suffix if present
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op")     ns = $(i - 1)
        if ($(i) == "B/op")      bytes = $(i - 1)
        if ($(i) == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "") next
    if (!first) print ","
    first = 0
    printf "  \"%s\": {\"ns_per_op\": %s", name, ns
    if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { print "\n}" }
' "$RAW" > "$OUT"

echo "benchmark results written to $OUT"
