#!/bin/sh
# Benchmark suite: measures the hot paths (scheduler, classifier, frame
# path, engine interception, Figure 5/6 scenarios) and the campaign
# executor's end-to-end throughput, recording the results as
# BENCH_core.json and BENCH_campaign.json at the repository root.
#
# Usage: scripts/bench.sh [count]
#   count  -benchtime iteration spec (default 2s of wall time per bench).
#
# See docs/PERFORMANCE.md for how to interpret the numbers and for the
# recorded before/after history of the allocation overhaul.
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${1:-2s}"

run_bench() {
    # $1 = package, $2 = benchmark regexp
    # A pattern that matches nothing (renamed or deleted benchmark)
    # would silently drop its entries from the JSON; fail loudly instead.
    out="$(go test -run '^$' -bench "$2" -benchmem -benchtime "$BENCHTIME" "$1")"
    if ! printf '%s\n' "$out" | grep -q '^Benchmark'; then
        printf '%s\n' "$out" >&2
        echo "bench.sh: pattern '$2' matched no benchmarks in $1" >&2
        exit 1
    fi
    printf '%s\n' "$out" | tee -a /dev/stderr
}

# Parse `go test -bench` output lines of the form
#   BenchmarkName  <iters>  <ns> ns/op  [<runs> runs/s]  <bytes> B/op  <allocs> allocs/op
# from $1 into a JSON object keyed by benchmark name, written to $2.
emit_json() {
    awk '
    BEGIN { print "{"; first = 1 }
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)   # strip -GOMAXPROCS suffix if present
        ns = ""; bytes = ""; allocs = ""; runs = ""; cpus = ""
        for (i = 2; i <= NF; i++) {
            if ($(i) == "ns/op")     ns = $(i - 1)
            if ($(i) == "B/op")      bytes = $(i - 1)
            if ($(i) == "allocs/op") allocs = $(i - 1)
            if ($(i) == "runs/s")    runs = $(i - 1)
            if ($(i) == "cpus")      cpus = $(i - 1)
        }
        if (ns == "") next
        if (!first) print ","
        first = 0
        printf "  \"%s\": {\"ns_per_op\": %s", name, ns
        if (runs != "")   printf ", \"runs_per_sec\": %s", runs
        if (cpus != "")   printf ", \"cpus\": %s", cpus
        if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
        if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
        printf "}"
    }
    END { print "\n}" }
    ' "$1" > "$2"
    echo "benchmark results written to $2"
}

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

{
    run_bench ./internal/sim 'BenchmarkScheduler'
    run_bench ./internal/core 'BenchmarkClassifier'
    run_bench ./internal/ether 'BenchmarkBusForwarding'
    run_bench . 'BenchmarkEngineInterception|BenchmarkFig5Scenario|BenchmarkFig6Scenario|BenchmarkTopology|BenchmarkSharded'
} > "$RAW"
emit_json "$RAW" BENCH_core.json

# Campaign throughput: whole 16-run matrices per iteration — serial, the
# default worker pool, and the fixed 2/4/8-worker scaling curve
# (BenchmarkCampaignWorkersN). runs_per_sec is the figure to watch;
# allocs_per_op guards the compile-once/reset-to-reuse pipeline (see the
# gate in scripts/check.sh).
: > "$RAW"
run_bench ./campaign 'BenchmarkCampaign' > "$RAW"
emit_json "$RAW" BENCH_campaign.json
