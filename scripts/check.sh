#!/bin/sh
# Repository check suite: everything a change must pass before merging.
# Run from anywhere; operates on the repository root.
set -eu

cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race ./...

echo "== campaign smoke (-race, small matrix) =="
# An end-to-end campaign through the real CLI: 8 runs (4 seeds x 2 bit
# error rates) of the quickstart drop scenario on 4 workers, under the
# race detector. Exercises the worker pool, the ordered JSONL flush and
# the summary path the way a user would.
go run -race ./cmd/vwcampaign \
    -script scripts/quickstart_drop.fsl \
    -tcp node1:0x6000-node2:0x4000:16384 \
    -seeds 4 -ber 0,1e-6 -workers 4 -horizon 30s \
    -summary none

echo "== sharded engine identity smoke =="
# The sharded windowed engine must be byte-identical to its one-shard
# run: same fat-tree campaign through the real CLI at 1 and 4 shards,
# diffed record-for-record. (The exhaustive 100+-combination property
# lives in TestShardedMatchesSerialAcrossSeeds; this catches CLI-level
# plumbing regressions.)
SHARD_A="$(mktemp)"
SHARD_B="$(mktemp)"
trap 'rm -f "$SHARD_A" "$SHARD_B"' EXIT
go run ./cmd/vwcampaign \
    -hosts 64 -topology fattree -manyflow 8:4096 \
    -seeds 2 -horizon 5s -workers 1 -summary none \
    -shards 1 -out "$SHARD_A"
go run ./cmd/vwcampaign \
    -hosts 64 -topology fattree -manyflow 8:4096 \
    -seeds 2 -horizon 5s -workers 1 -summary none \
    -shards 4 -out "$SHARD_B"
if ! cmp -s "$SHARD_A" "$SHARD_B"; then
    echo "sharded identity smoke: 4-shard JSONL differs from 1-shard" >&2
    diff "$SHARD_A" "$SHARD_B" >&2 || true
    exit 1
fi
echo "sharded identity smoke: 1-shard and 4-shard records identical"

echo "== fabric failover smoke =="
# The fabric fault surface end to end through the real CLI: a 4-switch
# ring loses its first tree trunk 5ms in, mid-ManyFlow. Spanning-tree
# failover must promote the redundant trunk (fabric/failovers >= 1 per
# run), every flow must still complete over the new tree (goodput
# recovers: received == sent in every record), and the 4-shard/4-worker
# run must be byte-identical to the serial one with the fault axis on.
FAIL_A="$(mktemp)"
FAIL_B="$(mktemp)"
FAIL_SUM="$(mktemp)"
trap 'rm -f "$SHARD_A" "$SHARD_B" "$FAIL_A" "$FAIL_B" "$FAIL_SUM"' EXIT
go run ./cmd/vwcampaign \
    -hosts 24 -topology ring:4 -manyflow 12:65536 \
    -trunk-fail 0@5ms \
    -seeds 2 -horizon 10s -workers 1 -summary json -summary-out "$FAIL_SUM" \
    -shards 1 -out "$FAIL_A"
go run ./cmd/vwcampaign \
    -hosts 24 -topology ring:4 -manyflow 12:65536 \
    -trunk-fail 0@5ms \
    -seeds 2 -horizon 10s -workers 4 -summary none \
    -shards 4 -out "$FAIL_B"
if ! cmp -s "$FAIL_A" "$FAIL_B"; then
    echo "failover smoke: 4-shard/4-worker JSONL differs from serial with trunk fault" >&2
    diff "$FAIL_A" "$FAIL_B" >&2 || true
    exit 1
fi
if grep -q '"received"' "$FAIL_A" && grep -v '"sent":12,"received":12' "$FAIL_A" | grep -q '"received"'; then
    echo "failover smoke: flows did not all complete after trunk death" >&2
    grep -o '"sent":[0-9]*,"received":[0-9]*' "$FAIL_A" >&2 || true
    exit 1
fi
FAILOVERS="$(grep -o '"fabric/failovers": *[0-9][0-9.e+]*' "$FAIL_SUM" | awk -F: '{ print $2 + 0 }')"
if [ -z "$FAILOVERS" ] || ! awk -v f="$FAILOVERS" 'BEGIN { exit !(f >= 2) }'; then
    echo "failover smoke: fabric/failovers = ${FAILOVERS:-missing}, want >= 2 (one per run)" >&2
    exit 1
fi
echo "failover smoke: records identical across shards/workers, flows complete, failovers = $FAILOVERS"

echo "== reconvergence time gate =="
# Reconvergence cost regression: total reconvergence time across the
# smoke's runs must stay within 2ms per failover (the default delay is
# 1ms; the bound catches coalescing or scheduling regressions that
# silently stretch the blackhole window).
RECONV_NS="$(grep -o '"fabric/reconverge_ns_total": *[0-9][0-9.e+]*' "$FAIL_SUM" | awk -F: '{ print $2 + 0 }')"
if [ -z "$RECONV_NS" ]; then
    echo "reconvergence gate: fabric/reconverge_ns_total missing from summary" >&2
    exit 1
fi
if ! awk -v ns="$RECONV_NS" -v f="$FAILOVERS" 'BEGIN { exit !(ns <= f * 2000000) }'; then
    echo "reconvergence time regressed: $RECONV_NS ns across $FAILOVERS failovers (limit 2ms each)" >&2
    exit 1
fi
echo "reconvergence time: $RECONV_NS ns across $FAILOVERS failovers (limit 2ms each)"

echo "== campaign service smoke =="
# The daemon end to end, against real binaries (a SIGKILL must hit the
# daemon process itself, which `go run` would shield behind a parent):
# submit a ring:4 trunk-fault campaign over HTTP and byte-compare the
# streamed records and summary with an in-process run; then kill the
# daemon mid-campaign, restart it over the same journal, and check the
# resumed job still produces identical bytes; finally shut down cleanly
# on SIGTERM. See docs/SERVICE.md.
SVC_TMP="$(mktemp -d)"
trap 'rm -f "$SHARD_A" "$SHARD_B" "$FAIL_A" "$FAIL_B" "$FAIL_SUM"; rm -rf "$SVC_TMP"; [ -n "${SVC_PID:-}" ] && kill -9 "$SVC_PID" 2>/dev/null || true' EXIT
go build -o "$SVC_TMP/" ./cmd/vwcampaign ./cmd/vwcampaignd
cat > "$SVC_TMP/spec.json" <<'EOF'
{
  "name": "svc-smoke",
  "seed": 11,
  "seed_count": 24,
  "hosts": 24,
  "horizon": "10s",
  "configs": [
    {"label": "ring-fault",
     "topology": {"kind": "ring", "switches": 4},
     "trunk_faults": [{"kind": "trunk_down", "trunk": 0, "at": "5ms"}]}
  ],
  "workloads": [{"kind": "manyflow", "flows": 12, "bytes": 65536}]
}
EOF
"$SVC_TMP/vwcampaign" -spec "$SVC_TMP/spec.json" -out "$SVC_TMP/ref.jsonl" \
    -summary json -summary-out "$SVC_TMP/ref-summary.json"

svc_start() { # svc_start <logfile>; sets SVC_PID and SVC_ADDR
    "$SVC_TMP/vwcampaignd" -dir "$SVC_TMP/state" -listen 127.0.0.1:0 > "$1" 2>&1 &
    SVC_PID=$!
    SVC_ADDR=""
    for _ in $(seq 1 100); do
        SVC_ADDR="$(sed -n 's/.*listening on \([0-9.:]*\).*/\1/p' "$1" | head -n 1)"
        [ -n "$SVC_ADDR" ] && break
        sleep 0.1
    done
    if [ -z "$SVC_ADDR" ]; then
        echo "service smoke: daemon did not come up" >&2
        cat "$1" >&2
        exit 1
    fi
}

svc_start "$SVC_TMP/daemon1.log"

# Live-streamed records must be byte-identical to the in-process run.
"$SVC_TMP/vwcampaign" -addr "$SVC_ADDR" -spec "$SVC_TMP/spec.json" \
    -out "$SVC_TMP/streamed.jsonl" \
    -summary json -summary-out "$SVC_TMP/streamed-summary.json" 2> /dev/null
if ! cmp -s "$SVC_TMP/ref.jsonl" "$SVC_TMP/streamed.jsonl"; then
    echo "service smoke: streamed JSONL differs from in-process run" >&2
    exit 1
fi
if ! cmp -s "$SVC_TMP/ref-summary.json" "$SVC_TMP/streamed-summary.json"; then
    echo "service smoke: remote summary differs from in-process run" >&2
    exit 1
fi

# SIGKILL mid-campaign, restart over the same journal, resume.
SVC_JOB="$("$SVC_TMP/vwcampaign" -addr "$SVC_ADDR" -spec "$SVC_TMP/spec.json" -workers 1 -detach)"
SVC_DONE=0
for _ in $(seq 1 600); do
    SVC_DONE="$("$SVC_TMP/vwcampaign" -addr "$SVC_ADDR" -status "$SVC_JOB" \
        | sed -n 's/.*"completed": \([0-9]*\).*/\1/p')"
    [ "${SVC_DONE:-0}" -ge 2 ] && break
    sleep 0.05
done
if [ "${SVC_DONE:-0}" -lt 2 ] || [ "$SVC_DONE" -ge 24 ]; then
    echo "service smoke: wanted to kill mid-campaign, but completed=$SVC_DONE of 24" >&2
    exit 1
fi
kill -9 "$SVC_PID"
wait "$SVC_PID" 2> /dev/null || true

svc_start "$SVC_TMP/daemon2.log"
if ! grep -q 'resuming from run' "$SVC_TMP/daemon2.log"; then
    echo "service smoke: restarted daemon did not resume the interrupted job" >&2
    cat "$SVC_TMP/daemon2.log" >&2
    exit 1
fi
"$SVC_TMP/vwcampaign" -addr "$SVC_ADDR" -attach "$SVC_JOB" \
    -out "$SVC_TMP/resumed.jsonl" -summary none
if ! cmp -s "$SVC_TMP/ref.jsonl" "$SVC_TMP/resumed.jsonl"; then
    echo "service smoke: resumed JSONL differs from uninterrupted in-process run" >&2
    exit 1
fi
SVC_STATUS="$("$SVC_TMP/vwcampaign" -addr "$SVC_ADDR" -status "$SVC_JOB")"
echo "$SVC_STATUS" | grep -q '"state": "done"' || {
    echo "service smoke: resumed job did not finish: $SVC_STATUS" >&2
    exit 1
}
echo "$SVC_STATUS" | grep -q '"resumed_from": [1-9]' || {
    echo "service smoke: job does not report a resume point: $SVC_STATUS" >&2
    exit 1
}

kill -TERM "$SVC_PID"
wait "$SVC_PID"
echo "service smoke: streamed and resumed records byte-identical, clean shutdown"

echo "== sharded speedup gate =="
# On a multi-core machine, four shards must actually buy wall-clock:
# the 1000-host fat-tree benchmark at 4 shards is gated at >= 1.8x the
# serial (one-shard) figure. Single- and dual-core boxes cannot express
# the parallelism, so the gate only runs with 4+ schedulable CPUs.
NCPU="$(nproc 2>/dev/null || echo 1)"
if [ "$NCPU" -ge 4 ]; then
    SWEEP="$(go test -run '^$' -bench 'BenchmarkShardedFatTree/(serial|shards4)' -benchtime 3x .)"
    echo "$SWEEP" | grep '^Benchmark' || true
    SERIAL_NS="$(echo "$SWEEP" | awk '/ShardedFatTree\/serial/ { for (i = 2; i <= NF; i++) if ($(i) == "ns/op") print $(i - 1) }')"
    SHARD4_NS="$(echo "$SWEEP" | awk '/ShardedFatTree\/shards4/ { for (i = 2; i <= NF; i++) if ($(i) == "ns/op") print $(i - 1) }')"
    if [ -z "$SERIAL_NS" ] || [ -z "$SHARD4_NS" ]; then
        echo "sharded speedup gate: failed to measure serial/shards4 ns/op" >&2
        exit 1
    fi
    if ! awk -v s="$SERIAL_NS" -v p="$SHARD4_NS" 'BEGIN { exit !(s >= 1.8 * p) }'; then
        echo "sharded speedup regressed: serial $SERIAL_NS ns/op vs shards4 $SHARD4_NS ns/op (< 1.8x)" >&2
        exit 1
    fi
    echo "sharded speedup: serial $SERIAL_NS ns/op, shards4 $SHARD4_NS ns/op (>= 1.8x)"
else
    echo "sharded speedup gate: skipped ($NCPU CPUs; needs >= 4 to express the parallelism)"
fi

echo "== campaign allocation gate =="
# The campaign executor compiles each scenario variant once and resets
# long-lived worker testbeds between runs; if a change quietly reverts to
# per-run testbed construction (or re-introduces reflection/gob on the
# record path), allocations jump an order of magnitude. Gate on the
# serial 16-run benchmark: ~5.7k allocs/op today, 45k before the reuse
# pipeline. Allocation counts are deterministic, so a short run suffices.
ALLOC_LIMIT=9000
ALLOCS="$(go test -run '^$' -bench 'BenchmarkCampaignSerial$' -benchmem -benchtime 3x ./campaign \
    | awk '/^BenchmarkCampaignSerial/ { for (i = 2; i <= NF; i++) if ($(i) == "allocs/op") print $(i - 1) }')"
if [ -z "$ALLOCS" ]; then
    echo "campaign allocation gate: failed to measure allocs/op" >&2
    exit 1
fi
if [ "$ALLOCS" -gt "$ALLOC_LIMIT" ]; then
    echo "campaign allocations regressed: $ALLOCS allocs/op on the 16-run matrix (limit $ALLOC_LIMIT)" >&2
    exit 1
fi
echo "campaign allocations: $ALLOCS allocs/op (limit $ALLOC_LIMIT)"

echo "== compiled dispatch flatness gate =="
# The compiled classifier's selling point is flat per-packet cost in the
# filter count: classifying against 512 filters must cost no more than
# 2x classifying against 8. (Linear is ~60x at this spread.) Guards the
# dispatch tree from quietly degenerating into a residual linear scan.
SWEEP="$(go test -run '^$' -bench 'BenchmarkClassifierSize/compiled' -benchtime 0.2s ./internal/core)"
echo "$SWEEP" | grep '^Benchmark' || true
N8="$(echo "$SWEEP" | awk '/compiled\/n8-/ || /compiled\/n8 / { for (i = 2; i <= NF; i++) if ($(i) == "ns/op") print $(i - 1) }')"
N512="$(echo "$SWEEP" | awk '/compiled\/n512/ { for (i = 2; i <= NF; i++) if ($(i) == "ns/op") print $(i - 1) }')"
if [ -z "$N8" ] || [ -z "$N512" ]; then
    echo "dispatch flatness gate: failed to measure compiled n8/n512 ns/op" >&2
    exit 1
fi
if ! awk -v a="$N512" -v b="$N8" 'BEGIN { exit !(a <= 2.0 * b) }'; then
    echo "compiled dispatch no longer flat: n512 = $N512 ns/op vs n8 = $N8 ns/op (limit 2x)" >&2
    exit 1
fi
echo "compiled dispatch flat: n8 = $N8 ns/op, n512 = $N512 ns/op"

echo "== 1000-node topology reset gate =="
# Campaigns at 1000-node scale rewind the built fabric between runs;
# the reset path is allocation-free today (0 allocs/op). The ceiling
# catches a change that quietly rebuilds switches, ARP tables or layer
# chains per run.
TOPO_ALLOC_LIMIT=4096
TOPO_ALLOCS="$(go test -run '^$' -bench 'BenchmarkTopologyReset1000$' -benchmem -benchtime 3x . \
    | awk '/^BenchmarkTopologyReset1000/ { for (i = 2; i <= NF; i++) if ($(i) == "allocs/op") print $(i - 1) }')"
if [ -z "$TOPO_ALLOCS" ]; then
    echo "topology reset gate: failed to measure allocs/op" >&2
    exit 1
fi
if [ "$TOPO_ALLOCS" -gt "$TOPO_ALLOC_LIMIT" ]; then
    echo "1000-node reset allocations regressed: $TOPO_ALLOCS allocs/op (limit $TOPO_ALLOC_LIMIT)" >&2
    exit 1
fi
echo "1000-node reset allocations: $TOPO_ALLOCS allocs/op (limit $TOPO_ALLOC_LIMIT)"

echo "== bench smoke (one iteration) =="
# Each benchmark runs exactly once: catches benchmarks that no longer
# compile or crash, without paying measurement time. Full measurements
# live in scripts/bench.sh.
go test -run '^$' -bench . -benchtime=1x ./... > /dev/null

echo "All checks passed."
