#!/bin/sh
# Repository check suite: everything a change must pass before merging.
# Run from anywhere; operates on the repository root.
set -eu

cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race ./...

echo "== bench smoke (one iteration) =="
# Each benchmark runs exactly once: catches benchmarks that no longer
# compile or crash, without paying measurement time. Full measurements
# live in scripts/bench.sh.
go test -run '^$' -bench . -benchtime=1x ./... > /dev/null

echo "All checks passed."
