package packet

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseMAC(t *testing.T) {
	tests := []struct {
		in      string
		want    MAC
		wantErr bool
	}{
		{"00:46:61:af:fe:23", MAC{0x00, 0x46, 0x61, 0xaf, 0xfe, 0x23}, false},
		{"FF:ff:00:11:22:33", MAC{0xff, 0xff, 0x00, 0x11, 0x22, 0x33}, false},
		{"00:46:61:af:fe", MAC{}, true},
		{"00-46-61-af-fe-23", MAC{}, true},
		{"zz:46:61:af:fe:23", MAC{}, true},
		{"", MAC{}, true},
	}
	for _, tt := range tests {
		got, err := ParseMAC(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseMAC(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("ParseMAC(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestMACStringRoundTrip(t *testing.T) {
	m := MAC{0x00, 0x23, 0x31, 0xdf, 0xaf, 0x12}
	got, err := ParseMAC(m.String())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got != m {
		t.Errorf("round trip = %v, want %v", got, m)
	}
}

func TestParseIP(t *testing.T) {
	tests := []struct {
		in      string
		want    IP
		wantErr bool
	}{
		{"192.168.1.1", IP{192, 168, 1, 1}, false},
		{"0.0.0.0", IP{}, false},
		{"255.255.255.255", IP{255, 255, 255, 255}, false},
		{"256.0.0.1", IP{}, true},
		{"1.2.3", IP{}, true},
		{"1.2.3.4.5", IP{}, true},
		{"a.b.c.d", IP{}, true},
		{"1..2.3", IP{}, true},
		{"", IP{}, true},
	}
	for _, tt := range tests {
		got, err := ParseIP(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseIP(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("ParseIP(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestEthRoundTrip(t *testing.T) {
	b := make([]byte, EthHeaderLen)
	want := Eth{
		Dst:  MAC{1, 2, 3, 4, 5, 6},
		Src:  MAC{7, 8, 9, 10, 11, 12},
		Type: EtherTypeIPv4,
	}
	PutEth(b, want)
	got, err := DecodeEth(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got != want {
		t.Errorf("round trip = %+v, want %+v", got, want)
	}
	if _, err := DecodeEth(b[:10]); err == nil {
		t.Error("short frame decoded without error")
	}
}

func TestIPv4RoundTripAndChecksum(t *testing.T) {
	b := make([]byte, IPv4HeaderLen)
	want := IPv4{
		TotalLen: 120,
		ID:       7,
		Proto:    ProtoTCP,
		Src:      IP{192, 168, 1, 1},
		Dst:      IP{192, 168, 1, 2},
	}
	PutIPv4(b, want)
	got, err := DecodeIPv4(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.TotalLen != want.TotalLen || got.Proto != want.Proto ||
		got.Src != want.Src || got.Dst != want.Dst {
		t.Errorf("round trip = %+v, want %+v", got, want)
	}
	// Corrupting any header byte must break the checksum.
	for i := 0; i < IPv4HeaderLen; i++ {
		c := make([]byte, IPv4HeaderLen)
		copy(c, b)
		c[i] ^= 0x5a
		if _, err := DecodeIPv4(c); err == nil {
			t.Errorf("corruption at byte %d not detected by header checksum", i)
		}
	}
}

func TestTCPRoundTrip(t *testing.T) {
	b := make([]byte, TCPHeaderLen)
	want := TCP{
		SrcPort: 24576,
		DstPort: 16384,
		Seq:     0xdeadbeef,
		Ack:     0x01020304,
		Flags:   TCPSyn | TCPAck,
		Window:  8192,
	}
	PutTCP(b, want)
	got, err := DecodeTCP(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got != want {
		t.Errorf("round trip = %+v, want %+v", got, want)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	b := make([]byte, UDPHeaderLen)
	want := UDP{SrcPort: 53, DstPort: 1024, Length: 100}
	PutUDP(b, want)
	got, err := DecodeUDP(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got != want {
		t.Errorf("round trip = %+v, want %+v", got, want)
	}
}

// TestPaperFilterOffsets verifies the frame offsets the paper's FSL
// scripts rely on: a TCP frame built for the Figure 5 experiment must
// match (34 2 0x6000), (36 2 0x4000), (47 1 0x10 0x10) at exactly those
// raw-byte positions.
func TestPaperFilterOffsets(t *testing.T) {
	srcMAC := MAC{0x00, 0x46, 0x61, 0xaf, 0xfe, 0x23}
	dstMAC := MAC{0x00, 0x23, 0x31, 0xdf, 0xaf, 0x12}
	fr := BuildTCPFrame(srcMAC, dstMAC, IP{192, 168, 1, 1}, IP{192, 168, 1, 2},
		TCP{SrcPort: 0x6000, DstPort: 0x4000, Seq: 0x11223344, Ack: 0x55667788, Flags: TCPAck},
		[]byte("payload"))

	if got := uint16(fr[OffTCPSport])<<8 | uint16(fr[OffTCPSport+1]); got != 0x6000 {
		t.Errorf("frame[34:36] = 0x%04x, want 0x6000 (TCP source port)", got)
	}
	if got := uint16(fr[OffTCPDport])<<8 | uint16(fr[OffTCPDport+1]); got != 0x4000 {
		t.Errorf("frame[36:38] = 0x%04x, want 0x4000 (TCP dest port)", got)
	}
	if fr[OffTCPFlags]&TCPAck == 0 {
		t.Errorf("frame[47] = 0x%02x, ACK bit not set", fr[OffTCPFlags])
	}
	wantSeq := []byte{0x11, 0x22, 0x33, 0x44}
	if !bytes.Equal(fr[OffTCPSeq:OffTCPSeq+4], wantSeq) {
		t.Errorf("frame[38:42] = %x, want %x (TCP seq)", fr[OffTCPSeq:OffTCPSeq+4], wantSeq)
	}
	wantAck := []byte{0x55, 0x66, 0x77, 0x88}
	if !bytes.Equal(fr[OffTCPAck:OffTCPAck+4], wantAck) {
		t.Errorf("frame[42:46] = %x, want %x (TCP ack)", fr[OffTCPAck:OffTCPAck+4], wantAck)
	}
	if got := uint16(fr[OffEthType])<<8 | uint16(fr[OffEthType+1]); got != EtherTypeIPv4 {
		t.Errorf("frame[12:14] = 0x%04x, want 0x0800", got)
	}
}

// TestRetherFilterOffsets checks the Figure 6 filter offsets:
// tr_token: (12 2 0x9900), (14 2 0x0001).
func TestRetherFilterOffsets(t *testing.T) {
	fr := BuildRetherFrame(MAC{1}, MAC{2}, Rether{Type: RetherToken, TokenSeq: 9, Origin: 1}, nil)
	if got := uint16(fr[12])<<8 | uint16(fr[13]); got != 0x9900 {
		t.Errorf("frame[12:14] = 0x%04x, want 0x9900", got)
	}
	if got := uint16(fr[14])<<8 | uint16(fr[15]); got != 0x0001 {
		t.Errorf("frame[14:16] = 0x%04x, want 0x0001 (token)", got)
	}
	h, err := DecodeRether(fr[EthHeaderLen:])
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if h.Type != RetherToken || h.TokenSeq != 9 || h.Origin != 1 {
		t.Errorf("decoded %+v", h)
	}
}

func TestRetherTypeName(t *testing.T) {
	tests := []struct {
		typ  uint16
		want string
	}{
		{RetherToken, "token"},
		{RetherTokenAck, "token-ack"},
		{RetherRingSync, "ring-sync"},
		{RetherRegen, "regen"},
		{0xbeef, "rether-0xbeef"},
	}
	for _, tt := range tests {
		if got := RetherTypeName(tt.typ); got != tt.want {
			t.Errorf("RetherTypeName(%#x) = %q, want %q", tt.typ, got, tt.want)
		}
	}
}

func TestFlagString(t *testing.T) {
	tests := []struct {
		flags byte
		want  string
	}{
		{TCPSyn, "S"},
		{TCPSyn | TCPAck, "SA"},
		{TCPFin | TCPAck, "FA"},
		{TCPRst, "R"},
		{0, "."},
	}
	for _, tt := range tests {
		if got := FlagString(tt.flags); got != tt.want {
			t.Errorf("FlagString(%#x) = %q, want %q", tt.flags, got, tt.want)
		}
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: checksum of 00 01 f2 03 f4 f5 f6 f7 = 0x220d.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum16(b); got != 0x220d {
		t.Errorf("Checksum16 = %#04x, want 0x220d", got)
	}
}

// Property: TCP header round trips through encode/decode for arbitrary
// field values.
func TestTCPRoundTripProperty(t *testing.T) {
	prop := func(sp, dp uint16, seq, ack uint32, flags byte, win uint16) bool {
		b := make([]byte, TCPHeaderLen)
		in := TCP{SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack, Flags: flags, Window: win}
		PutTCP(b, in)
		out, err := DecodeTCP(b)
		return err == nil && out == in
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the IPv4 header checksum detects any single-byte corruption.
func TestIPv4ChecksumProperty(t *testing.T) {
	prop := func(id uint16, src, dst IP, corruptAt uint8, flip byte) bool {
		b := make([]byte, IPv4HeaderLen)
		PutIPv4(b, IPv4{TotalLen: 40, ID: id, Proto: ProtoUDP, Src: src, Dst: dst})
		if _, err := DecodeIPv4(b); err != nil {
			return false // valid header must decode
		}
		if flip == 0 {
			return true
		}
		b[int(corruptAt)%IPv4HeaderLen] ^= flip
		_, err := DecodeIPv4(b)
		return err != nil
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(6))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: MAC string formatting always parses back to the same value.
func TestMACRoundTripProperty(t *testing.T) {
	prop := func(m MAC) bool {
		got, err := ParseMAC(m.String())
		return err == nil && got == m
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(8))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkBuildTCPFrame(b *testing.B) {
	payload := make([]byte, 1400)
	for i := 0; i < b.N; i++ {
		BuildTCPFrame(MAC{1}, MAC{2}, IP{10, 0, 0, 1}, IP{10, 0, 0, 2},
			TCP{SrcPort: 1, DstPort: 2, Seq: uint32(i)}, payload)
	}
}

func BenchmarkDecodeTCPFrame(b *testing.B) {
	fr := BuildTCPFrame(MAC{1}, MAC{2}, IP{10, 0, 0, 1}, IP{10, 0, 0, 2},
		TCP{SrcPort: 1, DstPort: 2}, make([]byte, 1400))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeEth(fr); err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeIPv4(fr[OffIPHeader:]); err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeTCP(fr[OffIPHeader+IPv4HeaderLen:]); err != nil {
			b.Fatal(err)
		}
	}
}
