package packet

import (
	"encoding/binary"
	"fmt"
)

// Rether control-packet types, carried in the two bytes right after the
// Ethernet header (frame offset 14), as matched by the paper's Figure 6
// filter table: tr_token = (12 2 0x9900), (14 2 0x0001) and
// tr_token_ack = (12 2 0x9900), (14 2 0x0010).
const (
	RetherToken     uint16 = 0x0001
	RetherTokenAck  uint16 = 0x0010
	RetherRingSync  uint16 = 0x0002 // ring-membership update after reconstruction
	RetherRegen     uint16 = 0x0004 // token regeneration announcement
	RetherReserve   uint16 = 0x0008 // real-time bandwidth reservation request
	RetherReserveOK uint16 = 0x0009 // reservation acknowledgement
)

// RetherHeaderLen is the Rether control header length (after Ethernet).
const RetherHeaderLen = 10

// Rether is a decoded Rether control header.
//
// Layout (after the 14-byte Ethernet header):
//
//	offset 0 (frame 14): uint16 packet type
//	offset 2 (frame 16): uint32 token sequence number / cycle
//	offset 6 (frame 20): uint16 origin node index in ring
//	offset 8 (frame 22): uint16 payload length (ring membership entries)
type Rether struct {
	Type       uint16
	TokenSeq   uint32
	Origin     uint16
	PayloadLen uint16
}

// PutRether writes the control header into b[0:10].
func PutRether(b []byte, h Rether) {
	binary.BigEndian.PutUint16(b[0:], h.Type)
	binary.BigEndian.PutUint32(b[2:], h.TokenSeq)
	binary.BigEndian.PutUint16(b[6:], h.Origin)
	binary.BigEndian.PutUint16(b[8:], h.PayloadLen)
}

// DecodeRether reads a Rether control header from the bytes following the
// Ethernet header.
func DecodeRether(b []byte) (Rether, error) {
	if len(b) < RetherHeaderLen {
		return Rether{}, fmt.Errorf("rether header too short: %d bytes", len(b))
	}
	return Rether{
		Type:       binary.BigEndian.Uint16(b[0:]),
		TokenSeq:   binary.BigEndian.Uint32(b[2:]),
		Origin:     binary.BigEndian.Uint16(b[6:]),
		PayloadLen: binary.BigEndian.Uint16(b[8:]),
	}, nil
}

// BuildRetherFrame assembles a complete Rether control frame. payload
// carries optional ring-membership data (a sequence of 6-byte MACs).
func BuildRetherFrame(src, dst MAC, h Rether, payload []byte) []byte {
	h.PayloadLen = uint16(len(payload))
	b := make([]byte, EthHeaderLen+RetherHeaderLen+len(payload))
	PutEth(b, Eth{Dst: dst, Src: src, Type: EtherTypeRether})
	PutRether(b[EthHeaderLen:], h)
	copy(b[EthHeaderLen+RetherHeaderLen:], payload)
	return b
}

// RetherTypeName names a Rether control-packet type for traces.
func RetherTypeName(t uint16) string {
	switch t {
	case RetherToken:
		return "token"
	case RetherTokenAck:
		return "token-ack"
	case RetherRingSync:
		return "ring-sync"
	case RetherRegen:
		return "regen"
	case RetherReserve:
		return "reserve"
	case RetherReserveOK:
		return "reserve-ok"
	}
	return fmt.Sprintf("rether-0x%04x", t)
}
