// Package packet provides byte-accurate encoders and decoders for every
// frame format used in the testbed: Ethernet II, IPv4, UDP, TCP, the
// Rether 0x9900 control protocol, the Reliable Link Layer header, and the
// VirtualWire control-plane header.
//
// Byte accuracy matters because the Fault Specification Language matches
// packets by (offset, length, mask, pattern) tuples against the raw frame,
// exactly as the paper's Figure 2 scripts do: offset 12 is the ethertype,
// offset 34 the TCP source port (14-byte Ethernet header + 20-byte IPv4
// header), offset 38 the TCP sequence number, offset 47 the TCP flags
// byte, and offset 14 the Rether control-packet type.
package packet

import (
	"encoding/binary"
	"fmt"
)

// MAC is a 48-bit Ethernet hardware address.
type MAC [6]byte

// Broadcast is the all-ones broadcast address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// String formats the address in the usual colon-separated hex notation.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether the address is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == Broadcast }

// ParseMAC parses "aa:bb:cc:dd:ee:ff".
func ParseMAC(s string) (MAC, error) {
	var m MAC
	if len(s) != 17 {
		return m, fmt.Errorf("parse MAC %q: want 17 chars", s)
	}
	for i := 0; i < 6; i++ {
		hi, ok1 := hexVal(s[i*3])
		lo, ok2 := hexVal(s[i*3+1])
		if !ok1 || !ok2 {
			return m, fmt.Errorf("parse MAC %q: bad hex at byte %d", s, i)
		}
		if i < 5 && s[i*3+2] != ':' {
			return m, fmt.Errorf("parse MAC %q: missing ':' separator", s)
		}
		m[i] = hi<<4 | lo
	}
	return m, nil
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// IP is an IPv4 address.
type IP [4]byte

// String formats the address in dotted-quad notation.
func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", ip[0], ip[1], ip[2], ip[3])
}

// ParseIP parses a dotted-quad IPv4 address.
func ParseIP(s string) (IP, error) {
	var ip IP
	part, idx := 0, 0
	seen := false
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '.' {
			if !seen || idx > 3 {
				return ip, fmt.Errorf("parse IP %q", s)
			}
			ip[idx] = byte(part)
			idx++
			part, seen = 0, false
			continue
		}
		c := s[i]
		if c < '0' || c > '9' {
			return ip, fmt.Errorf("parse IP %q: bad char %q", s, c)
		}
		part = part*10 + int(c-'0')
		if part > 255 {
			return ip, fmt.Errorf("parse IP %q: octet overflow", s)
		}
		seen = true
	}
	if idx != 4 {
		return ip, fmt.Errorf("parse IP %q: want 4 octets", s)
	}
	return ip, nil
}

// EtherType values used on the testbed.
const (
	EtherTypeIPv4   uint16 = 0x0800
	EtherTypeRether uint16 = 0x9900 // the paper's Rether protocol identifier
	EtherTypeVWCtl  uint16 = 0x88B5 // VirtualWire control plane (local experimental ethertype)
)

// IP protocol numbers.
const (
	ProtoTCP byte = 6
	ProtoUDP byte = 17
)

// Well-known frame offsets used by FSL scripts (Ethernet II + IPv4).
const (
	OffEthDst    = 0
	OffEthSrc    = 6
	OffEthType   = 12
	OffIPHeader  = 14
	OffIPProto   = 23
	OffIPSrc     = 26
	OffIPDst     = 30
	OffTCPSport  = 34
	OffTCPDport  = 36
	OffTCPSeq    = 38
	OffTCPAck    = 42
	OffTCPFlags  = 47
	OffRetherTyp = 14 // Rether packet type, right after the Ethernet header
)

// EthHeaderLen and friends are wire header sizes.
const (
	EthHeaderLen  = 14
	IPv4HeaderLen = 20
	UDPHeaderLen  = 8
	TCPHeaderLen  = 20
)

// TCP flag bits (in the flags byte at frame offset 47).
const (
	TCPFin = 0x01
	TCPSyn = 0x02
	TCPRst = 0x04
	TCPPsh = 0x08
	TCPAck = 0x10
)

// Eth is a decoded Ethernet II header.
type Eth struct {
	Dst  MAC
	Src  MAC
	Type uint16
}

// PutEth writes the header into b[0:14].
func PutEth(b []byte, h Eth) {
	copy(b[OffEthDst:], h.Dst[:])
	copy(b[OffEthSrc:], h.Src[:])
	binary.BigEndian.PutUint16(b[OffEthType:], h.Type)
}

// DecodeEth reads the Ethernet header from a frame.
func DecodeEth(b []byte) (Eth, error) {
	if len(b) < EthHeaderLen {
		return Eth{}, fmt.Errorf("ethernet frame too short: %d bytes", len(b))
	}
	var h Eth
	copy(h.Dst[:], b[OffEthDst:])
	copy(h.Src[:], b[OffEthSrc:])
	h.Type = binary.BigEndian.Uint16(b[OffEthType:])
	return h, nil
}

// IPv4 is a decoded IPv4 header (options are not used on the testbed).
type IPv4 struct {
	TotalLen uint16
	ID       uint16
	TTL      byte
	Proto    byte
	Checksum uint16
	Src      IP
	Dst      IP
}

// PutIPv4 writes a 20-byte IPv4 header with a correct checksum into
// b[0:20]. TotalLen must already include the header itself.
func PutIPv4(b []byte, h IPv4) {
	b[0] = 0x45 // version 4, IHL 5
	b[1] = 0
	binary.BigEndian.PutUint16(b[2:], h.TotalLen)
	binary.BigEndian.PutUint16(b[4:], h.ID)
	binary.BigEndian.PutUint16(b[6:], 0) // flags/fragment
	ttl := h.TTL
	if ttl == 0 {
		ttl = 64
	}
	b[8] = ttl
	b[9] = h.Proto
	b[10], b[11] = 0, 0
	copy(b[12:16], h.Src[:])
	copy(b[16:20], h.Dst[:])
	cs := Checksum16(b[:IPv4HeaderLen])
	binary.BigEndian.PutUint16(b[10:], cs)
}

// DecodeIPv4 reads an IPv4 header from the bytes following the Ethernet
// header. It verifies the header checksum.
func DecodeIPv4(b []byte) (IPv4, error) {
	if len(b) < IPv4HeaderLen {
		return IPv4{}, fmt.Errorf("ipv4 header too short: %d bytes", len(b))
	}
	if b[0]>>4 != 4 {
		return IPv4{}, fmt.Errorf("ipv4: bad version %d", b[0]>>4)
	}
	if Checksum16(b[:IPv4HeaderLen]) != 0 {
		return IPv4{}, fmt.Errorf("ipv4: header checksum mismatch")
	}
	var h IPv4
	h.TotalLen = binary.BigEndian.Uint16(b[2:])
	h.ID = binary.BigEndian.Uint16(b[4:])
	h.TTL = b[8]
	h.Proto = b[9]
	h.Checksum = binary.BigEndian.Uint16(b[10:])
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	return h, nil
}

// Checksum16 computes the RFC 1071 ones-complement checksum over b.
// Computing it over a block that embeds a correct checksum yields zero.
func Checksum16(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + sum>>16
	}
	return ^uint16(sum)
}

// UDP is a decoded UDP header.
type UDP struct {
	SrcPort uint16
	DstPort uint16
	Length  uint16 // header + payload
}

// PutUDP writes the UDP header into b[0:8]. The testbed does not use the
// optional UDP checksum (it is covered by the RLL CRC).
func PutUDP(b []byte, h UDP) {
	binary.BigEndian.PutUint16(b[0:], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:], h.DstPort)
	binary.BigEndian.PutUint16(b[4:], h.Length)
	binary.BigEndian.PutUint16(b[6:], 0)
}

// DecodeUDP reads a UDP header.
func DecodeUDP(b []byte) (UDP, error) {
	if len(b) < UDPHeaderLen {
		return UDP{}, fmt.Errorf("udp header too short: %d bytes", len(b))
	}
	return UDP{
		SrcPort: binary.BigEndian.Uint16(b[0:]),
		DstPort: binary.BigEndian.Uint16(b[2:]),
		Length:  binary.BigEndian.Uint16(b[4:]),
	}, nil
}

// TCP is a decoded TCP header (no options on the testbed; MSS is fixed).
type TCP struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   byte
	Window  uint16
}

// PutTCP writes a 20-byte TCP header into b[0:20].
func PutTCP(b []byte, h TCP) {
	binary.BigEndian.PutUint16(b[0:], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:], h.DstPort)
	binary.BigEndian.PutUint32(b[4:], h.Seq)
	binary.BigEndian.PutUint32(b[8:], h.Ack)
	b[12] = 5 << 4 // data offset 5 words
	b[13] = h.Flags
	binary.BigEndian.PutUint16(b[14:], h.Window)
	binary.BigEndian.PutUint16(b[16:], 0) // checksum: covered by RLL CRC
	binary.BigEndian.PutUint16(b[18:], 0) // urgent
}

// DecodeTCP reads a TCP header.
func DecodeTCP(b []byte) (TCP, error) {
	if len(b) < TCPHeaderLen {
		return TCP{}, fmt.Errorf("tcp header too short: %d bytes", len(b))
	}
	off := int(b[12]>>4) * 4
	if off < TCPHeaderLen || off > len(b) {
		return TCP{}, fmt.Errorf("tcp: bad data offset %d", off)
	}
	return TCP{
		SrcPort: binary.BigEndian.Uint16(b[0:]),
		DstPort: binary.BigEndian.Uint16(b[2:]),
		Seq:     binary.BigEndian.Uint32(b[4:]),
		Ack:     binary.BigEndian.Uint32(b[8:]),
		Flags:   b[13],
		Window:  binary.BigEndian.Uint16(b[14:]),
	}, nil
}

// FlagString renders TCP flags compactly, e.g. "SA" for SYN|ACK.
func FlagString(flags byte) string {
	out := make([]byte, 0, 5)
	if flags&TCPSyn != 0 {
		out = append(out, 'S')
	}
	if flags&TCPFin != 0 {
		out = append(out, 'F')
	}
	if flags&TCPRst != 0 {
		out = append(out, 'R')
	}
	if flags&TCPPsh != 0 {
		out = append(out, 'P')
	}
	if flags&TCPAck != 0 {
		out = append(out, 'A')
	}
	if len(out) == 0 {
		return "."
	}
	return string(out)
}

// BuildTCPFrame assembles a complete Ethernet+IPv4+TCP frame.
func BuildTCPFrame(srcMAC, dstMAC MAC, srcIP, dstIP IP, h TCP, payload []byte) []byte {
	total := EthHeaderLen + IPv4HeaderLen + TCPHeaderLen + len(payload)
	b := make([]byte, total)
	PutEth(b, Eth{Dst: dstMAC, Src: srcMAC, Type: EtherTypeIPv4})
	PutIPv4(b[OffIPHeader:], IPv4{
		TotalLen: uint16(IPv4HeaderLen + TCPHeaderLen + len(payload)),
		Proto:    ProtoTCP,
		Src:      srcIP,
		Dst:      dstIP,
	})
	PutTCP(b[OffIPHeader+IPv4HeaderLen:], h)
	copy(b[OffIPHeader+IPv4HeaderLen+TCPHeaderLen:], payload)
	return b
}

// BuildUDPFrame assembles a complete Ethernet+IPv4+UDP frame.
func BuildUDPFrame(srcMAC, dstMAC MAC, srcIP, dstIP IP, h UDP, payload []byte) []byte {
	total := EthHeaderLen + IPv4HeaderLen + UDPHeaderLen + len(payload)
	b := make([]byte, total)
	PutEth(b, Eth{Dst: dstMAC, Src: srcMAC, Type: EtherTypeIPv4})
	PutIPv4(b[OffIPHeader:], IPv4{
		TotalLen: uint16(IPv4HeaderLen + UDPHeaderLen + len(payload)),
		Proto:    ProtoUDP,
		Src:      srcIP,
		Dst:      dstIP,
	})
	h.Length = uint16(UDPHeaderLen + len(payload))
	PutUDP(b[OffIPHeader+IPv4HeaderLen:], h)
	copy(b[OffIPHeader+IPv4HeaderLen+UDPHeaderLen:], payload)
	return b
}
