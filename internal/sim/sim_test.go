package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerOrdersByTime(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	s.After(30*time.Millisecond, "c", func() { got = append(got, 3) })
	s.After(10*time.Millisecond, "a", func() { got = append(got, 1) })
	s.After(20*time.Millisecond, "b", func() { got = append(got, 2) })
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30*time.Millisecond {
		t.Errorf("Now() = %v, want 30ms", s.Now())
	}
}

func TestSchedulerFIFOAtSameInstant(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Millisecond, "tie", func() { got = append(got, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-instant events fired out of scheduling order: %v", got)
		}
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	ev := s.After(time.Millisecond, "x", func() { fired = true })
	ev.Cancel()
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if fired {
		t.Error("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
}

func TestSchedulerPastSchedulingClamped(t *testing.T) {
	s := NewScheduler(1)
	var at time.Duration = -1
	s.After(10*time.Millisecond, "setup", func() {
		// Attempt to schedule in the past; must fire at Now, not before.
		s.At(time.Millisecond, "past", func() { at = s.Now() })
	})
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if at != 10*time.Millisecond {
		t.Errorf("past event fired at %v, want clamp to 10ms", at)
	}
}

func TestSchedulerStop(t *testing.T) {
	s := NewScheduler(1)
	n := 0
	for i := 1; i <= 5; i++ {
		d := time.Duration(i) * time.Millisecond
		s.After(d, "tick", func() {
			n++
			if n == 2 {
				s.Stop()
			}
		})
	}
	if err := s.Run(); err != ErrStopped {
		t.Fatalf("Run() = %v, want ErrStopped", err)
	}
	if n != 2 {
		t.Errorf("executed %d events after stop, want 2", n)
	}
}

func TestSchedulerRunUntilHorizon(t *testing.T) {
	s := NewScheduler(1)
	var fired []time.Duration
	for i := 1; i <= 4; i++ {
		d := time.Duration(i*10) * time.Millisecond
		s.After(d, "tick", func() { fired = append(fired, s.Now()) })
	}
	if err := s.RunUntil(25 * time.Millisecond); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %d events before horizon, want 2", len(fired))
	}
	if s.Now() != 25*time.Millisecond {
		t.Errorf("clock = %v after horizon, want 25ms", s.Now())
	}
	// Continue past the horizon.
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(fired) != 4 {
		t.Errorf("fired %d events total, want 4", len(fired))
	}
}

func TestSchedulerEventLimit(t *testing.T) {
	s := NewScheduler(1)
	s.Limit = 10
	var tick func()
	tick = func() { s.After(time.Millisecond, "tick", tick) }
	s.After(time.Millisecond, "tick", tick)
	if err := s.Run(); err == nil {
		t.Fatal("infinite event chain did not trip the limit")
	}
}

func TestSchedulerDeterminism(t *testing.T) {
	run := func(seed int64) []time.Duration {
		s := NewScheduler(seed)
		var out []time.Duration
		var step func()
		remaining := 100
		step = func() {
			out = append(out, s.Now())
			remaining--
			if remaining > 0 {
				jitter := time.Duration(s.Rand().Intn(1000)) * time.Microsecond
				s.After(jitter, "step", step)
			}
		}
		s.After(0, "step", step)
		if err := s.Run(); err != nil {
			t.Fatalf("run: %v", err)
		}
		return out
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("runs diverged in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at step %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTimerRearmAndDisarm(t *testing.T) {
	s := NewScheduler(1)
	tm := NewTimer(s, "rto")
	count := 0
	tm.Arm(10*time.Millisecond, func() { count++ })
	tm.Arm(20*time.Millisecond, func() { count += 10 }) // replaces the first
	if !tm.Armed() {
		t.Error("timer not armed after Arm")
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if count != 10 {
		t.Errorf("count = %d, want 10 (only the re-armed firing)", count)
	}

	tm.Arm(5*time.Millisecond, func() { count++ })
	tm.Disarm()
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if count != 10 {
		t.Errorf("disarmed timer fired; count = %d", count)
	}
}

// Property: for any set of (delay, id) pairs, events fire in
// nondecreasing-time order and ties fire in scheduling order.
func TestSchedulerOrderingProperty(t *testing.T) {
	prop := func(delaysRaw []uint16) bool {
		if len(delaysRaw) == 0 {
			return true
		}
		s := NewScheduler(7)
		type firing struct {
			at  time.Duration
			seq int
		}
		var fired []firing
		for i, d := range delaysRaw {
			i := i
			dd := time.Duration(d%64) * time.Millisecond // force ties
			s.After(dd, "p", func() {
				fired = append(fired, firing{s.Now(), i})
			})
		}
		if err := s.Run(); err != nil {
			return false
		}
		if len(fired) != len(delaysRaw) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].at < fired[i-1].at {
				return false
			}
			if fired[i].at == fired[i-1].at && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: RunUntil(h) never executes an event with timestamp > h and
// always leaves the clock at exactly h when events remain beyond it.
func TestRunUntilHorizonProperty(t *testing.T) {
	prop := func(delaysRaw []uint16, horizonRaw uint16) bool {
		s := NewScheduler(3)
		h := time.Duration(horizonRaw%100) * time.Millisecond
		late := 0
		for _, d := range delaysRaw {
			dd := time.Duration(d%200) * time.Millisecond
			s.After(dd, "p", func() {
				if s.Now() > h {
					late++
				}
			})
		}
		if err := s.RunUntil(h); err != nil {
			return false
		}
		return late == 0 && s.Now() <= h
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(13))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkSchedulerThroughput(b *testing.B) {
	s := NewScheduler(1)
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			s.After(time.Microsecond, "tick", tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	s.After(0, "tick", tick)
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}
