// Package sim implements the discrete-event simulation core that every
// other subsystem in this repository runs on.
//
// The paper evaluates VirtualWire on a real two-to-four node Pentium-4
// testbed; this reproduction substitutes a deterministic virtual-time
// simulator (see DESIGN.md, "Substitutions"). All protocol code — the
// Ethernet media, the Reliable Link Layer, TCP, Rether and the
// VirtualWire engines themselves — is written against the Scheduler
// defined here, so an entire multi-node experiment executes in a single
// goroutine with reproducible event ordering.
//
// Events scheduled for the same instant fire in scheduling order
// (a strictly increasing sequence number breaks ties), which keeps runs
// bit-for-bit reproducible for a given RNG seed.
//
// The event queue is a monomorphic 4-ary index heap over *Event — no
// container/heap, no interface boxing — and fired or cancelled events are
// recycled through a scheduler-owned free list, so steady-state
// scheduling performs no heap allocation. See docs/PERFORMANCE.md for
// the invariants this imposes on Event handles.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"virtualwire/internal/metrics"
)

// ErrStopped is returned by Run when the simulation was halted by Stop
// before the event queue drained or the horizon was reached.
var ErrStopped = errors.New("simulation stopped")

// Event lifecycle states. An event is scheduled exactly once; after it
// fires or is cancelled it returns to the scheduler's free list (keeping
// its terminal state so Cancelled() stays truthful on the dead handle)
// and the same struct may back a future scheduling.
const (
	stateScheduled uint8 = iota + 1
	stateFired
	stateCancelled
)

// Event is a scheduled callback. It is returned by At/After so callers can
// cancel it before it fires (for example, a retransmission timer that is
// disarmed by an ACK).
//
// An Event handle is single-use: once the event has fired or been
// cancelled the scheduler may recycle the struct for a future scheduling,
// so retaining a handle past that point and calling Cancel on it later is
// a programming error (it could cancel an unrelated newer event). Timer
// encapsulates the safe retained-handle pattern via a generation check;
// use it for anything that re-arms.
type Event struct {
	Name string

	at    time.Duration
	seq   uint64
	fn    func()
	index int // heap index, -1 once removed
	state uint8
	// gen increments every time the struct is recycled for a new
	// scheduling; holders that retain a handle across firings (Timer)
	// capture it to detect staleness.
	gen uint64
	// s is the owning scheduler, so Cancel can reap the event from the
	// heap eagerly instead of leaving a tombstone for pop to skip.
	s *Scheduler
}

// Time reports the virtual instant the event is scheduled for.
func (e *Event) Time() time.Duration { return e.at }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.state == stateCancelled }

// Cancel prevents the event from firing. Cancelling an event that already
// fired (or was already cancelled) is a no-op. The callback closure is
// released immediately — state captured by it (a retransmission timer's
// frame, for instance) does not linger until the event's timestamp is
// reached — and the event is removed from the queue right away.
func (e *Event) Cancel() {
	if e.state != stateScheduled {
		return
	}
	e.state = stateCancelled
	e.fn = nil
	if e.s != nil && e.index >= 0 {
		e.s.removeAt(e.index)
		e.s.recycle(e)
	}
}

// Scheduler is a single-threaded discrete-event scheduler with a virtual
// clock. The zero value is not usable; construct with NewScheduler.
//
// Scheduler is not safe for concurrent use: all simulated components run
// inside event callbacks on the same goroutine, which is the whole point.
// (Independent Schedulers on separate goroutines — one per sweep point in
// experiments.RunParallel — are fine; nothing is shared between them.)
type Scheduler struct {
	now     time.Duration
	seq     uint64
	queue   []*Event // 4-ary min-heap on (at, seq)
	free    []*Event // recycled Event structs
	rng     *rand.Rand
	stopped bool
	running bool

	// executed counts events that have fired, for diagnostics and to
	// guard against runaway simulations in tests.
	executed uint64
	// recycled counts events served from the free list, for the
	// allocation-efficiency gauge in Snapshot.
	recycled uint64
	// Limit, when non-zero, aborts Run with an error after that many
	// events. It exists so a buggy protocol cannot spin a test forever.
	Limit uint64
}

// NewScheduler returns a scheduler whose clock starts at zero and whose
// random source is seeded with seed. Two schedulers constructed with the
// same seed and fed the same scheduling calls produce identical runs.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time, measured from simulation start.
func (s *Scheduler) Now() time.Duration { return s.now }

// Rand returns the scheduler's deterministic random source. Components
// must draw all randomness (backoff jitter, bit errors, byte perturbation)
// from this source to stay reproducible.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Executed reports how many events have fired so far.
func (s *Scheduler) Executed() uint64 { return s.executed }

// Pending reports how many events are scheduled and not yet fired.
// Cancelled events are reaped eagerly, so they never linger here.
func (s *Scheduler) Pending() int { return len(s.queue) }

// PeekTime returns the timestamp of the earliest pending event, or false
// when the queue is empty. It lets an external run loop reproduce
// RunUntil's horizon semantics (never execute an event past the horizon)
// while interleaving its own checks — cancellation polling, scenario
// completion — between events.
func (s *Scheduler) PeekTime() (time.Duration, bool) {
	if len(s.queue) == 0 {
		return 0, false
	}
	return s.queue[0].at, true
}

// Snapshot implements the uniform metrics hook for the scheduler itself:
// how much work the simulation has done and how much is queued.
func (s *Scheduler) Snapshot() metrics.Snapshot {
	var sn metrics.Snapshot
	sn.Counter("events_executed", s.executed)
	sn.Counter("events_scheduled", s.seq)
	sn.Counter("events_recycled", s.recycled)
	sn.Gauge("events_pending", float64(len(s.queue)))
	sn.Gauge("free_list_len", float64(len(s.free)))
	return sn
}

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past (t < Now) is a programming error and fires immediately at Now
// instead, preserving the clock's monotonicity.
func (s *Scheduler) At(t time.Duration, name string, fn func()) *Event {
	if t < s.now {
		t = s.now
	}
	s.seq++
	var ev *Event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		s.recycled++
		ev.gen++
	} else {
		ev = &Event{s: s}
	}
	ev.Name = name
	ev.at = t
	ev.seq = s.seq
	ev.fn = fn
	ev.state = stateScheduled
	s.push(ev)
	return ev
}

// After schedules fn to run d from now. A negative d behaves like zero.
func (s *Scheduler) After(d time.Duration, name string, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, name, fn)
}

// Stop halts the run loop after the currently executing event returns.
func (s *Scheduler) Stop() { s.stopped = true }

// Reset rewinds the scheduler to its pristine post-NewScheduler state,
// reseeded with seed: the clock returns to zero, every pending event is
// cancelled, and the executed/scheduled/recycled counters restart. The
// event free list survives (generations intact), so Timer handles armed
// before the reset are recognized as stale rather than acted on, and a
// reset scheduler schedules without allocating. Calling Reset from
// inside an event callback is a programming error.
func (s *Scheduler) Reset(seed int64) {
	if s.running {
		panic("sim: Reset called from inside the run loop")
	}
	for _, ev := range s.queue {
		ev.state = stateCancelled
		ev.fn = nil
		ev.index = -1
		s.free = append(s.free, ev)
	}
	s.queue = s.queue[:0]
	s.now = 0
	s.seq = 0
	s.executed = 0
	s.recycled = 0
	s.stopped = false
	s.rng.Seed(seed)
}

// Step fires the single earliest pending event and advances the clock.
// It reports false when the queue is empty.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	ev := s.popMin()
	s.now = ev.at
	s.executed++
	fn := ev.fn
	ev.fn = nil
	ev.state = stateFired
	fn()
	// Recycled only after fn returns: if fn re-arms a timer it must not
	// be handed the very struct whose firing it is running inside.
	s.recycle(ev)
	return true
}

// Run executes events until the queue drains, Stop is called, or the
// event Limit is exceeded. It returns nil on a drained queue, ErrStopped
// if stopped, and a descriptive error if the limit tripped.
func (s *Scheduler) Run() error {
	return s.RunUntil(-1)
}

// RunUntil executes events with timestamps <= horizon (a negative horizon
// means "no horizon"). When the horizon is reached the clock is advanced
// to it so a subsequent RunUntil continues from there.
func (s *Scheduler) RunUntil(horizon time.Duration) error {
	if s.running {
		return errors.New("scheduler re-entered")
	}
	s.running = true
	defer func() { s.running = false }()
	s.stopped = false
	for {
		if s.stopped {
			return ErrStopped
		}
		if s.Limit > 0 && s.executed >= s.Limit {
			return fmt.Errorf("event limit %d exceeded at t=%v", s.Limit, s.now)
		}
		if len(s.queue) == 0 {
			// Idle: time still passes up to the horizon, so a
			// subsequent RunUntil continues from there.
			if horizon >= 0 && horizon > s.now {
				s.now = horizon
			}
			return nil
		}
		if horizon >= 0 && s.queue[0].at > horizon {
			s.now = horizon
			return nil
		}
		s.Step()
	}
}

// recycle returns a dead event to the free list. The terminal state
// (fired or cancelled) is preserved so a retained handle still answers
// Cancelled() truthfully until the struct is reused. The free list is
// bounded only by the maximum number of concurrently pending events,
// which the media's finite queues already cap.
func (s *Scheduler) recycle(ev *Event) {
	ev.fn = nil
	ev.index = -1
	s.free = append(s.free, ev)
}

// --- 4-ary index heap on (at, seq) ---
//
// A 4-ary layout halves the tree depth of the classic binary heap: pushes
// compare against a quarter as many ancestors, and though pops compare up
// to four children per level, the levels are half as many and the
// children share cache lines. Everything is monomorphic — no interface
// conversions, no indirect Less/Swap calls.

// eventLess orders the heap: earliest timestamp first, scheduling order
// breaking ties (the determinism guarantee).
func eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push appends ev and restores the heap property.
func (s *Scheduler) push(ev *Event) {
	i := len(s.queue)
	s.queue = append(s.queue, ev)
	ev.index = i
	s.siftUp(i)
}

// popMin removes and returns the earliest event.
func (s *Scheduler) popMin() *Event {
	q := s.queue
	min := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q[0].index = 0
	q[last] = nil
	s.queue = q[:last]
	if last > 0 {
		s.siftDown(0)
	}
	min.index = -1
	return min
}

// removeAt deletes the event at heap index i (eager cancel reap). The
// index is known, so this is two sifts at worst — no linear scan and no
// tombstone left for pop to skip over.
func (s *Scheduler) removeAt(i int) {
	q := s.queue
	last := len(q) - 1
	q[i].index = -1
	if i != last {
		q[i] = q[last]
		q[i].index = i
	}
	q[last] = nil
	s.queue = q[:last]
	if i < last {
		// The relocated element may need to move either way.
		s.siftDown(i)
		s.siftUp(i)
	}
}

func (s *Scheduler) siftUp(i int) {
	q := s.queue
	ev := q[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !eventLess(ev, q[p]) {
			break
		}
		q[i] = q[p]
		q[i].index = i
		i = p
	}
	q[i] = ev
	ev.index = i
}

func (s *Scheduler) siftDown(i int) {
	q := s.queue
	n := len(q)
	ev := q[i]
	for {
		c := i<<2 + 1 // first child
		if c >= n {
			break
		}
		// Find the smallest of up to four children.
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if eventLess(q[j], q[m]) {
				m = j
			}
		}
		if !eventLess(q[m], ev) {
			break
		}
		q[i] = q[m]
		q[i].index = i
		i = m
	}
	q[i] = ev
	ev.index = i
}

// Timer is a restartable one-shot timer, the moral equivalent of the
// kernel software timers the paper's DELAY primitive is built on. The
// zero value is ready to use after SetScheduler (or construct via
// NewTimer).
//
// Timer is the sanctioned way to retain an event handle across firings:
// it captures the event's generation when arming and verifies it before
// every Cancel or Armed query, so a handle whose event already fired and
// was recycled for an unrelated scheduling is recognized as stale rather
// than acted on.
type Timer struct {
	sched *Scheduler
	ev    *Event
	gen   uint64
	name  string
}

// NewTimer returns a timer bound to s. The name labels scheduled events
// for diagnostics.
func NewTimer(s *Scheduler, name string) *Timer {
	return &Timer{sched: s, name: name}
}

// Arm (re)schedules fn to fire after d, cancelling any previous schedule.
func (t *Timer) Arm(d time.Duration, fn func()) {
	t.Disarm()
	t.ev = t.sched.After(d, t.name, fn)
	t.gen = t.ev.gen
}

// Disarm cancels the pending firing, if any.
func (t *Timer) Disarm() {
	if t.ev != nil && t.ev.gen == t.gen {
		t.ev.Cancel()
	}
	t.ev = nil
}

// Armed reports whether the timer has a pending firing. This is
// scheduler-confirmed state: the handle's generation must match the
// arming and the event must still be queued — a fired, cancelled, or
// recycled event reports false, whatever the stale handle's fields say.
func (t *Timer) Armed() bool {
	return t.ev != nil && t.ev.gen == t.gen && t.ev.state == stateScheduled
}
