// Package sim implements the discrete-event simulation core that every
// other subsystem in this repository runs on.
//
// The paper evaluates VirtualWire on a real two-to-four node Pentium-4
// testbed; this reproduction substitutes a deterministic virtual-time
// simulator (see DESIGN.md, "Substitutions"). All protocol code — the
// Ethernet media, the Reliable Link Layer, TCP, Rether and the
// VirtualWire engines themselves — is written against the Scheduler
// defined here, so an entire multi-node experiment executes in a single
// goroutine with reproducible event ordering.
//
// Events scheduled for the same instant fire in scheduling order
// (a strictly increasing sequence number breaks ties), which keeps runs
// bit-for-bit reproducible for a given RNG seed.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"virtualwire/internal/metrics"
)

// ErrStopped is returned by Run when the simulation was halted by Stop
// before the event queue drained or the horizon was reached.
var ErrStopped = errors.New("simulation stopped")

// Event is a scheduled callback. It is returned by At/After so callers can
// cancel it before it fires (for example, a retransmission timer that is
// disarmed by an ACK).
type Event struct {
	Name string

	at        time.Duration
	seq       uint64
	fn        func()
	index     int // heap index, -1 once removed
	cancelled bool
}

// Time reports the virtual instant the event is scheduled for.
func (e *Event) Time() time.Duration { return e.at }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancelled }

// Cancel prevents the event from firing. Cancelling an event that already
// fired (or was already cancelled) is a no-op.
func (e *Event) Cancel() { e.cancelled = true }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		return
	}
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Scheduler is a single-threaded discrete-event scheduler with a virtual
// clock. The zero value is not usable; construct with NewScheduler.
//
// Scheduler is not safe for concurrent use: all simulated components run
// inside event callbacks on the same goroutine, which is the whole point.
type Scheduler struct {
	now     time.Duration
	seq     uint64
	queue   eventQueue
	rng     *rand.Rand
	stopped bool
	running bool

	// executed counts events that have fired, for diagnostics and to
	// guard against runaway simulations in tests.
	executed uint64
	// Limit, when non-zero, aborts Run with an error after that many
	// events. It exists so a buggy protocol cannot spin a test forever.
	Limit uint64
}

// NewScheduler returns a scheduler whose clock starts at zero and whose
// random source is seeded with seed. Two schedulers constructed with the
// same seed and fed the same scheduling calls produce identical runs.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time, measured from simulation start.
func (s *Scheduler) Now() time.Duration { return s.now }

// Rand returns the scheduler's deterministic random source. Components
// must draw all randomness (backoff jitter, bit errors, byte perturbation)
// from this source to stay reproducible.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Executed reports how many events have fired so far.
func (s *Scheduler) Executed() uint64 { return s.executed }

// Pending reports how many events are scheduled and not yet fired
// (including cancelled events that have not been reaped).
func (s *Scheduler) Pending() int { return len(s.queue) }

// Snapshot implements the uniform metrics hook for the scheduler itself:
// how much work the simulation has done and how much is queued.
func (s *Scheduler) Snapshot() metrics.Snapshot {
	var sn metrics.Snapshot
	sn.Counter("events_executed", s.executed)
	sn.Counter("events_scheduled", s.seq)
	sn.Gauge("events_pending", float64(len(s.queue)))
	return sn
}

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past (t < Now) is a programming error and fires immediately at Now
// instead, preserving the clock's monotonicity.
func (s *Scheduler) At(t time.Duration, name string, fn func()) *Event {
	if t < s.now {
		t = s.now
	}
	s.seq++
	ev := &Event{Name: name, at: t, seq: s.seq, fn: fn}
	heap.Push(&s.queue, ev)
	return ev
}

// After schedules fn to run d from now. A negative d behaves like zero.
func (s *Scheduler) After(d time.Duration, name string, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, name, fn)
}

// Stop halts the run loop after the currently executing event returns.
func (s *Scheduler) Stop() { s.stopped = true }

// Step fires the single earliest pending event and advances the clock.
// It reports false when the queue is empty. Cancelled events are skipped
// silently but still advance nothing.
func (s *Scheduler) Step() bool {
	for len(s.queue) > 0 {
		ev, ok := heap.Pop(&s.queue).(*Event)
		if !ok {
			return false
		}
		if ev.cancelled {
			continue
		}
		s.now = ev.at
		s.executed++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains, Stop is called, or the
// event Limit is exceeded. It returns nil on a drained queue, ErrStopped
// if stopped, and a descriptive error if the limit tripped.
func (s *Scheduler) Run() error {
	return s.RunUntil(-1)
}

// RunUntil executes events with timestamps <= horizon (a negative horizon
// means "no horizon"). When the horizon is reached the clock is advanced
// to it so a subsequent RunUntil continues from there.
func (s *Scheduler) RunUntil(horizon time.Duration) error {
	if s.running {
		return errors.New("scheduler re-entered")
	}
	s.running = true
	defer func() { s.running = false }()
	s.stopped = false
	for {
		if s.stopped {
			return ErrStopped
		}
		if s.Limit > 0 && s.executed >= s.Limit {
			return fmt.Errorf("event limit %d exceeded at t=%v", s.Limit, s.now)
		}
		next := s.peek()
		if next == nil {
			// Idle: time still passes up to the horizon, so a
			// subsequent RunUntil continues from there.
			if horizon >= 0 && horizon > s.now {
				s.now = horizon
			}
			return nil
		}
		if horizon >= 0 && next.at > horizon {
			s.now = horizon
			return nil
		}
		s.Step()
	}
}

func (s *Scheduler) peek() *Event {
	for len(s.queue) > 0 {
		if !s.queue[0].cancelled {
			return s.queue[0]
		}
		heap.Pop(&s.queue)
	}
	return nil
}

// Timer is a restartable one-shot timer, the moral equivalent of the
// kernel software timers the paper's DELAY primitive is built on. The
// zero value is ready to use after SetScheduler (or construct via
// NewTimer).
type Timer struct {
	sched *Scheduler
	ev    *Event
	name  string
}

// NewTimer returns a timer bound to s. The name labels scheduled events
// for diagnostics.
func NewTimer(s *Scheduler, name string) *Timer {
	return &Timer{sched: s, name: name}
}

// Arm (re)schedules fn to fire after d, cancelling any previous schedule.
func (t *Timer) Arm(d time.Duration, fn func()) {
	t.Disarm()
	t.ev = t.sched.After(d, t.name, fn)
}

// Disarm cancels the pending firing, if any.
func (t *Timer) Disarm() {
	if t.ev != nil {
		t.ev.Cancel()
		t.ev = nil
	}
}

// Armed reports whether the timer has a pending firing.
func (t *Timer) Armed() bool {
	return t.ev != nil && !t.ev.Cancelled() && t.ev.index >= 0
}
