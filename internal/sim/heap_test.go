package sim

import (
	"container/heap"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// --- reference scheduler: a deliberately naive sorted-slice implementation
// with the same (at, seq) ordering contract, used as the oracle for the
// index-heap scheduler's firing order.

type refEvent struct {
	at        time.Duration
	seq       uint64
	fn        func()
	cancelled bool
}

type refScheduler struct {
	now    time.Duration
	seq    uint64
	events []*refEvent
}

func (r *refScheduler) after(d time.Duration, fn func()) *refEvent {
	if d < 0 {
		d = 0
	}
	r.seq++
	ev := &refEvent{at: r.now + d, seq: r.seq, fn: fn}
	r.events = append(r.events, ev)
	return ev
}

func (r *refScheduler) run() {
	for {
		min := -1
		for i, ev := range r.events {
			if ev.cancelled {
				continue
			}
			if min < 0 || ev.at < r.events[min].at ||
				(ev.at == r.events[min].at && ev.seq < r.events[min].seq) {
				min = i
			}
		}
		if min < 0 {
			return
		}
		ev := r.events[min]
		r.events = append(r.events[:min], r.events[min+1:]...)
		r.now = ev.at
		ev.fn()
	}
}

// schedDriver abstracts the two schedulers behind the operations the
// workload script needs: schedule-after and cancel-by-handle.
type schedDriver struct {
	after  func(d time.Duration, fn func()) (cancel func())
	run    func()
	now    func() time.Duration
}

func realDriver() *schedDriver {
	s := NewScheduler(1)
	return &schedDriver{
		after: func(d time.Duration, fn func()) func() {
			ev := s.After(d, "w", fn)
			return ev.Cancel
		},
		run: func() { _ = s.Run() },
		now: s.Now,
	}
}

func refDriver() *schedDriver {
	r := &refScheduler{}
	return &schedDriver{
		after: func(d time.Duration, fn func()) func() {
			ev := r.after(d, fn)
			return func() { ev.cancelled = true; ev.fn = nil }
		},
		run: func() { r.run() },
		now: func() time.Duration { return r.now },
	}
}

// workloadStep drives one event firing of the randomized workload: it may
// spawn follow-up events, cancel a pending one, or re-arm (cancel+spawn).
type workloadStep struct {
	SpawnDelayMs uint8
	Spawn        bool
	CancelPick   uint8
	Cancel       bool
	Rearm        bool
}

// runWorkload executes the scripted workload against a driver and returns
// the observed firing trace as (id, at) pairs.
func runWorkload(d *schedDriver, seeds []uint8, steps []workloadStep) []int64 {
	var trace []int64
	type handle struct {
		id     int
		cancel func()
	}
	var live []handle
	fired := map[int]bool{}
	nextID := 0
	stepIdx := 0

	var schedule func(delay time.Duration)
	schedule = func(delay time.Duration) {
		id := nextID
		nextID++
		var h handle
		h.id = id
		h.cancel = d.after(delay, func() {
			fired[id] = true
			trace = append(trace, int64(id), int64(d.now()))
			if stepIdx >= len(steps) {
				return
			}
			st := steps[stepIdx]
			stepIdx++
			if st.Spawn {
				schedule(time.Duration(st.SpawnDelayMs%32) * time.Millisecond)
			}
			// Prune fired handles, then maybe cancel or re-arm one.
			alive := live[:0]
			for _, lh := range live {
				if !fired[lh.id] {
					alive = append(alive, lh)
				}
			}
			live = alive
			if len(live) > 0 && (st.Cancel || st.Rearm) {
				pick := int(st.CancelPick) % len(live)
				victim := live[pick]
				victim.cancel()
				fired[victim.id] = true // treat as dead either way
				if st.Rearm {
					schedule(time.Duration(st.SpawnDelayMs%16) * time.Millisecond)
				}
			}
		})
		live = append(live, h)
	}

	for _, sd := range seeds {
		schedule(time.Duration(sd%64) * time.Millisecond)
	}
	d.run()
	return trace
}

// Property: the index-heap scheduler fires the exact same events at the
// exact same virtual instants as the naive sorted-slice reference, across
// randomized workloads that mix scheduling, cancellation and re-arming
// from inside callbacks.
func TestSchedulerMatchesReference(t *testing.T) {
	prop := func(seeds []uint8, rawSteps []workloadStep) bool {
		if len(seeds) == 0 {
			return true
		}
		if len(seeds) > 40 {
			seeds = seeds[:40]
		}
		if len(rawSteps) > 200 {
			rawSteps = rawSteps[:200]
		}
		got := runWorkload(realDriver(), seeds, rawSteps)
		want := runWorkload(refDriver(), seeds, rawSteps)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(17))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Regression: cancelling an event must release its callback closure
// immediately — a cancelled retransmission timer must not pin its frame
// buffer in memory until the event's timestamp rolls around.
func TestCancelReleasesCallback(t *testing.T) {
	s := NewScheduler(1)
	frame := make([]byte, 1500)
	ev := s.After(time.Hour, "rto", func() { _ = frame[0] })
	if ev.fn == nil {
		t.Fatal("scheduled event has no callback")
	}
	ev.Cancel()
	if ev.fn != nil {
		t.Error("Cancel retained the callback closure (frame reference lingers)")
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
}

// Cancel must reap the event from the queue eagerly, not leave a
// tombstone for pop to skip later.
func TestCancelEagerReap(t *testing.T) {
	s := NewScheduler(1)
	var evs []*Event
	for i := 0; i < 10; i++ {
		evs = append(evs, s.After(time.Duration(i+1)*time.Millisecond, "x", func() {}))
	}
	if got := s.Pending(); got != 10 {
		t.Fatalf("Pending() = %d, want 10", got)
	}
	evs[3].Cancel()
	evs[7].Cancel()
	if got := s.Pending(); got != 8 {
		t.Errorf("Pending() = %d after two cancels, want 8 (eager reap)", got)
	}
	if !evs[3].Cancelled() || !evs[7].Cancelled() {
		t.Error("cancelled handles do not report Cancelled()")
	}
	fired := 0
	for i, ev := range evs {
		if i != 3 && i != 7 {
			_ = ev
			fired++
		}
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := s.Executed(); got != uint64(fired) {
		t.Errorf("executed %d events, want %d (cancelled ones must not fire)", got, fired)
	}
}

// Fired and cancelled events must be recycled through the free list, and
// reuse must bump the generation so stale handles are detectable.
func TestEventFreeListReuse(t *testing.T) {
	s := NewScheduler(1)
	ev1 := s.After(time.Millisecond, "a", func() {})
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	gen1 := ev1.gen
	ev2 := s.After(time.Millisecond, "b", func() {})
	if ev2 != ev1 {
		t.Error("fired event was not recycled for the next scheduling")
	}
	if ev2.gen != gen1+1 {
		t.Errorf("gen = %d after reuse, want %d", ev2.gen, gen1+1)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}

	// Steady-state churn must not grow the free list beyond the peak
	// number of concurrently pending events.
	for i := 0; i < 1000; i++ {
		s.After(time.Duration(i)*time.Microsecond, "churn", func() {})
		if err := s.Run(); err != nil {
			t.Fatalf("run: %v", err)
		}
	}
	if n := len(s.free); n > 2 {
		t.Errorf("free list grew to %d under serial churn, want <= 2", n)
	}
}

// Timer must report scheduler-confirmed armed state across the full
// arm → fire → re-arm cycle, including when its recycled event struct is
// reused by an unrelated scheduling in between.
func TestTimerArmFireRearm(t *testing.T) {
	s := NewScheduler(1)
	tm := NewTimer(s, "rto")
	fires := 0
	tm.Arm(time.Millisecond, func() { fires++ })
	if !tm.Armed() {
		t.Fatal("Armed() = false after Arm")
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if fires != 1 {
		t.Fatalf("fires = %d, want 1", fires)
	}
	if tm.Armed() {
		t.Error("Armed() = true after firing")
	}

	// An unrelated scheduling now grabs the recycled struct; the stale
	// timer handle must not mistake it for its own.
	other := s.After(time.Millisecond, "other", func() {})
	if tm.Armed() {
		t.Error("Armed() = true while an unrelated event reuses the struct")
	}
	tm.Disarm() // must not cancel the unrelated event
	if other.Cancelled() {
		t.Error("stale timer Disarm cancelled an unrelated event")
	}

	// Re-arm and fire again.
	tm.Arm(2*time.Millisecond, func() { fires += 10 })
	if !tm.Armed() {
		t.Error("Armed() = false after re-arm")
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if fires != 11 {
		t.Errorf("fires = %d after re-arm cycle, want 11", fires)
	}
}

// --- container/heap baseline for the scheduler microbenchmark ---
//
// This is the event queue the scheduler used before the monomorphic
// index heap: a binary heap behind the container/heap interface, paying
// an interface conversion per operation plus indirect Less/Swap calls.
// It exists only as the benchmark baseline.

type boxedEvent struct {
	at    time.Duration
	seq   uint64
	fn    func()
	index int
}

type boxedQueue []*boxedEvent

func (q boxedQueue) Len() int { return len(q) }
func (q boxedQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q boxedQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *boxedQueue) Push(x any) {
	ev := x.(*boxedEvent)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *boxedQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// BenchmarkSchedulerBaselineContainerHeap measures the pre-overhaul queue
// discipline: one push + one pop through container/heap per event, with a
// fresh allocation per event. Compare against BenchmarkSchedulerThroughput.
func BenchmarkSchedulerBaselineContainerHeap(b *testing.B) {
	var q boxedQueue
	heap.Init(&q)
	now := time.Duration(0)
	seq := uint64(0)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			seq++
			heap.Push(&q, &boxedEvent{at: now + time.Microsecond, seq: seq, fn: tick})
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	seq++
	heap.Push(&q, &boxedEvent{at: now, seq: seq, fn: tick})
	for q.Len() > 0 {
		ev := heap.Pop(&q).(*boxedEvent)
		now = ev.at
		ev.fn()
	}
}

// BenchmarkSchedulerArmCancel measures the arm/cancel churn pattern of a
// retransmission timer: every event is scheduled and then cancelled
// before it can fire, exercising the eager-reap path.
func BenchmarkSchedulerArmCancel(b *testing.B) {
	s := NewScheduler(1)
	tm := NewTimer(s, "rto")
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Arm(time.Millisecond, fn)
		tm.Disarm()
	}
}
