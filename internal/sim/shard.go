package sim

import (
	"errors"
	"fmt"
	"time"
)

// Conservative parallel execution support: RunWindow executes one
// shard's events up to a window boundary, and ShardSet runs a group of
// schedulers over a sequence of such windows on persistent worker
// goroutines with a barrier between windows.
//
// The scheme is classic conservative parallel DES: the caller computes
// a window end E such that no event outside a shard can affect that
// shard before E (in this repository, E derives from trunk propagation
// plus minimum-frame serialization — see the facade's sharded run
// loop), every shard executes all its events strictly below E, and
// cross-shard traffic is exchanged at the barrier. Nothing here knows
// about frames or mailboxes; this file is only the execution substrate.

// RunWindow executes events with timestamps strictly below end, then
// advances the clock to clockTo if that is ahead (callers pass the
// window boundary, capped at the run deadline, so every shard's clock
// agrees at each barrier). It honors Stop and the event Limit exactly
// like RunUntil.
func (s *Scheduler) RunWindow(end, clockTo time.Duration) error {
	if s.running {
		return errors.New("scheduler re-entered")
	}
	s.running = true
	defer func() { s.running = false }()
	s.stopped = false
	for len(s.queue) > 0 && s.queue[0].at < end {
		if s.stopped {
			return ErrStopped
		}
		if s.Limit > 0 && s.executed >= s.Limit {
			return fmt.Errorf("event limit %d exceeded at t=%v", s.Limit, s.now)
		}
		s.Step()
	}
	if clockTo > s.now {
		s.now = clockTo
	}
	return nil
}

// windowCmd asks a worker to run one window.
type windowCmd struct {
	end     time.Duration
	clockTo time.Duration
}

// ShardSet drives a group of schedulers through synchronized windows.
// Scheduler 0 runs inline on the calling goroutine (so a one-shard set
// costs no goroutines or channel operations at all); the rest run on
// persistent workers spawned by Start. Between RunWindow calls every
// worker is parked at the barrier, so the coordinator may freely touch
// any shard's state — that quiescence is the happens-before edge the
// mailbox drain relies on.
type ShardSet struct {
	scheds  []*Scheduler
	cmds    []chan windowCmd
	acks    chan error
	started bool
}

// NewShardSet returns a set over the given schedulers (at least one).
func NewShardSet(scheds []*Scheduler) *ShardSet {
	return &ShardSet{scheds: scheds}
}

// Start spawns one worker per scheduler beyond the first. Idempotent
// until Stop.
func (ss *ShardSet) Start() {
	if ss.started || len(ss.scheds) <= 1 {
		ss.started = true
		return
	}
	ss.started = true
	ss.cmds = make([]chan windowCmd, len(ss.scheds)-1)
	ss.acks = make(chan error, len(ss.scheds)-1)
	for i := 1; i < len(ss.scheds); i++ {
		ch := make(chan windowCmd)
		ss.cmds[i-1] = ch
		s := ss.scheds[i]
		go func() {
			for cmd := range ch {
				ss.acks <- s.RunWindow(cmd.end, cmd.clockTo)
			}
		}()
	}
}

// Stop parks and releases the workers. The set may be Started again.
func (ss *ShardSet) Stop() {
	if !ss.started {
		return
	}
	ss.started = false
	for _, ch := range ss.cmds {
		close(ch)
	}
	ss.cmds = nil
	ss.acks = nil
}

// RunWindow executes one window on every shard in parallel and blocks
// until all of them reach the barrier. The first error (by shard order
// of arrival) is returned; all shards complete their window regardless.
func (ss *ShardSet) RunWindow(end, clockTo time.Duration) error {
	if !ss.started {
		ss.Start()
	}
	cmd := windowCmd{end: end, clockTo: clockTo}
	for _, ch := range ss.cmds {
		ch <- cmd
	}
	err := ss.scheds[0].RunWindow(end, clockTo)
	for range ss.cmds {
		if e := <-ss.acks; e != nil && err == nil {
			err = e
		}
	}
	return err
}

// PeekMin returns the earliest pending event time across all shards,
// or false when every queue is empty.
func (ss *ShardSet) PeekMin() (time.Duration, bool) {
	var min time.Duration
	any := false
	for _, s := range ss.scheds {
		if t, ok := s.PeekTime(); ok && (!any || t < min) {
			min, any = t, true
		}
	}
	return min, any
}

// Executed sums fired events across all shards.
func (ss *ShardSet) Executed() uint64 {
	var n uint64
	for _, s := range ss.scheds {
		n += s.Executed()
	}
	return n
}
