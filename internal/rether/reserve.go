package rether

import (
	"encoding/binary"

	"virtualwire/internal/packet"
	"virtualwire/internal/sim"
)

// Real-time bandwidth reservation (admission control). Rether's RT mode
// guarantees per-cycle transmission slots to admitted streams; the ring
// monitor (the first node of the initial ring order) accounts for the
// shared budget and grants or denies requests. Messages ride the 0x9900
// control plane: RetherReserve carries the requested slot count,
// RetherReserveOK the granted count (0 = denied).
//
// A granted reservation raises the node's per-visit RT quota, so frames
// matched by the RT classifier get that much guaranteed service each
// token cycle.

// ReserveResult reports the outcome of a reservation request.
type ReserveResult struct {
	Granted bool
	Slots   int
}

// reservePayload encodes the slot count in the control frame payload.
func reservePayload(slots int) []byte {
	b := make([]byte, 4)
	binary.BigEndian.PutUint32(b, uint32(slots))
	return b
}

func decodeReservePayload(b []byte) (int, bool) {
	if len(b) < 4 {
		return 0, false
	}
	return int(binary.BigEndian.Uint32(b)), true
}

// RequestReservation asks the ring monitor for slots real-time
// transmission slots per token cycle. cb fires with the outcome; if the
// monitor does not answer within three token-ack timeouts the request
// fails locally. A node may re-request to grow or shrink (slots = 0
// releases) its reservation.
func (l *Layer) RequestReservation(slots int, cb func(ReserveResult)) {
	if slots < 0 {
		slots = 0
	}
	monitor, ok := l.monitorMAC()
	if !ok {
		if cb != nil {
			cb(ReserveResult{})
		}
		return
	}
	if monitor == l.self {
		res := l.grantReservation(l.self, slots)
		l.applyGrant(res)
		if cb != nil {
			cb(res)
		}
		return
	}
	l.Stats.ReservationsRequested++
	l.reserveCb = cb
	l.sendCtl(monitor, packet.RetherReserve, uint32(slots), reservePayload(slots))
	if l.reserveTimer == nil {
		l.reserveTimer = sim.NewTimer(l.sched, "rether.reserve")
	}
	l.reserveTimer.Arm(3*l.cfg.TokenAckTimeout, func() {
		cb := l.reserveCb
		l.reserveCb = nil
		if cb != nil {
			cb(ReserveResult{})
		}
	})
}

// RTSlots reports the node's currently granted per-cycle RT quota.
func (l *Layer) RTSlots() int { return l.cfg.RTQuota }

// monitorMAC returns the current ring monitor (lowest surviving index of
// the ring).
func (l *Layer) monitorMAC() (packet.MAC, bool) {
	if len(l.ring) == 0 {
		return packet.MAC{}, false
	}
	return l.ring[0], true
}

// grantReservation runs on the monitor: admit if the ring-wide budget
// allows.
func (l *Layer) grantReservation(node packet.MAC, slots int) ReserveResult {
	if l.grants == nil {
		l.grants = make(map[packet.MAC]int)
	}
	total := 0
	for m, s := range l.grants {
		if m != node {
			total += s
		}
	}
	if total+slots > l.cfg.RTBudget {
		l.Stats.ReservationsDenied++
		return ReserveResult{Granted: false, Slots: 0}
	}
	l.grants[node] = slots
	l.Stats.ReservationsGranted++
	return ReserveResult{Granted: true, Slots: slots}
}

// applyGrant installs a granted quota locally.
func (l *Layer) applyGrant(res ReserveResult) {
	if res.Granted {
		l.cfg.RTQuota = res.Slots
	}
}

// handleReserve processes a RESERVE request at the monitor.
func (l *Layer) handleReserve(from packet.MAC, payload []byte) {
	slots, ok := decodeReservePayload(payload)
	if !ok {
		return
	}
	res := l.grantReservation(from, slots)
	granted := uint32(0)
	if res.Granted {
		granted = 1
	}
	l.sendCtl(from, packet.RetherReserveOK, granted, reservePayload(res.Slots))
}

// handleReserveOK processes the monitor's answer at the requester.
func (l *Layer) handleReserveOK(seq uint32, payload []byte) {
	slots, ok := decodeReservePayload(payload)
	if !ok {
		return
	}
	res := ReserveResult{Granted: seq == 1, Slots: slots}
	l.applyGrant(res)
	if l.reserveTimer != nil {
		l.reserveTimer.Disarm()
	}
	cb := l.reserveCb
	l.reserveCb = nil
	if cb != nil {
		cb(res)
	}
}
