package rether

import (
	"testing"
	"time"

	"virtualwire/internal/ether"
	"virtualwire/internal/packet"
	"virtualwire/internal/sim"
)

func TestReservationGrantedWithinBudget(t *testing.T) {
	s, nodes := buildRing(t, 21, 4, Config{RTBudget: 10})
	var res ReserveResult
	nodes[2].rether.RequestReservation(6, func(r ReserveResult) { res = r })
	if err := s.RunUntil(100 * time.Millisecond); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !res.Granted || res.Slots != 6 {
		t.Fatalf("result = %+v, want grant of 6", res)
	}
	if nodes[2].rether.RTSlots() != 6 {
		t.Errorf("RTSlots = %d after grant", nodes[2].rether.RTSlots())
	}
	if nodes[0].rether.Stats.ReservationsGranted != 1 {
		t.Errorf("monitor granted = %d", nodes[0].rether.Stats.ReservationsGranted)
	}
}

func TestReservationDeniedBeyondBudget(t *testing.T) {
	s, nodes := buildRing(t, 22, 4, Config{RTBudget: 10, RTQuota: 1})
	var r2, r3 ReserveResult
	nodes[1].rether.RequestReservation(8, func(r ReserveResult) { r2 = r })
	if err := s.RunUntil(50 * time.Millisecond); err != nil {
		t.Fatalf("run: %v", err)
	}
	nodes[2].rether.RequestReservation(8, func(r ReserveResult) { r3 = r })
	if err := s.RunUntil(100 * time.Millisecond); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !r2.Granted {
		t.Fatalf("first request should fit: %+v", r2)
	}
	if r3.Granted {
		t.Fatalf("second request should exceed the budget: %+v", r3)
	}
	if got := nodes[2].rether.RTSlots(); got != 1 {
		t.Errorf("denied request changed the quota to %d", got)
	}
	if nodes[0].rether.Stats.ReservationsDenied != 1 {
		t.Errorf("monitor denied = %d", nodes[0].rether.Stats.ReservationsDenied)
	}
}

func TestReservationMonitorGrantsItselfLocally(t *testing.T) {
	s, nodes := buildRing(t, 23, 3, Config{RTBudget: 10})
	var res ReserveResult
	called := false
	nodes[0].rether.RequestReservation(4, func(r ReserveResult) { called = true; res = r })
	// Local grant resolves synchronously, before any simulation step.
	if !called || !res.Granted || res.Slots != 4 {
		t.Fatalf("local grant: called=%v res=%+v", called, res)
	}
	if err := s.RunUntil(10 * time.Millisecond); err != nil {
		t.Fatalf("run: %v", err)
	}
	if nodes[0].rether.RTSlots() != 4 {
		t.Errorf("RTSlots = %d", nodes[0].rether.RTSlots())
	}
}

func TestReservationResize(t *testing.T) {
	s, nodes := buildRing(t, 24, 3, Config{RTBudget: 10})
	done := 0
	nodes[1].rether.RequestReservation(8, func(ReserveResult) { done++ })
	if err := s.RunUntil(50 * time.Millisecond); err != nil {
		t.Fatalf("run: %v", err)
	}
	// Shrinking frees budget for another node.
	nodes[1].rether.RequestReservation(2, func(ReserveResult) { done++ })
	if err := s.RunUntil(100 * time.Millisecond); err != nil {
		t.Fatalf("run: %v", err)
	}
	var res ReserveResult
	nodes[2].rether.RequestReservation(8, func(r ReserveResult) { done++; res = r })
	if err := s.RunUntil(150 * time.Millisecond); err != nil {
		t.Fatalf("run: %v", err)
	}
	if done != 3 {
		t.Fatalf("callbacks = %d", done)
	}
	if !res.Granted {
		t.Errorf("8 slots should fit after the shrink to 2: %+v", res)
	}
}

func TestReservationTimeoutWithDeadMonitor(t *testing.T) {
	s, nodes := buildRing(t, 25, 3, Config{RTBudget: 10})
	// Kill the monitor's wire before the request.
	nodes[0].kill.dead = true
	var called bool
	var res ReserveResult
	nodes[1].rether.RequestReservation(4, func(r ReserveResult) { called = true; res = r })
	if err := s.RunUntil(500 * time.Millisecond); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !called {
		t.Fatal("request never resolved")
	}
	if res.Granted {
		t.Errorf("granted by a dead monitor: %+v", res)
	}
}

func TestReservationRaisesServiceRate(t *testing.T) {
	// White-box: a granted reservation raises the per-visit RT service.
	s := sim.NewScheduler(26)
	self := packet.MAC{0, 0, 0, 0, 0, 1}
	l := New(s, self, Config{Ring: []packet.MAC{self}, RTQuota: 1, BEQuota: 0x0})
	sent := 0
	l.SetBelow(downFunc(func(fr *ether.Frame) {
		if fr.EtherType() == packet.EtherTypeIPv4 {
			sent++
		}
	}))
	l.started = true
	l.ClassifyRT = func(*ether.Frame) bool { return true }
	mk := func() *ether.Frame {
		d := make([]byte, packet.EthHeaderLen)
		packet.PutEth(d, packet.Eth{Dst: self, Src: self, Type: packet.EtherTypeIPv4})
		return &ether.Frame{Data: d}
	}
	for i := 0; i < 8; i++ {
		l.SendDown(mk())
	}
	l.serveQueues()
	if sent != 1 {
		t.Fatalf("served %d with quota 1", sent)
	}
	l.applyGrant(ReserveResult{Granted: true, Slots: 4})
	l.serveQueues()
	if sent != 5 {
		t.Fatalf("served %d total after grant of 4", sent)
	}
}
