package rether

import (
	"testing"
	"time"

	"virtualwire/internal/ether"
	"virtualwire/internal/packet"
	"virtualwire/internal/sim"
	"virtualwire/internal/stack"
)

// killLayer silently consumes all traffic in both directions once armed —
// the same crash emulation the core engine's FAIL action performs.
type killLayer struct {
	base stack.Base
	dead bool
}

func (k *killLayer) SendDown(fr *ether.Frame) {
	if k.dead {
		return
	}
	k.base.PassDown(fr)
}

func (k *killLayer) DeliverUp(fr *ether.Frame) {
	if k.dead {
		return
	}
	k.base.PassUp(fr)
}

func (k *killLayer) SetBelow(d stack.Down) { k.base.SetBelow(d) }
func (k *killLayer) SetAbove(u stack.Up)   { k.base.SetAbove(u) }

type ringNode struct {
	host   *stack.Host
	rether *Layer
	kill   *killLayer
}

// buildRing creates n Rether nodes on a shared bus. Each stack is
// NIC <- kill <- rether <- IP.
func buildRing(t testing.TB, seed int64, n int, cfg Config) (*sim.Scheduler, []*ringNode) {
	t.Helper()
	s := sim.NewScheduler(seed)
	bus := ether.NewSharedBus(s, ether.BusConfig{})
	macs := make([]packet.MAC, n)
	for i := range macs {
		macs[i] = packet.MAC{0, 0, 0, 0, 0, byte(i + 1)}
	}
	cfg.Ring = macs
	nodes := make([]*ringNode, n)
	for i := 0; i < n; i++ {
		ip := packet.IP{192, 168, 1, byte(i + 1)}
		h := stack.NewHost(s, names[i], macs[i], ip)
		bus.Attach(h.NIC)
		rt := New(s, macs[i], cfg)
		kl := &killLayer{}
		h.Build(kl, rt)
		nodes[i] = &ringNode{host: h, rether: rt, kill: kl}
	}
	// Everyone knows everyone (static Node Table).
	for _, a := range nodes {
		for _, b := range nodes {
			a.host.Neighbors[b.host.IP] = b.host.MAC
		}
	}
	for _, nd := range nodes {
		nd.rether.Start()
	}
	return s, nodes
}

var names = []string{"node1", "node2", "node3", "node4", "node5", "node6", "node7", "node8"}

func TestTokenCirculatesRoundRobin(t *testing.T) {
	s, nodes := buildRing(t, 1, 4, Config{})
	visits := make([]int, 4)
	var order []int
	for i, nd := range nodes {
		i := i
		nd.rether.OnTokenVisit = func(uint32) {
			visits[i]++
			if len(order) < 12 {
				order = append(order, i)
			}
		}
	}
	if err := s.RunUntil(200 * time.Millisecond); err != nil {
		t.Fatalf("run: %v", err)
	}
	for i, v := range visits {
		if v < 10 {
			t.Errorf("node%d visited only %d times", i+1, v)
		}
	}
	// Round-robin order: consecutive visits cycle 1,2,3,0,1,2,3...
	for k := 1; k < len(order); k++ {
		if order[k] != (order[k-1]+1)%4 {
			t.Fatalf("token order violated round robin: %v", order)
		}
	}
	// No spurious failure detection on a healthy ring.
	for i, nd := range nodes {
		if nd.rether.Stats.NodesDeclaredDead != 0 {
			t.Errorf("node%d declared deaths on a healthy ring", i+1)
		}
		if nd.rether.Stats.TokenRegenerations != 0 {
			t.Errorf("node%d regenerated on a healthy ring", i+1)
		}
	}
}

func TestDataGatedByToken(t *testing.T) {
	s, nodes := buildRing(t, 2, 4, Config{})
	srv, err := nodes[3].host.UDP.Bind(9000)
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	var got int
	srv.OnDatagram = func(packet.IP, uint16, []byte) { got++ }
	cli, err := nodes[0].host.UDP.Bind(9001)
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	for i := 0; i < 20; i++ {
		if err := cli.SendTo(nodes[3].host.IP, 9000, []byte("rt-data")); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	// Datagrams are queued, not sent, until the token visits node1.
	if nodes[0].rether.Stats.DataQueuedBE != 20 {
		t.Fatalf("queued %d, want 20", nodes[0].rether.Stats.DataQueuedBE)
	}
	if err := s.RunUntil(200 * time.Millisecond); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != 20 {
		t.Errorf("delivered %d datagrams, want 20", got)
	}
	if nodes[0].rether.Stats.DataSent != 20 {
		t.Errorf("DataSent = %d", nodes[0].rether.Stats.DataSent)
	}
}

func TestSingleNodeFailureRecovery(t *testing.T) {
	// The Figure 6 scenario without VirtualWire: crash node3 and verify
	// detection after exactly TokenRetries token transmissions, ring
	// reconstruction, and continued circulation among survivors.
	s, nodes := buildRing(t, 3, 4, Config{})
	// Crash node3 the first time it receives the token.
	nodes[2].rether.OnTokenVisit = func(uint32) {}
	s.After(30*time.Millisecond, "fail-node3", func() { nodes[2].kill.dead = true })

	ringChanges := make([]int, 4)
	for i, nd := range nodes {
		i := i
		nd.rether.OnRingChange = func(r []packet.MAC) { ringChanges[i]++ }
	}
	if err := s.RunUntil(500 * time.Millisecond); err != nil {
		t.Fatalf("run: %v", err)
	}
	n2 := nodes[1].rether
	if n2.Stats.NodesDeclaredDead != 1 {
		t.Fatalf("node2 declared %d deaths, want 1", n2.Stats.NodesDeclaredDead)
	}
	// Exactly TokenRetries(3) transmissions toward the dead node: one
	// initial plus two retransmissions.
	if n2.Stats.TokenRetransmissions != 2 {
		t.Errorf("token retransmissions = %d, want 2 (3 sends total, per the paper)",
			n2.Stats.TokenRetransmissions)
	}
	if len(n2.Ring()) != 3 {
		t.Errorf("node2 ring size = %d, want 3", len(n2.Ring()))
	}
	// Survivors adopted the new ring.
	for _, i := range []int{0, 1, 3} {
		if ringChanges[i] == 0 {
			t.Errorf("node%d never observed the ring change", i+1)
		}
		if got := len(nodes[i].rether.Ring()); got != 3 {
			t.Errorf("node%d ring size = %d, want 3", i+1, got)
		}
	}
	// Token still circulates among the three survivors.
	var visits [4]int
	for i, nd := range nodes {
		i := i
		nd.rether.OnTokenVisit = func(uint32) { visits[i]++ }
	}
	if err := s.RunUntil(700 * time.Millisecond); err != nil {
		t.Fatalf("run: %v", err)
	}
	if visits[0] == 0 || visits[1] == 0 || visits[3] == 0 {
		t.Errorf("circulation after recovery: %v", visits)
	}
	if visits[2] != 0 {
		t.Errorf("dead node still visited %d times", visits[2])
	}
}

func TestRecoveryPreservesRealTimeTraffic(t *testing.T) {
	// The paper's claim: "the real time data transport remains
	// unaffected" across a node failure.
	s, nodes := buildRing(t, 4, 4, Config{})
	srv, _ := nodes[3].host.UDP.Bind(9000)
	var got int
	srv.OnDatagram = func(packet.IP, uint16, []byte) { got++ }
	cli, _ := nodes[0].host.UDP.Bind(9001)
	// node1 -> node4 is the real-time stream.
	nodes[0].rether.ClassifyRT = func(fr *ether.Frame) bool { return true }
	sent := 0
	var feed func()
	feed = func() {
		if sent >= 100 {
			return
		}
		sent++
		if err := cli.SendTo(nodes[3].host.IP, 9000, []byte("rt")); err != nil {
			t.Errorf("send: %v", err)
		}
		s.After(2*time.Millisecond, "feed", feed)
	}
	s.After(0, "feed", feed)
	s.After(50*time.Millisecond, "fail-node3", func() { nodes[2].kill.dead = true })
	if err := s.RunUntil(time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != 100 {
		t.Errorf("real-time stream delivered %d/100 datagrams across the failure", got)
	}
	if nodes[0].rether.Stats.DataQueuedRT != 100 {
		t.Errorf("RT classification missed: %d", nodes[0].rether.Stats.DataQueuedRT)
	}
}

func TestTokenRegenerationAfterHolderCrash(t *testing.T) {
	s, nodes := buildRing(t, 5, 2, Config{})
	// Crash node1 while it holds the token (it bootstraps holding).
	nodes[0].rether.OnTokenVisit = func(uint32) { nodes[0].kill.dead = true }
	if err := s.RunUntil(3 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	n2 := nodes[1].rether
	if n2.Stats.TokenRegenerations == 0 {
		t.Fatal("node2 never regenerated the lost token")
	}
	if len(n2.Ring()) != 1 {
		t.Errorf("node2 ring = %d nodes, want 1 (node1 declared dead)", len(n2.Ring()))
	}
	if !n2.Holding() && n2.Stats.TokensReceived == 0 && n2.Stats.TokenRegenerations == 0 {
		t.Error("node2 has no token after regeneration")
	}
}

func TestStaleRingSyncIgnored(t *testing.T) {
	s, nodes := buildRing(t, 6, 3, Config{})
	if err := s.RunUntil(50 * time.Millisecond); err != nil {
		t.Fatalf("run: %v", err)
	}
	n1 := nodes[0].rether
	before := len(n1.Ring())
	// Deliver a stale sync (version 0) claiming a one-node ring.
	var payload []byte
	payload = append(payload, nodes[2].host.MAC[:]...)
	n1.onRingSync(0, payload)
	if len(n1.Ring()) != before {
		t.Error("stale ring sync applied")
	}
	// A newer version must apply.
	n1.onRingSync(5, payload)
	if len(n1.Ring()) != 1 {
		t.Error("fresh ring sync not applied")
	}
}

func TestRTServedBeforeBestEffort(t *testing.T) {
	// White-box: serve queues directly and observe ordering.
	s := sim.NewScheduler(7)
	self := packet.MAC{0, 0, 0, 0, 0, 1}
	l := New(s, self, Config{Ring: []packet.MAC{self}, RTQuota: 2, BEQuota: 2})
	var sentOrder []byte
	l.SetBelow(downFunc(func(fr *ether.Frame) {
		if fr.EtherType() == packet.EtherTypeIPv4 {
			sentOrder = append(sentOrder, fr.Data[len(fr.Data)-1])
		}
	}))
	l.started = true
	l.ClassifyRT = func(fr *ether.Frame) bool { return fr.Data[len(fr.Data)-1] >= 100 }
	mk := func(tag byte) *ether.Frame {
		d := make([]byte, packet.EthHeaderLen+1)
		packet.PutEth(d, packet.Eth{Dst: self, Src: self, Type: packet.EtherTypeIPv4})
		d[len(d)-1] = tag
		return &ether.Frame{Data: d}
	}
	l.SendDown(mk(1))   // BE
	l.SendDown(mk(100)) // RT
	l.SendDown(mk(2))   // BE
	l.SendDown(mk(101)) // RT
	l.serveQueues()
	want := []byte{100, 101, 1, 2}
	if len(sentOrder) != len(want) {
		t.Fatalf("sent %v", sentOrder)
	}
	for i := range want {
		if sentOrder[i] != want[i] {
			t.Fatalf("order %v, want RT first: %v", sentOrder, want)
		}
	}
}

// downFunc adapts a function to stack.Down.
type downFunc func(fr *ether.Frame)

func (f downFunc) SendDown(fr *ether.Frame) { f(fr) }

func TestQueueOverflowDrops(t *testing.T) {
	s := sim.NewScheduler(8)
	self := packet.MAC{0, 0, 0, 0, 0, 1}
	l := New(s, self, Config{Ring: []packet.MAC{self}, QueueFrames: 4})
	l.SetBelow(downFunc(func(*ether.Frame) {}))
	l.started = true
	mk := func() *ether.Frame {
		d := make([]byte, packet.EthHeaderLen)
		packet.PutEth(d, packet.Eth{Dst: self, Src: self, Type: packet.EtherTypeIPv4})
		return &ether.Frame{Data: d}
	}
	for i := 0; i < 10; i++ {
		l.SendDown(mk())
	}
	if l.Stats.DataQueuedBE != 4 {
		t.Errorf("queued %d, want 4", l.Stats.DataQueuedBE)
	}
	if l.Stats.DataDropped != 6 {
		t.Errorf("dropped %d, want 6", l.Stats.DataDropped)
	}
}

func TestTokenSeqMonotonicPerNode(t *testing.T) {
	s, nodes := buildRing(t, 9, 3, Config{})
	bad := false
	for _, nd := range nodes {
		var last uint32
		nd.rether.OnTokenVisit = func(seq uint32) {
			if seq <= last {
				bad = true
			}
			last = seq
		}
	}
	if err := s.RunUntil(300 * time.Millisecond); err != nil {
		t.Fatalf("run: %v", err)
	}
	if bad {
		t.Error("token sequence numbers not strictly increasing at some node")
	}
}

func BenchmarkTokenCycle(b *testing.B) {
	s, nodes := buildRing(b, 1, 4, Config{})
	cycles := 0
	done := false
	nodes[0].rether.OnTokenVisit = func(uint32) {
		cycles++
		if cycles >= b.N {
			done = true
			s.Stop()
		}
	}
	b.ResetTimer()
	err := s.RunUntil(time.Duration(b.N+1) * 50 * time.Millisecond)
	if err != nil && err != sim.ErrStopped {
		b.Fatal(err)
	}
	_ = done
}

func TestTwoSimultaneousFailures(t *testing.T) {
	// Crash two of five nodes; the surviving three must reconstruct and
	// keep circulating.
	s, nodes := buildRing(t, 27, 5, Config{})
	s.After(30*time.Millisecond, "fail", func() {
		nodes[1].kill.dead = true
		nodes[3].kill.dead = true
	})
	if err := s.RunUntil(2 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, i := range []int{0, 2, 4} {
		if got := len(nodes[i].rether.Ring()); got != 3 {
			t.Errorf("node%d ring = %d, want 3", i+1, got)
		}
	}
	var visits [5]int
	for i, nd := range nodes {
		i := i
		nd.rether.OnTokenVisit = func(uint32) { visits[i]++ }
	}
	if err := s.RunUntil(2200 * time.Millisecond); err != nil {
		t.Fatalf("run: %v", err)
	}
	if visits[0] == 0 || visits[2] == 0 || visits[4] == 0 {
		t.Errorf("survivors not visited: %v", visits)
	}
	if visits[1] != 0 || visits[3] != 0 {
		t.Errorf("dead nodes visited: %v", visits)
	}
}

func TestMonitorFailureStillRecovers(t *testing.T) {
	// Killing ring[0] (the bootstrap/monitor node) while it holds the
	// token forces both regeneration and reconstruction by survivors.
	s, nodes := buildRing(t, 28, 3, Config{})
	nodes[0].rether.OnTokenVisit = func(uint32) { nodes[0].kill.dead = true }
	if err := s.RunUntil(3 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	regens := nodes[1].rether.Stats.TokenRegenerations + nodes[2].rether.Stats.TokenRegenerations
	if regens == 0 {
		t.Error("no survivor regenerated the token")
	}
	var visits [3]int
	for i, nd := range nodes {
		i := i
		nd.rether.OnTokenVisit = func(uint32) { visits[i]++ }
	}
	if err := s.RunUntil(3200 * time.Millisecond); err != nil {
		t.Fatalf("run: %v", err)
	}
	if visits[1] == 0 || visits[2] == 0 {
		t.Errorf("survivors not circulating after monitor death: %v", visits)
	}
}
