// Package rether implements the Rether software-based real-time Ethernet
// protocol (Venkatramani & Chiueh, SIGCOMM '95) — the second protocol
// under test in the paper (Section 6.2). Rether is a token-passing layer
// inserted between the Ethernet driver and the IP stack: a node may
// transmit data frames only while it holds the circulating control token.
//
// Implemented mechanisms, matching what the paper's Figure 6 scenario
// exercises:
//
//   - best-effort token circulation in a fixed round-robin ring;
//   - real-time slot reservations (frames matched by an RT classifier are
//     served from a dedicated queue with a per-cycle quota);
//   - token passing with explicit token-ack, a bounded number of token
//     transmissions (default 3, the number the Figure 6 analysis script
//     checks for), after which the downstream node is declared dead;
//   - ring reconstruction: the detecting node removes the dead node,
//     broadcasts a ring-sync with the new membership, and forwards the
//     token to the successor — real-time traffic continues unaffected;
//   - token regeneration: if a node observes no token activity for a
//     staggered idle timeout (lowest surviving index fires first), it
//     regenerates the token, recovering from total token loss.
//
// Control frames use ethertype 0x9900 with the packet type at frame
// offset 14, exactly as the paper's filter table matches them.
package rether

import (
	"time"

	"virtualwire/internal/ether"
	"virtualwire/internal/metrics"
	"virtualwire/internal/packet"
	"virtualwire/internal/sim"
	"virtualwire/internal/stack"
)

// Config parametrizes a Rether node.
type Config struct {
	// Ring is the initial round-robin membership in token order. It
	// must contain this node's MAC.
	Ring []packet.MAC
	// BEQuota is the number of best-effort data frames a node may
	// transmit per token visit (default 8).
	BEQuota int
	// RTQuota is the number of real-time frames transmittable per visit
	// (default 8); RT frames are always served before best-effort.
	RTQuota int
	// TokenAckTimeout is how long to wait for a token-ack before
	// retransmitting the token (default 10 ms).
	TokenAckTimeout time.Duration
	// TokenRetries is the total number of token transmissions to a
	// successor before declaring it dead (default 3, per the paper).
	TokenRetries int
	// TokenIdleTimeout is the base token-regeneration timeout; node i
	// in the surviving ring fires at TokenIdleTimeout*(2+i)/2
	// (default 500 ms).
	TokenIdleTimeout time.Duration
	// HoldGap is the pacing delay before re-circulating when the node
	// is alone in the ring (default 10 ms).
	HoldGap time.Duration
	// QueueFrames bounds each data queue (default 256).
	QueueFrames int
	// RTBudget is the ring-wide total of grantable real-time slots per
	// cycle, accounted by the ring monitor (default 32).
	RTBudget int
}

func (c *Config) fill() {
	if c.BEQuota <= 0 {
		c.BEQuota = 8
	}
	if c.RTQuota <= 0 {
		c.RTQuota = 8
	}
	if c.TokenAckTimeout <= 0 {
		c.TokenAckTimeout = 10 * time.Millisecond
	}
	if c.TokenRetries <= 0 {
		c.TokenRetries = 3
	}
	if c.TokenIdleTimeout <= 0 {
		c.TokenIdleTimeout = 500 * time.Millisecond
	}
	if c.HoldGap <= 0 {
		c.HoldGap = 10 * time.Millisecond
	}
	if c.QueueFrames <= 0 {
		c.QueueFrames = 256
	}
	if c.RTBudget <= 0 {
		c.RTBudget = 32
	}
}

// Stats counts Rether protocol events on one node.
type Stats struct {
	TokensSent            uint64
	TokenRetransmissions  uint64
	TokensReceived        uint64
	AcksSent              uint64
	AcksReceived          uint64
	StaleTokens           uint64
	NodesDeclaredDead     uint64
	RingSyncsSent         uint64
	RingSyncsApplied      uint64
	TokenRegenerations    uint64
	DataQueuedBE          uint64
	DataQueuedRT          uint64
	DataSent              uint64
	DataDropped           uint64 // queue overflow
	ReservationsRequested uint64
	ReservationsGranted   uint64
	ReservationsDenied    uint64
}

// Layer is the per-node Rether protocol instance. It implements
// stack.Layer and must be placed above the fault injection engine.
type Layer struct {
	base  stack.Base
	cfg   Config
	sched *sim.Scheduler
	self  packet.MAC

	ring        []packet.MAC
	ringVersion uint32
	holder      bool
	tokenSeq    uint32 // last seq we held or observed
	passSeq     uint32 // seq of the token we are trying to pass
	passTo      packet.MAC
	passTries   int
	ackTimer    *sim.Timer
	idleTimer   *sim.Timer
	started     bool

	beQueue []*ether.Frame
	rtQueue []*ether.Frame

	// ClassifyRT, when set, routes matching outbound data frames to the
	// real-time queue (the paper's node1/node4 real-time TCP stream).
	ClassifyRT func(fr *ether.Frame) bool
	// OnRingChange fires with the new membership after a ring sync or
	// local reconstruction.
	OnRingChange func(ring []packet.MAC)
	// OnTokenVisit fires each time this node receives the token (used
	// by tests and examples to observe circulation).
	OnTokenVisit func(seq uint32)

	// Stats accumulates counters.
	Stats Stats

	// Reservation state (see reserve.go). grants is populated only on
	// the ring monitor.
	grants       map[packet.MAC]int
	reserveCb    func(ReserveResult)
	reserveTimer *sim.Timer

	// origRTQuota remembers the configured per-visit RT quota so Reset
	// can undo reservation grants (applyGrant mutates cfg.RTQuota).
	origRTQuota int
}

var _ stack.Layer = (*Layer)(nil)

// New creates a Rether node. Call Start after the host stack is built.
func New(sched *sim.Scheduler, self packet.MAC, cfg Config) *Layer {
	cfg.fill()
	ring := make([]packet.MAC, len(cfg.Ring))
	copy(ring, cfg.Ring)
	l := &Layer{
		cfg:   cfg,
		sched: sched,
		self:  self,
		ring:  ring,
	}
	l.ackTimer = sim.NewTimer(sched, "rether.ack")
	l.idleTimer = sim.NewTimer(sched, "rether.idle")
	l.origRTQuota = l.cfg.RTQuota
	return l
}

// Reset rewinds the layer to its pre-Start state: initial ring
// membership, zero token state, empty queues, cleared counters, and any
// reservation grant undone. The caller must invoke Start again (after
// resetting the scheduler, which cancels the layer's timers).
func (l *Layer) Reset() {
	l.ring = l.ring[:0]
	l.ring = append(l.ring, l.cfg.Ring...)
	l.ringVersion = 0
	l.holder = false
	l.tokenSeq = 0
	l.passSeq = 0
	l.passTo = packet.MAC{}
	l.passTries = 0
	l.ackTimer.Disarm()
	l.idleTimer.Disarm()
	if l.reserveTimer != nil {
		l.reserveTimer.Disarm()
	}
	l.started = false
	for i := range l.beQueue {
		l.beQueue[i] = nil
	}
	l.beQueue = l.beQueue[:0]
	for i := range l.rtQueue {
		l.rtQueue[i] = nil
	}
	l.rtQueue = l.rtQueue[:0]
	l.Stats = Stats{}
	l.grants = nil
	l.reserveCb = nil
	l.cfg.RTQuota = l.origRTQuota
}

// SetBelow implements stack.Layer.
func (l *Layer) SetBelow(d stack.Down) { l.base.SetBelow(d) }

// SetAbove implements stack.Layer.
func (l *Layer) SetAbove(u stack.Up) { l.base.SetAbove(u) }

// Ring returns a copy of the current membership.
func (l *Layer) Ring() []packet.MAC {
	out := make([]packet.MAC, len(l.ring))
	copy(out, l.ring)
	return out
}

// Holding reports whether this node currently holds the token.
func (l *Layer) Holding() bool { return l.holder }

// Snapshot implements the uniform metrics hook: token rotation,
// membership and reservation counters plus instantaneous queue depths.
func (l *Layer) Snapshot() metrics.Snapshot {
	var sn metrics.Snapshot
	sn.Counter("tokens_sent", l.Stats.TokensSent)
	sn.Counter("token_retransmissions", l.Stats.TokenRetransmissions)
	sn.Counter("tokens_received", l.Stats.TokensReceived)
	sn.Counter("acks_sent", l.Stats.AcksSent)
	sn.Counter("acks_received", l.Stats.AcksReceived)
	sn.Counter("stale_tokens", l.Stats.StaleTokens)
	sn.Counter("nodes_declared_dead", l.Stats.NodesDeclaredDead)
	sn.Counter("ring_syncs_sent", l.Stats.RingSyncsSent)
	sn.Counter("ring_syncs_applied", l.Stats.RingSyncsApplied)
	sn.Counter("token_regenerations", l.Stats.TokenRegenerations)
	sn.Counter("data_queued_be", l.Stats.DataQueuedBE)
	sn.Counter("data_queued_rt", l.Stats.DataQueuedRT)
	sn.Counter("data_sent", l.Stats.DataSent)
	sn.Counter("data_dropped", l.Stats.DataDropped)
	sn.Counter("reservations_requested", l.Stats.ReservationsRequested)
	sn.Counter("reservations_granted", l.Stats.ReservationsGranted)
	sn.Counter("reservations_denied", l.Stats.ReservationsDenied)
	sn.Gauge("ring_size", float64(len(l.ring)))
	sn.Gauge("be_queue_len", float64(len(l.beQueue)))
	sn.Gauge("rt_queue_len", float64(len(l.rtQueue)))
	return sn
}

// Start begins protocol operation: ring index 0 creates the initial
// token, everyone arms the regeneration timer.
func (l *Layer) Start() {
	if l.started {
		return
	}
	l.started = true
	l.armIdle()
	if len(l.ring) > 0 && l.ring[0] == l.self {
		// Initial token enters the ring here.
		l.sched.After(0, "rether.bootstrap", func() { l.acquireToken(1) })
	}
}

// --- outbound data path ---

// SendDown implements stack.Layer: data frames queue until the token
// visits; Rether's own control frames (and anything not IP) bypass the
// token discipline.
func (l *Layer) SendDown(fr *ether.Frame) {
	if !l.started || fr.EtherType() != packet.EtherTypeIPv4 {
		l.base.PassDown(fr)
		return
	}
	if l.ClassifyRT != nil && l.ClassifyRT(fr) {
		if len(l.rtQueue) >= l.cfg.QueueFrames {
			l.Stats.DataDropped++
			return
		}
		l.Stats.DataQueuedRT++
		l.rtQueue = append(l.rtQueue, fr)
		return
	}
	if len(l.beQueue) >= l.cfg.QueueFrames {
		l.Stats.DataDropped++
		return
	}
	l.Stats.DataQueuedBE++
	l.beQueue = append(l.beQueue, fr)
}

// --- inbound path ---

// DeliverUp implements stack.Layer: consume Rether control traffic,
// deliver everything else.
func (l *Layer) DeliverUp(fr *ether.Frame) {
	if fr.EtherType() != packet.EtherTypeRether {
		l.base.PassUp(fr)
		return
	}
	hdr, err := packet.DecodeRether(fr.Data[packet.EthHeaderLen:])
	if err != nil {
		return
	}
	l.armIdle() // any control activity proves the ring is alive
	switch hdr.Type {
	case packet.RetherToken:
		l.onToken(fr.Src(), hdr.TokenSeq)
	case packet.RetherTokenAck:
		l.onTokenAck(fr.Src(), hdr.TokenSeq)
	case packet.RetherRingSync:
		l.onRingSync(hdr.TokenSeq, fr.Data[packet.EthHeaderLen+packet.RetherHeaderLen:])
	case packet.RetherRegen:
		// Another node regenerated; our stale state yields.
		if hdr.TokenSeq > l.tokenSeq {
			l.tokenSeq = hdr.TokenSeq
		}
	case packet.RetherReserve:
		l.handleReserve(fr.Src(), fr.Data[packet.EthHeaderLen+packet.RetherHeaderLen:])
	case packet.RetherReserveOK:
		l.handleReserveOK(hdr.TokenSeq, fr.Data[packet.EthHeaderLen+packet.RetherHeaderLen:])
	}
}

func (l *Layer) onToken(from packet.MAC, seq uint32) {
	if seq < l.tokenSeq {
		// Stale token from an obsolete holder or regeneration race.
		l.Stats.StaleTokens++
		return
	}
	// Always ack (a retransmitted token means our previous ack was
	// lost).
	l.sendCtl(from, packet.RetherTokenAck, seq, nil)
	l.Stats.AcksSent++
	if seq == l.tokenSeq {
		// Duplicate of a token we already consumed.
		l.Stats.StaleTokens++
		return
	}
	l.Stats.TokensReceived++
	l.acquireToken(seq)
}

// acquireToken makes this node the holder of token seq: serve queues,
// then pass it on.
func (l *Layer) acquireToken(seq uint32) {
	l.holder = true
	l.tokenSeq = seq
	if l.OnTokenVisit != nil {
		l.OnTokenVisit(seq)
	}
	l.serveQueues()
	l.passToken()
}

// serveQueues transmits RT then best-effort frames up to the per-visit
// quotas.
func (l *Layer) serveQueues() {
	for i := 0; i < l.cfg.RTQuota && len(l.rtQueue) > 0; i++ {
		fr := l.rtQueue[0]
		l.rtQueue = l.rtQueue[1:]
		l.Stats.DataSent++
		l.base.PassDown(fr)
	}
	for i := 0; i < l.cfg.BEQuota && len(l.beQueue) > 0; i++ {
		fr := l.beQueue[0]
		l.beQueue = l.beQueue[1:]
		l.Stats.DataSent++
		l.base.PassDown(fr)
	}
}

// passToken hands the token to the successor and arms the ack timer.
func (l *Layer) passToken() {
	next, ok := l.successor()
	if !ok {
		// Alone in the ring: keep the token and re-serve after a gap.
		l.sched.After(l.cfg.HoldGap, "rether.solo", func() {
			if l.holder {
				l.tokenSeq++
				l.serveQueues()
				l.passToken()
			}
		})
		return
	}
	l.passSeq = l.tokenSeq + 1
	l.passTo = next
	l.passTries = 1
	l.Stats.TokensSent++
	l.sendCtl(next, packet.RetherToken, l.passSeq, nil)
	l.armAckTimer()
}

func (l *Layer) armAckTimer() {
	l.ackTimer.Arm(l.cfg.TokenAckTimeout, l.onAckTimeout)
}

func (l *Layer) onAckTimeout() {
	if !l.holder {
		return
	}
	if l.passTries < l.cfg.TokenRetries {
		l.passTries++
		l.Stats.TokensSent++
		l.Stats.TokenRetransmissions++
		l.sendCtl(l.passTo, packet.RetherToken, l.passSeq, nil)
		l.armAckTimer()
		return
	}
	// The successor is dead: reconstruct the ring without it and move
	// the token along. Real-time service must continue (Section 6.2).
	l.Stats.NodesDeclaredDead++
	l.removeFromRing(l.passTo)
	l.ringVersion++
	l.broadcastRingSync()
	l.tokenSeq = l.passSeq // consume the seq burned on the dead node
	l.passToken()
}

func (l *Layer) onTokenAck(from packet.MAC, seq uint32) {
	if !l.holder || from != l.passTo || seq != l.passSeq {
		return
	}
	l.Stats.AcksReceived++
	l.ackTimer.Disarm()
	l.holder = false
	l.tokenSeq = l.passSeq
}

// --- membership ---

func (l *Layer) successor() (packet.MAC, bool) {
	idx := l.indexOf(l.self)
	if idx < 0 || len(l.ring) <= 1 {
		return packet.MAC{}, false
	}
	return l.ring[(idx+1)%len(l.ring)], true
}

func (l *Layer) indexOf(m packet.MAC) int {
	for i, r := range l.ring {
		if r == m {
			return i
		}
	}
	return -1
}

func (l *Layer) removeFromRing(m packet.MAC) {
	idx := l.indexOf(m)
	if idx < 0 {
		return
	}
	l.ring = append(l.ring[:idx], l.ring[idx+1:]...)
	if l.OnRingChange != nil {
		l.OnRingChange(l.Ring())
	}
}

func (l *Layer) broadcastRingSync() {
	payload := make([]byte, 0, len(l.ring)*6)
	for _, m := range l.ring {
		payload = append(payload, m[:]...)
	}
	l.Stats.RingSyncsSent++
	l.sendCtl(packet.Broadcast, packet.RetherRingSync, l.ringVersion, payload)
}

func (l *Layer) onRingSync(version uint32, payload []byte) {
	if version <= l.ringVersion {
		return
	}
	l.ringVersion = version
	ring := make([]packet.MAC, 0, len(payload)/6)
	for i := 0; i+6 <= len(payload); i += 6 {
		var m packet.MAC
		copy(m[:], payload[i:i+6])
		ring = append(ring, m)
	}
	l.ring = ring
	l.Stats.RingSyncsApplied++
	if l.OnRingChange != nil {
		l.OnRingChange(l.Ring())
	}
}

// --- token regeneration ---

func (l *Layer) armIdle() {
	if !l.started {
		return
	}
	idx := l.indexOf(l.self)
	if idx < 0 {
		idx = len(l.ring) // removed from ring: regenerate last
	}
	d := l.cfg.TokenIdleTimeout * time.Duration(2+idx) / 2
	l.idleTimer.Arm(d, l.onIdle)
}

func (l *Layer) onIdle() {
	if l.holder {
		l.armIdle()
		return
	}
	// No token activity: regenerate. Jump the sequence space so stale
	// tokens are recognizably old.
	l.Stats.TokenRegenerations++
	newSeq := l.tokenSeq + 1000
	l.sendCtl(packet.Broadcast, packet.RetherRegen, newSeq, nil)
	l.acquireToken(newSeq)
	l.armIdle()
}

// --- frame construction ---

func (l *Layer) sendCtl(dst packet.MAC, typ uint16, seq uint32, payload []byte) {
	idx := l.indexOf(l.self)
	if idx < 0 {
		idx = 0
	}
	fr := packet.BuildRetherFrame(l.self, dst, packet.Rether{
		Type:     typ,
		TokenSeq: seq,
		Origin:   uint16(idx),
	}, payload)
	l.base.PassDown(&ether.Frame{Data: fr})
}
