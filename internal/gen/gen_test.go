package gen_test

import (
	"strings"
	"testing"
	"time"

	"virtualwire"
	"virtualwire/internal/gen"
)

const prologue = `
FILTER_TABLE
TCP_data: (34 2 0x6000), (36 2 0x4000), (47 1 0x10 0x10)
END
NODE_TABLE
node1 00:00:00:00:00:01 10.0.0.1
node2 00:00:00:00:00:02 10.0.0.2
END
`

func TestGenerateEnumeratesFaultsAndOccurrences(t *testing.T) {
	scs, err := gen.Generate(gen.Config{
		Prologue:   prologue,
		PacketType: "TCP_data",
		From:       "node1", To: "node2", Dir: "RECV",
		Faults:      []gen.FaultKind{gen.Drop, gen.Dup},
		Occurrences: []int{1, 3, 7},
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if len(scs) != 6 {
		t.Fatalf("scenarios = %d, want 6", len(scs))
	}
	names := map[string]bool{}
	for _, sc := range scs {
		names[sc.Name] = true
		if !strings.Contains(sc.Script, "SCENARIO") {
			t.Errorf("%s: no scenario block", sc.Name)
		}
	}
	if !names["drop_pkt3_of_TCP_data"] || !names["dup_pkt7_of_TCP_data"] {
		t.Errorf("names: %v", names)
	}
}

func TestGenerateValidation(t *testing.T) {
	_, err := gen.Generate(gen.Config{Prologue: prologue, PacketType: "TCP_data"})
	if err == nil {
		t.Error("missing From/To accepted")
	}
	_, err = gen.Generate(gen.Config{
		Prologue: prologue, PacketType: "ghost",
		From: "node1", To: "node2", Dir: "RECV",
	})
	if err == nil {
		t.Error("unknown packet type accepted (generated script must fail compile)")
	}
	_, err = gen.Generate(gen.Config{
		Prologue: prologue, PacketType: "TCP_data",
		From: "node1", To: "node2", Dir: "UP",
	})
	if err == nil {
		t.Error("bad direction accepted")
	}
}

// TestGeneratedSuiteAgainstTCP runs a generated regression suite for
// every fault kind against the real TCP implementation — the workflow
// the paper's conclusion proposes. A conforming TCP must pass every
// generated case: recover from the fault and keep the stream moving.
func TestGeneratedSuiteAgainstTCP(t *testing.T) {
	scs, err := gen.Generate(gen.Config{
		Prologue:   prologue,
		PacketType: "TCP_data",
		From:       "node1", To: "node2", Dir: "RECV",
		Occurrences:   []int{3},
		ContinueCount: 15,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if len(scs) != 5 {
		t.Fatalf("scenarios = %d", len(scs))
	}
	for _, sc := range scs {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			tb, err := virtualwire.New(virtualwire.Config{Seed: 11})
			if err != nil {
				t.Fatalf("new: %v", err)
			}
			if err := tb.AddNodesFromScript(sc.Script); err != nil {
				t.Fatalf("nodes: %v", err)
			}
			if err := tb.LoadScript(sc.Script); err != nil {
				t.Fatalf("load: %v", err)
			}
			if _, err := tb.AddTCPBulk(virtualwire.TCPBulkConfig{
				From: "node1", To: "node2",
				SrcPort: 0x6000, DstPort: 0x4000,
				Bytes: 256 * 1024,
			}); err != nil {
				t.Fatalf("bulk: %v", err)
			}
			rep, err := tb.Run(2 * time.Minute)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !rep.Passed {
				t.Errorf("TCP failed generated case: %+v", rep.Result)
			}
			if !rep.Result.Stopped {
				t.Errorf("stream did not recover within the timeout: %+v", rep.Result)
			}
		})
	}
}
