// Package gen implements the paper's stated long-term goal ("it will be
// interesting to investigate the possibility of generating the fault
// injection and packet trace analysis scripts directly from the protocol
// specification", Section 8): systematic generation of FSL scenarios.
//
// Given a filter/node prologue and a target packet stream, Generate
// emits one scenario per (fault kind, occurrence index) pair. Each
// scenario injects exactly one fault into the Nth packet of the target
// type and then *analyzes* recovery generically: the stream must deliver
// ContinueCount further packets of the same type within the inactivity
// timeout, at which point the scenario STOPs (pass); going quiet instead
// means the implementation did not recover (fail). This turns the
// paper's regression-testing workflow into a single loop over generated
// scripts.
package gen

import (
	"fmt"
	"strings"
	"time"

	"virtualwire/internal/fsl"
)

// FaultKind selects the injected fault.
type FaultKind string

// Supported generated faults.
const (
	Drop    FaultKind = "DROP"
	Delay   FaultKind = "DELAY"
	Dup     FaultKind = "DUP"
	Modify  FaultKind = "MODIFY"
	Reorder FaultKind = "REORDER"
)

// Config parametrizes generation.
type Config struct {
	// Prologue is the FILTER_TABLE and NODE_TABLE source shared by all
	// scenarios.
	Prologue string
	// PacketType names the filter to target.
	PacketType string
	// From, To name the stream endpoints; Dir is "SEND" or "RECV".
	From, To string
	Dir      string
	// Faults are the fault kinds to generate (default: all).
	Faults []FaultKind
	// Occurrences are the packet indices to hit (default: 1, 2, 10).
	Occurrences []int
	// ContinueCount is how many further target packets must flow after
	// the fault for the scenario to pass (default 20).
	ContinueCount int
	// Timeout is the scenario inactivity timeout (default 5s).
	Timeout time.Duration
	// DelayDuration parametrizes DELAY faults (default 50 ms).
	DelayDuration time.Duration
	// ReorderWindow parametrizes REORDER faults (default 3).
	ReorderWindow int
}

func (c *Config) fill() {
	if len(c.Faults) == 0 {
		c.Faults = []FaultKind{Drop, Delay, Dup, Modify, Reorder}
	}
	if len(c.Occurrences) == 0 {
		c.Occurrences = []int{1, 2, 10}
	}
	if c.ContinueCount <= 0 {
		c.ContinueCount = 20
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.DelayDuration <= 0 {
		c.DelayDuration = 50 * time.Millisecond
	}
	if c.ReorderWindow <= 0 {
		c.ReorderWindow = 3
	}
}

// Scenario is one generated test case.
type Scenario struct {
	// Name identifies the case, e.g. "drop_pkt2_of_TCP_data".
	Name string
	// Script is the complete FSL source (prologue + scenario).
	Script string
	// Fault and Occurrence record what the scenario injects.
	Fault      FaultKind
	Occurrence int
}

// Generate emits one compiled-and-validated scenario per (fault,
// occurrence) pair.
func Generate(cfg Config) ([]Scenario, error) {
	cfg.fill()
	if cfg.PacketType == "" || cfg.From == "" || cfg.To == "" {
		return nil, fmt.Errorf("gen: PacketType, From and To are required")
	}
	if cfg.Dir != "SEND" && cfg.Dir != "RECV" {
		return nil, fmt.Errorf("gen: Dir must be SEND or RECV, got %q", cfg.Dir)
	}
	var out []Scenario
	for _, fault := range cfg.Faults {
		for _, occ := range cfg.Occurrences {
			sc, err := one(cfg, fault, occ)
			if err != nil {
				return nil, err
			}
			out = append(out, sc)
		}
	}
	return out, nil
}

func one(cfg Config, fault FaultKind, occ int) (Scenario, error) {
	name := fmt.Sprintf("%s_pkt%d_of_%s", strings.ToLower(string(fault)), occ, cfg.PacketType)
	var b strings.Builder
	b.WriteString(cfg.Prologue)
	if !strings.HasSuffix(cfg.Prologue, "\n") {
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "SCENARIO %s %dms\n", name, cfg.Timeout/time.Millisecond)
	fmt.Fprintf(&b, "TARGET: (%s, %s, %s, %s)\n", cfg.PacketType, cfg.From, cfg.To, cfg.Dir)
	b.WriteString("(TRUE) >> ENABLE_CNTR( TARGET );\n")

	args := fmt.Sprintf("%s, %s, %s, %s", cfg.PacketType, cfg.From, cfg.To, cfg.Dir)
	var action string
	switch fault {
	case Drop:
		action = fmt.Sprintf("DROP( %s )", args)
	case Delay:
		action = fmt.Sprintf("DELAY( %s, %dms )", args, cfg.DelayDuration/time.Millisecond)
	case Dup:
		action = fmt.Sprintf("DUP( %s )", args)
	case Modify:
		action = fmt.Sprintf("MODIFY( %s )", args)
	case Reorder:
		action = fmt.Sprintf("REORDER( %s, %d )", args, cfg.ReorderWindow)
	default:
		return Scenario{}, fmt.Errorf("gen: unknown fault kind %q", fault)
	}
	fmt.Fprintf(&b, "((TARGET = %d)) >> %s;\n", occ, action)
	// Generic recovery analysis: the stream must keep flowing.
	fmt.Fprintf(&b, "((TARGET = %d)) >> STOP;\n", occ+cfg.ContinueCount)
	b.WriteString("END\n")

	script := b.String()
	if _, err := fsl.Compile(script); err != nil {
		return Scenario{}, fmt.Errorf("gen: generated scenario %s does not compile: %w", name, err)
	}
	return Scenario{Name: name, Script: script, Fault: fault, Occurrence: occ}, nil
}
