package ether

import (
	"bytes"
	"testing"
	"time"

	"virtualwire/internal/packet"
	"virtualwire/internal/sim"
)

func TestFramePoolReuse(t *testing.T) {
	p := NewFramePool()
	fr := p.Get(64)
	if len(fr.Data) != 64 {
		t.Fatalf("Get(64) Data len = %d", len(fr.Data))
	}
	fr.Corrupt = true
	fr.ID = 99
	p.Put(fr)
	got := p.Get(32)
	if got != fr {
		t.Error("Get did not reuse the returned frame")
	}
	if got.Corrupt || got.ID != 0 {
		t.Errorf("recycled frame not reset: Corrupt=%v ID=%d", got.Corrupt, got.ID)
	}
	if len(got.Data) != 32 {
		t.Errorf("recycled Data len = %d, want 32", len(got.Data))
	}
	if p.Hits != 1 {
		t.Errorf("Hits = %d, want 1", p.Hits)
	}
}

func TestFramePoolUndersizedBufferGrows(t *testing.T) {
	p := NewFramePool()
	small := p.Get(16)
	p.Put(small)
	big := p.Get(1500)
	if len(big.Data) != 1500 {
		t.Fatalf("Get(1500) Data len = %d", len(big.Data))
	}
	if big != small {
		t.Error("struct not reused when the buffer had to grow")
	}
}

func TestFramePoolClone(t *testing.T) {
	p := NewFramePool()
	orig := p.Get(100)
	for i := range orig.Data {
		orig.Data[i] = byte(i)
	}
	orig.Corrupt = true
	orig.ID = 7
	cp := p.Clone(orig)
	if cp == orig {
		t.Fatal("Clone returned the original")
	}
	if !bytes.Equal(cp.Data, orig.Data) {
		t.Error("Clone data differs")
	}
	if !cp.Corrupt || cp.ID != 7 {
		t.Errorf("Clone lost metadata: Corrupt=%v ID=%d", cp.Corrupt, cp.ID)
	}
	// Mutating the clone must not touch the original.
	cp.Data[0] ^= 0xFF
	if orig.Data[0] == cp.Data[0] {
		t.Error("Clone shares its buffer with the original")
	}
}

func TestFramePoolSkipsOversizedBuffers(t *testing.T) {
	p := NewFramePool()
	huge := &Frame{Data: make([]byte, maxPooledCap+1)}
	p.Put(huge)
	if p.Puts != 0 || len(p.free) != 0 {
		t.Error("oversized buffer was pooled")
	}
}

func TestFramePoolNilSafe(t *testing.T) {
	var p *FramePool
	fr := p.Get(10)
	if fr == nil || len(fr.Data) != 10 {
		t.Fatal("nil pool Get failed")
	}
	cp := p.Clone(fr)
	if cp == nil || len(cp.Data) != 10 {
		t.Fatal("nil pool Clone failed")
	}
	p.Put(fr) // must not panic
}

// End-to-end: frames delivered across a pooled bus must survive intact
// even while the transmitted originals and dropped copies are recycled
// underneath — the receiver owns its upcall frame forever.
func TestFramePoolBusDeliveryIntegrity(t *testing.T) {
	s := sim.NewScheduler(1)
	pool := NewFramePool()
	bus := NewSharedBus(s, BusConfig{Pool: pool})
	a := NewNIC(s, packet.MAC{0, 0, 0, 0, 0, 1}, 16)
	b := NewNIC(s, packet.MAC{0, 0, 0, 0, 0, 2}, 16)
	bus.Attach(a)
	bus.Attach(b)

	var delivered []*Frame
	b.SetRecv(func(fr *Frame) { delivered = append(delivered, fr) })

	const frames = 20
	for i := 0; i < frames; i++ {
		fr := pool.Get(64)
		copy(fr.Data[0:6], b.MAC[:])
		copy(fr.Data[6:12], a.MAC[:])
		for j := 14; j < 64; j++ {
			fr.Data[j] = byte(i)
		}
		i := i
		s.After(time.Duration(i)*time.Millisecond, "send", func() { a.Send(fr) })
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(delivered) != frames {
		t.Fatalf("delivered %d frames, want %d", len(delivered), frames)
	}
	for i, fr := range delivered {
		for j := 14; j < 64; j++ {
			if fr.Data[j] != byte(i) {
				t.Fatalf("frame %d payload corrupted at byte %d: got %d", i, j, fr.Data[j])
			}
		}
	}
	if pool.Puts == 0 {
		t.Error("bus recycled no frames")
	}
	if pool.Hits == 0 {
		t.Error("pool served no recycled buffers")
	}
}
