package ether

import (
	"virtualwire/internal/metrics"
	"virtualwire/internal/packet"
	"virtualwire/internal/sim"
)

// Stats counts NIC-level events. All counts are cumulative since the NIC
// was created.
type Stats struct {
	TxFrames   uint64
	TxBytes    uint64
	RxFrames   uint64
	RxBytes    uint64
	QueueDrops uint64 // transmit queue overflow
	CRCErrors  uint64 // corrupt frames discarded on receive
	Collisions uint64 // transmit attempts that ended in a collision
	TxExpired  uint64 // frames dropped after MaxAttempts collisions
}

// Medium is the wire a NIC is attached to. Media call back into the NIC
// for queue access and delivery; NICs call kick to announce pending
// frames.
type Medium interface {
	// Attach registers the NIC on the medium. A NIC is attached to
	// exactly one medium.
	Attach(n *NIC)
	// kick tells the medium that n has at least one frame queued.
	kick(n *NIC)
}

// NIC is a simulated network interface: a bounded transmit queue, carrier
// access handled by the attached medium, and an upcall for received
// frames.
type NIC struct {
	// MAC is the interface hardware address.
	MAC packet.MAC
	// Promiscuous, when true, delivers frames regardless of their
	// destination address (used by the switch's internal ports).
	Promiscuous bool
	// DeliverCorrupt, when true, passes FCS-failed frames to the
	// receive handler with Corrupt set instead of discarding them.
	DeliverCorrupt bool
	// Stats accumulates interface counters.
	Stats Stats

	sched   *sim.Scheduler
	medium  Medium
	pool    *FramePool // set by the medium on Attach; nil disables recycling
	txq     []*Frame
	txhead  int // index of the queue front within txq
	txqCap  int
	recv    func(*Frame)
	nextID  *uint64
	backoff int // consecutive collisions for the frame at queue head
}

// NewNIC returns a NIC with the given address and a transmit queue of
// txqCap frames (<=0 selects the default of 128).
func NewNIC(sched *sim.Scheduler, mac packet.MAC, txqCap int) *NIC {
	if txqCap <= 0 {
		txqCap = 128
	}
	var id uint64
	return &NIC{
		MAC:    mac,
		sched:  sched,
		txqCap: txqCap,
		nextID: &id,
	}
}

// SetRecv installs the receive upcall. Frames arrive fully reassembled
// (store-and-forward timing is handled by the medium).
func (n *NIC) SetRecv(fn func(*Frame)) { n.recv = fn }

// Scheduler returns the simulation scheduler the NIC runs on.
func (n *NIC) Scheduler() *sim.Scheduler { return n.sched }

// SetScheduler rebinds the NIC to another scheduler. The sharded engine
// uses this before any traffic flows to move a host's NIC onto its
// shard's event queue; rebinding mid-run would strand pending events.
func (n *NIC) SetScheduler(s *sim.Scheduler) { n.sched = s }

// QueueLen reports the current transmit queue depth.
func (n *NIC) QueueLen() int { return len(n.txq) - n.txhead }

// Send queues a frame for transmission. It reports false if the transmit
// queue is full and the frame was dropped.
func (n *NIC) Send(fr *Frame) bool {
	if n.QueueLen() >= n.txqCap {
		n.Stats.QueueDrops++
		// Ownership passed to the NIC with the call; a dropped frame is
		// dead and goes back to the testbed's pool.
		n.pool.Put(fr)
		return false
	}
	if fr.ID == 0 {
		*n.nextID++
		fr.ID = *n.nextID
	}
	n.txq = append(n.txq, fr)
	if n.medium != nil {
		n.medium.kick(n)
	}
	return true
}

// Reset returns the NIC to its just-constructed state: queued frames go
// back to the pool, counters and the collision backoff clear, and frame
// IDs restart from zero. The receive upcall and medium attachment are
// wiring, not run state, and survive.
func (n *NIC) Reset() {
	for i := n.txhead; i < len(n.txq); i++ {
		n.pool.Put(n.txq[i])
		n.txq[i] = nil
	}
	n.txq = n.txq[:0]
	n.txhead = 0
	n.Stats = Stats{}
	n.backoff = 0
	*n.nextID = 0
}

// Snapshot implements the uniform metrics hook: every Stats field plus
// the instantaneous transmit queue depth.
func (n *NIC) Snapshot() metrics.Snapshot {
	var sn metrics.Snapshot
	sn.Counter("tx_frames", n.Stats.TxFrames)
	sn.Counter("tx_bytes", n.Stats.TxBytes)
	sn.Counter("rx_frames", n.Stats.RxFrames)
	sn.Counter("rx_bytes", n.Stats.RxBytes)
	sn.Counter("queue_drops", n.Stats.QueueDrops)
	sn.Counter("crc_errors", n.Stats.CRCErrors)
	sn.Counter("collisions", n.Stats.Collisions)
	sn.Counter("tx_expired", n.Stats.TxExpired)
	sn.Gauge("txq_len", float64(n.QueueLen()))
	return sn
}

// dropQueued discards the transmit queue (fault injection: the medium
// died under the NIC). keepHead preserves the queue front — the frame
// whose transmission is already in flight and will be dequeued by its
// pending txEnd. Dropped frames count as QueueDrops, the same bucket as
// overflow: either way the egress queue ate them.
func (n *NIC) dropQueued(keepHead bool) int {
	start := n.txhead
	if keepHead && start < len(n.txq) {
		start++
	}
	dropped := 0
	for i := start; i < len(n.txq); i++ {
		n.pool.Put(n.txq[i])
		n.txq[i] = nil
		dropped++
	}
	n.txq = n.txq[:start]
	if n.txhead == len(n.txq) {
		n.txq = n.txq[:0]
		n.txhead = 0
	}
	n.Stats.QueueDrops += uint64(dropped)
	return dropped
}

// head returns the frame at the front of the transmit queue without
// removing it, or nil.
func (n *NIC) head() *Frame {
	if n.txhead == len(n.txq) {
		return nil
	}
	return n.txq[n.txhead]
}

// dequeue removes and returns the frame at the front of the queue. The
// backing array is reused once the queue drains: advancing a bare
// sub-slice (txq = txq[1:]) would shed the front capacity and force a
// reallocation every txqCap sends.
func (n *NIC) dequeue() *Frame {
	fr := n.txq[n.txhead]
	n.txq[n.txhead] = nil
	n.txhead++
	if n.txhead == len(n.txq) {
		n.txq = n.txq[:0]
		n.txhead = 0
	}
	return fr
}

// txDone is called by the medium when the head frame was transmitted
// successfully.
func (n *NIC) txDone(fr *Frame) {
	n.Stats.TxFrames++
	n.Stats.TxBytes += uint64(len(fr.Data))
	n.backoff = 0
}

// collided is called by the medium when a transmit attempt collided. It
// reports whether the frame should be retried (false once the attempt
// limit is reached, in which case the frame has been dropped).
func (n *NIC) collided() bool {
	n.Stats.Collisions++
	n.backoff++
	if n.backoff >= MaxAttempts {
		n.Stats.TxExpired++
		n.pool.Put(n.dequeue())
		n.backoff = 0
		return false
	}
	return true
}

// deliver hands a received frame to the host side of the NIC, applying
// destination filtering and FCS policy.
func (n *NIC) deliver(fr *Frame) {
	dst := fr.Dst()
	if !n.Promiscuous && dst != n.MAC && !dst.IsBroadcast() {
		// Never seen by the receiver: safe to recycle.
		n.pool.Put(fr)
		return
	}
	if fr.Corrupt && !n.DeliverCorrupt {
		n.Stats.CRCErrors++
		n.pool.Put(fr)
		return
	}
	n.Stats.RxFrames++
	n.Stats.RxBytes += uint64(len(fr.Data))
	if n.recv != nil {
		n.recv(fr)
	}
}
