package ether_test

// External-package test: the in-package pool tests cannot import the rll
// package (rll imports ether), so the pool/RLL interaction lives here.

import (
	"testing"

	"virtualwire/internal/ether"
	"virtualwire/internal/packet"
	"virtualwire/internal/rll"
	"virtualwire/internal/sim"
	"virtualwire/internal/stack"
)

type upcallSink struct {
	frames []*ether.Frame
}

func (s *upcallSink) DeliverUp(fr *ether.Frame) { s.frames = append(s.frames, fr) }

// TestFramePoolRLLUpcall runs the full NIC ← RLL ← sink stack over a
// pooled bus and checks that the RLL's decapsulation upcall participates
// in the recycling protocol: spent outer encapsulations and ack frames
// flow back into the shared pool while the frames handed to the sink stay
// intact and owned by the receiver.
func TestFramePoolRLLUpcall(t *testing.T) {
	s := sim.NewScheduler(31)
	pool := ether.NewFramePool()
	bus := ether.NewSharedBus(s, ether.BusConfig{Pool: pool})
	macA := packet.MAC{0, 0, 0, 0, 0, 0xa}
	macB := packet.MAC{0, 0, 0, 0, 0, 0xb}
	nicA := ether.NewNIC(s, macA, 64)
	nicB := ether.NewNIC(s, macB, 64)
	nicA.DeliverCorrupt = true
	nicB.DeliverCorrupt = true
	bus.Attach(nicA)
	bus.Attach(nicB)
	ra := rll.New(s, macA, rll.Config{})
	rb := rll.New(s, macB, rll.Config{})
	ra.SetPool(pool)
	rb.SetPool(pool)
	sa, sb := &upcallSink{}, &upcallSink{}
	downA := stack.Chain(nicA, sa, ra)
	_ = stack.Chain(nicB, sb, rb)

	const frames = 10
	for i := 0; i < frames; i++ {
		d := make([]byte, packet.EthHeaderLen+50)
		packet.PutEth(d, packet.Eth{Dst: macB, Src: macA, Type: 0x0800})
		for j := packet.EthHeaderLen; j < len(d); j++ {
			d[j] = byte(i)
		}
		downA.SendDown(&ether.Frame{Data: d})
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(sb.frames) != frames {
		t.Fatalf("delivered %d frames, want %d", len(sb.frames), frames)
	}
	for i, fr := range sb.frames {
		if fr.EtherType() != 0x0800 {
			t.Fatalf("frame %d: inner ethertype not restored (%#x)", i, fr.EtherType())
		}
		for j := packet.EthHeaderLen; j < len(fr.Data); j++ {
			if fr.Data[j] != byte(i) {
				t.Fatalf("frame %d payload corrupted at byte %d after recycling", i, j)
			}
		}
	}
	// The RLL consumed every outer data frame and every ack it received;
	// all of those must have been recycled rather than leaked.
	if pool.Puts == 0 {
		t.Error("RLL recycled no frames")
	}
	if pool.Hits == 0 {
		t.Error("pool served no recycled buffers through the RLL path")
	}
}
