package ether

import (
	"math/rand"
	"testing"
	"time"

	"virtualwire/internal/packet"
	"virtualwire/internal/sim"
)

// TestSwitchAccountingIdentityUnderFaults is the forwarding-path
// accounting property: on random tree fabrics with random traffic and
// random runtime block/fail/crash toggles, every switch's ingress
// frames partition exactly into the four outcome counters once the
// pipeline drains:
//
//	IngressFrames == ForwardedFrames + FloodedFrames +
//	                 BlockedFrames + DroppedFrames
//
// Before the fix, flood-time discards (all egress ports blocked) and
// fire-time discards (egress blocked/failed/self, switch crashed with
// frames in the pipeline) vanished without incrementing any counter.
func TestSwitchAccountingIdentityUnderFaults(t *testing.T) {
	trials := 40
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)*2654435761 + 99))
		s := sim.NewScheduler(int64(trial + 1))
		nsw := 2 + rng.Intn(4)
		sws := make([]*Switch, nsw)
		for i := range sws {
			sws[i] = NewSwitch(s, SwitchConfig{ID: i, FullDuplex: true})
		}
		// Random tree wiring (no loops, so no flood storms regardless of
		// which ports the toggles block).
		type portRef struct {
			sw   *Switch
			port int
		}
		var trunkPorts []portRef
		for i := 1; i < nsw; i++ {
			parent := rng.Intn(i)
			_, pa, pb := ConnectTrunk(sws[parent], sws[i], LinkConfig{})
			trunkPorts = append(trunkPorts, portRef{sws[parent], pa}, portRef{sws[i], pb})
		}
		// Two hosts per switch.
		hostsPer := 2
		var nics []*NIC
		var macs []packet.MAC
		for i := 0; i < nsw; i++ {
			for h := 0; h < hostsPer; h++ {
				m := mac(byte(1 + i*hostsPer + h))
				n := NewNIC(s, m, 0)
				n.SetRecv(func(*Frame) {})
				sws[i].AttachHost(n)
				nics = append(nics, n)
				macs = append(macs, m)
			}
		}
		// Random traffic: unicast to known hosts, unknown destinations
		// (floods) and broadcasts, spread over the first 3ms.
		for hi, n := range nics {
			src := macs[hi]
			count := 5 + rng.Intn(12)
			for k := 0; k < count; k++ {
				at := time.Duration(rng.Intn(3000)) * time.Microsecond
				var dst packet.MAC
				switch rng.Intn(5) {
				case 0:
					dst = packet.MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
				case 1:
					dst = mac(byte(200 + rng.Intn(4))) // never learned: floods
				default:
					dst = macs[rng.Intn(len(macs))]
				}
				nic := n
				size := 64 + rng.Intn(400)
				s.At(at, "test.send", func() { nic.Send(testFrame(src, dst, size)) })
			}
		}
		// Random fault toggles racing the traffic: trunk-port blocking
		// (spanning-tree moves), trunk-port failure and switch
		// crash/restart, all mid-run.
		for _, pr := range trunkPorts {
			pr := pr
			if rng.Intn(3) == 0 {
				at := time.Duration(rng.Intn(3000)) * time.Microsecond
				s.At(at, "test.block", func() { pr.sw.SetPortBlocked(pr.port, true) })
				if rng.Intn(2) == 0 {
					s.At(at+time.Duration(500+rng.Intn(1000))*time.Microsecond, "test.unblock",
						func() { pr.sw.SetPortBlocked(pr.port, false) })
				}
			}
			if rng.Intn(4) == 0 {
				at := time.Duration(rng.Intn(3000)) * time.Microsecond
				s.At(at, "test.fail", func() { pr.sw.SetPortFailed(pr.port, true) })
			}
		}
		for _, sw := range sws {
			if rng.Intn(3) != 0 {
				continue
			}
			sw := sw
			at := time.Duration(rng.Intn(3000)) * time.Microsecond
			s.At(at, "test.crash", func() { sw.SetDown(true) })
			s.At(at+time.Duration(500+rng.Intn(1000))*time.Microsecond, "test.restart",
				func() { sw.SetDown(false) })
		}
		if err := s.Run(); err != nil {
			t.Fatalf("trial %d: run: %v", trial, err)
		}
		for i, sw := range sws {
			sum := sw.ForwardedFrames + sw.FloodedFrames + sw.BlockedFrames + sw.DroppedFrames
			if sw.IngressFrames != sum {
				t.Fatalf("trial %d switch %d: ingress %d != forwarded %d + flooded %d + blocked %d + dropped %d",
					trial, i, sw.IngressFrames, sw.ForwardedFrames, sw.FloodedFrames, sw.BlockedFrames, sw.DroppedFrames)
			}
		}
	}
}

// TestSwitchFireTimeRecheck pins the fire-time port-state bug: a frame
// accepted at ingress toward a port that goes down before the
// store-and-forward latency elapses must be discarded — and counted —
// instead of transmitted out the dead port with the stale ingress-time
// decision.
func TestSwitchFireTimeRecheck(t *testing.T) {
	s := sim.NewScheduler(1)
	sw := NewSwitch(s, SwitchConfig{ID: 0, FullDuplex: true})
	a, b := NewNIC(s, mac(1), 0), NewNIC(s, mac(2), 0)
	gotB := 0
	a.SetRecv(func(*Frame) {})
	b.SetRecv(func(*Frame) { gotB++ })
	sw.AttachHost(a)
	pb := sw.AttachHost(b)
	// Teach the switch where b lives.
	b.Send(testFrame(mac(2), mac(1), 64))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Send toward b, then fail b's port while the frame sits in the
	// switch's forwarding pipeline (the store-and-forward latency is 5us;
	// the failure lands after ingress but before fire time).
	a.Send(testFrame(mac(1), mac(2), 64))
	s.At(s.Now()+8*time.Microsecond, "test.fail", func() { sw.SetPortFailed(pb, true) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if gotB != 0 {
		t.Fatalf("frame delivered out a port that failed before fire time (gotB=%d)", gotB)
	}
	if sw.DroppedFrames != 1 {
		t.Fatalf("DroppedFrames = %d, want 1 (fire-time discard)", sw.DroppedFrames)
	}
	sum := sw.ForwardedFrames + sw.FloodedFrames + sw.BlockedFrames + sw.DroppedFrames
	if sw.IngressFrames != sum {
		t.Fatalf("accounting identity broken: ingress %d, outcomes %d", sw.IngressFrames, sum)
	}
}
