package ether

import (
	"testing"
	"time"

	"virtualwire/internal/packet"
	"virtualwire/internal/sim"
)

func mac(last byte) packet.MAC { return packet.MAC{0, 0, 0, 0, 0, last} }

// testFrame builds a frame from src to dst with n payload bytes after a
// valid Ethernet header.
func testFrame(src, dst packet.MAC, n int) *Frame {
	b := make([]byte, packet.EthHeaderLen+n)
	packet.PutEth(b, packet.Eth{Dst: dst, Src: src, Type: 0x0800})
	for i := packet.EthHeaderLen; i < len(b); i++ {
		b[i] = byte(i)
	}
	return &Frame{Data: b}
}

func TestFrameAccessors(t *testing.T) {
	fr := testFrame(mac(1), mac(2), 10)
	if fr.Src() != mac(1) {
		t.Errorf("Src() = %v", fr.Src())
	}
	if fr.Dst() != mac(2) {
		t.Errorf("Dst() = %v", fr.Dst())
	}
	if fr.EtherType() != 0x0800 {
		t.Errorf("EtherType() = %#x", fr.EtherType())
	}
	cp := fr.Clone()
	cp.Data[20] ^= 0xff
	if fr.Data[20] == cp.Data[20] {
		t.Error("Clone shares backing array")
	}
}

func TestBusDeliversToDestination(t *testing.T) {
	s := sim.NewScheduler(1)
	bus := NewSharedBus(s, BusConfig{})
	a, b, c := NewNIC(s, mac(1), 0), NewNIC(s, mac(2), 0), NewNIC(s, mac(3), 0)
	bus.Attach(a)
	bus.Attach(b)
	bus.Attach(c)
	var gotB, gotC int
	b.SetRecv(func(*Frame) { gotB++ })
	c.SetRecv(func(*Frame) { gotC++ })
	a.Send(testFrame(mac(1), mac(2), 100))
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if gotB != 1 {
		t.Errorf("destination received %d frames, want 1", gotB)
	}
	if gotC != 0 {
		t.Errorf("bystander received %d frames, want 0 (unicast filter)", gotC)
	}
	if a.Stats.TxFrames != 1 || b.Stats.RxFrames != 1 {
		t.Errorf("stats: tx=%d rx=%d", a.Stats.TxFrames, b.Stats.RxFrames)
	}
}

func TestBusBroadcast(t *testing.T) {
	s := sim.NewScheduler(1)
	bus := NewSharedBus(s, BusConfig{})
	nics := make([]*NIC, 4)
	got := make([]int, 4)
	for i := range nics {
		nics[i] = NewNIC(s, mac(byte(i+1)), 0)
		bus.Attach(nics[i])
		i := i
		nics[i].SetRecv(func(*Frame) { got[i]++ })
	}
	nics[0].Send(testFrame(mac(1), packet.Broadcast, 50))
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got[0] != 0 {
		t.Error("sender received its own broadcast")
	}
	for i := 1; i < 4; i++ {
		if got[i] != 1 {
			t.Errorf("nic %d got %d broadcast copies, want 1", i, got[i])
		}
	}
}

func TestBusSerializationTiming(t *testing.T) {
	s := sim.NewScheduler(1)
	bus := NewSharedBus(s, BusConfig{BitsPerSecond: 100e6, Propagation: 500 * time.Nanosecond})
	a, b := NewNIC(s, mac(1), 0), NewNIC(s, mac(2), 0)
	bus.Attach(a)
	bus.Attach(b)
	var at time.Duration
	b.SetRecv(func(*Frame) { at = s.Now() })
	a.Send(testFrame(mac(1), mac(2), 1000)) // 1014-byte frame
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	// Wire bytes = 1014+12 = 1026 → 8208 bits at 100 Mbps = 82.08 µs,
	// plus 500 ns propagation.
	want := time.Duration(float64(wireBytes(1014)*8)/100e6*float64(time.Second)) + 500*time.Nanosecond
	if at != want {
		t.Errorf("delivery at %v, want %v", at, want)
	}
}

// TestBusSequentialSendersShareFairly drives two stations hard and checks
// that both make progress and that collisions occur and resolve.
func TestBusContention(t *testing.T) {
	s := sim.NewScheduler(7)
	bus := NewSharedBus(s, BusConfig{})
	a, b := NewNIC(s, mac(1), 256), NewNIC(s, mac(2), 256)
	c := NewNIC(s, mac(3), 0)
	bus.Attach(a)
	bus.Attach(b)
	bus.Attach(c)
	got := 0
	c.SetRecv(func(*Frame) { got++ })
	const n = 50
	for i := 0; i < n; i++ {
		a.Send(testFrame(mac(1), mac(3), 500))
		b.Send(testFrame(mac(2), mac(3), 500))
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	lost := int(a.Stats.TxExpired + b.Stats.TxExpired)
	if got+lost != 2*n {
		t.Errorf("delivered %d + expired %d, want %d total", got, lost, 2*n)
	}
	if bus.TotalCollisions == 0 {
		t.Error("simultaneous senders never collided; CSMA/CD model inert")
	}
	if a.Stats.TxFrames == 0 || b.Stats.TxFrames == 0 {
		t.Errorf("starvation: a=%d b=%d", a.Stats.TxFrames, b.Stats.TxFrames)
	}
}

func TestBusBitErrorsDropAtNIC(t *testing.T) {
	s := sim.NewScheduler(3)
	bus := NewSharedBus(s, BusConfig{BitErrorRate: 1e-4}) // ~0.5 loss for 600-byte frames
	a, b := NewNIC(s, mac(1), 1024), NewNIC(s, mac(2), 0)
	bus.Attach(a)
	bus.Attach(b)
	got := 0
	b.SetRecv(func(fr *Frame) {
		if fr.Corrupt {
			t.Error("corrupt frame passed FCS filter")
		}
		got++
	})
	const n = 200
	send := func() {}
	i := 0
	send = func() {
		if i >= n {
			return
		}
		i++
		a.Send(testFrame(mac(1), mac(2), 600))
		s.After(100*time.Microsecond, "next", send)
	}
	s.After(0, "start", send)
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if b.Stats.CRCErrors == 0 {
		t.Error("no CRC errors at BER 1e-4; corruption model inert")
	}
	if got == 0 {
		t.Error("all frames corrupted; corruption model too aggressive")
	}
	if got+int(b.Stats.CRCErrors) != n {
		t.Errorf("delivered %d + crc %d != %d", got, b.Stats.CRCErrors, n)
	}
}

func TestNICDeliverCorrupt(t *testing.T) {
	s := sim.NewScheduler(3)
	bus := NewSharedBus(s, BusConfig{BitErrorRate: 1}) // everything corrupts
	a, b := NewNIC(s, mac(1), 0), NewNIC(s, mac(2), 0)
	b.DeliverCorrupt = true
	bus.Attach(a)
	bus.Attach(b)
	var sawCorrupt bool
	b.SetRecv(func(fr *Frame) { sawCorrupt = fr.Corrupt })
	a.Send(testFrame(mac(1), mac(2), 100))
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !sawCorrupt {
		t.Error("DeliverCorrupt NIC did not see the corrupt frame")
	}
}

func TestNICQueueOverflow(t *testing.T) {
	s := sim.NewScheduler(1)
	bus := NewSharedBus(s, BusConfig{})
	a := NewNIC(s, mac(1), 4)
	bus.Attach(a)
	ok := 0
	for i := 0; i < 10; i++ {
		if a.Send(testFrame(mac(1), mac(2), 1000)) {
			ok++
		}
	}
	if ok != 4 {
		t.Errorf("accepted %d frames into a 4-deep queue", ok)
	}
	if a.Stats.QueueDrops != 6 {
		t.Errorf("QueueDrops = %d, want 6", a.Stats.QueueDrops)
	}
}

func TestSwitchUnicastAfterLearning(t *testing.T) {
	s := sim.NewScheduler(1)
	sw := NewSwitch(s, SwitchConfig{})
	var nics [3]*NIC
	var got [3]int
	for i := range nics {
		nics[i] = NewNIC(s, mac(byte(i+1)), 0)
		sw.AttachHost(nics[i])
		i := i
		nics[i].SetRecv(func(*Frame) { got[i]++ })
	}
	// The bystander observes its wire promiscuously so flooding (which a
	// normal NIC would address-filter) is visible to the test.
	nics[2].Promiscuous = true
	// First frame to an unknown MAC floods; reply then unicasts.
	nics[0].Send(testFrame(mac(1), mac(2), 100))
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got[1] != 1 {
		t.Fatalf("dst got %d", got[1])
	}
	flooded := got[2]
	if flooded != 1 {
		t.Fatalf("unknown dst should flood; bystander got %d", flooded)
	}
	nics[1].Send(testFrame(mac(2), mac(1), 100)) // teaches the switch mac(2)
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	nics[0].Send(testFrame(mac(1), mac(2), 100)) // now unicast
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got[2] != flooded {
		t.Errorf("bystander saw unicast traffic after learning: %d", got[2])
	}
	if got[1] != 2 || got[0] != 1 {
		t.Errorf("delivery counts: %v", got)
	}
}

func TestSwitchHalfDuplexContention(t *testing.T) {
	// Bidirectional load must share each half-duplex port segment:
	// the transfer takes roughly twice as long as over full duplex.
	runOne := func(full bool) time.Duration {
		s := sim.NewScheduler(9)
		sw := NewSwitch(s, SwitchConfig{FullDuplex: full})
		a, b := NewNIC(s, mac(1), 512), NewNIC(s, mac(2), 512)
		sw.AttachHost(a)
		sw.AttachHost(b)
		gotA, gotB := 0, 0
		a.SetRecv(func(*Frame) { gotA++ })
		b.SetRecv(func(*Frame) { gotB++ })
		for i := 0; i < 100; i++ {
			a.Send(testFrame(mac(1), mac(2), 800))
			b.Send(testFrame(mac(2), mac(1), 800))
		}
		if err := s.Run(); err != nil {
			t.Fatalf("run: %v", err)
		}
		if gotA != 100 || gotB != 100 {
			t.Fatalf("deliveries: a=%d b=%d (full=%v)", gotA, gotB, full)
		}
		return s.Now()
	}
	half := runOne(false)
	full := runOne(true)
	if half < full*17/10 {
		t.Errorf("half-duplex finished in %v vs full-duplex %v; want ~2x sharing", half, full)
	}
}

func TestSwitchFullDuplexNoCollisions(t *testing.T) {
	s := sim.NewScheduler(9)
	sw := NewSwitch(s, SwitchConfig{FullDuplex: true})
	a, b := NewNIC(s, mac(1), 512), NewNIC(s, mac(2), 512)
	sw.AttachHost(a)
	sw.AttachHost(b)
	gotA, gotB := 0, 0
	a.SetRecv(func(*Frame) { gotA++ })
	b.SetRecv(func(*Frame) { gotB++ })
	for i := 0; i < 100; i++ {
		a.Send(testFrame(mac(1), mac(2), 800))
		b.Send(testFrame(mac(2), mac(1), 800))
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if a.Stats.Collisions+b.Stats.Collisions != 0 {
		t.Error("full-duplex links collided")
	}
	if gotA != 100 || gotB != 100 {
		t.Errorf("deliveries: a=%d b=%d, want 100/100", gotA, gotB)
	}
}

func TestLinkOrderingPreserved(t *testing.T) {
	s := sim.NewScheduler(2)
	l := NewLink(s, LinkConfig{})
	a, b := NewNIC(s, mac(1), 64), NewNIC(s, mac(2), 0)
	l.Attach(a)
	l.Attach(b)
	var order []byte
	b.SetRecv(func(fr *Frame) { order = append(order, fr.Data[packet.EthHeaderLen]) })
	for i := 0; i < 10; i++ {
		fr := testFrame(mac(1), mac(2), 100)
		fr.Data[packet.EthHeaderLen] = byte(i)
		a.Send(fr)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(order) != 10 {
		t.Fatalf("delivered %d frames", len(order))
	}
	for i, v := range order {
		if v != byte(i) {
			t.Fatalf("frames reordered on a point-to-point link: %v", order)
		}
	}
}

func TestBusUtilization(t *testing.T) {
	// A single saturating sender on a clean 100 Mbps bus must achieve
	// close to line rate (>90% goodput for 1400-byte frames).
	s := sim.NewScheduler(4)
	bus := NewSharedBus(s, BusConfig{})
	a, b := NewNIC(s, mac(1), 16), NewNIC(s, mac(2), 0)
	bus.Attach(a)
	bus.Attach(b)
	var rxBytes int
	b.SetRecv(func(fr *Frame) { rxBytes += len(fr.Data) })
	var refill func()
	deadline := 10 * time.Millisecond
	refill = func() {
		if s.Now() >= deadline {
			return
		}
		for a.QueueLen() < 8 {
			a.Send(testFrame(mac(1), mac(2), 1400))
		}
		s.After(100*time.Microsecond, "refill", refill)
	}
	s.After(0, "start", refill)
	if err := s.RunUntil(deadline); err != nil {
		t.Fatalf("run: %v", err)
	}
	goodput := float64(rxBytes*8) / deadline.Seconds()
	if goodput < 90e6 {
		t.Errorf("goodput %.1f Mbps, want > 90 Mbps", goodput/1e6)
	}
	if goodput > 100e6 {
		t.Errorf("goodput %.1f Mbps exceeds line rate", goodput/1e6)
	}
}

func BenchmarkBusForwarding(b *testing.B) {
	benchBusForwarding(b, nil)
}

// BenchmarkBusForwardingPooled is the same frame path drawing from a
// FramePool, as a Testbed's media do — the delivery clones and the
// transmitted originals recycle instead of hitting the allocator.
func BenchmarkBusForwardingPooled(b *testing.B) {
	benchBusForwarding(b, NewFramePool())
}

func benchBusForwarding(b *testing.B, pool *FramePool) {
	s := sim.NewScheduler(1)
	bus := NewSharedBus(s, BusConfig{Pool: pool})
	a, c := NewNIC(s, mac(1), 16), NewNIC(s, mac(2), 0)
	bus.Attach(a)
	bus.Attach(c)
	send := func() {
		fr := pool.Get(1000)
		copy(fr.Data, testFrame(mac(1), mac(2), 1000).Data)
		a.Send(fr)
	}
	n := 0
	c.SetRecv(func(*Frame) {
		n++
		if n < b.N {
			send()
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	send()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

func TestLinkBitErrors(t *testing.T) {
	s := sim.NewScheduler(11)
	l := NewLink(s, LinkConfig{BitErrorRate: 1}) // corrupt everything
	a, b := NewNIC(s, mac(1), 16), NewNIC(s, mac(2), 0)
	b.DeliverCorrupt = true
	l.Attach(a)
	l.Attach(b)
	var sawCorrupt bool
	b.SetRecv(func(fr *Frame) { sawCorrupt = sawCorrupt || fr.Corrupt })
	a.Send(testFrame(mac(1), mac(2), 200))
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !sawCorrupt {
		t.Error("link at BER=1 delivered a clean frame")
	}
	// A third attachment is ignored rather than silently eating frames.
	c := NewNIC(s, mac(3), 0)
	l.Attach(c)
	if len(l.ends) != 2 {
		t.Error("link accepted a third endpoint")
	}
}

func TestNICFrameIDAssignment(t *testing.T) {
	s := sim.NewScheduler(12)
	bus := NewSharedBus(s, BusConfig{})
	a, b := NewNIC(s, mac(1), 16), NewNIC(s, mac(2), 0)
	bus.Attach(a)
	bus.Attach(b)
	f1, f2 := testFrame(mac(1), mac(2), 10), testFrame(mac(1), mac(2), 10)
	a.Send(f1)
	a.Send(f2)
	if f1.ID == 0 || f2.ID == 0 || f1.ID == f2.ID {
		t.Errorf("frame IDs %d, %d", f1.ID, f2.ID)
	}
	pre := &Frame{Data: f1.Data, ID: 777}
	a.Send(pre)
	if pre.ID != 777 {
		t.Error("pre-assigned frame ID overwritten")
	}
}

func TestSwitchTrunkLearningAcrossFabric(t *testing.T) {
	// Two switches joined by a trunk: unicast reaches a host behind the
	// remote switch, and after learning, traffic stops flooding.
	s := sim.NewScheduler(1)
	swA := NewSwitch(s, SwitchConfig{ID: 0})
	swB := NewSwitch(s, SwitchConfig{ID: 1})
	ConnectTrunk(swA, swB, LinkConfig{})
	a, b := NewNIC(s, mac(1), 0), NewNIC(s, mac(2), 0)
	bystander := NewNIC(s, mac(3), 0)
	bystander.Promiscuous = true
	swA.AttachHost(a)
	swB.AttachHost(b)
	swB.AttachHost(bystander)
	gotA, gotB, gotBy := 0, 0, 0
	a.SetRecv(func(*Frame) { gotA++ })
	b.SetRecv(func(*Frame) { gotB++ })
	bystander.SetRecv(func(*Frame) { gotBy++ })

	a.Send(testFrame(mac(1), mac(2), 200)) // unknown: floods across the trunk
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if gotB != 1 || gotBy != 1 {
		t.Fatalf("flood across trunk: b=%d bystander=%d", gotB, gotBy)
	}
	b.Send(testFrame(mac(2), mac(1), 200)) // teaches both switches mac(2)
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if gotA != 1 {
		t.Fatalf("reply not delivered: a=%d", gotA)
	}
	a.Send(testFrame(mac(1), mac(2), 200)) // unicast end to end now
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if gotB != 2 {
		t.Fatalf("unicast across trunk: b=%d", gotB)
	}
	if gotBy != 1 {
		t.Errorf("bystander saw post-learning unicast: %d", gotBy)
	}
}

func TestSwitchBlockedTrunkBreaksLoop(t *testing.T) {
	// Three switches wired in a ring. With one trunk blocked on both
	// ends, a broadcast visits every host exactly once instead of
	// storming forever.
	s := sim.NewScheduler(1)
	sws := make([]*Switch, 3)
	for i := range sws {
		sws[i] = NewSwitch(s, SwitchConfig{ID: i})
	}
	ConnectTrunk(sws[0], sws[1], LinkConfig{})
	ConnectTrunk(sws[1], sws[2], LinkConfig{})
	_, p2, p0 := ConnectTrunk(sws[2], sws[0], LinkConfig{})
	sws[2].SetPortBlocked(p2, true)
	sws[0].SetPortBlocked(p0, true)

	got := make([]int, 3)
	for i := range sws {
		n := NewNIC(s, mac(byte(10+i)), 0)
		sws[i].AttachHost(n)
		i := i
		n.Promiscuous = true
		n.SetRecv(func(*Frame) { got[i]++ })
		if i == 0 {
			n.Send(testFrame(mac(10), packet.MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, 100))
		}
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got[1] != 1 || got[2] != 1 {
		t.Fatalf("broadcast deliveries: %v, want exactly one each", got)
	}
}
