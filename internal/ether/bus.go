package ether

import (
	"math/rand"
	"time"

	"virtualwire/internal/metrics"
	"virtualwire/internal/sim"
)

// BusConfig parametrizes a shared segment.
type BusConfig struct {
	// BitsPerSecond is the segment bandwidth (default 100 Mbps).
	BitsPerSecond float64
	// Propagation is the one-way propagation delay (default 500 ns,
	// ~100 m of cable). It is also the carrier-sense collision window:
	// a station that begins transmitting within Propagation of another
	// station's start has not yet sensed the carrier and collides.
	Propagation time.Duration
	// BitErrorRate is the independent per-bit flip probability applied
	// to each delivery (default 0: clean wire).
	BitErrorRate float64
	// Pool, when non-nil, recycles frames on the segment: the transmitted
	// original is returned once its delivery clones are made, and the
	// clones draw from recycled buffers. Nil keeps plain allocation.
	Pool *FramePool
}

func (c *BusConfig) fill() {
	if c.BitsPerSecond <= 0 {
		c.BitsPerSecond = 100e6
	}
	if c.Propagation <= 0 {
		c.Propagation = 500 * time.Nanosecond
	}
}

type activeTx struct {
	nic      *NIC
	frame    *Frame
	start    time.Duration
	end      *sim.Event
	collided bool
	// fire is the pre-bound completion callback, created once per
	// activeTx so recycled transmissions (see SharedBus.free) schedule
	// their end without a fresh closure.
	fire func()
}

// SharedBus is a CSMA/CD shared segment: every attached NIC sees every
// frame, simultaneous transmissions collide, and colliding stations back
// off with binary exponential backoff. With exactly two stations it also
// models one half-duplex switch port segment.
type SharedBus struct {
	cfg     BusConfig
	sched   *sim.Scheduler
	nics    []*NIC
	active  []*activeTx
	free    []*activeTx // finished transmissions, ready for reuse
	waiting []*NIC
	// releaseFn is the pre-bound release callback (see scheduleRelease).
	releaseFn func()
	// idleAt is the earliest instant a deferred station may begin
	// transmitting (end of last activity plus inter-frame gap).
	idleAt time.Duration

	// TotalCollisions counts collision episodes on the segment.
	TotalCollisions uint64
	// DeliveredFrames counts successful frame deliveries to any NIC.
	DeliveredFrames uint64
	// DeliveredBytes counts bytes across those deliveries.
	DeliveredBytes uint64

	// busyTime accumulates the virtual time spent serializing frames
	// that completed successfully, for the utilization gauge.
	busyTime time.Duration

	rng *rand.Rand // optional pinned source (see SetRand)
}

var _ Medium = (*SharedBus)(nil)

// NewSharedBus returns a bus running on sched with the given
// configuration (zero values select defaults).
func NewSharedBus(sched *sim.Scheduler, cfg BusConfig) *SharedBus {
	cfg.fill()
	b := &SharedBus{cfg: cfg, sched: sched}
	b.releaseFn = b.release
	return b
}

// SetRand pins the random source for backoff and bit-error draws. When
// unset, draws come from the scheduler's shared generator (legacy
// behavior). The sharded engine pins per-segment generators so draw
// sequences do not depend on cross-shard event interleaving.
func (b *SharedBus) SetRand(r *rand.Rand) { b.rng = r }

func (b *SharedBus) rand() *rand.Rand {
	if b.rng != nil {
		return b.rng
	}
	return b.sched.Rand()
}

// Attach implements Medium.
func (b *SharedBus) Attach(n *NIC) {
	n.medium = b
	n.pool = b.cfg.Pool
	b.nics = append(b.nics, n)
}

// kick implements Medium: n has at least one queued frame.
func (b *SharedBus) kick(n *NIC) {
	for _, tx := range b.active {
		if tx.nic == n {
			return // already transmitting
		}
	}
	for _, w := range b.waiting {
		if w == n {
			return // already deferring
		}
	}
	now := b.sched.Now()
	if len(b.active) > 0 {
		// A transmission is in progress. If it started within the
		// propagation window, this station has not sensed the carrier
		// yet and barges in, causing a collision. Otherwise it defers.
		first := b.active[0]
		if now-first.start < b.cfg.Propagation {
			b.startTx(n)
			return
		}
		b.waiting = append(b.waiting, n)
		return
	}
	if now < b.idleAt {
		// Inside the inter-frame gap: defer until it elapses.
		b.waiting = append(b.waiting, n)
		b.scheduleRelease()
		return
	}
	b.startTx(n)
}

// scheduleRelease arranges for the next deferring station to start when
// the medium becomes idle. Stations are released round-robin: under
// sustained bidirectional load the medium behaves like an arbitrated
// pipe (as real carrier sense mostly does), while genuine collisions
// still occur when stations begin transmitting within the propagation
// window of each other (see kick).
func (b *SharedBus) scheduleRelease() {
	b.sched.At(b.idleAt, "bus.release", b.releaseFn)
}

// release is scheduleRelease's pre-bound callback (releaseFn): binding
// it once in NewSharedBus keeps the per-frame schedule allocation-free.
func (b *SharedBus) release() {
	if len(b.active) > 0 || b.sched.Now() < b.idleAt {
		return
	}
	for len(b.waiting) > 0 {
		n := b.waiting[0]
		copy(b.waiting, b.waiting[1:])
		b.waiting = b.waiting[:len(b.waiting)-1]
		if n.head() != nil {
			b.startTx(n)
			return
		}
	}
}

func (b *SharedBus) startTx(n *NIC) {
	fr := n.head()
	if fr == nil {
		return
	}
	now := b.sched.Now()
	dur := txDuration(len(fr.Data), b.cfg.BitsPerSecond)
	var tx *activeTx
	if l := len(b.free); l > 0 {
		tx = b.free[l-1]
		b.free[l-1] = nil
		b.free = b.free[:l-1]
		tx.nic, tx.frame, tx.start, tx.collided = n, fr, now, false
	} else {
		tx = &activeTx{nic: n, frame: fr, start: now}
		self := tx
		tx.fire = func() { b.finishTx(self) }
	}
	tx.end = b.sched.At(now+dur, "bus.txEnd", tx.fire)
	b.active = append(b.active, tx)
	if len(b.active) > 1 {
		b.collide()
	}
}

// collide aborts every active transmission, charges each sender a
// backoff, and re-arms the medium after the jam signal.
func (b *SharedBus) collide() {
	b.TotalCollisions++
	now := b.sched.Now()
	jam := bitTime(JamBits, b.cfg.BitsPerSecond)
	ifg := bitTime(IFGBits, b.cfg.BitsPerSecond)
	b.idleAt = now + jam + b.cfg.Propagation + ifg
	txs := b.active
	b.active = b.active[:0]
	for _, tx := range txs {
		tx.end.Cancel()
		n := tx.nic
		b.recycle(tx)
		if !n.collided() {
			// Frame dropped after too many attempts; move on to the
			// next queued frame, if any.
			if n.head() != nil {
				b.deferRetry(n, 0)
			}
			continue
		}
		slots := 1 << n.backoff
		if n.backoff > maxBackoffExp {
			slots = 1 << maxBackoffExp
		}
		wait := time.Duration(b.rand().Intn(slots)) * bitTime(SlotBits, b.cfg.BitsPerSecond)
		b.deferRetry(n, jam+wait)
	}
	b.scheduleRelease()
}

// deferRetry re-kicks a NIC after d, bypassing the duplicate-suppression
// in kick (the NIC is no longer listed as active or waiting).
func (b *SharedBus) deferRetry(n *NIC, d time.Duration) {
	b.sched.After(d, "bus.retry", func() {
		if n.head() != nil {
			b.kick(n)
		}
	})
}

func (b *SharedBus) finishTx(tx *activeTx) {
	// Remove from active.
	for i, a := range b.active {
		if a == tx {
			b.active = append(b.active[:i], b.active[i+1:]...)
			break
		}
	}
	now := b.sched.Now()
	ifg := bitTime(IFGBits, b.cfg.BitsPerSecond)
	b.idleAt = now + ifg
	b.busyTime += now - tx.start
	fr := tx.nic.dequeue()
	tx.nic.txDone(fr)

	// Deliver to every other station after the propagation delay. Each
	// station gets its own copy (drawn from the pool); the transmitted
	// original is dead once the copies exist — per the ownership
	// protocol the sender relinquished it at Send — and is recycled.
	bits := wireBytes(len(fr.Data)) * 8
	for _, dst := range b.nics {
		if dst == tx.nic {
			continue
		}
		cp := b.cfg.Pool.Clone(fr)
		if b.corrupts(bits) {
			cp.Corrupt = true
			b.flipBit(cp)
		}
		dstNIC := dst
		b.sched.After(b.cfg.Propagation, "bus.deliver", func() {
			b.DeliveredFrames++
			b.DeliveredBytes += uint64(len(cp.Data))
			dstNIC.deliver(cp)
		})
	}
	b.cfg.Pool.Put(fr)

	// More traffic from this NIC or deferred stations?
	if tx.nic.head() != nil {
		b.waiting = append(b.waiting, tx.nic)
	}
	b.recycle(tx)
	if len(b.waiting) > 0 {
		b.scheduleRelease()
	}
}

// recycle returns a finished or aborted transmission to the free list.
func (b *SharedBus) recycle(tx *activeTx) {
	tx.nic, tx.frame, tx.end = nil, nil, nil
	b.free = append(b.free, tx)
}

// Reset clears all transient medium state (active transmissions,
// deferring stations, the inter-frame-gap clock) and the segment
// counters. Frames referenced by aborted transmissions still sit at the
// head of their NIC's transmit queue and are recycled by NIC.Reset;
// pending bus events are assumed cancelled (scheduler reset).
func (b *SharedBus) Reset() {
	b.active = nil
	b.waiting = nil
	b.idleAt = 0
	b.TotalCollisions = 0
	b.DeliveredFrames = 0
	b.DeliveredBytes = 0
	b.busyTime = 0
}

// Snapshot implements the uniform metrics hook: segment counters plus a
// utilization gauge (fraction of elapsed virtual time the wire spent
// serializing successful transmissions — collision episodes excluded).
func (b *SharedBus) Snapshot() metrics.Snapshot {
	var sn metrics.Snapshot
	sn.Counter("collisions", b.TotalCollisions)
	sn.Counter("delivered_frames", b.DeliveredFrames)
	sn.Counter("delivered_bytes", b.DeliveredBytes)
	sn.Gauge("stations", float64(len(b.nics)))
	if now := b.sched.Now(); now > 0 {
		sn.Gauge("utilization", float64(b.busyTime)/float64(now))
	} else {
		sn.Gauge("utilization", 0)
	}
	return sn
}

// corrupts decides whether a frame of the given wire length suffers at
// least one bit error on this delivery.
func (b *SharedBus) corrupts(bits int) bool {
	if b.cfg.BitErrorRate <= 0 {
		return false
	}
	// P(at least one flip) = 1 - (1-ber)^bits ≈ bits*ber for the small
	// rates the testbed uses.
	p := float64(bits) * b.cfg.BitErrorRate
	if p > 1 {
		p = 1
	}
	return b.rand().Float64() < p
}

// flipBit flips one random bit past the address fields so that corruption
// is observable in the bytes, not only in the Corrupt flag. Addresses are
// spared so that a corrupt frame still reaches the NIC whose FCS check
// accounts for it (a real NIC would miss a frame whose destination got
// mangled; the Reliable Link Layer recovers either way via timeout).
func (b *SharedBus) flipBit(fr *Frame) {
	if len(fr.Data) <= 12 {
		return
	}
	i := 12 + b.rand().Intn(len(fr.Data)-12)
	bit := byte(1) << uint(b.rand().Intn(8))
	fr.Data[i] ^= bit
}
