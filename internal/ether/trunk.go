package ether

import (
	"math/rand"
	"time"

	"virtualwire/internal/sim"
)

// TrunkChannel is the shard-boundary replacement for a trunk Link: a
// full-duplex inter-switch wire whose two directions are independent
// halves, each owned entirely by the transmitting switch's scheduler.
// Serialization, bit errors and the transmit-side frame lifecycle all
// run on the source shard; the finished copy is deposited into a
// timestamped outbox instead of being scheduled directly onto the
// destination scheduler. The sharded coordinator drains every outbox at
// each window barrier — in fixed trunk order, A→B before B→A, FIFO
// within a half — so delivery scheduling is identical regardless of how
// switches are partitioned across shards. That invariance is what makes
// sharded output byte-identical to serial.
//
// The conservative window guarantee relies on two properties of a half:
// deposits are timestamped txEnd+Propagation, and a transmission takes
// at least txDuration(0)+IFG (wire padding to MinFrame makes that a
// true lower bound for any payload). Lookahead exposes that bound.
type TrunkChannel struct {
	ab, ba *trunkHalf
}

// trunkDeposit is one cross-shard frame waiting at the barrier.
type trunkDeposit struct {
	fr *Frame
	at time.Duration // absolute delivery time (txEnd + propagation)
}

// trunkHalf carries one direction. It implements Medium for the source
// switch's port NIC; the destination NIC is wired in by
// ConnectTrunkChannel once both ports exist.
type trunkHalf struct {
	cfg      LinkConfig
	sched    *sim.Scheduler // source side
	dstSched *sim.Scheduler // destination side
	src      *NIC
	dst      *NIC
	rng      *rand.Rand

	busyUntil time.Duration
	active    bool // a txEnd event is pending
	failed    bool // fault injection: no new transmissions start
	outbox    []trunkDeposit
}

var _ Medium = (*trunkHalf)(nil)

func (h *trunkHalf) Attach(n *NIC) {
	n.medium = h
	n.pool = h.cfg.Pool
	h.src = n
}

func (h *trunkHalf) kick(*NIC) { h.pump() }

func (h *trunkHalf) rand() *rand.Rand {
	if h.rng != nil {
		return h.rng
	}
	return h.sched.Rand()
}

// pump mirrors Link.pump, minus direct delivery: the finished copy goes
// to the outbox with its arrival timestamp.
func (h *trunkHalf) pump() {
	if h.failed {
		// A dead wire starts nothing new; queued frames were dropped by
		// SetFailed and restore re-kicks.
		return
	}
	fr := h.src.head()
	if fr == nil {
		return
	}
	// A pending txEnd always re-pumps when it fires, so any kick that
	// arrives mid-transmission is redundant. The guard must be the
	// pending-event flag, not a clock comparison: an event scheduled
	// before the transmission began (smaller seq) can fire at exactly
	// busyUntil, ahead of the txEnd sharing that timestamp, and a time
	// guard would admit it and double-schedule txEnd.
	if h.active {
		return
	}
	now := h.sched.Now()
	dur := txDuration(len(fr.Data), h.cfg.BitsPerSecond) + bitTime(IFGBits, h.cfg.BitsPerSecond)
	h.active = true
	h.busyUntil = now + dur
	h.sched.At(now+dur, "trunk.txEnd", func() {
		out := h.src.dequeue()
		h.src.txDone(out)
		cp := h.cfg.Pool.Clone(out)
		bits := wireBytes(len(out.Data)) * 8
		if h.cfg.BitErrorRate > 0 {
			p := float64(bits) * h.cfg.BitErrorRate
			if p > 1 {
				p = 1
			}
			if h.rand().Float64() < p {
				cp.Corrupt = true
				if len(cp.Data) > 12 {
					i := 12 + h.rand().Intn(len(cp.Data)-12)
					cp.Data[i] ^= 1 << uint(h.rand().Intn(8))
				}
			}
		}
		h.cfg.Pool.Put(out)
		h.active = false
		h.outbox = append(h.outbox, trunkDeposit{fr: cp, at: h.sched.Now() + h.cfg.Propagation})
		h.pump()
	})
}

// drain schedules every deposited frame onto the destination scheduler.
// Only the coordinator calls this, at a barrier, with all shards parked.
func (h *trunkHalf) drain() {
	for i, d := range h.outbox {
		fr := d.fr
		dst := h.dst
		h.dstSched.At(d.at, "trunk.deliver", func() { dst.deliver(fr) })
		h.outbox[i] = trunkDeposit{}
	}
	h.outbox = h.outbox[:0]
}

// reset clears serializer state and recycles any undrained deposits into
// the source-side pool.
func (h *trunkHalf) reset() {
	h.busyUntil = 0
	h.active = false
	h.failed = false
	for i, d := range h.outbox {
		h.cfg.Pool.Put(d.fr)
		h.outbox[i] = trunkDeposit{}
	}
	h.outbox = h.outbox[:0]
}

// earliest returns the arrival time of the half's earliest in-flight or
// deposited frame, or false when the direction is silent.
func (h *trunkHalf) earliest() (time.Duration, bool) {
	t := time.Duration(0)
	ok := false
	if h.active {
		t, ok = h.busyUntil+h.cfg.Propagation, true
	}
	for _, d := range h.outbox {
		if !ok || d.at < t {
			t, ok = d.at, true
		}
	}
	return t, ok
}

// ConnectTrunkChannel joins two switches with a mailbox trunk and
// returns the channel plus the new port index on each switch. Each
// direction's config may differ in Pool (frames must be cut from the
// transmitting shard's pool) but shares rate/propagation/BER.
func ConnectTrunkChannel(a, b *Switch, acfg, bcfg LinkConfig) (*TrunkChannel, int, int) {
	acfg.fill()
	bcfg.fill()
	if acfg.Pool == nil {
		acfg.Pool = a.cfg.Pool
	}
	if bcfg.Pool == nil {
		bcfg.Pool = b.cfg.Pool
	}
	ab := &trunkHalf{cfg: acfg, sched: a.sched, dstSched: b.sched}
	ba := &trunkHalf{cfg: bcfg, sched: b.sched, dstSched: a.sched}
	aPort := a.addPort(ab, true)
	bPort := b.addPort(ba, true)
	ab.dst = b.ports[bPort].nic
	ba.dst = a.ports[aPort].nic
	return &TrunkChannel{ab: ab, ba: ba}, aPort, bPort
}

// Drain flushes both directions in canonical order (A→B then B→A).
func (t *TrunkChannel) Drain() {
	t.ab.drain()
	t.ba.drain()
}

// EarliestPending returns the earliest cross-trunk arrival still in
// flight in either direction, or false when the trunk is silent.
func (t *TrunkChannel) EarliestPending() (time.Duration, bool) {
	ta, oka := t.ab.earliest()
	tb, okb := t.ba.earliest()
	switch {
	case oka && okb:
		if tb < ta {
			return tb, true
		}
		return ta, true
	case oka:
		return ta, true
	case okb:
		return tb, true
	}
	return 0, false
}

// Lookahead returns the minimum delay between a transmission decision on
// one side and the earliest possible arrival on the other: propagation
// plus the serialization of a minimum-size frame plus the inter-frame
// gap. This is the conservative window bound for the trunk.
func (t *TrunkChannel) Lookahead() time.Duration {
	la := t.ab.lookahead()
	if lb := t.ba.lookahead(); lb < la {
		la = lb
	}
	return la
}

func (h *trunkHalf) lookahead() time.Duration {
	return h.cfg.Propagation + txDuration(0, h.cfg.BitsPerSecond) + bitTime(IFGBits, h.cfg.BitsPerSecond)
}

// PendingDeposits reports queued mailbox frames across both directions
// (tests use it to assert mailboxes drain empty across Reset).
func (t *TrunkChannel) PendingDeposits() int {
	return len(t.ab.outbox) + len(t.ba.outbox)
}

// SetFailed fails or restores the trunk (fault injection), both
// directions at once. Failing drops every queued frame on both source
// NICs — except in-flight heads, whose committed txEnd still deposits;
// the delivery is discarded at the far (failed) switch port — and
// refuses new transmissions. Restoring re-kicks both pumps. Returns the
// number of frames dropped (counted in the port NICs' QueueDrops).
//
// Only the sharded coordinator calls this, at a window barrier with all
// shards parked, so touching both halves' source-side state is safe.
func (t *TrunkChannel) SetFailed(failed bool) int {
	dropped := 0
	for _, h := range []*trunkHalf{t.ab, t.ba} {
		if h.failed == failed {
			continue
		}
		h.failed = failed
		if failed {
			if h.src != nil {
				dropped += h.src.dropQueued(h.active)
			}
		} else {
			h.pump()
		}
	}
	return dropped
}

// Failed reports the trunk's fault state.
func (t *TrunkChannel) Failed() bool { return t.ab.failed || t.ba.failed }

// SetProfile overrides both directions' propagation delay and bit error
// rate in place (per-trunk degradation axis). Zero propagation keeps
// the current value; a negative BER keeps the current rate. Applies
// from the next txEnd; callers re-derive the shard lookahead after a
// propagation change.
func (t *TrunkChannel) SetProfile(propagation time.Duration, ber float64) {
	for _, h := range []*trunkHalf{t.ab, t.ba} {
		if propagation > 0 {
			h.cfg.Propagation = propagation
		}
		if ber >= 0 {
			h.cfg.BitErrorRate = ber
		}
	}
}

// Profile reports the trunk's current propagation delay and BER (the
// A→B direction; both directions always carry the same profile).
func (t *TrunkChannel) Profile() (time.Duration, float64) {
	return t.ab.cfg.Propagation, t.ab.cfg.BitErrorRate
}
