// Package ether simulates the physical Ethernet substrate of the testbed:
// NICs with transmit queues and CSMA/CD behaviour, a shared bus with
// collisions and binary exponential backoff, a store-and-forward switch
// with half-duplex ports and finite output queues, and a full-duplex
// point-to-point link used for ablation experiments.
//
// The paper runs on a real 100 Mbps switched LAN; this package is the
// substitution documented in DESIGN.md. It reproduces the properties the
// evaluation depends on: serialization delay, propagation delay, carrier
// contention (so Reliable Link Layer ACK traffic degrades throughput at
// high offered load, Figure 7), and MAC-layer bit errors (the reason the
// Reliable Link Layer exists at all, Section 3.3).
package ether

import (
	"time"

	"virtualwire/internal/packet"
)

// Frame is a raw Ethernet frame travelling the simulated wire.
type Frame struct {
	// Data is the full frame starting at the destination MAC. The FCS
	// and preamble are accounted for in wire timing but not stored.
	Data []byte
	// Corrupt marks a frame whose FCS check would fail at the receiver:
	// the medium flipped bits in it. NICs drop corrupt frames unless
	// DeliverCorrupt is set (used by tests that exercise the RLL).
	Corrupt bool
	// ID is a monotonically increasing identifier assigned when the
	// frame is first handed to a NIC, used to correlate trace entries.
	ID uint64
}

// Clone returns a deep copy of the frame. Media deliver clones so that a
// receiver (for example a MODIFY fault) can mutate its copy freely.
func (f *Frame) Clone() *Frame {
	d := make([]byte, len(f.Data))
	copy(d, f.Data)
	return &Frame{Data: d, Corrupt: f.Corrupt, ID: f.ID}
}

// Dst returns the destination MAC.
func (f *Frame) Dst() packet.MAC {
	var m packet.MAC
	if len(f.Data) >= 6 {
		copy(m[:], f.Data[0:6])
	}
	return m
}

// Src returns the source MAC.
func (f *Frame) Src() packet.MAC {
	var m packet.MAC
	if len(f.Data) >= 12 {
		copy(m[:], f.Data[6:12])
	}
	return m
}

// EtherType returns the 16-bit type field at offset 12.
func (f *Frame) EtherType() uint16 {
	if len(f.Data) < packet.EthHeaderLen {
		return 0
	}
	return uint16(f.Data[12])<<8 | uint16(f.Data[13])
}

// Ethernet wire-level constants shared by all media.
const (
	// MinFrame is the minimum Ethernet frame size (without FCS); shorter
	// frames are padded on the wire for timing purposes.
	MinFrame = 60
	// WireOverhead is the per-frame preamble (8) plus FCS (4) in bytes.
	WireOverhead = 12
	// IFGBits is the inter-frame gap in bit times.
	IFGBits = 96
	// SlotBits is the collision slot time in bit times (512 as in
	// classic Ethernet); backoff is measured in slots.
	SlotBits = 512
	// JamBits is the length of the jam signal asserted on collision.
	JamBits = 48
	// MaxAttempts is the transmit attempt limit before a frame is
	// dropped (16, as in IEEE 802.3).
	MaxAttempts = 16
	// maxBackoffExp caps the binary exponential backoff exponent.
	maxBackoffExp = 10
)

// wireBytes returns the number of bytes a frame occupies on the wire,
// including padding and overhead.
func wireBytes(n int) int {
	if n < MinFrame {
		n = MinFrame
	}
	return n + WireOverhead
}

// bitTime converts a number of bit times at the given bandwidth to a
// duration.
func bitTime(bits int, bps float64) time.Duration {
	return time.Duration(float64(bits) / bps * float64(time.Second))
}

// txDuration is the serialization delay of a frame at the given bandwidth.
func txDuration(frameLen int, bps float64) time.Duration {
	return bitTime(wireBytes(frameLen)*8, bps)
}
