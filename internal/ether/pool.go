package ether

import (
	"virtualwire/internal/metrics"
)

// FramePool recycles Frame structs together with their Data buffers, so
// the per-hop clone-on-delivery the media perform does not hit the
// garbage collector on every frame. One pool serves one testbed: all
// media of a testbed share it, and — like the Scheduler — it is
// single-goroutine by construction, so it needs no locking. Independent
// testbeds (parallel sweep points) each own a private pool.
//
// Ownership protocol (see docs/PERFORMANCE.md for the full statement):
//
//   - A frame passed to NIC.Send is owned by the medium. The sender must
//     not retain it (the RLL clones before transmitting for exactly this
//     reason). The medium recycles it once it has been serialized and
//     cloned for delivery.
//   - A frame handed to a NIC's receive upcall is owned by the receiver
//     forever: protocol stacks keep sub-slices of Data (IP payloads, TCP
//     segments), so delivered frames are never recycled.
//   - Frames the NIC drops before the upcall (destination filter, FCS
//     check, transmit-queue overflow, collision expiry) are recycled.
//
// The zero value of the containing media's pool pointer (nil) disables
// recycling entirely: Get falls back to plain allocation and Put is a
// no-op, which is what bare media constructed outside a Testbed get.
type FramePool struct {
	free []*Frame

	// maxFree bounds the free list so a transient burst cannot pin an
	// arbitrary amount of buffer memory.
	maxFree int

	// Gets counts frames handed out (pool hits and misses).
	Gets uint64
	// Hits counts Gets served from the free list.
	Hits uint64
	// Puts counts frames returned.
	Puts uint64
}

// maxPooledCap bounds the Data capacity of buffers kept in the pool;
// anything larger (never produced by the simulated Ethernet, which is
// MTU-bounded) is left to the garbage collector.
const maxPooledCap = 4096

// NewFramePool returns an empty pool.
func NewFramePool() *FramePool {
	return &FramePool{maxFree: 4096}
}

// Get returns a frame with Data of length n (zeroed ID and Corrupt; Data
// contents are unspecified — callers overwrite it). Safe on a nil pool.
func (p *FramePool) Get(n int) *Frame {
	if p == nil {
		return &Frame{Data: make([]byte, n)}
	}
	p.Gets++
	if m := len(p.free); m > 0 {
		fr := p.free[m-1]
		p.free[m-1] = nil
		p.free = p.free[:m-1]
		if cap(fr.Data) >= n {
			p.Hits++
			fr.Data = fr.Data[:n]
			return fr
		}
		// Undersized buffer: keep the struct, replace the backing array.
		fr.Data = make([]byte, n)
		return fr
	}
	return &Frame{Data: make([]byte, n)}
}

// Clone returns a copy of fr backed by a recycled buffer when one is
// available — the allocation-free replacement for Frame.Clone on the
// media's delivery paths. Safe on a nil pool (plain deep copy).
func (p *FramePool) Clone(fr *Frame) *Frame {
	cp := p.Get(len(fr.Data))
	copy(cp.Data, fr.Data)
	cp.Corrupt = fr.Corrupt
	cp.ID = fr.ID
	return cp
}

// Put returns a dead frame to the pool. The caller asserts nothing
// retains fr or any slice of fr.Data. Safe on a nil pool and on a nil
// frame (both no-ops).
func (p *FramePool) Put(fr *Frame) {
	if p == nil || fr == nil {
		return
	}
	if cap(fr.Data) > maxPooledCap || len(p.free) >= p.maxFree {
		return
	}
	p.Puts++
	fr.Corrupt = false
	fr.ID = 0
	fr.Data = fr.Data[:0]
	p.free = append(p.free, fr)
}

// Reset zeroes the pool's counters for a fresh run while keeping the
// free list warm: a reset pool serves the next run's frames without
// allocating, which is the whole point of testbed reuse. (The "hits"
// counter therefore diverges between a fresh and a reused testbed; the
// run-report totals exclude it for exactly that reason.) Safe on a nil
// pool.
func (p *FramePool) Reset() {
	if p == nil {
		return
	}
	p.Gets = 0
	p.Hits = 0
	p.Puts = 0
}

// Snapshot implements the uniform metrics hook: recycling effectiveness
// for the observability layer (surfaced as node="testbed", layer="pool").
func (p *FramePool) Snapshot() metrics.Snapshot {
	var sn metrics.Snapshot
	sn.Counter("gets", p.Gets)
	sn.Counter("hits", p.Hits)
	sn.Counter("puts", p.Puts)
	sn.Gauge("free_frames", float64(len(p.free)))
	return sn
}
