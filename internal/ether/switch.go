package ether

import (
	"fmt"
	"math/rand"
	"time"

	"virtualwire/internal/metrics"
	"virtualwire/internal/packet"
	"virtualwire/internal/sim"
)

// SwitchConfig parametrizes a store-and-forward switch.
type SwitchConfig struct {
	// BitsPerSecond is the per-port bandwidth (default 100 Mbps).
	BitsPerSecond float64
	// Propagation is the per-port cable propagation delay.
	Propagation time.Duration
	// Latency is the internal store-and-forward processing delay per
	// frame (default 5 µs).
	Latency time.Duration
	// QueueFrames bounds each output port's queue (default 64).
	QueueFrames int
	// FullDuplex selects full-duplex port links instead of the default
	// half-duplex segments. The paper's Figure 7 throughput knee comes
	// from RLL ACKs contending on half-duplex segments; full duplex is
	// provided for the ablation benchmark.
	FullDuplex bool
	// BitErrorRate is applied per port segment.
	BitErrorRate float64
	// Pool, when non-nil, recycles frames across the switch and all its
	// port segments (see BusConfig.Pool).
	Pool *FramePool
	// ID distinguishes switches in a multi-switch fabric; it is baked
	// into port MAC addresses so every port NIC in a 1000-node testbed
	// stays unique. Single-switch testbeds can leave it zero.
	ID int
}

func (c *SwitchConfig) fill() {
	if c.BitsPerSecond <= 0 {
		c.BitsPerSecond = 100e6
	}
	if c.Propagation <= 0 {
		c.Propagation = 500 * time.Nanosecond
	}
	if c.Latency <= 0 {
		c.Latency = 5 * time.Microsecond
	}
	if c.QueueFrames <= 0 {
		c.QueueFrames = 64
	}
}

type switchPort struct {
	segment Medium
	nic     *NIC // the switch's own NIC on this segment
	// trunk marks an inter-switch port (ConnectTrunk).
	trunk bool
	// blocked removes the port from forwarding (spanning-tree style):
	// ingress frames are discarded and floods skip it. Blocking is
	// topology state, not run state — Reset preserves it.
	blocked bool
	// failed marks a dead port (trunk failure injection): like blocked,
	// but fault state rather than spanning-tree state — Reset clears it.
	failed bool
}

// Switch is a learning, store-and-forward Ethernet switch. Each attached
// host gets a dedicated segment (half-duplex by default) between its NIC
// and an internal switch port NIC.
type Switch struct {
	cfg    SwitchConfig
	sched  *sim.Scheduler
	ports  []*switchPort
	table  map[packet.MAC]int
	nextID uint64
	// down marks a crashed switch (fault injection): every ingress frame
	// is discarded and the forwarding pipeline drops at fire time. Like
	// port failure it is run state — Reset clears it.
	down bool

	// The four outcome counters below partition IngressFrames exactly:
	// once the pipeline drains, IngressFrames == ForwardedFrames +
	// FloodedFrames + BlockedFrames + DroppedFrames (each ingress frame
	// lands in exactly one bucket).

	// IngressFrames counts every frame received on any port.
	IngressFrames uint64
	// FloodedFrames counts ingress frames flooded because the
	// destination was unknown (once per frame, however many copies).
	FloodedFrames uint64
	// ForwardedFrames counts ingress frames unicast out a known port.
	ForwardedFrames uint64
	// BlockedFrames counts frames discarded at ingress: the ingress
	// port was blocked or failed, or the switch was down.
	BlockedFrames uint64
	// DroppedFrames counts frames discarded in the forwarding path at
	// fire time: egress blocked/failed/self, no eligible flood port, or
	// the switch went down while the frame sat in the pipeline.
	DroppedFrames uint64
}

// NewSwitch returns an empty switch; attach hosts with AttachHost.
func NewSwitch(sched *sim.Scheduler, cfg SwitchConfig) *Switch {
	cfg.fill()
	return &Switch{cfg: cfg, sched: sched, table: make(map[packet.MAC]int)}
}

// AttachHost connects a host NIC to a new switch port and returns the
// port index.
func (sw *Switch) AttachHost(host *NIC) int {
	var seg Medium
	if sw.cfg.FullDuplex {
		seg = NewLink(sw.sched, LinkConfig{
			BitsPerSecond: sw.cfg.BitsPerSecond,
			Propagation:   sw.cfg.Propagation,
			BitErrorRate:  sw.cfg.BitErrorRate,
			Pool:          sw.cfg.Pool,
		})
	} else {
		seg = NewSharedBus(sw.sched, BusConfig{
			BitsPerSecond: sw.cfg.BitsPerSecond,
			Propagation:   sw.cfg.Propagation,
			BitErrorRate:  sw.cfg.BitErrorRate,
			Pool:          sw.cfg.Pool,
		})
	}
	seg.Attach(host)
	return sw.addPort(seg, false)
}

// addPort creates the switch-side NIC on a segment and registers it as a
// port.
func (sw *Switch) addPort(seg Medium, trunk bool) int {
	idx := len(sw.ports)
	sw.nextID++
	// 0x02:0x53:0x57 (locally administered "SW") + switch ID + 16-bit
	// port counter: unique across a 1000-node multi-switch fabric. Port
	// NICs never source frames, but unique identities keep debugging and
	// pcap traces honest.
	portMAC := packet.MAC{0x02, 0x53, 0x57, byte(sw.cfg.ID), byte(sw.nextID >> 8), byte(sw.nextID)}
	pn := NewNIC(sw.sched, portMAC, sw.cfg.QueueFrames)
	pn.Promiscuous = true
	seg.Attach(pn)
	port := &switchPort{segment: seg, nic: pn, trunk: trunk}
	pn.SetRecv(func(fr *Frame) { sw.ingress(idx, fr) })
	sw.ports = append(sw.ports, port)
	return idx
}

// ConnectTrunk joins two switches with a dedicated full-duplex link and
// returns the link plus the new port index on each. MAC learning extends
// across trunks naturally: a frame arriving on a trunk port teaches the
// switch that its source lives behind that trunk. Fabrics with redundant
// trunks (rings, fat-trees) must block the non-tree links on both ends —
// see SetPortBlocked — or floods will storm.
func ConnectTrunk(a, b *Switch, cfg LinkConfig) (link *Link, aPort, bPort int) {
	if cfg.Pool == nil {
		cfg.Pool = a.cfg.Pool
	}
	link = NewLink(a.sched, cfg)
	aPort = a.addPort(link, true)
	bPort = b.addPort(link, true)
	return link, aPort, bPort
}

// SetPortBlocked marks a port blocked (spanning-tree style): ingress
// frames are discarded and forwarding skips it. Blocking is part of the
// wiring and survives Reset.
func (sw *Switch) SetPortBlocked(idx int, blocked bool) {
	sw.ports[idx].blocked = blocked
}

// PortBlocked reports a port's spanning-tree block state.
func (sw *Switch) PortBlocked(idx int) bool { return sw.ports[idx].blocked }

// SetPortFailed marks a port dead (trunk failure injection). A failed
// port discards ingress frames like a blocked one and is skipped by
// forwarding; unlike blocking it is fault state and clears on Reset.
func (sw *Switch) SetPortFailed(idx int, failed bool) {
	sw.ports[idx].failed = failed
}

// PortFailed reports a port's failure state.
func (sw *Switch) PortFailed(idx int) bool { return sw.ports[idx].failed }

// SetDown crashes or restarts the whole switch. A down switch discards
// every ingress frame and drops anything still in its forwarding
// pipeline at fire time; frames already committed to egress queues
// drain (they left the forwarding plane before the crash).
func (sw *Switch) SetDown(down bool) {
	sw.down = down
	if down {
		sw.FlushTable()
	}
}

// Down reports whether the switch is crashed.
func (sw *Switch) Down() bool { return sw.down }

// FlushTable clears the MAC learning table (spanning-tree topology
// change): stale entries pointing at a now-blocked port would blackhole
// unicast traffic until relearned, so reconvergence flushes and lets
// flooding relearn over the new tree.
func (sw *Switch) FlushTable() {
	for k := range sw.table {
		delete(sw.table, k)
	}
}

// ingress handles a frame received on port idx after full reassembly.
// The ingress frame is owned by the switch (the segment delivered this
// copy to the port NIC and nothing else holds it): a unicast forward
// hands it onward without a copy, a flood clones per output port, and
// whatever is left is recycled.
func (sw *Switch) ingress(idx int, fr *Frame) {
	sw.IngressFrames++
	if sw.down || sw.ports[idx].blocked || sw.ports[idx].failed {
		// Spanning-tree / fault discard: nothing is learned or forwarded
		// from a blocked, failed or crashed port.
		sw.BlockedFrames++
		sw.cfg.Pool.Put(fr)
		return
	}
	src := fr.Src()
	sw.table[src] = idx
	dst := fr.Dst()
	sw.sched.After(sw.cfg.Latency, "switch.forward", func() {
		// The forwarding decision is taken at fire time, not ingress
		// time: during the store-and-forward latency the switch can
		// crash, a trunk can fail, and a reconvergence can flush the
		// table or re-block the learned out-port. A decision snapshotted
		// at ingress would forward into a dead port.
		if sw.down {
			sw.DroppedFrames++
			sw.cfg.Pool.Put(fr)
			return
		}
		if out, known := sw.table[dst]; known && !dst.IsBroadcast() {
			p := sw.ports[out]
			if out == idx || p.blocked || p.failed {
				sw.DroppedFrames++
				sw.cfg.Pool.Put(fr)
				return
			}
			sw.ForwardedFrames++
			p.nic.Send(fr)
			return
		}
		sent := false
		for i, p := range sw.ports {
			if i == idx || p.blocked || p.failed {
				continue
			}
			sent = true
			p.nic.Send(sw.cfg.Pool.Clone(fr))
		}
		if sent {
			sw.FloodedFrames++
		} else {
			// Every egress was blocked/failed: the frame went nowhere
			// and must still be accounted for.
			sw.DroppedFrames++
		}
		sw.cfg.Pool.Put(fr)
	})
}

// Reset clears the learning table, forwarding counters, fault state
// (down, failed ports) and every port's NIC and segment state. Port
// wiring (NICs, segments, MAC assignments) and spanning-tree blocking
// persist, so a reset switch forwards for the same topology without
// reconstruction. Callers reset the scheduler first, which cancels any
// in-flight forward/deliver events.
func (sw *Switch) Reset() {
	for k := range sw.table {
		delete(sw.table, k)
	}
	sw.IngressFrames = 0
	sw.FloodedFrames = 0
	sw.ForwardedFrames = 0
	sw.BlockedFrames = 0
	sw.DroppedFrames = 0
	sw.down = false
	for _, p := range sw.ports {
		p.failed = false
		p.nic.Reset()
		switch seg := p.segment.(type) {
		case *SharedBus:
			seg.Reset()
		case *Link:
			seg.Reset()
		case *trunkHalf:
			seg.reset()
		}
	}
}

// NumPorts reports how many ports the switch has.
func (sw *Switch) NumPorts() int { return len(sw.ports) }

// SetPortRand pins the random source used by port idx's segment. The
// sharded engine derives one generator per segment from (seed, segment
// construction order) so random draws do not depend on event
// interleaving across shards; a segment shared by two ports (a Link)
// takes the last assignment. Buses and links fall back to their
// scheduler's generator when unset, which is the legacy behavior.
func (sw *Switch) SetPortRand(idx int, r *rand.Rand) {
	switch seg := sw.ports[idx].segment.(type) {
	case *SharedBus:
		seg.SetRand(r)
	case *Link:
		seg.SetRand(r)
	case *trunkHalf:
		seg.rng = r
	}
}

// PortStats returns the internal NIC stats for a port (for tests and
// experiments that inspect queue drops).
func (sw *Switch) PortStats(idx int) (Stats, error) {
	if idx < 0 || idx >= len(sw.ports) {
		return Stats{}, fmt.Errorf("switch: no port %d", idx)
	}
	return sw.ports[idx].nic.Stats, nil
}

// Snapshot implements the uniform metrics hook: forwarding counters,
// port-aggregate drops, and a downlink utilization gauge (fraction of the
// aggregate switch→host capacity spent serializing frames so far).
func (sw *Switch) Snapshot() metrics.Snapshot {
	var sn metrics.Snapshot
	sn.Counter("ingress_frames", sw.IngressFrames)
	sn.Counter("forwarded_frames", sw.ForwardedFrames)
	sn.Counter("flooded_frames", sw.FloodedFrames)
	sn.Counter("dropped_frames", sw.DroppedFrames)
	var drops, txBytes uint64
	var queued int
	for _, p := range sw.ports {
		drops += p.nic.Stats.QueueDrops
		txBytes += p.nic.Stats.TxBytes
		queued += len(p.nic.txq)
	}
	sn.Counter("port_queue_drops", drops)
	sn.Gauge("port_queued_frames", float64(queued))
	sn.Gauge("ports", float64(len(sw.ports)))
	var trunks, blocked, failed int
	for _, p := range sw.ports {
		if p.trunk {
			trunks++
		}
		if p.blocked {
			blocked++
		}
		if p.failed {
			failed++
		}
	}
	if trunks > 0 || blocked > 0 {
		sn.Counter("blocked_frames", sw.BlockedFrames)
		sn.Gauge("trunk_ports", float64(trunks))
		sn.Gauge("blocked_ports", float64(blocked))
		sn.Gauge("failed_ports", float64(failed))
	}
	now := sw.sched.Now().Seconds()
	if now > 0 && len(sw.ports) > 0 {
		busy := float64(txBytes*8) / sw.cfg.BitsPerSecond
		sn.Gauge("utilization", busy/(float64(len(sw.ports))*now))
	} else {
		sn.Gauge("utilization", 0)
	}
	return sn
}

// LinkConfig parametrizes a full-duplex point-to-point link.
type LinkConfig struct {
	BitsPerSecond float64
	Propagation   time.Duration
	BitErrorRate  float64
	// Pool, when non-nil, recycles frames on the link (see BusConfig.Pool).
	Pool *FramePool
}

func (c *LinkConfig) fill() {
	if c.BitsPerSecond <= 0 {
		c.BitsPerSecond = 100e6
	}
	if c.Propagation <= 0 {
		c.Propagation = 500 * time.Nanosecond
	}
}

// Link is a full-duplex point-to-point medium between exactly two NICs.
// Each direction serializes independently; there are no collisions.
type Link struct {
	cfg    LinkConfig
	sched  *sim.Scheduler
	ends   []*NIC
	busy   [2]time.Duration // per-direction: when the current tx ends
	active [2]bool          // per-direction: a txEnd event is pending
	rng    *rand.Rand       // optional pinned source (see SetRand)
	failed bool             // fault injection: no new transmissions start
}

var _ Medium = (*Link)(nil)

// NewLink returns an empty link; attach exactly two NICs.
func NewLink(sched *sim.Scheduler, cfg LinkConfig) *Link {
	cfg.fill()
	return &Link{cfg: cfg, sched: sched}
}

// Attach implements Medium.
func (l *Link) Attach(n *NIC) {
	if len(l.ends) >= 2 {
		// A link has exactly two ends; extra attachments are a
		// programming error that would silently eat traffic, so make
		// it loud in tests via panic-free accounting: drop attach.
		return
	}
	n.medium = l
	n.pool = l.cfg.Pool
	l.ends = append(l.ends, n)
}

// kick implements Medium.
func (l *Link) kick(n *NIC) {
	dir := l.dirOf(n)
	if dir < 0 || len(l.ends) < 2 {
		return
	}
	l.pump(dir)
}

// Reset clears the per-direction serializer state. The attached NICs
// are reset separately by their owners; pending tx/deliver events are
// assumed cancelled (scheduler reset).
func (l *Link) Reset() {
	l.busy = [2]time.Duration{}
	l.active = [2]bool{}
	l.failed = false
}

// SetFailed fails or restores the link (trunk fault injection). Failing
// drops every queued frame on both ends — except an in-flight head,
// whose txEnd is already committed; its delivery still arrives and is
// discarded at the far (failed) port — and refuses new transmissions.
// Restoring re-kicks both directions. Returns the number of frames
// dropped (counted in the owning NICs' QueueDrops).
func (l *Link) SetFailed(failed bool) int {
	if l.failed == failed {
		return 0
	}
	l.failed = failed
	dropped := 0
	if failed {
		for dir, n := range l.ends {
			dropped += n.dropQueued(l.active[dir])
		}
		return dropped
	}
	for dir := range l.ends {
		l.pump(dir)
	}
	return 0
}

// Failed reports the link's fault state.
func (l *Link) Failed() bool { return l.failed }

// SetProfile overrides the link's propagation delay and bit error rate
// in place (per-trunk degradation axis). Zero propagation keeps the
// current value; a negative BER keeps the current rate, so BER can be
// restored to a clean 0. The new profile applies from the next
// transmission's end (propagation and BER are read at txEnd).
func (l *Link) SetProfile(propagation time.Duration, ber float64) {
	if propagation > 0 {
		l.cfg.Propagation = propagation
	}
	if ber >= 0 {
		l.cfg.BitErrorRate = ber
	}
}

// Profile reports the link's current propagation delay and BER.
func (l *Link) Profile() (time.Duration, float64) {
	return l.cfg.Propagation, l.cfg.BitErrorRate
}

// SetRand pins the bit-error random source. When unset, draws come from
// the scheduler's shared generator (legacy behavior). The sharded
// engine pins per-segment generators so draw sequences are independent
// of cross-shard event interleaving.
func (l *Link) SetRand(r *rand.Rand) { l.rng = r }

func (l *Link) rand() *rand.Rand {
	if l.rng != nil {
		return l.rng
	}
	return l.sched.Rand()
}

func (l *Link) dirOf(n *NIC) int {
	for i, e := range l.ends {
		if e == n {
			return i
		}
	}
	return -1
}

// pump transmits queued frames in the given direction, one at a time.
func (l *Link) pump(dir int) {
	if l.failed {
		// A dead wire starts nothing new; queued frames were dropped by
		// SetFailed and restore re-kicks.
		return
	}
	src := l.ends[dir]
	fr := src.head()
	if fr == nil {
		return
	}
	// Guard on the pending-txEnd flag, not the clock: an event with a
	// smaller sequence number can fire at exactly busy[dir] ahead of
	// the txEnd sharing that timestamp, and a time comparison would
	// admit its kick and double-schedule txEnd (double-dequeuing the
	// in-flight frame). The txEnd re-pumps, so returning is lossless.
	if l.active[dir] {
		return
	}
	now := l.sched.Now()
	dur := txDuration(len(fr.Data), l.cfg.BitsPerSecond) + bitTime(IFGBits, l.cfg.BitsPerSecond)
	l.active[dir] = true
	l.busy[dir] = now + dur
	l.sched.At(now+dur, "link.txEnd", func() {
		out := src.dequeue()
		src.txDone(out)
		dst := l.ends[1-dir]
		cp := l.cfg.Pool.Clone(out)
		bits := wireBytes(len(out.Data)) * 8
		if l.cfg.BitErrorRate > 0 {
			p := float64(bits) * l.cfg.BitErrorRate
			if p > 1 {
				p = 1
			}
			if l.rand().Float64() < p {
				cp.Corrupt = true
				if len(cp.Data) > 12 {
					i := 12 + l.rand().Intn(len(cp.Data)-12)
					cp.Data[i] ^= 1 << uint(l.rand().Intn(8))
				}
			}
		}
		// The delivery copy is on its way; the transmitted original is
		// dead and goes back to the pool.
		l.cfg.Pool.Put(out)
		l.active[dir] = false
		l.sched.After(l.cfg.Propagation, "link.deliver", func() { dst.deliver(cp) })
		l.pump(dir)
	})
}
