package metrics

import "time"

// DefaultRingCapacity bounds the sampled points kept when the caller does
// not choose a capacity. At the facade's default 50 ms interval this
// covers well over three virtual minutes.
const DefaultRingCapacity = 4096

// Point is one sampled instant of the whole registry.
type Point struct {
	// At is the virtual time of the sample, in nanoseconds since
	// simulation start.
	At time.Duration `json:"at_ns"`
	// Samples are the gathered readings, sorted by (node, layer, name).
	Samples []Sample `json:"samples"`
}

// Sampler periodically gathers a Registry into a bounded ring of
// time-series points. It is driven entirely by virtual time: the caller
// supplies the clock and a scheduling primitive (normally closures over
// the sim.Scheduler), so the sampler itself stays free of simulation
// dependencies and is trivially testable.
type Sampler struct {
	reg      *Registry
	interval time.Duration
	now      func() time.Duration
	schedule func(d time.Duration, fn func())

	ring    []Point
	next    int // write cursor
	n       int // points stored (<= cap(ring))
	running bool
}

// NewSampler builds a sampler that records reg every interval. capacity
// bounds the ring (<=0 selects DefaultRingCapacity); when full, the
// oldest point is overwritten. now reads the virtual clock; schedule
// arranges a callback after a virtual delay.
func NewSampler(reg *Registry, interval time.Duration, capacity int,
	now func() time.Duration, schedule func(d time.Duration, fn func())) *Sampler {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	return &Sampler{
		reg:      reg,
		interval: interval,
		now:      now,
		schedule: schedule,
		ring:     make([]Point, capacity),
	}
}

// Interval reports the sampling period.
func (s *Sampler) Interval() time.Duration { return s.interval }

// Start arms the periodic sampling; the first point lands one interval
// from now. Starting a running sampler is a no-op.
func (s *Sampler) Start() {
	if s.running {
		return
	}
	s.running = true
	s.arm()
}

// Stop halts sampling after the currently armed tick is skipped.
func (s *Sampler) Stop() { s.running = false }

// Reset discards all stored points and stops the sampler; call Start to
// resume recording (after a scheduler reset has cancelled the
// previously armed tick).
func (s *Sampler) Reset() {
	for i := range s.ring {
		s.ring[i] = Point{}
	}
	s.next = 0
	s.n = 0
	s.running = false
}

func (s *Sampler) arm() {
	s.schedule(s.interval, func() {
		if !s.running {
			return
		}
		s.Record()
		s.arm()
	})
}

// Record takes one sample immediately (also used for a final sample at
// run end, outside the periodic cadence).
func (s *Sampler) Record() {
	s.ring[s.next] = Point{At: s.now(), Samples: s.reg.Gather()}
	s.next = (s.next + 1) % len(s.ring)
	if s.n < len(s.ring) {
		s.n++
	}
}

// Len reports how many points are stored.
func (s *Sampler) Len() int { return s.n }

// Points returns the stored points oldest-first (a copy; the ring keeps
// recording).
func (s *Sampler) Points() []Point {
	out := make([]Point, 0, s.n)
	start := s.next - s.n
	if start < 0 {
		start += len(s.ring)
	}
	for i := 0; i < s.n; i++ {
		out = append(out, s.ring[(start+i)%len(s.ring)])
	}
	return out
}
