// Package metrics is the unified observability layer for the simulated
// testbed: a lightweight registry of typed instruments (counters, gauges,
// histograms) keyed by (node, layer, name), a virtual-time sampler that
// records periodic snapshots into a ring of time-series points, and
// exporters to JSON, CSV and Prometheus text format.
//
// The package deliberately depends only on the standard library so that
// every other internal package — including the simulation core itself —
// can implement the uniform hook
//
//	Snapshot() metrics.Snapshot
//
// without an import cycle. Layers that keep their own cumulative Stats
// structs expose them through that hook as pull sources; code that wants
// push-style instruments (for example a workload observing RTT samples
// into a histogram) creates them directly on the Registry.
//
// Everything here runs inside the single-goroutine simulation, so the
// registry is intentionally lock-free: determinism comes from the event
// scheduler, and Gather sorts by key so exports are byte-stable across
// registration orders.
package metrics

import (
	"fmt"
	"sort"
)

// Kind is the instrument type.
type Kind uint8

// Instrument kinds.
const (
	// KindCounter is a monotonically non-decreasing cumulative count.
	KindCounter Kind = iota + 1
	// KindGauge is an instantaneous value that may move both ways.
	KindGauge
	// KindHistogram is a bucketed distribution of observations.
	KindHistogram
)

// String names the kind for exports.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// MarshalJSON encodes the kind as its lowercase name.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// Key identifies one instrument: which host, which protocol layer, which
// quantity. Testbed-global instruments (the scheduler, the medium) use a
// sentinel node name such as "testbed".
type Key struct {
	Node  string
	Layer string
	Name  string
}

func (k Key) less(o Key) bool {
	if k.Node != o.Node {
		return k.Node < o.Node
	}
	if k.Layer != o.Layer {
		return k.Layer < o.Layer
	}
	return k.Name < o.Name
}

// Counter is a cumulative monotone count.
type Counter struct{ v float64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add increases the counter; negative deltas are ignored (counters are
// monotone by contract).
func (c *Counter) Add(d float64) {
	if d > 0 {
		c.v += d
	}
}

// Value reads the current count.
func (c *Counter) Value() float64 { return c.v }

// Gauge is an instantaneous value.
type Gauge struct{ v float64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v = v }

// Add moves the value by d (either direction).
func (g *Gauge) Add(d float64) { g.v += d }

// Value reads the current value.
func (g *Gauge) Value() float64 { return g.v }

// Bucket is one cumulative histogram bucket: the count of observations
// <= Le.
type Bucket struct {
	Le    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// Histogram is a fixed-bucket distribution. Bounds are upper edges in
// ascending order; observations beyond the last bound land in the
// implicit +Inf bucket (reported via Count).
type Histogram struct {
	bounds []float64
	counts []uint64 // len(bounds)+1; last is the +Inf overflow
	sum    float64
	n      uint64
}

// NewHistogram builds a standalone histogram (the Registry constructor is
// the usual entry point).
func NewHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]uint64, len(bs)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.n++
}

// Count reports the total number of observations.
func (h *Histogram) Count() uint64 { return h.n }

// Sum reports the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Buckets returns the cumulative bucket counts (excluding +Inf, which is
// Count).
func (h *Histogram) Buckets() []Bucket {
	out := make([]Bucket, len(h.bounds))
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i]
		out[i] = Bucket{Le: b, Count: cum}
	}
	return out
}

// SnapshotValue is one named reading inside a Snapshot.
type SnapshotValue struct {
	Name  string
	Kind  Kind
	Value float64
}

// Snapshot is one layer's instrument readings at a point in virtual
// time — the uniform currency every layer's Snapshot() hook returns.
// Build one with the Counter and Gauge helpers; order is preserved.
type Snapshot struct {
	Values []SnapshotValue
}

// Counter appends a cumulative count reading.
func (s *Snapshot) Counter(name string, v uint64) {
	s.Values = append(s.Values, SnapshotValue{Name: name, Kind: KindCounter, Value: float64(v)})
}

// Gauge appends an instantaneous reading.
func (s *Snapshot) Gauge(name string, v float64) {
	s.Values = append(s.Values, SnapshotValue{Name: name, Kind: KindGauge, Value: v})
}

// Get looks a reading up by name.
func (s Snapshot) Get(name string) (float64, bool) {
	for _, v := range s.Values {
		if v.Name == name {
			return v.Value, true
		}
	}
	return 0, false
}

// Sample is one gathered reading, ready for export. Counters and gauges
// carry Value; histograms carry Count, Sum and Buckets instead.
type Sample struct {
	Node    string   `json:"node"`
	Layer   string   `json:"layer"`
	Name    string   `json:"name"`
	Kind    Kind     `json:"kind"`
	Value   float64  `json:"value"`
	Count   uint64   `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

type instrument struct {
	kind Kind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

type source struct {
	node, layer string
	fn          func() Snapshot
}

// Registry holds every instrument and pull source of one testbed.
// Construct with NewRegistry; the zero value is not usable.
type Registry struct {
	instruments map[Key]*instrument
	sources     []source
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{instruments: make(map[Key]*instrument)}
}

// Counter returns the counter for key, creating it on first use. It
// panics if the key is already registered with a different kind — that is
// a programming error, not a runtime condition.
func (r *Registry) Counter(node, layer, name string) *Counter {
	in := r.get(Key{node, layer, name}, KindCounter)
	if in.c == nil {
		in.c = &Counter{}
	}
	return in.c
}

// Gauge returns the gauge for key, creating it on first use.
func (r *Registry) Gauge(node, layer, name string) *Gauge {
	in := r.get(Key{node, layer, name}, KindGauge)
	if in.g == nil {
		in.g = &Gauge{}
	}
	return in.g
}

// Histogram returns the histogram for key, creating it with the given
// bucket upper bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(node, layer, name string, bounds []float64) *Histogram {
	in := r.get(Key{node, layer, name}, KindHistogram)
	if in.h == nil {
		in.h = NewHistogram(bounds)
	}
	return in.h
}

func (r *Registry) get(k Key, kind Kind) *instrument {
	in, ok := r.instruments[k]
	if !ok {
		in = &instrument{kind: kind}
		r.instruments[k] = in
		return in
	}
	if in.kind != kind {
		panic(fmt.Sprintf("metrics: %v/%v/%v registered as %v, requested as %v",
			k.Node, k.Layer, k.Name, in.kind, kind))
	}
	return in
}

// Reset zeroes every direct instrument (counters, gauges, histogram
// state) while keeping the instruments themselves and all registered
// pull sources, so a reused testbed reports into the same registry
// without re-registering anything. Pull sources read live layer state
// and need no zeroing here — resetting the layers resets their
// readings.
func (r *Registry) Reset() {
	for _, in := range r.instruments {
		switch in.kind {
		case KindCounter:
			if in.c != nil {
				in.c.v = 0
			}
		case KindGauge:
			if in.g != nil {
				in.g.v = 0
			}
		case KindHistogram:
			if in.h != nil {
				for i := range in.h.counts {
					in.h.counts[i] = 0
				}
				in.h.sum = 0
				in.h.n = 0
			}
		}
	}
}

// RegisterSource installs a pull hook: fn is invoked on every Gather and
// its readings are reported under (node, layer).
func (r *Registry) RegisterSource(node, layer string, fn func() Snapshot) {
	r.sources = append(r.sources, source{node: node, layer: layer, fn: fn})
}

// Instruments reports how many direct instruments exist (pull sources
// contribute to Gather but are not counted until gathered).
func (r *Registry) Instruments() int { return len(r.instruments) }

// Gather reads every direct instrument and pull source and returns the
// samples sorted by (node, layer, name) — byte-stable regardless of
// registration order, which keeps sampled series and exports
// deterministic.
func (r *Registry) Gather() []Sample {
	out := make([]Sample, 0, len(r.instruments)+len(r.sources)*8)
	for k, in := range r.instruments {
		s := Sample{Node: k.Node, Layer: k.Layer, Name: k.Name, Kind: in.kind}
		switch in.kind {
		case KindCounter:
			s.Value = in.c.Value()
		case KindGauge:
			s.Value = in.g.Value()
		case KindHistogram:
			s.Count = in.h.Count()
			s.Sum = in.h.Sum()
			s.Buckets = in.h.Buckets()
		}
		out = append(out, s)
	}
	for _, src := range r.sources {
		sn := src.fn()
		for _, v := range sn.Values {
			out = append(out, Sample{
				Node: src.node, Layer: src.layer, Name: v.Name,
				Kind: v.Kind, Value: v.Value,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a := Key{out[i].Node, out[i].Layer, out[i].Name}
		b := Key{out[j].Node, out[j].Layer, out[j].Name}
		return a.less(b)
	})
	return out
}
