package metrics

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestCounterMonotone(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(2.5)
	c.Add(-10) // ignored: counters never decrease
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %v, want 4", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 556.5 {
		t.Fatalf("sum = %v, want 556.5", h.Sum())
	}
	want := []Bucket{{Le: 1, Count: 2}, {Le: 10, Count: 3}, {Le: 100, Count: 4}}
	if got := h.Buckets(); !reflect.DeepEqual(got, want) {
		t.Fatalf("buckets = %+v, want %+v", got, want)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("n1", "nic", "tx")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("n1", "nic", "tx")
}

// TestGatherDeterministic registers the same instruments and sources in
// two different orders and requires byte-identical Gather output — the
// property that keeps sampled series reproducible across runs.
func TestGatherDeterministic(t *testing.T) {
	build := func(reverse bool) *Registry {
		r := NewRegistry()
		ops := []func(){
			func() { r.Counter("node1", "nic", "tx_frames").Add(3) },
			func() { r.Gauge("node2", "tcp", "cwnd_segments").Set(8) },
			func() { r.Counter("node1", "engine", "drops").Add(1) },
			func() {
				r.RegisterSource("node2", "rll", func() Snapshot {
					var s Snapshot
					s.Counter("data_sent", 9)
					s.Gauge("inflight_frames", 2)
					return s
				})
			},
		}
		if reverse {
			for i := len(ops) - 1; i >= 0; i-- {
				ops[i]()
			}
		} else {
			for _, op := range ops {
				op()
			}
		}
		return r
	}
	a, b := build(false).Gather(), build(true).Gather()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("gather order-dependent:\n%+v\nvs\n%+v", a, b)
	}
	// Spot-check sort order: node, then layer, then name.
	var keys []string
	for _, s := range a {
		keys = append(keys, s.Node+"/"+s.Layer+"/"+s.Name)
	}
	want := []string{
		"node1/engine/drops",
		"node1/nic/tx_frames",
		"node2/rll/data_sent",
		"node2/rll/inflight_frames",
		"node2/tcp/cwnd_segments",
	}
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("gather order = %v, want %v", keys, want)
	}
}

// fakeClock is a minimal single-queue virtual scheduler for driving the
// sampler without the sim package (metrics must not depend on it).
type fakeClock struct {
	now  time.Duration
	evts []fakeEvt
}

type fakeEvt struct {
	at time.Duration
	fn func()
}

func (f *fakeClock) schedule(d time.Duration, fn func()) {
	f.evts = append(f.evts, fakeEvt{at: f.now + d, fn: fn})
}

func (f *fakeClock) runUntil(horizon time.Duration) {
	for {
		best := -1
		for i, e := range f.evts {
			if e.at > horizon {
				continue
			}
			if best < 0 || e.at < f.evts[best].at {
				best = i
			}
		}
		if best < 0 {
			f.now = horizon
			return
		}
		e := f.evts[best]
		f.evts = append(f.evts[:best], f.evts[best+1:]...)
		f.now = e.at
		e.fn()
	}
}

func TestSamplerIntervalMath(t *testing.T) {
	clk := &fakeClock{}
	r := NewRegistry()
	c := r.Counter("n1", "sim", "ticks")
	s := NewSampler(r, 10*time.Millisecond, 0, func() time.Duration { return clk.now }, clk.schedule)
	s.Start()
	// Bump the counter on its own cadence so points differ.
	var bump func()
	bump = func() {
		c.Inc()
		clk.schedule(10*time.Millisecond, bump)
	}
	clk.schedule(0, bump)
	clk.runUntil(55 * time.Millisecond)

	pts := s.Points()
	if len(pts) != 5 {
		t.Fatalf("points = %d, want 5 (samples at 10..50ms)", len(pts))
	}
	for i, p := range pts {
		wantAt := time.Duration(i+1) * 10 * time.Millisecond
		if p.At != wantAt {
			t.Errorf("point %d at %v, want %v", i, p.At, wantAt)
		}
		v, ok := p.Samples[0], len(p.Samples) == 1
		if !ok || v.Name != "ticks" {
			t.Fatalf("point %d samples = %+v", i, p.Samples)
		}
		// The bump at t fires before the sample at t (scheduled first),
		// so the i-th sample sees i+1 ticks.
		if v.Value != float64(i+1) {
			t.Errorf("point %d ticks = %v, want %d", i, v.Value, i+1)
		}
	}

	s.Stop()
	clk.runUntil(200 * time.Millisecond)
	if got := s.Len(); got != 5 {
		t.Fatalf("sampler kept recording after Stop: %d points", got)
	}
}

func TestSamplerRingOverwrite(t *testing.T) {
	clk := &fakeClock{}
	r := NewRegistry()
	s := NewSampler(r, time.Millisecond, 4, func() time.Duration { return clk.now }, clk.schedule)
	s.Start()
	clk.runUntil(10 * time.Millisecond) // 10 samples into a 4-slot ring
	pts := s.Points()
	if len(pts) != 4 {
		t.Fatalf("ring holds %d, want 4", len(pts))
	}
	for i, p := range pts {
		want := time.Duration(7+i) * time.Millisecond
		if p.At != want {
			t.Errorf("ring point %d at %v, want %v (oldest four overwritten)", i, p.At, want)
		}
	}
}

func TestWriteJSONGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("node1", "nic", "tx_frames").Add(2)
	ser := Series{
		Interval: 10 * time.Millisecond,
		Points:   []Point{{At: 10 * time.Millisecond, Samples: r.Gather()}},
		FinalAt:  20 * time.Millisecond,
		Final:    r.Gather(),
	}
	var b strings.Builder
	if err := WriteJSON(&b, ser); err != nil {
		t.Fatal(err)
	}
	want := `{
  "interval_ns": 10000000,
  "points": [
    {
      "at_ns": 10000000,
      "samples": [
        {
          "node": "node1",
          "layer": "nic",
          "name": "tx_frames",
          "kind": "counter",
          "value": 2
        }
      ]
    }
  ],
  "final_at_ns": 20000000,
  "final": [
    {
      "node": "node1",
      "layer": "nic",
      "name": "tx_frames",
      "kind": "counter",
      "value": 2
    }
  ]
}
`
	if b.String() != want {
		t.Fatalf("json golden mismatch:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestWriteCSVGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("node1", "nic", "tx_frames").Add(2)
	h := r.Histogram("node1", "workload", "rtt_seconds", []float64{0.001})
	h.Observe(0.0005)
	ser := Series{FinalAt: time.Second, Final: r.Gather()}
	var b strings.Builder
	if err := WriteCSV(&b, ser); err != nil {
		t.Fatal(err)
	}
	want := "at_seconds,node,layer,name,kind,value\n" +
		"1.000000000,node1,nic,tx_frames,counter,2\n" +
		"1.000000000,node1,workload,rtt_seconds_sum,histogram,0.0005\n" +
		"1.000000000,node1,workload,rtt_seconds_count,histogram,1\n"
	if b.String() != want {
		t.Fatalf("csv golden mismatch:\n%q\nwant:\n%q", b.String(), want)
	}
}

func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("node1", "nic", "tx_frames").Add(2)
	r.Gauge("node2", "tcp", "cwnd_segments").Set(8)
	h := r.Histogram("node1", "workload", "rtt_seconds", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.5)
	var b strings.Builder
	if err := WritePrometheus(&b, r.Gather()); err != nil {
		t.Fatal(err)
	}
	want := `vw_nic_tx_frames{node="node1",layer="nic"} 2
vw_workload_rtt_seconds_bucket{node="node1",layer="workload",le="0.001"} 1
vw_workload_rtt_seconds_bucket{node="node1",layer="workload",le="0.01"} 1
vw_workload_rtt_seconds_bucket{node="node1",layer="workload",le="+Inf"} 2
vw_workload_rtt_seconds_sum{node="node1",layer="workload"} 0.5005
vw_workload_rtt_seconds_count{node="node1",layer="workload"} 2
vw_tcp_cwnd_segments{node="node2",layer="tcp"} 8
`
	if b.String() != want {
		t.Fatalf("prometheus golden mismatch:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestPrometheusLineShape asserts every emitted line matches the
// name{node="...",layer="..."} value shape the acceptance criteria and
// scrapers expect.
func TestPrometheusLineShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("node1", "nic", "tx-frames.total").Add(1) // needs sanitizing
	r.Gauge("testbed", "scheduler", "events_pending").Set(3)
	var b strings.Builder
	if err := WritePrometheus(&b, r.Gather()); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n") {
		if !promLineOK(line) {
			t.Errorf("malformed prometheus line: %q", line)
		}
	}
}

func promLineOK(line string) bool {
	open := strings.IndexByte(line, '{')
	close := strings.IndexByte(line, '}')
	if open <= 0 || close < open || close+2 > len(line) {
		return false
	}
	name := line[:open]
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	labels := line[open+1 : close]
	if !strings.Contains(labels, `node="`) || !strings.Contains(labels, `layer="`) {
		return false
	}
	return line[close+1] == ' '
}
