package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Series is a complete run's worth of metrics: the sampled time series
// (empty when no sampler ran) plus a final gather taken at export time.
type Series struct {
	// Interval is the sampling period (zero when no sampler ran).
	Interval time.Duration `json:"interval_ns,omitempty"`
	// Points is the sampled time series, oldest first.
	Points []Point `json:"points,omitempty"`
	// FinalAt is the virtual time of the final gather.
	FinalAt time.Duration `json:"final_at_ns"`
	// Final is the end-of-run reading of every instrument.
	Final []Sample `json:"final"`
}

// WriteJSON writes the series as indented JSON.
func WriteJSON(w io.Writer, s Series) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteCSV writes the series in long format, one reading per row:
//
//	at_seconds,node,layer,name,kind,value
//
// Histogram instruments contribute two rows, name_sum and name_count
// (per-bucket detail is a JSON-export concern). The final gather is the
// last row group, stamped with FinalAt.
func WriteCSV(w io.Writer, s Series) error {
	if _, err := io.WriteString(w, "at_seconds,node,layer,name,kind,value\n"); err != nil {
		return err
	}
	for _, p := range s.Points {
		if err := writeCSVSamples(w, p.At, p.Samples); err != nil {
			return err
		}
	}
	return writeCSVSamples(w, s.FinalAt, s.Final)
}

func writeCSVSamples(w io.Writer, at time.Duration, samples []Sample) error {
	for _, sm := range samples {
		if sm.Kind == KindHistogram {
			if err := csvRow(w, at, sm.Node, sm.Layer, sm.Name+"_sum", sm.Kind, sm.Sum); err != nil {
				return err
			}
			if err := csvRow(w, at, sm.Node, sm.Layer, sm.Name+"_count", sm.Kind, float64(sm.Count)); err != nil {
				return err
			}
			continue
		}
		if err := csvRow(w, at, sm.Node, sm.Layer, sm.Name, sm.Kind, sm.Value); err != nil {
			return err
		}
	}
	return nil
}

func csvRow(w io.Writer, at time.Duration, node, layer, name string, kind Kind, v float64) error {
	_, err := fmt.Fprintf(w, "%s,%s,%s,%s,%s,%s\n",
		strconv.FormatFloat(at.Seconds(), 'f', 9, 64),
		node, layer, name, kind, formatValue(v))
	return err
}

// WritePrometheus writes the samples in the Prometheus text exposition
// format, one reading per line:
//
//	vw_<layer>_<name>{node="...",layer="..."} <value>
//
// Histograms expand to the conventional _bucket/_sum/_count triplet with
// cumulative le labels.
func WritePrometheus(w io.Writer, samples []Sample) error {
	for _, s := range samples {
		name := promName(s.Layer, s.Name)
		labels := fmt.Sprintf(`node=%q,layer=%q`, s.Node, s.Layer)
		switch s.Kind {
		case KindHistogram:
			for _, b := range s.Buckets {
				if _, err := fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n",
					name, labels, formatValue(b.Le), b.Count); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, labels, s.Count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum{%s} %s\n", name, labels, formatValue(s.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, s.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s{%s} %s\n", name, labels, formatValue(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promName builds a metric name from the layer and instrument name,
// replacing every character Prometheus disallows with an underscore.
func promName(layer, name string) string {
	var b strings.Builder
	b.WriteString("vw_")
	sanitizeInto(&b, layer)
	b.WriteByte('_')
	sanitizeInto(&b, name)
	return b.String()
}

func sanitizeInto(b *strings.Builder, s string) {
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteByte(c)
		case c >= '0' && c <= '9' && b.Len() > 0:
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
}
