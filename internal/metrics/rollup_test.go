package metrics

import (
	"math/rand"
	"testing"
)

func TestRollupAccumulates(t *testing.T) {
	r := NewRollup()
	r.Add(map[string]float64{"engine/drops": 2, "nic/tx_frames": 10})
	r.Add(map[string]float64{"engine/drops": 3, "tcp/retrans": 1})
	if r.Runs() != 2 {
		t.Fatalf("Runs = %d", r.Runs())
	}
	got := r.Totals()
	want := map[string]float64{"engine/drops": 5, "nic/tx_frames": 10, "tcp/retrans": 1}
	if len(got) != len(want) {
		t.Fatalf("totals = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("totals[%q] = %v, want %v", k, got[k], v)
		}
	}
	// Totals returns a copy: mutating it must not leak back.
	got["engine/drops"] = 99
	if r.Totals()["engine/drops"] != 5 {
		t.Error("Totals aliases internal state")
	}
}

func TestQuantileNearestRank(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.1, 1}, {0.5, 5}, {0.9, 9}, {0.99, 10}, {1, 10},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(empty) = %v", got)
	}
}

func TestSummarizeOrderInvariant(t *testing.T) {
	vals := make([]float64, 101)
	for i := range vals {
		vals[i] = float64(i)
	}
	a := Summarize(vals)
	shuffled := append([]float64(nil), vals...)
	rand.New(rand.NewSource(7)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	b := Summarize(shuffled)
	if a != b {
		t.Fatalf("summaries differ across input order: %+v vs %+v", a, b)
	}
	if a.Count != 101 || a.Min != 0 || a.Max != 100 || a.P50 != 50 {
		t.Errorf("summary = %+v", a)
	}
	if got := Summarize(nil); got != (Distribution{}) {
		t.Errorf("Summarize(empty) = %+v", got)
	}
}
