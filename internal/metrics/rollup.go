package metrics

import (
	"math"
	"sort"
)

// Rollup accumulates per-run counter totals into campaign-level totals.
// Each run contributes its RunReport metrics digest (counter sums keyed
// "layer/name"); the rollup adds them across runs so a campaign summary
// can report, for example, total packets intercepted or faults injected
// over thousands of runs without retaining any per-run registry.
//
// Rollup is not safe for concurrent use; the campaign executor feeds it
// from the single collector goroutine, in run-index order, which also
// keeps the accumulated floating-point sums deterministic.
type Rollup struct {
	totals map[string]float64
	runs   int
}

// NewRollup returns an empty rollup.
func NewRollup() *Rollup {
	return &Rollup{totals: make(map[string]float64)}
}

// Add folds one run's counter totals into the rollup.
func (r *Rollup) Add(totals map[string]float64) {
	r.runs++
	for k, v := range totals {
		r.totals[k] += v
	}
}

// Runs reports how many runs have been folded in.
func (r *Rollup) Runs() int { return r.runs }

// Totals returns a copy of the accumulated totals, keyed "layer/name".
func (r *Rollup) Totals() map[string]float64 {
	out := make(map[string]float64, len(r.totals))
	for k, v := range r.totals {
		out[k] = v
	}
	return out
}

// Distribution summarizes a set of scalar observations — one value per
// campaign run, e.g. goodput or mean RTT — with exact order statistics.
type Distribution struct {
	Count int     `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Summarize computes a Distribution over values. The input slice is not
// modified. Percentiles are exact (nearest-rank on the sorted values),
// so equal multisets give byte-identical summaries regardless of input
// order; the mean is computed from the sorted order for the same reason.
func Summarize(values []float64) Distribution {
	if len(values) == 0 {
		return Distribution{}
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	return Distribution{
		Count: len(sorted),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
		Mean:  sum / float64(len(sorted)),
		P50:   Quantile(sorted, 0.50),
		P90:   Quantile(sorted, 0.90),
		P99:   Quantile(sorted, 0.99),
	}
}

// Quantile returns the q-th quantile (0 <= q <= 1) of an ascending
// sorted slice using the nearest-rank method: the smallest value with at
// least ceil(q*n) observations at or below it. It returns 0 on an empty
// slice.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	rank := int(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}
