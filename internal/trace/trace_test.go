package trace

import (
	"strings"
	"testing"

	"virtualwire/internal/ether"
	"virtualwire/internal/packet"
	"virtualwire/internal/sim"
	"virtualwire/internal/stack"
)

func TestTapCapturesBothDirections(t *testing.T) {
	s := sim.NewScheduler(1)
	bus := ether.NewSharedBus(s, ether.BusConfig{})
	h1 := stack.NewHost(s, "node1", packet.MAC{0, 0, 0, 0, 0, 1}, packet.IP{10, 0, 0, 1})
	h2 := stack.NewHost(s, "node2", packet.MAC{0, 0, 0, 0, 0, 2}, packet.IP{10, 0, 0, 2})
	for _, h := range []*stack.Host{h1, h2} {
		h.Neighbors[h1.IP] = h1.MAC
		h.Neighbors[h2.IP] = h2.MAC
	}
	bus.Attach(h1.NIC)
	bus.Attach(h2.NIC)
	buf := NewBuffer(0)
	h1.Build(NewTap(s, "node1", buf))
	h2.Build(NewTap(s, "node2", buf))

	srv, _ := h2.UDP.Bind(7)
	srv.OnDatagram = func(src packet.IP, sp uint16, p []byte) {
		if err := srv.SendTo(src, sp, p); err != nil {
			t.Errorf("echo: %v", err)
		}
	}
	cli, _ := h1.UDP.Bind(1234)
	if err := cli.SendTo(h2.IP, 7, []byte("ping")); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	entries := buf.Entries()
	if len(entries) != 4 { // send@1, recv@2, send@2, recv@1
		t.Fatalf("captured %d entries:\n%s", len(entries), buf.Dump())
	}
	if entries[0].Node != "node1" || entries[0].Dir != "send" {
		t.Errorf("first entry %+v", entries[0])
	}
	if !strings.Contains(entries[0].Summary, "udp 10.0.0.1:1234 > 10.0.0.2:7") {
		t.Errorf("summary %q", entries[0].Summary)
	}
	if got := buf.Filter("recv"); len(got) != 2 {
		t.Errorf("Filter(recv) = %d entries", len(got))
	}
	if got := buf.Filter("node2", "udp"); len(got) != 2 {
		t.Errorf("Filter(node2,udp) = %d entries", len(got))
	}
}

func TestBufferEviction(t *testing.T) {
	buf := NewBuffer(3)
	for i := 0; i < 5; i++ {
		buf.add(Entry{FrameID: uint64(i)})
	}
	if buf.Dropped() != 2 {
		t.Errorf("dropped = %d", buf.Dropped())
	}
	es := buf.Entries()
	if len(es) != 3 || es[0].FrameID != 2 || es[2].FrameID != 4 {
		t.Errorf("entries = %+v", es)
	}
}

func TestSummarizeProtocols(t *testing.T) {
	mac1, mac2 := packet.MAC{1}, packet.MAC{2}
	tcpFrame := packet.BuildTCPFrame(mac1, mac2, packet.IP{10, 0, 0, 1}, packet.IP{10, 0, 0, 2},
		packet.TCP{SrcPort: 0x6000, DstPort: 0x4000, Seq: 7, Flags: packet.TCPSyn}, nil)
	got := Summarize(&ether.Frame{Data: tcpFrame})
	if !strings.Contains(got, "tcp") || !strings.Contains(got, "[S]") {
		t.Errorf("tcp summary %q", got)
	}
	rtFrame := packet.BuildRetherFrame(mac1, mac2, packet.Rether{Type: packet.RetherToken, TokenSeq: 3}, nil)
	got = Summarize(&ether.Frame{Data: rtFrame})
	if !strings.Contains(got, "rether token seq=3") {
		t.Errorf("rether summary %q", got)
	}
	if got := Summarize(&ether.Frame{Data: []byte{1, 2}}); got != "short frame" {
		t.Errorf("short frame summary %q", got)
	}
}
