package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"virtualwire/internal/ether"
	"virtualwire/internal/sim"
	"virtualwire/internal/stack"
)

// pcap export: captures can be written in the classic libpcap file format
// (magic 0xa1b2c3d4, LINKTYPE_ETHERNET) and opened with tcpdump or
// Wireshark — the paper's Section 1 describes exactly that workflow as
// the tedious manual baseline, and being able to hand a simulated run to
// the same tools closes the loop.

const (
	pcapMagicMicros  = 0xa1b2c3d4
	pcapVersionMajor = 2
	pcapVersionMinor = 4
	linktypeEthernet = 1
	pcapSnapLen      = 65535
)

// PcapWriter streams frames into an io.Writer in libpcap format.
type PcapWriter struct {
	w       io.Writer
	written int
}

// NewPcapWriter writes the global header and returns a writer.
func NewPcapWriter(w io.Writer) (*PcapWriter, error) {
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:], pcapMagicMicros)
	binary.LittleEndian.PutUint16(hdr[4:], pcapVersionMajor)
	binary.LittleEndian.PutUint16(hdr[6:], pcapVersionMinor)
	// thiszone=0, sigfigs=0
	binary.LittleEndian.PutUint32(hdr[16:], pcapSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:], linktypeEthernet)
	if _, err := w.Write(hdr); err != nil {
		return nil, fmt.Errorf("pcap header: %w", err)
	}
	return &PcapWriter{w: w}, nil
}

// WriteFrame appends one frame with the given capture timestamp.
func (p *PcapWriter) WriteFrame(at time.Duration, data []byte) error {
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint32(hdr[0:], uint32(at/time.Second))
	binary.LittleEndian.PutUint32(hdr[4:], uint32((at%time.Second)/time.Microsecond))
	n := len(data)
	if n > pcapSnapLen {
		n = pcapSnapLen
	}
	binary.LittleEndian.PutUint32(hdr[8:], uint32(n))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(data)))
	if _, err := p.w.Write(hdr); err != nil {
		return err
	}
	if _, err := p.w.Write(data[:n]); err != nil {
		return err
	}
	p.written++
	return nil
}

// Frames reports how many frames have been written.
func (p *PcapWriter) Frames() int { return p.written }

// PcapTap is a stack.Layer that writes every traversing frame straight
// into a PcapWriter (one capture point, like tcpdump on one interface).
type PcapTap struct {
	base  stack.Base
	sched *sim.Scheduler
	pw    *PcapWriter
	// Err records the first write failure (the tap never blocks the
	// data path on I/O errors).
	Err error
}

var _ stack.Layer = (*PcapTap)(nil)

// NewPcapTap returns a capture layer writing to pw.
func NewPcapTap(sched *sim.Scheduler, pw *PcapWriter) *PcapTap {
	return &PcapTap{sched: sched, pw: pw}
}

// SetBelow implements stack.Layer.
func (t *PcapTap) SetBelow(d stack.Down) { t.base.SetBelow(d) }

// SetAbove implements stack.Layer.
func (t *PcapTap) SetAbove(u stack.Up) { t.base.SetAbove(u) }

// SendDown implements stack.Layer.
func (t *PcapTap) SendDown(fr *ether.Frame) {
	t.capture(fr)
	t.base.PassDown(fr)
}

// DeliverUp implements stack.Layer.
func (t *PcapTap) DeliverUp(fr *ether.Frame) {
	t.capture(fr)
	t.base.PassUp(fr)
}

func (t *PcapTap) capture(fr *ether.Frame) {
	if t.Err != nil {
		return
	}
	if err := t.pw.WriteFrame(t.sched.Now(), fr.Data); err != nil {
		t.Err = err
	}
}

// WritePcap dumps a recorded Buffer's entries as pcap. Buffer entries do
// not retain frame bytes, so this writes truncated records carrying only
// the lengths — prefer a live PcapTap for full payloads. Provided for
// post-hoc length/timing analysis in external tools.
func WritePcap(w io.Writer, entries []Entry) error {
	pw, err := NewPcapWriter(w)
	if err != nil {
		return err
	}
	for _, e := range entries {
		hdr := make([]byte, 16)
		binary.LittleEndian.PutUint32(hdr[0:], uint32(e.At/time.Second))
		binary.LittleEndian.PutUint32(hdr[4:], uint32((e.At%time.Second)/time.Microsecond))
		binary.LittleEndian.PutUint32(hdr[8:], 0) // no bytes captured
		binary.LittleEndian.PutUint32(hdr[12:], uint32(e.Len))
		if _, err := pw.w.Write(hdr); err != nil {
			return err
		}
		pw.written++
	}
	return nil
}
