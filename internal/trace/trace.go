// Package trace provides tcpdump-style packet capture for the simulated
// testbed. The paper's motivation section describes collecting tcpdump
// traces and inspecting them manually as the tedious baseline VirtualWire
// replaces; this package exists both for debugging the testbed and for
// demonstrating that contrast in the examples.
package trace

import (
	"fmt"
	"strings"
	"time"

	"virtualwire/internal/ether"
	"virtualwire/internal/packet"
	"virtualwire/internal/rll"
	"virtualwire/internal/sim"
	"virtualwire/internal/stack"
)

// Entry is one captured frame with its capture point and timestamp.
type Entry struct {
	At   time.Duration
	Node string
	// Dir is "send" or "recv" relative to the capture point.
	Dir     string
	FrameID uint64
	Len     int
	Summary string
}

// String renders the entry in a tcpdump-like single line.
func (e Entry) String() string {
	return fmt.Sprintf("%12v %-8s %-4s %4dB %s", e.At, e.Node, e.Dir, e.Len, e.Summary)
}

// Buffer is a bounded capture ring shared by any number of Taps.
type Buffer struct {
	cap     int
	entries []Entry
	dropped uint64
}

// NewBuffer returns a capture buffer holding up to capEntries entries
// (<=0 selects 4096). When full, the oldest entries are discarded.
func NewBuffer(capEntries int) *Buffer {
	if capEntries <= 0 {
		capEntries = 4096
	}
	return &Buffer{cap: capEntries}
}

func (b *Buffer) add(e Entry) {
	if len(b.entries) >= b.cap {
		copy(b.entries, b.entries[1:])
		b.entries = b.entries[:len(b.entries)-1]
		b.dropped++
	}
	b.entries = append(b.entries, e)
}

// Reset discards all captured entries and the eviction count, keeping
// the buffer's capacity for reuse.
func (b *Buffer) Reset() {
	b.entries = b.entries[:0]
	b.dropped = 0
}

// Entries returns a copy of the captured entries in order.
func (b *Buffer) Entries() []Entry {
	out := make([]Entry, len(b.entries))
	copy(out, b.entries)
	return out
}

// Dropped reports how many entries were evicted.
func (b *Buffer) Dropped() uint64 { return b.dropped }

// Filter returns the entries whose summary contains all the given
// substrings.
func (b *Buffer) Filter(substrings ...string) []Entry {
	var out []Entry
	for _, e := range b.entries {
		ok := true
		for _, s := range substrings {
			if !strings.Contains(e.Summary, s) && !strings.Contains(e.Node, s) && e.Dir != s {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, e)
		}
	}
	return out
}

// Dump renders all entries, one per line.
func (b *Buffer) Dump() string {
	var sb strings.Builder
	for _, e := range b.entries {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Tap is a stack.Layer that records every frame passing through it into a
// Buffer, without modifying or delaying anything.
type Tap struct {
	base  stack.Base
	sched *sim.Scheduler
	node  string
	buf   *Buffer
}

var _ stack.Layer = (*Tap)(nil)

// NewTap returns a capture layer writing to buf under the given node
// label.
func NewTap(sched *sim.Scheduler, node string, buf *Buffer) *Tap {
	return &Tap{sched: sched, node: node, buf: buf}
}

// SetBelow implements stack.Layer.
func (t *Tap) SetBelow(d stack.Down) { t.base.SetBelow(d) }

// SetAbove implements stack.Layer.
func (t *Tap) SetAbove(u stack.Up) { t.base.SetAbove(u) }

// SendDown implements stack.Layer.
func (t *Tap) SendDown(fr *ether.Frame) {
	t.record(fr, "send")
	t.base.PassDown(fr)
}

// DeliverUp implements stack.Layer.
func (t *Tap) DeliverUp(fr *ether.Frame) {
	t.record(fr, "recv")
	t.base.PassUp(fr)
}

func (t *Tap) record(fr *ether.Frame, dir string) {
	t.buf.add(Entry{
		At:      t.sched.Now(),
		Node:    t.node,
		Dir:     dir,
		FrameID: fr.ID,
		Len:     len(fr.Data),
		Summary: Summarize(fr),
	})
}

// Summarize decodes a frame into a one-line description covering every
// protocol on the testbed.
func Summarize(fr *ether.Frame) string {
	eth, err := packet.DecodeEth(fr.Data)
	if err != nil {
		return "short frame"
	}
	switch eth.Type {
	case packet.EtherTypeIPv4:
		return summarizeIPv4(fr.Data)
	case packet.EtherTypeRether:
		h, err := packet.DecodeRether(fr.Data[packet.EthHeaderLen:])
		if err != nil {
			return "rether: malformed"
		}
		return fmt.Sprintf("rether %s seq=%d origin=%d",
			packet.RetherTypeName(h.Type), h.TokenSeq, h.Origin)
	case packet.EtherTypeVWCtl:
		return "vwire control"
	case rll.EtherType:
		return fmt.Sprintf("rll %s %s -> %s (%dB encapsulated)",
			rll.FrameTypeName(fr.Data), eth.Src, eth.Dst,
			len(fr.Data)-packet.EthHeaderLen)
	}
	return fmt.Sprintf("ethertype 0x%04x %s -> %s", eth.Type, eth.Src, eth.Dst)
}

func summarizeIPv4(b []byte) string {
	iph, err := packet.DecodeIPv4(b[packet.OffIPHeader:])
	if err != nil {
		return "ipv4: bad header"
	}
	rest := b[packet.OffIPHeader+packet.IPv4HeaderLen:]
	switch iph.Proto {
	case packet.ProtoTCP:
		th, err := packet.DecodeTCP(rest)
		if err != nil {
			return "tcp: malformed"
		}
		dataLen := int(iph.TotalLen) - packet.IPv4HeaderLen - packet.TCPHeaderLen
		return fmt.Sprintf("tcp %v:%d > %v:%d [%s] seq=%d ack=%d len=%d",
			iph.Src, th.SrcPort, iph.Dst, th.DstPort,
			packet.FlagString(th.Flags), th.Seq, th.Ack, dataLen)
	case packet.ProtoUDP:
		uh, err := packet.DecodeUDP(rest)
		if err != nil {
			return "udp: malformed"
		}
		return fmt.Sprintf("udp %v:%d > %v:%d len=%d",
			iph.Src, uh.SrcPort, iph.Dst, uh.DstPort, int(uh.Length)-packet.UDPHeaderLen)
	}
	return fmt.Sprintf("ipv4 proto=%d %v > %v", iph.Proto, iph.Src, iph.Dst)
}
