package trace

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"virtualwire/internal/ether"
	"virtualwire/internal/packet"
	"virtualwire/internal/sim"
	"virtualwire/internal/stack"
)

func TestPcapWriterFormat(t *testing.T) {
	var buf bytes.Buffer
	pw, err := NewPcapWriter(&buf)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	frame := packet.BuildUDPFrame(packet.MAC{1}, packet.MAC{2},
		packet.IP{10, 0, 0, 1}, packet.IP{10, 0, 0, 2},
		packet.UDP{SrcPort: 1, DstPort: 2}, []byte("hi"))
	at := 3*time.Second + 250*time.Microsecond
	if err := pw.WriteFrame(at, frame); err != nil {
		t.Fatalf("write: %v", err)
	}
	if pw.Frames() != 1 {
		t.Errorf("Frames = %d", pw.Frames())
	}
	b := buf.Bytes()
	if len(b) != 24+16+len(frame) {
		t.Fatalf("file length %d", len(b))
	}
	if got := binary.LittleEndian.Uint32(b[0:]); got != pcapMagicMicros {
		t.Errorf("magic %#x", got)
	}
	if got := binary.LittleEndian.Uint32(b[20:]); got != linktypeEthernet {
		t.Errorf("linktype %d", got)
	}
	rec := b[24:]
	if got := binary.LittleEndian.Uint32(rec[0:]); got != 3 {
		t.Errorf("ts_sec %d", got)
	}
	if got := binary.LittleEndian.Uint32(rec[4:]); got != 250 {
		t.Errorf("ts_usec %d", got)
	}
	if got := binary.LittleEndian.Uint32(rec[8:]); got != uint32(len(frame)) {
		t.Errorf("incl_len %d", got)
	}
	if !bytes.Equal(rec[16:], frame) {
		t.Error("payload mismatch")
	}
}

func TestPcapTapCapturesLiveTraffic(t *testing.T) {
	s := sim.NewScheduler(1)
	bus := ether.NewSharedBus(s, ether.BusConfig{})
	h1 := stack.NewHost(s, "a", packet.MAC{0, 0, 0, 0, 0, 1}, packet.IP{10, 0, 0, 1})
	h2 := stack.NewHost(s, "b", packet.MAC{0, 0, 0, 0, 0, 2}, packet.IP{10, 0, 0, 2})
	for _, h := range []*stack.Host{h1, h2} {
		h.Neighbors[h1.IP] = h1.MAC
		h.Neighbors[h2.IP] = h2.MAC
	}
	bus.Attach(h1.NIC)
	bus.Attach(h2.NIC)
	var buf bytes.Buffer
	pw, err := NewPcapWriter(&buf)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	h1.Build(NewPcapTap(s, pw))
	h2.Build()
	sock, _ := h2.UDP.Bind(9)
	sock.OnDatagram = func(src packet.IP, sp uint16, p []byte) {
		_ = sock.SendTo(src, sp, p)
	}
	cli, _ := h1.UDP.Bind(10)
	if err := cli.SendTo(h2.IP, 9, []byte("ping")); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	// Tap on h1 sees its send and the echo receive.
	if pw.Frames() != 2 {
		t.Errorf("captured %d frames, want 2", pw.Frames())
	}
	if buf.Len() <= 24 {
		t.Error("no packet records written")
	}
}

func TestWritePcapFromBuffer(t *testing.T) {
	entries := []Entry{
		{At: time.Millisecond, Len: 100},
		{At: 2 * time.Millisecond, Len: 200},
	}
	var buf bytes.Buffer
	if err := WritePcap(&buf, entries); err != nil {
		t.Fatalf("write: %v", err)
	}
	if buf.Len() != 24+2*16 {
		t.Errorf("file length %d", buf.Len())
	}
}
