package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"time"

	"virtualwire/internal/ether"
	"virtualwire/internal/packet"
)

// Control-plane message kinds (Section 5.2: "The control plane messages
// are implemented as payloads of raw Ethernet frames").
type MsgKind int

// Message kinds.
const (
	// MsgInitChunk carries one fragment of the gob-encoded Program from
	// the controller to a node.
	MsgInitChunk MsgKind = iota + 1
	// MsgInitAck acknowledges a fully assembled Program.
	MsgInitAck
	// MsgStart activates the scenario on a node.
	MsgStart
	// MsgShutdown deactivates the scenario on a node.
	MsgShutdown
	// MsgCounterValue pushes a counter's new value to a node homing a
	// dependent term (the eager case of Section 5.2).
	MsgCounterValue
	// MsgTermStatus pushes a term's changed status to nodes evaluating
	// dependent conditions (the status-change-only case).
	MsgTermStatus
	// MsgError reports a FLAG_ERR firing to the controller.
	MsgError
	// MsgStop reports a STOP firing to the controller.
	MsgStop
	// MsgActivity is the rate-limited liveness report feeding the
	// controller's inactivity timer.
	MsgActivity
)

// Msg is one control-plane message. All engines and the controller speak
// this type, varint-encoded in an ethertype-0x88B5 Ethernet frame.
type Msg struct {
	Kind MsgKind
	From NodeID

	// Init distribution.
	ChunkIndex  int
	ChunkTotal  int
	ChunkData   []byte
	ControlNode NodeID
	NodeID      NodeID // the receiver's identity, assigned by the controller

	// State propagation.
	Counter CounterID
	Value   int64
	Term    TermID
	Status  bool

	// Reports.
	Rule    int
	Message string
	AtNanos int64
}

// encodeMsg wraps a Msg in a control frame addressed dst <- src. The
// payload is a hand-rolled varint encoding: control messages are on the
// simulation hot path (counter pushes fire per intercepted packet), and
// a gob codec pays a decoder-compilation tax on every frame.
func encodeMsg(src, dst packet.MAC, m *Msg) (*ether.Frame, error) {
	b := make([]byte, packet.EthHeaderLen, packet.EthHeaderLen+64+len(m.ChunkData)+len(m.Message))
	b = binary.AppendVarint(b, int64(m.Kind))
	b = binary.AppendVarint(b, int64(m.From))
	b = binary.AppendVarint(b, int64(m.ChunkIndex))
	b = binary.AppendVarint(b, int64(m.ChunkTotal))
	b = binary.AppendUvarint(b, uint64(len(m.ChunkData)))
	b = append(b, m.ChunkData...)
	b = binary.AppendVarint(b, int64(m.ControlNode))
	b = binary.AppendVarint(b, int64(m.NodeID))
	b = binary.AppendVarint(b, int64(m.Counter))
	b = binary.AppendVarint(b, m.Value)
	b = binary.AppendVarint(b, int64(m.Term))
	if m.Status {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.AppendVarint(b, int64(m.Rule))
	b = binary.AppendUvarint(b, uint64(len(m.Message)))
	b = append(b, m.Message...)
	b = binary.AppendVarint(b, m.AtNanos)
	packet.PutEth(b, packet.Eth{Dst: dst, Src: src, Type: packet.EtherTypeVWCtl})
	return &ether.Frame{Data: b}, nil
}

var errBadCtlFrame = fmt.Errorf("malformed control frame")

// decodeMsg extracts a Msg from a control frame into m. ChunkData and
// Message are copied out: the frame's buffer returns to the pool after
// delivery, while an INIT chunk is retained until reassembly completes.
func decodeMsg(fr *ether.Frame, m *Msg) error {
	b := fr.Data
	if len(b) <= packet.EthHeaderLen {
		return fmt.Errorf("control frame too short")
	}
	b = b[packet.EthHeaderLen:]
	next := func() (int64, error) {
		v, n := binary.Varint(b)
		if n <= 0 {
			return 0, errBadCtlFrame
		}
		b = b[n:]
		return v, nil
	}
	nextBytes := func() ([]byte, error) {
		ln, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b)-n) < ln {
			return nil, errBadCtlFrame
		}
		out := b[n : n+int(ln)]
		b = b[n+int(ln):]
		return out, nil
	}
	var err error
	read := func() int64 {
		if err != nil {
			return 0
		}
		var v int64
		v, err = next()
		return v
	}
	m.Kind = MsgKind(read())
	m.From = NodeID(read())
	m.ChunkIndex = int(read())
	m.ChunkTotal = int(read())
	if err != nil {
		return err
	}
	chunk, err := nextBytes()
	if err != nil {
		return err
	}
	m.ChunkData = nil
	if len(chunk) > 0 {
		m.ChunkData = append([]byte(nil), chunk...)
	}
	m.ControlNode = NodeID(read())
	m.NodeID = NodeID(read())
	m.Counter = CounterID(read())
	m.Value = read()
	m.Term = TermID(read())
	if err != nil {
		return err
	}
	if len(b) == 0 {
		return errBadCtlFrame
	}
	m.Status = b[0] != 0
	b = b[1:]
	m.Rule = int(read())
	if err != nil {
		return err
	}
	text, err := nextBytes()
	if err != nil {
		return err
	}
	m.Message = string(text)
	m.AtNanos = read()
	return err
}

// initChunkSize bounds INIT fragments so control frames stay well under
// the Ethernet MTU even after RLL encapsulation.
const initChunkSize = 1000

// EncodeProgram gob-encodes a Program into the INIT distribution wire
// format. The facade's CompileScript pre-computes this blob once so that
// every Launch of a shared compiled script skips the per-run encode
// (Controller.SetInitBlob installs it).
func EncodeProgram(p *Program) ([]byte, error) {
	return encodeProgram(p)
}

// encodeProgram gob-encodes a Program for INIT distribution.
func encodeProgram(p *Program) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		return nil, fmt.Errorf("encode program: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeProgram reverses encodeProgram.
func decodeProgram(b []byte) (*Program, error) {
	var p Program
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&p); err != nil {
		return nil, fmt.Errorf("decode program: %w", err)
	}
	return &p, nil
}

// ErrorReport is one FLAG_ERR occurrence collected by the controller.
type ErrorReport struct {
	Node NodeID        `json:"node"`
	Rule int           `json:"rule"`
	At   time.Duration `json:"at_ns"`
	Text string        `json:"text"`
}

func (e ErrorReport) String() string {
	return fmt.Sprintf("t=%v node=%d rule=%d %s", e.At, e.Node, e.Rule, e.Text)
}
