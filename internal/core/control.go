package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"

	"virtualwire/internal/ether"
	"virtualwire/internal/packet"
)

// Control-plane message kinds (Section 5.2: "The control plane messages
// are implemented as payloads of raw Ethernet frames").
type MsgKind int

// Message kinds.
const (
	// MsgInitChunk carries one fragment of the gob-encoded Program from
	// the controller to a node.
	MsgInitChunk MsgKind = iota + 1
	// MsgInitAck acknowledges a fully assembled Program.
	MsgInitAck
	// MsgStart activates the scenario on a node.
	MsgStart
	// MsgShutdown deactivates the scenario on a node.
	MsgShutdown
	// MsgCounterValue pushes a counter's new value to a node homing a
	// dependent term (the eager case of Section 5.2).
	MsgCounterValue
	// MsgTermStatus pushes a term's changed status to nodes evaluating
	// dependent conditions (the status-change-only case).
	MsgTermStatus
	// MsgError reports a FLAG_ERR firing to the controller.
	MsgError
	// MsgStop reports a STOP firing to the controller.
	MsgStop
	// MsgActivity is the rate-limited liveness report feeding the
	// controller's inactivity timer.
	MsgActivity
)

// Msg is one control-plane message. All engines and the controller speak
// this type, gob-encoded in an ethertype-0x88B5 Ethernet frame.
type Msg struct {
	Kind MsgKind
	From NodeID

	// Init distribution.
	ChunkIndex  int
	ChunkTotal  int
	ChunkData   []byte
	ControlNode NodeID
	NodeID      NodeID // the receiver's identity, assigned by the controller

	// State propagation.
	Counter CounterID
	Value   int64
	Term    TermID
	Status  bool

	// Reports.
	Rule    int
	Message string
	AtNanos int64
}

// encodeMsg wraps a Msg in a control frame addressed dst <- src.
func encodeMsg(src, dst packet.MAC, m *Msg) (*ether.Frame, error) {
	var buf bytes.Buffer
	buf.Write(make([]byte, packet.EthHeaderLen))
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return nil, fmt.Errorf("encode control msg: %w", err)
	}
	b := buf.Bytes()
	packet.PutEth(b, packet.Eth{Dst: dst, Src: src, Type: packet.EtherTypeVWCtl})
	return &ether.Frame{Data: b}, nil
}

// decodeMsg extracts a Msg from a control frame.
func decodeMsg(fr *ether.Frame) (*Msg, error) {
	if len(fr.Data) <= packet.EthHeaderLen {
		return nil, fmt.Errorf("control frame too short")
	}
	var m Msg
	if err := gob.NewDecoder(bytes.NewReader(fr.Data[packet.EthHeaderLen:])).Decode(&m); err != nil {
		return nil, fmt.Errorf("decode control msg: %w", err)
	}
	return &m, nil
}

// initChunkSize bounds INIT fragments so control frames stay well under
// the Ethernet MTU even after RLL encapsulation.
const initChunkSize = 1000

// encodeProgram gob-encodes a Program for INIT distribution.
func encodeProgram(p *Program) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		return nil, fmt.Errorf("encode program: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeProgram reverses encodeProgram.
func decodeProgram(b []byte) (*Program, error) {
	var p Program
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&p); err != nil {
		return nil, fmt.Errorf("decode program: %w", err)
	}
	return &p, nil
}

// ErrorReport is one FLAG_ERR occurrence collected by the controller.
type ErrorReport struct {
	Node NodeID        `json:"node"`
	Rule int           `json:"rule"`
	At   time.Duration `json:"at_ns"`
	Text string        `json:"text"`
}

func (e ErrorReport) String() string {
	return fmt.Sprintf("t=%v node=%d rule=%d %s", e.At, e.Node, e.Rule, e.Text)
}
