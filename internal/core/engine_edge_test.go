package core_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"virtualwire/internal/core"
	"virtualwire/internal/packet"
)

// TestInitDistributionMultiChunk forces the gob-encoded program over the
// 1000-byte chunk size so INIT really fragments and reassembles.
func TestInitDistributionMultiChunk(t *testing.T) {
	var b strings.Builder
	b.WriteString(header(2, 40)) // 40 filters inflate the program well past one chunk
	b.WriteString("SCENARIO big\n")
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&b, "C%d: (p%d, node1, node2, RECV)\n", i, i%40)
	}
	b.WriteString("(TRUE) >> ")
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&b, "ENABLE_CNTR( C%d ); ", i)
	}
	b.WriteString("\nEND")
	r := newRig(t, 31, 2, b.String())
	r.launch(t)
	for i, e := range r.engines {
		if !e.Active() {
			t.Fatalf("engine %d not active after multi-chunk INIT", i)
		}
	}
	// And the scenario still counts correctly.
	r.bindSink(t, 1, 7003)
	r.sendUDP(t, 0, 1, 7003, []byte("x"))
	r.run(t, 50*time.Millisecond)
	if v, _ := r.engines[1].CounterValueByName("C3"); v != 1 {
		t.Errorf("C3 = %d after multi-chunk init", v)
	}
}

// TestCascadeLoopDetected compiles a script whose actions oscillate a
// counter, which would cascade forever; the engine must cut the loop and
// report a runtime error instead of hanging.
func TestCascadeLoopDetected(t *testing.T) {
	script := header(2, 1) + `
SCENARIO looper
C: (p0, node1, node2, RECV)
X: (node2)
(TRUE) >> ENABLE_CNTR( C );
((X = 0) && (C = 1)) >> INCR_CNTR( X, 1 );
((X = 1) && (C = 1)) >> RESET_CNTR( X );
END`
	r := newRig(t, 32, 2, script)
	r.bindSink(t, 1, 7000)
	r.launch(t)
	r.sendUDP(t, 0, 1, 7000, []byte("x"))
	r.run(t, time.Second)
	res := r.ctl.Result()
	if len(res.Errors) == 0 {
		t.Fatal("oscillating action cycle not reported")
	}
	found := false
	for _, e := range res.Errors {
		if strings.Contains(e.Text, "cascade depth") {
			found = true
		}
	}
	if !found {
		t.Errorf("errors do not mention the cascade: %v", res.Errors)
	}
}

// TestReorderArmedRemotely fires a REORDER whose executor is a different
// node from the one whose counter triggers it.
func TestReorderArmedRemotely(t *testing.T) {
	script := header(2, 2) + `
SCENARIO remotereorder
TRIG: (p1, node2, node1, RECV)
(TRUE) >> ENABLE_CNTR( TRIG );
((TRIG = 1)) >> REORDER( p0, node1, node2, RECV, 3, [2 3 1] );
END`
	r := newRig(t, 33, 2, script)
	sock, _ := r.hosts[1].UDP.Bind(7000)
	var order []byte
	sock.OnDatagram = func(_ packet.IP, _ uint16, p []byte) { order = append(order, p[0]) }
	r.bindSink(t, 0, 7001)
	r.launch(t)
	// Trigger: node2 -> node1 on p1; the REORDER arms at node2 (RECV
	// executor for p0 node1->node2).
	r.sendUDP(t, 1, 0, 7001, []byte("t"))
	r.run(t, 50*time.Millisecond)
	for i := byte(1); i <= 3; i++ {
		r.sendUDP(t, 0, 1, 7000, []byte{i})
		r.run(t, 10*time.Millisecond)
	}
	r.run(t, 200*time.Millisecond)
	want := []byte{2, 3, 1}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestIndexedClassifierInEngine runs a scenario with the ablation
// classifier enabled and verifies identical observable behaviour.
func TestIndexedClassifierInEngine(t *testing.T) {
	script := header(2, 3) + `
SCENARIO idx
C: (p1, node1, node2, RECV)
(TRUE) >> ENABLE_CNTR( C );
((C = 2)) >> DROP( p1, node1, node2, RECV );
END`
	run := func(indexed bool) (int64, uint64) {
		r := newRig(t, 34, 2, script)
		for _, e := range r.engines {
			e.UseIndexedClassifier = indexed
		}
		sink := r.bindSink(t, 1, 7001)
		r.launch(t)
		for i := 0; i < 4; i++ {
			r.sendUDP(t, 0, 1, 7001, []byte("x"))
			r.run(t, 10*time.Millisecond)
		}
		v, _ := r.engines[1].CounterValueByName("C")
		return v, uint64(*sink)
	}
	c1, d1 := run(false)
	c2, d2 := run(true)
	if c1 != c2 || d1 != d2 {
		t.Errorf("linear (C=%d, delivered=%d) != indexed (C=%d, delivered=%d)", c1, d1, c2, d2)
	}
	if d1 != 3 {
		t.Errorf("delivered %d, want 3 (second packet dropped)", d1)
	}
}

// TestDelayPreservesRelativeOrderOfOthers: a delayed packet must not
// block packets of other types.
func TestDelayDoesNotBlockOtherTraffic(t *testing.T) {
	script := header(2, 2) + `
SCENARIO delayp0
C: (p0, node1, node2, RECV)
(TRUE) >> ENABLE_CNTR( C );
((C = 1)) >> DELAY( p0, node1, node2, RECV, 30ms );
END`
	r := newRig(t, 35, 2, script)
	var arrivals []string
	s0, _ := r.hosts[1].UDP.Bind(7000)
	s0.OnDatagram = func(packet.IP, uint16, []byte) { arrivals = append(arrivals, "p0") }
	s1, _ := r.hosts[1].UDP.Bind(7001)
	s1.OnDatagram = func(packet.IP, uint16, []byte) { arrivals = append(arrivals, "p1") }
	r.launch(t)
	r.sendUDP(t, 0, 1, 7000, []byte("delayed"))
	r.run(t, time.Millisecond)
	r.sendUDP(t, 0, 1, 7001, []byte("fast"))
	r.run(t, 200*time.Millisecond)
	if len(arrivals) != 2 || arrivals[0] != "p1" || arrivals[1] != "p0" {
		t.Errorf("arrivals = %v, want p1 before delayed p0", arrivals)
	}
}

// TestEngineStatsAccumulate sanity-checks the stat counters the
// experiments rely on.
func TestEngineStatsAccumulate(t *testing.T) {
	script := header(2, 2) + `
SCENARIO stats
C: (p0, node1, node2, RECV)
D: (node2)
(TRUE) >> ENABLE_CNTR( C );
((C = 1)) >> RESET_CNTR( C ); INCR_CNTR( D, 1 );
END`
	r := newRig(t, 36, 2, script)
	r.bindSink(t, 1, 7000)
	r.launch(t)
	const n = 10
	for i := 0; i < n; i++ {
		r.sendUDP(t, 0, 1, 7000, []byte("x"))
		r.run(t, 5*time.Millisecond)
	}
	st := r.engines[1].Stats
	if st.PacketsMatched < n {
		t.Errorf("PacketsMatched = %d", st.PacketsMatched)
	}
	// Each packet: C++ (1), RESET C (1), INCR D (1) = 3 updates.
	if st.CounterUpdates < 3*n {
		t.Errorf("CounterUpdates = %d, want >= %d", st.CounterUpdates, 3*n)
	}
	if st.ActionsFired < 2*n {
		t.Errorf("ActionsFired = %d", st.ActionsFired)
	}
	if v, _ := r.engines[1].CounterValueByName("D"); v != n {
		t.Errorf("D = %d", v)
	}
}

var _ = core.DirSend // keep the core import live for the typed constants

// TestOrNotConditions exercises the ||, ! expression paths end to end.
func TestOrNotConditions(t *testing.T) {
	script := header(2, 2) + `
SCENARIO ornot
A: (p0, node1, node2, RECV)
B: (p1, node1, node2, RECV)
D: (node2)
E: (node2)
(TRUE) >> ENABLE_CNTR( A ); ENABLE_CNTR( B );
((A = 1) || (B = 1)) >> RESET_CNTR( A ); RESET_CNTR( B ); INCR_CNTR( D, 1 );
(!(E = 0) && (A = 2)) >> INCR_CNTR( E, 1 );
END`
	r := newRig(t, 44, 2, script)
	r.bindSink(t, 1, 7000)
	r.bindSink(t, 1, 7001)
	r.launch(t)
	r.sendUDP(t, 0, 1, 7000, []byte("a")) // A=1 -> OR fires, resets
	r.run(t, 10*time.Millisecond)
	r.sendUDP(t, 0, 1, 7001, []byte("b")) // B=1 -> OR fires again
	r.run(t, 10*time.Millisecond)
	if v, _ := r.engines[1].CounterValueByName("D"); v != 2 {
		t.Errorf("D = %d, want 2 (both OR arms fired)", v)
	}
	// The NOT rule never fires: E stays 0, so !(E=0) is false.
	if v, _ := r.engines[1].CounterValueByName("E"); v != 0 {
		t.Errorf("E = %d, want 0", v)
	}
}

// TestReorderDefaultReverse omits the permutation: the window must be
// released in reverse order.
func TestReorderDefaultReverse(t *testing.T) {
	script := header(2, 1) + `
SCENARIO revord
C: (p0, node1, node2, RECV)
(TRUE) >> ENABLE_CNTR( C );
((C = 1)) >> REORDER( p0, node1, node2, RECV, 3 );
END`
	r := newRig(t, 45, 2, script)
	sock, _ := r.hosts[1].UDP.Bind(7000)
	var order []byte
	sock.OnDatagram = func(_ packet.IP, _ uint16, p []byte) { order = append(order, p[0]) }
	r.launch(t)
	for i := byte(1); i <= 3; i++ {
		r.sendUDP(t, 0, 1, 7000, []byte{i})
		r.run(t, 5*time.Millisecond)
	}
	r.run(t, 100*time.Millisecond)
	want := []byte{3, 2, 1}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v (default reverse)", order, want)
		}
	}
}
