package core

import (
	"strings"
	"testing"
	"time"
)

func TestRelOpEvalAll(t *testing.T) {
	tests := []struct {
		op   RelOp
		a, b int64
		want bool
	}{
		{OpLT, 1, 2, true}, {OpLT, 2, 2, false},
		{OpLE, 2, 2, true}, {OpLE, 3, 2, false},
		{OpGT, 3, 2, true}, {OpGT, 2, 2, false},
		{OpGE, 2, 2, true}, {OpGE, 1, 2, false},
		{OpEQ, 5, 5, true}, {OpEQ, 5, 6, false},
		{OpNE, 5, 6, true}, {OpNE, 5, 5, false},
		{RelOp(0), 1, 1, false},
	}
	for _, tt := range tests {
		if got := tt.op.Eval(tt.a, tt.b); got != tt.want {
			t.Errorf("%v.Eval(%d,%d) = %v, want %v", tt.op, tt.a, tt.b, got, tt.want)
		}
	}
}

func TestRelOpStrings(t *testing.T) {
	want := map[RelOp]string{
		OpLT: "<", OpLE: "<=", OpGT: ">", OpGE: ">=", OpEQ: "=", OpNE: "!=",
	}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(op), op.String(), s)
		}
	}
	if !strings.Contains(RelOp(42).String(), "42") {
		t.Error("unknown op string")
	}
}

func TestDirectionString(t *testing.T) {
	if DirSend.String() != "SEND" || DirRecv.String() != "RECV" {
		t.Error("direction strings")
	}
	if !strings.Contains(Direction(9).String(), "9") {
		t.Error("unknown direction string")
	}
}

func TestActionKindStrings(t *testing.T) {
	kinds := []ActionKind{
		ActDrop, ActDelay, ActReorder, ActDup, ActModify, ActFail,
		ActStop, ActFlagErr, ActAssignCntr, ActEnableCntr, ActDisableCntr,
		ActIncrCntr, ActDecrCntr, ActResetCntr, ActSetCurTime, ActElapsedTime,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "ActionKind(") {
			t.Errorf("kind %d has no name", int(k))
		}
		if seen[s] {
			t.Errorf("duplicate name %q", s)
		}
		seen[s] = true
	}
	if !strings.HasPrefix(ActionKind(99).String(), "ActionKind(") {
		t.Error("unknown kind string")
	}
	if !ActDrop.IsFault() || !ActFlagErr.IsFault() || ActAssignCntr.IsFault() {
		t.Error("IsFault classification")
	}
}

func TestProgramLookups(t *testing.T) {
	p := &Program{
		Nodes:    []NodeEntry{{Name: "n1"}, {Name: "n2"}},
		Filters:  []FilterEntry{{Name: "f1"}},
		Counters: []CounterEntry{{Name: "c1"}},
	}
	if id, ok := p.NodeByName("n2"); !ok || id != 1 {
		t.Errorf("NodeByName: %d %v", id, ok)
	}
	if _, ok := p.NodeByName("ghost"); ok {
		t.Error("ghost node found")
	}
	if id, ok := p.FilterByName("f1"); !ok || id != 0 {
		t.Errorf("FilterByName: %d %v", id, ok)
	}
	if _, ok := p.FilterByName("ghost"); ok {
		t.Error("ghost filter found")
	}
	if id, ok := p.CounterByName("c1"); !ok || id != 0 {
		t.Errorf("CounterByName: %d %v", id, ok)
	}
	if _, ok := p.CounterByName("ghost"); ok {
		t.Error("ghost counter found")
	}
}

func TestErrorReportString(t *testing.T) {
	r := ErrorReport{Node: 2, Rule: 7, At: time.Second, Text: "FLAG_ERR"}
	s := r.String()
	for _, want := range []string{"node=2", "rule=7", "1s", "FLAG_ERR"} {
		if !strings.Contains(s, want) {
			t.Errorf("%q missing %q", s, want)
		}
	}
}

func TestResultPassedMatrix(t *testing.T) {
	tests := []struct {
		r           Result
		requireStop bool
		want        bool
	}{
		{Result{Started: true}, false, true},
		{Result{Started: false}, false, false},
		{Result{Started: true, Errors: []ErrorReport{{}}}, false, false},
		{Result{Started: true, Stopped: true}, true, true},
		{Result{Started: true}, true, false},
		{Result{Started: true, Inactivity: true}, false, false},
		{Result{Started: true, Inactivity: true}, true, false},
	}
	for i, tt := range tests {
		if got := tt.r.Passed(tt.requireStop); got != tt.want {
			t.Errorf("case %d: Passed(%v) = %v, want %v", i, tt.requireStop, got, tt.want)
		}
	}
}

func TestCondExprTermsCollection(t *testing.T) {
	e := &CondExpr{Op: CondOr, Kids: []*CondExpr{
		{Op: CondTerm, Term: 3},
		{Op: CondNot, Kids: []*CondExpr{{Op: CondAnd, Kids: []*CondExpr{
			{Op: CondTerm, Term: 1},
			{Op: CondTrue},
		}}}},
	}}
	got := e.Terms(nil)
	if len(got) != 2 || got[0] != 3 || got[1] != 1 {
		t.Errorf("Terms = %v", got)
	}
	var nilExpr *CondExpr
	if out := nilExpr.Terms(nil); out != nil {
		t.Errorf("nil expr terms = %v", out)
	}
}

func TestEngineRevive(t *testing.T) {
	e := NewEngine(nil, [6]byte{1})
	e.failed = true
	if !e.Failed() {
		t.Fatal("not failed")
	}
	e.Revive()
	if e.Failed() {
		t.Error("Revive did not clear the crash")
	}
}

func TestRoundUpToJiffy(t *testing.T) {
	tests := []struct {
		in, want time.Duration
	}{
		{0, Jiffy},
		{-time.Millisecond, Jiffy},
		{time.Millisecond, Jiffy},
		{Jiffy, Jiffy},
		{Jiffy + 1, 2 * Jiffy},
		{25 * time.Millisecond, 30 * time.Millisecond},
	}
	for _, tt := range tests {
		if got := roundUpToJiffy(tt.in); got != tt.want {
			t.Errorf("roundUpToJiffy(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}
