package core_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"virtualwire/internal/core"
	"virtualwire/internal/ether"
	"virtualwire/internal/fsl"
	"virtualwire/internal/packet"
	"virtualwire/internal/sim"
	"virtualwire/internal/stack"
)

// rig is a small testbed: n hosts on a shared bus, each with exactly the
// engine between NIC and IP, plus UDP endpoints to generate traffic.
type rig struct {
	sched   *sim.Scheduler
	hosts   []*stack.Host
	engines []*core.Engine
	ctl     *core.Controller
	prog    *core.Program
}

// header returns the FILTER_TABLE/NODE_TABLE prologue for n hosts. The
// filter pN matches UDP packets with destination port 7000+N (UDP ports
// share offsets 34/36 with TCP).
func header(nHosts, nFilters int) string {
	var b strings.Builder
	b.WriteString("FILTER_TABLE\n")
	for i := 0; i < nFilters; i++ {
		fmt.Fprintf(&b, "p%d: (23 1 0x11), (36 2 0x%04x)\n", i, 7000+i)
	}
	b.WriteString("END\nNODE_TABLE\n")
	for i := 0; i < nHosts; i++ {
		fmt.Fprintf(&b, "node%d 00:00:00:00:00:%02x 10.0.0.%d\n", i+1, i+1, i+1)
	}
	b.WriteString("END\n")
	return b.String()
}

func newRig(t testing.TB, seed int64, nHosts int, script string) *rig {
	t.Helper()
	prog, err := fsl.Compile(script)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	s := sim.NewScheduler(seed)
	bus := ether.NewSharedBus(s, ether.BusConfig{})
	r := &rig{sched: s, prog: prog}
	for i := 0; i < nHosts; i++ {
		mac := packet.MAC{0, 0, 0, 0, 0, byte(i + 1)}
		ip := packet.IP{10, 0, 0, byte(i + 1)}
		h := stack.NewHost(s, fmt.Sprintf("node%d", i+1), mac, ip)
		bus.Attach(h.NIC)
		eng := core.NewEngine(s, mac)
		h.Build(eng)
		r.hosts = append(r.hosts, h)
		r.engines = append(r.engines, eng)
	}
	for _, a := range r.hosts {
		for _, b := range r.hosts {
			a.Neighbors[b.IP] = b.MAC
		}
	}
	ctl, err := core.NewController(s, prog, r.engines[0], 0)
	if err != nil {
		t.Fatalf("controller: %v", err)
	}
	r.ctl = ctl
	return r
}

// launch starts the scenario and waits (in virtual time) until started.
func (r *rig) launch(t testing.TB) {
	t.Helper()
	if err := r.ctl.Launch(); err != nil {
		t.Fatalf("launch: %v", err)
	}
	// Step only until the START broadcast so scenario timers (e.g. the
	// inactivity timeout) don't burn down before traffic begins.
	for !r.ctl.Result().Started && r.sched.Step() {
	}
	if !r.ctl.Result().Started {
		t.Fatal("scenario did not start")
	}
	// Let the START broadcast reach every engine.
	r.run(t, 5*time.Millisecond)
}

// sendUDP sends one datagram from host i to host j on dst port.
func (r *rig) sendUDP(t testing.TB, i, j int, dstPort uint16, payload []byte) {
	t.Helper()
	h := r.hosts[i]
	dst := r.hosts[j]
	fr := packet.BuildUDPFrame(h.MAC, dst.MAC, h.IP, dst.IP,
		packet.UDP{SrcPort: 5000, DstPort: dstPort}, payload)
	h.SendFrame(&ether.Frame{Data: fr})
}

// bindSink binds a UDP port on host j and counts deliveries.
func (r *rig) bindSink(t testing.TB, j int, port uint16) *int {
	t.Helper()
	sock, err := r.hosts[j].UDP.Bind(port)
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	n := new(int)
	sock.OnDatagram = func(packet.IP, uint16, []byte) { *n++ }
	return n
}

func (r *rig) run(t testing.TB, d time.Duration) {
	t.Helper()
	if err := r.sched.RunUntil(r.sched.Now() + d); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestInitDistributionAndStart(t *testing.T) {
	script := header(3, 1) + `
SCENARIO init_test
C: (node1)
(TRUE) >> ASSIGN_CNTR( C, 42 );
END`
	r := newRig(t, 1, 3, script)
	r.launch(t)
	// Every engine received the tables over the control plane and the
	// initialization rule ran on node1's engine.
	for i, e := range r.engines {
		if !e.Active() {
			t.Errorf("engine %d not active", i)
		}
		if e.Node() != core.NodeID(i) {
			t.Errorf("engine %d identity = %d", i, e.Node())
		}
	}
	if v, _ := r.engines[0].CounterValueByName("C"); v != 42 {
		t.Errorf("C = %d, want 42 ((TRUE) rule must fire exactly once)", v)
	}
	if r.engines[1].Stats.CtlRcvd == 0 {
		t.Error("engine 1 received no control traffic; INIT went around the wire?")
	}
}

func TestEventCounterMatchesExactly(t *testing.T) {
	script := header(3, 2) + `
SCENARIO counting
C: (p0, node1, node2, RECV)
(TRUE) >> ENABLE_CNTR( C );
END`
	r := newRig(t, 2, 3, script)
	sink := r.bindSink(t, 1, 7000)
	other := r.bindSink(t, 1, 7001)
	sink3 := r.bindSink(t, 2, 7000)
	r.launch(t)
	r.sendUDP(t, 0, 1, 7000, []byte("match"))    // counts
	r.sendUDP(t, 0, 1, 7001, []byte("nomatch"))  // different filter
	r.sendUDP(t, 0, 2, 7000, []byte("wrongdst")) // different node pair
	r.sendUDP(t, 1, 0, 7000, []byte("reverse"))  // wrong direction pair
	r.run(t, time.Second)
	if v, _ := r.engines[1].CounterValueByName("C"); v != 1 {
		t.Errorf("C = %d, want 1", v)
	}
	if *sink != 1 || *other != 1 || *sink3 != 1 {
		t.Errorf("deliveries: %d %d %d (engine must not consume)", *sink, *other, *sink3)
	}
}

func TestEdgeTriggeredRules(t *testing.T) {
	script := header(2, 1) + `
SCENARIO edges
C: (p0, node1, node2, RECV)
D: (node2)
(TRUE) >> ENABLE_CNTR( C );
((C = 1)) >> RESET_CNTR( C ); INCR_CNTR( D, 1 );
END`
	r := newRig(t, 2, 2, script)
	r.bindSink(t, 1, 7000)
	r.launch(t)
	for i := 0; i < 5; i++ {
		r.sendUDP(t, 0, 1, 7000, []byte("x"))
		r.run(t, 10*time.Millisecond)
	}
	if v, _ := r.engines[1].CounterValueByName("D"); v != 5 {
		t.Errorf("D = %d, want 5 (rule must re-fire after each reset)", v)
	}
}

func TestInlineDropFigure5Pattern(t *testing.T) {
	script := header(2, 1) + `
SCENARIO dropfirst
C: (p0, node1, node2, RECV)
(TRUE) >> ENABLE_CNTR( C );
((C > 0) && (C < 2)) >> DROP p0, node1, node2, RECV;
END`
	r := newRig(t, 2, 2, script)
	sink := r.bindSink(t, 1, 7000)
	r.launch(t)
	for i := 0; i < 3; i++ {
		r.sendUDP(t, 0, 1, 7000, []byte("x"))
		r.run(t, 10*time.Millisecond)
	}
	// Packet 1 is counted, then consumed inline; packets 2 and 3 pass.
	if *sink != 2 {
		t.Errorf("delivered %d, want 2 (first dropped inline)", *sink)
	}
	if v, _ := r.engines[1].CounterValueByName("C"); v != 3 {
		t.Errorf("C = %d, want 3 (dropped packet still counted)", v)
	}
	if r.engines[1].Stats.Drops != 1 {
		t.Errorf("drops = %d", r.engines[1].Stats.Drops)
	}
}

func TestDelayJiffyRounding(t *testing.T) {
	script := header(2, 1) + `
SCENARIO delayone
C: (p0, node1, node2, RECV)
(TRUE) >> ENABLE_CNTR( C );
((C = 1)) >> DELAY( p0, node1, node2, RECV, 12ms );
END`
	r := newRig(t, 3, 2, script)
	sock, _ := r.hosts[1].UDP.Bind(7000)
	var arrivals []time.Duration
	sock.OnDatagram = func(packet.IP, uint16, []byte) {
		arrivals = append(arrivals, r.sched.Now())
	}
	r.launch(t)
	t0 := r.sched.Now()
	r.sendUDP(t, 0, 1, 7000, []byte("a"))
	r.run(t, 100*time.Millisecond)
	if len(arrivals) != 1 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	d := arrivals[0] - t0
	// 12 ms rounds up to the 20 ms jiffy boundary.
	if d < 20*time.Millisecond || d > 21*time.Millisecond {
		t.Errorf("delayed delivery after %v, want ~20ms (jiffy rounding)", d)
	}
}

func TestDupAndModify(t *testing.T) {
	script := header(2, 2) + `
SCENARIO dupmod
C: (p0, node1, node2, RECV)
M: (p1, node1, node2, RECV)
(TRUE) >> ENABLE_CNTR( C ); ENABLE_CNTR( M );
((C = 1)) >> DUP( p0, node1, node2, RECV );
((M = 1)) >> MODIFY( p1, node1, node2, RECV, 42, 0xdead );
END`
	r := newRig(t, 3, 2, script)
	dup := r.bindSink(t, 1, 7000)
	sock, _ := r.hosts[1].UDP.Bind(7001)
	var payload []byte
	sock.OnDatagram = func(_ packet.IP, _ uint16, p []byte) {
		payload = append([]byte(nil), p...)
	}
	r.launch(t)
	r.sendUDP(t, 0, 1, 7000, []byte("dupme"))
	r.sendUDP(t, 0, 1, 7001, []byte("modifyme"))
	r.run(t, time.Second)
	if *dup != 2 {
		t.Errorf("DUP delivered %d copies, want 2", *dup)
	}
	// Frame offset 42 is UDP payload byte 0 (14+20+8).
	if len(payload) < 2 || payload[0] != 0xde || payload[1] != 0xad {
		t.Errorf("MODIFY payload = %x, want 0xdead prefix", payload)
	}
}

func TestModifyRandomPerturbs(t *testing.T) {
	script := header(2, 1) + `
SCENARIO modrand
C: (p0, node1, node2, RECV)
(TRUE) >> ENABLE_CNTR( C );
((C = 1)) >> MODIFY( p0, node1, node2, RECV );
END`
	r := newRig(t, 4, 2, script)
	// Random modification may hit the IP header (checksum then fails —
	// "the checksum must be set correctly by the user"), so observe the
	// raw frame at the engine level instead of the UDP payload.
	r.bindSink(t, 1, 7000)
	r.launch(t)
	r.sendUDP(t, 0, 1, 7000, []byte("perturbme-perturbme"))
	r.run(t, time.Second)
	if r.engines[1].Stats.Modifies != 1 {
		t.Errorf("modifies = %d", r.engines[1].Stats.Modifies)
	}
}

func TestReorderPermutation(t *testing.T) {
	script := header(2, 1) + `
SCENARIO reord
C: (p0, node1, node2, RECV)
(TRUE) >> ENABLE_CNTR( C );
((C = 1)) >> REORDER( p0, node1, node2, RECV, 3, [3 1 2] );
END`
	r := newRig(t, 5, 2, script)
	sock, _ := r.hosts[1].UDP.Bind(7000)
	var order []byte
	sock.OnDatagram = func(_ packet.IP, _ uint16, p []byte) { order = append(order, p[0]) }
	r.launch(t)
	for i := byte(1); i <= 4; i++ {
		r.sendUDP(t, 0, 1, 7000, []byte{i})
		r.run(t, 5*time.Millisecond)
	}
	r.run(t, time.Second)
	want := []byte{3, 1, 2, 4} // window of 3 permuted, 4th passes through
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestFailSilencesNode(t *testing.T) {
	script := header(2, 1) + `
SCENARIO failnode
C: (p0, node1, node2, RECV)
(TRUE) >> ENABLE_CNTR( C );
((C = 2)) >> FAIL( node2 );
END`
	r := newRig(t, 6, 2, script)
	sink := r.bindSink(t, 1, 7000)
	r.launch(t)
	for i := 0; i < 5; i++ {
		r.sendUDP(t, 0, 1, 7000, []byte("x"))
		r.run(t, 10*time.Millisecond)
	}
	if *sink != 1 {
		// Packet 2 is counted, the FAIL fires inline during its
		// processing at node2, and like a fault action it takes effect
		// immediately: only packet 1 is delivered.
		t.Errorf("delivered %d, want 1 (node crashed at packet 2)", *sink)
	}
	if !r.engines[1].Failed() {
		t.Error("node2 engine not failed")
	}
}

func TestDistributedRuleExecution(t *testing.T) {
	// A counter observed at node2 arms a DROP executed at node1 — the
	// paper's Section 6.2 distributed pattern in miniature.
	script := header(2, 1) + `
SCENARIO distrib
C: (p0, node1, node2, RECV)
(TRUE) >> ENABLE_CNTR( C );
((C = 3)) >> DROP( p0, node1, node2, SEND );
END`
	r := newRig(t, 7, 2, script)
	sink := r.bindSink(t, 1, 7000)
	r.launch(t)
	for i := 0; i < 6; i++ {
		r.sendUDP(t, 0, 1, 7000, []byte("x"))
		r.run(t, 20*time.Millisecond) // let the status message cross the wire
	}
	// Packets 1..3 delivered; on packet 3 the term status travels to
	// node1 which arms the one-shot DROP on its SEND side; packet 4 is
	// consumed there (never even reaching the wire); 5 and 6 pass.
	if *sink != 5 {
		t.Errorf("delivered %d, want 5", *sink)
	}
	if r.engines[0].Stats.Drops != 1 {
		t.Errorf("node1 drops = %d, want 1", r.engines[0].Stats.Drops)
	}
	if v, _ := r.engines[1].CounterValueByName("C"); v != 5 {
		t.Errorf("C = %d, want 5 (packet 4 dropped before the wire)", v)
	}
}

func TestRemoteCounterValuePropagation(t *testing.T) {
	// A term comparing two counters homed on different nodes exercises
	// the eager value-push path of Section 5.2.
	script := header(2, 2) + `
SCENARIO remoteval
A: (p0, node1, node2, RECV)
B: (p1, node2, node1, RECV)
D: (node2)
(TRUE) >> ENABLE_CNTR( A ); ENABLE_CNTR( B );
((B > A)) >> INCR_CNTR( D, 1 );
END`
	r := newRig(t, 8, 2, script)
	r.bindSink(t, 1, 7000)
	r.bindSink(t, 0, 7001)
	r.launch(t)
	// A=1 (to node2), then B must exceed A: B counts at node1, pushed
	// to node2 where the term lives? No: term home is B's home (LHS) =
	// node1; A's value must be pushed from node2 to node1, and the
	// INCR(D) action lives at node2, so the status flows back. Either
	// way both control paths are exercised.
	r.sendUDP(t, 0, 1, 7000, []byte("a")) // A=1
	r.run(t, 50*time.Millisecond)
	r.sendUDP(t, 1, 0, 7001, []byte("b")) // B=1
	r.run(t, 50*time.Millisecond)
	r.sendUDP(t, 1, 0, 7001, []byte("b")) // B=2 > A=1
	r.run(t, 100*time.Millisecond)
	if v, _ := r.engines[1].CounterValueByName("D"); v != 1 {
		t.Errorf("D = %d, want 1 (B>A must fire once)", v)
	}
}

func TestStopEndsScenario(t *testing.T) {
	script := header(2, 1) + `
SCENARIO stopper 5sec
C: (p0, node1, node2, RECV)
(TRUE) >> ENABLE_CNTR( C );
((C = 2)) >> STOP;
END`
	r := newRig(t, 9, 2, script)
	r.bindSink(t, 1, 7000)
	r.launch(t)
	r.sendUDP(t, 0, 1, 7000, []byte("x"))
	r.run(t, 10*time.Millisecond)
	r.sendUDP(t, 0, 1, 7000, []byte("x"))
	r.run(t, 100*time.Millisecond)
	res := r.ctl.Result()
	if !res.Stopped || res.Inactivity {
		t.Errorf("result = %+v, want explicit stop", res)
	}
	if !res.Passed(true) {
		t.Error("Passed(requireStop) = false")
	}
	for i, e := range r.engines {
		if e.Active() {
			t.Errorf("engine %d still active after shutdown", i)
		}
	}
}

func TestInactivityTimeout(t *testing.T) {
	script := header(2, 1) + `
SCENARIO quiet 200ms
C: (p0, node1, node2, RECV)
(TRUE) >> ENABLE_CNTR( C );
((C = 100)) >> STOP;
END`
	r := newRig(t, 10, 2, script)
	r.bindSink(t, 1, 7000)
	r.launch(t)
	r.sendUDP(t, 0, 1, 7000, []byte("x"))
	r.run(t, time.Second)
	res := r.ctl.Result()
	if !res.Inactivity || res.Stopped {
		t.Errorf("result = %+v, want inactivity termination", res)
	}
	if res.Passed(true) {
		t.Error("inactivity must not count as a pass when STOP is required")
	}
}

func TestActivityDefersInactivity(t *testing.T) {
	script := header(2, 1) + `
SCENARIO busy 100ms
C: (p0, node1, node2, RECV)
(TRUE) >> ENABLE_CNTR( C );
((C = 20)) >> STOP;
END`
	r := newRig(t, 11, 2, script)
	r.bindSink(t, 1, 7000)
	r.launch(t)
	// Send one packet every 20 ms: far slower than the line rate but
	// well within the 100 ms inactivity budget; the scenario must
	// survive to the explicit STOP at packet 20.
	for i := 0; i < 20; i++ {
		r.sendUDP(t, 0, 1, 7000, []byte("x"))
		r.run(t, 20*time.Millisecond)
	}
	r.run(t, 300*time.Millisecond)
	res := r.ctl.Result()
	if !res.Stopped {
		t.Errorf("result = %+v, want STOP at packet 20", res)
	}
}

func TestFlagErrCollected(t *testing.T) {
	script := header(2, 1) + `
SCENARIO flagging
C: (p0, node1, node2, RECV)
(TRUE) >> ENABLE_CNTR( C );
((C = 2)) >> FLAG_ERR;
END`
	r := newRig(t, 12, 2, script)
	r.bindSink(t, 1, 7000)
	r.launch(t)
	for i := 0; i < 3; i++ {
		r.sendUDP(t, 0, 1, 7000, []byte("x"))
		r.run(t, 10*time.Millisecond)
	}
	r.run(t, 100*time.Millisecond)
	res := r.ctl.Result()
	if len(res.Errors) != 1 {
		t.Fatalf("errors = %v, want exactly 1", res.Errors)
	}
	if res.Errors[0].Node != 1 {
		t.Errorf("error from node %d, want node2", res.Errors[0].Node)
	}
	if res.Passed(false) {
		t.Error("Passed = true despite a flagged error")
	}
}

func TestSetCurTimeAndElapsed(t *testing.T) {
	script := header(2, 1) + `
SCENARIO timing
C: (p0, node1, node2, RECV)
T: (node2)
(TRUE) >> ENABLE_CNTR( C );
((C = 1)) >> SET_CURTIME( T );
((C = 2)) >> ELAPSED_TIME( T );
END`
	r := newRig(t, 13, 2, script)
	r.bindSink(t, 1, 7000)
	r.launch(t)
	r.sendUDP(t, 0, 1, 7000, []byte("x"))
	r.run(t, 50*time.Millisecond)
	r.sendUDP(t, 0, 1, 7000, []byte("x"))
	r.run(t, 50*time.Millisecond)
	v, _ := r.engines[1].CounterValueByName("T")
	// The two packets are ~50 ms apart; ELAPSED_TIME stores ms.
	if v < 45 || v > 60 {
		t.Errorf("elapsed = %d ms, want ~50", v)
	}
}

func TestCostModelDelaysForwarding(t *testing.T) {
	script := header(2, 1) + `
SCENARIO costly
C: (p0, node1, node2, RECV)
(TRUE) >> ENABLE_CNTR( C );
END`
	r := newRig(t, 14, 2, script)
	sock, _ := r.hosts[1].UDP.Bind(7000)
	var at time.Duration
	sock.OnDatagram = func(packet.IP, uint16, []byte) { at = r.sched.Now() }
	r.engines[1].Cost = core.CostModel{Base: 2 * time.Millisecond}
	r.launch(t)
	t0 := r.sched.Now()
	r.sendUDP(t, 0, 1, 7000, []byte("x"))
	r.run(t, 100*time.Millisecond)
	if at-t0 < 2*time.Millisecond {
		t.Errorf("delivery after %v, want >= 2ms of modeled processing", at-t0)
	}
}

func TestInactiveEngineIsTransparent(t *testing.T) {
	// Before INIT/START, engines must pass everything through.
	s := sim.NewScheduler(15)
	bus := ether.NewSharedBus(s, ether.BusConfig{})
	h1 := stack.NewHost(s, "a", packet.MAC{0, 0, 0, 0, 0, 1}, packet.IP{10, 0, 0, 1})
	h2 := stack.NewHost(s, "b", packet.MAC{0, 0, 0, 0, 0, 2}, packet.IP{10, 0, 0, 2})
	for _, h := range []*stack.Host{h1, h2} {
		h.Neighbors[h1.IP] = h1.MAC
		h.Neighbors[h2.IP] = h2.MAC
	}
	bus.Attach(h1.NIC)
	bus.Attach(h2.NIC)
	h1.Build(core.NewEngine(s, h1.MAC))
	h2.Build(core.NewEngine(s, h2.MAC))
	sock, _ := h2.UDP.Bind(9)
	got := 0
	sock.OnDatagram = func(packet.IP, uint16, []byte) { got++ }
	cli, _ := h1.UDP.Bind(10)
	if err := cli.SendTo(h2.IP, 9, []byte("x")); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != 1 {
		t.Error("inactive engine swallowed traffic")
	}
}

func TestResultString(t *testing.T) {
	r := core.Result{Stopped: true, StoppedAt: time.Second}
	if !strings.Contains(r.String(), "stopped") {
		t.Errorf("String() = %q", r.String())
	}
	r = core.Result{Inactivity: true}
	if !strings.Contains(r.String(), "inactivity") {
		t.Errorf("String() = %q", r.String())
	}
}
