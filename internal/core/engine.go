package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"time"

	"virtualwire/internal/ether"
	"virtualwire/internal/metrics"
	"virtualwire/internal/packet"
	"virtualwire/internal/sim"
	"virtualwire/internal/stack"
)

// Jiffy is the software-timer granularity of the paper's Linux 2.4
// implementation; DELAY durations are rounded up to it.
const Jiffy = 10 * time.Millisecond

// CostModel charges virtual processing time per intercepted packet,
// reproducing the kernel-module CPU costs behind Figure 8 (see DESIGN.md,
// "Substitutions"). The zero value disables cost accounting entirely and
// the engine forwards synchronously.
type CostModel struct {
	// Base is charged for every intercepted packet.
	Base time.Duration
	// PerTuple is charged per filter tuple compared during
	// classification (the linear-search term).
	PerTuple time.Duration
	// PerCounterUpdate is charged per counter update (table walk).
	PerCounterUpdate time.Duration
	// PerAction is charged per action fired.
	PerAction time.Duration
}

func (c CostModel) enabled() bool {
	return c.Base > 0 || c.PerTuple > 0 || c.PerCounterUpdate > 0 || c.PerAction > 0
}

// EngineStats counts engine events.
type EngineStats struct {
	PacketsIntercepted uint64
	PacketsMatched     uint64
	CounterUpdates     uint64
	TermEvals          uint64
	CondEvals          uint64
	ActionsFired       uint64
	Drops              uint64
	Delays             uint64
	Dups               uint64
	Modifies           uint64
	Reorders           uint64
	FailConsumed       uint64
	CtlSent            uint64
	CtlRcvd            uint64
	CtlBytes           uint64
	InitChunksRcvd     uint64
	InitDupChunks      uint64 // duplicate INIT chunks (controller retries)
	InitReacks         uint64 // acks re-sent for INITs already assembled
}

// FaultEvent records one injected fault for post-run reporting.
type FaultEvent struct {
	At     time.Duration
	Kind   ActionKind
	Filter FilterID
	From   NodeID
	To     NodeID
	Dir    Direction
}

// packetCtx is the in-flight packet an action cascade may apply to.
type packetCtx struct {
	fr       *ether.Frame
	filter   FilterID
	from, to NodeID
	dir      Direction
	consumed bool
	dup      bool
}

type reorderBuf struct {
	action ActionID
	frames []*ether.Frame
	dir    Direction
}

// Engine is the combined Fault Injection Engine and Fault Analysis Engine
// for one testbed node. It implements stack.Layer and is inserted between
// the (R)LL and the protocol under test, exactly where the paper's
// Netfilter hook sits. An Engine is inert (pure pass-through plus control
// message handling) until the controller initializes and starts it.
type Engine struct {
	base  stack.Base
	sched *sim.Scheduler
	mac   packet.MAC
	rng   *rand.Rand // optional pinned fault-randomness source (SetRand)

	prog        *Program
	self        NodeID
	controlNode NodeID
	classifier  *Classifier
	macToNode   map[packet.MAC]NodeID
	active      bool
	failed      bool

	enabled    []bool
	values     []int64
	termStatus []bool
	condStatus []bool
	condHere   []bool

	pending  []ActionID // armed one-shot faults
	reorders []*reorderBuf

	cur          *packetCtx
	cascadeDepth int

	// ctxScratch and matchScratch are reused across top-level process
	// calls to keep the interception hot path allocation-free. A nested
	// interception (an action cascade injecting a frame that re-enters
	// the engine synchronously, e.g. a reorder release answered inline)
	// falls back to heap allocation — detected by e.cur being set.
	ctxScratch   packetCtx
	matchScratch []CounterID

	initChunks [][]byte
	initGot    int
	// initDone records that a program was assembled and loaded over the
	// control plane; later duplicate chunks (lost acks, controller
	// retries, a second Launch) are re-acked instead of re-assembled, so
	// a live scenario is never reset by a stale retransmission.
	initDone bool

	// cachedBlob/cachedProg memoize the last INIT decode so a reused
	// testbed re-running the same scenario skips the gob decode and — via
	// load's pointer-identity fast path — the full table rebuild.
	cachedBlob []byte
	cachedProg *Program

	lastActivity time.Duration
	activitySent bool

	// Cost is the virtual processing-time model (zero = free).
	Cost CostModel
	// Stats accumulates counters.
	Stats EngineStats
	// UseIndexedClassifier selects the ablation classifier when
	// ClassifyStrategy is StrategyDefault (legacy knob).
	UseIndexedClassifier bool
	// ClassifyStrategy selects the classifier search strategy
	// (default/linear/indexed/compiled/auto); Default defers to
	// UseIndexedClassifier. Resolved against the loaded program's table
	// size at load time.
	ClassifyStrategy Strategy

	controller *Controller
	faultLog   []FaultEvent

	// OnLocalError is an optional test hook observing FLAG_ERR firings
	// at this node before they reach the controller.
	OnLocalError func(ErrorReport)
	// OnCounterChange, when set, observes every counter update on this
	// engine (after the new value is stored). Useful for debugging
	// scenario scripts.
	OnCounterChange func(id CounterID, value int64)
}

var _ stack.Layer = (*Engine)(nil)

// NewEngine creates an engine for the host with the given MAC. It stays
// inert until it receives INIT and START from the controller (or is
// loaded directly via LoadLocal).
func NewEngine(sched *sim.Scheduler, mac packet.MAC) *Engine {
	return &Engine{sched: sched, mac: mac, self: -1, controlNode: -1}
}

// SetScheduler rebinds the engine to another scheduler. The sharded
// engine uses this before the run starts to move a node onto its
// shard's event queue; fault timers are created lazily, so a pre-run
// rebind is safe.
func (e *Engine) SetScheduler(s *sim.Scheduler) { e.sched = s }

// SetRand pins the random source for probabilistic faults (CORRUPT byte
// draws). When unset, draws come from the scheduler's shared generator
// (legacy behavior); the sharded engine derives one generator per
// engine from (seed, node order) so draws are interleaving-independent.
func (e *Engine) SetRand(r *rand.Rand) { e.rng = r }

func (e *Engine) rand() *rand.Rand {
	if e.rng != nil {
		return e.rng
	}
	return e.sched.Rand()
}

// SetBelow implements stack.Layer.
func (e *Engine) SetBelow(d stack.Down) { e.base.SetBelow(d) }

// SetAbove implements stack.Layer.
func (e *Engine) SetAbove(u stack.Up) { e.base.SetAbove(u) }

// Node returns this engine's node ID (-1 before initialization).
func (e *Engine) Node() NodeID { return e.self }

// Active reports whether a scenario is running on this engine.
func (e *Engine) Active() bool { return e.active }

// Failed reports whether a FAIL action has crashed this node.
func (e *Engine) Failed() bool { return e.failed }

// Snapshot implements the uniform metrics hook: classification work,
// fault injection counts and control-plane traffic.
func (e *Engine) Snapshot() metrics.Snapshot {
	var sn metrics.Snapshot
	sn.Counter("packets_intercepted", e.Stats.PacketsIntercepted)
	sn.Counter("packets_matched", e.Stats.PacketsMatched)
	sn.Counter("counter_updates", e.Stats.CounterUpdates)
	sn.Counter("term_evals", e.Stats.TermEvals)
	sn.Counter("cond_evals", e.Stats.CondEvals)
	sn.Counter("actions_fired", e.Stats.ActionsFired)
	sn.Counter("drops", e.Stats.Drops)
	sn.Counter("delays", e.Stats.Delays)
	sn.Counter("dups", e.Stats.Dups)
	sn.Counter("modifies", e.Stats.Modifies)
	sn.Counter("reorders", e.Stats.Reorders)
	sn.Counter("fail_consumed", e.Stats.FailConsumed)
	sn.Counter("ctl_sent", e.Stats.CtlSent)
	sn.Counter("ctl_rcvd", e.Stats.CtlRcvd)
	sn.Counter("ctl_bytes", e.Stats.CtlBytes)
	sn.Counter("init_chunks_rcvd", e.Stats.InitChunksRcvd)
	sn.Counter("init_dup_chunks", e.Stats.InitDupChunks)
	sn.Counter("init_reacks", e.Stats.InitReacks)
	sn.Counter("faults_injected", uint64(len(e.faultLog)))
	if e.failed {
		sn.Gauge("failed", 1)
	} else {
		sn.Gauge("failed", 0)
	}
	return sn
}

// CounterValue returns a counter's current value at this engine (the
// authoritative value when the counter is homed here).
func (e *Engine) CounterValue(id CounterID) int64 {
	if e.prog == nil || int(id) >= len(e.values) {
		return 0
	}
	return e.values[id]
}

// CounterValueByName resolves and reads a counter.
func (e *Engine) CounterValueByName(name string) (int64, bool) {
	if e.prog == nil {
		return 0, false
	}
	id, ok := e.prog.CounterByName(name)
	if !ok {
		return 0, false
	}
	return e.values[id], true
}

// LoadLocal installs the program directly, bypassing the INIT exchange.
// The controller uses it for its own co-located engine; tests use it to
// drive an engine standalone.
func (e *Engine) LoadLocal(p *Program, self, controlNode NodeID) {
	e.load(p, self, controlNode)
}

func (e *Engine) load(p *Program, self, controlNode NodeID) {
	strategy := e.ClassifyStrategy.Resolve(e.UseIndexedClassifier, len(p.Filters))
	if e.prog == p && e.self == self && e.controlNode == controlNode &&
		e.classifier != nil && e.classifier.Strategy == strategy {
		// Same tables, same identity (a reused testbed re-running the
		// scenario): rewind the execution state in place instead of
		// reallocating every table-sized slice and map.
		e.classifier.Reset()
		for i := range e.enabled {
			e.enabled[i] = false
		}
		for i := range e.values {
			e.values[i] = 0
		}
		for i := range e.termStatus {
			e.termStatus[i] = false
		}
		for i := range e.condStatus {
			e.condStatus[i] = false
		}
		// condHere depends only on (p, self) — both unchanged.
		e.pending = e.pending[:0]
		e.reorders = e.reorders[:0]
		e.failed = false
		e.active = false
		return
	}
	e.prog = p
	e.self = self
	e.controlNode = controlNode
	e.classifier = NewClassifier(p)
	e.classifier.Strategy = strategy
	if strategy == StrategyCompiled {
		// Adopt the program's shared immutable tree (built once per
		// Program) instead of compiling a private copy per engine.
		e.classifier.UseDispatch(p.CompiledDispatch())
	}
	e.macToNode = make(map[packet.MAC]NodeID, len(p.Nodes))
	for i, n := range p.Nodes {
		e.macToNode[n.MAC] = NodeID(i)
	}
	e.enabled = make([]bool, len(p.Counters))
	e.values = make([]int64, len(p.Counters))
	e.termStatus = make([]bool, len(p.Terms))
	e.condStatus = make([]bool, len(p.Conds))
	e.condHere = make([]bool, len(p.Conds))
	for ci := range p.Conds {
		for _, n := range p.Conds[ci].EvalNodes {
			if n == self {
				e.condHere[ci] = true
			}
		}
	}
	e.pending = nil
	e.reorders = nil
	e.failed = false
	e.active = false
}

// Activate starts scenario execution: initial term statuses are computed
// from zero-valued counters and every condition evaluated here gets its
// initial edge (so (TRUE) initialization rules fire exactly once).
func (e *Engine) Activate() {
	if e.prog == nil {
		return
	}
	e.active = true
	for t := range e.prog.Terms {
		e.termStatus[t] = e.evalTerm(TermID(t))
	}
	all := make([]CondID, 0, len(e.prog.Conds))
	for c := range e.prog.Conds {
		all = append(all, CondID(c))
	}
	e.sweepConds(all)
}

// Deactivate stops scenario execution (frames pass through untouched).
// A FAIL-crashed node stays crashed: the emulated hardware failure does
// not heal when the test case ends — reviving it mid-simulation would
// hand the revenant stale protocol state (e.g. an outdated Rether ring)
// and corrupt everything that runs after the scenario.
func (e *Engine) Deactivate() {
	e.active = false
}

// Revive clears a FAIL crash (the "reboot" between test cases).
func (e *Engine) Revive() { e.failed = false }

// Reset rewinds the engine to its pre-launch state for testbed reuse:
// stats, the fault log, pending faults and the INIT reassembly state are
// cleared, while the loaded tables and the INIT decode cache survive so
// the next launch of the same scenario hits load's in-place fast path.
func (e *Engine) Reset() {
	e.Stats = EngineStats{}
	e.faultLog = e.faultLog[:0]
	e.pending = e.pending[:0]
	e.reorders = e.reorders[:0]
	e.cur = nil
	e.cascadeDepth = 0
	e.active = false
	e.failed = false
	e.initChunks = nil
	e.initGot = 0
	e.initDone = false
	e.lastActivity = 0
	e.activitySent = false
}

// --- stack.Layer data path ---

// SendDown implements stack.Layer (outbound interception).
func (e *Engine) SendDown(fr *ether.Frame) {
	if fr.EtherType() == packet.EtherTypeVWCtl {
		e.base.PassDown(fr)
		return
	}
	if e.failed {
		e.Stats.FailConsumed++
		return
	}
	if !e.active {
		e.base.PassDown(fr)
		return
	}
	consumed, cost, dup := e.process(fr, DirSend)
	e.forward(fr, DirSend, consumed, cost, dup)
}

// DeliverUp implements stack.Layer (inbound interception).
func (e *Engine) DeliverUp(fr *ether.Frame) {
	if fr.EtherType() == packet.EtherTypeVWCtl {
		e.handleControlFrame(fr)
		return
	}
	if e.failed {
		e.Stats.FailConsumed++
		return
	}
	if !e.active {
		e.base.PassUp(fr)
		return
	}
	consumed, cost, dup := e.process(fr, DirRecv)
	e.forward(fr, DirRecv, consumed, cost, dup)
}

// forward continues a frame's journey, charging the cost model's virtual
// processing delay and emitting DUP copies.
func (e *Engine) forward(fr *ether.Frame, dir Direction, consumed bool, cost time.Duration, dup bool) {
	if consumed {
		return
	}
	if e.failed {
		// A FAIL fired while this very packet was being processed: the
		// crash takes effect immediately.
		e.Stats.FailConsumed++
		return
	}
	if cost > 0 {
		// Only the delayed path pays for a closure; the common zero-cost
		// path emits inline, allocation-free.
		e.sched.After(cost, "vw.cost", func() {
			e.inject(fr, dir)
			if dup {
				e.inject(fr.Clone(), dir)
			}
		})
		return
	}
	e.inject(fr, dir)
	if dup {
		e.inject(fr.Clone(), dir)
	}
}

// inject re-introduces a frame beyond the engine in the given direction.
func (e *Engine) inject(fr *ether.Frame, dir Direction) {
	if dir == DirSend {
		e.base.PassDown(fr)
		return
	}
	e.base.PassUp(fr)
}

// process runs Figure 4(b)'s control flow for one packet: classify,
// update counters (cascading through terms, conditions and actions —
// fault actions may consume the packet inline), then apply any armed
// one-shot faults.
func (e *Engine) process(fr *ether.Frame, dir Direction) (consumed bool, cost time.Duration, dup bool) {
	e.Stats.PacketsIntercepted++
	tuplesBefore := e.classifier.TuplesCompared + e.classifier.NodeTests
	updatesBefore := e.Stats.CounterUpdates
	actionsBefore := e.Stats.ActionsFired

	flt := e.classifier.Classify(fr)
	if flt >= 0 {
		e.Stats.PacketsMatched++
		e.noteActivity()
		from, okF := e.macToNode[fr.Src()]
		to, okT := e.macToNode[fr.Dst()]
		if !okF {
			from = -1
		}
		if !okT {
			to = -1
		}
		var ctx *packetCtx
		var matched []CounterID
		nested := e.cur != nil
		if nested {
			ctx = &packetCtx{fr: fr, filter: flt, from: from, to: to, dir: dir}
		} else {
			ctx = &e.ctxScratch
			*ctx = packetCtx{fr: fr, filter: flt, from: from, to: to, dir: dir}
			matched = e.matchScratch[:0]
		}
		e.cur = ctx
		// 1. Counters (before faults: a dropped packet is still
		// counted, which Figure 5's SYNACK-drop rule relies on).
		// The matching set is snapshotted first: an ENABLE_CNTR fired
		// by an earlier counter's cascade takes effect from the NEXT
		// packet, not retroactively for this one (Figure 5's script
		// depends on the handshake ACK enabling DATA without being
		// counted by it).
		for ci := range e.prog.Counters {
			c := &e.prog.Counters[ci]
			if c.Kind != CounterEvent || c.Home != e.self || !e.enabled[ci] {
				continue
			}
			if c.Filter != flt || c.From != from || c.To != to || c.Dir != dir {
				continue
			}
			matched = append(matched, CounterID(ci))
		}
		for _, ci := range matched {
			e.bumpCounter(ci, e.values[ci]+1)
		}
		// 2. Armed one-shot faults.
		if !ctx.consumed {
			e.applyPending(ctx)
		}
		e.cur = nil
		consumed = ctx.consumed
		dup = ctx.dup
		if !nested {
			e.matchScratch = matched[:0]
		}
	}

	if e.Cost.enabled() {
		// Dispatch-tree field probes are comparisons too: charging them
		// at PerTuple keeps the cost model honest across strategies (and
		// is what flattens the Figure 8 curve rather than zeroing it).
		cost = e.Cost.Base +
			time.Duration(e.classifier.TuplesCompared+e.classifier.NodeTests-tuplesBefore)*e.Cost.PerTuple +
			time.Duration(e.Stats.CounterUpdates-updatesBefore)*e.Cost.PerCounterUpdate +
			time.Duration(e.Stats.ActionsFired-actionsBefore)*e.Cost.PerAction
	}
	return consumed, cost, dup
}

// --- execution-state cascade (Figure 3) ---

const maxCascadeDepth = 1000

func (e *Engine) bumpCounter(id CounterID, v int64) {
	e.cascadeDepth++
	defer func() { e.cascadeDepth-- }()
	if e.cascadeDepth > maxCascadeDepth {
		e.runtimeError(fmt.Sprintf("cascade depth exceeded updating counter %q (action cycle in script?)",
			e.prog.Counters[id].Name))
		return
	}
	e.Stats.CounterUpdates++
	e.values[id] = v
	if e.OnCounterChange != nil {
		e.OnCounterChange(id, v)
	}
	c := &e.prog.Counters[id]
	for _, n := range c.RemoteNodes {
		e.sendCtl(n, &Msg{Kind: MsgCounterValue, From: e.self, Counter: id, Value: v})
	}
	e.reevalTerms(c.Terms)
}

// reevalTerms re-evaluates every listed term homed here, propagates
// status changes, and then sweeps the affected conditions exactly once.
// All terms update before any condition evaluates: a condition combining
// two terms of the same counter (e.g. CWND<=SSTHRESH and CWND>SSTHRESH)
// must never see a half-updated mixture.
func (e *Engine) reevalTerms(ts []TermID) {
	// Stack-backed scratch: reevalTerms can recurse through action
	// execution (cond fires -> counter op -> reevalTerms), so the buffer
	// must be per-call, and real scripts touch only a handful of conds.
	var buf [8]CondID
	affected := buf[:0]
	for _, t := range ts {
		term := &e.prog.Terms[t]
		if term.Home != e.self {
			continue
		}
		newS := e.evalTerm(t)
		if newS == e.termStatus[t] {
			continue
		}
		e.termStatus[t] = newS
		for _, n := range term.StatusNodes {
			e.sendCtl(n, &Msg{Kind: MsgTermStatus, From: e.self, Term: t, Status: newS})
		}
		for _, c := range term.Conds {
			affected = appendUniqueCondID(affected, c)
		}
	}
	if len(affected) > 0 {
		e.sweepConds(affected)
	}
}

func appendUniqueCondID(s []CondID, v CondID) []CondID {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

func (e *Engine) evalTerm(t TermID) bool {
	term := &e.prog.Terms[t]
	e.Stats.TermEvals++
	lhs := e.operandValue(term.LHS)
	rhs := e.operandValue(term.RHS)
	return term.Op.Eval(lhs, rhs)
}

func (e *Engine) operandValue(o Operand) int64 {
	if o.IsConst {
		return o.Const
	}
	return e.values[o.Counter]
}

// sweepConds re-evaluates the conditions affected by one term change in
// two phases, mirroring Figure 4(b): first every condition is evaluated
// against the state as it stands at the event, then the false-to-true
// ones fire in rule order. The two phases matter: an action of an
// earlier rule may reset the very counter a later rule's condition
// tests (Figure 6's TokensTo2 does exactly this), and the later rule
// must still see the pre-action state.
func (e *Engine) sweepConds(conds []CondID) {
	var fired []CondID
	for _, c := range conds {
		if !e.condHere[c] {
			continue
		}
		e.Stats.CondEvals++
		newS := e.evalExpr(e.prog.Conds[c].Expr)
		old := e.condStatus[c]
		e.condStatus[c] = newS
		if newS && !old {
			fired = append(fired, c)
		}
	}
	for _, c := range fired {
		e.fireCond(c)
	}
}

func (e *Engine) evalExpr(x *CondExpr) bool {
	switch x.Op {
	case CondTrue:
		return true
	case CondTerm:
		return e.termStatus[x.Term]
	case CondAnd:
		return e.evalExpr(x.Kids[0]) && e.evalExpr(x.Kids[1])
	case CondOr:
		return e.evalExpr(x.Kids[0]) || e.evalExpr(x.Kids[1])
	case CondNot:
		return !e.evalExpr(x.Kids[0])
	}
	return false
}

func (e *Engine) fireCond(c CondID) {
	cond := &e.prog.Conds[c]
	for _, a := range cond.Actions {
		if e.prog.Actions[a].Node != e.self {
			continue
		}
		e.execAction(a, cond.Rule)
	}
}

// --- actions ---

func (e *Engine) execAction(id ActionID, rule int) {
	e.Stats.ActionsFired++
	a := &e.prog.Actions[id]
	switch a.Kind {
	case ActDrop, ActDelay, ActReorder, ActDup, ActModify:
		if e.cur != nil && !e.cur.consumed && e.matchesCur(a) {
			e.applyFault(id, e.cur)
			return
		}
		// Arm for the next matching packet.
		e.pending = append(e.pending, id)
	case ActFail:
		e.failed = true
	case ActStop:
		e.sendCtl(e.controlNode, &Msg{
			Kind: MsgStop, From: e.self, Rule: rule, AtNanos: int64(e.sched.Now()),
		})
	case ActFlagErr:
		rep := ErrorReport{Node: e.self, Rule: rule, At: e.sched.Now(), Text: "FLAG_ERR"}
		if e.OnLocalError != nil {
			e.OnLocalError(rep)
		}
		e.sendCtl(e.controlNode, &Msg{
			Kind: MsgError, From: e.self, Rule: rule, AtNanos: int64(e.sched.Now()), Message: rep.Text,
		})
	case ActAssignCntr:
		e.bumpCounterEnable(a.Counter)
		e.bumpCounter(a.Counter, a.Value)
	case ActEnableCntr:
		e.bumpCounterEnable(a.Counter)
	case ActDisableCntr:
		e.enabled[a.Counter] = false
	case ActIncrCntr:
		e.bumpCounter(a.Counter, e.values[a.Counter]+a.Value)
	case ActDecrCntr:
		e.bumpCounter(a.Counter, e.values[a.Counter]-a.Value)
	case ActResetCntr:
		e.bumpCounter(a.Counter, 0)
	case ActSetCurTime:
		e.bumpCounter(a.Counter, int64(e.sched.Now()/time.Millisecond))
	case ActElapsedTime:
		now := int64(e.sched.Now() / time.Millisecond)
		e.bumpCounter(a.Counter, now-e.values[a.Counter])
	}
}

func (e *Engine) bumpCounterEnable(id CounterID) {
	e.enabled[id] = true
}

// ExecCounterOp applies a counter primitive programmatically, with the
// same semantics (including the term/condition cascade) as the
// corresponding script action. It exists for tooling and model-based
// tests; kind must be one of the ActXxxCntr/ActSetCurTime/
// ActElapsedTime kinds.
func (e *Engine) ExecCounterOp(kind ActionKind, id CounterID, v int64) {
	if e.prog == nil || int(id) >= len(e.values) || kind.IsFault() {
		return
	}
	// Inlined from execAction's counter arm rather than appending a
	// synthetic entry to e.prog.Actions: the Program may be shared
	// read-only across testbeds (CompileScript), so the engine must never
	// mutate it, even transiently.
	e.Stats.ActionsFired++
	switch kind {
	case ActAssignCntr:
		e.bumpCounterEnable(id)
		e.bumpCounter(id, v)
	case ActEnableCntr:
		e.bumpCounterEnable(id)
	case ActDisableCntr:
		e.enabled[id] = false
	case ActIncrCntr:
		e.bumpCounter(id, e.values[id]+v)
	case ActDecrCntr:
		e.bumpCounter(id, e.values[id]-v)
	case ActResetCntr:
		e.bumpCounter(id, 0)
	case ActSetCurTime:
		e.bumpCounter(id, int64(e.sched.Now()/time.Millisecond))
	case ActElapsedTime:
		now := int64(e.sched.Now() / time.Millisecond)
		e.bumpCounter(id, now-e.values[id])
	}
}

// matchesCur reports whether a fault action applies to the packet being
// processed.
func (e *Engine) matchesCur(a *ActionEntry) bool {
	c := e.cur
	return a.Filter == c.filter && a.From == c.from && a.To == c.to && a.Dir == c.dir
}

// applyPending applies armed one-shot faults to the current packet.
func (e *Engine) applyPending(ctx *packetCtx) {
	// First, feed active reorder buffers.
	for i, rb := range e.reorders {
		a := &e.prog.Actions[rb.action]
		if a.Filter == ctx.filter && a.From == ctx.from && a.To == ctx.to && a.Dir == ctx.dir {
			rb.frames = append(rb.frames, ctx.fr)
			ctx.consumed = true
			if len(rb.frames) >= a.Count {
				e.releaseReorder(rb)
				e.reorders = append(e.reorders[:i], e.reorders[i+1:]...)
			}
			return
		}
	}
	keep := e.pending[:0]
	for _, id := range e.pending {
		a := &e.prog.Actions[id]
		if ctx.consumed || !e.matchesCur(a) {
			keep = append(keep, id)
			continue
		}
		e.applyFault(id, ctx)
	}
	e.pending = keep
}

// FaultLog returns the faults injected by this engine, in order.
func (e *Engine) FaultLog() []FaultEvent {
	out := make([]FaultEvent, len(e.faultLog))
	copy(out, e.faultLog)
	return out
}

// applyFault performs one fault on the given packet.
func (e *Engine) applyFault(id ActionID, ctx *packetCtx) {
	a := &e.prog.Actions[id]
	e.faultLog = append(e.faultLog, FaultEvent{
		At: e.sched.Now(), Kind: a.Kind,
		Filter: a.Filter, From: a.From, To: a.To, Dir: a.Dir,
	})
	switch a.Kind {
	case ActDrop:
		e.Stats.Drops++
		ctx.consumed = true
	case ActDelay:
		e.Stats.Delays++
		ctx.consumed = true
		d := roundUpToJiffy(a.Duration)
		fr, dir := ctx.fr, ctx.dir
		e.sched.After(d, "vw.delay", func() { e.inject(fr, dir) })
	case ActDup:
		e.Stats.Dups++
		ctx.dup = true
	case ActModify:
		e.Stats.Modifies++
		e.modify(ctx.fr, a)
	case ActReorder:
		e.Stats.Reorders++
		ctx.consumed = true
		rb := &reorderBuf{action: id, dir: ctx.dir}
		rb.frames = append(rb.frames, ctx.fr)
		e.reorders = append(e.reorders, rb)
	}
}

// roundUpToJiffy models the 10 ms kernel software-timer granularity.
func roundUpToJiffy(d time.Duration) time.Duration {
	if d <= 0 {
		return Jiffy
	}
	j := (d + Jiffy - 1) / Jiffy
	return j * Jiffy
}

// modify overwrites bytes per the action's pattern, or perturbs one
// random byte past the Ethernet header (the checksum is deliberately not
// fixed up: "The checksum in such a case must be set correctly by the
// user", Section 5.2).
func (e *Engine) modify(fr *ether.Frame, a *ActionEntry) {
	if len(a.Pattern) > 0 {
		for i, b := range a.Pattern {
			off := a.PatternOff + i
			if off >= 0 && off < len(fr.Data) {
				fr.Data[off] = b
			}
		}
		return
	}
	if len(fr.Data) <= packet.EthHeaderLen {
		return
	}
	i := packet.EthHeaderLen + e.rand().Intn(len(fr.Data)-packet.EthHeaderLen)
	old := fr.Data[i]
	for fr.Data[i] == old {
		fr.Data[i] = byte(e.rand().Intn(256))
	}
}

// releaseReorder emits the buffered window in the configured permutation
// (reverse order when none given), back-to-back — the paper releases the
// burst "when the bottom half is scheduled next".
func (e *Engine) releaseReorder(rb *reorderBuf) {
	a := &e.prog.Actions[rb.action]
	order := a.Order
	if len(order) == 0 {
		order = make([]int, len(rb.frames))
		for i := range order {
			order[i] = len(rb.frames) - i
		}
	}
	for _, pos := range order {
		if pos >= 1 && pos <= len(rb.frames) {
			e.inject(rb.frames[pos-1], rb.dir)
		}
	}
}

// --- runtime errors & activity ---

func (e *Engine) runtimeError(text string) {
	e.sendCtl(e.controlNode, &Msg{
		Kind: MsgError, From: e.self, AtNanos: int64(e.sched.Now()),
		Message: "runtime: " + text,
	})
}

// noteActivity rate-limits liveness reports feeding the controller's
// inactivity timer (Section 6.2's "1sec" scenario timeout).
func (e *Engine) noteActivity() {
	timeout := e.prog.InactivityTimeout
	if timeout <= 0 {
		return
	}
	now := e.sched.Now()
	if e.activitySent && now-e.lastActivity < timeout/4 {
		return
	}
	e.lastActivity = now
	e.activitySent = true
	e.sendCtl(e.controlNode, &Msg{Kind: MsgActivity, From: e.self, AtNanos: int64(now)})
}

// --- control plane ---

// sendCtl routes a message to another node's engine (or locally when the
// destination is this node).
func (e *Engine) sendCtl(to NodeID, m *Msg) {
	if to < 0 {
		return
	}
	if to == e.self {
		e.handleCtl(m)
		return
	}
	fr, err := encodeMsg(e.mac, e.prog.Nodes[to].MAC, m)
	if err != nil {
		return
	}
	e.Stats.CtlSent++
	e.Stats.CtlBytes += uint64(len(fr.Data))
	e.base.PassDown(fr)
}

// injectCtl transmits a pre-built control frame (used by the controller
// before the local engine is loaded).
func (e *Engine) injectCtl(fr *ether.Frame) {
	e.Stats.CtlSent++
	e.Stats.CtlBytes += uint64(len(fr.Data))
	e.base.PassDown(fr)
}

func (e *Engine) handleControlFrame(fr *ether.Frame) {
	dst := fr.Dst()
	if dst != e.mac && !dst.IsBroadcast() {
		return
	}
	var m Msg
	if err := decodeMsg(fr, &m); err != nil {
		return
	}
	e.Stats.CtlRcvd++
	e.handleCtl(&m)
}

func (e *Engine) handleCtl(m *Msg) {
	switch m.Kind {
	case MsgInitChunk:
		e.handleInitChunk(m)
	case MsgStart:
		e.Activate()
	case MsgShutdown:
		e.Deactivate()
	case MsgCounterValue:
		if e.prog == nil || int(m.Counter) >= len(e.values) {
			return
		}
		e.values[m.Counter] = m.Value
		e.reevalTerms(e.prog.Counters[m.Counter].Terms)
	case MsgTermStatus:
		if e.prog == nil || int(m.Term) >= len(e.termStatus) {
			return
		}
		if e.termStatus[m.Term] == m.Status {
			return
		}
		e.termStatus[m.Term] = m.Status
		e.sweepConds(e.prog.Terms[m.Term].Conds)
	case MsgInitAck, MsgError, MsgStop, MsgActivity:
		if e.controller != nil {
			e.controller.handle(m)
		}
	}
}

// SeedProgramCache pre-populates the INIT decode memo with a known
// (blob, program) pair — the one a CompiledScript carries. When the
// wire-reassembled INIT blob matches, the engine adopts the shared
// program directly and never gob-decodes at all. blob must be exactly
// EncodeProgram(p).
func (e *Engine) SeedProgramCache(blob []byte, p *Program) {
	e.cachedBlob = blob
	e.cachedProg = p
}

// handleInitChunk reassembles the INIT distribution idempotently: chunks
// may arrive duplicated, reordered, or partially (the controller re-sends
// the full sequence on its retry timer until acked). Once the program is
// loaded, any further chunk — a retry racing the ack, or a second Launch
// — is answered with a fresh ack rather than a destructive re-assembly.
func (e *Engine) handleInitChunk(m *Msg) {
	if m.ChunkTotal <= 0 || m.ChunkIndex < 0 || m.ChunkIndex >= m.ChunkTotal {
		return
	}
	e.Stats.InitChunksRcvd++
	if e.initDone && e.initChunks == nil {
		// Already assembled and loaded: the ack was lost or the
		// controller retried before it arrived. Re-ack so it can advance.
		e.Stats.InitDupChunks++
		e.Stats.InitReacks++
		e.sendCtl(e.controlNode, &Msg{Kind: MsgInitAck, From: e.self})
		return
	}
	if e.initChunks == nil || len(e.initChunks) != m.ChunkTotal {
		e.initChunks = make([][]byte, m.ChunkTotal)
		e.initGot = 0
	}
	if e.initChunks[m.ChunkIndex] == nil {
		e.initChunks[m.ChunkIndex] = m.ChunkData
		e.initGot++
	} else {
		e.Stats.InitDupChunks++
	}
	if e.initGot < m.ChunkTotal {
		return
	}
	var blob []byte
	for _, c := range e.initChunks {
		blob = append(blob, c...)
	}
	e.initChunks = nil
	p := e.cachedProg
	if p == nil || !bytes.Equal(blob, e.cachedBlob) {
		decoded, err := decodeProgram(blob)
		if err != nil {
			return
		}
		p = decoded
		e.cachedBlob = blob
		e.cachedProg = p
	}
	e.load(p, m.NodeID, m.ControlNode)
	e.initDone = true
	e.sendCtl(e.controlNode, &Msg{Kind: MsgInitAck, From: e.self})
}
