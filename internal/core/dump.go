package core

import (
	"fmt"
	"strings"
)

// Dump renders the six tables in a human-readable layout (used by
// cmd/fslcheck and the compiler's golden tests). The format mirrors
// Figure 3's table organization.
func (p *Program) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SCENARIO %s", p.Name)
	if p.InactivityTimeout > 0 {
		fmt.Fprintf(&b, " (inactivity timeout %v)", p.InactivityTimeout)
	}
	b.WriteString("\n")

	if len(p.Vars) > 0 {
		fmt.Fprintf(&b, "\nVARS: %s\n", strings.Join(p.Vars, ", "))
	}

	b.WriteString("\nFILTER TABLE\n")
	for i, f := range p.Filters {
		fmt.Fprintf(&b, "  [%d] %s:", i, f.Name)
		for _, tu := range f.Tuples {
			if tu.Var >= 0 {
				fmt.Fprintf(&b, " (%d %d $%s)", tu.Off, tu.Len, p.Vars[tu.Var])
				continue
			}
			if tu.Mask != nil {
				fmt.Fprintf(&b, " (%d %d 0x%x 0x%x)", tu.Off, tu.Len, tu.Mask, tu.Pattern)
				continue
			}
			fmt.Fprintf(&b, " (%d %d 0x%x)", tu.Off, tu.Len, tu.Pattern)
		}
		b.WriteString("\n")
	}

	b.WriteString("\nNODE TABLE\n")
	for i, n := range p.Nodes {
		fmt.Fprintf(&b, "  [%d] %s %s %s\n", i, n.Name, n.MAC, n.IP)
	}

	b.WriteString("\nCOUNTER TABLE\n")
	for i, c := range p.Counters {
		if c.Kind == CounterLocal {
			fmt.Fprintf(&b, "  [%d] %s: local @%s", i, c.Name, p.Nodes[c.Home].Name)
		} else {
			fmt.Fprintf(&b, "  [%d] %s: %s %s->%s %s @%s", i, c.Name,
				p.Filters[c.Filter].Name, p.Nodes[c.From].Name, p.Nodes[c.To].Name,
				c.Dir, p.Nodes[c.Home].Name)
		}
		if len(c.Terms) > 0 {
			fmt.Fprintf(&b, " terms=%v", c.Terms)
		}
		if len(c.RemoteNodes) > 0 {
			fmt.Fprintf(&b, " pushTo=%v", c.RemoteNodes)
		}
		b.WriteString("\n")
	}

	b.WriteString("\nTERM TABLE\n")
	for i, t := range p.Terms {
		fmt.Fprintf(&b, "  [%d] %s %s %s @%s", i,
			p.operandName(t.LHS), t.Op, p.operandName(t.RHS), p.Nodes[t.Home].Name)
		if len(t.Conds) > 0 {
			fmt.Fprintf(&b, " conds=%v", t.Conds)
		}
		if len(t.StatusNodes) > 0 {
			fmt.Fprintf(&b, " statusTo=%v", t.StatusNodes)
		}
		b.WriteString("\n")
	}

	b.WriteString("\nCONDITION TABLE\n")
	for i, c := range p.Conds {
		fmt.Fprintf(&b, "  [%d] rule %d: %s -> actions=%v eval@", i, c.Rule, p.exprString(c.Expr), c.Actions)
		names := make([]string, 0, len(c.EvalNodes))
		for _, n := range c.EvalNodes {
			names = append(names, p.Nodes[n].Name)
		}
		b.WriteString(strings.Join(names, ","))
		b.WriteString("\n")
	}

	b.WriteString("\nACTION TABLE\n")
	for i, a := range p.Actions {
		fmt.Fprintf(&b, "  [%d] %s @%s", i, a.Kind, p.Nodes[a.Node].Name)
		switch a.Kind {
		case ActDrop, ActDelay, ActReorder, ActDup, ActModify:
			fmt.Fprintf(&b, " %s %s->%s %s", p.Filters[a.Filter].Name,
				p.Nodes[a.From].Name, p.Nodes[a.To].Name, a.Dir)
			if a.Kind == ActDelay {
				fmt.Fprintf(&b, " %v", a.Duration)
			}
			if a.Kind == ActReorder {
				fmt.Fprintf(&b, " n=%d order=%v", a.Count, a.Order)
			}
			if a.Kind == ActModify && len(a.Pattern) > 0 {
				fmt.Fprintf(&b, " @%d=0x%x", a.PatternOff, a.Pattern)
			}
		case ActAssignCntr, ActIncrCntr, ActDecrCntr:
			fmt.Fprintf(&b, " %s %d", p.Counters[a.Counter].Name, a.Value)
		case ActEnableCntr, ActDisableCntr, ActResetCntr, ActSetCurTime, ActElapsedTime:
			fmt.Fprintf(&b, " %s", p.Counters[a.Counter].Name)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func (p *Program) operandName(o Operand) string {
	if o.IsConst {
		return fmt.Sprintf("%d", o.Const)
	}
	return p.Counters[o.Counter].Name
}

func (p *Program) exprString(x *CondExpr) string {
	switch x.Op {
	case CondTrue:
		return "TRUE"
	case CondTerm:
		t := p.Terms[x.Term]
		return fmt.Sprintf("(%s %s %s)", p.operandName(t.LHS), t.Op, p.operandName(t.RHS))
	case CondAnd:
		return fmt.Sprintf("(%s && %s)", p.exprString(x.Kids[0]), p.exprString(x.Kids[1]))
	case CondOr:
		return fmt.Sprintf("(%s || %s)", p.exprString(x.Kids[0]), p.exprString(x.Kids[1]))
	case CondNot:
		return fmt.Sprintf("!%s", p.exprString(x.Kids[0]))
	}
	return "?"
}
