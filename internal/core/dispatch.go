package core

// Compiled filter dispatch: the filter table lowered into an immutable
// decision tree over discriminating (off, len) fields, built once (at
// CompileScript time, alongside the INIT blob) and shared read-only by
// every engine adopting the program. Per-packet classification descends
// the tree — one field probe per internal node — to a leaf holding the
// small ordered candidate list that could still match, then verifies those
// candidates exactly like the linear scan. First-match priority, masked
// tuples and variable-binding semantics are preserved by construction:
//
//   - Only exact literal tuples (Var < 0, Mask == nil, Len <= 8) are used
//     as tree discriminators. Masked and VAR tuples cannot partition
//     frames by equality, so filters relying on them at the tested field
//     travel down every edge as "residual" candidates.
//   - A leaf's candidate list is the union of the filters keyed along the
//     taken path plus all residuals, kept sorted in table order — a
//     superset of the filters that could match the frame. Verifying them
//     in order with the same tuple matcher the linear scan uses therefore
//     returns exactly the linear winner, and scans a subset of the filters
//     the linear scan would have touched (FiltersScanned monotonicity).
//   - A frame too short to contain a node's field takes the residual edge:
//     every keyed filter would have failed its discriminator tuple anyway.
type Dispatch struct {
	nodes []dispatchNode
	shape DispatchShape
}

// dispatchNode is one tree node. length == 0 marks a leaf (candidates in
// filter-table order); otherwise the node probes Data[off : off+length],
// follows edges[packedValue], and falls back to miss for unkeyed values
// and short frames. miss == -1 means no residual candidates exist.
type dispatchNode struct {
	off, length int
	edges       map[uint64]int32
	miss        int32
	candidates  []int32
}

// DispatchShape summarizes the compiled tree, for tooling (cmd/fslcheck)
// and degenerate-table diagnostics.
type DispatchShape struct {
	Filters int `json:"filters"`
	// Nodes counts tree nodes (internal + leaves).
	Nodes  int `json:"nodes"`
	Leaves int `json:"leaves"`
	// Depth is the longest root-to-leaf path in internal-node probes.
	Depth int `json:"depth"`
	// MaxFanout is the widest keyed edge set of any internal node.
	MaxFanout int `json:"max_fanout"`
	// MaxLeafCandidates is the longest candidate list any single frame can
	// be verified against.
	MaxLeafCandidates int `json:"max_leaf_candidates"`
	// WorstCaseTuples bounds the tuple comparisons of one classification:
	// the costliest leaf's candidate tuples (field probes are counted
	// separately, in Classifier.NodeTests).
	WorstCaseTuples int `json:"worst_case_tuples"`
}

// Degenerate reports a table the tree could not partition at all: every
// filter ends up in one leaf, so compiled dispatch degrades to the linear
// scan (plus nothing — the root is the leaf). Single-filter tables are
// trivially flat, not degenerate.
func (s DispatchShape) Degenerate() bool {
	return s.Filters > 1 && s.MaxLeafCandidates == s.Filters
}

// Shape returns the tree summary.
func (d *Dispatch) Shape() DispatchShape { return d.shape }

// maxDiscriminatorLen bounds discriminator fields to what packs into a
// uint64 edge key.
const maxDiscriminatorLen = 8

// BuildDispatch compiles a filter table into a dispatch tree. The result
// is immutable and safe for concurrent use by any number of classifiers.
func BuildDispatch(filters []FilterEntry) *Dispatch {
	b := &dispatchBuilder{
		filters: filters,
		// budget caps tree growth on adversarial tables where residual
		// duplication could blow up; within budget the build always makes
		// progress (every child set is strictly smaller).
		budget: 16*len(filters) + 64,
	}
	all := make([]int32, len(filters))
	for i := range all {
		all[i] = int32(i)
	}
	b.build(all)
	d := &Dispatch{nodes: b.nodes}
	d.shape = d.computeShape(filters)
	return d
}

type dispatchBuilder struct {
	filters []FilterEntry
	nodes   []dispatchNode
	budget  int
}

// fieldKey identifies a candidate discriminator field.
type fieldKey struct {
	off, length int
}

// build emits the subtree classifying cands (sorted, ascending) and
// returns its node index.
func (b *dispatchBuilder) build(cands []int32) int32 {
	idx := int32(len(b.nodes))
	b.nodes = append(b.nodes, dispatchNode{})

	fk, groups, order, residual, ok := b.chooseField(cands)
	if !ok {
		b.nodes[idx] = dispatchNode{candidates: cands}
		return idx
	}

	n := dispatchNode{
		off:    fk.off,
		length: fk.length,
		edges:  make(map[uint64]int32, len(order)),
		miss:   -1,
	}
	// Children are built in ascending key order so node layout (and hence
	// Shape) is deterministic for a given table.
	for _, v := range order {
		n.edges[v] = b.build(mergeSorted(groups[v], residual))
	}
	if len(residual) > 0 {
		n.miss = b.build(residual)
	}
	b.nodes[idx] = n
	return idx
}

// chooseField picks the most discriminating literal field among cands:
// the field keying the most filters, ties broken by more distinct values,
// then lower offset, then shorter length. It returns ok == false when no
// field splits the set (fewer than two distinct values everywhere), when
// the candidate set is already small, or when the node budget is spent.
func (b *dispatchBuilder) chooseField(cands []int32) (fieldKey, map[uint64][]int32, []uint64, []int32, bool) {
	if len(cands) < 2 || len(b.nodes) > b.budget {
		return fieldKey{}, nil, nil, nil, false
	}
	stats := make(map[fieldKey]*fieldStat)
	valueOf := make(map[fieldKey]map[int32]uint64)
	var fieldOrder []fieldKey
	for _, ci := range cands {
		f := &b.filters[ci]
		seen := make(map[fieldKey]bool, len(f.Tuples))
		for ti := range f.Tuples {
			tu := &f.Tuples[ti]
			if tu.Var >= 0 || tu.Mask != nil || tu.Len <= 0 || tu.Len > maxDiscriminatorLen || len(tu.Pattern) != tu.Len {
				continue
			}
			fk := fieldKey{tu.Off, tu.Len}
			if seen[fk] {
				continue // key each filter by its first tuple at a field
			}
			seen[fk] = true
			st := stats[fk]
			if st == nil {
				st = &fieldStat{}
				stats[fk] = st
				valueOf[fk] = make(map[int32]uint64)
				fieldOrder = append(fieldOrder, fk)
			}
			st.keyed++
			valueOf[fk][ci] = packField(tu.Pattern)
		}
	}
	var best fieldKey
	var bestStat fieldStat
	found := false
	for _, fk := range fieldOrder {
		st := *stats[fk]
		st.distinct = countDistinct(valueOf[fk])
		if st.distinct < 2 {
			continue // cannot split: one value's child would equal the parent
		}
		if !found || betterField(fk, st, best, bestStat) {
			best, bestStat, found = fk, st, true
		}
	}
	if !found {
		return fieldKey{}, nil, nil, nil, false
	}
	groups := make(map[uint64][]int32)
	var order []uint64
	var residual []int32
	vals := valueOf[best]
	for _, ci := range cands {
		v, keyed := vals[ci]
		if !keyed {
			residual = append(residual, ci)
			continue
		}
		if _, dup := groups[v]; !dup {
			order = append(order, v)
		}
		groups[v] = append(groups[v], ci)
	}
	sortUint64(order)
	return best, groups, order, residual, true
}

func betterField(fk fieldKey, st fieldStat, best fieldKey, bestStat fieldStat) bool {
	if st.keyed != bestStat.keyed {
		return st.keyed > bestStat.keyed
	}
	if st.distinct != bestStat.distinct {
		return st.distinct > bestStat.distinct
	}
	if fk.off != best.off {
		return fk.off < best.off
	}
	return fk.length < best.length
}

// fieldStat scores one candidate discriminator field.
type fieldStat struct {
	keyed    int
	distinct int
}

func countDistinct(m map[int32]uint64) int {
	seen := make(map[uint64]struct{}, len(m))
	for _, v := range m {
		seen[v] = struct{}{}
	}
	return len(seen)
}

func sortUint64(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// mergeSorted merges two ascending candidate lists into a fresh slice.
func mergeSorted(a, c []int32) []int32 {
	if len(c) == 0 {
		return a
	}
	out := make([]int32, 0, len(a)+len(c))
	i, j := 0, 0
	for i < len(a) && j < len(c) {
		if a[i] < c[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, c[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, c[j:]...)
	return out
}

// packField big-endian-packs up to 8 field bytes into an edge key.
func packField(b []byte) uint64 {
	var v uint64
	for _, x := range b {
		v = v<<8 | uint64(x)
	}
	return v
}

func (d *Dispatch) computeShape(filters []FilterEntry) DispatchShape {
	s := DispatchShape{Filters: len(filters), Nodes: len(d.nodes)}
	if len(d.nodes) == 0 {
		return s
	}
	type frame struct {
		node  int32
		depth int
	}
	stack := []frame{{0, 0}}
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := &d.nodes[fr.node]
		if n.length == 0 {
			s.Leaves++
			if fr.depth > s.Depth {
				s.Depth = fr.depth
			}
			if len(n.candidates) > s.MaxLeafCandidates {
				s.MaxLeafCandidates = len(n.candidates)
			}
			tuples := 0
			for _, ci := range n.candidates {
				tuples += len(filters[ci].Tuples)
			}
			if tuples > s.WorstCaseTuples {
				s.WorstCaseTuples = tuples
			}
			continue
		}
		if len(n.edges) > s.MaxFanout {
			s.MaxFanout = len(n.edges)
		}
		for _, ch := range n.edges {
			stack = append(stack, frame{ch, fr.depth + 1})
		}
		if n.miss >= 0 {
			stack = append(stack, frame{n.miss, fr.depth + 1})
		}
	}
	return s
}
