package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"virtualwire/internal/ether"
	"virtualwire/internal/packet"
)

// fig2Program builds the paper's Figure 2 filter table (with the
// variable-carrying retransmission filters) over two nodes.
func fig2Program() *Program {
	mk := func(tuples ...FilterTuple) []FilterTuple { return tuples }
	lit := func(off, ln int, pat ...byte) FilterTuple {
		return FilterTuple{Off: off, Len: ln, Pattern: pat, Var: -1}
	}
	masked := func(off, ln int, mask, pat byte) FilterTuple {
		return FilterTuple{Off: off, Len: ln, Mask: []byte{mask}, Pattern: []byte{pat}, Var: -1}
	}
	varT := func(off, ln int, v VarID) FilterTuple {
		return FilterTuple{Off: off, Len: ln, Var: v}
	}
	return &Program{
		Vars: []string{"SeqNoData", "SeqNoAck"},
		Filters: []FilterEntry{
			{Name: "TCP_data_rt1", Tuples: mk(lit(34, 2, 0x60, 0x00), lit(36, 2, 0x40, 0x00), varT(38, 4, 0), masked(47, 1, 0x10, 0x10))},
			{Name: "TCP_ack_rt1", Tuples: mk(lit(34, 2, 0x40, 0x00), lit(36, 2, 0x60, 0x00), varT(42, 4, 1), masked(47, 1, 0x10, 0x10))},
			{Name: "TCP_syn", Tuples: mk(lit(34, 2, 0x60, 0x00), lit(36, 2, 0x40, 0x00), masked(47, 1, 0x02, 0x02))},
			{Name: "TCP_synack", Tuples: mk(lit(34, 2, 0x40, 0x00), lit(36, 2, 0x60, 0x00), masked(47, 1, 0x12, 0x12))},
			{Name: "TCP_data", Tuples: mk(lit(34, 2, 0x60, 0x00), lit(36, 2, 0x40, 0x00), masked(47, 1, 0x10, 0x10))},
			{Name: "TCP_ack", Tuples: mk(lit(34, 2, 0x40, 0x00), lit(36, 2, 0x60, 0x00), masked(47, 1, 0x10, 0x10))},
		},
		Nodes: []NodeEntry{
			{Name: "node1", MAC: packet.MAC{0, 0, 0, 0, 0, 1}, IP: packet.IP{192, 168, 1, 1}},
			{Name: "node2", MAC: packet.MAC{0, 0, 0, 0, 0, 2}, IP: packet.IP{192, 168, 1, 2}},
		},
	}
}

func tcpFrame(sport, dport uint16, seq, ack uint32, flags byte) *ether.Frame {
	data := packet.BuildTCPFrame(
		packet.MAC{0, 0, 0, 0, 0, 1}, packet.MAC{0, 0, 0, 0, 0, 2},
		packet.IP{192, 168, 1, 1}, packet.IP{192, 168, 1, 2},
		packet.TCP{SrcPort: sport, DstPort: dport, Seq: seq, Ack: ack, Flags: flags},
		[]byte("payload"))
	return &ether.Frame{Data: data}
}

func TestClassifierFirstMatchPriority(t *testing.T) {
	p := fig2Program()
	c := NewClassifier(p)
	// A SYNACK matches both TCP_synack and TCP_ack tuples; priority is
	// descending order of occurrence (Section 6.1), so TCP_synack (3)
	// must win over TCP_ack (5). The ack_rt1 filter (1) binds SeqNoAck
	// to this packet's ack field first, though — which is why the
	// scenario scripts keep the rt filters out unless they use them.
	fr := tcpFrame(0x4000, 0x6000, 100, 200, packet.TCPSyn|packet.TCPAck)
	got := c.Classify(fr)
	if p.Filters[got].Name != "TCP_ack_rt1" {
		t.Fatalf("classified %q; ack_rt1 binds first by priority", p.Filters[got].Name)
	}
	// A later pure ACK with a different ack number falls through
	// ack_rt1 (variable now bound to 200) to TCP_ack... but SYNACK was
	// consumed; use plain ACK.
	fr2 := tcpFrame(0x4000, 0x6000, 101, 999, packet.TCPAck)
	got2 := c.Classify(fr2)
	if p.Filters[got2].Name != "TCP_ack" {
		t.Fatalf("second ack classified %q, want TCP_ack", p.Filters[got2].Name)
	}
	// An ACK repeating the bound number is the "retransmission".
	fr3 := tcpFrame(0x4000, 0x6000, 102, 200, packet.TCPAck)
	got3 := c.Classify(fr3)
	if p.Filters[got3].Name != "TCP_ack_rt1" {
		t.Fatalf("repeated ack classified %q, want TCP_ack_rt1", p.Filters[got3].Name)
	}
}

func TestClassifierVariableBindingCountsRetransmissions(t *testing.T) {
	p := fig2Program()
	c := NewClassifier(p)
	// First data packet binds SeqNoData.
	d1 := tcpFrame(0x6000, 0x4000, 1000, 0, packet.TCPAck|packet.TCPPsh)
	if p.Filters[c.Classify(d1)].Name != "TCP_data_rt1" {
		t.Fatal("first data packet must bind the rt1 variable")
	}
	// A different sequence number is ordinary data.
	d2 := tcpFrame(0x6000, 0x4000, 2400, 0, packet.TCPAck|packet.TCPPsh)
	if got := p.Filters[c.Classify(d2)].Name; got != "TCP_data" {
		t.Fatalf("new data classified %q, want TCP_data", got)
	}
	// The same sequence number again is the retransmission.
	d3 := tcpFrame(0x6000, 0x4000, 1000, 0, packet.TCPAck|packet.TCPPsh)
	if got := p.Filters[c.Classify(d3)].Name; got != "TCP_data_rt1" {
		t.Fatalf("retransmission classified %q, want TCP_data_rt1", got)
	}
	if c.VarBinding(0) == nil {
		t.Error("SeqNoData unbound after matches")
	}
}

func TestClassifierNoMatch(t *testing.T) {
	p := fig2Program()
	c := NewClassifier(p)
	// Wrong ports entirely.
	fr := tcpFrame(0x1111, 0x2222, 1, 1, packet.TCPAck)
	if got := c.Classify(fr); got != -1 {
		t.Errorf("classified %d, want -1", got)
	}
	// Too-short frame.
	short := &ether.Frame{Data: make([]byte, 20)}
	if got := c.Classify(short); got != -1 {
		t.Errorf("short frame classified %d", got)
	}
}

func TestClassifierMaskSemantics(t *testing.T) {
	p := fig2Program()
	c := NewClassifier(p)
	// PSH|ACK matches the (47 1 0x10 0x10) masked tuple even though the
	// byte is 0x18.
	fr := tcpFrame(0x6000, 0x4000, 5, 0, packet.TCPAck|packet.TCPPsh)
	if got := c.Classify(fr); got < 0 {
		t.Fatal("masked flag match failed")
	}
	// FIN only (0x01) does not match any filter.
	fr2 := tcpFrame(0x6000, 0x4000, 6, 0, packet.TCPFin)
	if got := c.Classify(fr2); got != -1 {
		t.Errorf("FIN classified as %q", p.Filters[got].Name)
	}
}

// Property: the indexed classifier agrees with the linear one on
// arbitrary frames (same program, fresh variable state each trial).
func TestIndexedClassifierEquivalence(t *testing.T) {
	prop := func(sportSel, flagSel uint8, seq uint32) bool {
		ports := []uint16{0x6000, 0x4000, 0x1234}
		flags := []byte{packet.TCPSyn, packet.TCPSyn | packet.TCPAck, packet.TCPAck, packet.TCPAck | packet.TCPPsh, packet.TCPFin}
		sport := ports[int(sportSel)%len(ports)]
		dport := ports[(int(sportSel)+1)%len(ports)]
		fl := flags[int(flagSel)%len(flags)]
		fr := tcpFrame(sport, dport, seq, seq+1, fl)

		lin := NewClassifier(fig2Program())
		idx := NewClassifier(fig2Program())
		idx.Strategy = StrategyIndexed
		return lin.Classify(fr) == idx.Classify(fr)
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(31))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: classification is insensitive to payload bytes beyond the
// matched offsets.
func TestClassifierPayloadInsensitive(t *testing.T) {
	prop := func(fill byte, n uint8) bool {
		p := fig2Program()
		// Strip the variable filters so state does not interfere.
		p.Filters = p.Filters[2:]
		c := NewClassifier(p)
		data := packet.BuildTCPFrame(
			packet.MAC{0, 0, 0, 0, 0, 1}, packet.MAC{0, 0, 0, 0, 0, 2},
			packet.IP{192, 168, 1, 1}, packet.IP{192, 168, 1, 2},
			packet.TCP{SrcPort: 0x6000, DstPort: 0x4000, Flags: packet.TCPAck | packet.TCPPsh},
			make([]byte, int(n)+1))
		for i := 54; i < len(data); i++ {
			data[i] = fill
		}
		got := c.Classify(&ether.Frame{Data: data})
		return got >= 0 && p.Filters[got].Name == "TCP_data"
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(37))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkClassifierLinear(b *testing.B) {
	benchClassifier(b, StrategyLinear)
}

func BenchmarkClassifierIndexed(b *testing.B) {
	benchClassifier(b, StrategyIndexed)
}

func BenchmarkClassifierCompiled(b *testing.B) {
	benchClassifier(b, StrategyCompiled)
}

func benchClassifier(b *testing.B, strategy Strategy) {
	p := fig2Program()
	p.Filters = p.Filters[2:] // drop variable filters for steady state
	c := NewClassifier(p)
	c.Strategy = strategy
	fr := tcpFrame(0x4000, 0x6000, 9, 9, packet.TCPAck)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Classify(fr) < 0 {
			b.Fatal("no match")
		}
	}
}
