package core

import (
	"fmt"
	"sort"
	"time"

	"virtualwire/internal/metrics"
	"virtualwire/internal/sim"
)

// Result is the outcome of one scenario run.
type Result struct {
	// Started reports that every engine acknowledged INIT and the
	// scenario was broadcast-started.
	Started bool `json:"started"`
	// StartedAt is the virtual time of the START broadcast.
	StartedAt time.Duration `json:"started_at_ns,omitempty"`
	// Stopped reports an explicit STOP action ended the scenario.
	Stopped bool `json:"stopped"`
	// StoppedAt is when the STOP (or inactivity) was processed.
	StoppedAt time.Duration `json:"stopped_at_ns,omitempty"`
	// Inactivity reports the scenario ended because no monitored packet
	// event occurred within the script's inactivity timeout — per
	// Section 6.2 this is a distinct (usually failing) outcome.
	Inactivity bool `json:"inactivity,omitempty"`
	// LaunchFailed reports that INIT distribution gave up: one or more
	// nodes never acknowledged within the launch deadline (crashed or
	// partitioned before the scenario could start). The run is terminal —
	// degraded-but-reported rather than an infinite wait for acks.
	LaunchFailed bool `json:"launch_failed,omitempty"`
	// Unreachable lists the nodes that never acknowledged INIT when the
	// launch was abandoned, in node-ID order. Empty unless LaunchFailed.
	Unreachable []NodeID `json:"unreachable,omitempty"`
	// Errors collects every FLAG_ERR report, in arrival order.
	Errors []ErrorReport `json:"errors,omitempty"`
}

// Passed reports the conventional success criterion: the run started,
// no analysis rule flagged an error, and if the script has an inactivity
// timeout the run ended with an explicit STOP rather than by going quiet.
func (r Result) Passed(requireStop bool) bool {
	if !r.Started || r.LaunchFailed || len(r.Errors) > 0 {
		return false
	}
	if requireStop {
		return r.Stopped && !r.Inactivity
	}
	return !r.Inactivity
}

func (r Result) String() string {
	status := "running"
	switch {
	case r.LaunchFailed:
		status = fmt.Sprintf("launch failed at %v (%d node(s) unreachable)",
			r.StoppedAt, len(r.Unreachable))
	case r.Stopped:
		status = fmt.Sprintf("stopped at %v", r.StoppedAt)
	case r.Inactivity:
		status = fmt.Sprintf("inactivity timeout at %v", r.StoppedAt)
	}
	return fmt.Sprintf("scenario %s, %d error(s)", status, len(r.Errors))
}

// Launch-robustness defaults. The control plane must survive the very
// faults it injects (lossy media, crashed nodes), so INIT distribution
// retries on a virtual-time timer with exponential backoff, and the whole
// launch is bounded by a deadline after which the run is reported as
// failed instead of waiting for acks forever.
const (
	// DefaultInitRetryInterval is the base re-send interval for unacked
	// nodes' INIT chunks. It backs off exponentially up to 8x.
	DefaultInitRetryInterval = 20 * time.Millisecond
	// DefaultInitMaxAttempts bounds INIT (re)distributions per node.
	DefaultInitMaxAttempts = 8
	// DefaultLaunchDeadline bounds the whole launch phase.
	DefaultLaunchDeadline = 2 * time.Second

	// initBackoffCap caps the exponential retry backoff, as a multiple of
	// the base interval.
	initBackoffCap = 8
)

// ControllerStats counts control-plane distribution events for the
// observability layer.
type ControllerStats struct {
	ChunksSent   uint64 // INIT chunks sent on first distribution
	ChunksResent uint64 // INIT chunks re-sent by the retry loop
	Retries      uint64 // retry rounds that re-sent at least one node
	AcksRcvd     uint64 // INIT acks received (first per node)
	DupAcks      uint64 // redundant INIT acks (re-ack after duplicate chunk)
}

// Controller is the programming front-end's run-time half: it lives on
// the control node (Figure 1), distributes the compiled tables to every
// engine over the control plane, starts the scenario, tracks inactivity,
// and collects STOP and FLAG_ERR reports.
type Controller struct {
	sched  *sim.Scheduler
	prog   *Program
	engine *Engine // co-located engine on the control node
	self   NodeID

	acked    map[NodeID]bool
	lastSeen map[NodeID]time.Duration // liveness: last control message per node
	attempts map[NodeID]int           // INIT distributions per node
	started  bool
	launched bool
	finished bool
	result   Result
	inact    *sim.Timer
	retry    *sim.Timer
	deadline *sim.Timer

	initBlob  []byte
	retryIval time.Duration // current (backed-off) retry interval

	// InitRetryInterval is the base interval between INIT re-sends to
	// unacked nodes (default DefaultInitRetryInterval). Successive rounds
	// back off exponentially up to 8x. Set before Launch.
	InitRetryInterval time.Duration
	// InitMaxAttempts bounds INIT distributions per node (default
	// DefaultInitMaxAttempts); once every unacked node has exhausted its
	// attempts the launch fails early, before the deadline.
	InitMaxAttempts int
	// LaunchDeadline bounds the whole launch phase (default
	// DefaultLaunchDeadline): when it expires before every node acked,
	// the run finishes with Result.LaunchFailed and Result.Unreachable.
	LaunchDeadline time.Duration

	// Stats accumulates control-plane distribution counters.
	Stats ControllerStats

	// OnStarted fires when every engine is initialized and the START
	// broadcast has been sent; workloads should begin here.
	OnStarted func()
	// OnFinished fires when the scenario ends (STOP, inactivity, or an
	// abandoned launch).
	OnFinished func(Result)
}

// NewController attaches a controller to the engine of the control node.
// controlNode must be the node whose MAC the engine carries.
func NewController(sched *sim.Scheduler, prog *Program, engine *Engine, controlNode NodeID) (*Controller, error) {
	if int(controlNode) < 0 || int(controlNode) >= len(prog.Nodes) {
		return nil, fmt.Errorf("core: control node %d out of range", controlNode)
	}
	if prog.Nodes[controlNode].MAC != engine.mac {
		return nil, fmt.Errorf("core: engine MAC %v is not control node %q",
			engine.mac, prog.Nodes[controlNode].Name)
	}
	c := &Controller{
		sched:    sched,
		prog:     prog,
		engine:   engine,
		self:     controlNode,
		acked:    make(map[NodeID]bool),
		lastSeen: make(map[NodeID]time.Duration),
		attempts: make(map[NodeID]int),

		InitRetryInterval: DefaultInitRetryInterval,
		InitMaxAttempts:   DefaultInitMaxAttempts,
		LaunchDeadline:    DefaultLaunchDeadline,
	}
	c.inact = sim.NewTimer(sched, "vw.inactivity")
	c.retry = sim.NewTimer(sched, "vw.init_retry")
	c.deadline = sim.NewTimer(sched, "vw.launch_deadline")
	engine.controller = c
	return c, nil
}

// SetInitBlob pre-stages the gob-encoded program for INIT distribution,
// letting Launch skip the per-run encode. blob must be EncodeProgram of
// the exact program the controller was constructed with; call before the
// first Launch.
func (c *Controller) SetInitBlob(blob []byte) { c.initBlob = blob }

// Reset rewinds the controller to its pre-launch state so a reused
// testbed can Launch the same scenario again: ack/liveness/attempt
// tracking, the result, the stats and all timers are cleared, while the
// staged INIT blob survives (the program is unchanged).
func (c *Controller) Reset() {
	for k := range c.acked {
		delete(c.acked, k)
	}
	for k := range c.lastSeen {
		delete(c.lastSeen, k)
	}
	for k := range c.attempts {
		delete(c.attempts, k)
	}
	c.started = false
	c.launched = false
	c.finished = false
	// Replace the result wholesale: Result() hands out a shallow copy, so
	// truncating the Errors slice in place could alias a prior run's view.
	c.result = Result{}
	c.Stats = ControllerStats{}
	c.retryIval = 0
	c.inact.Disarm()
	c.retry.Disarm()
	c.deadline.Disarm()
}

// Result returns the scenario outcome so far.
func (c *Controller) Result() Result { return c.result }

// Finished reports whether the scenario has ended.
func (c *Controller) Finished() bool { return c.finished }

// LastSeen reports the virtual time of the last control message received
// from a node, and whether any was seen at all (the controller's own node
// is always live).
func (c *Controller) LastSeen(n NodeID) (time.Duration, bool) {
	if n == c.self {
		return c.sched.Now(), true
	}
	t, ok := c.lastSeen[n]
	return t, ok
}

// Snapshot implements the uniform metrics hook: INIT distribution health
// and launch liveness (surfaced as node="testbed", layer="controller").
func (c *Controller) Snapshot() metrics.Snapshot {
	var sn metrics.Snapshot
	sn.Counter("init_chunks_sent", c.Stats.ChunksSent)
	sn.Counter("init_chunks_resent", c.Stats.ChunksResent)
	sn.Counter("init_retries", c.Stats.Retries)
	sn.Counter("init_acks", c.Stats.AcksRcvd)
	sn.Counter("init_dup_acks", c.Stats.DupAcks)
	sn.Gauge("acked_nodes", float64(len(c.acked)))
	sn.Gauge("live_nodes", float64(len(c.lastSeen)+1)) // +1: the control node
	sn.Gauge("unreachable_nodes", float64(len(c.result.Unreachable)))
	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	sn.Gauge("started", b2f(c.started))
	sn.Gauge("launch_failed", b2f(c.result.LaunchFailed))
	return sn
}

// Launch distributes the tables to every node, then starts the scenario
// once all engines acknowledge. It returns immediately; progress happens
// inside the simulation: unacked nodes are re-sent on a backoff timer,
// and a node that stays silent past the launch deadline moves the run to
// a terminal LaunchFailed result instead of stalling it forever.
//
// Launch is idempotent: calling it again while distribution is still in
// flight re-sends to the not-yet-acked nodes (engines re-acknowledge
// duplicate INITs), and calling it after the scenario started or
// finished is a no-op.
func (c *Controller) Launch() error {
	if c.finished || c.started {
		return nil
	}
	if c.launched {
		// Second Launch: kick another distribution round for stragglers.
		c.resendUnacked()
		return nil
	}
	if c.initBlob == nil {
		blob, err := encodeProgram(c.prog)
		if err != nil {
			return err
		}
		c.initBlob = blob
	}
	c.launched = true
	c.retryIval = c.InitRetryInterval
	for n := range c.prog.Nodes {
		nid := NodeID(n)
		if nid == c.self {
			// Local engine: load directly (the paper's programming
			// tool runs on this node).
			c.engine.load(c.prog, nid, c.self)
			c.acked[nid] = true
			continue
		}
		c.attempts[nid] = 1
		if err := c.sendInit(nid); err != nil {
			return err
		}
		c.Stats.ChunksSent += uint64(c.chunkTotal())
	}
	c.maybeStart()
	if !c.started {
		c.retry.Arm(c.retryIval, c.retryTick)
		c.deadline.Arm(c.LaunchDeadline, c.abandonLaunch)
	}
	return nil
}

func (c *Controller) chunkTotal() int {
	return (len(c.initBlob) + initChunkSize - 1) / initChunkSize
}

// sendInit sends the full chunk sequence of the staged program to one
// node.
func (c *Controller) sendInit(nid NodeID) error {
	total := c.chunkTotal()
	for i := 0; i < total; i++ {
		end := (i + 1) * initChunkSize
		if end > len(c.initBlob) {
			end = len(c.initBlob)
		}
		m := &Msg{
			Kind:        MsgInitChunk,
			From:        c.self,
			ChunkIndex:  i,
			ChunkTotal:  total,
			ChunkData:   c.initBlob[i*initChunkSize : end],
			ControlNode: c.self,
			NodeID:      nid,
		}
		fr, err := encodeMsg(c.engine.mac, c.prog.Nodes[nid].MAC, m)
		if err != nil {
			return err
		}
		c.engine.injectCtl(fr)
	}
	return nil
}

// retryTick re-sends INIT to every node that has not acknowledged yet and
// still has attempts left, then re-arms with exponential backoff.
func (c *Controller) retryTick() {
	if c.started || c.finished {
		return
	}
	resent := false
	exhausted := true
	for n := range c.prog.Nodes {
		nid := NodeID(n)
		if c.acked[nid] {
			continue
		}
		if c.attempts[nid] >= c.InitMaxAttempts {
			continue
		}
		exhausted = false
		c.attempts[nid]++
		if err := c.sendInit(nid); err != nil {
			continue
		}
		c.Stats.ChunksResent += uint64(c.chunkTotal())
		resent = true
	}
	if resent {
		c.Stats.Retries++
	}
	if exhausted {
		// Every silent node is out of attempts: fail now rather than
		// sitting out the rest of the deadline.
		c.abandonLaunch()
		return
	}
	c.retryIval *= 2
	if max := initBackoffCap * c.InitRetryInterval; c.retryIval > max {
		c.retryIval = max
	}
	c.retry.Arm(c.retryIval, c.retryTick)
}

// abandonLaunch moves the run to the degraded-but-reported terminal state:
// the unacked nodes are recorded as unreachable and the scenario finishes
// without starting.
func (c *Controller) abandonLaunch() {
	if c.started || c.finished {
		return
	}
	c.result.LaunchFailed = true
	c.result.Unreachable = c.unackedNodes()
	c.finish(false)
}

// unackedNodes lists nodes that never acknowledged INIT, in ID order.
func (c *Controller) unackedNodes() []NodeID {
	var out []NodeID
	for n := range c.prog.Nodes {
		if nid := NodeID(n); !c.acked[nid] {
			out = append(out, nid)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// resendUnacked performs one immediate distribution round (second Launch).
func (c *Controller) resendUnacked() {
	resent := false
	for n := range c.prog.Nodes {
		nid := NodeID(n)
		if c.acked[nid] {
			continue
		}
		c.attempts[nid]++
		if err := c.sendInit(nid); err != nil {
			continue
		}
		c.Stats.ChunksResent += uint64(c.chunkTotal())
		resent = true
	}
	if resent {
		c.Stats.Retries++
	}
}

func (c *Controller) handle(m *Msg) {
	c.lastSeen[m.From] = c.sched.Now()
	switch m.Kind {
	case MsgInitAck:
		if c.acked[m.From] {
			c.Stats.DupAcks++
			return
		}
		c.Stats.AcksRcvd++
		c.acked[m.From] = true
		c.maybeStart()
	case MsgError:
		text := m.Message
		if text == "" {
			text = "FLAG_ERR"
		}
		c.result.Errors = append(c.result.Errors, ErrorReport{
			Node: m.From, Rule: m.Rule, At: time.Duration(m.AtNanos), Text: text,
		})
	case MsgStop:
		c.finish(true)
	case MsgActivity:
		c.armInactivity()
	}
}

func (c *Controller) maybeStart() {
	if c.started || c.finished || len(c.acked) < len(c.prog.Nodes) {
		return
	}
	c.started = true
	c.retry.Disarm()
	c.deadline.Disarm()
	c.result.Started = true
	c.result.StartedAt = c.sched.Now()
	for n := range c.prog.Nodes {
		nid := NodeID(n)
		if nid == c.self {
			continue
		}
		c.engine.sendCtl(nid, &Msg{Kind: MsgStart, From: c.self})
	}
	c.engine.Activate()
	c.armInactivity()
	if c.OnStarted != nil {
		c.OnStarted()
	}
}

func (c *Controller) armInactivity() {
	if c.finished || c.prog.InactivityTimeout <= 0 {
		return
	}
	c.inact.Arm(c.prog.InactivityTimeout, func() {
		c.result.Inactivity = true
		c.finish(false)
	})
}

func (c *Controller) finish(stopped bool) {
	if c.finished {
		return
	}
	c.finished = true
	c.inact.Disarm()
	c.retry.Disarm()
	c.deadline.Disarm()
	c.result.Stopped = stopped
	c.result.StoppedAt = c.sched.Now()
	for n := range c.prog.Nodes {
		nid := NodeID(n)
		if nid == c.self {
			continue
		}
		c.engine.sendCtl(nid, &Msg{Kind: MsgShutdown, From: c.self})
	}
	c.engine.Deactivate()
	if c.OnFinished != nil {
		c.OnFinished(c.result)
	}
}
