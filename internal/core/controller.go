package core

import (
	"fmt"
	"time"

	"virtualwire/internal/sim"
)

// Result is the outcome of one scenario run.
type Result struct {
	// Started reports that every engine acknowledged INIT and the
	// scenario was broadcast-started.
	Started bool
	// StartedAt is the virtual time of the START broadcast.
	StartedAt time.Duration
	// Stopped reports an explicit STOP action ended the scenario.
	Stopped bool
	// StoppedAt is when the STOP (or inactivity) was processed.
	StoppedAt time.Duration
	// Inactivity reports the scenario ended because no monitored packet
	// event occurred within the script's inactivity timeout — per
	// Section 6.2 this is a distinct (usually failing) outcome.
	Inactivity bool
	// Errors collects every FLAG_ERR report, in arrival order.
	Errors []ErrorReport
}

// Passed reports the conventional success criterion: the run started,
// no analysis rule flagged an error, and if the script has an inactivity
// timeout the run ended with an explicit STOP rather than by going quiet.
func (r Result) Passed(requireStop bool) bool {
	if !r.Started || len(r.Errors) > 0 {
		return false
	}
	if requireStop {
		return r.Stopped && !r.Inactivity
	}
	return !r.Inactivity
}

func (r Result) String() string {
	status := "running"
	switch {
	case r.Stopped:
		status = fmt.Sprintf("stopped at %v", r.StoppedAt)
	case r.Inactivity:
		status = fmt.Sprintf("inactivity timeout at %v", r.StoppedAt)
	}
	return fmt.Sprintf("scenario %s, %d error(s)", status, len(r.Errors))
}

// Controller is the programming front-end's run-time half: it lives on
// the control node (Figure 1), distributes the compiled tables to every
// engine over the control plane, starts the scenario, tracks inactivity,
// and collects STOP and FLAG_ERR reports.
type Controller struct {
	sched  *sim.Scheduler
	prog   *Program
	engine *Engine // co-located engine on the control node
	self   NodeID

	acked    map[NodeID]bool
	started  bool
	finished bool
	result   Result
	inact    *sim.Timer

	// OnStarted fires when every engine is initialized and the START
	// broadcast has been sent; workloads should begin here.
	OnStarted func()
	// OnFinished fires when the scenario ends (STOP or inactivity).
	OnFinished func(Result)
}

// NewController attaches a controller to the engine of the control node.
// controlNode must be the node whose MAC the engine carries.
func NewController(sched *sim.Scheduler, prog *Program, engine *Engine, controlNode NodeID) (*Controller, error) {
	if int(controlNode) < 0 || int(controlNode) >= len(prog.Nodes) {
		return nil, fmt.Errorf("core: control node %d out of range", controlNode)
	}
	if prog.Nodes[controlNode].MAC != engine.mac {
		return nil, fmt.Errorf("core: engine MAC %v is not control node %q",
			engine.mac, prog.Nodes[controlNode].Name)
	}
	c := &Controller{
		sched:  sched,
		prog:   prog,
		engine: engine,
		self:   controlNode,
		acked:  make(map[NodeID]bool),
	}
	c.inact = sim.NewTimer(sched, "vw.inactivity")
	engine.controller = c
	return c, nil
}

// Result returns the scenario outcome so far.
func (c *Controller) Result() Result { return c.result }

// Finished reports whether the scenario has ended.
func (c *Controller) Finished() bool { return c.finished }

// Launch distributes the tables to every node, then starts the scenario
// once all engines acknowledge. It returns immediately; progress happens
// inside the simulation.
func (c *Controller) Launch() error {
	blob, err := encodeProgram(c.prog)
	if err != nil {
		return err
	}
	total := (len(blob) + initChunkSize - 1) / initChunkSize
	for n := range c.prog.Nodes {
		nid := NodeID(n)
		if nid == c.self {
			// Local engine: load directly (the paper's programming
			// tool runs on this node).
			c.engine.load(c.prog, nid, c.self)
			c.acked[nid] = true
			continue
		}
		for i := 0; i < total; i++ {
			end := (i + 1) * initChunkSize
			if end > len(blob) {
				end = len(blob)
			}
			m := &Msg{
				Kind:        MsgInitChunk,
				From:        c.self,
				ChunkIndex:  i,
				ChunkTotal:  total,
				ChunkData:   blob[i*initChunkSize : end],
				ControlNode: c.self,
				NodeID:      nid,
			}
			fr, err := encodeMsg(c.engine.mac, c.prog.Nodes[n].MAC, m)
			if err != nil {
				return err
			}
			c.engine.injectCtl(fr)
		}
	}
	c.maybeStart()
	return nil
}

func (c *Controller) handle(m *Msg) {
	switch m.Kind {
	case MsgInitAck:
		c.acked[m.From] = true
		c.maybeStart()
	case MsgError:
		text := m.Message
		if text == "" {
			text = "FLAG_ERR"
		}
		c.result.Errors = append(c.result.Errors, ErrorReport{
			Node: m.From, Rule: m.Rule, At: time.Duration(m.AtNanos), Text: text,
		})
	case MsgStop:
		c.finish(true)
	case MsgActivity:
		c.armInactivity()
	}
}

func (c *Controller) maybeStart() {
	if c.started || len(c.acked) < len(c.prog.Nodes) {
		return
	}
	c.started = true
	c.result.Started = true
	c.result.StartedAt = c.sched.Now()
	for n := range c.prog.Nodes {
		nid := NodeID(n)
		if nid == c.self {
			continue
		}
		c.engine.sendCtl(nid, &Msg{Kind: MsgStart, From: c.self})
	}
	c.engine.Activate()
	c.armInactivity()
	if c.OnStarted != nil {
		c.OnStarted()
	}
}

func (c *Controller) armInactivity() {
	if c.finished || c.prog.InactivityTimeout <= 0 {
		return
	}
	c.inact.Arm(c.prog.InactivityTimeout, func() {
		c.result.Inactivity = true
		c.finish(false)
	})
}

func (c *Controller) finish(stopped bool) {
	if c.finished {
		return
	}
	c.finished = true
	c.inact.Disarm()
	c.result.Stopped = stopped
	c.result.StoppedAt = c.sched.Now()
	for n := range c.prog.Nodes {
		nid := NodeID(n)
		if nid == c.self {
			continue
		}
		c.engine.sendCtl(nid, &Msg{Kind: MsgShutdown, From: c.self})
	}
	c.engine.Deactivate()
	if c.OnFinished != nil {
		c.OnFinished(c.result)
	}
}
