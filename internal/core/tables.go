// Package core implements the paper's primary contribution: the
// VirtualWire Fault Injection Engine and Fault Analysis Engine (FIE/FAE),
// the six-table execution-state model of Figure 3, the per-packet control
// flow of Figure 4(b), the distributed control-plane protocol of Section
// 5.2, and the scenario lifecycle (initialization, start, stop, error
// reporting, inactivity timeout).
//
// This file defines the compiled representation an FSL script is lowered
// into: the filter table and node table (packet classification), and the
// counter, term, condition and action tables (execution state). The
// controller distributes the full set of tables to every node, exactly as
// the paper describes ("all FIEs and FAEs are sent the entire set of
// tables even though each node may touch only a subset").
package core

import (
	"fmt"
	"sync"
	"time"

	"virtualwire/internal/packet"
)

// Typed table indices. A value of -1 means "none".
type (
	// FilterID indexes Program.Filters.
	FilterID int
	// NodeID indexes Program.Nodes.
	NodeID int
	// CounterID indexes Program.Counters.
	CounterID int
	// TermID indexes Program.Terms.
	TermID int
	// CondID indexes Program.Conds.
	CondID int
	// ActionID indexes Program.Actions.
	ActionID int
	// VarID indexes Program.Vars (run-time-bound filter variables).
	VarID int
)

// Direction distinguishes the observation point of a packet event.
type Direction int

// Observation directions: SEND events are counted at the transmitting
// node's engine on the outbound path, RECV events at the receiving node's
// engine on the inbound path.
const (
	DirSend Direction = iota + 1
	DirRecv
)

// String names the direction as it appears in FSL source.
func (d Direction) String() string {
	switch d {
	case DirSend:
		return "SEND"
	case DirRecv:
		return "RECV"
	}
	return fmt.Sprintf("Direction(%d)", int(d))
}

// FilterTuple is one (offset, length, mask, pattern) component of a
// packet definition; all tuples of a filter must match (logical AND).
// Either Pattern or Var is set: a Var tuple binds the variable to the
// observed bytes on first match and requires equality afterwards.
type FilterTuple struct {
	Off     int
	Len     int
	Mask    []byte // nil means match all bits
	Pattern []byte // len == Len when Var < 0
	Var     VarID  // -1 unless this tuple references a VAR
}

// FilterEntry is one packet definition. Filter priority is the order of
// occurrence: classification returns the first matching entry.
type FilterEntry struct {
	Name   string
	Tuples []FilterTuple
}

// NodeEntry is one row of the Node Table: a testbed host identity.
type NodeEntry struct {
	Name string
	MAC  packet.MAC
	IP   packet.IP
}

// CounterKind distinguishes packet-event counters from script-managed
// local variables.
type CounterKind int

// Counter kinds.
const (
	// CounterEvent counts send/receive events of a packet type on a
	// node pair; it lives on the observing node.
	CounterEvent CounterKind = iota + 1
	// CounterLocal is a script variable on a specific node, manipulated
	// only by counter actions.
	CounterLocal
)

// CounterEntry is one row of the counter table. The compiler precomputes
// the dependent term list so an update can trigger exactly the
// re-evaluations Figure 3 shows.
type CounterEntry struct {
	Name string
	Kind CounterKind

	// Event-counter fields: count packets matching Filter travelling
	// From -> To, observed at the Dir endpoint.
	Filter FilterID
	From   NodeID
	To     NodeID
	Dir    Direction

	// Home is the node whose engine owns the authoritative value.
	Home NodeID

	// Terms lists the terms whose value depends on this counter.
	Terms []TermID
	// RemoteNodes lists nodes that need this counter's value pushed to
	// them because they home a term whose other operand lives there
	// (Section 5.2's eager value propagation case).
	RemoteNodes []NodeID
}

// RelOp is a relational operator in a term.
type RelOp int

// Relational operators supported by FSL (Section 4).
const (
	OpLT RelOp = iota + 1
	OpLE
	OpGT
	OpGE
	OpEQ
	OpNE
)

// String renders the operator in FSL syntax.
func (op RelOp) String() string {
	switch op {
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	case OpEQ:
		return "="
	case OpNE:
		return "!="
	}
	return fmt.Sprintf("RelOp(%d)", int(op))
}

// Eval applies the operator.
func (op RelOp) Eval(a, b int64) bool {
	switch op {
	case OpLT:
		return a < b
	case OpLE:
		return a <= b
	case OpGT:
		return a > b
	case OpGE:
		return a >= b
	case OpEQ:
		return a == b
	case OpNE:
		return a != b
	}
	return false
}

// Operand is one side of a term: a counter reference or a constant.
type Operand struct {
	IsConst bool
	Const   int64
	Counter CounterID
}

// TermEntry is one row of the term table: a boolean relation between two
// counter values or a counter and a constant. The term is evaluated at
// Home; its status is pushed to every node in StatusNodes when it changes
// (Section 5.2's status-change-only propagation).
type TermEntry struct {
	LHS Operand
	Op  RelOp
	RHS Operand

	Home NodeID
	// Conds lists conditions containing this term.
	Conds []CondID
	// StatusNodes lists nodes (excluding Home) that evaluate one of
	// those conditions and therefore need status updates.
	StatusNodes []NodeID
}

// CondOp is a node kind in a condition expression tree.
type CondOp int

// Condition expression node kinds.
const (
	CondTerm CondOp = iota + 1
	CondAnd
	CondOr
	CondNot
	CondTrue
)

// CondExpr is a condition expression tree over terms.
type CondExpr struct {
	Op   CondOp
	Term TermID // CondTerm
	Kids []*CondExpr
}

// Terms appends all term IDs referenced by the expression to out.
func (e *CondExpr) Terms(out []TermID) []TermID {
	if e == nil {
		return out
	}
	if e.Op == CondTerm {
		return append(out, e.Term)
	}
	for _, k := range e.Kids {
		out = k.Terms(out)
	}
	return out
}

// ConditionEntry is one row of the condition table. Conditions are
// evaluated at each node in EvalNodes (the nodes hosting its actions)
// whenever a constituent term's status changes, and fire their actions on
// the false-to-true edge.
type ConditionEntry struct {
	Expr *CondExpr
	// Actions lists the actions to trigger, in rule order.
	Actions []ActionID
	// EvalNodes lists the nodes that evaluate this condition.
	EvalNodes []NodeID
	// Rule records the 1-based rule index in the scenario, for reports.
	Rule int
}

// ActionKind enumerates Table I and Table II primitives.
type ActionKind int

// Action kinds. Fault actions come from Table II, counter actions from
// Table I.
const (
	ActDrop ActionKind = iota + 1
	ActDelay
	ActReorder
	ActDup
	ActModify
	ActFail
	ActStop
	ActFlagErr

	ActAssignCntr
	ActEnableCntr
	ActDisableCntr
	ActIncrCntr
	ActDecrCntr
	ActResetCntr
	ActSetCurTime
	ActElapsedTime
)

// String names the action kind in FSL syntax.
func (k ActionKind) String() string {
	switch k {
	case ActDrop:
		return "DROP"
	case ActDelay:
		return "DELAY"
	case ActReorder:
		return "REORDER"
	case ActDup:
		return "DUP"
	case ActModify:
		return "MODIFY"
	case ActFail:
		return "FAIL"
	case ActStop:
		return "STOP"
	case ActFlagErr:
		return "FLAG_ERR"
	case ActAssignCntr:
		return "ASSIGN_CNTR"
	case ActEnableCntr:
		return "ENABLE_CNTR"
	case ActDisableCntr:
		return "DISABLE_CNTR"
	case ActIncrCntr:
		return "INCR_CNTR"
	case ActDecrCntr:
		return "DECR_CNTR"
	case ActResetCntr:
		return "RESET_CNTR"
	case ActSetCurTime:
		return "SET_CURTIME"
	case ActElapsedTime:
		return "ELAPSED_TIME"
	}
	return fmt.Sprintf("ActionKind(%d)", int(k))
}

// IsFault reports whether the action manipulates packets or nodes rather
// than counters.
func (k ActionKind) IsFault() bool { return k >= ActDrop && k <= ActFlagErr }

// ActionEntry is one row of the action table.
type ActionEntry struct {
	Kind ActionKind
	// Node is the executor: the engine that performs the action. For
	// fault actions it is the observation endpoint (SEND -> From,
	// RECV -> To); for counter actions the counter's home; for FAIL the
	// failed node; for STOP/FLAG_ERR the node evaluating the condition.
	Node NodeID

	// Fault parameters (ActDrop..ActModify).
	Filter FilterID
	From   NodeID
	To     NodeID
	Dir    Direction
	// Duration is the DELAY amount (rounded up to the 10 ms software-
	// timer jiffy at execution, as in the paper's implementation).
	Duration time.Duration
	// Count is the REORDER window size.
	Count int
	// Order is the REORDER release permutation (1-based positions);
	// empty means reverse order.
	Order []int
	// PatternOff/Pattern are the MODIFY overwrite; empty Pattern means
	// random single-byte perturbation.
	PatternOff int
	Pattern    []byte

	// Counter parameters (ActAssignCntr..ActElapsedTime; also ActFail's
	// target via Node).
	Counter CounterID
	Value   int64
}

// Program is a compiled FSL script: the six tables plus scenario
// metadata. It is what the controller ships to every engine.
type Program struct {
	Name string
	// InactivityTimeout ends the scenario when no monitored packet
	// event occurs for this long (0 = none). Per Section 6.2, ending by
	// inactivity is reported distinctly from an explicit STOP.
	InactivityTimeout time.Duration

	Vars     []string
	Filters  []FilterEntry
	Nodes    []NodeEntry
	Counters []CounterEntry
	Terms    []TermEntry
	Conds    []ConditionEntry
	Actions  []ActionEntry

	// dispatch caches the compiled filter dispatch tree (dispatch.go),
	// built at most once per Program and shared read-only by every engine
	// that adopts the program. Unexported, so the gob INIT encoding is
	// unaffected; Programs are handled strictly by pointer.
	dispatchOnce sync.Once
	dispatch     *Dispatch
}

// CompiledDispatch returns the program's compiled filter dispatch tree,
// building it on first use. The tree is immutable and safe to share
// across engines and goroutines; CompileScript calls this eagerly so
// campaign workers adopting a shared program never build it twice.
func (p *Program) CompiledDispatch() *Dispatch {
	p.dispatchOnce.Do(func() { p.dispatch = BuildDispatch(p.Filters) })
	return p.dispatch
}

// NodeByName resolves a node name.
func (p *Program) NodeByName(name string) (NodeID, bool) {
	for i, n := range p.Nodes {
		if n.Name == name {
			return NodeID(i), true
		}
	}
	return -1, false
}

// CounterByName resolves a counter name.
func (p *Program) CounterByName(name string) (CounterID, bool) {
	for i, c := range p.Counters {
		if c.Name == name {
			return CounterID(i), true
		}
	}
	return -1, false
}

// FilterByName resolves a packet-definition name.
func (p *Program) FilterByName(name string) (FilterID, bool) {
	for i, f := range p.Filters {
		if f.Name == name {
			return FilterID(i), true
		}
	}
	return -1, false
}
