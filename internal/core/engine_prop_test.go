package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"virtualwire/internal/core"
	"virtualwire/internal/ether"
	"virtualwire/internal/packet"
	"virtualwire/internal/sim"
)

// driveEngine loads a standalone engine (no wire, no controller) with a
// compiled-by-hand program and returns it plus a frame injector.
func driveEngine(t *testing.T, prog *core.Program) (*core.Engine, func(dstPort uint16)) {
	t.Helper()
	s := sim.NewScheduler(1)
	eng := core.NewEngine(s, prog.Nodes[1].MAC)
	eng.SetBelow(nullDown{})
	eng.SetAbove(nullUp{})
	eng.LoadLocal(prog, 1, 0)
	eng.Activate()
	inject := func(dstPort uint16) {
		fr := packet.BuildUDPFrame(prog.Nodes[0].MAC, prog.Nodes[1].MAC,
			prog.Nodes[0].IP, prog.Nodes[1].IP,
			packet.UDP{SrcPort: 5000, DstPort: dstPort}, []byte("x"))
		eng.DeliverUp(&ether.Frame{Data: fr})
	}
	return eng, inject
}

type nullDown struct{}

func (nullDown) SendDown(*ether.Frame) {}

type nullUp struct{}

func (nullUp) DeliverUp(*ether.Frame) {}

// propProgram builds a two-node program with one UDP filter per port in
// ports, and one enabled event counter per filter observed at node 1.
func propProgram(ports []uint16) *core.Program {
	p := &core.Program{
		Name: "prop",
		Nodes: []core.NodeEntry{
			{Name: "a", MAC: packet.MAC{0, 0, 0, 0, 0, 1}, IP: packet.IP{10, 0, 0, 1}},
			{Name: "b", MAC: packet.MAC{0, 0, 0, 0, 0, 2}, IP: packet.IP{10, 0, 0, 2}},
		},
	}
	for i, port := range ports {
		p.Filters = append(p.Filters, core.FilterEntry{
			Name: "f",
			Tuples: []core.FilterTuple{
				{Off: 23, Len: 1, Pattern: []byte{0x11}, Var: -1},
				{Off: 36, Len: 2, Pattern: []byte{byte(port >> 8), byte(port)}, Var: -1},
			},
		})
		p.Counters = append(p.Counters, core.CounterEntry{
			Name: "c", Kind: core.CounterEvent,
			Filter: core.FilterID(i), From: 0, To: 1, Dir: core.DirRecv, Home: 1,
		})
	}
	// A (TRUE) rule enabling every counter.
	cond := core.ConditionEntry{Expr: &core.CondExpr{Op: core.CondTrue}, EvalNodes: []core.NodeID{1}, Rule: 1}
	for i := range p.Counters {
		p.Actions = append(p.Actions, core.ActionEntry{
			Kind: core.ActEnableCntr, Node: 1,
			Counter: core.CounterID(i), Filter: -1, From: -1, To: -1,
		})
		cond.Actions = append(cond.Actions, core.ActionID(i))
	}
	p.Conds = []core.ConditionEntry{cond}
	return p
}

// Property: with first-match classification, each packet increments
// exactly the first counter whose filter matches its destination port,
// and the per-port totals equal the injected totals.
func TestCounterTotalsMatchInjectionProperty(t *testing.T) {
	basePorts := []uint16{7000, 7001, 7002, 7003}
	prop := func(seq []uint8) bool {
		prog := propProgram(basePorts)
		eng, inject := driveEngine(t, prog)
		want := make([]int64, len(basePorts))
		for _, b := range seq {
			idx := int(b) % (len(basePorts) + 1)
			if idx == len(basePorts) {
				inject(9999) // matches nothing
				continue
			}
			inject(basePorts[idx])
			want[idx]++
		}
		for i := range basePorts {
			if eng.CounterValue(core.CounterID(i)) != want[i] {
				return false
			}
		}
		var total int64
		for _, w := range want {
			total += w
		}
		return eng.Stats.PacketsMatched == uint64(total)
	}
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(77))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: a DISABLE/ENABLE toggle sequence gates counting exactly — a
// reference model tracks the expected value.
func TestEnableDisableGatingProperty(t *testing.T) {
	prop := func(ops []uint8) bool {
		prog := propProgram([]uint16{7000})
		// Two extra actions to toggle counter 0, fired manually.
		eng, inject := driveEngine(t, prog)
		enabled := true // the (TRUE) rule enabled it at Activate
		var model int64
		for _, op := range ops {
			switch op % 4 {
			case 0, 1: // packet
				inject(7000)
				if enabled {
					model++
				}
			case 2:
				eng.ExecCounterOp(core.ActDisableCntr, 0, 0)
				enabled = false
			case 3:
				eng.ExecCounterOp(core.ActEnableCntr, 0, 0)
				enabled = true
			}
		}
		return eng.CounterValue(0) == model
	}
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(78))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: counter arithmetic (assign/incr/decr/reset) matches a
// reference model for arbitrary op sequences on a local counter.
func TestCounterArithmeticProperty(t *testing.T) {
	prog := &core.Program{
		Name: "arith",
		Nodes: []core.NodeEntry{
			{Name: "a", MAC: packet.MAC{0, 0, 0, 0, 0, 1}, IP: packet.IP{10, 0, 0, 1}},
			{Name: "b", MAC: packet.MAC{0, 0, 0, 0, 0, 2}, IP: packet.IP{10, 0, 0, 2}},
		},
		Counters: []core.CounterEntry{
			{Name: "x", Kind: core.CounterLocal, Home: 1, Filter: -1, From: -1, To: -1},
		},
	}
	prop := func(ops []uint8, vals []int8) bool {
		eng, _ := driveEngine(t, prog)
		var model int64
		for i, op := range ops {
			v := int64(1)
			if i < len(vals) {
				v = int64(vals[i])
			}
			switch op % 4 {
			case 0:
				eng.ExecCounterOp(core.ActAssignCntr, 0, v)
				model = v
			case 1:
				eng.ExecCounterOp(core.ActIncrCntr, 0, v)
				model += v
			case 2:
				eng.ExecCounterOp(core.ActDecrCntr, 0, v)
				model -= v
			case 3:
				eng.ExecCounterOp(core.ActResetCntr, 0, 0)
				model = 0
			}
			if eng.CounterValue(0) != model {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(79))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
	_ = time.Now
}
