package core_test

// Chaos tests for the control plane: the testbed injects faults into the
// very medium INIT/START/STOP travel over, so the launch protocol must
// survive lossy wires, dead nodes and duplicated distributions — and
// every run must reach a terminal, reported outcome.

import (
	"fmt"
	"testing"
	"time"

	"virtualwire/internal/core"
	"virtualwire/internal/ether"
	"virtualwire/internal/fsl"
	"virtualwire/internal/packet"
	"virtualwire/internal/rll"
	"virtualwire/internal/sim"
	"virtualwire/internal/stack"
)

// lossyCtl is a stack layer that drops control-plane frames (the gob
// control ethertype and RLL encapsulations) with a fixed probability in
// both directions, drawing from the scheduler's deterministic RNG. With
// blackhole set it drops everything, simulating a node dead from t=0.
type lossyCtl struct {
	base      stack.Base
	sched     *sim.Scheduler
	drop      float64
	blackhole bool
	dropped   int
}

func (l *lossyCtl) SetBelow(d stack.Down) { l.base.SetBelow(d) }
func (l *lossyCtl) SetAbove(u stack.Up)   { l.base.SetAbove(u) }

func (l *lossyCtl) eats(fr *ether.Frame) bool {
	if l.blackhole {
		l.dropped++
		return true
	}
	if l.drop <= 0 {
		return false
	}
	switch fr.EtherType() {
	case packet.EtherTypeVWCtl, rll.EtherType:
		if l.sched.Rand().Float64() < l.drop {
			l.dropped++
			return true
		}
	}
	return false
}

func (l *lossyCtl) SendDown(fr *ether.Frame) {
	if !l.eats(fr) {
		l.base.PassDown(fr)
	}
}

func (l *lossyCtl) DeliverUp(fr *ether.Frame) {
	if !l.eats(fr) {
		l.base.PassUp(fr)
	}
}

// chaosRig builds n hosts on a shared bus with a lossyCtl layer under
// each engine (index 0 is the control node and is never lossy), plus an
// optional RLL layer between the loss point and the wire.
type chaosRig struct {
	rig
	loss []*lossyCtl
	rlls []*rll.RLL
}

func newChaosRig(t testing.TB, seed int64, nHosts int, script string, drop float64, withRLL bool) *chaosRig {
	t.Helper()
	prog, err := fsl.Compile(script)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	s := sim.NewScheduler(seed)
	bus := ether.NewSharedBus(s, ether.BusConfig{})
	cr := &chaosRig{rig: rig{sched: s, prog: prog}}
	for i := 0; i < nHosts; i++ {
		mac := packet.MAC{0, 0, 0, 0, 0, byte(i + 1)}
		ip := packet.IP{10, 0, 0, byte(i + 1)}
		h := stack.NewHost(s, fmt.Sprintf("node%d", i+1), mac, ip)
		bus.Attach(h.NIC)
		eng := core.NewEngine(s, mac)
		lc := &lossyCtl{sched: s}
		if i != 0 {
			lc.drop = drop
		}
		if withRLL {
			// The loss point is the wire itself: NIC ← lossy ← RLL ← engine,
			// so link retransmission sits above the loss and can mask it.
			rl := rll.New(s, mac, rll.Config{RTO: time.Millisecond})
			h.Build(lc, rl, eng)
			cr.rlls = append(cr.rlls, rl)
		} else {
			h.Build(lc, eng)
		}
		cr.hosts = append(cr.hosts, h)
		cr.engines = append(cr.engines, eng)
		cr.loss = append(cr.loss, lc)
	}
	for _, a := range cr.hosts {
		for _, b := range cr.hosts {
			a.Neighbors[b.IP] = b.MAC
		}
	}
	ctl, err := core.NewController(s, prog, cr.engines[0], 0)
	if err != nil {
		t.Fatalf("controller: %v", err)
	}
	cr.ctl = ctl
	return cr
}

const chaosScript = `
SCENARIO chaos 100ms
C: (node1)
(TRUE) >> ASSIGN_CNTR( C, 1 );
END`

// TestLaunchSurvivesControlLoss: at 50% control-frame drop the INIT
// distribution must still complete, via the retry loop.
func TestLaunchSurvivesControlLoss(t *testing.T) {
	r := newChaosRig(t, 41, 3, header(3, 1)+chaosScript, 0.50, false)
	r.ctl.InitRetryInterval = 2 * time.Millisecond
	if err := r.ctl.Launch(); err != nil {
		t.Fatalf("launch: %v", err)
	}
	r.run(t, time.Second)
	res := r.ctl.Result()
	if !res.Started {
		t.Fatalf("scenario did not start under 50%% control loss: %v", res)
	}
	if res.LaunchFailed {
		t.Errorf("launch reported failed despite starting: %v", res)
	}
	// The run started and then (no workload) went quiet: it must have
	// ended through the inactivity path, proving the engines came up.
	if !res.Inactivity {
		t.Errorf("started run did not reach the inactivity terminal: %v", res)
	}
	if r.ctl.Stats.ChunksResent == 0 || r.ctl.Stats.Retries == 0 {
		t.Errorf("no retries recorded (resent=%d retries=%d); seed produced no loss?",
			r.ctl.Stats.ChunksResent, r.ctl.Stats.Retries)
	}
	if r.ctl.Stats.AcksRcvd != 2 {
		t.Errorf("AcksRcvd = %d, want one per remote node", r.ctl.Stats.AcksRcvd)
	}
}

// TestLaunchFailsOnDeadNode: a node blackholed from t=0 must not stall
// the launch forever; the run ends with a reported degraded outcome.
func TestLaunchFailsOnDeadNode(t *testing.T) {
	r := newChaosRig(t, 42, 3, header(3, 1)+chaosScript, 0, false)
	r.loss[2].blackhole = true
	r.ctl.InitRetryInterval = time.Millisecond
	r.ctl.InitMaxAttempts = 3
	if err := r.ctl.Launch(); err != nil {
		t.Fatalf("launch: %v", err)
	}
	r.run(t, time.Second)
	res := r.ctl.Result()
	if !r.ctl.Finished() {
		t.Fatal("run never reached a terminal state with a dead node")
	}
	if res.Started {
		t.Errorf("scenario started without node3's ack: %v", res)
	}
	if !res.LaunchFailed {
		t.Errorf("LaunchFailed not reported: %v", res)
	}
	if len(res.Unreachable) != 1 || res.Unreachable[0] != core.NodeID(2) {
		t.Errorf("Unreachable = %v, want [2]", res.Unreachable)
	}
	if res.Passed(false) {
		t.Error("a failed launch must not pass")
	}
	// The live node acked and was seen; the dead one was never seen.
	if _, ok := r.ctl.LastSeen(core.NodeID(1)); !ok {
		t.Error("live node2 has no liveness record")
	}
	if _, ok := r.ctl.LastSeen(core.NodeID(2)); ok {
		t.Error("dead node3 has a liveness record")
	}
}

// TestDeadlineBoundsLaunch: with retries that never run out before the
// deadline, the launch deadline itself must produce the terminal state.
func TestDeadlineBoundsLaunch(t *testing.T) {
	r := newChaosRig(t, 43, 2, header(2, 1)+chaosScript, 0, false)
	r.loss[1].blackhole = true
	r.ctl.InitRetryInterval = 5 * time.Millisecond
	r.ctl.InitMaxAttempts = 1 << 20 // attempts never exhaust
	r.ctl.LaunchDeadline = 50 * time.Millisecond
	if err := r.ctl.Launch(); err != nil {
		t.Fatalf("launch: %v", err)
	}
	r.run(t, time.Second)
	res := r.ctl.Result()
	if !res.LaunchFailed || res.Started {
		t.Fatalf("deadline did not bound the launch: %v", res)
	}
	if res.StoppedAt > 60*time.Millisecond {
		t.Errorf("terminal at %v, want ~50ms deadline", res.StoppedAt)
	}
	if r.sched.Pending() > 64 {
		t.Errorf("%d events still queued after abandon; retry loop not disarmed?", r.sched.Pending())
	}
}

// TestDuplicateLaunchAndInitTolerated: a second Launch while the first
// distribution is still in flight re-sends everything; engines must
// re-acknowledge duplicates idempotently and the run still starts once.
func TestDuplicateLaunchAndInitTolerated(t *testing.T) {
	r := newChaosRig(t, 44, 3, header(3, 1)+chaosScript, 0, false)
	if err := r.ctl.Launch(); err != nil {
		t.Fatalf("launch: %v", err)
	}
	// No virtual time has passed: nothing is acked yet, so this re-sends
	// the full chunk sequence to every remote node.
	if err := r.ctl.Launch(); err != nil {
		t.Fatalf("second launch: %v", err)
	}
	r.run(t, time.Second)
	res := r.ctl.Result()
	if !res.Started {
		t.Fatalf("duplicate distribution prevented the start: %v", res)
	}
	if r.ctl.Stats.ChunksResent == 0 {
		t.Error("second Launch re-sent nothing")
	}
	var dups uint64
	for _, e := range r.engines[1:] {
		dups += e.Stats.InitDupChunks
	}
	if dups == 0 {
		t.Error("engines saw no duplicate INIT chunks")
	}
	if r.ctl.Stats.DupAcks == 0 {
		t.Error("controller saw no duplicate acks")
	}
	// A third Launch after the start must be a no-op.
	before := r.ctl.Stats.ChunksResent
	if err := r.ctl.Launch(); err != nil {
		t.Fatalf("post-start launch: %v", err)
	}
	if r.ctl.Stats.ChunksResent != before {
		t.Error("Launch after start re-sent chunks")
	}
}

// TestRLLMasksControlLoss: with the RLL under the loss point, wire-level
// drops are masked by link retransmission and the controller never needs
// its own retry loop.
func TestRLLMasksControlLoss(t *testing.T) {
	r := newChaosRig(t, 45, 3, header(3, 1)+chaosScript, 0.25, true)
	// Take the controller's own retry loop out of play: only the RLL may
	// recover the lost frames here.
	r.ctl.InitRetryInterval = 500 * time.Millisecond
	if err := r.ctl.Launch(); err != nil {
		t.Fatalf("launch: %v", err)
	}
	r.run(t, time.Second)
	if !r.ctl.Result().Started {
		t.Fatalf("scenario did not start with RLL masking loss: %v", r.ctl.Result())
	}
	if r.ctl.Stats.ChunksResent != 0 {
		t.Errorf("controller retried (%d chunks) although the RLL should mask loss",
			r.ctl.Stats.ChunksResent)
	}
	var retrans uint64
	for _, rl := range r.rlls {
		retrans += rl.Stats.DataRetrans
	}
	if retrans == 0 {
		t.Error("RLL retransmitted nothing; loss layer inert?")
	}
}

// TestDisabledRLLFallsBackToControllerRetries: the mixed testbed of the
// Figure 8 experiment runs with the RLL present but disabled; the control
// plane must then survive loss on its own.
func TestDisabledRLLFallsBackToControllerRetries(t *testing.T) {
	r := newChaosRig(t, 46, 3, header(3, 1)+chaosScript, 0.25, true)
	for _, rl := range r.rlls {
		rl.Disabled = true
	}
	r.ctl.InitRetryInterval = 2 * time.Millisecond
	if err := r.ctl.Launch(); err != nil {
		t.Fatalf("launch: %v", err)
	}
	r.run(t, time.Second)
	if !r.ctl.Result().Started {
		t.Fatalf("scenario did not start with disabled RLL: %v", r.ctl.Result())
	}
	if r.ctl.Stats.ChunksResent == 0 {
		t.Error("no controller retries with the RLL disabled; who masked the loss?")
	}
	for _, rl := range r.rlls {
		if rl.Stats.DataSent != 0 {
			t.Error("disabled RLL processed frames")
		}
	}
}

// TestControlPlaneAlwaysTerminates is the property test: for any seed and
// any control-frame drop rate — including total blackout — the run
// reaches a terminal reported state (started-then-inactive, or launch
// failed) and never hangs.
func TestControlPlaneAlwaysTerminates(t *testing.T) {
	for _, drop := range []float64{0, 0.25, 0.5, 1.0} {
		for seed := int64(1); seed <= 20; seed++ {
			r := newChaosRig(t, seed, 3, header(3, 1)+chaosScript, drop, false)
			r.ctl.InitRetryInterval = time.Millisecond
			r.ctl.InitMaxAttempts = 4
			r.ctl.LaunchDeadline = 200 * time.Millisecond
			if err := r.ctl.Launch(); err != nil {
				t.Fatalf("drop=%v seed=%d launch: %v", drop, seed, err)
			}
			// 5 virtual seconds is far past every bound in play (retry
			// attempts, launch deadline, 100ms inactivity timeout).
			if err := r.sched.RunUntil(5 * time.Second); err != nil {
				t.Fatalf("drop=%v seed=%d run: %v", drop, seed, err)
			}
			res := r.ctl.Result()
			if !r.ctl.Finished() {
				t.Fatalf("drop=%v seed=%d: run not terminal after 5s: %v", drop, seed, res)
			}
			switch {
			case res.Started:
				if !res.Stopped && !res.Inactivity {
					t.Errorf("drop=%v seed=%d: started but ended with neither STOP nor inactivity: %v",
						drop, seed, res)
				}
			case res.LaunchFailed:
				if len(res.Unreachable) == 0 {
					t.Errorf("drop=%v seed=%d: launch failed with empty Unreachable", drop, seed)
				}
			default:
				t.Errorf("drop=%v seed=%d: terminal but neither started nor launch-failed: %v",
					drop, seed, res)
			}
			if drop == 0 && !res.Started {
				t.Errorf("seed=%d: lossless launch did not start: %v", seed, res)
			}
			if drop == 1.0 && res.Started {
				t.Errorf("seed=%d: started under total control blackout", seed)
			}
		}
	}
}
