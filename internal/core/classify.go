package core

import (
	"bytes"
	"encoding/binary"

	"virtualwire/internal/ether"
)

// Classifier matches raw frames against the filter table. The default
// strategy is the paper's: a linear scan in table order with first-match
// priority ("the current VirtualWire implementation searches linearly
// through the packet type definitions", Section 7 — the cause of Figure
// 8's linear overhead growth). An optional ethertype-bucketed index is
// provided as the ablation DESIGN.md describes.
type Classifier struct {
	filters []FilterEntry
	// vars holds the run-time bindings of VAR-referenced tuples; nil
	// means unbound. Bindings are engine-local.
	vars [][]byte

	// Indexed selects the bucketed strategy.
	Indexed bool
	// buckets maps the 2-byte ethertype to candidate filter indices;
	// filters without a literal (12 2 pattern) tuple go to anyBucket.
	buckets   map[uint16][]int
	anyBucket []int

	// TuplesCompared counts tuple comparisons (the unit of the Figure 8
	// cost model).
	TuplesCompared uint64
	// FiltersScanned counts filter entries visited.
	FiltersScanned uint64

	// scratch holds the not-yet-committed variable bindings of the filter
	// currently being matched. Classification is strictly sequential per
	// engine, so one reusable slice replaces a per-call allocation on the
	// interception hot path.
	scratch []binding
}

// binding is a variable binding pending commit until the whole filter
// matches.
type binding struct {
	v   VarID
	val []byte
}

// NewClassifier builds a classifier over the program's filter table. The
// ethertype index is built lazily on the first indexed classification, so
// the default (linear, the paper's strategy and the faster one at
// testbed-typical table sizes — see docs/PERFORMANCE.md) pays nothing
// for the ablation it does not use.
func NewClassifier(p *Program) *Classifier {
	return &Classifier{
		filters: p.Filters,
		vars:    make([][]byte, len(p.Vars)),
	}
}

// buildIndex populates the ethertype buckets for the indexed strategy.
func (c *Classifier) buildIndex() {
	c.buckets = make(map[uint16][]int)
	c.anyBucket = nil
	for i := range c.filters {
		f := &c.filters[i]
		keyed := false
		for ti := range f.Tuples {
			tu := &f.Tuples[ti]
			if tu.Off == 12 && tu.Len == 2 && tu.Var < 0 && tu.Mask == nil {
				et := binary.BigEndian.Uint16(tu.Pattern)
				c.buckets[et] = append(c.buckets[et], i)
				keyed = true
				break
			}
		}
		if !keyed {
			c.anyBucket = append(c.anyBucket, i)
		}
	}
}

// Reset clears all run-time state — variable bindings and work counters —
// so the classifier (and its lazily built index) can be reused for a
// fresh run over the same filter table.
func (c *Classifier) Reset() {
	for i := range c.vars {
		c.vars[i] = nil
	}
	c.TuplesCompared = 0
	c.FiltersScanned = 0
	c.scratch = c.scratch[:0]
}

// VarBinding returns the current binding of a variable (nil if unbound).
func (c *Classifier) VarBinding(v VarID) []byte {
	if int(v) >= len(c.vars) {
		return nil
	}
	return c.vars[v]
}

// Classify returns the first matching filter, or -1. Variable tuples
// match unconditionally while unbound and bind (engine-locally) when the
// whole filter matches; once bound they require byte equality.
func (c *Classifier) Classify(fr *ether.Frame) FilterID {
	if c.Indexed {
		return c.classifyIndexed(fr)
	}
	for i := range c.filters {
		c.FiltersScanned++
		if c.matchFilter(i, fr) {
			return FilterID(i)
		}
	}
	return -1
}

func (c *Classifier) classifyIndexed(fr *ether.Frame) FilterID {
	if c.buckets == nil {
		c.buildIndex()
	}
	et := fr.EtherType()
	best := -1
	for _, i := range c.buckets[et] {
		c.FiltersScanned++
		if c.matchFilter(i, fr) {
			best = i
			break
		}
	}
	for _, i := range c.anyBucket {
		if best >= 0 && i > best {
			break
		}
		c.FiltersScanned++
		if c.matchFilter(i, fr) && (best < 0 || i < best) {
			best = i
			break
		}
	}
	return FilterID(best)
}

// matchFilter applies all tuples of filter i; on success it commits any
// new variable bindings.
func (c *Classifier) matchFilter(i int, fr *ether.Frame) bool {
	f := &c.filters[i]
	pending := c.scratch[:0]
	for ti := range f.Tuples {
		tu := &f.Tuples[ti]
		c.TuplesCompared++
		end := tu.Off + tu.Len
		if end > len(fr.Data) {
			c.scratch = pending
			return false
		}
		field := fr.Data[tu.Off:end]
		if tu.Var >= 0 {
			bound := c.vars[tu.Var]
			if bound == nil {
				// The copy still allocates, but only on the first
				// binding of a variable — never per packet.
				cp := make([]byte, len(field))
				copy(cp, field)
				pending = append(pending, binding{tu.Var, cp})
				continue
			}
			if !bytesEqualMasked(field, bound, tu.Mask) {
				c.scratch = pending
				return false
			}
			continue
		}
		if !bytesEqualMasked(field, tu.Pattern, tu.Mask) {
			c.scratch = pending
			return false
		}
	}
	for _, b := range pending {
		c.vars[b.v] = b.val
	}
	c.scratch = pending
	return true
}

func bytesEqualMasked(got, want, mask []byte) bool {
	if mask == nil {
		return bytes.Equal(got, want)
	}
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i]&mask[i] != want[i]&mask[i] {
			return false
		}
	}
	return true
}
