package core

import (
	"bytes"
	"encoding/binary"

	"virtualwire/internal/ether"
)

// Strategy selects how the classifier searches the filter table. All
// strategies implement identical semantics — same winning filter, same
// committed bindings — and differ only in work per packet (see
// docs/PERFORMANCE.md for the measured crossover).
type Strategy int

const (
	// StrategyDefault resolves to linear, or indexed when the engine's
	// UseIndexedClassifier compatibility flag is set.
	StrategyDefault Strategy = iota
	// StrategyLinear is the paper's: a scan in table order with
	// first-match priority ("the current VirtualWire implementation
	// searches linearly through the packet type definitions", Section 7 —
	// the cause of Figure 8's linear overhead growth). Fastest at
	// testbed-typical table sizes.
	StrategyLinear
	// StrategyIndexed buckets filters by a literal ethertype tuple — the
	// ablation DESIGN.md describes.
	StrategyIndexed
	// StrategyCompiled walks the program's compiled dispatch tree
	// (dispatch.go): flat in #filters.
	StrategyCompiled
	// StrategyAuto picks compiled for tables of AutoCompileThreshold or
	// more filters, linear below.
	StrategyAuto
)

// AutoCompileThreshold is the table size at which StrategyAuto switches
// from the linear scan to compiled dispatch. Below it the scan's lack of
// per-node probes wins; see the BenchmarkClassifierSize sweep.
const AutoCompileThreshold = 16

// String names the strategy as config surfaces spell it.
func (s Strategy) String() string {
	switch s {
	case StrategyDefault:
		return "default"
	case StrategyLinear:
		return "linear"
	case StrategyIndexed:
		return "indexed"
	case StrategyCompiled:
		return "compiled"
	case StrategyAuto:
		return "auto"
	}
	return "unknown"
}

// Resolve maps Default/Auto onto a concrete strategy for a table of
// nFilters entries (indexedCompat is the legacy UseIndexedClassifier
// flag).
func (s Strategy) Resolve(indexedCompat bool, nFilters int) Strategy {
	switch s {
	case StrategyDefault:
		if indexedCompat {
			return StrategyIndexed
		}
		return StrategyLinear
	case StrategyAuto:
		if nFilters >= AutoCompileThreshold {
			return StrategyCompiled
		}
		return StrategyLinear
	}
	return s
}

// Classifier matches raw frames against the filter table under one of the
// strategies above. Matching stages variable bindings and commits only
// the winning filter's, so every strategy reproduces linear first-match
// semantics exactly.
type Classifier struct {
	filters []FilterEntry
	// vars holds the run-time bindings of VAR-referenced tuples; nil
	// means unbound. Bindings are engine-local.
	vars [][]byte

	// Strategy selects the search (a concrete strategy; Default behaves
	// as linear).
	Strategy Strategy

	// buckets maps the 2-byte ethertype to candidate filter indices;
	// filters without a literal (12 2 pattern) tuple go to anyBucket.
	// Built lazily on the first indexed classification.
	buckets   map[uint16][]int
	anyBucket []int

	// dispatch is the compiled decision tree, shared immutably across
	// engines when adopted from Program.CompiledDispatch; built lazily
	// (privately) if the compiled strategy is selected without one.
	dispatch *Dispatch

	// TuplesCompared counts tuple comparisons (the unit of the Figure 8
	// cost model).
	TuplesCompared uint64
	// FiltersScanned counts filter entries visited. Compiled dispatch
	// scans a subset of the linear scan's filters for every frame.
	FiltersScanned uint64
	// NodeTests counts dispatch-tree field probes (compiled strategy
	// only). Kept separate from TuplesCompared so the per-filter
	// comparison counts stay strategy-monotone; the engine cost model
	// charges both at PerTuple.
	NodeTests uint64

	// scratch holds the not-yet-committed variable bindings of the filter
	// currently being matched; stash parks the winning candidate's
	// pending bindings while lower-priority table order is still being
	// ruled out (indexed strategy). Classification is strictly sequential
	// per engine, so two reusable slices replace per-call allocations on
	// the interception hot path.
	scratch []binding
	stash   []binding
}

// binding is a variable binding pending commit until the whole filter
// matches and wins.
type binding struct {
	v   VarID
	val []byte
}

// NewClassifier builds a classifier over the program's filter table. The
// ethertype index and the (local) dispatch tree build lazily on first use
// of their strategies, so the default pays nothing for ablations it does
// not use.
func NewClassifier(p *Program) *Classifier {
	return &Classifier{
		filters: p.Filters,
		vars:    make([][]byte, len(p.Vars)),
	}
}

// UseDispatch adopts a pre-built (shared, immutable) dispatch tree.
func (c *Classifier) UseDispatch(d *Dispatch) { c.dispatch = d }

// buildIndex populates the ethertype buckets for the indexed strategy.
func (c *Classifier) buildIndex() {
	c.buckets = make(map[uint16][]int)
	c.anyBucket = nil
	for i := range c.filters {
		f := &c.filters[i]
		keyed := false
		for ti := range f.Tuples {
			tu := &f.Tuples[ti]
			if tu.Off == 12 && tu.Len == 2 && tu.Var < 0 && tu.Mask == nil {
				et := binary.BigEndian.Uint16(tu.Pattern)
				c.buckets[et] = append(c.buckets[et], i)
				keyed = true
				break
			}
		}
		if !keyed {
			c.anyBucket = append(c.anyBucket, i)
		}
	}
}

// Reset clears all run-time state — variable bindings and work counters —
// so the classifier (and its lazily built structures) can be reused for a
// fresh run over the same filter table.
func (c *Classifier) Reset() {
	for i := range c.vars {
		c.vars[i] = nil
	}
	c.TuplesCompared = 0
	c.FiltersScanned = 0
	c.NodeTests = 0
	c.scratch = c.scratch[:0]
	c.stash = c.stash[:0]
}

// VarBinding returns the current binding of a variable (nil if unbound).
func (c *Classifier) VarBinding(v VarID) []byte {
	if int(v) >= len(c.vars) {
		return nil
	}
	return c.vars[v]
}

// Classify returns the first matching filter, or -1. Variable tuples
// match unconditionally while unbound and bind (engine-locally) when the
// whole filter matches AND wins first-match priority; once bound they
// require byte equality.
func (c *Classifier) Classify(fr *ether.Frame) FilterID {
	switch c.Strategy {
	case StrategyIndexed:
		return c.classifyIndexed(fr)
	case StrategyCompiled:
		return c.classifyCompiled(fr)
	}
	for i := range c.filters {
		c.FiltersScanned++
		if c.match(i, fr) {
			c.commit()
			return FilterID(i)
		}
	}
	return -1
}

func (c *Classifier) classifyIndexed(fr *ether.Frame) FilterID {
	if c.buckets == nil {
		c.buildIndex()
	}
	et := fr.EtherType()
	best := -1
	for _, i := range c.buckets[et] {
		c.FiltersScanned++
		if c.match(i, fr) {
			best = i
			c.stashPending()
			break
		}
	}
	// A lower-index unbucketed filter may still outrank the bucket match;
	// its bindings must not see (and must override) the loser's, so the
	// bucket winner's bindings sit in the stash, uncommitted, until the
	// scan settles.
	for _, i := range c.anyBucket {
		if best >= 0 && i > best {
			break
		}
		c.FiltersScanned++
		if c.match(i, fr) {
			best = i
			c.stashPending()
			break
		}
	}
	if best >= 0 {
		c.commitStash()
	}
	return FilterID(best)
}

func (c *Classifier) classifyCompiled(fr *ether.Frame) FilterID {
	if c.dispatch == nil {
		c.dispatch = BuildDispatch(c.filters)
	}
	d := c.dispatch
	if len(d.nodes) == 0 {
		return -1
	}
	ni := int32(0)
	for {
		n := &d.nodes[ni]
		if n.length == 0 {
			for _, i := range n.candidates {
				c.FiltersScanned++
				if c.match(int(i), fr) {
					c.commit()
					return FilterID(i)
				}
			}
			return -1
		}
		c.NodeTests++
		next := n.miss
		if end := n.off + n.length; end <= len(fr.Data) {
			if ch, ok := n.edges[packField(fr.Data[n.off:end])]; ok {
				next = ch
			}
		}
		if next < 0 {
			return -1
		}
		ni = next
	}
}

// match applies all tuples of filter i, staging any new variable bindings
// in c.scratch without committing them. The caller commits the winner's
// via commit (or parks them with stashPending while the scan continues).
func (c *Classifier) match(i int, fr *ether.Frame) bool {
	f := &c.filters[i]
	pending := c.scratch[:0]
	for ti := range f.Tuples {
		tu := &f.Tuples[ti]
		c.TuplesCompared++
		end := tu.Off + tu.Len
		if end > len(fr.Data) {
			c.scratch = pending
			return false
		}
		field := fr.Data[tu.Off:end]
		if tu.Var >= 0 {
			bound := c.vars[tu.Var]
			if bound == nil {
				// The copy still allocates, but only on the first
				// binding of a variable — never per packet.
				cp := make([]byte, len(field))
				copy(cp, field)
				pending = append(pending, binding{tu.Var, cp})
				continue
			}
			if !bytesEqualMasked(field, bound, tu.Mask) {
				c.scratch = pending
				return false
			}
			continue
		}
		if !bytesEqualMasked(field, tu.Pattern, tu.Mask) {
			c.scratch = pending
			return false
		}
	}
	c.scratch = pending
	return true
}

// commit installs the staged bindings of the filter match just returned
// by match.
func (c *Classifier) commit() {
	for _, b := range c.scratch {
		c.vars[b.v] = b.val
	}
	c.scratch = c.scratch[:0]
}

// stashPending parks the current staged bindings as the best candidate so
// far, replacing any earlier stash (a lower-priority match that lost).
func (c *Classifier) stashPending() {
	c.scratch, c.stash = c.stash[:0], c.scratch
}

// commitStash installs the stashed winner's bindings.
func (c *Classifier) commitStash() {
	for _, b := range c.stash {
		c.vars[b.v] = b.val
	}
	c.stash = c.stash[:0]
}

func bytesEqualMasked(got, want, mask []byte) bool {
	if mask == nil {
		return bytes.Equal(got, want)
	}
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i]&mask[i] != want[i]&mask[i] {
			return false
		}
	}
	return true
}
