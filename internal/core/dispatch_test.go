package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"virtualwire/internal/ether"
	"virtualwire/internal/packet"
)

// Regression for the indexed classifier committing a non-winner's
// bindings: a bucketed filter that matches first must not commit its VAR
// bindings when a lower-index anyBucket filter wins first-match priority.
func TestIndexedDoesNotCommitLosingBindings(t *testing.T) {
	p := &Program{
		Vars: []string{"winner_var", "loser_var"},
		Filters: []FilterEntry{
			// Filter 0: no ethertype literal -> anyBucket. Binds var 0.
			{Name: "any_wins", Tuples: []FilterTuple{
				{Off: 20, Len: 1, Pattern: []byte{0xAA}, Var: -1},
				{Off: 30, Len: 2, Var: 0},
			}},
			// Filter 1: ethertype-keyed -> bucket. Binds var 1. Matches
			// the same frame but loses on priority.
			{Name: "bucket_loses", Tuples: []FilterTuple{
				{Off: 12, Len: 2, Pattern: []byte{0x08, 0x00}, Var: -1},
				{Off: 32, Len: 2, Var: 1},
			}},
		},
	}
	fr := &ether.Frame{Data: make([]byte, 64)}
	fr.Data[12], fr.Data[13] = 0x08, 0x00
	fr.Data[20] = 0xAA
	fr.Data[30], fr.Data[31] = 0x11, 0x22
	fr.Data[32], fr.Data[33] = 0x33, 0x44

	for _, strat := range []Strategy{StrategyLinear, StrategyIndexed, StrategyCompiled} {
		c := NewClassifier(p)
		c.Strategy = strat
		if got := c.Classify(fr); got != 0 {
			t.Fatalf("%v: classified %d, want 0 (first-match priority)", strat, got)
		}
		if c.VarBinding(0) == nil {
			t.Errorf("%v: winner's variable not bound", strat)
		}
		if b := c.VarBinding(1); b != nil {
			t.Errorf("%v: losing filter's variable committed: %x", strat, b)
		}
	}
}

// randProgram generates a filter table exercising literals, masks and VAR
// tuples at colliding and disjoint offsets.
func randProgram(rng *rand.Rand) *Program {
	nVars := 1 + rng.Intn(3)
	vars := make([]string, nVars)
	for i := range vars {
		vars[i] = fmt.Sprintf("v%d", i)
	}
	nFilters := 1 + rng.Intn(12)
	filters := make([]FilterEntry, nFilters)
	for i := range filters {
		nTuples := 1 + rng.Intn(3)
		tuples := make([]FilterTuple, nTuples)
		for j := range tuples {
			// Offsets drawn from a small set so filters share fields
			// (discriminators) often; lengths 1 or 2.
			off := []int{12, 14, 20, 30, 58}[rng.Intn(5)]
			ln := 1 + rng.Intn(2)
			switch rng.Intn(4) {
			case 0: // VAR tuple
				tuples[j] = FilterTuple{Off: off, Len: ln, Var: VarID(rng.Intn(nVars))}
			case 1: // masked literal
				mask := make([]byte, ln)
				pat := make([]byte, ln)
				for k := range mask {
					mask[k] = byte(rng.Intn(256))
					pat[k] = byte(rng.Intn(4)) & mask[k]
				}
				tuples[j] = FilterTuple{Off: off, Len: ln, Mask: mask, Pattern: pat, Var: -1}
			default: // exact literal from a tiny alphabet (collisions likely)
				pat := make([]byte, ln)
				for k := range pat {
					pat[k] = byte(rng.Intn(4))
				}
				tuples[j] = FilterTuple{Off: off, Len: ln, Pattern: pat, Var: -1}
			}
		}
		filters[i] = FilterEntry{Name: fmt.Sprintf("f%d", i), Tuples: tuples}
	}
	return &Program{Vars: vars, Filters: filters}
}

// randFrame biases bytes toward the filters' tiny literal alphabet so
// matches actually occur; some frames are short.
func randFrame(rng *rand.Rand) *ether.Frame {
	n := 60 + rng.Intn(8)
	if rng.Intn(8) == 0 {
		n = 10 + rng.Intn(30) // short frame: exercises the residual path
	}
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(rng.Intn(4))
	}
	return &ether.Frame{Data: data}
}

// Property: linear, indexed and compiled strategies agree on the winning
// filter and the committed bindings over randomized tables and frame
// sequences, and compiled never scans more filters or compares more
// per-filter tuples than linear.
func TestClassifierStrategyEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(991))
	for trial := 0; trial < 400; trial++ {
		p := randProgram(rng)
		lin := NewClassifier(p)
		lin.Strategy = StrategyLinear
		idx := NewClassifier(p)
		idx.Strategy = StrategyIndexed
		cmp := NewClassifier(p)
		cmp.Strategy = StrategyCompiled
		cmp.UseDispatch(p.CompiledDispatch())

		for fi := 0; fi < 30; fi++ {
			fr := randFrame(rng)
			linBefore := struct{ t, f uint64 }{lin.TuplesCompared, lin.FiltersScanned}
			cmpBefore := struct{ t, f uint64 }{cmp.TuplesCompared, cmp.FiltersScanned}
			want := lin.Classify(fr)
			gotIdx := idx.Classify(fr)
			gotCmp := cmp.Classify(fr)
			if gotIdx != want || gotCmp != want {
				t.Fatalf("trial %d frame %d: linear=%d indexed=%d compiled=%d\ntable: %+v",
					trial, fi, want, gotIdx, gotCmp, p.Filters)
			}
			for v := range p.Vars {
				lb, ib, cb := lin.VarBinding(VarID(v)), idx.VarBinding(VarID(v)), cmp.VarBinding(VarID(v))
				if !bytes.Equal(lb, ib) || !bytes.Equal(lb, cb) {
					t.Fatalf("trial %d frame %d: var %d bindings diverge: linear=%x indexed=%x compiled=%x",
						trial, fi, v, lb, ib, cb)
				}
			}
			if cs, ls := cmp.FiltersScanned-cmpBefore.f, lin.FiltersScanned-linBefore.f; cs > ls {
				t.Fatalf("trial %d frame %d: compiled scanned %d filters, linear %d", trial, fi, cs, ls)
			}
			if ct, lt := cmp.TuplesCompared-cmpBefore.t, lin.TuplesCompared-linBefore.t; ct > lt {
				t.Fatalf("trial %d frame %d: compiled compared %d tuples, linear %d", trial, fi, ct, lt)
			}
		}
	}
}

// The dispatch tree is shared immutably: concurrent classifiers over the
// same Program (the campaign-worker shape) must not race — run under
// go test -race.
func TestDispatchSharedAcrossGoroutines(t *testing.T) {
	p := fig2Program()
	var wg sync.WaitGroup
	results := make([]FilterID, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := NewClassifier(p)
			c.Strategy = StrategyCompiled
			c.UseDispatch(p.CompiledDispatch())
			fr := tcpFrame(0x4000, 0x6000, 100, 200, packet.TCPAck)
			var last FilterID
			for i := 0; i < 200; i++ {
				last = c.Classify(fr)
			}
			results[g] = last
		}(g)
	}
	wg.Wait()
	for g, r := range results {
		if r != results[0] {
			t.Fatalf("goroutine %d classified %d, want %d", g, r, results[0])
		}
	}
}

func TestDispatchShape(t *testing.T) {
	p := fig2Program()
	s := p.CompiledDispatch().Shape()
	if s.Filters != 6 {
		t.Fatalf("shape filters = %d, want 6", s.Filters)
	}
	if s.Nodes < 1 || s.Leaves < 1 {
		t.Fatalf("degenerate shape: %+v", s)
	}
	// Ports (34,2)/(36,2) are exact literals: the tree must split on one
	// of them rather than collapsing into a single all-filters leaf.
	if s.Degenerate() {
		t.Fatalf("fig2 table compiled to a degenerate tree: %+v", s)
	}
	// Resolve(auto) picks linear for small tables and compiled at the
	// threshold.
	if got := StrategyAuto.Resolve(false, AutoCompileThreshold-1); got != StrategyLinear {
		t.Fatalf("auto below threshold = %v", got)
	}
	if got := StrategyAuto.Resolve(false, AutoCompileThreshold); got != StrategyCompiled {
		t.Fatalf("auto at threshold = %v", got)
	}
	if got := StrategyDefault.Resolve(true, 3); got != StrategyIndexed {
		t.Fatalf("default+compat = %v", got)
	}
}

// sweepProgram builds an n-filter table in the Figure 8 style: shared
// ethertype/protocol literals plus one discriminating destination-port
// literal per filter. The probe frame matches only the last filter — the
// linear scan's worst case.
func sweepProgram(n int) *Program {
	filters := make([]FilterEntry, n)
	for i := range filters {
		port := 0x4000 + i
		filters[i] = FilterEntry{
			Name: fmt.Sprintf("udp_port_%d", port),
			Tuples: []FilterTuple{
				{Off: 12, Len: 2, Pattern: []byte{0x08, 0x00}, Var: -1},
				{Off: 23, Len: 1, Pattern: []byte{0x11}, Var: -1},
				{Off: 36, Len: 2, Pattern: []byte{byte(port >> 8), byte(port)}, Var: -1},
			},
		}
	}
	return &Program{Filters: filters}
}

func sweepFrame(n int) *ether.Frame {
	data := make([]byte, 64)
	data[12], data[13] = 0x08, 0x00
	data[23] = 0x11
	port := 0x4000 + n - 1
	data[36], data[37] = byte(port>>8), byte(port)
	return &ether.Frame{Data: data}
}

// BenchmarkClassifierSize sweeps table size x strategy; scripts/check.sh
// gates compiled/n512 within 2x compiled/n8 (flatness), and bench.sh
// records the full sweep into BENCH_core.json.
func BenchmarkClassifierSize(b *testing.B) {
	for _, strat := range []Strategy{StrategyLinear, StrategyIndexed, StrategyCompiled} {
		for _, n := range []int{8, 64, 512} {
			b.Run(fmt.Sprintf("%s/n%d", strat, n), func(b *testing.B) {
				p := sweepProgram(n)
				c := NewClassifier(p)
				c.Strategy = strat
				if strat == StrategyCompiled {
					c.UseDispatch(p.CompiledDispatch())
				}
				fr := sweepFrame(n)
				want := FilterID(n - 1)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if c.Classify(fr) != want {
						b.Fatal("wrong filter")
					}
				}
			})
		}
	}
}
