package tcp

import (
	"testing"
	"time"
)

func TestSeqCompare(t *testing.T) {
	tests := []struct {
		a, b    uint32
		lt, leq bool
	}{
		{1, 2, true, true},
		{2, 1, false, false},
		{5, 5, false, true},
		// Wraparound: 0xFFFFFFF0 is "before" 0x10.
		{0xFFFFFFF0, 0x10, true, true},
		{0x10, 0xFFFFFFF0, false, false},
	}
	for _, tt := range tests {
		if got := seqLT(tt.a, tt.b); got != tt.lt {
			t.Errorf("seqLT(%#x,%#x) = %v, want %v", tt.a, tt.b, got, tt.lt)
		}
		if got := seqLEQ(tt.a, tt.b); got != tt.leq {
			t.Errorf("seqLEQ(%#x,%#x) = %v, want %v", tt.a, tt.b, got, tt.leq)
		}
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{
		StateClosed:      "CLOSED",
		StateListen:      "LISTEN",
		StateSynSent:     "SYN_SENT",
		StateSynReceived: "SYN_RCVD",
		StateEstablished: "ESTABLISHED",
		StateFinWait:     "FIN_WAIT",
		StateCloseWait:   "CLOSE_WAIT",
		StateClosing:     "CLOSING",
		State(99):        "State(99)",
	} {
		if got := st.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", int(st), got, want)
		}
	}
}

func TestRTTSampleConvergence(t *testing.T) {
	c := &Conn{}
	for i := 0; i < 50; i++ {
		c.rttSample(10 * time.Millisecond)
	}
	if c.srtt < 9*time.Millisecond || c.srtt > 11*time.Millisecond {
		t.Errorf("srtt = %v after steady samples of 10ms", c.srtt)
	}
	// RTO respects the floor.
	if c.rto < MinRTO {
		t.Errorf("rto = %v below MinRTO", c.rto)
	}
	// A spike inflates rttvar and so the RTO.
	before := c.rto
	c.rttSample(500 * time.Millisecond)
	if c.rto <= before {
		t.Errorf("rto did not react to an RTT spike: %v -> %v", before, c.rto)
	}
}

func TestReceiverWindowLimitsSender(t *testing.T) {
	// With a tiny advertised window the sender must not exceed it even
	// though cwnd allows more.
	p := newPair(t, 40, nil, nil)
	lst, _ := p.t2.Listen(0x4000)
	var rcvd int
	lst.OnAccept = func(c *Conn) {
		c.OnData = func(d []byte) { rcvd += len(d) }
	}
	cli, _ := p.t1.Connect(0x6000, p.h2.IP, 0x4000)
	cli.OnConnected = func() {
		cli.cwnd = 1000 // force the limit onto rwnd
		cli.rwnd = 2 * MSS
		cli.Send(make([]byte, 10*MSS))
	}
	if err := p.sched.RunUntil(200 * time.Millisecond); err != nil {
		t.Fatalf("run: %v", err)
	}
	// The peer keeps advertising its real (big) window in ACKs, so the
	// transfer proceeds; the point is the sender never had more than
	// rwnd in flight at once. Inspect the stats indirectly: no loss, no
	// retransmissions, everything delivered.
	if err := p.sched.RunUntil(5 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if rcvd != 10*MSS {
		t.Errorf("delivered %d, want %d", rcvd, 10*MSS)
	}
	if cli.Stats.Retransmissions != 0 {
		t.Errorf("retransmissions = %d", cli.Stats.Retransmissions)
	}
}

func TestDisableCongestionControlSendsBeyondCwnd(t *testing.T) {
	p := newPair(t, 41, nil, nil)
	lst, _ := p.t2.Listen(0x4000)
	lst.OnAccept = func(c *Conn) {}
	cli, _ := p.t1.Connect(0x6000, p.h2.IP, 0x4000)
	cli.DisableCongestionControl()
	sentAtOnce := 0
	cli.OnConnected = func() {
		cli.Send(make([]byte, 20*MSS))
		// With cwnd=1 a conforming sender would emit 1 segment; the
		// broken one blasts up to rwnd immediately.
		sentAtOnce = int(cli.inflight()) / MSS
	}
	if err := p.sched.RunUntil(time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if sentAtOnce < 10 {
		t.Errorf("broken sender emitted only %d segments at connect", sentAtOnce)
	}
}

func TestBufferedBytesAndPortAccessors(t *testing.T) {
	p := newPair(t, 42, nil, nil)
	lst, _ := p.t2.Listen(0x4000)
	lst.OnAccept = func(c *Conn) {}
	cli, _ := p.t1.Connect(0x6000, p.h2.IP, 0x4000)
	if cli.LocalPort() != 0x6000 {
		t.Errorf("LocalPort = %#x", cli.LocalPort())
	}
	ip, port := cli.RemoteAddr()
	if ip != p.h2.IP || port != 0x4000 {
		t.Errorf("RemoteAddr = %v:%#x", ip, port)
	}
	cli.Send(make([]byte, 100))
	if cli.BufferedBytes() != 100 {
		// Not yet established: everything stays buffered.
		t.Errorf("BufferedBytes = %d before connect", cli.BufferedBytes())
	}
	if err := p.sched.RunUntil(5 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if cli.BufferedBytes() != 0 {
		t.Errorf("BufferedBytes = %d after transfer", cli.BufferedBytes())
	}
}

func TestSimultaneousTransfersIndependent(t *testing.T) {
	// Two connections share the wire without corrupting each other.
	p := newPair(t, 43, nil, nil)
	mkServer := func(port uint16) *int {
		lst, err := p.t2.Listen(port)
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		n := new(int)
		lst.OnAccept = func(c *Conn) {
			c.OnData = func(d []byte) { *n += len(d) }
		}
		return n
	}
	nA := mkServer(1000)
	nB := mkServer(2000)
	cA, _ := p.t1.Connect(5001, p.h2.IP, 1000)
	cB, _ := p.t1.Connect(5002, p.h2.IP, 2000)
	cA.OnConnected = func() { cA.Send(make([]byte, 64*1024)) }
	cB.OnConnected = func() { cB.Send(make([]byte, 32*1024)) }
	if err := p.sched.RunUntil(30 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if *nA != 64*1024 || *nB != 32*1024 {
		t.Errorf("deliveries: A=%d B=%d", *nA, *nB)
	}
}
