// Package tcp is a from-scratch TCP implementation for the simulated
// testbed — the protocol under test in the paper's Section 6.1 case study
// and Section 7 throughput experiment.
//
// It implements what the paper's experiments exercise, following RFC 793
// and the congestion-control behaviour of RFC 2001 (the paper's reference
// [19]): three-way handshake with SYN retransmission and exponential
// backoff, cumulative acknowledgements, retransmission timeout with RTT
// estimation, slow start and congestion avoidance driven by ssthresh,
// fast retransmit on three duplicate ACKs, out-of-order reassembly, and
// graceful FIN close.
//
// The congestion window is maintained in segments (not bytes), which is
// also how the paper's Figure 5 analysis script models it: cwnd starts at
// 1, grows by one per ACK in slow start while cwnd <= ssthresh, and by
// one per cwnd ACKs in congestion avoidance. On a retransmission timeout
// ssthresh drops to max(flight/2, 2) and cwnd returns to 1 — so the
// script's "drop one SYNACK → ssthresh becomes 2" manipulation works
// against this implementation exactly as it did against Linux 2.4.17.
package tcp

import (
	"fmt"
	"time"

	"virtualwire/internal/ether"
	"virtualwire/internal/metrics"
	"virtualwire/internal/packet"
	"virtualwire/internal/sim"
	"virtualwire/internal/stack"
)

// MSS is the fixed maximum segment size. The testbed MTU comfortably
// accommodates it plus all encapsulation.
const MSS = 1400

// State is a TCP connection state.
type State int

// Connection states (subset of RFC 793 sufficient for the testbed).
const (
	StateClosed State = iota + 1
	StateListen
	StateSynSent
	StateSynReceived
	StateEstablished
	StateFinWait
	StateCloseWait
	StateClosing
)

// String names the state for traces and tests.
func (s State) String() string {
	switch s {
	case StateClosed:
		return "CLOSED"
	case StateListen:
		return "LISTEN"
	case StateSynSent:
		return "SYN_SENT"
	case StateSynReceived:
		return "SYN_RCVD"
	case StateEstablished:
		return "ESTABLISHED"
	case StateFinWait:
		return "FIN_WAIT"
	case StateCloseWait:
		return "CLOSE_WAIT"
	case StateClosing:
		return "CLOSING"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Timing constants. InitialRTO matches the conservative handshake timer
// of the era's kernels (scaled down to keep simulations brisk); MinRTO
// mirrors the Linux 200 ms floor.
const (
	InitialRTO = 1 * time.Second
	MinRTO     = 200 * time.Millisecond
	MaxRTO     = 60 * time.Second
)

// DefaultWindow is the fixed advertised receive window in bytes (the
// maximum encodable without window scaling, which the testbed omits).
const DefaultWindow = 65535

type connKey struct {
	localPort  uint16
	remoteIP   packet.IP
	remotePort uint16
}

// Stack is the per-host TCP endpoint: it demultiplexes inbound segments
// to connections and listeners.
type Stack struct {
	host      *stack.Host
	conns     map[connKey]*Conn
	listeners map[uint16]*Listener
	isn       uint32
	// retired accumulates the counters of connections that have been
	// torn down, so stack-level totals stay monotone across closes.
	retired Stats
}

// NewStack attaches a TCP endpoint to the host and registers it for IP
// protocol 6.
func NewStack(h *stack.Host) *Stack {
	s := &Stack{
		host:      h,
		conns:     make(map[connKey]*Conn),
		listeners: make(map[uint16]*Listener),
	}
	h.IPv4.Register(packet.ProtoTCP, s.deliver)
	return s
}

// Listener accepts inbound connections on a port.
type Listener struct {
	stack *Stack
	Port  uint16
	// OnAccept is invoked with each connection that completes the
	// handshake.
	OnAccept func(c *Conn)
}

// Listen binds a passive socket.
func (s *Stack) Listen(port uint16) (*Listener, error) {
	if _, taken := s.listeners[port]; taken {
		return nil, fmt.Errorf("tcp: port %d already listening on %s", port, s.host.Name)
	}
	l := &Listener{stack: s, Port: port}
	s.listeners[port] = l
	return l, nil
}

// Close stops accepting new connections.
func (l *Listener) Close() { delete(l.stack.listeners, l.Port) }

// Connect opens an active connection from localPort to dst:dstPort and
// begins the handshake. The returned connection reports readiness via
// OnConnected.
func (s *Stack) Connect(localPort uint16, dst packet.IP, dstPort uint16) (*Conn, error) {
	key := connKey{localPort, dst, dstPort}
	if _, exists := s.conns[key]; exists {
		return nil, fmt.Errorf("tcp: connection %v exists", key)
	}
	if _, err := s.host.LookupMAC(dst); err != nil {
		return nil, err
	}
	c := s.newConn(key)
	c.state = StateSynSent
	c.sendSyn(false)
	return c, nil
}

func (s *Stack) newConn(key connKey) *Conn {
	s.isn += 64000
	c := &Conn{
		stack:    s,
		key:      key,
		state:    StateClosed,
		iss:      s.isn,
		sndUna:   s.isn,
		sndNxt:   s.isn,
		cwnd:     1,
		ssthresh: 64, // segments; effectively "64 KB", per the paper
		rto:      InitialRTO,
		rwnd:     DefaultWindow,
		oo:       make(map[uint32][]byte),
	}
	c.rtx = sim.NewTimer(s.host.Sched, "tcp.rto")
	s.conns[key] = c
	return c
}

func (s *Stack) deliver(src, dst packet.IP, payload []byte) {
	hdr, err := packet.DecodeTCP(payload)
	if err != nil {
		return
	}
	data := payload[packet.TCPHeaderLen:]
	key := connKey{hdr.DstPort, src, hdr.SrcPort}
	if c, ok := s.conns[key]; ok {
		c.segment(hdr, data)
		return
	}
	// No connection: a listener may take the SYN.
	if hdr.Flags&packet.TCPSyn != 0 && hdr.Flags&packet.TCPAck == 0 {
		if l, ok := s.listeners[hdr.DstPort]; ok {
			c := s.newConn(key)
			c.listener = l
			c.state = StateSynReceived
			c.rcvNxt = hdr.Seq + 1
			c.sendSyn(true)
			return
		}
	}
	// Otherwise: send RST for non-RST segments (keeps peers from
	// retrying into the void).
	if hdr.Flags&packet.TCPRst == 0 {
		s.sendRaw(src, packet.TCP{
			SrcPort: hdr.DstPort, DstPort: hdr.SrcPort,
			Seq: hdr.Ack, Flags: packet.TCPRst,
		}, nil)
	}
}

// Reset discards every connection and listener and rewinds the ISN
// generator and retired-counter totals, returning the stack to its
// just-constructed state. Retransmission timers die with the scheduler
// reset that precedes this; the IP protocol registration survives.
func (s *Stack) Reset() {
	for key, c := range s.conns {
		c.rtx.Disarm()
		delete(s.conns, key)
	}
	for port := range s.listeners {
		delete(s.listeners, port)
	}
	s.isn = 0
	s.retired = Stats{}
}

// retire removes a torn-down connection, folding its counters into the
// stack totals first.
func (s *Stack) retire(c *Conn) {
	if _, ok := s.conns[c.key]; !ok {
		return
	}
	s.retired.add(c.Stats)
	delete(s.conns, c.key)
}

// TotalStats aggregates protocol counters over live and retired
// connections.
func (s *Stack) TotalStats() Stats {
	total := s.retired
	for _, c := range s.conns {
		total.add(c.Stats)
	}
	return total
}

// Snapshot implements the uniform metrics hook: aggregate protocol
// counters plus instantaneous congestion state summed over live
// connections.
func (s *Stack) Snapshot() metrics.Snapshot {
	st := s.TotalStats()
	var sn metrics.Snapshot
	sn.Counter("segments_sent", st.SegmentsSent)
	sn.Counter("segments_rcvd", st.SegmentsRcvd)
	sn.Counter("bytes_sent", st.BytesSent)
	sn.Counter("bytes_rcvd", st.BytesRcvd)
	sn.Counter("retransmissions", st.Retransmissions)
	sn.Counter("fast_retransmits", st.FastRetransmits)
	sn.Counter("timeouts", st.Timeouts)
	sn.Counter("syn_retries", st.SynRetries)
	sn.Counter("dup_acks_rcvd", st.DupAcksRcvd)
	var cwnd, ssthresh, buffered int
	for _, c := range s.conns {
		cwnd += c.cwnd
		ssthresh += c.ssthresh
		buffered += len(c.sndBuf)
	}
	sn.Gauge("conns", float64(len(s.conns)))
	sn.Gauge("cwnd_segments", float64(cwnd))
	sn.Gauge("ssthresh_segments", float64(ssthresh))
	sn.Gauge("send_buffered_bytes", float64(buffered))
	return sn
}

func (s *Stack) sendRaw(dst packet.IP, hdr packet.TCP, data []byte) {
	mac, err := s.host.LookupMAC(dst)
	if err != nil {
		return
	}
	hdr.Window = DefaultWindow
	fr := packet.BuildTCPFrame(s.host.MAC, mac, s.host.IP, dst, hdr, data)
	s.host.SendFrame(&ether.Frame{Data: fr})
}
