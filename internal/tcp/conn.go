package tcp

import (
	"time"

	"virtualwire/internal/packet"
	"virtualwire/internal/sim"
)

// Stats counts per-connection protocol events.
type Stats struct {
	SegmentsSent    uint64
	SegmentsRcvd    uint64
	BytesSent       uint64
	BytesRcvd       uint64
	Retransmissions uint64
	FastRetransmits uint64
	Timeouts        uint64
	SynRetries      uint64
	DupAcksRcvd     uint64
}

// add folds another connection's counters into s.
func (s *Stats) add(o Stats) {
	s.SegmentsSent += o.SegmentsSent
	s.SegmentsRcvd += o.SegmentsRcvd
	s.BytesSent += o.BytesSent
	s.BytesRcvd += o.BytesRcvd
	s.Retransmissions += o.Retransmissions
	s.FastRetransmits += o.FastRetransmits
	s.Timeouts += o.Timeouts
	s.SynRetries += o.SynRetries
	s.DupAcksRcvd += o.DupAcksRcvd
}

type rtxSeg struct {
	seq  uint32
	data []byte
	fin  bool
}

// Conn is one TCP connection endpoint.
type Conn struct {
	stack    *Stack
	key      connKey
	listener *Listener
	state    State

	// OnConnected fires when the handshake completes (both roles).
	OnConnected func()
	// OnData fires with each chunk of in-order application data.
	OnData func(data []byte)
	// OnClose fires when the peer's FIN has been consumed.
	OnClose func()
	// OnFail fires if the handshake or a retransmission gives up.
	OnFail func()

	// Stats accumulates counters.
	Stats Stats

	iss    uint32
	sndUna uint32
	sndNxt uint32
	rcvNxt uint32

	sndBuf  []byte
	rtxQ    []rtxSeg
	closing bool
	finSent bool

	cwnd     int // segments
	ssthresh int // segments
	caCount  int // ACKs accumulated toward +1 in congestion avoidance
	dupAcks  int
	rwnd     uint32

	rto      time.Duration
	srtt     time.Duration
	rttvar   time.Duration
	rttSeq   uint32 // segment being timed (Karn's rule)
	rttAt    time.Duration
	rttValid bool

	rtx        *sim.Timer
	synRetries int

	oo       map[uint32][]byte
	ooFin    uint32
	ooFinSet bool

	noCC bool
}

// DisableCongestionControl removes the congestion-window limit from the
// sender, which then transmits up to the peer's advertised window
// regardless of cwnd. It emulates the kind of non-conforming TCP
// implementation the paper's Figure 5 analysis script exists to catch.
func (c *Conn) DisableCongestionControl() { c.noCC = true }

// seqLT reports a < b in 32-bit sequence space.
func seqLT(a, b uint32) bool { return int32(a-b) < 0 }

// seqLEQ reports a <= b in 32-bit sequence space.
func seqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }

// State returns the connection state.
func (c *Conn) State() State { return c.state }

// CWND returns the congestion window in segments.
func (c *Conn) CWND() int { return c.cwnd }

// Ssthresh returns the slow-start threshold in segments.
func (c *Conn) Ssthresh() int { return c.ssthresh }

// InSlowStart reports whether the sender is in the slow-start regime
// (cwnd <= ssthresh, the same predicate as the paper's Figure 5 script).
func (c *Conn) InSlowStart() bool { return c.cwnd <= c.ssthresh }

// LocalPort returns the connection's local port.
func (c *Conn) LocalPort() uint16 { return c.key.localPort }

// RemoteAddr returns the peer IP and port.
func (c *Conn) RemoteAddr() (packet.IP, uint16) { return c.key.remoteIP, c.key.remotePort }

// BufferedBytes reports unsent application data.
func (c *Conn) BufferedBytes() int { return len(c.sndBuf) }

// Send appends application data to the send buffer; it is segmented and
// transmitted as the congestion and receive windows allow.
func (c *Conn) Send(data []byte) {
	c.sndBuf = append(c.sndBuf, data...)
	if c.state == StateEstablished || c.state == StateCloseWait {
		c.trySend()
	}
}

// Close flushes buffered data and then sends FIN.
func (c *Conn) Close() {
	if c.closing {
		return
	}
	c.closing = true
	if c.state == StateEstablished || c.state == StateCloseWait {
		c.trySend()
	}
}

// --- handshake ---

func (c *Conn) sendSyn(synack bool) {
	flags := byte(packet.TCPSyn)
	hdr := packet.TCP{
		SrcPort: c.key.localPort,
		DstPort: c.key.remotePort,
		Seq:     c.iss,
	}
	if synack {
		flags |= packet.TCPAck
		hdr.Ack = c.rcvNxt
	}
	hdr.Flags = flags
	c.sndNxt = c.iss + 1
	c.Stats.SegmentsSent++
	c.stack.sendRaw(c.key.remoteIP, hdr, nil)
	c.armSynTimer(synack)
}

func (c *Conn) armSynTimer(synack bool) {
	backoff := c.rto << uint(c.synRetries)
	if backoff > MaxRTO {
		backoff = MaxRTO
	}
	c.rtx.Arm(backoff, func() {
		if c.state != StateSynSent && c.state != StateSynReceived {
			return
		}
		c.synRetries++
		c.Stats.SynRetries++
		c.Stats.Timeouts++
		if c.synRetries > 6 {
			c.fail()
			return
		}
		// A handshake retransmission is a loss event: ssthresh
		// collapses to its floor of 2 segments and cwnd to 1 — the
		// behaviour the Figure 5 scenario induces on purpose.
		c.enterLoss()
		c.Stats.SegmentsSent++
		hdr := packet.TCP{
			SrcPort: c.key.localPort, DstPort: c.key.remotePort,
			Seq: c.iss, Flags: packet.TCPSyn,
		}
		if synack {
			hdr.Flags |= packet.TCPAck
			hdr.Ack = c.rcvNxt
		}
		c.stack.sendRaw(c.key.remoteIP, hdr, nil)
		c.armSynTimer(synack)
	})
}

// enterLoss applies the RTO congestion response.
func (c *Conn) enterLoss() {
	flightSegs := int(c.sndNxt-c.sndUna+MSS-1) / MSS
	half := flightSegs / 2
	if half < 2 {
		half = 2
	}
	c.ssthresh = half
	c.cwnd = 1
	c.caCount = 0
	c.dupAcks = 0
}

func (c *Conn) fail() {
	c.state = StateClosed
	c.rtx.Disarm()
	c.stack.retire(c)
	if c.OnFail != nil {
		c.OnFail()
	}
}

// --- segment processing ---

func (c *Conn) segment(hdr packet.TCP, data []byte) {
	c.Stats.SegmentsRcvd++
	if hdr.Flags&packet.TCPRst != 0 {
		c.fail()
		return
	}
	switch c.state {
	case StateSynSent:
		if hdr.Flags&(packet.TCPSyn|packet.TCPAck) == packet.TCPSyn|packet.TCPAck &&
			hdr.Ack == c.iss+1 {
			c.rcvNxt = hdr.Seq + 1
			c.sndUna = hdr.Ack
			c.rwnd = uint32(hdr.Window)
			c.state = StateEstablished
			c.synRetries = 0
			c.rto = InitialRTO
			c.rtx.Disarm()
			c.sendAck()
			if c.OnConnected != nil {
				c.OnConnected()
			}
			c.trySend()
		}
	case StateSynReceived:
		if hdr.Flags&packet.TCPAck != 0 && hdr.Ack == c.iss+1 {
			c.sndUna = hdr.Ack
			c.rwnd = uint32(hdr.Window)
			c.state = StateEstablished
			c.synRetries = 0
			c.rto = InitialRTO
			c.rtx.Disarm()
			if c.listener != nil && c.listener.OnAccept != nil {
				c.listener.OnAccept(c)
			}
			if c.OnConnected != nil {
				c.OnConnected()
			}
			// The completing ACK may carry data.
			if len(data) > 0 || hdr.Flags&packet.TCPFin != 0 {
				c.processData(hdr, data)
			}
		} else if hdr.Flags&packet.TCPSyn != 0 {
			// Duplicate SYN (our SYNACK was lost): resend SYNACK now.
			c.Stats.SegmentsSent++
			c.stack.sendRaw(c.key.remoteIP, packet.TCP{
				SrcPort: c.key.localPort, DstPort: c.key.remotePort,
				Seq: c.iss, Ack: c.rcvNxt,
				Flags: packet.TCPSyn | packet.TCPAck,
			}, nil)
		}
	case StateEstablished, StateFinWait, StateCloseWait, StateClosing:
		if hdr.Flags&packet.TCPAck != 0 {
			c.processAck(hdr, len(data) > 0)
		}
		c.processData(hdr, data)
	}
}

func (c *Conn) processAck(hdr packet.TCP, hasData bool) {
	ack := hdr.Ack
	c.rwnd = uint32(hdr.Window)
	if seqLT(c.sndUna, ack) && seqLEQ(ack, c.sndNxt) {
		// New data acknowledged.
		c.sndUna = ack
		c.dupAcks = 0
		// RTT sample (Karn: only if the timed segment was not
		// retransmitted and is now fully acked).
		if c.rttValid && seqLT(c.rttSeq, ack) {
			c.rttSample(c.stack.host.Sched.Now() - c.rttAt)
			c.rttValid = false
		}
		// Drop fully acked retransmission entries.
		keep := c.rtxQ[:0]
		for _, s := range c.rtxQ {
			end := s.seq + uint32(len(s.data))
			if s.fin {
				end++
			}
			if seqLT(ack, end) {
				keep = append(keep, s)
			}
		}
		c.rtxQ = keep
		c.growCwnd()
		if len(c.rtxQ) == 0 {
			c.rtx.Disarm()
		} else {
			c.armRTO()
		}
		c.trySend()
		if c.finSent && c.sndUna == c.sndNxt {
			c.finAcked()
		}
		return
	}
	if ack == c.sndUna && len(c.rtxQ) > 0 && !hasData {
		c.dupAcks++
		c.Stats.DupAcksRcvd++
		if c.dupAcks == 3 {
			c.fastRetransmit()
		}
	}
}

// growCwnd applies slow start or congestion avoidance, one ACK at a time,
// mirroring the paper's script: slow start while cwnd <= ssthresh.
func (c *Conn) growCwnd() {
	if c.cwnd <= c.ssthresh {
		c.cwnd++
		return
	}
	c.caCount++
	if c.caCount >= c.cwnd {
		c.caCount = 0
		c.cwnd++
	}
}

func (c *Conn) processData(hdr packet.TCP, data []byte) {
	fin := hdr.Flags&packet.TCPFin != 0
	if len(data) == 0 && !fin {
		return
	}
	seq := hdr.Seq
	switch {
	case seq == c.rcvNxt:
		if len(data) > 0 {
			c.rcvNxt += uint32(len(data))
			c.Stats.BytesRcvd += uint64(len(data))
			if c.OnData != nil {
				c.OnData(data)
			}
		}
		if fin {
			c.rcvNxt++
			c.consumeFin()
		}
		c.drainOutOfOrder()
		c.sendAck()
	case seqLT(c.rcvNxt, seq):
		// Future segment: hold for reassembly, emit a duplicate ACK.
		if len(data) > 0 {
			c.stashOutOfOrder(seq, data, fin)
		}
		c.sendAck()
	default:
		// Old retransmission: re-ack so the sender advances.
		c.sendAck()
	}
}

func (c *Conn) consumeFin() {
	switch c.state {
	case StateEstablished:
		c.state = StateCloseWait
	case StateFinWait:
		c.state = StateClosed
		c.stack.retire(c)
	}
	if c.OnClose != nil {
		c.OnClose()
	}
}

func (c *Conn) finAcked() {
	switch c.state {
	case StateEstablished:
		c.state = StateFinWait
	case StateCloseWait, StateClosing:
		c.state = StateClosed
		c.rtx.Disarm()
		c.stack.retire(c)
	}
}

// --- out-of-order reassembly ---

func (c *Conn) stashOutOfOrder(seq uint32, data []byte, fin bool) {
	if c.oo == nil {
		c.oo = make(map[uint32][]byte)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	c.oo[seq] = cp
	if fin {
		c.ooFin = seq + uint32(len(data))
		c.ooFinSet = true
	}
}

func (c *Conn) drainOutOfOrder() {
	for {
		data, ok := c.oo[c.rcvNxt]
		if !ok {
			break
		}
		delete(c.oo, c.rcvNxt)
		c.rcvNxt += uint32(len(data))
		c.Stats.BytesRcvd += uint64(len(data))
		if c.OnData != nil {
			c.OnData(data)
		}
	}
	if c.ooFinSet && c.rcvNxt == c.ooFin {
		c.ooFinSet = false
		c.rcvNxt++
		c.consumeFin()
	}
}

// --- transmission ---

func (c *Conn) sendAck() {
	c.Stats.SegmentsSent++
	c.stack.sendRaw(c.key.remoteIP, packet.TCP{
		SrcPort: c.key.localPort, DstPort: c.key.remotePort,
		Seq: c.sndNxt, Ack: c.rcvNxt, Flags: packet.TCPAck,
	}, nil)
}

// inflight returns unacknowledged bytes.
func (c *Conn) inflight() uint32 { return c.sndNxt - c.sndUna }

// trySend emits as many segments as both windows allow, then a FIN when
// closing with an empty buffer.
func (c *Conn) trySend() {
	if c.state != StateEstablished && c.state != StateCloseWait {
		return
	}
	wnd := uint32(c.cwnd) * MSS
	if c.noCC {
		wnd = c.rwnd
	}
	if c.rwnd < wnd {
		wnd = c.rwnd
	}
	for len(c.sndBuf) > 0 && c.inflight() < wnd {
		n := len(c.sndBuf)
		if n > MSS {
			n = MSS
		}
		if rem := wnd - c.inflight(); uint32(n) > rem {
			// Send a short segment only if nothing is in flight
			// (avoid silly window).
			if c.inflight() > 0 {
				break
			}
			if rem == 0 {
				break
			}
			n = int(rem)
		}
		data := make([]byte, n)
		copy(data, c.sndBuf[:n])
		c.sndBuf = c.sndBuf[n:]
		seq := c.sndNxt
		c.sndNxt += uint32(n)
		c.rtxQ = append(c.rtxQ, rtxSeg{seq: seq, data: data})
		c.emit(seq, data, false)
		if !c.rttValid {
			c.rttValid = true
			c.rttSeq = seq
			c.rttAt = c.stack.host.Sched.Now()
		}
		if !c.rtx.Armed() {
			c.armRTO()
		}
	}
	if c.closing && !c.finSent && len(c.sndBuf) == 0 {
		c.finSent = true
		seq := c.sndNxt
		c.sndNxt++
		c.rtxQ = append(c.rtxQ, rtxSeg{seq: seq, fin: true})
		c.Stats.SegmentsSent++
		c.stack.sendRaw(c.key.remoteIP, packet.TCP{
			SrcPort: c.key.localPort, DstPort: c.key.remotePort,
			Seq: seq, Ack: c.rcvNxt, Flags: packet.TCPFin | packet.TCPAck,
		}, nil)
		if !c.rtx.Armed() {
			c.armRTO()
		}
	}
}

func (c *Conn) emit(seq uint32, data []byte, isRtx bool) {
	flags := byte(packet.TCPAck | packet.TCPPsh)
	c.Stats.SegmentsSent++
	c.Stats.BytesSent += uint64(len(data))
	if isRtx {
		c.Stats.Retransmissions++
	}
	c.stack.sendRaw(c.key.remoteIP, packet.TCP{
		SrcPort: c.key.localPort, DstPort: c.key.remotePort,
		Seq: seq, Ack: c.rcvNxt, Flags: flags,
	}, data)
}

func (c *Conn) armRTO() {
	c.rtx.Arm(c.rto, c.onRTO)
}

func (c *Conn) onRTO() {
	if len(c.rtxQ) == 0 {
		return
	}
	c.Stats.Timeouts++
	c.enterLoss()
	c.rto *= 2
	if c.rto > MaxRTO {
		c.rto = MaxRTO
	}
	c.rttValid = false // Karn: retransmitted segments are not timed
	c.retransmitHead()
	c.armRTO()
}

func (c *Conn) retransmitHead() {
	s := c.rtxQ[0]
	if s.fin {
		c.Stats.SegmentsSent++
		c.Stats.Retransmissions++
		c.stack.sendRaw(c.key.remoteIP, packet.TCP{
			SrcPort: c.key.localPort, DstPort: c.key.remotePort,
			Seq: s.seq, Ack: c.rcvNxt, Flags: packet.TCPFin | packet.TCPAck,
		}, nil)
		return
	}
	c.emit(s.seq, s.data, true)
}

func (c *Conn) fastRetransmit() {
	c.Stats.FastRetransmits++
	flightSegs := int(c.inflight()+MSS-1) / MSS
	half := flightSegs / 2
	if half < 2 {
		half = 2
	}
	c.ssthresh = half
	c.cwnd = half // Reno: resume at ssthresh after the fast retransmit
	c.caCount = 0
	c.rttValid = false
	c.retransmitHead()
	c.armRTO()
}

// rttSample folds a measurement into srtt/rttvar per RFC 6298.
func (c *Conn) rttSample(m time.Duration) {
	if c.srtt == 0 {
		c.srtt = m
		c.rttvar = m / 2
	} else {
		d := c.srtt - m
		if d < 0 {
			d = -d
		}
		c.rttvar = (3*c.rttvar + d) / 4
		c.srtt = (7*c.srtt + m) / 8
	}
	rto := c.srtt + 4*c.rttvar
	if rto < MinRTO {
		rto = MinRTO
	}
	if rto > MaxRTO {
		rto = MaxRTO
	}
	c.rto = rto
}
