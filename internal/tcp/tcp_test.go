package tcp

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"virtualwire/internal/ether"
	"virtualwire/internal/packet"
	"virtualwire/internal/sim"
	"virtualwire/internal/stack"
)

// dropLayer drops frames matching a predicate; a crude stand-in for the
// fault injection engine so TCP can be tested below the core package.
type dropLayer struct {
	base stack.Base
	// dropUp decides whether an inbound frame is consumed.
	dropUp func(fr *ether.Frame) bool
	// dropDown decides whether an outbound frame is consumed.
	dropDown func(fr *ether.Frame) bool
}

func (d *dropLayer) SendDown(fr *ether.Frame) {
	if d.dropDown != nil && d.dropDown(fr) {
		return
	}
	d.base.PassDown(fr)
}

func (d *dropLayer) DeliverUp(fr *ether.Frame) {
	if d.dropUp != nil && d.dropUp(fr) {
		return
	}
	d.base.PassUp(fr)
}

func (d *dropLayer) SetBelow(dn stack.Down) { d.base.SetBelow(dn) }
func (d *dropLayer) SetAbove(u stack.Up)    { d.base.SetAbove(u) }

// tcpFlagsOf extracts the TCP flags byte of an IPv4/TCP frame, or 0.
func tcpFlagsOf(fr *ether.Frame) byte {
	if fr.EtherType() != packet.EtherTypeIPv4 || len(fr.Data) <= packet.OffTCPFlags {
		return 0
	}
	if fr.Data[packet.OffIPProto] != packet.ProtoTCP {
		return 0
	}
	return fr.Data[packet.OffTCPFlags]
}

type pair struct {
	sched  *sim.Scheduler
	h1, h2 *stack.Host
	t1, t2 *Stack
}

// newPair builds two hosts over a clean switch; layers1/layers2 sit
// between NIC and IP on the respective hosts.
func newPair(t testing.TB, seed int64, layers1, layers2 []stack.Layer) *pair {
	t.Helper()
	s := sim.NewScheduler(seed)
	sw := ether.NewSwitch(s, ether.SwitchConfig{})
	h1 := stack.NewHost(s, "node1", packet.MAC{0, 0, 0, 0, 0, 1}, packet.IP{192, 168, 1, 1})
	h2 := stack.NewHost(s, "node2", packet.MAC{0, 0, 0, 0, 0, 2}, packet.IP{192, 168, 1, 2})
	for _, h := range []*stack.Host{h1, h2} {
		h.Neighbors[h1.IP] = h1.MAC
		h.Neighbors[h2.IP] = h2.MAC
	}
	sw.AttachHost(h1.NIC)
	sw.AttachHost(h2.NIC)
	h1.Build(layers1...)
	h2.Build(layers2...)
	return &pair{sched: s, h1: h1, h2: h2, t1: NewStack(h1), t2: NewStack(h2)}
}

// transfer sends n bytes from p.h1 to p.h2 and returns the received
// bytes plus the client connection.
func transfer(t testing.TB, p *pair, n int, horizon time.Duration) ([]byte, *Conn) {
	t.Helper()
	lst, err := p.t2.Listen(0x4000)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	var rcvd bytes.Buffer
	closed := false
	lst.OnAccept = func(c *Conn) {
		c.OnData = func(d []byte) { rcvd.Write(d) }
		c.OnClose = func() { closed = true; c.Close() }
	}
	payload := make([]byte, n)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	cli, err := p.t1.Connect(0x6000, p.h2.IP, 0x4000)
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	cli.OnConnected = func() {
		cli.Send(payload)
		cli.Close()
	}
	if err := p.sched.RunUntil(horizon); err != nil {
		t.Fatalf("run: %v", err)
	}
	_ = closed
	return rcvd.Bytes(), cli
}

func TestHandshakeAndBulkTransfer(t *testing.T) {
	p := newPair(t, 1, nil, nil)
	const n = 100 * 1024
	got, cli := transfer(t, p, n, 30*time.Second)
	if len(got) != n {
		t.Fatalf("received %d bytes, want %d", len(got), n)
	}
	for i, b := range got {
		if b != byte(i%251) {
			t.Fatalf("byte %d corrupted", i)
		}
	}
	if cli.Stats.Retransmissions != 0 {
		t.Errorf("retransmissions on a clean wire: %d", cli.Stats.Retransmissions)
	}
}

func TestSlowStartGrowth(t *testing.T) {
	p := newPair(t, 2, nil, nil)
	_, cli := transfer(t, p, 50*1024, 30*time.Second)
	// 50 KB = 37 segments; with default ssthresh 64 everything happens
	// in slow start, so cwnd should have grown well past 1.
	if cli.CWND() < 10 {
		t.Errorf("cwnd = %d after slow-start bulk transfer, want >= 10", cli.CWND())
	}
	if !cli.InSlowStart() {
		t.Errorf("left slow start (cwnd=%d ssthresh=%d) without losses", cli.CWND(), cli.Ssthresh())
	}
}

// TestSynAckDropSetsSsthreshTwo reproduces the Figure 5 precondition:
// dropping the first SYNACK at the client forces a handshake timeout, and
// the retransmission must leave ssthresh at 2 and cwnd at 1.
func TestSynAckDropSetsSsthreshTwo(t *testing.T) {
	synacks := 0
	dl := &dropLayer{dropUp: func(fr *ether.Frame) bool {
		fl := tcpFlagsOf(fr)
		if fl&(packet.TCPSyn|packet.TCPAck) == packet.TCPSyn|packet.TCPAck {
			synacks++
			return synacks == 1 // drop only the first
		}
		return false
	}}
	p := newPair(t, 3, []stack.Layer{dl}, nil)
	lst, _ := p.t2.Listen(0x4000)
	lst.OnAccept = func(c *Conn) {}
	cli, err := p.t1.Connect(0x6000, p.h2.IP, 0x4000)
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	connected := false
	var atConnect struct{ cwnd, ssthresh int }
	cli.OnConnected = func() {
		connected = true
		atConnect.cwnd = cli.CWND()
		atConnect.ssthresh = cli.Ssthresh()
	}
	if err := p.sched.RunUntil(10 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !connected {
		t.Fatal("handshake never completed after SYNACK drop")
	}
	if cli.Stats.SynRetries == 0 {
		t.Error("no SYN retransmission despite SYNACK drop")
	}
	if atConnect.ssthresh != 2 {
		t.Errorf("ssthresh = %d at connect, want 2 (paper's Figure 5 setup)", atConnect.ssthresh)
	}
	if atConnect.cwnd != 1 {
		t.Errorf("cwnd = %d at connect, want 1", atConnect.cwnd)
	}
}

// TestCongestionAvoidanceCrossover verifies the Figure 5 behaviour end to
// end: with ssthresh forced to 2, the sender must leave slow start after
// roughly two ACKs and grow cwnd linearly afterwards.
func TestCongestionAvoidanceCrossover(t *testing.T) {
	synacks := 0
	dl := &dropLayer{dropUp: func(fr *ether.Frame) bool {
		fl := tcpFlagsOf(fr)
		if fl&(packet.TCPSyn|packet.TCPAck) == packet.TCPSyn|packet.TCPAck {
			synacks++
			return synacks == 1
		}
		return false
	}}
	p := newPair(t, 4, []stack.Layer{dl}, nil)
	got, cli := transfer(t, p, 60*1024, 60*time.Second)
	if len(got) != 60*1024 {
		t.Fatalf("received %d bytes", len(got))
	}
	if cli.Ssthresh() != 2 {
		t.Fatalf("ssthresh = %d, want 2", cli.Ssthresh())
	}
	if cli.InSlowStart() {
		t.Error("sender never switched to congestion avoidance")
	}
	// 60 KB = 44 segments => 44 ACKs. Slow start spends ~2 of them;
	// congestion avoidance then grows cwnd by ~1 per cwnd ACKs starting
	// at 3: 3+4+5+6+7+8 = 33 ACKs reaches cwnd 9. cwnd must be well
	// below the ~44 slow start would have reached.
	if cli.CWND() > 12 {
		t.Errorf("cwnd = %d; congestion avoidance should grow linearly (expected <= ~10)", cli.CWND())
	}
}

func TestDataLossRecoveredByRetransmission(t *testing.T) {
	drops := 0
	dl := &dropLayer{dropDown: func(fr *ether.Frame) bool {
		fl := tcpFlagsOf(fr)
		// Drop the 5th outbound data-bearing segment once.
		if fl&packet.TCPPsh != 0 {
			drops++
			return drops == 5
		}
		return false
	}}
	p := newPair(t, 5, []stack.Layer{dl}, nil)
	const n = 64 * 1024
	got, cli := transfer(t, p, n, 60*time.Second)
	if len(got) != n {
		t.Fatalf("received %d bytes, want %d", len(got), n)
	}
	for i, b := range got {
		if b != byte(i%251) {
			t.Fatalf("byte %d corrupted after recovery", i)
		}
	}
	if cli.Stats.Retransmissions == 0 {
		t.Error("drop never triggered a retransmission")
	}
}

func TestFastRetransmitOnTripleDupAck(t *testing.T) {
	drops := 0
	dl := &dropLayer{dropDown: func(fr *ether.Frame) bool {
		fl := tcpFlagsOf(fr)
		if fl&packet.TCPPsh != 0 {
			drops++
			return drops == 8 // drop one mid-stream segment
		}
		return false
	}}
	p := newPair(t, 6, []stack.Layer{dl}, nil)
	const n = 128 * 1024
	got, cli := transfer(t, p, n, 60*time.Second)
	if len(got) != n {
		t.Fatalf("received %d bytes, want %d", len(got), n)
	}
	if cli.Stats.FastRetransmits == 0 {
		t.Errorf("expected fast retransmit (dupacks=%d timeouts=%d)",
			cli.Stats.DupAcksRcvd, cli.Stats.Timeouts)
	}
}

func TestConnectRefusedByRST(t *testing.T) {
	p := newPair(t, 7, nil, nil)
	cli, err := p.t1.Connect(1000, p.h2.IP, 9) // nobody listens on 9
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	failed := false
	cli.OnFail = func() { failed = true }
	if err := p.sched.RunUntil(5 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !failed {
		t.Error("connection to a closed port did not fail")
	}
	if cli.State() != StateClosed {
		t.Errorf("state = %v, want CLOSED", cli.State())
	}
}

func TestGracefulClose(t *testing.T) {
	p := newPair(t, 8, nil, nil)
	lst, _ := p.t2.Listen(0x4000)
	srvClosed := false
	lst.OnAccept = func(c *Conn) {
		c.OnClose = func() {
			srvClosed = true
			c.Close() // close our direction too
		}
	}
	cli, _ := p.t1.Connect(0x6000, p.h2.IP, 0x4000)
	cliClosed := false
	cli.OnClose = func() { cliClosed = true }
	cli.OnConnected = func() {
		cli.Send([]byte("bye"))
		cli.Close()
	}
	if err := p.sched.RunUntil(10 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !srvClosed || !cliClosed {
		t.Errorf("close signals: server=%v client=%v", srvClosed, cliClosed)
	}
	if len(p.t1.conns) != 0 || len(p.t2.conns) != 0 {
		t.Errorf("connections leaked: %d/%d", len(p.t1.conns), len(p.t2.conns))
	}
}

func TestListenerConflict(t *testing.T) {
	p := newPair(t, 9, nil, nil)
	if _, err := p.t2.Listen(80); err != nil {
		t.Fatalf("listen: %v", err)
	}
	if _, err := p.t2.Listen(80); err == nil {
		t.Error("duplicate listen succeeded")
	}
}

func TestThroughputSanity(t *testing.T) {
	// Bulk transfer over a clean 100 Mbps switch should reach tens of
	// Mbps of goodput once the window opens.
	p := newPair(t, 10, nil, nil)
	const n = 4 << 20 // 4 MB
	lst, _ := p.t2.Listen(0x4000)
	var rcvd int
	var doneAt time.Duration
	lst.OnAccept = func(c *Conn) {
		c.OnData = func(d []byte) {
			rcvd += len(d)
			if rcvd >= n {
				doneAt = p.sched.Now()
			}
		}
	}
	cli, _ := p.t1.Connect(0x6000, p.h2.IP, 0x4000)
	cli.OnConnected = func() { cli.Send(make([]byte, n)) }
	if err := p.sched.RunUntil(120 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if rcvd < n {
		t.Fatalf("received %d of %d bytes", rcvd, n)
	}
	mbps := float64(n*8) / doneAt.Seconds() / 1e6
	if mbps < 20 {
		t.Errorf("goodput %.1f Mbps; window never opened?", mbps)
	}
	t.Logf("goodput %.1f Mbps in %v", mbps, doneAt)
}

// Property: under arbitrary single-direction loss patterns, the receiver
// always obtains exactly the sent byte stream.
func TestLossRecoveryProperty(t *testing.T) {
	prop := func(seed int64, dropSet []uint8) bool {
		drop := make(map[int]bool, len(dropSet))
		for _, d := range dropSet {
			drop[int(d%64)] = true
		}
		cnt := 0
		dl := &dropLayer{dropDown: func(fr *ether.Frame) bool {
			if tcpFlagsOf(fr)&packet.TCPPsh != 0 {
				cnt++
				return drop[cnt]
			}
			return false
		}}
		p := newPair(t, seed, []stack.Layer{dl}, nil)
		const n = 48 * 1024
		// Generous horizon: dense drop patterns can eat several
		// retransmissions in a row, and exponential RTO backoff then
		// dominates (virtual time is free).
		got, _ := transfer(t, p, n, time.Hour)
		if len(got) != n {
			return false
		}
		for i, b := range got {
			if b != byte(i%251) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(23))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkBulkTransfer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := newPair(b, int64(i+1), nil, nil)
		got, _ := transfer(b, p, 256*1024, 60*time.Second)
		if len(got) != 256*1024 {
			b.Fatalf("received %d", len(got))
		}
	}
}
