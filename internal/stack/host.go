package stack

import (
	"fmt"

	"virtualwire/internal/ether"
	"virtualwire/internal/metrics"
	"virtualwire/internal/packet"
	"virtualwire/internal/sim"
)

// Host is one testbed node: an identity (name, MAC, IP — one row of the
// paper's Node Table), a NIC, a layer chain, and the L3/L4 endpoints.
type Host struct {
	Name string
	MAC  packet.MAC
	IP   packet.IP

	Sched *sim.Scheduler
	NIC   *ether.NIC
	IPv4  *IPStack
	UDP   *UDPStack

	// Neighbors is the static ARP table (IP → MAC) shared by all hosts
	// on the testbed, built from the scenario's Node Table.
	Neighbors map[packet.IP]packet.MAC

	down Down
}

// NewHost creates a host with the given identity. The layer chain is
// assembled later with Build, after the caller has created whatever
// intermediate layers (RLL, FIE, Rether) this node needs.
func NewHost(sched *sim.Scheduler, name string, mac packet.MAC, ip packet.IP) *Host {
	h := &Host{
		Name:      name,
		MAC:       mac,
		IP:        ip,
		Sched:     sched,
		NIC:       ether.NewNIC(sched, mac, 0),
		Neighbors: make(map[packet.IP]packet.MAC),
	}
	h.IPv4 = newIPStack(h)
	h.UDP = newUDPStack(h)
	return h
}

// SetScheduler rebinds the host (and its NIC) to another scheduler. The
// sharded engine calls this before the host is attached to its switch;
// TCP and UDP timers resolve h.Sched lazily, so a pre-traffic rebind is
// safe.
func (h *Host) SetScheduler(s *sim.Scheduler) {
	h.Sched = s
	h.NIC.SetScheduler(s)
}

// Build wires NIC ← layers[0] ← ... ← IPv4. Call exactly once, after the
// NIC has been attached to a medium.
func (h *Host) Build(layers ...Layer) {
	h.down = Chain(h.NIC, h.IPv4, layers...)
}

// Reset returns the host's NIC, IP and UDP state to pristine. The layer
// chain built with Build, the protocol handler registrations and the
// static ARP table are wiring and survive; bound UDP sockets and all
// stat counters do not.
func (h *Host) Reset() {
	h.NIC.Reset()
	h.IPv4.RxPackets = 0
	h.IPv4.RxHeaderErrors = 0
	h.IPv4.RxNoHandler = 0
	for port := range h.UDP.socks {
		delete(h.UDP.socks, port)
	}
}

// SendFrame pushes a fully built frame into the top of the layer chain
// (it traverses every intermediate layer on the way to the wire).
func (h *Host) SendFrame(fr *ether.Frame) {
	if h.down == nil {
		// Not built yet: a programming error surfaced as a silent
		// no-op would be miserable to debug, so send directly.
		h.NIC.Send(fr)
		return
	}
	h.down.SendDown(fr)
}

// LookupMAC resolves an IP through the static ARP table.
func (h *Host) LookupMAC(ip packet.IP) (packet.MAC, error) {
	m, ok := h.Neighbors[ip]
	if !ok {
		return packet.MAC{}, fmt.Errorf("host %s: no ARP entry for %v", h.Name, ip)
	}
	return m, nil
}

// IPStack is the top of the layer chain: it validates IPv4 headers and
// demultiplexes to registered transport handlers.
type IPStack struct {
	host     *Host
	handlers map[byte]func(src, dst packet.IP, payload []byte)
	// RawHandlers receive every inbound frame before IP processing,
	// keyed by ethertype. Rether uses one when it runs above the FIE
	// instead of below IP.
	rawHandlers map[uint16]func(fr *ether.Frame)

	// Stats
	RxPackets      uint64
	RxHeaderErrors uint64
	RxNoHandler    uint64
}

func newIPStack(h *Host) *IPStack {
	return &IPStack{
		host:        h,
		handlers:    make(map[byte]func(src, dst packet.IP, payload []byte)),
		rawHandlers: make(map[uint16]func(fr *ether.Frame)),
	}
}

// Snapshot implements the uniform metrics hook for the IP layer.
func (s *IPStack) Snapshot() metrics.Snapshot {
	var sn metrics.Snapshot
	sn.Counter("rx_packets", s.RxPackets)
	sn.Counter("rx_header_errors", s.RxHeaderErrors)
	sn.Counter("rx_no_handler", s.RxNoHandler)
	return sn
}

// Register installs the handler for an IP protocol number.
func (s *IPStack) Register(proto byte, fn func(src, dst packet.IP, payload []byte)) {
	s.handlers[proto] = fn
}

// RegisterRaw installs a handler for a non-IP ethertype (for example
// Rether control frames when the Rether layer sits at the stack top in
// tests).
func (s *IPStack) RegisterRaw(ethertype uint16, fn func(fr *ether.Frame)) {
	s.rawHandlers[ethertype] = fn
}

// DeliverUp implements Up: it is the final stop of the inbound path.
func (s *IPStack) DeliverUp(fr *ether.Frame) {
	et := fr.EtherType()
	if h, ok := s.rawHandlers[et]; ok {
		h(fr)
		return
	}
	if et != packet.EtherTypeIPv4 {
		s.RxNoHandler++
		return
	}
	iph, err := packet.DecodeIPv4(fr.Data[packet.OffIPHeader:])
	if err != nil {
		s.RxHeaderErrors++
		return
	}
	if iph.Dst != s.host.IP {
		// Not ours (promiscuous capture or flood); drop silently.
		return
	}
	s.RxPackets++
	end := packet.OffIPHeader + int(iph.TotalLen)
	if end > len(fr.Data) {
		s.RxHeaderErrors++
		return
	}
	payload := fr.Data[packet.OffIPHeader+packet.IPv4HeaderLen : end]
	h, ok := s.handlers[iph.Proto]
	if !ok {
		s.RxNoHandler++
		return
	}
	h(iph.Src, iph.Dst, payload)
}

// UDPStack provides minimal datagram sockets over the host stack.
type UDPStack struct {
	host  *Host
	socks map[uint16]*UDPSocket
}

func newUDPStack(h *Host) *UDPStack {
	u := &UDPStack{host: h, socks: make(map[uint16]*UDPSocket)}
	h.IPv4.Register(packet.ProtoUDP, u.deliver)
	return u
}

// UDPSocket is a bound UDP port.
type UDPSocket struct {
	stack *UDPStack
	Port  uint16
	// OnDatagram is invoked for each datagram received on the port.
	OnDatagram func(src packet.IP, srcPort uint16, payload []byte)
}

// Bind allocates a socket on the given local port.
func (u *UDPStack) Bind(port uint16) (*UDPSocket, error) {
	if _, taken := u.socks[port]; taken {
		return nil, fmt.Errorf("udp: port %d already bound on %s", port, u.host.Name)
	}
	s := &UDPSocket{stack: u, Port: port}
	u.socks[port] = s
	return s, nil
}

// Close releases the port.
func (s *UDPSocket) Close() {
	delete(s.stack.socks, s.Port)
}

// SendTo transmits a datagram to dst:dstPort through the full layer
// chain.
func (s *UDPSocket) SendTo(dst packet.IP, dstPort uint16, payload []byte) error {
	h := s.stack.host
	dstMAC, err := h.LookupMAC(dst)
	if err != nil {
		return err
	}
	fr := packet.BuildUDPFrame(h.MAC, dstMAC, h.IP, dst,
		packet.UDP{SrcPort: s.Port, DstPort: dstPort}, payload)
	h.SendFrame(&ether.Frame{Data: fr})
	return nil
}

func (u *UDPStack) deliver(src, dst packet.IP, payload []byte) {
	hdr, err := packet.DecodeUDP(payload)
	if err != nil {
		return
	}
	sock, ok := u.socks[hdr.DstPort]
	if !ok || sock.OnDatagram == nil {
		return
	}
	end := int(hdr.Length)
	if end > len(payload) || end < packet.UDPHeaderLen {
		end = len(payload)
	}
	sock.OnDatagram(src, hdr.SrcPort, payload[packet.UDPHeaderLen:end])
}
