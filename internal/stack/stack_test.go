package stack

import (
	"testing"

	"virtualwire/internal/ether"
	"virtualwire/internal/packet"
	"virtualwire/internal/sim"
)

func newPair(t *testing.T, seed int64) (*sim.Scheduler, *Host, *Host) {
	t.Helper()
	s := sim.NewScheduler(seed)
	bus := ether.NewSharedBus(s, ether.BusConfig{})
	h1 := NewHost(s, "node1", packet.MAC{0, 0, 0, 0, 0, 1}, packet.IP{192, 168, 1, 1})
	h2 := NewHost(s, "node2", packet.MAC{0, 0, 0, 0, 0, 2}, packet.IP{192, 168, 1, 2})
	for _, h := range []*Host{h1, h2} {
		h.Neighbors[h1.IP] = h1.MAC
		h.Neighbors[h2.IP] = h2.MAC
	}
	bus.Attach(h1.NIC)
	bus.Attach(h2.NIC)
	h1.Build()
	h2.Build()
	return s, h1, h2
}

func TestUDPSendReceive(t *testing.T) {
	s, h1, h2 := newPair(t, 1)
	srv, err := h2.UDP.Bind(9000)
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	var got []byte
	var gotSrc packet.IP
	var gotPort uint16
	srv.OnDatagram = func(src packet.IP, srcPort uint16, payload []byte) {
		gotSrc, gotPort = src, srcPort
		got = append([]byte(nil), payload...)
	}
	cli, err := h1.UDP.Bind(5000)
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	if err := cli.SendTo(h2.IP, 9000, []byte("hello rether")); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if string(got) != "hello rether" {
		t.Errorf("payload = %q", got)
	}
	if gotSrc != h1.IP || gotPort != 5000 {
		t.Errorf("src = %v:%d", gotSrc, gotPort)
	}
}

func TestUDPEchoRoundTrip(t *testing.T) {
	s, h1, h2 := newPair(t, 2)
	srv, _ := h2.UDP.Bind(7)
	srv.OnDatagram = func(src packet.IP, srcPort uint16, payload []byte) {
		if err := srv.SendTo(src, srcPort, payload); err != nil {
			t.Errorf("echo send: %v", err)
		}
	}
	cli, _ := h1.UDP.Bind(1234)
	var rtt int
	cli.OnDatagram = func(src packet.IP, srcPort uint16, payload []byte) { rtt++ }
	for i := 0; i < 5; i++ {
		if err := cli.SendTo(h2.IP, 7, make([]byte, 64)); err != nil {
			t.Fatalf("send: %v", err)
		}
		if err := s.Run(); err != nil {
			t.Fatalf("run: %v", err)
		}
	}
	if rtt != 5 {
		t.Errorf("echoed %d datagrams, want 5", rtt)
	}
}

func TestUDPBindConflict(t *testing.T) {
	_, h1, _ := newPair(t, 3)
	if _, err := h1.UDP.Bind(80); err != nil {
		t.Fatalf("first bind: %v", err)
	}
	if _, err := h1.UDP.Bind(80); err == nil {
		t.Error("second bind on same port succeeded")
	}
	// Close then rebind.
	s2, _ := h1.UDP.Bind(81)
	s2.Close()
	if _, err := h1.UDP.Bind(81); err != nil {
		t.Errorf("rebind after close: %v", err)
	}
}

func TestIPStackIgnoresForeignDst(t *testing.T) {
	s, h1, h2 := newPair(t, 4)
	srv, _ := h2.UDP.Bind(9000)
	got := 0
	srv.OnDatagram = func(packet.IP, uint16, []byte) { got++ }
	// Craft a datagram whose MAC addresses h2 but whose IP is foreign.
	fr := packet.BuildUDPFrame(h1.MAC, h2.MAC, h1.IP, packet.IP{10, 0, 0, 99},
		packet.UDP{SrcPort: 1, DstPort: 9000}, []byte("x"))
	h1.SendFrame(&ether.Frame{Data: fr})
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != 0 {
		t.Error("datagram for a foreign IP was delivered")
	}
}

func TestIPStackHeaderErrorCounted(t *testing.T) {
	s, h1, h2 := newPair(t, 5)
	fr := packet.BuildUDPFrame(h1.MAC, h2.MAC, h1.IP, h2.IP,
		packet.UDP{SrcPort: 1, DstPort: 2}, []byte("y"))
	fr[packet.OffIPHeader+8] ^= 0xff // corrupt TTL -> checksum fails
	h1.SendFrame(&ether.Frame{Data: fr})
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if h2.IPv4.RxHeaderErrors != 1 {
		t.Errorf("RxHeaderErrors = %d, want 1", h2.IPv4.RxHeaderErrors)
	}
}

// countingLayer counts frames both ways; used to verify chain wiring.
type countingLayer struct {
	base     Base
	down, up int
}

func (c *countingLayer) SendDown(fr *ether.Frame)  { c.down++; c.base.PassDown(fr) }
func (c *countingLayer) DeliverUp(fr *ether.Frame) { c.up++; c.base.PassUp(fr) }
func (c *countingLayer) SetBelow(d Down)           { c.base.SetBelow(d) }
func (c *countingLayer) SetAbove(u Up)             { c.base.SetAbove(u) }

func TestChainTraversesAllLayers(t *testing.T) {
	s := sim.NewScheduler(6)
	bus := ether.NewSharedBus(s, ether.BusConfig{})
	h1 := NewHost(s, "a", packet.MAC{0, 0, 0, 0, 0, 1}, packet.IP{10, 0, 0, 1})
	h2 := NewHost(s, "b", packet.MAC{0, 0, 0, 0, 0, 2}, packet.IP{10, 0, 0, 2})
	for _, h := range []*Host{h1, h2} {
		h.Neighbors[h1.IP] = h1.MAC
		h.Neighbors[h2.IP] = h2.MAC
	}
	bus.Attach(h1.NIC)
	bus.Attach(h2.NIC)
	l1a, l1b := &countingLayer{}, &countingLayer{}
	l2a, l2b := &countingLayer{}, &countingLayer{}
	h1.Build(l1a, l1b) // NIC <- l1a <- l1b <- IP
	h2.Build(l2a, l2b)

	srv, _ := h2.UDP.Bind(9)
	echoed := 0
	srv.OnDatagram = func(src packet.IP, sp uint16, p []byte) { echoed++ }
	cli, _ := h1.UDP.Bind(10)
	if err := cli.SendTo(h2.IP, 9, []byte("z")); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if echoed != 1 {
		t.Fatal("datagram not delivered through 2-layer chains")
	}
	if l1a.down != 1 || l1b.down != 1 {
		t.Errorf("outbound traversal: l1a=%d l1b=%d, want 1/1", l1a.down, l1b.down)
	}
	if l2a.up != 1 || l2b.up != 1 {
		t.Errorf("inbound traversal: l2a=%d l2b=%d, want 1/1", l2a.up, l2b.up)
	}
	if l1a.up != 0 || l2a.down != 0 {
		t.Errorf("unexpected reverse traffic: l1a.up=%d l2a.down=%d", l1a.up, l2a.down)
	}
}

func TestLookupMACUnknown(t *testing.T) {
	_, h1, _ := newPair(t, 7)
	if _, err := h1.LookupMAC(packet.IP{1, 2, 3, 4}); err == nil {
		t.Error("unknown IP resolved")
	}
}

func TestRegisterRaw(t *testing.T) {
	s, h1, h2 := newPair(t, 8)
	got := 0
	h2.IPv4.RegisterRaw(packet.EtherTypeRether, func(fr *ether.Frame) { got++ })
	fr := packet.BuildRetherFrame(h1.MAC, h2.MAC, packet.Rether{Type: packet.RetherToken}, nil)
	h1.SendFrame(&ether.Frame{Data: fr})
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != 1 {
		t.Errorf("raw handler called %d times, want 1", got)
	}
}
