// Package stack provides the per-host protocol stack scaffolding: a
// composable layer chain mirroring the paper's interception architecture
// (Figure 1), a NIC adapter at the bottom, an IPv4 demultiplexer, UDP
// sockets, and the Host aggregate.
//
// The layer chain is the reproduction of the paper's key structural
// property: the FIE/FAE "is inserted between the network interface card's
// device driver and the IP protocol stack, and therefore can intercept
// all incoming/outgoing packets" (Section 3.3). Here a host is assembled
// as NIC ← RLL ← FIE ← [Rether] ← IP, and each element only knows its
// neighbours through the Down/Up interfaces.
package stack

import (
	"virtualwire/internal/ether"
)

// Down is the view a layer has of its lower neighbour: push a frame one
// step toward the wire.
type Down interface {
	SendDown(fr *ether.Frame)
}

// Up is the view a layer has of its upper neighbour: push a received
// frame one step toward the application.
type Up interface {
	DeliverUp(fr *ether.Frame)
}

// Layer is an element of the per-host protocol chain. A layer receives
// outbound frames via SendDown (called by the layer above) and inbound
// frames via DeliverUp (called by the layer below), and forwards them —
// possibly delayed, duplicated, modified or consumed — to its neighbours.
type Layer interface {
	Down
	Up
	// SetBelow wires the lower neighbour the layer sends outbound
	// frames to.
	SetBelow(d Down)
	// SetAbove wires the upper neighbour the layer delivers inbound
	// frames to.
	SetAbove(u Up)
}

// Chain wires nic ← layers[0] ← layers[1] ← ... ← top and returns the
// Down endpoint the top-most protocol should transmit through. The NIC's
// receive upcall is routed into the bottom of the chain.
func Chain(nic *ether.NIC, top Up, layers ...Layer) Down {
	var down Down = nicDown{nic}
	var lowestUp Up = top
	// Wire from the bottom up: each layer's below is the chain so far.
	for i, l := range layers {
		l.SetBelow(down)
		down = l
		_ = i
	}
	// Wire the upward path: NIC → layers[0] → ... → top.
	if len(layers) == 0 {
		nic.SetRecv(func(fr *ether.Frame) { top.DeliverUp(fr) })
		return down
	}
	for i := len(layers) - 1; i >= 0; i-- {
		layers[i].SetAbove(lowestUp)
		lowestUp = layers[i]
	}
	bottom := layers[0]
	nic.SetRecv(func(fr *ether.Frame) { bottom.DeliverUp(fr) })
	return down
}

// nicDown adapts a NIC to the Down interface.
type nicDown struct{ nic *ether.NIC }

func (n nicDown) SendDown(fr *ether.Frame) { n.nic.Send(fr) }

// Base is a pass-through Layer for embedding-free reuse: concrete layers
// hold a Base by value and override the methods they care about by
// delegating to Below()/Above(). The zero value forwards nothing until
// wired.
type Base struct {
	below Down
	above Up
}

// SetBelow implements Layer.
func (b *Base) SetBelow(d Down) { b.below = d }

// SetAbove implements Layer.
func (b *Base) SetAbove(u Up) { b.above = u }

// Below returns the lower neighbour (nil before wiring).
func (b *Base) Below() Down { return b.below }

// Above returns the upper neighbour (nil before wiring).
func (b *Base) Above() Up { return b.above }

// PassDown forwards a frame to the lower neighbour if wired.
func (b *Base) PassDown(fr *ether.Frame) {
	if b.below != nil {
		b.below.SendDown(fr)
	}
}

// PassUp forwards a frame to the upper neighbour if wired.
func (b *Base) PassUp(fr *ether.Frame) {
	if b.above != nil {
		b.above.DeliverUp(fr)
	}
}
