package rll

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"virtualwire/internal/ether"
	"virtualwire/internal/packet"
	"virtualwire/internal/sim"
	"virtualwire/internal/stack"
)

// sink collects frames delivered above an RLL.
type sink struct {
	frames []*ether.Frame
}

func (s *sink) DeliverUp(fr *ether.Frame) { s.frames = append(s.frames, fr) }

// pairOverBus builds two hosts whose stacks are NIC <- RLL <- sink, on a
// shared bus with the given bit error rate.
func pairOverBus(seed int64, ber float64, cfg Config) (*sim.Scheduler, *RLL, *RLL, *sink, *sink, stack.Down, stack.Down) {
	s := sim.NewScheduler(seed)
	bus := ether.NewSharedBus(s, ether.BusConfig{BitErrorRate: ber})
	macA := packet.MAC{0, 0, 0, 0, 0, 0xa}
	macB := packet.MAC{0, 0, 0, 0, 0, 0xb}
	nicA := ether.NewNIC(s, macA, 512)
	nicB := ether.NewNIC(s, macB, 512)
	nicA.DeliverCorrupt = true // RLL validates the CRC itself
	nicB.DeliverCorrupt = true
	bus.Attach(nicA)
	bus.Attach(nicB)
	ra := New(s, macA, cfg)
	rb := New(s, macB, cfg)
	sa, sb := &sink{}, &sink{}
	downA := stack.Chain(nicA, sa, ra)
	downB := stack.Chain(nicB, sb, rb)
	return s, ra, rb, sa, sb, downA, downB
}

// frameTo builds an inner frame from a to b whose payload starts with tag.
func frameTo(a, b packet.MAC, tag byte, n int) *ether.Frame {
	d := make([]byte, packet.EthHeaderLen+n)
	packet.PutEth(d, packet.Eth{Dst: b, Src: a, Type: 0x0800})
	if n > 0 {
		d[packet.EthHeaderLen] = tag
	}
	return &ether.Frame{Data: d}
}

var (
	macA = packet.MAC{0, 0, 0, 0, 0, 0xa}
	macB = packet.MAC{0, 0, 0, 0, 0, 0xb}
)

func TestRLLDeliversInOrderOnCleanWire(t *testing.T) {
	s, _, _, _, sb, downA, _ := pairOverBus(1, 0, Config{})
	const n = 50
	for i := 0; i < n; i++ {
		downA.SendDown(frameTo(macA, macB, byte(i), 100))
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(sb.frames) != n {
		t.Fatalf("delivered %d frames, want %d", len(sb.frames), n)
	}
	for i, fr := range sb.frames {
		if fr.Data[packet.EthHeaderLen] != byte(i) {
			t.Fatalf("frame %d out of order (tag %d)", i, fr.Data[packet.EthHeaderLen])
		}
		if fr.EtherType() != 0x0800 {
			t.Fatalf("inner ethertype not restored: %#x", fr.EtherType())
		}
	}
}

func TestRLLInnerFrameBitExact(t *testing.T) {
	s, _, _, _, sb, downA, _ := pairOverBus(2, 0, Config{})
	orig := frameTo(macA, macB, 0x5a, 333)
	for i := range orig.Data[packet.EthHeaderLen:] {
		orig.Data[packet.EthHeaderLen+i] = byte(i * 7)
	}
	want := append([]byte(nil), orig.Data...)
	downA.SendDown(orig)
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(sb.frames) != 1 {
		t.Fatalf("delivered %d", len(sb.frames))
	}
	got := sb.frames[0].Data
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("byte %d = %#x, want %#x", i, got[i], want[i])
		}
	}
}

func TestRLLMasksBitErrors(t *testing.T) {
	// The paper's motivation for the RLL: at a loss-inducing BER, every
	// frame must still be delivered, exactly once, in order.
	s, ra, _, _, sb, downA, _ := pairOverBus(3, 2e-5, Config{})
	const n = 200
	i := 0
	var feed func()
	feed = func() {
		if i >= n {
			return
		}
		i++
		downA.SendDown(frameTo(macA, macB, byte(i%251), 600))
		s.After(150*time.Microsecond, "feed", feed)
	}
	s.After(0, "feed", feed)
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := len(sb.frames); got != n {
		t.Fatalf("delivered %d frames, want %d (RLL must mask all losses)", got, n)
	}
	for k, fr := range sb.frames {
		if fr.Data[packet.EthHeaderLen] != byte((k+1)%251) {
			t.Fatalf("frame %d out of order", k)
		}
	}
	if ra.Stats.DataRetrans == 0 {
		t.Error("no retransmissions at BER 2e-5; loss model inert")
	}
}

func TestRLLAcksFlowBothDirections(t *testing.T) {
	s, ra, rb, sa, sb, downA, downB := pairOverBus(4, 0, Config{})
	for i := 0; i < 10; i++ {
		downA.SendDown(frameTo(macA, macB, byte(i), 64))
		downB.SendDown(frameTo(macB, macA, byte(i), 64))
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(sa.frames) != 10 || len(sb.frames) != 10 {
		t.Fatalf("deliveries a=%d b=%d", len(sa.frames), len(sb.frames))
	}
	// The paper: "This generates ACKs at the RLL level in both
	// directions, increasing the chances of collisions".
	if ra.Stats.AcksSent == 0 || rb.Stats.AcksSent == 0 {
		t.Errorf("acks a=%d b=%d, want >0 both", ra.Stats.AcksSent, rb.Stats.AcksSent)
	}
}

func TestRLLWindowBackpressure(t *testing.T) {
	cfg := Config{Window: 4}
	s, ra, _, _, sb, downA, _ := pairOverBus(5, 0, cfg)
	for i := 0; i < 32; i++ {
		downA.SendDown(frameTo(macA, macB, byte(i), 1000))
	}
	if ra.Stats.BlockedQueued == 0 {
		t.Error("32 sends into a 4-frame window never queued")
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(sb.frames) != 32 {
		t.Fatalf("delivered %d, want 32", len(sb.frames))
	}
}

func TestRLLBroadcastUnreliable(t *testing.T) {
	s, ra, _, _, sb, downA, _ := pairOverBus(6, 0, Config{})
	downA.SendDown(frameTo(macA, packet.Broadcast, 1, 64))
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if ra.Stats.Unreliable != 1 {
		t.Errorf("Unreliable = %d", ra.Stats.Unreliable)
	}
	if len(sb.frames) != 1 {
		t.Errorf("broadcast not delivered")
	}
	if ra.Stats.DataSent != 0 {
		t.Errorf("broadcast entered the reliable window")
	}
}

func TestRLLGivesUpOnDeadPeer(t *testing.T) {
	// Build a lone host whose wire eats everything: retries must be
	// bounded and the sender must not wedge.
	s := sim.NewScheduler(7)
	nicA := ether.NewNIC(s, macA, 64)
	bus := ether.NewSharedBus(s, ether.BusConfig{})
	bus.Attach(nicA) // no receiver attached
	ra := New(s, macA, Config{Window: 2, RTO: 500 * time.Microsecond, MaxRetries: 3})
	sa := &sink{}
	downA := stack.Chain(nicA, sa, ra)
	for i := 0; i < 4; i++ {
		downA.SendDown(frameTo(macA, macB, byte(i), 64))
	}
	if err := s.RunUntil(time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if ra.Stats.GaveUp != 4 {
		t.Errorf("GaveUp = %d, want 4", ra.Stats.GaveUp)
	}
	if s.Pending() > 0 {
		// Any still-armed timers would keep a dead peer's state alive
		// forever.
		if err := s.Run(); err != nil {
			t.Fatalf("drain: %v", err)
		}
	}
}

func TestRLLDisabledPassThrough(t *testing.T) {
	s, ra, rb, _, sb, downA, _ := pairOverBus(8, 0, Config{})
	ra.Disabled = true
	rb.Disabled = true
	downA.SendDown(frameTo(macA, macB, 9, 64))
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(sb.frames) != 1 {
		t.Fatalf("delivered %d", len(sb.frames))
	}
	if ra.Stats.DataSent != 0 || rb.Stats.AcksSent != 0 {
		t.Error("disabled RLL still processed frames")
	}
	if sb.frames[0].EtherType() != 0x0800 {
		t.Error("disabled RLL altered the frame")
	}
}

func TestRLLDuplicateSuppression(t *testing.T) {
	// Deliver a duplicate data frame directly into an RLL and verify a
	// re-ack plus exactly one delivery.
	s := sim.NewScheduler(9)
	nicB := ether.NewNIC(s, macB, 64)
	bus := ether.NewSharedBus(s, ether.BusConfig{})
	nicA := ether.NewNIC(s, macA, 64)
	bus.Attach(nicA)
	bus.Attach(nicB)
	rb := New(s, macB, Config{})
	sb := &sink{}
	stack.Chain(nicB, sb, rb)
	ra := New(s, macA, Config{})
	sa := &sink{}
	downA := stack.Chain(nicA, sa, ra)

	fr := frameTo(macA, macB, 1, 64)
	downA.SendDown(fr)
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	// Force a retransmission by replaying the encapsulated frame: build
	// it again with the same seq through a fresh RLL instance that has
	// identical state.
	raReplay := New(s, macA, Config{})
	enc := raReplay.encap(frameTo(macA, macB, 1, 64), typeData, 0, 0)
	nicA.Send(enc)
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(sb.frames) != 1 {
		t.Fatalf("duplicate delivered: %d frames", len(sb.frames))
	}
	if rb.Stats.Duplicates != 1 {
		t.Errorf("Duplicates = %d, want 1", rb.Stats.Duplicates)
	}
}

// Property: for any loss pattern induced by BER and any frame sizes, the
// receiver sees exactly the sent sequence, in order, no duplicates.
func TestRLLReliabilityProperty(t *testing.T) {
	prop := func(seed int64, sizesRaw []uint8) bool {
		if len(sizesRaw) == 0 || len(sizesRaw) > 40 {
			return true
		}
		s, _, _, _, sb, downA, _ := pairOverBus(seed, 1e-5, Config{Window: 4, RTO: 400 * time.Microsecond})
		for i, sz := range sizesRaw {
			downA.SendDown(frameTo(macA, macB, byte(i), 40+int(sz)))
		}
		if err := s.RunUntil(5 * time.Second); err != nil {
			return false
		}
		if len(sb.frames) != len(sizesRaw) {
			return false
		}
		for i, fr := range sb.frames {
			if fr.Data[packet.EthHeaderLen] != byte(i) {
				return false
			}
			if len(fr.Data) != packet.EthHeaderLen+40+int(sizesRaw[i]) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(17))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkRLLTransfer(b *testing.B) {
	s, _, _, _, sb, downA, _ := pairOverBus(1, 0, Config{Window: 16})
	sent := 0
	var feed func()
	feed = func() {
		for sent < b.N && sent-len(sb.frames) < 16 {
			sent++
			downA.SendDown(frameTo(macA, macB, byte(sent), 1000))
		}
		if len(sb.frames) < b.N {
			s.After(50*time.Microsecond, "feed", feed)
		}
	}
	b.ResetTimer()
	s.After(0, "feed", feed)
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}
