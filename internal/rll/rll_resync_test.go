package rll

import (
	"testing"
	"time"

	"virtualwire/internal/ether"
	"virtualwire/internal/packet"
	"virtualwire/internal/sim"
	"virtualwire/internal/stack"
)

// gate is a stack layer that can be closed to blackhole a host in both
// directions, simulating a peer that is alive but unreachable for a
// while (partition / overload).
type gate struct {
	base   stack.Base
	closed bool
}

func (g *gate) SetBelow(d stack.Down) { g.base.SetBelow(d) }
func (g *gate) SetAbove(u stack.Up)   { g.base.SetAbove(u) }
func (g *gate) SendDown(fr *ether.Frame) {
	if !g.closed {
		g.base.PassDown(fr)
	}
}
func (g *gate) DeliverUp(fr *ether.Frame) {
	if !g.closed {
		g.base.PassUp(fr)
	}
}

// TestRLLResyncAfterGiveUp is the stream-desync regression: after the
// sender exhausts MaxRetries and drops window heads (base advances), a
// receiver that comes back must not discard every later frame as a gap
// forever — the reset marker lets it jump forward and delivery resumes.
func TestRLLResyncAfterGiveUp(t *testing.T) {
	s := sim.NewScheduler(11)
	bus := ether.NewSharedBus(s, ether.BusConfig{})
	nicA := ether.NewNIC(s, macA, 512)
	nicB := ether.NewNIC(s, macB, 512)
	nicA.DeliverCorrupt = true
	nicB.DeliverCorrupt = true
	bus.Attach(nicA)
	bus.Attach(nicB)
	cfg := Config{RTO: 500 * time.Microsecond, MaxRetries: 2}
	ra := New(s, macA, cfg)
	rb := New(s, macB, cfg)
	sa, sb := &sink{}, &sink{}
	g := &gate{}
	downA := stack.Chain(nicA, sa, ra)
	_ = stack.Chain(nicB, sb, g, rb)

	// Frame 0 crosses normally.
	downA.SendDown(frameTo(macA, macB, 0, 64))
	if err := s.RunUntil(10 * time.Millisecond); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(sb.frames) != 1 {
		t.Fatalf("warmup: delivered %d frames, want 1", len(sb.frames))
	}

	// The peer goes deaf; the sender gives up on several frames.
	g.closed = true
	for i := 1; i <= 3; i++ {
		downA.SendDown(frameTo(macA, macB, byte(i), 64))
	}
	if err := s.RunUntil(500 * time.Millisecond); err != nil {
		t.Fatalf("run: %v", err)
	}
	if ra.Stats.GaveUp != 3 {
		t.Fatalf("GaveUp = %d, want 3", ra.Stats.GaveUp)
	}

	// The peer revives. A fresh frame must still be deliverable.
	g.closed = false
	downA.SendDown(frameTo(macA, macB, 9, 64))
	if err := s.RunUntil(time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(sb.frames) != 2 {
		t.Fatalf("delivered %d frames after revival, want 2 (stream desynchronized?)", len(sb.frames))
	}
	if tag := sb.frames[1].Data[packet.EthHeaderLen]; tag != 9 {
		t.Errorf("revived delivery tag = %d, want 9", tag)
	}
	if rb.Stats.Resyncs == 0 {
		t.Error("receiver accepted no resync")
	}
	if ra.Stats.ResetsSent == 0 {
		t.Error("sender sent no reset markers")
	}
	// The sender's window must be clean again: no retransmission storm
	// left behind.
	ps := ra.sendState(macB)
	if len(ps.inflight) != 0 || ps.resync {
		t.Errorf("sender not resynchronized: inflight=%d resync=%v", len(ps.inflight), ps.resync)
	}
}

// TestRLLSeqWraparound drives a stream across the uint32 sequence
// boundary and asserts in-order delivery with no spurious retransmits or
// give-ups (RFC 1982 serial comparison regression).
func TestRLLSeqWraparound(t *testing.T) {
	s, ra, rb, _, sb, downA, _ := pairOverBus(21, 0, Config{})
	var start uint32 = ^uint32(0) - 2
	ps := ra.sendState(macB)
	ps.nextSeq = start
	ps.base = start
	pr := rb.recvState(macA)
	pr.expected = start

	const n = 8
	for i := 0; i < n; i++ {
		downA.SendDown(frameTo(macA, macB, byte(i), 64))
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(sb.frames) != n {
		t.Fatalf("delivered %d frames, want %d", len(sb.frames), n)
	}
	for i, fr := range sb.frames {
		if tag := fr.Data[packet.EthHeaderLen]; tag != byte(i) {
			t.Fatalf("frame %d out of order across wrap (tag %d)", i, tag)
		}
	}
	if ra.Stats.DataRetrans != 0 || ra.Stats.GaveUp != 0 {
		t.Errorf("window stalled at wrap: retrans=%d gaveUp=%d",
			ra.Stats.DataRetrans, ra.Stats.GaveUp)
	}
	if want := start + n; ps.base != want { // wraps to a small value
		t.Errorf("base = %#x, want %#x", ps.base, want)
	}
	if pr.expected != start+n {
		t.Errorf("expected = %#x, want %#x", pr.expected, start+n)
	}
}

// TestRLLHandleAckAtWrapBoundary exercises the cumulative-ack arithmetic
// directly across the wrap.
func TestRLLHandleAckAtWrapBoundary(t *testing.T) {
	r := New(sim.NewScheduler(1), macA, Config{})
	ps := r.sendState(macB)
	ps.base = ^uint32(0) // two frames in flight: seq 0xFFFFFFFF and 0
	ps.nextSeq = 1
	ps.inflight = []*ether.Frame{
		{Data: make([]byte, 64)},
		{Data: make([]byte, 64)},
	}
	r.handleAck(macB, 1) // cumulative ack past the wrap
	if ps.base != 1 || len(ps.inflight) != 0 {
		t.Errorf("after wrap ack: base=%#x inflight=%d, want base=1 inflight=0",
			ps.base, len(ps.inflight))
	}
	// A stale pre-wrap ack must not rewind the window.
	r.handleAck(macB, ^uint32(0))
	if ps.base != 1 {
		t.Errorf("stale ack moved base to %#x", ps.base)
	}
}

// downSink captures frames an RLL pushes toward the wire.
type downSink struct {
	frames []*ether.Frame
}

func (d *downSink) SendDown(fr *ether.Frame) { d.frames = append(d.frames, fr) }

// TestRLLDupVsGapAtWrapBoundary: a pre-wrap duplicate arriving after the
// receiver's expectation wrapped must be classified as a duplicate, not a
// gap.
func TestRLLDupVsGapAtWrapBoundary(t *testing.T) {
	s := sim.NewScheduler(2)
	ra := New(s, macA, Config{})
	rb := New(s, macB, Config{})
	up := &sink{}
	down := &downSink{}
	rb.SetAbove(up)
	rb.SetBelow(down)
	pr := rb.recvState(macA)
	pr.expected = 2 // post-wrap

	old := ra.encap(frameTo(macA, macB, 5, 32), typeData, ^uint32(0), 0)
	rb.DeliverUp(old)
	if rb.Stats.Duplicates != 1 || rb.Stats.OutOfOrder != 0 {
		t.Errorf("pre-wrap retransmit: dup=%d gap=%d, want dup=1 gap=0",
			rb.Stats.Duplicates, rb.Stats.OutOfOrder)
	}
	if len(up.frames) != 0 {
		t.Error("duplicate was delivered")
	}
	// And a genuinely future frame is still a gap.
	fut := ra.encap(frameTo(macA, macB, 6, 32), typeData, 7, 0)
	rb.DeliverUp(fut)
	if rb.Stats.OutOfOrder != 1 {
		t.Errorf("future frame not classified as gap (gap=%d)", rb.Stats.OutOfOrder)
	}
}

// TestRLLDeliverInnerUsesPool pins the FramePool ownership protocol on
// the upcall path: the reconstructed inner frame is drawn from the pool
// and the spent outer encapsulation is recycled into it.
func TestRLLDeliverInnerUsesPool(t *testing.T) {
	s := sim.NewScheduler(3)
	ra := New(s, macA, Config{})
	rb := New(s, macB, Config{})
	pool := ether.NewFramePool()
	rb.SetPool(pool)
	up := &sink{}
	down := &downSink{}
	rb.SetAbove(up)
	rb.SetBelow(down)

	outer := ra.encap(frameTo(macA, macB, 7, 40), typeData, 0, 0)
	rb.DeliverUp(outer)
	if len(up.frames) != 1 {
		t.Fatalf("delivered %d frames, want 1", len(up.frames))
	}
	fr := up.frames[0]
	if fr.EtherType() != 0x0800 || fr.Data[packet.EthHeaderLen] != 7 {
		t.Errorf("inner frame corrupted: type=%#x tag=%d", fr.EtherType(), fr.Data[packet.EthHeaderLen])
	}
	// Gets: upcall frame + outgoing ack. Puts: the spent outer frame.
	if pool.Gets < 2 {
		t.Errorf("pool.Gets = %d, want >= 2 (upcall + ack)", pool.Gets)
	}
	if pool.Puts < 1 {
		t.Errorf("pool.Puts = %d, want >= 1 (outer recycled)", pool.Puts)
	}
	// The recycled outer buffer is reused by a later Get.
	before := pool.Hits
	outer2 := ra.encap(frameTo(macA, macB, 8, 40), typeData, 1, 0)
	rb.DeliverUp(outer2)
	if pool.Hits <= before {
		t.Errorf("pool.Hits did not grow (%d): upcall not recycled through pool", pool.Hits)
	}
	if len(up.frames) != 2 {
		t.Fatalf("second delivery missing")
	}
}
