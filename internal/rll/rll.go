// Package rll implements the paper's Reliable Link Layer (Section 3.3):
// a sliding-window protocol inserted below the VirtualWire engines that
// "guarantees reliable delivery of packets handed over to it" so that
// MAC-layer bit errors can never cause a packet loss the fault injection
// engine is unaware of. Without it, a random FCS-failed frame would look
// exactly like an injected DROP and the test environment would no longer
// be controlled.
//
// Wire format: the original frame is encapsulated in an outer Ethernet
// frame with ethertype 0x88B6. Because the RLL is host-to-host, the
// inner frame's MAC addresses equal the outer ones and are not repeated;
// only the bytes from the inner ethertype onward are carried:
//
//	offset 14: type   (1 byte: 1=data, 2=ack, 3=unreliable data)
//	offset 15: seq    (4 bytes)
//	offset 19: ack    (4 bytes, cumulative, piggybacked)
//	offset 23: crc32  (4 bytes, IEEE, over the type/seq/ack fields plus
//	                   the carried inner bytes, so header corruption is
//	                   detected too)
//	offset 27: inner frame from its ethertype onward
//
// The receiver reconstructs the inner frame from the outer addresses.
//
// Per-peer go-back-N: the receiver only accepts the next in-sequence
// frame and acknowledges cumulatively; the sender retransmits everything
// unacknowledged on timeout. Broadcast frames are sent unreliably (there
// is no per-peer stream to sequence them on), which matches their use for
// advisory Rether ring announcements.
package rll

import (
	"encoding/binary"
	"hash/crc32"
	"time"

	"virtualwire/internal/ether"
	"virtualwire/internal/metrics"
	"virtualwire/internal/packet"
	"virtualwire/internal/sim"
	"virtualwire/internal/stack"
)

// EtherType is the outer ethertype of RLL frames.
const EtherType uint16 = 0x88B6

// Frame type codes.
const (
	typeData       = 1
	typeAck        = 2
	typeUnreliable = 3
	// typeReset tells the receiver the sender abandoned everything before
	// seq (give-up after MaxRetries) and the stream resumes there. Without
	// it a live-but-slow peer would discard every later frame as a gap
	// forever once the sender's base moved past its expected sequence.
	typeReset = 4
)

const headerLen = 13 // type + seq + ack + crc32, after the outer Ethernet header

// Config parametrizes an RLL instance.
type Config struct {
	// Window is the go-back-N send window in frames (default 32 — a
	// 100 Mbps LAN path holds only a few full-size frames, but queueing
	// under load inflates the link RTT well past the serialization
	// delay and a tight window would throttle throughput).
	Window int
	// RTO is the base retransmission timeout (default 5 ms — enough to
	// serialize a full default window plus the ack on a loaded 100 Mbps
	// segment). Successive timeouts back off exponentially up to 16x.
	RTO time.Duration
	// MaxRetries bounds retransmissions of the window head before the
	// peer is declared unreachable and the frame dropped (default 10).
	MaxRetries int
}

func (c *Config) fill() {
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.RTO <= 0 {
		c.RTO = 5 * time.Millisecond
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 10
	}
}

// Stats counts RLL events.
type Stats struct {
	DataSent      uint64
	DataRetrans   uint64
	AcksSent      uint64
	Delivered     uint64
	Duplicates    uint64 // received but already delivered (retransmit overlap)
	OutOfOrder    uint64 // dropped by go-back-N
	CRCDrops      uint64 // inner CRC mismatch
	GaveUp        uint64 // frames dropped after MaxRetries
	Unreliable    uint64 // broadcast/unreliable frames sent
	BlockedQueued uint64 // frames queued because the window was full
	ResetsSent    uint64 // seq-reset markers sent after a give-up
	Resyncs       uint64 // forward jumps accepted from a peer's reset
}

type peerSend struct {
	nextSeq  uint32
	base     uint32
	inflight []*ether.Frame // encapsulated frames, base..nextSeq-1
	backlog  []*ether.Frame // encapsulated frames waiting for window space
	timer    *sim.Timer
	retries  int
	rto      time.Duration
	// resync is set after a give-up advanced base past undelivered
	// frames; a reset marker is (re)sent with every retransmission round
	// until the peer's cumulative ack reaches the new base.
	resync bool
}

type peerRecv struct {
	expected uint32
}

// RLL is the reliable link layer for one host. It implements
// stack.Layer.
type RLL struct {
	base  stack.Base
	cfg   Config
	sched *sim.Scheduler
	mac   packet.MAC
	pool  *ether.FramePool
	send  map[packet.MAC]*peerSend
	recv  map[packet.MAC]*peerRecv

	// Stats accumulates protocol counters.
	Stats Stats
	// Disabled short-circuits the layer (frames pass through
	// untouched). The Figure 8 experiment toggles this.
	Disabled bool
}

var _ stack.Layer = (*RLL)(nil)

// New returns an RLL layer for the host with the given MAC.
func New(sched *sim.Scheduler, mac packet.MAC, cfg Config) *RLL {
	cfg.fill()
	return &RLL{
		cfg:   cfg,
		sched: sched,
		mac:   mac,
		send:  make(map[packet.MAC]*peerSend),
		recv:  make(map[packet.MAC]*peerRecv),
	}
}

// SetPool wires the testbed's frame pool into the layer so upcall frames
// and dead encapsulations follow the same recycling protocol as the
// media (see docs/PERFORMANCE.md). Safe to leave unset (nil pool):
// every pool operation degrades to plain allocation.
func (r *RLL) SetPool(p *ether.FramePool) { r.pool = p }

// SetScheduler rebinds the layer to another scheduler. The sharded
// engine calls this before the run starts; per-peer retransmission
// timers are created lazily on first send, so a pre-run rebind is safe.
func (r *RLL) SetScheduler(s *sim.Scheduler) { r.sched = s }

// Snapshot implements the uniform metrics hook: every Stats field plus
// the instantaneous window occupancy summed over peers.
func (r *RLL) Snapshot() metrics.Snapshot {
	var sn metrics.Snapshot
	sn.Counter("data_sent", r.Stats.DataSent)
	sn.Counter("data_retrans", r.Stats.DataRetrans)
	sn.Counter("acks_sent", r.Stats.AcksSent)
	sn.Counter("delivered", r.Stats.Delivered)
	sn.Counter("duplicates", r.Stats.Duplicates)
	sn.Counter("out_of_order", r.Stats.OutOfOrder)
	sn.Counter("crc_drops", r.Stats.CRCDrops)
	sn.Counter("gave_up", r.Stats.GaveUp)
	sn.Counter("unreliable", r.Stats.Unreliable)
	sn.Counter("window_stalls", r.Stats.BlockedQueued)
	sn.Counter("resets_sent", r.Stats.ResetsSent)
	sn.Counter("resyncs", r.Stats.Resyncs)
	var inflight, backlog int
	for _, ps := range r.send {
		inflight += len(ps.inflight)
		backlog += len(ps.backlog)
	}
	sn.Gauge("inflight_frames", float64(inflight))
	sn.Gauge("backlog_frames", float64(backlog))
	return sn
}

// Reset discards all per-peer window state and counters, recycling every
// inflight and backlogged encapsulation, so the layer restarts with
// fresh sequence spaces. Configuration, pool wiring and the Disabled
// toggle survive; retransmission timers die with the scheduler reset
// that accompanies this.
func (r *RLL) Reset() {
	for mac, ps := range r.send {
		ps.timer.Disarm()
		for _, fr := range ps.inflight {
			r.pool.Put(fr)
		}
		for _, fr := range ps.backlog {
			r.pool.Put(fr)
		}
		delete(r.send, mac)
	}
	for mac := range r.recv {
		delete(r.recv, mac)
	}
	r.Stats = Stats{}
}

// SetBelow implements stack.Layer.
func (r *RLL) SetBelow(d stack.Down) { r.base.SetBelow(d) }

// SetAbove implements stack.Layer.
func (r *RLL) SetAbove(u stack.Up) { r.base.SetAbove(u) }

// SendDown implements stack.Layer: encapsulate and transmit reliably.
func (r *RLL) SendDown(fr *ether.Frame) {
	if r.Disabled || len(fr.Data) < packet.EthHeaderLen {
		r.base.PassDown(fr)
		return
	}
	dst := fr.Dst()
	if dst.IsBroadcast() {
		r.Stats.Unreliable++
		// The original is copied into enc but NOT recycled here: callers
		// above (the engine's DUP action) may still clone it synchronously
		// after PassDown returns, exactly as they may with a raw NIC send.
		r.base.PassDown(r.encap(fr, typeUnreliable, 0, 0))
		return
	}
	ps := r.sendState(dst)
	enc := r.encap(fr, typeData, ps.nextSeq, 0)
	ps.nextSeq++
	if len(ps.inflight) >= r.cfg.Window {
		r.Stats.BlockedQueued++
		ps.backlog = append(ps.backlog, enc)
		return
	}
	ps.inflight = append(ps.inflight, enc)
	r.transmit(enc)
	r.Stats.DataSent++
	if !ps.timer.Armed() {
		r.armTimer(dst, ps)
	}
}

// DeliverUp implements stack.Layer: decapsulate, validate, acknowledge.
func (r *RLL) DeliverUp(fr *ether.Frame) {
	if r.Disabled {
		r.base.PassUp(fr)
		return
	}
	if fr.EtherType() != EtherType {
		if fr.Corrupt {
			// A damaged frame whose bytes cannot be trusted at all
			// (possibly an RLL frame with a mangled ethertype).
			r.Stats.CRCDrops++
			r.pool.Put(fr)
			return
		}
		// Not RLL traffic (mixed testbed); deliver as-is.
		r.base.PassUp(fr)
		return
	}
	if len(fr.Data) < packet.EthHeaderLen+headerLen {
		r.pool.Put(fr)
		return
	}
	hdr := fr.Data[packet.EthHeaderLen:]
	typ := hdr[0]
	seq := binary.BigEndian.Uint32(hdr[1:])
	ack := binary.BigEndian.Uint32(hdr[5:])
	crc := binary.BigEndian.Uint32(hdr[9:])
	inner := fr.Data[packet.EthHeaderLen+headerLen:]
	src := fr.Src()
	if frameCRC(hdr[:9], inner) != crc {
		// Damaged on the wire — header or payload. Do not ack; the
		// sender's window retransmits. This is the exact loss the RLL
		// exists to mask.
		r.Stats.CRCDrops++
		r.pool.Put(fr)
		return
	}

	switch typ {
	case typeAck:
		r.handleAck(src, ack)
		r.pool.Put(fr)
	case typeUnreliable:
		r.deliverInner(fr, inner)
	case typeReset:
		// The sender gave up on everything before seq; jump forward so
		// the stream resynchronizes instead of gap-dropping forever.
		pr := r.recvState(src)
		if serialLT(pr.expected, seq) {
			pr.expected = seq
			r.Stats.Resyncs++
		}
		r.sendAck(src, pr.expected)
		r.pool.Put(fr)
	case typeData:
		pr := r.recvState(src)
		switch {
		case seq == pr.expected:
			pr.expected++
			r.Stats.Delivered++
			r.sendAck(src, pr.expected)
			r.deliverInner(fr, inner)
		case serialLT(seq, pr.expected):
			// Duplicate of something already delivered: re-ack so the
			// sender can advance.
			r.Stats.Duplicates++
			r.sendAck(src, pr.expected)
			r.pool.Put(fr)
		default:
			// Gap: go-back-N discards and re-acks the last good.
			r.Stats.OutOfOrder++
			r.sendAck(src, pr.expected)
			r.pool.Put(fr)
		}
	}
}

// serialLT reports a < b in RFC 1982 serial-number arithmetic: a precedes
// b when the forward distance from a to b is in (0, 2^31). Sequence
// numbers wrap on long high-volume runs, so plain uint32 ordering would
// stall the window (handleAck) and misclassify frames (DeliverUp) at the
// boundary.
func serialLT(a, b uint32) bool { return int32(a-b) < 0 }

// deliverInner reconstructs the inner frame (outer addresses + carried
// bytes) and passes it up. The upcall frame comes from the pool and the
// spent outer frame goes back to it: the inner bytes are copied out, so
// nothing retains the outer buffer, while the upcall frame transfers to
// the receiver per the ownership protocol (never recycled by us).
func (r *RLL) deliverInner(outer *ether.Frame, inner []byte) {
	up := r.pool.Get(12 + len(inner))
	copy(up.Data, outer.Data[0:12]) // dst + src are shared with the outer frame
	copy(up.Data[12:], inner)
	up.ID = outer.ID
	r.pool.Put(outer)
	r.base.PassUp(up)
}

func (r *RLL) handleAck(peer packet.MAC, ack uint32) {
	ps := r.sendState(peer)
	if ps.resync && !serialLT(ack, ps.base) {
		// The peer has caught up to (or past) the post-give-up base: the
		// stream is in sync again, stop sending reset markers.
		ps.resync = false
	}
	if !serialLT(ps.base, ack) {
		return
	}
	advanced := ack - ps.base
	if advanced > uint32(len(ps.inflight)) {
		advanced = uint32(len(ps.inflight))
	}
	for _, enc := range ps.inflight[:advanced] {
		r.pool.Put(enc) // acked: only clones ever hit the wire
	}
	ps.inflight = ps.inflight[advanced:]
	ps.base += advanced
	ps.retries = 0
	ps.rto = r.cfg.RTO // progress: reset the backoff
	r.fillWindow(ps)
	if len(ps.inflight) == 0 {
		ps.timer.Disarm()
		return
	}
	r.armTimer(peer, ps)
}

func (r *RLL) armTimer(peer packet.MAC, ps *peerSend) {
	if ps.rto <= 0 {
		ps.rto = r.cfg.RTO
	}
	ps.timer.Arm(ps.rto, func() { r.timeout(peer, ps) })
}

// timeout retransmits the whole window (go-back-N).
func (r *RLL) timeout(peer packet.MAC, ps *peerSend) {
	if len(ps.inflight) == 0 {
		return
	}
	ps.retries++
	if ps.retries > r.cfg.MaxRetries {
		// Peer unreachable (crashed node). Drop the window head and
		// keep trying with the rest: a FAIL-ed node must not wedge the
		// sender forever.
		r.Stats.GaveUp++
		r.pool.Put(ps.inflight[0])
		ps.inflight = ps.inflight[1:]
		ps.base++
		ps.retries = 0
		// The abandoned frame leaves a hole a live receiver would treat
		// as a permanent gap; announce the new base until it acks past it.
		ps.resync = true
		r.fillWindow(ps)
		if len(ps.inflight) == 0 {
			r.sendReset(peer, ps.base)
			return
		}
	}
	if ps.resync {
		r.sendReset(peer, ps.base)
	}
	for _, enc := range ps.inflight {
		r.transmit(enc)
		r.Stats.DataRetrans++
	}
	// Exponential backoff: a retransmission that was itself premature
	// must not turn into a storm under load.
	ps.rto *= 2
	if max := 16 * r.cfg.RTO; ps.rto > max {
		ps.rto = max
	}
	r.armTimer(peer, ps)
}

// fillWindow admits backlog frames into freed window slots.
func (r *RLL) fillWindow(ps *peerSend) {
	for len(ps.backlog) > 0 && len(ps.inflight) < r.cfg.Window {
		enc := ps.backlog[0]
		ps.backlog = ps.backlog[1:]
		ps.inflight = append(ps.inflight, enc)
		r.transmit(enc)
		r.Stats.DataSent++
	}
}

func (r *RLL) sendAck(peer packet.MAC, ack uint32) {
	r.Stats.AcksSent++
	r.sendBare(peer, typeAck, 0, ack)
}

// sendReset announces the post-give-up stream base so a live receiver
// jumps forward instead of gap-dropping forever. It is repeated with
// every retransmission round until the peer acks past the base, so a
// lost reset cannot leave the stream desynchronized.
func (r *RLL) sendReset(peer packet.MAC, seq uint32) {
	r.Stats.ResetsSent++
	r.sendBare(peer, typeReset, seq, 0)
}

// sendBare emits a header-only RLL frame (ack or reset).
func (r *RLL) sendBare(peer packet.MAC, typ byte, seq, ack uint32) {
	fr := r.pool.Get(packet.EthHeaderLen + headerLen)
	b := fr.Data
	packet.PutEth(b, packet.Eth{Dst: peer, Src: r.mac, Type: EtherType})
	hdr := b[packet.EthHeaderLen:]
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], seq)
	binary.BigEndian.PutUint32(hdr[5:], ack)
	binary.BigEndian.PutUint32(hdr[9:], frameCRC(hdr[:9], nil))
	r.base.PassDown(fr)
}

// FrameTypeName names an RLL frame's type from its raw outer bytes, for
// trace summaries.
func FrameTypeName(data []byte) string {
	if len(data) <= packet.EthHeaderLen {
		return "short"
	}
	switch data[packet.EthHeaderLen] {
	case typeData:
		return "data"
	case typeAck:
		return "ack"
	case typeUnreliable:
		return "unreliable"
	case typeReset:
		return "reset"
	}
	return "unknown"
}

// frameCRC covers the RLL header fields and the carried inner bytes.
func frameCRC(hdr, inner []byte) uint32 {
	crc := crc32.Update(0, crc32.IEEETable, hdr)
	return crc32.Update(crc, crc32.IEEETable, inner)
}

func (r *RLL) transmit(enc *ether.Frame) {
	// Always hand the medium its own copy: a retransmission must not
	// race with a queued original.
	r.base.PassDown(r.pool.Clone(enc))
}

func (r *RLL) encap(fr *ether.Frame, typ byte, seq, ack uint32) *ether.Frame {
	inner := fr.Data[12:] // from the inner ethertype onward
	enc := r.pool.Get(packet.EthHeaderLen + headerLen + len(inner))
	b := enc.Data
	packet.PutEth(b, packet.Eth{Dst: fr.Dst(), Src: r.mac, Type: EtherType})
	hdr := b[packet.EthHeaderLen:]
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], seq)
	binary.BigEndian.PutUint32(hdr[5:], ack)
	binary.BigEndian.PutUint32(hdr[9:], frameCRC(hdr[:9], inner))
	copy(b[packet.EthHeaderLen+headerLen:], inner)
	enc.ID = fr.ID
	return enc
}

func (r *RLL) sendState(peer packet.MAC) *peerSend {
	ps, ok := r.send[peer]
	if !ok {
		ps = &peerSend{timer: sim.NewTimer(r.sched, "rll.rto"), rto: r.cfg.RTO}
		r.send[peer] = ps
	}
	return ps
}

func (r *RLL) recvState(peer packet.MAC) *peerRecv {
	pr, ok := r.recv[peer]
	if !ok {
		pr = &peerRecv{}
		r.recv[peer] = pr
	}
	return pr
}
