// Package rll implements the paper's Reliable Link Layer (Section 3.3):
// a sliding-window protocol inserted below the VirtualWire engines that
// "guarantees reliable delivery of packets handed over to it" so that
// MAC-layer bit errors can never cause a packet loss the fault injection
// engine is unaware of. Without it, a random FCS-failed frame would look
// exactly like an injected DROP and the test environment would no longer
// be controlled.
//
// Wire format: the original frame is encapsulated in an outer Ethernet
// frame with ethertype 0x88B6. Because the RLL is host-to-host, the
// inner frame's MAC addresses equal the outer ones and are not repeated;
// only the bytes from the inner ethertype onward are carried:
//
//	offset 14: type   (1 byte: 1=data, 2=ack, 3=unreliable data)
//	offset 15: seq    (4 bytes)
//	offset 19: ack    (4 bytes, cumulative, piggybacked)
//	offset 23: crc32  (4 bytes, IEEE, over the type/seq/ack fields plus
//	                   the carried inner bytes, so header corruption is
//	                   detected too)
//	offset 27: inner frame from its ethertype onward
//
// The receiver reconstructs the inner frame from the outer addresses.
//
// Per-peer go-back-N: the receiver only accepts the next in-sequence
// frame and acknowledges cumulatively; the sender retransmits everything
// unacknowledged on timeout. Broadcast frames are sent unreliably (there
// is no per-peer stream to sequence them on), which matches their use for
// advisory Rether ring announcements.
package rll

import (
	"encoding/binary"
	"hash/crc32"
	"time"

	"virtualwire/internal/ether"
	"virtualwire/internal/metrics"
	"virtualwire/internal/packet"
	"virtualwire/internal/sim"
	"virtualwire/internal/stack"
)

// EtherType is the outer ethertype of RLL frames.
const EtherType uint16 = 0x88B6

// Frame type codes.
const (
	typeData       = 1
	typeAck        = 2
	typeUnreliable = 3
)

const headerLen = 13 // type + seq + ack + crc32, after the outer Ethernet header

// Config parametrizes an RLL instance.
type Config struct {
	// Window is the go-back-N send window in frames (default 32 — a
	// 100 Mbps LAN path holds only a few full-size frames, but queueing
	// under load inflates the link RTT well past the serialization
	// delay and a tight window would throttle throughput).
	Window int
	// RTO is the base retransmission timeout (default 5 ms — enough to
	// serialize a full default window plus the ack on a loaded 100 Mbps
	// segment). Successive timeouts back off exponentially up to 16x.
	RTO time.Duration
	// MaxRetries bounds retransmissions of the window head before the
	// peer is declared unreachable and the frame dropped (default 10).
	MaxRetries int
}

func (c *Config) fill() {
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.RTO <= 0 {
		c.RTO = 5 * time.Millisecond
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 10
	}
}

// Stats counts RLL events.
type Stats struct {
	DataSent      uint64
	DataRetrans   uint64
	AcksSent      uint64
	Delivered     uint64
	Duplicates    uint64 // received but already delivered (retransmit overlap)
	OutOfOrder    uint64 // dropped by go-back-N
	CRCDrops      uint64 // inner CRC mismatch
	GaveUp        uint64 // frames dropped after MaxRetries
	Unreliable    uint64 // broadcast/unreliable frames sent
	BlockedQueued uint64 // frames queued because the window was full
}

type peerSend struct {
	nextSeq  uint32
	base     uint32
	inflight []*ether.Frame // encapsulated frames, base..nextSeq-1
	backlog  []*ether.Frame // encapsulated frames waiting for window space
	timer    *sim.Timer
	retries  int
	rto      time.Duration
}

type peerRecv struct {
	expected uint32
}

// RLL is the reliable link layer for one host. It implements
// stack.Layer.
type RLL struct {
	base  stack.Base
	cfg   Config
	sched *sim.Scheduler
	mac   packet.MAC
	send  map[packet.MAC]*peerSend
	recv  map[packet.MAC]*peerRecv

	// Stats accumulates protocol counters.
	Stats Stats
	// Disabled short-circuits the layer (frames pass through
	// untouched). The Figure 8 experiment toggles this.
	Disabled bool
}

var _ stack.Layer = (*RLL)(nil)

// New returns an RLL layer for the host with the given MAC.
func New(sched *sim.Scheduler, mac packet.MAC, cfg Config) *RLL {
	cfg.fill()
	return &RLL{
		cfg:   cfg,
		sched: sched,
		mac:   mac,
		send:  make(map[packet.MAC]*peerSend),
		recv:  make(map[packet.MAC]*peerRecv),
	}
}

// Snapshot implements the uniform metrics hook: every Stats field plus
// the instantaneous window occupancy summed over peers.
func (r *RLL) Snapshot() metrics.Snapshot {
	var sn metrics.Snapshot
	sn.Counter("data_sent", r.Stats.DataSent)
	sn.Counter("data_retrans", r.Stats.DataRetrans)
	sn.Counter("acks_sent", r.Stats.AcksSent)
	sn.Counter("delivered", r.Stats.Delivered)
	sn.Counter("duplicates", r.Stats.Duplicates)
	sn.Counter("out_of_order", r.Stats.OutOfOrder)
	sn.Counter("crc_drops", r.Stats.CRCDrops)
	sn.Counter("gave_up", r.Stats.GaveUp)
	sn.Counter("unreliable", r.Stats.Unreliable)
	sn.Counter("window_stalls", r.Stats.BlockedQueued)
	var inflight, backlog int
	for _, ps := range r.send {
		inflight += len(ps.inflight)
		backlog += len(ps.backlog)
	}
	sn.Gauge("inflight_frames", float64(inflight))
	sn.Gauge("backlog_frames", float64(backlog))
	return sn
}

// SetBelow implements stack.Layer.
func (r *RLL) SetBelow(d stack.Down) { r.base.SetBelow(d) }

// SetAbove implements stack.Layer.
func (r *RLL) SetAbove(u stack.Up) { r.base.SetAbove(u) }

// SendDown implements stack.Layer: encapsulate and transmit reliably.
func (r *RLL) SendDown(fr *ether.Frame) {
	if r.Disabled || len(fr.Data) < packet.EthHeaderLen {
		r.base.PassDown(fr)
		return
	}
	dst := fr.Dst()
	if dst.IsBroadcast() {
		r.Stats.Unreliable++
		r.base.PassDown(r.encap(fr, typeUnreliable, 0, 0))
		return
	}
	ps := r.sendState(dst)
	enc := r.encap(fr, typeData, ps.nextSeq, 0)
	ps.nextSeq++
	if len(ps.inflight) >= r.cfg.Window {
		r.Stats.BlockedQueued++
		ps.backlog = append(ps.backlog, enc)
		return
	}
	ps.inflight = append(ps.inflight, enc)
	r.transmit(enc)
	r.Stats.DataSent++
	if !ps.timer.Armed() {
		r.armTimer(dst, ps)
	}
}

// DeliverUp implements stack.Layer: decapsulate, validate, acknowledge.
func (r *RLL) DeliverUp(fr *ether.Frame) {
	if r.Disabled {
		r.base.PassUp(fr)
		return
	}
	if fr.EtherType() != EtherType {
		if fr.Corrupt {
			// A damaged frame whose bytes cannot be trusted at all
			// (possibly an RLL frame with a mangled ethertype).
			r.Stats.CRCDrops++
			return
		}
		// Not RLL traffic (mixed testbed); deliver as-is.
		r.base.PassUp(fr)
		return
	}
	if len(fr.Data) < packet.EthHeaderLen+headerLen {
		return
	}
	hdr := fr.Data[packet.EthHeaderLen:]
	typ := hdr[0]
	seq := binary.BigEndian.Uint32(hdr[1:])
	ack := binary.BigEndian.Uint32(hdr[5:])
	crc := binary.BigEndian.Uint32(hdr[9:])
	inner := fr.Data[packet.EthHeaderLen+headerLen:]
	src := fr.Src()
	if frameCRC(hdr[:9], inner) != crc {
		// Damaged on the wire — header or payload. Do not ack; the
		// sender's window retransmits. This is the exact loss the RLL
		// exists to mask.
		r.Stats.CRCDrops++
		return
	}

	switch typ {
	case typeAck:
		r.handleAck(src, ack)
	case typeUnreliable:
		r.deliverInner(fr, inner)
	case typeData:
		pr := r.recvState(src)
		switch {
		case seq == pr.expected:
			pr.expected++
			r.Stats.Delivered++
			r.sendAck(src, pr.expected)
			r.deliverInner(fr, inner)
		case seq < pr.expected:
			// Duplicate of something already delivered: re-ack so the
			// sender can advance.
			r.Stats.Duplicates++
			r.sendAck(src, pr.expected)
		default:
			// Gap: go-back-N discards and re-acks the last good.
			r.Stats.OutOfOrder++
			r.sendAck(src, pr.expected)
		}
	}
}

// deliverInner reconstructs the inner frame (outer addresses + carried
// bytes) and passes it up.
func (r *RLL) deliverInner(outer *ether.Frame, inner []byte) {
	data := make([]byte, 12+len(inner))
	copy(data, outer.Data[0:12]) // dst + src are shared with the outer frame
	copy(data[12:], inner)
	r.base.PassUp(&ether.Frame{Data: data, ID: outer.ID})
}

func (r *RLL) handleAck(peer packet.MAC, ack uint32) {
	ps := r.sendState(peer)
	if ack <= ps.base {
		return
	}
	advanced := ack - ps.base
	if int(advanced) > len(ps.inflight) {
		advanced = uint32(len(ps.inflight))
	}
	ps.inflight = ps.inflight[advanced:]
	ps.base += advanced
	ps.retries = 0
	ps.rto = r.cfg.RTO // progress: reset the backoff
	r.fillWindow(ps)
	if len(ps.inflight) == 0 {
		ps.timer.Disarm()
		return
	}
	r.armTimer(peer, ps)
}

func (r *RLL) armTimer(peer packet.MAC, ps *peerSend) {
	if ps.rto <= 0 {
		ps.rto = r.cfg.RTO
	}
	ps.timer.Arm(ps.rto, func() { r.timeout(peer, ps) })
}

// timeout retransmits the whole window (go-back-N).
func (r *RLL) timeout(peer packet.MAC, ps *peerSend) {
	if len(ps.inflight) == 0 {
		return
	}
	ps.retries++
	if ps.retries > r.cfg.MaxRetries {
		// Peer unreachable (crashed node). Drop the window head and
		// keep trying with the rest: a FAIL-ed node must not wedge the
		// sender forever.
		r.Stats.GaveUp++
		ps.inflight = ps.inflight[1:]
		ps.base++
		ps.retries = 0
		r.fillWindow(ps)
		if len(ps.inflight) == 0 {
			return
		}
	}
	for _, enc := range ps.inflight {
		r.transmit(enc.Clone())
		r.Stats.DataRetrans++
	}
	// Exponential backoff: a retransmission that was itself premature
	// must not turn into a storm under load.
	ps.rto *= 2
	if max := 16 * r.cfg.RTO; ps.rto > max {
		ps.rto = max
	}
	r.armTimer(peer, ps)
}

// fillWindow admits backlog frames into freed window slots.
func (r *RLL) fillWindow(ps *peerSend) {
	for len(ps.backlog) > 0 && len(ps.inflight) < r.cfg.Window {
		enc := ps.backlog[0]
		ps.backlog = ps.backlog[1:]
		ps.inflight = append(ps.inflight, enc)
		r.transmit(enc)
		r.Stats.DataSent++
	}
}

func (r *RLL) sendAck(peer packet.MAC, ack uint32) {
	b := make([]byte, packet.EthHeaderLen+headerLen)
	packet.PutEth(b, packet.Eth{Dst: peer, Src: r.mac, Type: EtherType})
	hdr := b[packet.EthHeaderLen:]
	hdr[0] = typeAck
	binary.BigEndian.PutUint32(hdr[5:], ack)
	binary.BigEndian.PutUint32(hdr[9:], frameCRC(hdr[:9], nil))
	r.Stats.AcksSent++
	r.base.PassDown(&ether.Frame{Data: b})
}

// frameCRC covers the RLL header fields and the carried inner bytes.
func frameCRC(hdr, inner []byte) uint32 {
	crc := crc32.Update(0, crc32.IEEETable, hdr)
	return crc32.Update(crc, crc32.IEEETable, inner)
}

func (r *RLL) transmit(enc *ether.Frame) {
	// Always hand the medium its own copy: a retransmission must not
	// race with a queued original.
	r.base.PassDown(enc.Clone())
}

func (r *RLL) encap(fr *ether.Frame, typ byte, seq, ack uint32) *ether.Frame {
	inner := fr.Data[12:] // from the inner ethertype onward
	b := make([]byte, packet.EthHeaderLen+headerLen+len(inner))
	packet.PutEth(b, packet.Eth{Dst: fr.Dst(), Src: r.mac, Type: EtherType})
	hdr := b[packet.EthHeaderLen:]
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], seq)
	binary.BigEndian.PutUint32(hdr[5:], ack)
	binary.BigEndian.PutUint32(hdr[9:], frameCRC(hdr[:9], inner))
	copy(b[packet.EthHeaderLen+headerLen:], inner)
	return &ether.Frame{Data: b, ID: fr.ID}
}

func (r *RLL) sendState(peer packet.MAC) *peerSend {
	ps, ok := r.send[peer]
	if !ok {
		ps = &peerSend{timer: sim.NewTimer(r.sched, "rll.rto"), rto: r.cfg.RTO}
		r.send[peer] = ps
	}
	return ps
}

func (r *RLL) recvState(peer packet.MAC) *peerRecv {
	pr, ok := r.recv[peer]
	if !ok {
		pr = &peerRecv{}
		r.recv[peer] = pr
	}
	return pr
}
