package experiments

import (
	"context"
	"fmt"
	"time"

	"virtualwire/campaign"
)

// This file re-expresses the two figure sweeps as campaign specs: the
// same matrices the hand-rolled RunFig7/RunFig8 drivers execute, with
// per-variant seeds pinned to the drivers' derivation so a campaign
// reproduces their numbers exactly — while gaining the executor's
// JSONL streaming, retry policy and cancellation for free.

// Fig7CampaignSpec expands cfg into the Figure 7 matrix: for each
// offered rate, a baseline / vw / vw+rll variant triple with the same
// seeds, scripts and testbed overrides RunFig7 uses.
func Fig7CampaignSpec(cfg Fig7Config) campaign.Spec {
	cfg.fill()
	spec := campaign.Spec{
		Name:    "fig7",
		Seed:    cfg.Seed,
		Script:  fig7Script(cfg.Filters, cfg.Actions),
		Nodes:   nodeTable,
		Horizon: campaign.Duration(cfg.Duration + 5*time.Second),
	}
	medium := ""
	if cfg.FullDuplex {
		medium = "fdswitch"
	}
	noScript := ""
	rllOn := true
	for i, rate := range cfg.OfferedMbps {
		seed := cfg.Seed + int64(i)*100
		wl := campaign.WorkloadSpec{
			Kind: "tcpbulk", From: "node1", To: "node2",
			SrcPort: 0x6000, DstPort: 0x4000,
			RateMbps: rate, Duration: campaign.Duration(cfg.Duration),
		}
		for _, v := range []struct {
			name   string
			script *string // nil inherits the fig7 script
			rll    *bool
			offset int64
		}{
			{"baseline", &noScript, nil, 1},
			{"vw", nil, nil, 2},
			{"vw+rll", nil, &rllOn, 3},
		} {
			vseed := seed + v.offset
			co := campaign.ConfigOverride{
				Medium:                medium,
				RLL:                   v.rll,
				MetricsSampleInterval: campaign.Duration(cfg.MetricsInterval),
			}
			if v.script == nil {
				co.Cost = cfg.Cost
			}
			spec.Variants = append(spec.Variants, campaign.Variant{
				Label:    fmt.Sprintf("%s@%vMbps", v.name, rate),
				Script:   v.script,
				Config:   co,
				Workload: &wl,
				Seed:     &vseed,
			})
		}
	}
	return spec
}

// RunFig7Campaign executes the Figure 7 matrix through the campaign
// executor and folds the records back into sweep points. The points are
// bit-for-bit those of RunFig7 with the same cfg, at any worker count.
func RunFig7Campaign(ctx context.Context, cfg Fig7Config, opts campaign.Options) ([]Fig7Point, *campaign.Summary, error) {
	cfg.fill()
	spec := Fig7CampaignSpec(cfg)
	recs, sum, err := collectRecords(ctx, spec, opts)
	if err != nil {
		return nil, sum, err
	}
	points := make([]Fig7Point, len(cfg.OfferedMbps))
	for i, rate := range cfg.OfferedMbps {
		points[i] = Fig7Point{
			OfferedMbps:  rate,
			BaselineMbps: recs[3*i].GoodputMbps,
			VWMbps:       recs[3*i+1].GoodputMbps,
			VWRLLMbps:    recs[3*i+2].GoodputMbps,
		}
	}
	return points, sum, nil
}

// Fig8CampaignSpec expands cfg into the Figure 8 matrix: the shared
// baseline first, then a filters / actions / rll triple per filter
// count, seeds pinned to RunFig8's derivation.
func Fig8CampaignSpec(cfg Fig8Config) campaign.Spec {
	cfg.fill()
	spec := campaign.Spec{
		Name:    "fig8",
		Seed:    cfg.Seed,
		Nodes:   nodeTable,
		Horizon: campaign.Duration(time.Duration(cfg.Pings)*cfg.Interval + 5*time.Second),
	}
	wl := campaign.WorkloadSpec{
		Kind: "udpecho", From: "node1", To: "node2",
		DstPort: fig8EchoPort,
		Size:    cfg.Size, Interval: campaign.Duration(cfg.Interval), Count: cfg.Pings,
	}
	rllOn := true
	addVariant := func(label, script string, rll *bool, seed int64) {
		src := script
		co := campaign.ConfigOverride{
			RLL:                   rll,
			MetricsSampleInterval: campaign.Duration(cfg.MetricsInterval),
		}
		if script != "" {
			co.Cost = cfg.Cost
		}
		s := seed
		spec.Variants = append(spec.Variants, campaign.Variant{
			Label: label, Script: &src, Config: co, Workload: &wl, Seed: &s,
		})
	}
	addVariant("baseline", "", nil, cfg.Seed+1)
	for i, n := range cfg.FilterCounts {
		seed := cfg.Seed + int64(i+1)*100
		scriptPlain := fig8Script(n, 0, fig8EchoPort)
		scriptActs := fig8Script(n, cfg.Actions, fig8EchoPort)
		addVariant(fmt.Sprintf("filters@n=%d", n), scriptPlain, nil, seed+1)
		addVariant(fmt.Sprintf("actions@n=%d", n), scriptActs, nil, seed+2)
		addVariant(fmt.Sprintf("rll@n=%d", n), scriptActs, &rllOn, seed+3)
	}
	return spec
}

// RunFig8Campaign executes the Figure 8 matrix through the campaign
// executor; points match RunFig8 bit for bit.
func RunFig8Campaign(ctx context.Context, cfg Fig8Config, opts campaign.Options) ([]Fig8Point, *campaign.Summary, error) {
	cfg.fill()
	spec := Fig8CampaignSpec(cfg)
	recs, sum, err := collectRecords(ctx, spec, opts)
	if err != nil {
		return nil, sum, err
	}
	baseRTT := recs[0].MeanRTT.D()
	if recs[0].Received < cfg.Pings {
		return nil, sum, fmt.Errorf("fig8 baseline echo received %d/%d", recs[0].Received, cfg.Pings)
	}
	pct := func(rtt time.Duration) float64 {
		return (float64(rtt) - float64(baseRTT)) / float64(baseRTT) * 100
	}
	points := make([]Fig8Point, len(cfg.FilterCounts))
	for i, n := range cfg.FilterCounts {
		row := recs[1+3*i : 1+3*i+3]
		for _, r := range row {
			if r.Received < cfg.Pings {
				return nil, sum, fmt.Errorf("fig8 %s echo received %d/%d", r.Label, r.Received, cfg.Pings)
			}
		}
		points[i] = Fig8Point{
			Filters:     n,
			BaselineRTT: baseRTT,
			PctFilters:  pct(row[0].MeanRTT.D()),
			PctActions:  pct(row[1].MeanRTT.D()),
			PctRLL:      pct(row[2].MeanRTT.D()),
		}
	}
	return points, sum, nil
}

// collectRecords runs the spec and gathers its records in index order,
// failing fast if any run did not pass.
func collectRecords(ctx context.Context, spec campaign.Spec, opts campaign.Options) ([]campaign.RunRecord, *campaign.Summary, error) {
	var recs []campaign.RunRecord
	user := opts.OnRecord
	opts.OnRecord = func(r campaign.RunRecord) {
		recs = append(recs, r)
		if user != nil {
			user(r)
		}
	}
	sum, err := campaign.Run(ctx, spec, opts)
	if err != nil {
		return nil, sum, err
	}
	for _, r := range recs {
		if r.Outcome != campaign.OutcomePass {
			return nil, sum, fmt.Errorf("campaign run %d (%s): %s: %s", r.Index, r.Label, r.Outcome, r.Error)
		}
	}
	return recs, sum, nil
}
