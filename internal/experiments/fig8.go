package experiments

import (
	"fmt"
	"strings"
	"time"

	"virtualwire"
)

// Fig8Config parametrizes the Figure 8 reproduction: percentage increase
// in UDP echo round-trip latency as a function of the number of packet
// type definitions, for three configurations — (i) filters only, (ii)
// filters plus 25 actions per matched packet, (iii) case (ii) with the
// RLL turned on.
type Fig8Config struct {
	// FilterCounts are the swept x values (default 1,5,10,15,20,25).
	FilterCounts []int
	// Pings per measurement (default 300).
	Pings int
	// Size is the echo payload in bytes (default 512).
	Size int
	// Interval paces the pings (default 1 ms).
	Interval time.Duration
	// Actions is the per-packet action count of curve (ii) (default 25).
	Actions int
	// Seed drives the simulations.
	Seed int64
	// Cost is the engine cost model (default DefaultCost).
	Cost *virtualwire.CostModel
	// MetricsInterval, when positive, samples each sub-run's metrics
	// registry at this virtual-time cadence (vwbench's --metrics-out).
	MetricsInterval time.Duration
	// Observe, when non-nil, is invoked after each sub-run with a label
	// like "actions@n=10" and the finished testbed, before it is
	// discarded. Observe always runs on the caller's goroutine in sweep
	// order, even under Parallel.
	Observe func(label string, tb *virtualwire.Testbed)
	// Parallel is the number of sweep points evaluated concurrently,
	// each in its own private testbed/scheduler. <= 1 runs serially.
	// Results are bit-for-bit identical to a serial sweep.
	Parallel int
}

func (c *Fig8Config) fill() {
	if len(c.FilterCounts) == 0 {
		c.FilterCounts = []int{1, 5, 10, 15, 20, 25}
	}
	if c.Pings <= 0 {
		c.Pings = 300
	}
	if c.Size <= 0 {
		c.Size = 1024
	}
	if c.Interval <= 0 {
		c.Interval = time.Millisecond
	}
	if c.Actions <= 0 {
		c.Actions = 25
	}
	if c.Cost == nil {
		cost := DefaultCost
		c.Cost = &cost
	}
}

// Fig8Point is one x value of the Figure 8 curves.
type Fig8Point struct {
	Filters     int
	BaselineRTT time.Duration
	// PctFilters is curve (i): packet matching rules only.
	PctFilters float64
	// PctActions is curve (ii): matching plus 25 actions per packet.
	PctActions float64
	// PctRLL is curve (iii): case (ii) with the RLL on.
	PctRLL float64
}

const fig8EchoPort = 9000

// RunFig8 executes the sweep. The shared baseline always runs first on
// the caller's goroutine; with cfg.Parallel > 1 the per-count points then
// run concurrently, bit-for-bit identical to the serial sweep.
func RunFig8(cfg Fig8Config) ([]Fig8Point, error) {
	cfg.fill()
	// One shared baseline: no VirtualWire, no RLL.
	baseRTT, err := fig8Point(cfg.Seed+1, cfg, "", false, "baseline")
	if err != nil {
		return nil, fmt.Errorf("fig8 baseline: %w", err)
	}
	type pointResult struct {
		point Fig8Point
		obs   []observation
	}
	results, err := RunParallel(cfg.Parallel, len(cfg.FilterCounts), func(i int) (pointResult, error) {
		n := cfg.FilterCounts[i]
		seed := cfg.Seed + int64(i+1)*100
		scriptPlain := fig8Script(n, 0, fig8EchoPort)
		scriptActs := fig8Script(n, cfg.Actions, fig8EchoPort)
		pcfg := cfg
		var obs []observation
		if cfg.Observe != nil {
			pcfg.Observe = func(label string, tb *virtualwire.Testbed) {
				obs = append(obs, observation{label, tb})
			}
		}
		rttF, err := fig8Point(seed+1, pcfg, scriptPlain, false, fmt.Sprintf("filters@n=%d", n))
		if err != nil {
			return pointResult{}, fmt.Errorf("fig8 filters n=%d: %w", n, err)
		}
		rttA, err := fig8Point(seed+2, pcfg, scriptActs, false, fmt.Sprintf("actions@n=%d", n))
		if err != nil {
			return pointResult{}, fmt.Errorf("fig8 actions n=%d: %w", n, err)
		}
		rttR, err := fig8Point(seed+3, pcfg, scriptActs, true, fmt.Sprintf("rll@n=%d", n))
		if err != nil {
			return pointResult{}, fmt.Errorf("fig8 rll n=%d: %w", n, err)
		}
		pct := func(rtt time.Duration) float64 {
			return (float64(rtt) - float64(baseRTT)) / float64(baseRTT) * 100
		}
		return pointResult{point: Fig8Point{
			Filters:     n,
			BaselineRTT: baseRTT,
			PctFilters:  pct(rttF),
			PctActions:  pct(rttA),
			PctRLL:      pct(rttR),
		}, obs: obs}, nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]Fig8Point, len(results))
	for i, r := range results {
		out[i] = r.point
		for _, o := range r.obs {
			cfg.Observe(o.label, o.tb)
		}
	}
	return out, nil
}

func fig8Point(seed int64, cfg Fig8Config, script string, withRLL bool, label string) (time.Duration, error) {
	tbCfg := virtualwire.Config{Seed: seed, RLL: withRLL, MetricsSampleInterval: cfg.MetricsInterval}
	if script != "" {
		tbCfg.Cost = *cfg.Cost
	}
	tb, err := buildPair(tbCfg, script)
	if err != nil {
		return 0, err
	}
	echo, err := tb.AddUDPEcho(virtualwire.UDPEchoConfig{
		Client: "node1", Server: "node2",
		ServerPort: fig8EchoPort,
		Size:       cfg.Size,
		Interval:   cfg.Interval,
		Count:      cfg.Pings,
	})
	if err != nil {
		return 0, err
	}
	horizon := time.Duration(cfg.Pings)*cfg.Interval + 5*time.Second
	if _, err := tb.Run(horizon); err != nil {
		return 0, err
	}
	if echo.Received() < cfg.Pings {
		return 0, fmt.Errorf("echo received %d/%d", echo.Received(), cfg.Pings)
	}
	if cfg.Observe != nil {
		cfg.Observe(label, tb)
	}
	return echo.MeanRTT(), nil
}

// FormatFig8 renders the sweep as the table Figure 8 plots.
func FormatFig8(points []Fig8Point) string {
	var b strings.Builder
	b.WriteString("Figure 8: % increase in UDP echo RTT vs number of packet definitions\n")
	if len(points) > 0 {
		fmt.Fprintf(&b, "baseline RTT (no VirtualWire): %v\n", points[0].BaselineRTT)
	}
	b.WriteString("filters   (i) matching only   (ii) +25 actions   (iii) +RLL\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%7d   %17.2f%%   %16.2f%%   %9.2f%%\n",
			p.Filters, p.PctFilters, p.PctActions, p.PctRLL)
	}
	return b.String()
}
