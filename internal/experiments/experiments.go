// Package experiments regenerates the paper's evaluation section: the
// Figure 7 TCP-throughput-vs-offered-load sweep and the Figure 8
// UDP-echo-latency-overhead sweep, using the public virtualwire API the
// way a tester would.
//
// Absolute numbers come from the simulated substrate, not the authors'
// Pentium-4 testbed; what must (and does) reproduce is the shape — see
// EXPERIMENTS.md for the recorded paper-vs-measured comparison.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"virtualwire"
)

// DefaultCost is the calibrated engine cost model used by both figures.
// It encodes the paper's measured per-packet kernel costs: a fixed
// interception cost, a per-tuple charge for the linear filter scan, and
// per-update/per-action charges for the table walks (Section 7).
var DefaultCost = virtualwire.CostModel{
	Base:             200 * time.Nanosecond,
	PerTuple:         70 * time.Nanosecond,
	PerCounterUpdate: 40 * time.Nanosecond,
	PerAction:        30 * time.Nanosecond,
}

const (
	node1MAC = "00:46:61:af:fe:01"
	node2MAC = "00:46:61:af:fe:02"
	node1IP  = "192.168.1.1"
	node2IP  = "192.168.1.2"
)

// nodeTable is the two-host Node Table shared by the experiment scripts.
const nodeTable = `
NODE_TABLE
node1 ` + node1MAC + ` ` + node1IP + `
node2 ` + node2MAC + ` ` + node2IP + `
END
`

// decoyFilters emits n-1 non-matching packet definitions so that the
// engine's linear scan visits n entries before (or without) matching —
// the knob on Figure 8's x axis. Decoys match UDP destination ports that
// carry no traffic.
func decoyFilters(b *strings.Builder, n int) {
	for i := 0; i < n; i++ {
		fmt.Fprintf(b, "decoy%d: (23 1 0x11), (36 2 0x%04x)\n", i, 0x1f40+i)
	}
}

// junkActions emits count-1 INCR_CNTR actions on the scratch counter J.
func junkActions(b *strings.Builder, count int) {
	for i := 0; i < count; i++ {
		b.WriteString("          INCR_CNTR( J, 1 );\n")
	}
}

// fig8Script builds the echo-measurement scenario: nFilters packet
// definitions (the echo-request filter last, so the scan length is
// nFilters) and, when nActions > 0, a rule firing nActions actions for
// every request received at node2.
func fig8Script(nFilters, nActions int, echoPort uint16) string {
	var b strings.Builder
	b.WriteString("FILTER_TABLE\n")
	decoyFilters(&b, nFilters-1)
	fmt.Fprintf(&b, "udp_req: (23 1 0x11), (36 2 0x%04x)\n", echoPort)
	b.WriteString("END\n")
	b.WriteString(nodeTable)
	b.WriteString("SCENARIO fig8_echo\n")
	b.WriteString("REQ: (udp_req, node1, node2, RECV)\n")
	b.WriteString("J: (node2)\n")
	b.WriteString("(TRUE) >> ENABLE_CNTR( REQ );\n")
	if nActions > 0 {
		b.WriteString("((REQ = 1)) >> RESET_CNTR( REQ );\n")
		junkActions(&b, nActions-1)
	}
	b.WriteString("END\n")
	return b.String()
}

// fig7Script builds the throughput-measurement scenario: nFilters packet
// definitions with the TCP-data filter last plus a rule firing nActions
// actions per data packet received at node2 ("allowed 25 actions to be
// triggered for each packet", Section 7).
func fig7Script(nFilters, nActions int) string {
	var b strings.Builder
	b.WriteString("FILTER_TABLE\n")
	decoyFilters(&b, nFilters-1)
	b.WriteString("TCP_data: (23 1 0x06), (34 2 0x6000), (36 2 0x4000), (47 1 0x10 0x10)\n")
	b.WriteString("END\n")
	b.WriteString(nodeTable)
	b.WriteString("SCENARIO fig7_load\n")
	b.WriteString("DATA: (TCP_data, node1, node2, RECV)\n")
	b.WriteString("J: (node2)\n")
	b.WriteString("(TRUE) >> ENABLE_CNTR( DATA );\n")
	if nActions > 0 {
		b.WriteString("((DATA = 1)) >> RESET_CNTR( DATA );\n")
		junkActions(&b, nActions-1)
	}
	b.WriteString("END\n")
	return b.String()
}

// buildPair assembles the two-node experiment testbed.
func buildPair(cfg virtualwire.Config, script string) (*virtualwire.Testbed, error) {
	tb, err := virtualwire.New(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := tb.AddHost("node1", node1MAC, node1IP); err != nil {
		return nil, err
	}
	if _, err := tb.AddHost("node2", node2MAC, node2IP); err != nil {
		return nil, err
	}
	if script != "" {
		if err := tb.LoadScript(script); err != nil {
			return nil, err
		}
	}
	return tb, nil
}
