package experiments

import (
	"context"
	"testing"
	"time"

	"virtualwire/campaign"
)

// smallFig7 keeps the equality tests fast: two rates, short pacing.
func smallFig7() Fig7Config {
	return Fig7Config{
		OfferedMbps: []float64{20, 60},
		Duration:    100 * time.Millisecond,
		Filters:     5,
		Actions:     5,
		Seed:        11,
	}
}

func smallFig8() Fig8Config {
	return Fig8Config{
		FilterCounts: []int{1, 10},
		Pings:        40,
		Interval:     time.Millisecond,
		Actions:      5,
		Seed:         23,
	}
}

// TestFig7CampaignMatchesDriver: the campaign form of the Figure 7
// sweep reproduces RunFig7's points bit for bit, at several worker
// counts.
func TestFig7CampaignMatchesDriver(t *testing.T) {
	want, err := RunFig7(smallFig7())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		got, sum, err := RunFig7Campaign(context.Background(), smallFig7(), campaign.Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d points, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("workers=%d point %d = %+v, want %+v", workers, i, got[i], want[i])
			}
		}
		if sum.Passed != sum.Runs || sum.Runs != 3*len(want) {
			t.Errorf("workers=%d summary: %d/%d passed", workers, sum.Passed, sum.Runs)
		}
	}
}

// TestFig8CampaignMatchesDriver: same guarantee for Figure 8.
func TestFig8CampaignMatchesDriver(t *testing.T) {
	want, err := RunFig8(smallFig8())
	if err != nil {
		t.Fatal(err)
	}
	got, sum, err := RunFig8Campaign(context.Background(), smallFig8(), campaign.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d points, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("point %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if sum.Runs != 1+3*len(want) || sum.Passed != sum.Runs {
		t.Errorf("summary: %d/%d passed", sum.Passed, sum.Runs)
	}
}
