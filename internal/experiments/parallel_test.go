package experiments

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"virtualwire"
)

func TestRunParallelPreservesOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		out, err := RunParallel(workers, 25, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunParallelReturnsSmallestFailingIndex(t *testing.T) {
	errAt := func(fail map[int]bool) error {
		_, err := RunParallel(4, 10, func(i int) (int, error) {
			if fail[i] {
				return 0, fmt.Errorf("point %d failed", i)
			}
			return i, nil
		})
		return err
	}
	err := errAt(map[int]bool{7: true, 3: true, 9: true})
	if err == nil || err.Error() != "point 3 failed" {
		t.Errorf("err = %v, want the smallest failing index (3)", err)
	}
	if err := errAt(nil); err != nil {
		t.Errorf("err = %v on clean run", err)
	}
}

func TestRunParallelEmpty(t *testing.T) {
	out, err := RunParallel(4, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || out != nil {
		t.Errorf("RunParallel(0 items) = %v, %v", out, err)
	}
}

// RunParallel must actually overlap the work: four 50 ms sleeps across
// four workers should complete in well under the 200 ms a serial pass
// takes. Sleeping does not consume CPU, so this holds even on a
// single-core machine.
func TestRunParallelConcurrency(t *testing.T) {
	const n = 4
	const nap = 50 * time.Millisecond
	var peak, cur atomic.Int32
	start := time.Now()
	_, err := RunParallel(n, n, func(i int) (int, error) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(nap)
		cur.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if peak.Load() < 2 {
		t.Errorf("peak concurrency = %d, want >= 2", peak.Load())
	}
	if elapsed > 3*nap {
		t.Errorf("4 overlapped %v sleeps took %v, want < %v", nap, elapsed, 3*nap)
	}
}

// collectSeries gathers the Observe stream the way vwbench -metrics-out
// does, encoding each testbed's series to JSON at replay time.
type labeledJSON struct {
	Label string
	JSON  []byte
}

func seriesCollector(t *testing.T) (*[]labeledJSON, func(string, *virtualwire.Testbed)) {
	t.Helper()
	var got []labeledJSON
	return &got, func(label string, tb *virtualwire.Testbed) {
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		if err := enc.Encode(tb.MetricsSeries()); err != nil {
			t.Fatalf("encode series: %v", err)
		}
		got = append(got, labeledJSON{Label: label, JSON: buf.Bytes()})
	}
}

// A parallel Figure 7 sweep must be indistinguishable from the serial
// one: identical point slices and an identical Observe stream (labels,
// order, and byte-for-byte metrics series).
func TestFig7SerialParallelIdentical(t *testing.T) {
	run := func(parallel int) ([]Fig7Point, []labeledJSON) {
		collected, observe := seriesCollector(t)
		pts, err := RunFig7(Fig7Config{
			OfferedMbps:     []float64{20, 60, 95},
			Duration:        100 * time.Millisecond,
			Seed:            42,
			Parallel:        parallel,
			MetricsInterval: 20 * time.Millisecond,
			Observe:         observe,
		})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return pts, *collected
	}
	serialPts, serialObs := run(1)
	parPts, parObs := run(4)
	if !reflect.DeepEqual(serialPts, parPts) {
		t.Errorf("points diverge:\nserial:   %+v\nparallel: %+v", serialPts, parPts)
	}
	if len(serialObs) != len(parObs) {
		t.Fatalf("observation counts diverge: %d vs %d", len(serialObs), len(parObs))
	}
	for i := range serialObs {
		if serialObs[i].Label != parObs[i].Label {
			t.Errorf("observation %d label: %q vs %q", i, serialObs[i].Label, parObs[i].Label)
		}
		if !bytes.Equal(serialObs[i].JSON, parObs[i].JSON) {
			t.Errorf("observation %d (%s): metrics series bytes diverge", i, serialObs[i].Label)
		}
	}
}

// Same for Figure 8, whose shared baseline runs serially before the
// parallel per-count points.
func TestFig8SerialParallelIdentical(t *testing.T) {
	run := func(parallel int) ([]Fig8Point, []labeledJSON) {
		collected, observe := seriesCollector(t)
		pts, err := RunFig8(Fig8Config{
			FilterCounts:    []int{1, 10, 25},
			Pings:           40,
			Seed:            7,
			Parallel:        parallel,
			MetricsInterval: 10 * time.Millisecond,
			Observe:         observe,
		})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return pts, *collected
	}
	serialPts, serialObs := run(1)
	parPts, parObs := run(3)
	if !reflect.DeepEqual(serialPts, parPts) {
		t.Errorf("points diverge:\nserial:   %+v\nparallel: %+v", serialPts, parPts)
	}
	if len(serialObs) != len(parObs) {
		t.Fatalf("observation counts diverge: %d vs %d", len(serialObs), len(parObs))
	}
	if len(serialObs) > 0 && serialObs[0].Label != "baseline" {
		t.Errorf("first observation = %q, want the shared baseline", serialObs[0].Label)
	}
	for i := range serialObs {
		if serialObs[i].Label != parObs[i].Label {
			t.Errorf("observation %d label: %q vs %q", i, serialObs[i].Label, parObs[i].Label)
		}
		if !bytes.Equal(serialObs[i].JSON, parObs[i].JSON) {
			t.Errorf("observation %d (%s): metrics series bytes diverge", i, serialObs[i].Label)
		}
	}
}

var errSentinel = errors.New("sentinel")

// Serial mode must short-circuit on the first error exactly like the old
// loop did (later points never run).
func TestRunParallelSerialShortCircuit(t *testing.T) {
	ran := 0
	_, err := RunParallel(1, 10, func(i int) (int, error) {
		ran++
		if i == 2 {
			return 0, errSentinel
		}
		return i, nil
	})
	if !errors.Is(err, errSentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if ran != 3 {
		t.Errorf("serial mode ran %d points after an error at index 2, want 3", ran)
	}
}
