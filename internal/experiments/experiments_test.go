package experiments

import (
	"strings"
	"testing"
	"time"

	"virtualwire"
)

// TestFig8Shape asserts the properties the paper reports for Figure 8:
// the RTT overhead grows (close to linearly) with the number of packet
// definitions, the three curves are ordered (filters < +actions < +RLL),
// and the worst case stays in single digits ("never goes beyond 7%" in
// the paper; we allow a little slack for the simulated substrate).
func TestFig8Shape(t *testing.T) {
	pts, err := RunFig8(Fig8Config{Pings: 150, FilterCounts: []int{1, 10, 25}})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if !(p.PctFilters <= p.PctActions && p.PctActions <= p.PctRLL) {
			t.Errorf("curves out of order at n=%d: %+v", p.Filters, p)
		}
		if p.PctFilters < 0 {
			t.Errorf("negative overhead at n=%d: %+v", p.Filters, p)
		}
		if p.PctRLL > 9 {
			t.Errorf("overhead %0.2f%% at n=%d exceeds the single-digit band", p.PctRLL, p.Filters)
		}
	}
	// Monotone growth with filter count on every curve.
	for i := 1; i < len(pts); i++ {
		if pts[i].PctFilters <= pts[i-1].PctFilters {
			t.Errorf("curve (i) not growing: %+v then %+v", pts[i-1], pts[i])
		}
		if pts[i].PctActions <= pts[i-1].PctActions {
			t.Errorf("curve (ii) not growing: %+v then %+v", pts[i-1], pts[i])
		}
	}
	// Roughly linear: overhead at 25 filters is several times that at 1
	// (the linear-scan term dominates the fixed cost).
	if pts[2].PctFilters < 3*pts[0].PctFilters {
		t.Errorf("curve (i) not linear-ish: %0.2f%% @1 vs %0.2f%% @25",
			pts[0].PctFilters, pts[2].PctFilters)
	}
	out := FormatFig8(pts)
	if !strings.Contains(out, "Figure 8") || !strings.Contains(out, "+RLL") {
		t.Errorf("format:\n%s", out)
	}
}

// TestFig7Shape asserts Figure 7's properties: goodput tracks the
// offered rate in the linear region, plateaus near (not above) line
// rate, and the VirtualWire+RLL curve stays within ~10% of the baseline
// with a visible knee at high offered load.
func TestFig7Shape(t *testing.T) {
	pts, err := RunFig7(Fig7Config{
		OfferedMbps: []float64{30, 60, 90, 100},
		Duration:    time.Second,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, p := range pts {
		if p.OfferedMbps <= 60 {
			// Linear region: every mode must carry the offered load.
			for name, v := range map[string]float64{
				"baseline": p.BaselineMbps, "vw": p.VWMbps, "vw+rll": p.VWRLLMbps,
			} {
				if v < p.OfferedMbps*0.95 || v > p.OfferedMbps*1.05 {
					t.Errorf("%s @%0.f Mbps offered: %0.1f Mbps", name, p.OfferedMbps, v)
				}
			}
		}
		if p.BaselineMbps > 100 || p.VWRLLMbps > 100 {
			t.Errorf("goodput above line rate: %+v", p)
		}
	}
	last := pts[len(pts)-1]
	if last.BaselineMbps < 80 {
		t.Errorf("baseline saturation %0.1f Mbps; switch model too lossy", last.BaselineMbps)
	}
	// The paper's headline: the RLL costs throughput at saturation, but
	// the loss stays around 10%.
	loss := (last.BaselineMbps - last.VWRLLMbps) / last.BaselineMbps * 100
	if loss <= 0 {
		t.Errorf("no RLL throughput penalty at saturation: %+v", last)
	}
	if loss > 15 {
		t.Errorf("RLL penalty %0.1f%% far exceeds the paper's ~10%%", loss)
	}
	// Knee: saturated goodput with RLL is below the 90 Mbps point's
	// offered load.
	if last.VWRLLMbps >= 90 {
		t.Errorf("no knee: vw+rll = %0.1f Mbps at saturation", last.VWRLLMbps)
	}
	out := FormatFig7(pts)
	if !strings.Contains(out, "Figure 7") {
		t.Errorf("format:\n%s", out)
	}
}

func TestScriptGenerators(t *testing.T) {
	s8 := fig8Script(25, 25, 9000)
	if strings.Count(s8, "decoy") != 24 {
		t.Errorf("fig8 script decoys:\n%s", s8)
	}
	if !strings.Contains(s8, "udp_req") || !strings.Contains(s8, "INCR_CNTR( J, 1 )") {
		t.Errorf("fig8 script:\n%s", s8)
	}
	s7 := fig7Script(25, 25)
	if !strings.Contains(s7, "TCP_data") {
		t.Errorf("fig7 script:\n%s", s7)
	}
	// Both must compile through the facade loader.
	if _, err := buildPair(virtualwire.Config{}, s8); err != nil {
		t.Fatalf("fig8 script does not load: %v", err)
	}
	if _, err := buildPair(virtualwire.Config{}, s7); err != nil {
		t.Fatalf("fig7 script does not load: %v", err)
	}
}

// TestFig7FullDuplexAblation: with full-duplex ports there is no shared
// segment for the RLL ACKs to contend on, so the knee flattens — the
// saturated RLL goodput must beat its half-duplex counterpart.
func TestFig7FullDuplexAblation(t *testing.T) {
	half, err := RunFig7(Fig7Config{OfferedMbps: []float64{100}, Duration: time.Second})
	if err != nil {
		t.Fatalf("half: %v", err)
	}
	full, err := RunFig7(Fig7Config{OfferedMbps: []float64{100}, Duration: time.Second, FullDuplex: true})
	if err != nil {
		t.Fatalf("full: %v", err)
	}
	h, f := half[0], full[0]
	if f.VWRLLMbps <= h.VWRLLMbps {
		t.Errorf("full duplex did not help the RLL: half=%.1f full=%.1f Mbps",
			h.VWRLLMbps, f.VWRLLMbps)
	}
	if f.BaselineMbps < 90 {
		t.Errorf("full-duplex baseline only %.1f Mbps", f.BaselineMbps)
	}
}
