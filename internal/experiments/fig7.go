package experiments

import (
	"fmt"
	"strings"
	"time"

	"virtualwire"
)

// Fig7Config parametrizes the Figure 7 reproduction: TCP throughput vs
// offered data-pumping rate, with the fault-injection layer (and the RLL)
// inserted, on two hosts across a 100 Mbps switch.
type Fig7Config struct {
	// OfferedMbps are the swept offered rates (default 10..100 by 10).
	OfferedMbps []float64
	// Duration is the paced-transmission window per point (default 2s).
	Duration time.Duration
	// Filters and Actions set the engine load (default 25 and 25, as in
	// Section 7).
	Filters int
	Actions int
	// Seed drives the simulations.
	Seed int64
	// Cost is the engine cost model (default DefaultCost).
	Cost *virtualwire.CostModel
	// FullDuplex switches the port segments to full duplex — the
	// ablation that removes the contention behind the paper's knee.
	FullDuplex bool
	// MetricsInterval, when positive, samples each sub-run's metrics
	// registry at this virtual-time cadence (vwbench's --metrics-out).
	MetricsInterval time.Duration
	// Observe, when non-nil, is invoked after each sub-run with a label
	// like "vw+rll@90Mbps" and the finished testbed, before it is
	// discarded — the hook metrics collection rides on. Observe always
	// runs on the caller's goroutine in sweep order, even under Parallel
	// (finished testbeds are held until their turn comes).
	Observe func(label string, tb *virtualwire.Testbed)
	// Parallel is the number of sweep points evaluated concurrently,
	// each in its own private testbed/scheduler. <= 1 runs serially.
	// Results are bit-for-bit identical to a serial sweep.
	Parallel int
}

func (c *Fig7Config) fill() {
	if len(c.OfferedMbps) == 0 {
		c.OfferedMbps = []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 95, 100}
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.Filters <= 0 {
		c.Filters = 25
	}
	if c.Actions <= 0 {
		c.Actions = 25
	}
	if c.Cost == nil {
		cost := DefaultCost
		c.Cost = &cost
	}
}

// Fig7Point is one row of the Figure 7 series.
type Fig7Point struct {
	OfferedMbps float64
	// BaselineMbps is TCP goodput without VirtualWire.
	BaselineMbps float64
	// VWMbps is goodput with the engines running the 25-filter,
	// 25-action scenario.
	VWMbps float64
	// VWRLLMbps additionally enables the Reliable Link Layer — the
	// paper's headline curve with the ACK-contention knee past 90 Mbps.
	VWRLLMbps float64
}

// RunFig7 executes the sweep and returns one point per offered rate.
// With cfg.Parallel > 1 independent rate points run concurrently; the
// per-point seeds are derived from the point index exactly as in the
// serial sweep, so the returned points (and any Observe-collected
// metrics) are bit-for-bit identical regardless of worker count.
func RunFig7(cfg Fig7Config) ([]Fig7Point, error) {
	cfg.fill()
	script := fig7Script(cfg.Filters, cfg.Actions)
	type pointResult struct {
		point Fig7Point
		obs   []observation
	}
	results, err := RunParallel(cfg.Parallel, len(cfg.OfferedMbps), func(i int) (pointResult, error) {
		rate := cfg.OfferedMbps[i]
		seed := cfg.Seed + int64(i)*100
		pcfg := cfg
		var obs []observation
		if cfg.Observe != nil {
			pcfg.Observe = func(label string, tb *virtualwire.Testbed) {
				obs = append(obs, observation{label, tb})
			}
		}
		base, err := fig7Point(seed+1, rate, pcfg, "", false, fmt.Sprintf("baseline@%vMbps", rate))
		if err != nil {
			return pointResult{}, fmt.Errorf("fig7 baseline @%vMbps: %w", rate, err)
		}
		vw, err := fig7Point(seed+2, rate, pcfg, script, false, fmt.Sprintf("vw@%vMbps", rate))
		if err != nil {
			return pointResult{}, fmt.Errorf("fig7 vw @%vMbps: %w", rate, err)
		}
		vwrll, err := fig7Point(seed+3, rate, pcfg, script, true, fmt.Sprintf("vw+rll@%vMbps", rate))
		if err != nil {
			return pointResult{}, fmt.Errorf("fig7 vw+rll @%vMbps: %w", rate, err)
		}
		return pointResult{point: Fig7Point{
			OfferedMbps:  rate,
			BaselineMbps: base,
			VWMbps:       vw,
			VWRLLMbps:    vwrll,
		}, obs: obs}, nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]Fig7Point, len(results))
	for i, r := range results {
		out[i] = r.point
		for _, o := range r.obs {
			cfg.Observe(o.label, o.tb)
		}
	}
	return out, nil
}

func fig7Point(seed int64, offeredMbps float64, cfg Fig7Config, script string, withRLL bool, label string) (float64, error) {
	tbCfg := virtualwire.Config{
		Seed:                  seed,
		RLL:                   withRLL,
		MetricsSampleInterval: cfg.MetricsInterval,
	}
	if cfg.FullDuplex {
		tbCfg.Medium = virtualwire.MediumSwitchFullDuplex
	}
	if script != "" {
		tbCfg.Cost = *cfg.Cost
	}
	tb, err := buildPair(tbCfg, script)
	if err != nil {
		return 0, err
	}
	bulk, err := tb.AddTCPBulk(virtualwire.TCPBulkConfig{
		From: "node1", To: "node2",
		SrcPort: 0x6000, DstPort: 0x4000,
		RateBitsPerSecond: offeredMbps * 1e6,
		Duration:          cfg.Duration,
	})
	if err != nil {
		return 0, err
	}
	// Horizon: pacing window plus drain time.
	if _, err := tb.Run(cfg.Duration + 5*time.Second); err != nil {
		return 0, err
	}
	if cfg.Observe != nil {
		cfg.Observe(label, tb)
	}
	return bulk.GoodputBitsPerSecond() / 1e6, nil
}

// FormatFig7 renders the sweep as the table Figure 7 plots.
func FormatFig7(points []Fig7Point) string {
	var b strings.Builder
	b.WriteString("Figure 7: TCP throughput vs offered data pumping rate (Mbps)\n")
	b.WriteString("offered   baseline   virtualwire   virtualwire+RLL   loss-vs-baseline\n")
	for _, p := range points {
		loss := 0.0
		if p.BaselineMbps > 0 {
			loss = (p.BaselineMbps - p.VWRLLMbps) / p.BaselineMbps * 100
		}
		fmt.Fprintf(&b, "%7.0f   %8.1f   %11.1f   %15.1f   %14.1f%%\n",
			p.OfferedMbps, p.BaselineMbps, p.VWMbps, p.VWRLLMbps, loss)
	}
	return b.String()
}
