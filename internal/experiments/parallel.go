package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"

	"virtualwire"
)

// RunParallel evaluates fn(0) … fn(n-1) across at most workers goroutines
// and returns the results in input order. Each call to fn must be fully
// independent of the others — for sweep points that means a private
// Testbed (and therefore a private Scheduler, rand stream and frame
// pool), which the experiment runners guarantee by constructing one
// testbed per point from the point's own seed. Results are therefore
// bit-for-bit identical to a serial sweep regardless of worker count.
//
// workers <= 1 runs the calls serially on the caller's goroutine (no
// goroutines spawned, first error returns immediately); workers <= 0 is
// clamped to GOMAXPROCS. On failure the error of the smallest failing
// index is returned — the same error a serial sweep would have surfaced
// — so error behavior is deterministic too.
func RunParallel[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// observation is a deferred Observe callback: sweeps collect them inside
// each point's worker and replay them on the caller's goroutine in point
// order, so metrics collection sees the exact sequence a serial sweep
// produces (and user hooks never run concurrently).
type observation struct {
	label string
	tb    *virtualwire.Testbed
}
