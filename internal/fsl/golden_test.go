package fsl

import (
	"os"
	"testing"
)

// TestGoldenTableDumps pins the compiled six-table form of the paper's
// two case-study scripts. Any semantic change to the compiler — counter
// homes, term dedup, dependency wiring, action executors — shows up as a
// diff here. Regenerate deliberately with:
//
//	go run ./cmd/fslcheck scripts/<name>.fsl  (and update testdata)
func TestGoldenTableDumps(t *testing.T) {
	for _, name := range []string{"fig5_tcp_ss_ca", "fig6_rether_failure"} {
		name := name
		t.Run(name, func(t *testing.T) {
			src := readScript(t, name+".fsl")
			p, err := Compile(src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			want, err := os.ReadFile("testdata/" + name + ".tables.golden")
			if err != nil {
				t.Fatalf("golden: %v", err)
			}
			if got := p.Dump(); got != string(want) {
				t.Errorf("table dump diverged from golden file.\n--- got ---\n%s\n--- want ---\n%s",
					got, want)
			}
		})
	}
}
