package fsl

import (
	"fmt"
	"time"

	"virtualwire/internal/core"
	"virtualwire/internal/packet"
)

// Compile parses and lowers a single-scenario FSL script into the six
// tables. Scripts with several SCENARIO blocks must use CompileAll.
func Compile(src string) (*core.Program, error) {
	progs, err := CompileAll(src)
	if err != nil {
		return nil, err
	}
	if len(progs) != 1 {
		return nil, fmt.Errorf("fsl: script defines %d scenarios, want exactly 1", len(progs))
	}
	return progs[0], nil
}

// CompileAll parses a script and lowers every scenario into its own
// Program; filter, node and variable tables are shared.
func CompileAll(src string) ([]*core.Program, error) {
	s, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return CompileScript(s)
}

// CompileScript lowers a parsed script.
func CompileScript(s *Script) ([]*core.Program, error) {
	c := &compiler{}
	if err := c.lowerShared(s); err != nil {
		return nil, err
	}
	if len(s.Scenarios) == 0 {
		return nil, fmt.Errorf("fsl: script defines no SCENARIO")
	}
	out := make([]*core.Program, 0, len(s.Scenarios))
	for i := range s.Scenarios {
		p, err := c.lowerScenario(&s.Scenarios[i])
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

type compiler struct {
	vars    []string
	varIdx  map[string]core.VarID
	filters []core.FilterEntry
	fltIdx  map[string]core.FilterID
	nodes   []core.NodeEntry
	nodeIdx map[string]core.NodeID
}

func (c *compiler) lowerShared(s *Script) error {
	c.varIdx = make(map[string]core.VarID)
	c.fltIdx = make(map[string]core.FilterID)
	c.nodeIdx = make(map[string]core.NodeID)

	for _, vd := range s.Vars {
		for _, name := range vd.Names {
			if _, dup := c.varIdx[name]; dup {
				return errAt(vd.Line, 1, "variable %q declared twice", name)
			}
			c.varIdx[name] = core.VarID(len(c.vars))
			c.vars = append(c.vars, name)
		}
	}
	for _, fd := range s.Filters {
		if _, dup := c.fltIdx[fd.Name]; dup {
			return errAt(fd.Line, 1, "packet definition %q declared twice", fd.Name)
		}
		entry := core.FilterEntry{Name: fd.Name}
		for _, td := range fd.Tuples {
			tu, err := c.lowerTuple(td)
			if err != nil {
				return err
			}
			entry.Tuples = append(entry.Tuples, tu)
		}
		if len(entry.Tuples) == 0 {
			return errAt(fd.Line, 1, "packet definition %q has no tuples", fd.Name)
		}
		c.fltIdx[fd.Name] = core.FilterID(len(c.filters))
		c.filters = append(c.filters, entry)
	}
	for _, nd := range s.Nodes {
		if _, dup := c.nodeIdx[nd.Name]; dup {
			return errAt(nd.Line, 1, "node %q declared twice", nd.Name)
		}
		mac, err := packet.ParseMAC(nd.MAC)
		if err != nil {
			return errAt(nd.Line, 1, "node %q: %v", nd.Name, err)
		}
		ip, err := packet.ParseIP(nd.IP)
		if err != nil {
			return errAt(nd.Line, 1, "node %q: %v", nd.Name, err)
		}
		c.nodeIdx[nd.Name] = core.NodeID(len(c.nodes))
		c.nodes = append(c.nodes, core.NodeEntry{Name: nd.Name, MAC: mac, IP: ip})
	}
	return nil
}

func (c *compiler) lowerTuple(td TupleDef) (core.FilterTuple, error) {
	tu := core.FilterTuple{Off: int(td.Off), Len: int(td.Len), Var: -1}
	if td.Off < 0 || td.Len <= 0 || td.Len > 16 {
		return tu, errAt(td.Line, 1, "tuple (offset=%d length=%d) out of range", td.Off, td.Len)
	}
	if td.HasMask {
		m, err := hexBytes(td.Mask, int(td.Len))
		if err != nil {
			return tu, errAt(td.Line, 1, "tuple mask %q: %v", td.Mask, err)
		}
		tu.Mask = m
	}
	if td.IsVar {
		id, ok := c.varIdx[td.VarName]
		if !ok {
			return tu, errAt(td.Line, 1, "tuple references undeclared variable %q", td.VarName)
		}
		tu.Var = id
		return tu, nil
	}
	p, err := hexBytes(td.Pattern, int(td.Len))
	if err != nil {
		return tu, errAt(td.Line, 1, "tuple pattern %q: %v", td.Pattern, err)
	}
	tu.Pattern = p
	return tu, nil
}

// hexBytes interprets a numeric spelling as hex bytes, left-padded with
// zeros to width. Both "0x0010" and "0010" denote {0x00, 0x10}, matching
// the paper's mixed usage in Figures 2 and 6.
func hexBytes(text string, width int) ([]byte, error) {
	if len(text) > 1 && (text[1] == 'x' || text[1] == 'X') {
		text = text[2:]
	}
	if text == "" {
		return nil, fmt.Errorf("empty hex constant")
	}
	if !isHexRun(text) {
		return nil, fmt.Errorf("not a hex constant")
	}
	nbytes := (len(text) + 1) / 2
	if nbytes > width {
		return nil, fmt.Errorf("%d hex bytes exceed tuple length %d", nbytes, width)
	}
	out := make([]byte, width)
	// Fill from the right.
	pos := width*2 - len(text) // nibble index of first digit
	for i := 0; i < len(text); i++ {
		d, _ := hexDigit(text[i])
		byteIdx := (pos + i) / 2
		if (pos+i)%2 == 0 {
			out[byteIdx] |= d << 4
		} else {
			out[byteIdx] |= d
		}
	}
	return out, nil
}

// --- scenario lowering ---

type scenarioLowering struct {
	c    *compiler
	prog *core.Program

	cntIdx  map[string]core.CounterID
	termIdx map[string]core.TermID
}

func (c *compiler) lowerScenario(sc *ScenarioDef) (*core.Program, error) {
	prog := &core.Program{
		Name:              sc.Name,
		InactivityTimeout: sc.Timeout,
		Vars:              append([]string(nil), c.vars...),
		Filters:           append([]core.FilterEntry(nil), c.filters...),
		Nodes:             append([]core.NodeEntry(nil), c.nodes...),
	}
	// Deep-copy filter/counter dependents so scenarios stay independent.
	for i := range prog.Filters {
		prog.Filters[i].Tuples = append([]core.FilterTuple(nil), prog.Filters[i].Tuples...)
	}
	sl := &scenarioLowering{
		c:       c,
		prog:    prog,
		cntIdx:  make(map[string]core.CounterID),
		termIdx: make(map[string]core.TermID),
	}
	for _, cd := range sc.Counters {
		if err := sl.lowerCounter(cd); err != nil {
			return nil, err
		}
	}
	for i, rd := range sc.Rules {
		if err := sl.lowerRule(i+1, rd); err != nil {
			return nil, err
		}
	}
	sl.wireDependencies()
	return prog, nil
}

func (sl *scenarioLowering) node(name string, line int) (core.NodeID, error) {
	id, ok := sl.c.nodeIdx[name]
	if !ok {
		return -1, errAt(line, 1, "unknown node %q (not in NODE_TABLE)", name)
	}
	return id, nil
}

func (sl *scenarioLowering) filter(name string, line int) (core.FilterID, error) {
	id, ok := sl.c.fltIdx[name]
	if !ok {
		return -1, errAt(line, 1, "unknown packet type %q (not in FILTER_TABLE)", name)
	}
	return id, nil
}

func (sl *scenarioLowering) counter(name string, line int) (core.CounterID, error) {
	id, ok := sl.cntIdx[name]
	if !ok {
		return -1, errAt(line, 1, "unknown counter %q", name)
	}
	return id, nil
}

func parseDir(s string, line int) (core.Direction, error) {
	switch s {
	case "SEND":
		return core.DirSend, nil
	case "RECV":
		return core.DirRecv, nil
	}
	return 0, errAt(line, 1, "direction must be SEND or RECV, got %q", s)
}

func (sl *scenarioLowering) lowerCounter(cd CounterDef) error {
	if _, dup := sl.cntIdx[cd.Name]; dup {
		return errAt(cd.Line, 1, "counter %q declared twice", cd.Name)
	}
	entry := core.CounterEntry{Name: cd.Name}
	if cd.IsLocal {
		home, err := sl.node(cd.Node, cd.Line)
		if err != nil {
			return err
		}
		entry.Kind = core.CounterLocal
		entry.Filter = -1
		entry.From, entry.To = -1, -1
		entry.Home = home
	} else {
		flt, err := sl.filter(cd.Filter, cd.Line)
		if err != nil {
			return err
		}
		from, err := sl.node(cd.From, cd.Line)
		if err != nil {
			return err
		}
		to, err := sl.node(cd.To, cd.Line)
		if err != nil {
			return err
		}
		dir, err := parseDir(cd.Dir, cd.Line)
		if err != nil {
			return err
		}
		entry.Kind = core.CounterEvent
		entry.Filter = flt
		entry.From, entry.To = from, to
		entry.Dir = dir
		if dir == core.DirSend {
			entry.Home = from
		} else {
			entry.Home = to
		}
	}
	sl.cntIdx[cd.Name] = core.CounterID(len(sl.prog.Counters))
	sl.prog.Counters = append(sl.prog.Counters, entry)
	return nil
}

func (sl *scenarioLowering) lowerRule(ruleNo int, rd RuleDef) error {
	expr, err := sl.lowerExpr(rd.Cond)
	if err != nil {
		return err
	}
	cond := core.ConditionEntry{Expr: expr, Rule: ruleNo}
	condID := core.CondID(len(sl.prog.Conds))

	anchor := sl.exprAnchor(expr)
	evalSet := map[core.NodeID]bool{}
	for _, ad := range rd.Actions {
		act, err := sl.lowerAction(ad, anchor)
		if err != nil {
			return err
		}
		id := core.ActionID(len(sl.prog.Actions))
		sl.prog.Actions = append(sl.prog.Actions, act)
		cond.Actions = append(cond.Actions, id)
		evalSet[act.Node] = true
	}
	for n := range evalSet {
		cond.EvalNodes = append(cond.EvalNodes, n)
	}
	sortNodeIDs(cond.EvalNodes)
	sl.prog.Conds = append(sl.prog.Conds, cond)
	_ = condID
	return nil
}

func sortNodeIDs(ids []core.NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// exprAnchor picks the node that evaluates STOP/FLAG_ERR actions: the
// home of the first term in the condition, or node 0 for (TRUE).
func (sl *scenarioLowering) exprAnchor(e *core.CondExpr) core.NodeID {
	terms := e.Terms(nil)
	if len(terms) == 0 {
		return 0
	}
	return sl.prog.Terms[terms[0]].Home
}

func (sl *scenarioLowering) lowerExpr(e *ExprNode) (*core.CondExpr, error) {
	switch e.Kind {
	case ExprTrue:
		return &core.CondExpr{Op: core.CondTrue}, nil
	case ExprAnd, ExprOr:
		l, err := sl.lowerExpr(e.L)
		if err != nil {
			return nil, err
		}
		r, err := sl.lowerExpr(e.R)
		if err != nil {
			return nil, err
		}
		op := core.CondAnd
		if e.Kind == ExprOr {
			op = core.CondOr
		}
		return &core.CondExpr{Op: op, Kids: []*core.CondExpr{l, r}}, nil
	case ExprNot:
		l, err := sl.lowerExpr(e.L)
		if err != nil {
			return nil, err
		}
		return &core.CondExpr{Op: core.CondNot, Kids: []*core.CondExpr{l}}, nil
	case ExprTerm:
		id, err := sl.lowerTerm(e)
		if err != nil {
			return nil, err
		}
		return &core.CondExpr{Op: core.CondTerm, Term: id}, nil
	}
	return nil, errAt(e.Line, 1, "internal: unknown expression kind %d", e.Kind)
}

func (sl *scenarioLowering) lowerTerm(e *ExprNode) (core.TermID, error) {
	lhs, err := sl.lowerOperand(e.LHS, e.Line)
	if err != nil {
		return -1, err
	}
	rhs, err := sl.lowerOperand(e.RHS, e.Line)
	if err != nil {
		return -1, err
	}
	if lhs.IsConst && rhs.IsConst {
		return -1, errAt(e.Line, 1, "term compares two constants; at least one counter required")
	}
	var op core.RelOp
	switch e.Op {
	case "<":
		op = core.OpLT
	case "<=":
		op = core.OpLE
	case ">":
		op = core.OpGT
	case ">=":
		op = core.OpGE
	case "=":
		op = core.OpEQ
	case "!=":
		op = core.OpNE
	}
	// Terms are deduplicated (the paper: "a term may appear in multiple
	// conditions").
	key := termKey(lhs, op, rhs)
	if id, ok := sl.termIdx[key]; ok {
		return id, nil
	}
	home := core.NodeID(0)
	if !lhs.IsConst {
		home = sl.prog.Counters[lhs.Counter].Home
	} else {
		home = sl.prog.Counters[rhs.Counter].Home
	}
	id := core.TermID(len(sl.prog.Terms))
	sl.prog.Terms = append(sl.prog.Terms, core.TermEntry{LHS: lhs, Op: op, RHS: rhs, Home: home})
	sl.termIdx[key] = id
	return id, nil
}

func termKey(lhs core.Operand, op core.RelOp, rhs core.Operand) string {
	f := func(o core.Operand) string {
		if o.IsConst {
			return fmt.Sprintf("#%d", o.Const)
		}
		return fmt.Sprintf("c%d", o.Counter)
	}
	return f(lhs) + op.String() + f(rhs)
}

func (sl *scenarioLowering) lowerOperand(od OperandDef, line int) (core.Operand, error) {
	if od.IsInt {
		return core.Operand{IsConst: true, Const: od.Int}, nil
	}
	id, err := sl.counter(od.Name, line)
	if err != nil {
		return core.Operand{}, err
	}
	return core.Operand{Counter: id}, nil
}

// --- actions ---

func (sl *scenarioLowering) lowerAction(ad ActionDef, anchor core.NodeID) (core.ActionEntry, error) {
	switch ad.Name {
	case "DROP", "DUP":
		kind := core.ActDrop
		if ad.Name == "DUP" {
			kind = core.ActDup
		}
		return sl.faultAction(kind, ad, 4)
	case "DELAY":
		act, err := sl.faultAction(core.ActDelay, ad, 5)
		if err != nil {
			return act, err
		}
		d, err := durationArg(ad.Args[4])
		if err != nil {
			return act, errAt(ad.Line, 1, "DELAY duration: %v", err)
		}
		act.Duration = d
		return act, nil
	case "REORDER":
		if len(ad.Args) < 5 {
			return core.ActionEntry{}, errAt(ad.Line, 1,
				"REORDER needs (pkt_type, from, to, dir, #pkts [, [order]])")
		}
		act, err := sl.faultAction(core.ActReorder, ad, -1)
		if err != nil {
			return act, err
		}
		if ad.Args[4].Kind != ArgInt {
			return act, errAt(ad.Line, 1, "REORDER #pkts must be an integer")
		}
		act.Count = int(ad.Args[4].Int)
		if act.Count < 2 || act.Count > 64 {
			return act, errAt(ad.Line, 1, "REORDER #pkts must be in [2,64], got %d", act.Count)
		}
		if len(ad.Args) >= 6 {
			if ad.Args[5].Kind != ArgList {
				return act, errAt(ad.Line, 1, "REORDER order must be a [..] list")
			}
			order := make([]int, 0, len(ad.Args[5].List))
			seen := make(map[int]bool)
			for _, v := range ad.Args[5].List {
				order = append(order, int(v))
				seen[int(v)] = true
			}
			if len(order) != act.Count || len(seen) != act.Count {
				return act, errAt(ad.Line, 1,
					"REORDER order must be a permutation of 1..%d", act.Count)
			}
			for _, v := range order {
				if v < 1 || v > act.Count {
					return act, errAt(ad.Line, 1, "REORDER order entry %d out of range", v)
				}
			}
			act.Order = order
		}
		return act, nil
	case "MODIFY":
		if len(ad.Args) != 4 && len(ad.Args) != 6 {
			return core.ActionEntry{}, errAt(ad.Line, 1,
				"MODIFY needs (pkt_type, from, to, dir [, offset, hex-pattern])")
		}
		act, err := sl.faultAction(core.ActModify, ad, -1)
		if err != nil {
			return act, err
		}
		if len(ad.Args) == 6 {
			if ad.Args[4].Kind != ArgInt {
				return act, errAt(ad.Line, 1, "MODIFY offset must be an integer")
			}
			act.PatternOff = int(ad.Args[4].Int)
			if ad.Args[5].Kind != ArgInt {
				return act, errAt(ad.Line, 1, "MODIFY pattern must be a hex constant")
			}
			text := ad.Args[5].Text
			width := (len(trimHexPrefix(text)) + 1) / 2
			pat, err := hexBytes(text, width)
			if err != nil {
				return act, errAt(ad.Line, 1, "MODIFY pattern: %v", err)
			}
			act.Pattern = pat
		}
		return act, nil
	case "FAIL":
		if len(ad.Args) != 1 || ad.Args[0].Kind != ArgIdent {
			return core.ActionEntry{}, errAt(ad.Line, 1, "FAIL needs (node)")
		}
		n, err := sl.node(ad.Args[0].Name, ad.Line)
		if err != nil {
			return core.ActionEntry{}, err
		}
		return core.ActionEntry{Kind: core.ActFail, Node: n, Filter: -1, From: -1, To: -1, Counter: -1}, nil
	case "STOP":
		if len(ad.Args) != 0 {
			return core.ActionEntry{}, errAt(ad.Line, 1, "STOP takes no arguments")
		}
		return core.ActionEntry{Kind: core.ActStop, Node: anchor, Filter: -1, From: -1, To: -1, Counter: -1}, nil
	case "FLAG_ERR", "FLAG_ERROR":
		if len(ad.Args) != 0 {
			return core.ActionEntry{}, errAt(ad.Line, 1, "%s takes no arguments", ad.Name)
		}
		return core.ActionEntry{Kind: core.ActFlagErr, Node: anchor, Filter: -1, From: -1, To: -1, Counter: -1}, nil
	case "ASSIGN_CNTR":
		return sl.counterAction(core.ActAssignCntr, ad, true)
	case "ENABLE_CNTR":
		return sl.counterAction(core.ActEnableCntr, ad, false)
	case "DISABLE_CNTR":
		return sl.counterAction(core.ActDisableCntr, ad, false)
	case "INCR_CNTR":
		return sl.counterAction(core.ActIncrCntr, ad, true)
	case "DECR_CNTR":
		return sl.counterAction(core.ActDecrCntr, ad, true)
	case "RESET_CNTR":
		return sl.counterAction(core.ActResetCntr, ad, false)
	case "SET_CURTIME":
		return sl.counterAction(core.ActSetCurTime, ad, false)
	case "ELAPSED_TIME":
		return sl.counterAction(core.ActElapsedTime, ad, false)
	}
	return core.ActionEntry{}, errAt(ad.Line, 1, "unknown action %q", ad.Name)
}

func trimHexPrefix(s string) string {
	if len(s) > 1 && (s[1] == 'x' || s[1] == 'X') {
		return s[2:]
	}
	return s
}

func durationArg(a ArgDef) (time.Duration, error) {
	switch a.Kind {
	case ArgDuration:
		return a.Dur, nil
	case ArgInt:
		// Bare integers are milliseconds (the paper's delay granularity
		// unit).
		return time.Duration(a.Int) * time.Millisecond, nil
	}
	return 0, fmt.Errorf("expected a duration (e.g. 50ms)")
}

// faultAction lowers the common (pkt_type, from, to, dir) prefix. argc
// is the exact arg count to enforce, or -1 to skip the check.
func (sl *scenarioLowering) faultAction(kind core.ActionKind, ad ActionDef, argc int) (core.ActionEntry, error) {
	if argc >= 0 && len(ad.Args) != argc {
		return core.ActionEntry{}, errAt(ad.Line, 1,
			"%s needs %d arguments, got %d", ad.Name, argc, len(ad.Args))
	}
	if len(ad.Args) < 4 {
		return core.ActionEntry{}, errAt(ad.Line, 1,
			"%s needs at least (pkt_type, from, to, dir)", ad.Name)
	}
	for i := 0; i < 4; i++ {
		if ad.Args[i].Kind != ArgIdent && i != 3 {
			return core.ActionEntry{}, errAt(ad.Line, 1,
				"%s argument %d must be a name", ad.Name, i+1)
		}
	}
	flt, err := sl.filter(ad.Args[0].Name, ad.Line)
	if err != nil {
		return core.ActionEntry{}, err
	}
	from, err := sl.node(ad.Args[1].Name, ad.Line)
	if err != nil {
		return core.ActionEntry{}, err
	}
	to, err := sl.node(ad.Args[2].Name, ad.Line)
	if err != nil {
		return core.ActionEntry{}, err
	}
	dir, err := parseDir(ad.Args[3].Name, ad.Line)
	if err != nil {
		return core.ActionEntry{}, err
	}
	exec := from
	if dir == core.DirRecv {
		exec = to
	}
	return core.ActionEntry{
		Kind: kind, Node: exec,
		Filter: flt, From: from, To: to, Dir: dir,
		Counter: -1,
	}, nil
}

func (sl *scenarioLowering) counterAction(kind core.ActionKind, ad ActionDef, valued bool) (core.ActionEntry, error) {
	if len(ad.Args) < 1 || ad.Args[0].Kind != ArgIdent {
		return core.ActionEntry{}, errAt(ad.Line, 1, "%s needs a counter name", ad.Name)
	}
	maxArgs := 1
	if valued {
		maxArgs = 2
	}
	if len(ad.Args) > maxArgs {
		return core.ActionEntry{}, errAt(ad.Line, 1, "%s takes at most %d arguments", ad.Name, maxArgs)
	}
	id, err := sl.counter(ad.Args[0].Name, ad.Line)
	if err != nil {
		return core.ActionEntry{}, err
	}
	val := int64(0)
	if kind == core.ActIncrCntr || kind == core.ActDecrCntr {
		val = 1 // default step
	}
	if valued && len(ad.Args) == 2 {
		if ad.Args[1].Kind != ArgInt {
			return core.ActionEntry{}, errAt(ad.Line, 1, "%s value must be an integer", ad.Name)
		}
		val = ad.Args[1].Int
	}
	return core.ActionEntry{
		Kind: kind, Node: sl.prog.Counters[id].Home,
		Filter: -1, From: -1, To: -1,
		Counter: id, Value: val,
	}, nil
}

// wireDependencies fills the reverse-dependency columns of the counter
// and term tables that Figure 3 shows: counter -> terms, counter ->
// remote nodes needing its value, term -> conditions, term -> nodes
// needing its status.
func (sl *scenarioLowering) wireDependencies() {
	p := sl.prog
	// term -> conditions
	for ci := range p.Conds {
		for _, t := range p.Conds[ci].Expr.Terms(nil) {
			p.Terms[t].Conds = appendUniqueCond(p.Terms[t].Conds, core.CondID(ci))
		}
	}
	// counter -> terms, counter -> remote term homes
	for ti := range p.Terms {
		t := &p.Terms[ti]
		for _, opnd := range []core.Operand{t.LHS, t.RHS} {
			if opnd.IsConst {
				continue
			}
			c := &p.Counters[opnd.Counter]
			c.Terms = appendUniqueTerm(c.Terms, core.TermID(ti))
			if c.Home != t.Home {
				c.RemoteNodes = appendUniqueNode(c.RemoteNodes, t.Home)
			}
		}
	}
	// term -> status nodes (condition evaluators other than term home)
	for ti := range p.Terms {
		t := &p.Terms[ti]
		for _, ci := range t.Conds {
			for _, n := range p.Conds[ci].EvalNodes {
				if n != t.Home {
					t.StatusNodes = appendUniqueNode(t.StatusNodes, n)
				}
			}
		}
	}
}

func appendUniqueTerm(s []core.TermID, v core.TermID) []core.TermID {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

func appendUniqueCond(s []core.CondID, v core.CondID) []core.CondID {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

func appendUniqueNode(s []core.NodeID, v core.NodeID) []core.NodeID {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}
