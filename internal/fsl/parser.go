package fsl

import (
	"time"
)

// Parse lexes and parses an FSL source file.
func Parse(src string) (*Script, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.script()
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token { return p.toks[p.pos] }
func (p *parser) peek() Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) advance() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) expect(k TokenKind, what string) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, errAt(t.Line, t.Col, "expected %s, found %s", what, t)
	}
	return p.advance(), nil
}

func (p *parser) script() (*Script, error) {
	s := &Script{}
	for {
		t := p.cur()
		switch {
		case t.Kind == TokEOF:
			return s, nil
		case t.Kind == TokIdent && t.Text == "VAR":
			v, err := p.varDecl()
			if err != nil {
				return nil, err
			}
			s.Vars = append(s.Vars, v)
		case t.Kind == TokIdent && t.Text == "FILTER_TABLE":
			fs, err := p.filterTable()
			if err != nil {
				return nil, err
			}
			s.Filters = append(s.Filters, fs...)
		case t.Kind == TokIdent && t.Text == "NODE_TABLE":
			ns, err := p.nodeTable()
			if err != nil {
				return nil, err
			}
			s.Nodes = append(s.Nodes, ns...)
		case t.Kind == TokIdent && t.Text == "SCENARIO":
			sc, err := p.scenario()
			if err != nil {
				return nil, err
			}
			s.Scenarios = append(s.Scenarios, sc)
		default:
			return nil, errAt(t.Line, t.Col,
				"expected VAR, FILTER_TABLE, NODE_TABLE or SCENARIO, found %s", t)
		}
	}
}

func (p *parser) varDecl() (VarDecl, error) {
	line := p.cur().Line
	p.advance() // VAR
	var v VarDecl
	v.Line = line
	for {
		t, err := p.expect(TokIdent, "variable name")
		if err != nil {
			return v, err
		}
		v.Names = append(v.Names, t.Text)
		if p.cur().Kind == TokComma {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(TokSemi, "';' after VAR declaration"); err != nil {
		return v, err
	}
	return v, nil
}

func (p *parser) filterTable() ([]FilterDef, error) {
	p.advance() // FILTER_TABLE
	var out []FilterDef
	for {
		t := p.cur()
		if t.Kind == TokIdent && t.Text == "END" {
			p.advance()
			return out, nil
		}
		if t.Kind == TokEOF {
			return nil, errAt(t.Line, t.Col, "FILTER_TABLE not terminated by END")
		}
		name, err := p.expect(TokIdent, "packet definition name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokColon, "':' after packet definition name"); err != nil {
			return nil, err
		}
		f := FilterDef{Name: name.Text, Line: name.Line}
		for {
			tu, err := p.tuple()
			if err != nil {
				return nil, err
			}
			f.Tuples = append(f.Tuples, tu)
			if p.cur().Kind == TokComma {
				p.advance()
				continue
			}
			break
		}
		out = append(out, f)
	}
}

// tuple parses (off len [mask] pattern) where mask/pattern are hex
// constants (0x prefix optional) or a VAR name for the pattern.
func (p *parser) tuple() (TupleDef, error) {
	var tu TupleDef
	open, err := p.expect(TokLParen, "'(' starting filter tuple")
	if err != nil {
		return tu, err
	}
	tu.Line = open.Line
	offTok, err := p.expect(TokInt, "tuple offset")
	if err != nil {
		return tu, err
	}
	lenTok, err := p.expect(TokInt, "tuple length")
	if err != nil {
		return tu, err
	}
	tu.Off, tu.Len = offTok.Int, lenTok.Int

	var fields []Token
	for p.cur().Kind == TokInt || p.cur().Kind == TokIdent {
		fields = append(fields, p.advance())
	}
	if _, err := p.expect(TokRParen, "')' ending filter tuple"); err != nil {
		return tu, err
	}
	switch len(fields) {
	case 1:
		f := fields[0]
		if f.Kind == TokIdent {
			tu.IsVar = true
			tu.VarName = f.Text
		} else {
			tu.Pattern = f.Text
		}
	case 2:
		if fields[0].Kind != TokInt {
			return tu, errAt(fields[0].Line, fields[0].Col, "tuple mask must be a hex constant")
		}
		tu.HasMask = true
		tu.Mask = fields[0].Text
		f := fields[1]
		if f.Kind == TokIdent {
			tu.IsVar = true
			tu.VarName = f.Text
		} else {
			tu.Pattern = f.Text
		}
	default:
		return tu, errAt(open.Line, open.Col,
			"tuple needs (offset length [mask] pattern), got %d trailing fields", len(fields))
	}
	return tu, nil
}

func (p *parser) nodeTable() ([]NodeDef, error) {
	p.advance() // NODE_TABLE
	var out []NodeDef
	for {
		t := p.cur()
		if t.Kind == TokIdent && t.Text == "END" {
			p.advance()
			return out, nil
		}
		if t.Kind == TokEOF {
			return nil, errAt(t.Line, t.Col, "NODE_TABLE not terminated by END")
		}
		name, err := p.expect(TokIdent, "node name")
		if err != nil {
			return nil, err
		}
		mac, err := p.expect(TokMAC, "node MAC address")
		if err != nil {
			return nil, err
		}
		ip, err := p.expect(TokIP, "node IP address")
		if err != nil {
			return nil, err
		}
		out = append(out, NodeDef{Name: name.Text, MAC: mac.Text, IP: ip.Text, Line: name.Line})
	}
}

func (p *parser) scenario() (ScenarioDef, error) {
	var sc ScenarioDef
	sc.Line = p.cur().Line
	p.advance() // SCENARIO
	name, err := p.expect(TokIdent, "scenario name")
	if err != nil {
		return sc, err
	}
	sc.Name = name.Text
	if p.cur().Kind == TokDuration {
		sc.Timeout = p.advance().Dur
	} else if p.cur().Kind == TokInt && p.peek().Kind == TokIdent &&
		isDurationUnit(p.peek().Text) {
		// "1 sec" with a space.
		n := p.advance().Int
		u := p.advance().Text
		sc.Timeout = time.Duration(n) * durationUnits[u]
	}
	for {
		t := p.cur()
		switch {
		case t.Kind == TokIdent && t.Text == "END":
			p.advance()
			return sc, nil
		case t.Kind == TokEOF:
			return sc, errAt(t.Line, t.Col, "SCENARIO %s not terminated by END", sc.Name)
		case t.Kind == TokIdent && p.peek().Kind == TokColon:
			cd, err := p.counterDef()
			if err != nil {
				return sc, err
			}
			sc.Counters = append(sc.Counters, cd)
		case t.Kind == TokLParen:
			r, err := p.rule()
			if err != nil {
				return sc, err
			}
			sc.Rules = append(sc.Rules, r)
		default:
			return sc, errAt(t.Line, t.Col,
				"expected counter definition, rule or END in scenario, found %s", t)
		}
	}
}

func isDurationUnit(s string) bool {
	_, ok := durationUnits[s]
	return ok
}

func (p *parser) counterDef() (CounterDef, error) {
	var cd CounterDef
	name := p.advance()
	cd.Name = name.Text
	cd.Line = name.Line
	p.advance() // ':'
	if _, err := p.expect(TokLParen, "'(' starting counter definition"); err != nil {
		return cd, err
	}
	first, err := p.expect(TokIdent, "packet type or node name")
	if err != nil {
		return cd, err
	}
	if p.cur().Kind == TokRParen {
		p.advance()
		cd.IsLocal = true
		cd.Node = first.Text
		return cd, nil
	}
	cd.Filter = first.Text
	if _, err := p.expect(TokComma, "',' in counter definition"); err != nil {
		return cd, err
	}
	from, err := p.expect(TokIdent, "source node")
	if err != nil {
		return cd, err
	}
	cd.From = from.Text
	if _, err := p.expect(TokComma, "',' in counter definition"); err != nil {
		return cd, err
	}
	to, err := p.expect(TokIdent, "destination node")
	if err != nil {
		return cd, err
	}
	cd.To = to.Text
	if _, err := p.expect(TokComma, "',' in counter definition"); err != nil {
		return cd, err
	}
	dir, err := p.expect(TokIdent, "SEND or RECV")
	if err != nil {
		return cd, err
	}
	cd.Dir = dir.Text
	if _, err := p.expect(TokRParen, "')' ending counter definition"); err != nil {
		return cd, err
	}
	return cd, nil
}

// --- rules ---

func (p *parser) rule() (RuleDef, error) {
	var r RuleDef
	r.Line = p.cur().Line
	cond, err := p.orExpr()
	if err != nil {
		return r, err
	}
	r.Cond = cond
	if _, err := p.expect(TokArrow, "'>>' between condition and actions"); err != nil {
		return r, err
	}
	for {
		a, err := p.action()
		if err != nil {
			return r, err
		}
		r.Actions = append(r.Actions, a)
		if _, err := p.expect(TokSemi, "';' after action"); err != nil {
			return r, err
		}
		t := p.cur()
		// The action list ends where the next rule ('('), the next
		// counter definition (IDENT ':'), or END begins.
		if t.Kind == TokLParen || t.Kind == TokEOF {
			return r, nil
		}
		if t.Kind == TokIdent && (t.Text == "END" || p.peek().Kind == TokColon) {
			return r, nil
		}
	}
}

func (p *parser) orExpr() (*ExprNode, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokOr {
		line := p.advance().Line
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &ExprNode{Kind: ExprOr, L: l, R: r, Line: line}
	}
	return l, nil
}

func (p *parser) andExpr() (*ExprNode, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokAnd {
		line := p.advance().Line
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &ExprNode{Kind: ExprAnd, L: l, R: r, Line: line}
	}
	return l, nil
}

func (p *parser) notExpr() (*ExprNode, error) {
	if p.cur().Kind == TokNot {
		line := p.advance().Line
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &ExprNode{Kind: ExprNot, L: e, Line: line}, nil
	}
	return p.primaryExpr()
}

func (p *parser) primaryExpr() (*ExprNode, error) {
	t := p.cur()
	switch t.Kind {
	case TokLParen:
		p.advance()
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen, "')' closing condition"); err != nil {
			return nil, err
		}
		return e, nil
	case TokIdent:
		if t.Text == "TRUE" {
			p.advance()
			return &ExprNode{Kind: ExprTrue, Line: t.Line}, nil
		}
		return p.term()
	case TokInt:
		return p.term()
	}
	return nil, errAt(t.Line, t.Col, "expected condition, found %s", t)
}

func (p *parser) term() (*ExprNode, error) {
	lhs, err := p.operand()
	if err != nil {
		return nil, err
	}
	opTok := p.cur()
	var op string
	switch opTok.Kind {
	case TokLT:
		op = "<"
	case TokLE:
		op = "<="
	case TokGT:
		op = ">"
	case TokGE:
		op = ">="
	case TokEQ:
		op = "="
	case TokNE:
		op = "!="
	default:
		return nil, errAt(opTok.Line, opTok.Col,
			"expected relational operator in term, found %s", opTok)
	}
	p.advance()
	rhs, err := p.operand()
	if err != nil {
		return nil, err
	}
	return &ExprNode{Kind: ExprTerm, LHS: lhs, Op: op, RHS: rhs, Line: opTok.Line}, nil
}

func (p *parser) operand() (OperandDef, error) {
	t := p.cur()
	switch t.Kind {
	case TokIdent:
		p.advance()
		return OperandDef{Name: t.Text}, nil
	case TokInt:
		p.advance()
		return OperandDef{IsInt: true, Int: t.Int}, nil
	}
	return OperandDef{}, errAt(t.Line, t.Col, "expected counter name or integer, found %s", t)
}

// action parses NAME(args...) or NAME args... (both spellings appear in
// the paper).
func (p *parser) action() (ActionDef, error) {
	var a ActionDef
	name, err := p.expect(TokIdent, "action name")
	if err != nil {
		return a, err
	}
	a.Name = name.Text
	a.Line = name.Line
	if p.cur().Kind == TokLParen {
		p.advance()
		if p.cur().Kind == TokRParen {
			p.advance()
			return a, nil
		}
		for {
			arg, err := p.actionArg()
			if err != nil {
				return a, err
			}
			a.Args = append(a.Args, arg)
			if p.cur().Kind == TokComma {
				p.advance()
				continue
			}
			break
		}
		if _, err := p.expect(TokRParen, "')' closing action arguments"); err != nil {
			return a, err
		}
		return a, nil
	}
	// Bare form: arguments up to the terminating ';'.
	if p.cur().Kind == TokSemi {
		return a, nil
	}
	for {
		arg, err := p.actionArg()
		if err != nil {
			return a, err
		}
		a.Args = append(a.Args, arg)
		if p.cur().Kind == TokComma {
			p.advance()
			continue
		}
		return a, nil
	}
}

func (p *parser) actionArg() (ArgDef, error) {
	t := p.cur()
	switch t.Kind {
	case TokIdent:
		p.advance()
		return ArgDef{Kind: ArgIdent, Name: t.Text, Line: t.Line}, nil
	case TokInt:
		p.advance()
		return ArgDef{Kind: ArgInt, Int: t.Int, Text: t.Text, Line: t.Line}, nil
	case TokDuration:
		p.advance()
		return ArgDef{Kind: ArgDuration, Dur: t.Dur, Line: t.Line}, nil
	case TokLBracket:
		p.advance()
		var list []int64
		for p.cur().Kind == TokInt {
			list = append(list, p.advance().Int)
			if p.cur().Kind == TokComma {
				p.advance()
			}
		}
		if _, err := p.expect(TokRBracket, "']' closing order list"); err != nil {
			return ArgDef{}, err
		}
		return ArgDef{Kind: ArgList, List: list, Line: t.Line}, nil
	}
	return ArgDef{}, errAt(t.Line, t.Col, "unexpected action argument %s", t)
}
