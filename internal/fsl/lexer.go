// Package fsl implements the Fault Specification Language (Section 4):
// lexer, parser, AST and the compiler that lowers a script into the six
// tables of internal/core. The grammar is reconstructed from the paper's
// Figures 2, 5 and 6 and Tables I and II; both spellings the paper uses
// are accepted wherever it is inconsistent (action arguments with or
// without parentheses, FLAG_ERR vs FLAG_ERROR, hex patterns with or
// without the 0x prefix).
package fsl

import (
	"fmt"
	"strings"
	"time"
)

// TokenKind classifies lexical tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota + 1
	TokIdent
	TokInt      // decimal or 0x-prefixed integer; Text preserves spelling
	TokDuration // number with a time unit, e.g. 1sec, 500ms
	TokMAC      // aa:bb:cc:dd:ee:ff
	TokIP       // dotted quad
	TokLParen
	TokRParen
	TokLBracket
	TokRBracket
	TokComma
	TokSemi
	TokColon
	TokArrow // >>
	TokAnd   // && or AND
	TokOr    // || or OR
	TokNot   // ! or NOT
	TokLT
	TokLE
	TokGT
	TokGE
	TokEQ // =
	TokNE // !=
)

// Token is one lexical unit with source position.
type Token struct {
	Kind TokenKind
	Text string
	Int  int64
	Dur  time.Duration
	Line int
	Col  int
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "end of script"
	}
	return fmt.Sprintf("%q", t.Text)
}

// SyntaxError is a lexing or parsing failure with position information.
type SyntaxError struct {
	Line int
	Col  int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("fsl: line %d:%d: %s", e.Line, e.Col, e.Msg)
}

func errAt(line, col int, format string, args ...any) error {
	return &SyntaxError{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) at(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isHexRun(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if _, ok := hexDigit(s[i]); !ok {
			return false
		}
	}
	return true
}

func hexDigit(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isClusterChar(c byte) bool {
	return isIdentStart(c) || isDigit(c) || c == '.'
}

// skipSpaceAndComments consumes whitespace, /* */ and // comments.
func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.at(1) == '*':
			line, col := l.line, l.col
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peekByte() == '*' && l.at(1) == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return errAt(line, col, "unterminated /* comment")
			}
		case c == '/' && l.at(1) == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

// next returns the next token.
func (l *lexer) next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Line: line, Col: col}, nil
	}
	c := l.peekByte()

	// Punctuation and operators.
	switch c {
	case '(':
		l.advance()
		return Token{Kind: TokLParen, Text: "(", Line: line, Col: col}, nil
	case ')':
		l.advance()
		return Token{Kind: TokRParen, Text: ")", Line: line, Col: col}, nil
	case '[':
		l.advance()
		return Token{Kind: TokLBracket, Text: "[", Line: line, Col: col}, nil
	case ']':
		l.advance()
		return Token{Kind: TokRBracket, Text: "]", Line: line, Col: col}, nil
	case ',':
		l.advance()
		return Token{Kind: TokComma, Text: ",", Line: line, Col: col}, nil
	case ';':
		l.advance()
		return Token{Kind: TokSemi, Text: ";", Line: line, Col: col}, nil
	case ':':
		l.advance()
		return Token{Kind: TokColon, Text: ":", Line: line, Col: col}, nil
	case '>':
		l.advance()
		switch l.peekByte() {
		case '>':
			l.advance()
			return Token{Kind: TokArrow, Text: ">>", Line: line, Col: col}, nil
		case '=':
			l.advance()
			return Token{Kind: TokGE, Text: ">=", Line: line, Col: col}, nil
		}
		return Token{Kind: TokGT, Text: ">", Line: line, Col: col}, nil
	case '<':
		l.advance()
		if l.peekByte() == '=' {
			l.advance()
			return Token{Kind: TokLE, Text: "<=", Line: line, Col: col}, nil
		}
		return Token{Kind: TokLT, Text: "<", Line: line, Col: col}, nil
	case '=':
		l.advance()
		if l.peekByte() == '=' {
			l.advance()
		}
		return Token{Kind: TokEQ, Text: "=", Line: line, Col: col}, nil
	case '!':
		l.advance()
		if l.peekByte() == '=' {
			l.advance()
			return Token{Kind: TokNE, Text: "!=", Line: line, Col: col}, nil
		}
		return Token{Kind: TokNot, Text: "!", Line: line, Col: col}, nil
	case '&':
		l.advance()
		if l.peekByte() != '&' {
			return Token{}, errAt(line, col, "expected && (single & is not an operator)")
		}
		l.advance()
		return Token{Kind: TokAnd, Text: "&&", Line: line, Col: col}, nil
	case '|':
		l.advance()
		if l.peekByte() != '|' {
			return Token{}, errAt(line, col, "expected || (single | is not an operator)")
		}
		l.advance()
		return Token{Kind: TokOr, Text: "||", Line: line, Col: col}, nil
	}

	if !isClusterChar(c) {
		return Token{}, errAt(line, col, "unexpected character %q", c)
	}

	// Cluster: identifiers, numbers, durations, IPs. A MAC address is
	// detected by lookahead: hex-pair cluster followed by ':' hex-pair
	// groups.
	start := l.pos
	for l.pos < len(l.src) && isClusterChar(l.peekByte()) {
		l.advance()
	}
	word := l.src[start:l.pos]

	if len(word) == 2 && isHexRun(word) && l.peekByte() == ':' && l.looksLikeMAC() {
		mac := word
		for i := 0; i < 5; i++ {
			l.advance() // ':'
			p := l.pos
			l.advance()
			l.advance()
			mac += ":" + l.src[p:p+2]
		}
		return Token{Kind: TokMAC, Text: mac, Line: line, Col: col}, nil
	}

	return classifyCluster(word, line, col)
}

// looksLikeMAC checks that the five ":hh" groups follow.
func (l *lexer) looksLikeMAC() bool {
	p := l.pos
	for i := 0; i < 5; i++ {
		if p >= len(l.src) || l.src[p] != ':' {
			return false
		}
		p++
		if p+1 >= len(l.src) {
			return false
		}
		if _, ok := hexDigit(l.src[p]); !ok {
			return false
		}
		if _, ok := hexDigit(l.src[p+1]); !ok {
			return false
		}
		p += 2
	}
	// Must not be followed by another hex char (would be a longer run).
	if p < len(l.src) {
		if _, ok := hexDigit(l.src[p]); ok {
			return false
		}
	}
	return true
}

var durationUnits = map[string]time.Duration{
	"ns":   time.Nanosecond,
	"us":   time.Microsecond,
	"ms":   time.Millisecond,
	"s":    time.Second,
	"sec":  time.Second,
	"secs": time.Second,
	"min":  time.Minute,
}

func classifyCluster(word string, line, col int) (Token, error) {
	// Dotted quad?
	if strings.Count(word, ".") == 3 && isDigit(word[0]) {
		return Token{Kind: TokIP, Text: word, Line: line, Col: col}, nil
	}
	if isDigit(word[0]) {
		// 0x hex integer.
		if strings.HasPrefix(word, "0x") || strings.HasPrefix(word, "0X") {
			digits := word[2:]
			if !isHexRun(digits) || digits == "" {
				return Token{}, errAt(line, col, "malformed hex constant %q", word)
			}
			var v int64
			for i := 0; i < len(digits); i++ {
				d, _ := hexDigit(digits[i])
				v = v<<4 | int64(d)
			}
			return Token{Kind: TokInt, Text: word, Int: v, Line: line, Col: col}, nil
		}
		// Split leading digits from a possible unit suffix.
		i := 0
		for i < len(word) && isDigit(word[i]) {
			i++
		}
		var v int64
		for _, d := range word[:i] {
			v = v*10 + int64(d-'0')
		}
		if i == len(word) {
			return Token{Kind: TokInt, Text: word, Int: v, Line: line, Col: col}, nil
		}
		unit, ok := durationUnits[strings.ToLower(word[i:])]
		if !ok {
			return Token{}, errAt(line, col, "malformed number %q (unknown unit %q)", word, word[i:])
		}
		return Token{
			Kind: TokDuration, Text: word,
			Dur: time.Duration(v) * unit, Line: line, Col: col,
		}, nil
	}
	// Word operators.
	switch word {
	case "AND":
		return Token{Kind: TokAnd, Text: word, Line: line, Col: col}, nil
	case "OR":
		return Token{Kind: TokOr, Text: word, Line: line, Col: col}, nil
	case "NOT":
		return Token{Kind: TokNot, Text: word, Line: line, Col: col}, nil
	}
	return Token{Kind: TokIdent, Text: word, Line: line, Col: col}, nil
}

// lexAll tokenizes the whole source (used by the parser).
func lexAll(src string) ([]Token, error) {
	l := newLexer(src)
	var out []Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
