package fsl

import "time"

// Script is the parsed form of an FSL source file.
type Script struct {
	Vars      []VarDecl
	Filters   []FilterDef
	Nodes     []NodeDef
	Scenarios []ScenarioDef
}

// VarDecl declares run-time-bound filter variables.
type VarDecl struct {
	Names []string
	Line  int
}

// FilterDef is one packet definition from a FILTER_TABLE block.
type FilterDef struct {
	Name   string
	Tuples []TupleDef
	Line   int
}

// TupleDef is one (offset length [mask] pattern) component. Mask and
// Pattern keep their raw spelling; the compiler interprets them as hex
// regardless of a 0x prefix (the paper writes both "0x0010" and "0010").
type TupleDef struct {
	Off     int64
	Len     int64
	HasMask bool
	Mask    string
	Pattern string // empty when IsVar
	IsVar   bool
	VarName string
	Line    int
}

// NodeDef is one NODE_TABLE row.
type NodeDef struct {
	Name string
	MAC  string
	IP   string
	Line int
}

// ScenarioDef is a SCENARIO block.
type ScenarioDef struct {
	Name     string
	Timeout  time.Duration
	Counters []CounterDef
	Rules    []RuleDef
	Line     int
}

// CounterDef declares a counter inside a scenario: either an event
// counter (pkt_type, from, to, SEND|RECV) or a local variable (node).
type CounterDef struct {
	Name    string
	IsLocal bool
	Node    string // local form
	Filter  string // event form
	From    string
	To      string
	Dir     string // "SEND" or "RECV"
	Line    int
}

// RuleDef is one {condition >> actions} pair.
type RuleDef struct {
	Cond    *ExprNode
	Actions []ActionDef
	Line    int
}

// ExprKind classifies condition-expression AST nodes.
type ExprKind int

// Expression node kinds.
const (
	ExprTrue ExprKind = iota + 1
	ExprTerm
	ExprAnd
	ExprOr
	ExprNot
)

// ExprNode is a condition expression.
type ExprNode struct {
	Kind ExprKind
	L, R *ExprNode // And/Or: both; Not: L only

	// Term fields.
	LHS  OperandDef
	Op   string // "<", "<=", ">", ">=", "=", "!="
	RHS  OperandDef
	Line int
}

// OperandDef is a term operand: a counter name or integer constant.
type OperandDef struct {
	IsInt bool
	Int   int64
	Name  string
}

// ArgKind classifies action arguments.
type ArgKind int

// Action argument kinds.
const (
	ArgIdent ArgKind = iota + 1
	ArgInt
	ArgDuration
	ArgList // [i j k]
)

// ArgDef is one action argument.
type ArgDef struct {
	Kind ArgKind
	Name string
	Int  int64
	Text string // raw spelling of ints, for hex patterns
	Dur  time.Duration
	List []int64
	Line int
}

// ActionDef is one action invocation.
type ActionDef struct {
	Name string
	Args []ArgDef
	Line int
}
