package fsl

import (
	"os"
	"strings"
	"testing"
	"time"

	"virtualwire/internal/core"
)

func readScript(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile("../../scripts/" + name)
	if err != nil {
		t.Fatalf("read script: %v", err)
	}
	return string(b)
}

func TestLexerBasics(t *testing.T) {
	toks, err := lexAll("VAR SeqNo; FILTER_TABLE f: (34 2 0x6000) END")
	if err != nil {
		t.Fatalf("lex: %v", err)
	}
	kinds := []TokenKind{
		TokIdent, TokIdent, TokSemi, TokIdent, TokIdent, TokColon,
		TokLParen, TokInt, TokInt, TokInt, TokRParen, TokIdent, TokEOF,
	}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v (kind %d), want kind %d", i, toks[i], toks[i].Kind, k)
		}
	}
	if toks[7].Int != 34 || toks[9].Int != 0x6000 {
		t.Errorf("numeric values: %d %d", toks[7].Int, toks[9].Int)
	}
}

func TestLexerMACAndIP(t *testing.T) {
	toks, err := lexAll("node0 00:46:61:af:fe:23 192.168.1.1")
	if err != nil {
		t.Fatalf("lex: %v", err)
	}
	if toks[0].Kind != TokIdent || toks[1].Kind != TokMAC || toks[2].Kind != TokIP {
		t.Fatalf("kinds: %v %v %v", toks[0].Kind, toks[1].Kind, toks[2].Kind)
	}
	if toks[1].Text != "00:46:61:af:fe:23" {
		t.Errorf("MAC text %q", toks[1].Text)
	}
}

func TestLexerDurations(t *testing.T) {
	tests := []struct {
		src  string
		want time.Duration
	}{
		{"1sec", time.Second},
		{"500ms", 500 * time.Millisecond},
		{"2s", 2 * time.Second},
		{"50us", 50 * time.Microsecond},
	}
	for _, tt := range tests {
		toks, err := lexAll(tt.src)
		if err != nil {
			t.Errorf("lex %q: %v", tt.src, err)
			continue
		}
		if toks[0].Kind != TokDuration || toks[0].Dur != tt.want {
			t.Errorf("lex %q = %v (%v)", tt.src, toks[0].Dur, toks[0].Kind)
		}
	}
}

func TestLexerOperatorsAndComments(t *testing.T) {
	toks, err := lexAll("/* hi */ (A >= 2) && !(B != 3) || TRUE >> // tail\n;")
	if err != nil {
		t.Fatalf("lex: %v", err)
	}
	var kinds []TokenKind
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
	}
	want := []TokenKind{
		TokLParen, TokIdent, TokGE, TokInt, TokRParen, TokAnd, TokNot,
		TokLParen, TokIdent, TokNE, TokInt, TokRParen, TokOr, TokIdent,
		TokArrow, TokSemi, TokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("kinds %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d kind %d, want %d", i, kinds[i], want[i])
		}
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"/* open", "a & b", "a | b", "0xzz", "5parsecs", "@"} {
		if _, err := lexAll(src); err == nil {
			t.Errorf("lex %q: want error", src)
		}
	}
}

func TestHexBytes(t *testing.T) {
	tests := []struct {
		text    string
		width   int
		want    []byte
		wantErr bool
	}{
		{"0x6000", 2, []byte{0x60, 0x00}, false},
		{"0010", 2, []byte{0x00, 0x10}, false},
		{"0x10", 1, []byte{0x10}, false},
		{"0x1", 2, []byte{0x00, 0x01}, false},
		{"0x123", 2, []byte{0x01, 0x23}, false},
		{"0x999900", 2, nil, true}, // too wide
		{"0x", 2, nil, true},
	}
	for _, tt := range tests {
		got, err := hexBytes(tt.text, tt.width)
		if (err != nil) != tt.wantErr {
			t.Errorf("hexBytes(%q,%d) err=%v", tt.text, tt.width, err)
			continue
		}
		if err != nil {
			continue
		}
		if len(got) != len(tt.want) {
			t.Errorf("hexBytes(%q,%d) = %x", tt.text, tt.width, got)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("hexBytes(%q,%d) = %x, want %x", tt.text, tt.width, got, tt.want)
				break
			}
		}
	}
}

func TestParseFig5Script(t *testing.T) {
	s, err := Parse(readScript(t, "fig5_tcp_ss_ca.fsl"))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(s.Filters) != 4 {
		t.Errorf("filters = %d, want 4", len(s.Filters))
	}
	if len(s.Nodes) != 2 {
		t.Errorf("nodes = %d, want 2", len(s.Nodes))
	}
	if len(s.Scenarios) != 1 {
		t.Fatalf("scenarios = %d", len(s.Scenarios))
	}
	sc := s.Scenarios[0]
	if sc.Name != "TCP_SS_CA_algo" {
		t.Errorf("name %q", sc.Name)
	}
	if len(sc.Counters) != 8 {
		t.Errorf("counters = %d, want 8", len(sc.Counters))
	}
	if len(sc.Rules) != 8 {
		t.Errorf("rules = %d, want 8", len(sc.Rules))
	}
	// The init rule carries 7 actions.
	if got := len(sc.Rules[0].Actions); got != 7 {
		t.Errorf("init rule actions = %d, want 7", got)
	}
}

func TestParseFig6Script(t *testing.T) {
	s, err := Parse(readScript(t, "fig6_rether_failure.fsl"))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sc := s.Scenarios[0]
	if sc.Timeout != time.Second {
		t.Errorf("timeout = %v, want 1s", sc.Timeout)
	}
	if len(sc.Counters) != 5 {
		t.Errorf("counters = %d, want 5", len(sc.Counters))
	}
	if len(sc.Rules) != 7 {
		t.Errorf("rules = %d, want 7", len(sc.Rules))
	}
}

func TestCompileFig5Tables(t *testing.T) {
	p, err := Compile(readScript(t, "fig5_tcp_ss_ca.fsl"))
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if len(p.Filters) != 4 || len(p.Nodes) != 2 || len(p.Counters) != 8 {
		t.Fatalf("table sizes: f=%d n=%d c=%d", len(p.Filters), len(p.Nodes), len(p.Counters))
	}
	// Every counter of this scenario is homed on node1 (index 0).
	for _, c := range p.Counters {
		if c.Home != 0 {
			t.Errorf("counter %s homed at node %d, want node1", c.Name, c.Home)
		}
	}
	// SYNACK is an event counter observed at node1 on RECV.
	id, ok := p.CounterByName("SYNACK")
	if !ok {
		t.Fatal("SYNACK missing")
	}
	c := p.Counters[id]
	if c.Kind != core.CounterEvent || c.Dir != core.DirRecv || c.From != 1 || c.To != 0 {
		t.Errorf("SYNACK = %+v", c)
	}
	// CWND is local.
	id, ok = p.CounterByName("CWND")
	if !ok {
		t.Fatal("CWND missing")
	}
	if p.Counters[id].Kind != core.CounterLocal {
		t.Errorf("CWND kind = %v", p.Counters[id].Kind)
	}
	// The DROP action executes at node1 (RECV endpoint).
	var drops int
	for _, a := range p.Actions {
		if a.Kind == core.ActDrop {
			drops++
			if a.Node != 0 || a.Dir != core.DirRecv {
				t.Errorf("DROP = %+v", a)
			}
		}
	}
	if drops != 1 {
		t.Errorf("drops = %d", drops)
	}
	// Term deduplication: (ACK = 1) appears in two rules but once in
	// the table.
	ackTerms := 0
	ackID, _ := p.CounterByName("ACK")
	for _, tm := range p.Terms {
		if !tm.LHS.IsConst && tm.LHS.Counter == ackID && tm.Op == core.OpEQ {
			ackTerms++
		}
	}
	if ackTerms != 1 {
		t.Errorf("(ACK = 1) terms = %d, want 1 (dedup)", ackTerms)
	}
	// No cross-node propagation needed in this scenario.
	for _, c := range p.Counters {
		if len(c.RemoteNodes) != 0 {
			t.Errorf("counter %s pushes to %v; scenario is single-node", c.Name, c.RemoteNodes)
		}
	}
}

func TestCompileFig6Tables(t *testing.T) {
	p, err := Compile(readScript(t, "fig6_rether_failure.fsl"))
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if p.InactivityTimeout != time.Second {
		t.Errorf("timeout %v", p.InactivityTimeout)
	}
	// TokensFrom2 is observed at node2 on SEND.
	id, ok := p.CounterByName("TokensFrom2")
	if !ok {
		t.Fatal("TokensFrom2 missing")
	}
	if p.Counters[id].Home != 1 || p.Counters[id].Dir != core.DirSend {
		t.Errorf("TokensFrom2 = %+v", p.Counters[id])
	}
	// FAIL executes on node3 (index 2): distributed rule execution.
	var fails int
	for _, a := range p.Actions {
		if a.Kind == core.ActFail {
			fails++
			if a.Node != 2 {
				t.Errorf("FAIL at node %d, want node3", a.Node)
			}
		}
	}
	if fails != 1 {
		t.Errorf("fails = %d", fails)
	}
	// The rule (TokensFrom2 = 3) >> ENABLE_CNTR(TokensTo4) is evaluated
	// at node4, so the term homed at node2 must push status to node4.
	found := false
	for _, tm := range p.Terms {
		if tm.LHS.IsConst || p.Counters[tm.LHS.Counter].Name != "TokensFrom2" {
			continue
		}
		if tm.Op == core.OpEQ {
			for _, n := range tm.StatusNodes {
				if n == 3 {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("(TokensFrom2 = 3) does not push status to node4")
	}
	// tr_token_ack's bare "0010" pattern means 0x0010.
	fid, ok := p.FilterByName("tr_token_ack")
	if !ok {
		t.Fatal("tr_token_ack missing")
	}
	tu := p.Filters[fid].Tuples[1]
	if tu.Pattern[0] != 0x00 || tu.Pattern[1] != 0x10 {
		t.Errorf("tr_token_ack pattern = %x, want 0x0010", tu.Pattern)
	}
}

func TestCompileVariableFilters(t *testing.T) {
	src := `
VAR SeqNoData;
FILTER_TABLE
TCP_data_rt1: (34 2 0x6000), (38 4 SeqNoData), (47 1 0x10 0x10)
END
NODE_TABLE
node1 00:00:00:00:00:01 10.0.0.1
END
SCENARIO s
RT: (TCP_data_rt1, node1, node1, SEND)
(TRUE) >> ENABLE_CNTR( RT );
END`
	p, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if len(p.Vars) != 1 || p.Vars[0] != "SeqNoData" {
		t.Fatalf("vars = %v", p.Vars)
	}
	tu := p.Filters[0].Tuples[1]
	if tu.Var != 0 || tu.Pattern != nil {
		t.Errorf("variable tuple = %+v", tu)
	}
}

func TestCompileErrors(t *testing.T) {
	base := `
FILTER_TABLE
f: (12 2 0x0800)
END
NODE_TABLE
n1 00:00:00:00:00:01 10.0.0.1
END
`
	tests := []struct {
		name string
		src  string
		frag string // expected substring of the error
	}{
		{"unknown filter", base + "SCENARIO s\nC: (nosuch, n1, n1, SEND)\n(TRUE) >> STOP;\nEND", "unknown packet type"},
		{"unknown node", base + "SCENARIO s\nC: (f, n1, ghost, SEND)\n(TRUE) >> STOP;\nEND", "unknown node"},
		{"bad direction", base + "SCENARIO s\nC: (f, n1, n1, SIDEWAYS)\n(TRUE) >> STOP;\nEND", "SEND or RECV"},
		{"unknown counter", base + "SCENARIO s\n((X > 1)) >> STOP;\nEND", "unknown counter"},
		{"const-const term", base + "SCENARIO s\n((1 > 2)) >> STOP;\nEND", "two constants"},
		{"unknown action", base + "SCENARIO s\nC: (n1)\n(TRUE) >> EXPLODE( C );\nEND", "unknown action"},
		{"dup counter", base + "SCENARIO s\nC: (n1)\nC: (n1)\n(TRUE) >> STOP;\nEND", "declared twice"},
		{"undeclared var", "FILTER_TABLE\nf: (0 2 NoVar)\nEND\n" + "NODE_TABLE\nn1 00:00:00:00:00:01 10.0.0.1\nEND\nSCENARIO s\n(TRUE) >> STOP;\nEND", "undeclared variable"},
		{"no scenario", base, "no SCENARIO"},
		{"reorder bad perm", base + "SCENARIO s\n(TRUE) >> REORDER( f, n1, n1, SEND, 3, [1 1 2] );\nEND", "permutation"},
		{"stop with args", base + "SCENARIO s\n(TRUE) >> STOP( n1 );\nEND", "no arguments"},
		{"pattern too wide", "FILTER_TABLE\nf: (12 1 0x0800)\nEND\nNODE_TABLE\nn1 00:00:00:00:00:01 10.0.0.1\nEND\nSCENARIO s\n(TRUE) >> STOP;\nEND", "exceed"},
	}
	for _, tt := range tests {
		_, err := Compile(tt.src)
		if err == nil {
			t.Errorf("%s: compile succeeded, want error containing %q", tt.name, tt.frag)
			continue
		}
		if !strings.Contains(err.Error(), tt.frag) {
			t.Errorf("%s: error %q does not contain %q", tt.name, err, tt.frag)
		}
	}
}

func TestParseErrors(t *testing.T) {
	tests := []string{
		"FILTER_TABLE f: (34 2 0x6000)",                // missing END
		"NODE_TABLE n1 00:00:00:00:00:01",              // missing IP
		"SCENARIO s (X > 1) STOP; END",                 // missing >>
		"VAR a b;",                                     // missing comma
		"SCENARIO s\nC: (f, n1)\n(TRUE) >> STOP;\nEND", // short counter def
	}
	for _, src := range tests {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestActionSpellings(t *testing.T) {
	// The paper writes both DROP(a, b, c, RECV) and DROP a, b, c, RECV.
	mk := func(actionLine string) string {
		return `
FILTER_TABLE
f: (12 2 0x0800)
END
NODE_TABLE
n1 00:00:00:00:00:01 10.0.0.1
n2 00:00:00:00:00:02 10.0.0.2
END
SCENARIO s
(TRUE) >> ` + actionLine + `
END`
	}
	for _, line := range []string{
		"DROP f, n1, n2, RECV;",
		"DROP( f, n1, n2, RECV );",
		"FLAG_ERR;",
		"FLAG_ERROR;",
		"DELAY( f, n1, n2, SEND, 50ms );",
		"DELAY f, n1, n2, SEND, 50;",
		"REORDER( f, n1, n2, SEND, 3 );",
		"REORDER( f, n1, n2, SEND, 3, [3 1 2] );",
		"MODIFY( f, n1, n2, RECV );",
		"MODIFY( f, n1, n2, RECV, 20, 0xdead );",
	} {
		if _, err := Compile(mk(line)); err != nil {
			t.Errorf("action %q: %v", line, err)
		}
	}
}

func TestCompileAllMultiScenario(t *testing.T) {
	src := `
FILTER_TABLE
f: (12 2 0x0800)
END
NODE_TABLE
n1 00:00:00:00:00:01 10.0.0.1
END
SCENARIO a
C: (n1)
(TRUE) >> ASSIGN_CNTR( C, 5 );
END
SCENARIO b 2sec
D: (n1)
(TRUE) >> ASSIGN_CNTR( D, 7 );
END`
	progs, err := CompileAll(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if len(progs) != 2 {
		t.Fatalf("programs = %d", len(progs))
	}
	if progs[0].Name != "a" || progs[1].Name != "b" {
		t.Errorf("names: %s %s", progs[0].Name, progs[1].Name)
	}
	if progs[1].InactivityTimeout != 2*time.Second {
		t.Errorf("timeout %v", progs[1].InactivityTimeout)
	}
	if _, err := Compile(src); err == nil {
		t.Error("Compile accepted a two-scenario script")
	}
}

func TestDumpRendersAllTables(t *testing.T) {
	p, err := Compile(readScript(t, "fig6_rether_failure.fsl"))
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	d := p.Dump()
	for _, want := range []string{
		"FILTER TABLE", "NODE TABLE", "COUNTER TABLE",
		"TERM TABLE", "CONDITION TABLE", "ACTION TABLE",
		"tr_token", "FAIL @node3", "STOP", "inactivity timeout 1s",
	} {
		if !strings.Contains(d, want) {
			t.Errorf("dump missing %q", want)
		}
	}
}

func TestLexerMACLookaheadNegatives(t *testing.T) {
	// Things that look almost like MACs must lex as identifiers/colons.
	toks, err := lexAll("ab: (12 2 0x0800)")
	if err != nil {
		t.Fatalf("lex: %v", err)
	}
	if toks[0].Kind != TokIdent || toks[0].Text != "ab" || toks[1].Kind != TokColon {
		t.Errorf("counter-def-like prefix mislexed: %v %v", toks[0], toks[1])
	}
	// Double-equals is accepted as equality.
	toks, err = lexAll("A == 2")
	if err != nil {
		t.Fatalf("lex: %v", err)
	}
	if toks[1].Kind != TokEQ {
		t.Errorf("'==' lexed as %v", toks[1])
	}
	// A 7-group run lexes as a MAC followed by ':' and an identifier —
	// never as one oversized token.
	toks, err = lexAll("aa:bb:cc:dd:ee:ff:aa")
	if err != nil {
		t.Fatalf("lex: %v", err)
	}
	if toks[0].Kind != TokMAC || toks[0].Text != "aa:bb:cc:dd:ee:ff" ||
		toks[1].Kind != TokColon || toks[2].Kind != TokIdent {
		t.Errorf("7-group run: %v %v %v", toks[0], toks[1], toks[2])
	}
}

func TestParseWordOperators(t *testing.T) {
	src := `
FILTER_TABLE
f: (12 2 0x0800)
END
NODE_TABLE
n1 00:00:00:00:00:01 10.0.0.1
END
SCENARIO s
A: (n1)
B: (n1)
((A = 1) AND NOT (B = 1) OR TRUE) >> ASSIGN_CNTR( A, 1 );
END`
	if _, err := Compile(src); err != nil {
		t.Fatalf("AND/OR/NOT spelling rejected: %v", err)
	}
}
