// Package swp implements a stop-and-wait file-transfer protocol over
// UDP. It exists to demonstrate the paper's central claim — that
// VirtualWire tests protocol implementations *without knowing anything
// about them*: this protocol was never mentioned in the paper, yet the
// same engines, the same FSL, and the same counters/faults apply to it
// unchanged (see the package tests, which drop, duplicate and reorder
// its packets by script).
//
// Wire format (UDP payload):
//
//	offset 0: type  (1 byte: 1=data, 2=ack)
//	offset 1: seq   (4 bytes, chunk index)
//	offset 5: flags (1 byte: bit0 = last chunk)
//	offset 6: payload (data only)
//
// With the testbed's Ethernet+IPv4+UDP framing, the type byte sits at
// frame offset 42 and the sequence number at 43 — matchable by FSL
// tuples like any other protocol field.
package swp

import (
	"encoding/binary"
	"fmt"
	"time"

	"virtualwire/internal/packet"
	"virtualwire/internal/sim"
	"virtualwire/internal/stack"
)

// Header layout constants (relative to the UDP payload).
const (
	typeData byte = 1
	typeAck  byte = 2

	headerLen = 6
	flagLast  = 0x01
)

// Frame offsets for FSL scripts (Ethernet 14 + IPv4 20 + UDP 8 = 42).
const (
	// OffType is the raw frame offset of the type byte.
	OffType = 42
	// OffSeq is the raw frame offset of the 4-byte sequence number.
	OffSeq = 43
)

// Config tunes the transfer.
type Config struct {
	// ChunkBytes is the payload per data packet (default 512).
	ChunkBytes int
	// RTO is the per-chunk retransmission timeout (default 100 ms).
	RTO time.Duration
	// MaxRetries bounds retransmissions of one chunk before the
	// transfer fails (default 8).
	MaxRetries int
}

func (c *Config) fill() {
	if c.ChunkBytes <= 0 {
		c.ChunkBytes = 512
	}
	if c.RTO <= 0 {
		c.RTO = 100 * time.Millisecond
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 8
	}
}

// SenderStats counts protocol events.
type SenderStats struct {
	ChunksSent      int
	Retransmissions int
	AcksReceived    int
	DupAcks         int
}

// Sender transmits a byte blob chunk by chunk, strictly stop-and-wait.
type Sender struct {
	cfg   Config
	sched *sim.Scheduler
	sock  *stack.UDPSocket
	dstIP packet.IP
	dstPt uint16

	data    []byte
	seq     uint32
	retries int
	timer   *sim.Timer
	done    bool
	failed  bool

	// OnDone fires when the last chunk is acknowledged.
	OnDone func()
	// OnFail fires when a chunk exhausts its retries.
	OnFail func()

	// Stats accumulates counters.
	Stats SenderStats
}

// NewSender binds localPort on h and prepares to transfer data to
// dst:dstPort. Call Start to begin.
func NewSender(h *stack.Host, localPort uint16, dst packet.IP, dstPort uint16, data []byte, cfg Config) (*Sender, error) {
	cfg.fill()
	sock, err := h.UDP.Bind(localPort)
	if err != nil {
		return nil, err
	}
	s := &Sender{
		cfg:   cfg,
		sched: h.Sched,
		sock:  sock,
		dstIP: dst,
		dstPt: dstPort,
		data:  data,
	}
	s.timer = sim.NewTimer(h.Sched, "swp.rto")
	sock.OnDatagram = s.onDatagram
	return s, nil
}

// Start transmits the first chunk.
func (s *Sender) Start() { s.sendChunk(false) }

// Done reports whether the transfer completed.
func (s *Sender) Done() bool { return s.done }

// Failed reports whether the transfer gave up.
func (s *Sender) Failed() bool { return s.failed }

func (s *Sender) chunkRange(seq uint32) (int, int, bool) {
	start := int(seq) * s.cfg.ChunkBytes
	if start >= len(s.data) {
		return 0, 0, false
	}
	end := start + s.cfg.ChunkBytes
	last := false
	if end >= len(s.data) {
		end = len(s.data)
		last = true
	}
	return start, end, last
}

func (s *Sender) sendChunk(isRetransmission bool) {
	start, end, last := s.chunkRange(s.seq)
	if start == 0 && end == 0 && !last {
		// Empty transfer: done immediately.
		s.finish()
		return
	}
	payload := make([]byte, headerLen+end-start)
	payload[0] = typeData
	binary.BigEndian.PutUint32(payload[1:], s.seq)
	if last {
		payload[5] = flagLast
	}
	copy(payload[headerLen:], s.data[start:end])
	if isRetransmission {
		s.Stats.Retransmissions++
	} else {
		s.Stats.ChunksSent++
	}
	_ = s.sock.SendTo(s.dstIP, s.dstPt, payload)
	s.timer.Arm(s.cfg.RTO, s.onTimeout)
}

func (s *Sender) onTimeout() {
	if s.done || s.failed {
		return
	}
	s.retries++
	if s.retries > s.cfg.MaxRetries {
		s.failed = true
		s.timer.Disarm()
		if s.OnFail != nil {
			s.OnFail()
		}
		return
	}
	s.sendChunk(true)
}

func (s *Sender) onDatagram(_ packet.IP, _ uint16, payload []byte) {
	if s.done || s.failed || len(payload) < headerLen-1 {
		return
	}
	if payload[0] != typeAck {
		return
	}
	seq := binary.BigEndian.Uint32(payload[1:])
	if seq != s.seq {
		s.Stats.DupAcks++
		return
	}
	s.Stats.AcksReceived++
	s.timer.Disarm()
	s.retries = 0
	_, _, last := s.chunkRange(s.seq)
	if last {
		s.finish()
		return
	}
	s.seq++
	s.sendChunk(false)
}

func (s *Sender) finish() {
	s.done = true
	s.timer.Disarm()
	if s.OnDone != nil {
		s.OnDone()
	}
}

// ReceiverStats counts protocol events.
type ReceiverStats struct {
	ChunksAccepted int
	Duplicates     int
	AcksSent       int
}

// Receiver reassembles a stop-and-wait transfer on a UDP port.
type Receiver struct {
	sock     *stack.UDPSocket
	expected uint32
	buf      []byte
	complete bool

	// OnComplete fires once with the reassembled blob.
	OnComplete func(data []byte)

	// Stats accumulates counters.
	Stats ReceiverStats
}

// NewReceiver binds port on h and waits for a transfer.
func NewReceiver(h *stack.Host, port uint16) (*Receiver, error) {
	sock, err := h.UDP.Bind(port)
	if err != nil {
		return nil, err
	}
	r := &Receiver{sock: sock}
	sock.OnDatagram = r.onDatagram
	return r, nil
}

// Complete reports whether the transfer finished.
func (r *Receiver) Complete() bool { return r.complete }

// Data returns the bytes received so far.
func (r *Receiver) Data() []byte { return r.buf }

func (r *Receiver) onDatagram(src packet.IP, srcPort uint16, payload []byte) {
	if len(payload) < headerLen || payload[0] != typeData {
		return
	}
	seq := binary.BigEndian.Uint32(payload[1:])
	last := payload[5]&flagLast != 0
	switch {
	case seq == r.expected:
		r.Stats.ChunksAccepted++
		r.buf = append(r.buf, payload[headerLen:]...)
		r.ack(src, srcPort, seq)
		r.expected++
		if last && !r.complete {
			r.complete = true
			if r.OnComplete != nil {
				r.OnComplete(r.buf)
			}
		}
	case seq < r.expected:
		// Duplicate (our ack was lost or the wire duplicated): re-ack.
		r.Stats.Duplicates++
		r.ack(src, srcPort, seq)
	default:
		// Future chunk cannot happen in stop-and-wait unless the wire
		// reordered; drop and let the sender's timer sort it out.
	}
}

func (r *Receiver) ack(dst packet.IP, dstPort uint16, seq uint32) {
	out := make([]byte, headerLen)
	out[0] = typeAck
	binary.BigEndian.PutUint32(out[1:], seq)
	r.Stats.AcksSent++
	_ = r.sock.SendTo(dst, dstPort, out)
}

// FilterTuples returns FSL tuple source matching this protocol's data
// packets toward dstPort, for embedding in scripts:
// "(23 1 0x11), (36 2 0xPPPP), (42 1 0x01)".
func FilterTuples(dstPort uint16) string {
	return fmt.Sprintf("(23 1 0x11), (36 2 0x%04x), (%d 1 0x01)", dstPort, OffType)
}
