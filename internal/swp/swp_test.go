package swp_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"virtualwire/internal/core"
	"virtualwire/internal/ether"
	"virtualwire/internal/fsl"
	"virtualwire/internal/packet"
	"virtualwire/internal/sim"
	"virtualwire/internal/stack"
	"virtualwire/internal/swp"
)

// rig: two hosts over a clean switch, each with a VirtualWire engine.
type rig struct {
	sched   *sim.Scheduler
	h1, h2  *stack.Host
	engines []*core.Engine
	ctl     *core.Controller
}

func newRig(t testing.TB, seed int64, script string) *rig {
	t.Helper()
	s := sim.NewScheduler(seed)
	sw := ether.NewSwitch(s, ether.SwitchConfig{})
	h1 := stack.NewHost(s, "node1", packet.MAC{0, 0, 0, 0, 0, 1}, packet.IP{10, 0, 0, 1})
	h2 := stack.NewHost(s, "node2", packet.MAC{0, 0, 0, 0, 0, 2}, packet.IP{10, 0, 0, 2})
	for _, h := range []*stack.Host{h1, h2} {
		h.Neighbors[h1.IP] = h1.MAC
		h.Neighbors[h2.IP] = h2.MAC
	}
	sw.AttachHost(h1.NIC)
	sw.AttachHost(h2.NIC)
	e1 := core.NewEngine(s, h1.MAC)
	e2 := core.NewEngine(s, h2.MAC)
	h1.Build(e1)
	h2.Build(e2)
	r := &rig{sched: s, h1: h1, h2: h2, engines: []*core.Engine{e1, e2}}
	if script != "" {
		prog, err := fsl.Compile(script)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		ctl, err := core.NewController(s, prog, e1, 0)
		if err != nil {
			t.Fatalf("controller: %v", err)
		}
		r.ctl = ctl
		if err := ctl.Launch(); err != nil {
			t.Fatalf("launch: %v", err)
		}
		for !ctl.Result().Started && s.Step() {
		}
		if err := s.RunUntil(s.Now() + 5*time.Millisecond); err != nil {
			t.Fatalf("settle: %v", err)
		}
	}
	return r
}

func blob(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i * 13)
	}
	return b
}

func TestCleanTransfer(t *testing.T) {
	r := newRig(t, 1, "")
	data := blob(10 * 1024)
	rx, err := swp.NewReceiver(r.h2, 9100)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := swp.NewSender(r.h1, 9101, r.h2.IP, 9100, data, swp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tx.Start()
	if err := r.sched.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !tx.Done() || !rx.Complete() {
		t.Fatalf("transfer incomplete: tx=%v rx=%v", tx.Done(), rx.Complete())
	}
	if !bytes.Equal(rx.Data(), data) {
		t.Fatal("data corrupted")
	}
	if tx.Stats.Retransmissions != 0 {
		t.Errorf("retransmissions on a clean wire: %d", tx.Stats.Retransmissions)
	}
	if tx.Stats.ChunksSent != 20 {
		t.Errorf("chunks = %d, want 20", tx.Stats.ChunksSent)
	}
}

func TestEmptyAndOddSizedTransfers(t *testing.T) {
	for _, n := range []int{1, 511, 512, 513, 5000} {
		r := newRig(t, int64(n), "")
		data := blob(n)
		rx, _ := swp.NewReceiver(r.h2, 9100)
		tx, _ := swp.NewSender(r.h1, 9101, r.h2.IP, 9100, data, swp.Config{})
		tx.Start()
		if err := r.sched.RunUntil(10 * time.Second); err != nil {
			t.Fatal(err)
		}
		if !rx.Complete() || !bytes.Equal(rx.Data(), data) {
			t.Errorf("n=%d: transfer broken", n)
		}
	}
}

// swpScript builds a scenario over the stop-and-wait protocol's own wire
// format — a protocol the FSL has never heard of.
func swpScript(rule string) string {
	return fmt.Sprintf(`
FILTER_TABLE
swp_data: %s
END
NODE_TABLE
node1 00:00:00:00:00:01 10.0.0.1
node2 00:00:00:00:00:02 10.0.0.2
END
SCENARIO swp_fault 3sec
DATA: (swp_data, node1, node2, RECV)
(TRUE) >> ENABLE_CNTR( DATA );
%s
END`, swp.FilterTuples(9100), rule)
}

// TestScriptedDropRecovered drops one data chunk by script; the protocol
// must retransmit exactly once and the scenario STOPs when the stream
// resumes.
func TestScriptedDropRecovered(t *testing.T) {
	script := swpScript(`
((DATA = 4)) >> DROP( swp_data, node1, node2, RECV );
((DATA = 12)) >> STOP;
`)
	r := newRig(t, 2, script)
	data := blob(8 * 1024) // 16 chunks
	rx, _ := swp.NewReceiver(r.h2, 9100)
	tx, _ := swp.NewSender(r.h1, 9101, r.h2.IP, 9100, data, swp.Config{})
	tx.Start()
	if err := r.sched.RunUntil(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	res := r.ctl.Result()
	if !res.Stopped || len(res.Errors) > 0 {
		t.Fatalf("scenario: %+v", res)
	}
	if tx.Stats.Retransmissions != 1 {
		t.Errorf("retransmissions = %d, want 1", tx.Stats.Retransmissions)
	}
	if !rx.Complete() || !bytes.Equal(rx.Data(), data) {
		t.Error("transfer broken after injected drop")
	}
	if rx.Stats.Duplicates != 0 {
		t.Errorf("unexpected duplicates: %d", rx.Stats.Duplicates)
	}
}

// TestScriptedDupSuppressed duplicates a chunk; the receiver must accept
// it once and re-ack the copy.
func TestScriptedDupSuppressed(t *testing.T) {
	script := swpScript(`
((DATA = 3)) >> DUP( swp_data, node1, node2, RECV );
((DATA = 10)) >> STOP;
`)
	r := newRig(t, 3, script)
	data := blob(8 * 1024)
	rx, _ := swp.NewReceiver(r.h2, 9100)
	tx, _ := swp.NewSender(r.h1, 9101, r.h2.IP, 9100, data, swp.Config{})
	tx.Start()
	if err := r.sched.RunUntil(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !r.ctl.Result().Stopped {
		t.Fatalf("scenario: %+v", r.ctl.Result())
	}
	if rx.Stats.Duplicates != 1 {
		t.Errorf("receiver duplicates = %d, want 1", rx.Stats.Duplicates)
	}
	if !bytes.Equal(rx.Data()[:len(data)], data) && !rx.Complete() {
		t.Error("stream corrupted by duplicate")
	}
	if tx.Stats.DupAcks == 0 {
		t.Error("sender never saw the duplicate ack")
	}
}

// TestScriptedBlackholeFailsSender drops every data chunk from #5 on;
// the sender must give up after MaxRetries and the scenario ends by
// inactivity (the analysis outcome for an unrecoverable fault).
func TestScriptedBlackholeFailsSender(t *testing.T) {
	script := swpScript(`
((DATA >= 5)) >> DROP( swp_data, node1, node2, RECV );
          DROP( swp_data, node1, node2, RECV );
          DROP( swp_data, node1, node2, RECV );
          DROP( swp_data, node1, node2, RECV );
          DROP( swp_data, node1, node2, RECV );
          DROP( swp_data, node1, node2, RECV );
          DROP( swp_data, node1, node2, RECV );
          DROP( swp_data, node1, node2, RECV );
          DROP( swp_data, node1, node2, RECV );
`)
	r := newRig(t, 4, script)
	data := blob(8 * 1024)
	rx, _ := swp.NewReceiver(r.h2, 9100)
	tx, _ := swp.NewSender(r.h1, 9101, r.h2.IP, 9100, data, swp.Config{RTO: 50 * time.Millisecond, MaxRetries: 5})
	failed := false
	tx.OnFail = func() { failed = true }
	tx.Start()
	if err := r.sched.RunUntil(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !failed || !tx.Failed() {
		t.Error("sender did not give up against the blackhole")
	}
	if rx.Complete() {
		t.Error("receiver completed through a blackhole")
	}
	res := r.ctl.Result()
	if !res.Inactivity {
		t.Errorf("scenario should end by inactivity: %+v", res)
	}
}

// TestScriptedDelayToleratedWithoutDuplicates delays one chunk by less
// than the RTO: the transfer proceeds with no retransmission at all.
func TestScriptedDelayTolerated(t *testing.T) {
	script := swpScript(`
((DATA = 2)) >> DELAY( swp_data, node1, node2, RECV, 30ms );
((DATA = 10)) >> STOP;
`)
	r := newRig(t, 5, script)
	data := blob(8 * 1024)
	rx, _ := swp.NewReceiver(r.h2, 9100)
	tx, _ := swp.NewSender(r.h1, 9101, r.h2.IP, 9100, data, swp.Config{RTO: 100 * time.Millisecond})
	tx.Start()
	if err := r.sched.RunUntil(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !r.ctl.Result().Stopped {
		t.Fatalf("scenario: %+v", r.ctl.Result())
	}
	if tx.Stats.Retransmissions != 0 {
		t.Errorf("retransmissions = %d; 30ms delay must stay under the 100ms RTO", tx.Stats.Retransmissions)
	}
	if !rx.Complete() {
		t.Error("transfer incomplete")
	}
}
