// Package profiling wires the conventional -cpuprofile, -memprofile and
// -trace flags into a command-line tool, so the benchmark and campaign
// drivers can be profiled under production-shaped load (full matrices,
// sharded testbeds) rather than only through go test microbenchmarks.
package profiling

import (
	"flag"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Flags holds the output paths bound by Register; empty paths disable
// the corresponding collector.
type Flags struct {
	CPU   string
	Mem   string
	Trace string
}

// Register binds the three flags on the default flag set. Call before
// flag.Parse.
func (f *Flags) Register() {
	flag.StringVar(&f.CPU, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&f.Mem, "memprofile", "", "write a heap profile to this file on exit")
	flag.StringVar(&f.Trace, "trace", "", "write a runtime execution trace to this file")
}

// Start begins whichever collectors the flags request and returns a
// stop function that flushes them (taking the heap profile last, after
// a forced GC). The stop function must run before the process exits or
// the profiles are truncated.
func (f *Flags) Start() (func() error, error) {
	var cpuF, traceF *os.File
	abort := func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if traceF != nil {
			traceF.Close()
		}
	}
	if f.CPU != "" {
		var err error
		if cpuF, err = os.Create(f.CPU); err != nil {
			return nil, err
		}
		if err = pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, err
		}
	}
	if f.Trace != "" {
		var err error
		if traceF, err = os.Create(f.Trace); err != nil {
			abort()
			return nil, err
		}
		if err = trace.Start(traceF); err != nil {
			abort()
			return nil, err
		}
	}
	stop := func() error {
		var first error
		keep := func(err error) {
			if err != nil && first == nil {
				first = err
			}
		}
		if cpuF != nil {
			pprof.StopCPUProfile()
			keep(cpuF.Close())
		}
		if traceF != nil {
			trace.Stop()
			keep(traceF.Close())
		}
		if f.Mem != "" {
			mf, err := os.Create(f.Mem)
			if err != nil {
				keep(err)
			} else {
				runtime.GC()
				keep(pprof.WriteHeapProfile(mf))
				keep(mf.Close())
			}
		}
		return first
	}
	return stop, nil
}
