package virtualwire

import (
	"bytes"
	"testing"
	"time"
)

// resetTestHorizon keeps the property runs short but long enough for the
// quickstart scenario's drop + retransmission to play out fully.
const resetTestHorizon = 30 * time.Second

// buildQuickstart assembles a testbed from the shared compiled script
// with the standard quickstart TCP bulk workload staged.
func buildQuickstart(t *testing.T, cs *CompiledScript, cfg Config) *Testbed {
	t.Helper()
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AddNodesFromCompiled(cs); err != nil {
		t.Fatal(err)
	}
	if err := tb.LoadCompiled(cs); err != nil {
		t.Fatal(err)
	}
	return tb
}

func addQuickstartBulk(t *testing.T, tb *Testbed) {
	t.Helper()
	if _, err := tb.AddTCPBulk(TCPBulkConfig{
		From: "node1", To: "node2",
		SrcPort: 0x6000, DstPort: 0x4000, Bytes: 16 * 1024,
	}); err != nil {
		t.Fatal(err)
	}
}

func reportBytes(t *testing.T, rep RunReport) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestResetMatchesFreshAcrossSeeds is the reset-to-reuse determinism
// property: one long-lived testbed, rewound with Reset(seed) between
// runs, must produce RunReports byte-identical to freshly built testbeds
// for the same seeds — across 100+ seeds and under multiple stack
// configurations (plain switch; RLL over a lossy wire). This is the
// invariant that lets the campaign executor reuse worker testbeds
// without the worker count ever changing a record.
func TestResetMatchesFreshAcrossSeeds(t *testing.T) {
	script := readScript(t, "quickstart_drop.fsl")
	cs, err := CompileScript(script)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Scenario() != "quickstart_drop_fifth" {
		t.Fatalf("compiled scenario %q", cs.Scenario())
	}

	configs := []struct {
		name    string
		cfg     Config
		rether  bool
		seeds   int
		horizon time.Duration
	}{
		// seed 0 warms the reused testbed; the rest are reset-vs-fresh
		// checks (100 on the primary config, per the campaign invariant).
		{"switch", Config{}, false, 101, resetTestHorizon},
		{"rll-lossy", Config{RLL: true, BitErrorRate: 1e-6}, false, 101, resetTestHorizon},
		// The token ring idles the full horizon (no STOP drains it), so
		// this config runs ~1M events per run: keep it short but still
		// covering rether's reset path.
		{"rether-bus", Config{Medium: MediumBus}, true, 4, 2 * time.Second},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			seedCount := tc.seeds
			if testing.Short() && seedCount > 6 {
				seedCount = 6
			}
			seeds := make([]int64, seedCount)
			for i := range seeds {
				seeds[i] = int64(i * 7919)
			}
			installRether := func(tb *Testbed) {
				if !tc.rether {
					return
				}
				if err := tb.InstallRether([]string{"node1", "node2"}, RetherConfig{}); err != nil {
					t.Fatal(err)
				}
			}
			cfg := tc.cfg
			cfg.Seed = seeds[0]
			reused := buildQuickstart(t, cs, cfg)
			installRether(reused)
			for i, seed := range seeds {
				if i > 0 {
					if err := reused.Reset(seed); err != nil {
						t.Fatalf("Reset(%d): %v", seed, err)
					}
				}
				addQuickstartBulk(t, reused)
				repReused, err := reused.Run(tc.horizon)
				if err != nil {
					t.Fatalf("seed %d reused run: %v", seed, err)
				}

				fcfg := tc.cfg
				fcfg.Seed = seed
				fresh := buildQuickstart(t, cs, fcfg)
				installRether(fresh)
				addQuickstartBulk(t, fresh)
				repFresh, err := fresh.Run(tc.horizon)
				if err != nil {
					t.Fatalf("seed %d fresh run: %v", seed, err)
				}

				got, want := reportBytes(t, repReused), reportBytes(t, repFresh)
				if !bytes.Equal(got, want) {
					t.Fatalf("seed %d (iteration %d): reused testbed report diverges from fresh\nreused:\n%s\nfresh:\n%s",
						seed, i, got, want)
				}
				if i > 0 && !repReused.Passed {
					t.Fatalf("seed %d: reused run did not pass: %+v", seed, repReused.Result)
				}
			}
		})
	}
}

// TestResetBeforeBuildRejected pins the contract that Reset needs a
// built testbed.
func TestResetBeforeBuildRejected(t *testing.T) {
	script := readScript(t, "quickstart_drop.fsl")
	cs, err := CompileScript(script)
	if err != nil {
		t.Fatal(err)
	}
	tb := buildQuickstart(t, cs, Config{})
	if err := tb.Reset(1); err == nil {
		t.Fatal("Reset before build accepted")
	}
	addQuickstartBulk(t, tb)
	if _, err := tb.Run(resetTestHorizon); err != nil {
		t.Fatal(err)
	}
	if err := tb.Reset(1); err != nil {
		t.Fatalf("Reset after build: %v", err)
	}
}
