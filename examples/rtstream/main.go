// Real-time service under congestion: the reason Rether exists. A
// constant-bit-rate stream shares its sending node with a heavy
// best-effort transfer. Without a real-time classification the stream's
// datagrams queue FIFO behind the bulk traffic and arrive in bursts;
// marked real-time, they are served from Rether's reserved slots ahead
// of best effort every token visit, and the worst-case inter-arrival
// gap drops accordingly.
//
//	go run ./examples/rtstream
package main

import (
	"fmt"
	"log"
	"time"

	"virtualwire"
)

const (
	streamPort = 9000
	streamGap  = 2 * time.Millisecond
	streamPkts = 400
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("=== Rether real-time reservations vs best-effort congestion ===")
	fmt.Println()
	gapBE, err := runOnce(false)
	if err != nil {
		return err
	}
	gapRT, err := runOnce(true)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Printf("worst-case inter-arrival, best-effort stream:  %v\n", gapBE)
	fmt.Printf("worst-case inter-arrival, real-time stream:    %v\n", gapRT)
	if gapRT < gapBE {
		fmt.Println("verdict: the reservation bounds the stream's service gap")
	} else {
		fmt.Println("verdict: no improvement (unexpected)")
	}
	return nil
}

func runOnce(reserve bool) (time.Duration, error) {
	tb, err := virtualwire.New(virtualwire.Config{Seed: 9, Medium: virtualwire.MediumBus})
	if err != nil {
		return 0, err
	}
	hosts := [][3]string{
		{"node1", "00:00:00:00:00:01", "10.0.0.1"},
		{"node2", "00:00:00:00:00:02", "10.0.0.2"},
		{"node3", "00:00:00:00:00:03", "10.0.0.3"},
		{"node4", "00:00:00:00:00:04", "10.0.0.4"},
	}
	for _, h := range hosts {
		if _, err := tb.AddHost(h[0], h[1], h[2]); err != nil {
			return 0, err
		}
	}
	ring := []string{"node1", "node2", "node3", "node4"}
	if err := tb.InstallRether(ring, virtualwire.RetherConfig{}); err != nil {
		return 0, err
	}
	if reserve {
		// Datagrams to the stream port are served from the RT queue.
		tb.AddRTStream(streamPort+1, streamPort)
	}

	// The measured stream: node1 -> node4, one datagram every 2 ms.
	stream, err := tb.AddUDPStream(virtualwire.UDPStreamConfig{
		From: "node1", To: "node4",
		Port: streamPort, Size: 512,
		Interval: streamGap, Count: streamPkts,
	})
	if err != nil {
		return 0, err
	}
	// The congestor: a best-effort flood from the SAME node, which fills
	// node1's best-effort queue ahead of the stream.
	if _, err := tb.AddUDPStream(virtualwire.UDPStreamConfig{
		From: "node1", To: "node2",
		Port: 8000, Size: 1400,
		Interval: 100 * time.Microsecond, // ~112 Mbps offered best effort: saturates the BE queue
	}); err != nil {
		return 0, err
	}

	if _, err := tb.Run(time.Duration(streamPkts)*streamGap + 5*time.Second); err != nil {
		return 0, err
	}
	label := "best-effort"
	if reserve {
		label = "real-time  "
	}
	fmt.Printf("  %s run: %d/%d delivered, max inter-arrival %v\n",
		label, stream.Received(), stream.Sent(), stream.MaxInterArrival())
	if stream.Received() == 0 {
		return 0, fmt.Errorf("stream starved entirely")
	}
	return stream.MaxInterArrival(), nil
}
