// The paper's Section 6.2 case study, end to end: four Rether nodes pass
// a token on a shared bus while a real-time TCP stream flows from node1
// to node4. Once 1000 data packets have crossed, the Figure 6 script
// crashes node3 at the exact moment node2 receives the token. Rether must
// detect the dead successor after exactly 3 token transmissions,
// reconstruct the ring, and resume circulation among the survivors within
// the script's 1-second inactivity timeout — all verified by the script
// itself, which STOPs the scenario on the survivors' first full cycle.
//
//	go run ./examples/retherfailure
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"virtualwire"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	script, err := os.ReadFile("scripts/fig6_rether_failure.fsl")
	if err != nil {
		return fmt.Errorf("run from the repository root: %w", err)
	}

	tb, err := virtualwire.New(virtualwire.Config{Seed: 3, Medium: virtualwire.MediumBus})
	if err != nil {
		return err
	}
	if err := tb.AddNodesFromScript(string(script)); err != nil {
		return err
	}
	ring := []string{"node1", "node2", "node3", "node4"}
	if err := tb.InstallRether(ring, virtualwire.RetherConfig{}); err != nil {
		return err
	}
	// node1 <-> node4 carry the real-time stream (served from Rether's
	// reserved slots).
	tb.AddRTStream(0x6000, 0x4000)
	if err := tb.LoadScript(string(script)); err != nil {
		return err
	}
	bulk, err := tb.AddTCPBulk(virtualwire.TCPBulkConfig{
		From: "node1", To: "node4",
		SrcPort: 0x6000, DstPort: 0x4000,
		Bytes: 4 << 20,
	})
	if err != nil {
		return err
	}

	fmt.Println("=== Figure 6: Rether single-node-failure recovery ===")
	rep, err := tb.Run(2 * time.Minute)
	if err != nil {
		return err
	}

	node2, _ := tb.Node("node2")
	node3, _ := tb.Node("node3")
	node4, _ := tb.Node("node4")
	cntData, _ := node4.CounterValue("CNT_DATA")
	tokensFrom2, _ := node2.CounterValue("TokensFrom2")

	fmt.Printf("  data packets before trigger: %d (threshold 1000)\n", cntData)
	fmt.Printf("  node3 crashed by the script:  %v\n", node3.Failed())
	fmt.Printf("  token sends toward node3:     %d (the paper's 3-transmission detection)\n", tokensFrom2)
	for _, name := range ring {
		n, _ := tb.Node(name)
		fmt.Printf("  %s ring membership size:   %d\n", name, n.RetherRingSize())
	}
	fmt.Printf("  scenario: %s\n", rep.Result)

	// The paper's stronger claim: real-time transport is unaffected.
	before := bulk.DeliveredBytes()
	if err := tb.RunFor(5 * time.Second); err != nil {
		return err
	}
	fmt.Printf("  real-time stream: %d bytes at STOP, %d bytes 5s later (still flowing)\n",
		before, bulk.DeliveredBytes())

	if rep.Passed {
		fmt.Println("  verdict: PASSED — ring reconstructed within the 1s timeout, no errors flagged")
	} else {
		fmt.Println("  verdict: FAILED")
	}
	return nil
}
