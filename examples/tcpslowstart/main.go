// The paper's Section 6.1 case study, end to end: the Figure 5 script
// drops one SYNACK during connection establishment (forcing ssthresh to
// 2), then mirrors the sender's congestion window from the observed
// packet sequence and verifies that the implementation switches from
// slow start to congestion avoidance at the crossover.
//
// The example runs the scenario twice: against the conforming TCP (which
// must pass, as Linux 2.4.17 did in the paper) and against a variant with
// congestion control disabled (which the analysis script must catch).
//
//	go run ./examples/tcpslowstart
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"virtualwire"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	script, err := os.ReadFile("scripts/fig5_tcp_ss_ca.fsl")
	if err != nil {
		return fmt.Errorf("run from the repository root: %w", err)
	}

	fmt.Println("=== Figure 5: TCP slow-start / congestion-avoidance test ===")
	fmt.Println()
	fmt.Println("run 1: conforming TCP (the paper's result for Linux 2.4.17)")
	if err := runOnce(string(script), false); err != nil {
		return err
	}
	fmt.Println()
	fmt.Println("run 2: broken TCP (congestion window ignored)")
	return runOnce(string(script), true)
}

func runOnce(script string, broken bool) error {
	tb, err := virtualwire.New(virtualwire.Config{Seed: 7})
	if err != nil {
		return err
	}
	if err := tb.AddNodesFromScript(script); err != nil {
		return err
	}
	if err := tb.LoadScript(script); err != nil {
		return err
	}
	bulk, err := tb.AddTCPBulk(virtualwire.TCPBulkConfig{
		From: "node1", To: "node2",
		SrcPort: 0x6000, DstPort: 0x4000, // the paper's 24576 -> 16384
		Bytes:                    80 * 1024,
		DisableCongestionControl: broken,
	})
	if err != nil {
		return err
	}
	rep, err := tb.Run(60 * time.Second)
	if err != nil {
		return err
	}

	node1, _ := tb.Node("node1")
	synack, _ := node1.CounterValue("SYNACK")
	cwnd, _ := node1.CounterValue("CWND")
	ssthresh, _ := node1.CounterValue("SSTHRESH")
	canTx, _ := node1.CounterValue("CanTx")

	fmt.Printf("  injected fault:   first SYNACK dropped at node1 (SYNACK counter = %d)\n", synack)
	fmt.Printf("  sender after run: ssthresh=%d cwnd=%d (script mirror: SSTHRESH=%d CWND=%d CanTx=%d)\n",
		bulk.Ssthresh(), bulk.CWND(), ssthresh, cwnd, canTx)
	fmt.Printf("  SYN retransmissions: %d; delivered %d bytes\n",
		bulk.SenderStats().SynRetries, bulk.DeliveredBytes())
	for _, e := range rep.Result.Errors {
		fmt.Printf("  FLAG_ERR: %s\n", e)
	}
	if rep.Passed {
		fmt.Println("  verdict: PASSED — implementation switched to congestion avoidance correctly")
	} else {
		fmt.Printf("  verdict: FAILED — %d specification violation(s) flagged by the analysis script\n",
			len(rep.Result.Errors))
	}
	return nil
}
