// Regression suite: the paper's envisioned fully automated workflow
// (Section 8). Scenarios are *generated* — one per (fault kind, packet
// index) — and each is run against the TCP implementation on a fresh
// testbed. A case passes when the stream keeps flowing after the fault;
// it fails when the connection wedges (inactivity timeout) or an analysis
// rule flags an error. "This trace filtering capability makes it possible
// to run through a large number of test cases without human
// intervention" (Section 1).
//
//	go run ./examples/regression
package main

import (
	"fmt"
	"log"
	"time"

	"virtualwire"
)

const prologue = `
FILTER_TABLE
TCP_data: (34 2 0x6000), (36 2 0x4000), (47 1 0x10 0x10)
END
NODE_TABLE
node1 00:00:00:00:00:01 10.0.0.1
node2 00:00:00:00:00:02 10.0.0.2
END
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	scenarios, err := virtualwire.GenerateScenarios(virtualwire.GenConfig{
		Prologue:      prologue,
		PacketType:    "TCP_data",
		From:          "node1",
		To:            "node2",
		Dir:           "RECV",
		Occurrences:   []int{1, 2, 10},
		ContinueCount: 20,
	})
	if err != nil {
		return err
	}
	fmt.Printf("generated %d scenarios; running the regression suite against TCP\n\n", len(scenarios))

	pass, fail := 0, 0
	for i, sc := range scenarios {
		verdict, detail, err := runCase(int64(i), sc.Script)
		if err != nil {
			return fmt.Errorf("%s: %w", sc.Name, err)
		}
		fmt.Printf("  %-28s %-6s %s\n", sc.Name, verdict, detail)
		if verdict == "PASS" {
			pass++
		} else {
			fail++
		}
	}
	fmt.Printf("\nsuite result: %d passed, %d failed\n", pass, fail)
	if fail > 0 {
		return fmt.Errorf("%d regression case(s) failed", fail)
	}
	return nil
}

func runCase(seed int64, script string) (verdict, detail string, err error) {
	tb, err := virtualwire.New(virtualwire.Config{Seed: seed})
	if err != nil {
		return "", "", err
	}
	if err := tb.AddNodesFromScript(script); err != nil {
		return "", "", err
	}
	if err := tb.LoadScript(script); err != nil {
		return "", "", err
	}
	bulk, err := tb.AddTCPBulk(virtualwire.TCPBulkConfig{
		From: "node1", To: "node2",
		SrcPort: 0x6000, DstPort: 0x4000,
		Bytes: 256 * 1024,
	})
	if err != nil {
		return "", "", err
	}
	rep, err := tb.Run(2 * time.Minute)
	if err != nil {
		return "", "", err
	}
	detail = fmt.Sprintf("(%d bytes, %d rtx, %v)",
		bulk.DeliveredBytes(), bulk.SenderStats().Retransmissions, rep.Result)
	if rep.Passed && rep.Result.Stopped {
		return "PASS", detail, nil
	}
	return "FAIL", detail, nil
}
