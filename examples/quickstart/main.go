// Quickstart: inject one fault into a live TCP transfer with a
// ten-line script and watch the implementation recover — no
// instrumentation of the TCP code, which is the paper's whole point.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"virtualwire"
)

// script names two hosts, defines one packet type (TCP data from node1
// to node2), and drops the fifth such packet at the receiver.
const script = `
FILTER_TABLE
TCP_data: (34 2 0x6000), (36 2 0x4000), (47 1 0x10 0x10)
END

NODE_TABLE
node1 00:00:00:00:00:01 10.0.0.1
node2 00:00:00:00:00:02 10.0.0.2
END

SCENARIO quickstart_drop_fifth
DATA: (TCP_data, node1, node2, RECV)
(TRUE) >> ENABLE_CNTR( DATA );
((DATA = 5)) >> DROP TCP_data, node1, node2, RECV;
END
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tb, err := virtualwire.New(virtualwire.Config{Seed: 1, TraceCapacity: 50000})
	if err != nil {
		return err
	}
	if err := tb.AddNodesFromScript(script); err != nil {
		return err
	}
	if err := tb.LoadScript(script); err != nil {
		return err
	}
	bulk, err := tb.AddTCPBulk(virtualwire.TCPBulkConfig{
		From: "node1", To: "node2",
		SrcPort: 0x6000, DstPort: 0x4000,
		Bytes: 64 * 1024,
	})
	if err != nil {
		return err
	}

	rep, err := tb.Run(30 * time.Second)
	if err != nil {
		return err
	}

	fmt.Println("quickstart: drop the 5th data packet of a TCP transfer")
	fmt.Printf("  scenario:        %s\n", rep.Result)
	fmt.Printf("  delivered:       %d bytes (all of them, despite the drop)\n",
		bulk.DeliveredBytes())
	fmt.Printf("  retransmissions: %d (TCP recovered the injected loss)\n",
		bulk.SenderStats().Retransmissions)

	node2, _ := tb.Node("node2")
	fmt.Printf("  engine at node2: %d packets matched, %d dropped by the fault\n",
		node2.EngineStats().PacketsMatched, node2.EngineStats().Drops)

	fmt.Println("\nfirst data packets on the wire (tcpdump-style trace):")
	n := 0
	for _, e := range tb.TraceFilter("node2", "recv", "tcp") {
		fmt.Println("   ", e)
		n++
		if n == 8 {
			break
		}
	}
	return nil
}
