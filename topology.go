package virtualwire

// Multi-switch topology generators: star, ring, fat-tree and random
// fabrics of learning switches joined by full-duplex trunk links, scaling
// a single testbed to hundreds-to-~1000 hosts. Redundant trunks (ring
// backlinks, fat-tree multipath) are disabled by a deterministic static
// spanning tree — BFS from switch 0 in wiring order — blocked on both
// ends, so MAC learning and flooding stay loop-free. See
// docs/TOPOLOGIES.md.

import (
	"fmt"
	"math/rand"
	"time"

	"virtualwire/internal/ether"
	"virtualwire/internal/packet"
)

// TopologyKind selects a fabric generator.
type TopologyKind int

// Topology kinds.
const (
	// TopoSingle is the default single switch (Config.Topology == nil
	// behaves identically).
	TopoSingle TopologyKind = iota
	// TopoStar wires N edge switches to one core switch.
	TopoStar
	// TopoRing joins N switches in a cycle; the spanning tree blocks one
	// trunk.
	TopoRing
	// TopoFatTree builds the k-ary fat-tree (k/2)^2 cores / k pods of
	// k/2+k/2 agg+edge switches; k=16 reaches 1024 hosts.
	TopoFatTree
	// TopoRandom grows a random spanning tree over N switches plus
	// ExtraTrunks redundant links, seeded by WiringSeed.
	TopoRandom
)

// String names the kind as campaign specs spell it.
func (k TopologyKind) String() string {
	switch k {
	case TopoSingle:
		return "single"
	case TopoStar:
		return "star"
	case TopoRing:
		return "ring"
	case TopoFatTree:
		return "fattree"
	case TopoRandom:
		return "random"
	}
	return "unknown"
}

// ParseTopologyKind resolves a kind name ("single", "star", "ring",
// "fattree", "random").
func ParseTopologyKind(s string) (TopologyKind, error) {
	switch s {
	case "", "single":
		return TopoSingle, nil
	case "star":
		return TopoStar, nil
	case "ring":
		return TopoRing, nil
	case "fattree", "fat-tree":
		return TopoFatTree, nil
	case "random":
		return TopoRandom, nil
	}
	return TopoSingle, fmt.Errorf("virtualwire: unknown topology kind %q", s)
}

// TopologySpec describes a multi-switch fabric. The wiring is a pure
// function of the spec and the host count — never of Config.Seed — so a
// reset testbed re-runs over identical wiring and a fresh testbed with
// the same spec reproduces it exactly.
type TopologySpec struct {
	// Kind selects the generator; TopoSingle (the zero value) keeps the
	// classic single switch.
	Kind TopologyKind
	// Switches sizes star (edge switches), ring and random fabrics;
	// 0 auto-sizes to about one edge switch per 48 hosts.
	Switches int
	// FatTreeK is the fat-tree arity (even, >= 4); 0 picks the smallest
	// k whose k^3/4 host capacity fits the testbed.
	FatTreeK int
	// ExtraTrunks adds redundant (spanning-tree-blocked) trunks to
	// random fabrics.
	ExtraTrunks int
	// TrunkBitsPerSecond is the inter-switch link bandwidth (default
	// 10x the host link rate).
	TrunkBitsPerSecond float64
	// TrunkPropagation is the inter-switch cable delay (default: the
	// host segment propagation, i.e. Config.Propagation). Sharded runs
	// derive their conservative window lookahead from this value, so
	// campus-length trunks (microseconds) buy proportionally longer
	// parallel windows — see docs/PERFORMANCE.md, "Sharded execution".
	TrunkPropagation time.Duration
	// WiringSeed drives the random generator's RNG only (default 1). It
	// is deliberately separate from Config.Seed: run seeds vary per
	// campaign point, wiring must not.
	WiringSeed int64
	// ReconvergeDelay is the spanning-tree reconvergence latency: how
	// long after a topology change (trunk failure/restore, switch
	// crash/restart) the fabric recomputes its tree, unblocks the best
	// redundant trunk and flushes stale MAC entries. 0 selects
	// DefaultReconvergeDelay. See Config.TopologyFaults.
	ReconvergeDelay time.Duration
}

// DefaultReconvergeDelay is the spanning-tree reconvergence latency when
// TopologySpec.ReconvergeDelay is zero: far faster than real 802.1D
// (tens of seconds) but long enough that traffic observably blackholes
// between a trunk death and failover.
const DefaultReconvergeDelay = time.Millisecond

// topologyActive reports whether build() must wire a fabric instead of
// the single pre-created medium.
func (tb *Testbed) topologyActive() bool {
	return tb.cfg.Topology != nil && tb.cfg.Topology.Kind != TopoSingle
}

// trunkWire is one generated inter-switch link (switch indices).
type trunkWire struct{ a, b int }

// fabricTrunk is one built inter-switch link: its wiring, the port index
// on each end switch, the medium handle (link in the legacy engine,
// mailbox channel in the sharded one) and its fault state. Unlike the
// original count-only bookkeeping, trunks persist so the topology fault
// engine can fail, restore and degrade them at runtime.
type fabricTrunk struct {
	wire   trunkWire
	pa, pb int // port index on switch wire.a / wire.b
	// inTree marks membership in the build-time spanning tree (the
	// pristine blocked/forwarding layout Reset restores).
	inTree bool
	link   *ether.Link         // legacy engine medium (nil when sharded)
	ch     *ether.TrunkChannel // sharded medium (nil in legacy mode)
	// baseProp/baseBER are the built profile, restored by Reset after
	// degrade faults.
	baseProp time.Duration
	baseBER  float64
	failed   bool
}

// blocked reports the trunk's live spanning-tree state (both end ports
// are always blocked/unblocked together).
func (tb *Testbed) trunkBlocked(i int) bool {
	t := &tb.trunks[i]
	return tb.fabric[t.wire.a].PortBlocked(t.pa)
}

// blockedTrunks counts trunks currently blocked — live state, unlike
// the build-time constant the blocked_trunks gauge used to report.
func (tb *Testbed) blockedTrunks() int {
	n := 0
	for i := range tb.trunks {
		if tb.trunkBlocked(i) {
			n++
		}
	}
	return n
}

// setTrunkBlocked blocks or unblocks a trunk on both ends.
func (tb *Testbed) setTrunkBlocked(i int, blocked bool) {
	t := &tb.trunks[i]
	tb.fabric[t.wire.a].SetPortBlocked(t.pa, blocked)
	tb.fabric[t.wire.b].SetPortBlocked(t.pb, blocked)
}

// fabricPlan is a generated wiring: switch count, trunks in wiring
// order, and the host-bearing (edge) switches.
type fabricPlan struct {
	switches int
	trunks   []trunkWire
	edges    []int
}

// planFabric generates the wiring for n hosts.
func planFabric(spec *TopologySpec, n int) (fabricPlan, error) {
	autoEdges := func(min int) int {
		e := (n + 47) / 48
		if e < min {
			e = min
		}
		return e
	}
	switch spec.Kind {
	case TopoStar:
		edges := spec.Switches
		if edges <= 0 {
			edges = autoEdges(2)
		}
		p := fabricPlan{switches: edges + 1}
		for i := 1; i <= edges; i++ {
			p.trunks = append(p.trunks, trunkWire{0, i})
			p.edges = append(p.edges, i)
		}
		return p, nil
	case TopoRing:
		sw := spec.Switches
		if sw <= 0 {
			sw = autoEdges(3)
		}
		if sw < 3 {
			sw = 3
		}
		p := fabricPlan{switches: sw}
		for i := 0; i < sw; i++ {
			p.trunks = append(p.trunks, trunkWire{i, (i + 1) % sw})
			p.edges = append(p.edges, i)
		}
		return p, nil
	case TopoFatTree:
		k := spec.FatTreeK
		if k <= 0 {
			for k = 4; k*k*k/4 < n; k += 2 {
			}
		}
		if k < 4 || k%2 != 0 {
			return fabricPlan{}, fmt.Errorf("virtualwire: fat-tree arity must be even and >= 4 (got %d)", k)
		}
		half := k / 2
		cores := half * half
		p := fabricPlan{switches: cores + k*(half+half)}
		// Switch layout: [0,cores) cores, then per pod half aggs followed
		// by half edges.
		for pod := 0; pod < k; pod++ {
			podBase := cores + pod*k
			for a := 0; a < half; a++ {
				agg := podBase + a
				// Each agg uplinks to its column of core switches.
				for c := 0; c < half; c++ {
					p.trunks = append(p.trunks, trunkWire{a*half + c, agg})
				}
			}
			for e := 0; e < half; e++ {
				edge := podBase + half + e
				for a := 0; a < half; a++ {
					p.trunks = append(p.trunks, trunkWire{podBase + a, edge})
				}
				p.edges = append(p.edges, edge)
			}
		}
		return p, nil
	case TopoRandom:
		sw := spec.Switches
		if sw <= 0 {
			sw = autoEdges(2)
		}
		seed := spec.WiringSeed
		if seed == 0 {
			seed = 1
		}
		rng := rand.New(rand.NewSource(seed))
		p := fabricPlan{switches: sw}
		for i := 1; i < sw; i++ {
			p.trunks = append(p.trunks, trunkWire{rng.Intn(i), i})
		}
		for x := 0; x < spec.ExtraTrunks && sw >= 2; x++ {
			a := rng.Intn(sw)
			b := rng.Intn(sw - 1)
			if b >= a {
				b++
			}
			p.trunks = append(p.trunks, trunkWire{a, b})
		}
		for i := 0; i < sw; i++ {
			p.edges = append(p.edges, i)
		}
		return p, nil
	}
	return fabricPlan{}, fmt.Errorf("virtualwire: topology kind %v has no generator", spec.Kind)
}

// buildFabric wires the planned fabric and attaches every host: switches
// in index order, trunks in wiring order, hosts round-robin across the
// edge switches in addition order. Non-spanning-tree trunks are blocked
// on both ends. Called once from build(); the wiring then persists across
// Reset.
func (tb *Testbed) buildFabric() error {
	spec := tb.cfg.Topology
	if len(tb.nodes) == 0 {
		return fmt.Errorf("virtualwire: topology %v needs hosts before build", spec.Kind)
	}
	plan, err := planFabric(spec, len(tb.nodes))
	if err != nil {
		return err
	}
	hostRate := tb.cfg.BitsPerSecond
	if hostRate <= 0 {
		hostRate = 100e6
	}
	trunkRate := spec.TrunkBitsPerSecond
	if trunkRate <= 0 {
		trunkRate = 10 * hostRate
	}
	trunkProp := spec.TrunkPropagation
	if trunkProp <= 0 {
		trunkProp = tb.cfg.Propagation
	}
	tb.topo.delay = DefaultReconvergeDelay
	if spec.ReconvergeDelay > 0 {
		tb.topo.delay = spec.ReconvergeDelay
	}
	// Shard planning (sharded mode only): every switch — and with it the
	// hosts it serves — is assigned to one shard before anything is
	// wired, so each switch is constructed directly on its shard's
	// scheduler and pool. Legacy mode assigns everything to shard 0,
	// where shardSched/shardPool resolve to tb.sched/tb.pool.
	hostsPer := make([]int, plan.switches)
	for i := range tb.nodes {
		hostsPer[plan.edges[i%len(plan.edges)]]++
	}
	shardOf := make([]int, plan.switches)
	if tb.shardMode() {
		tb.initShardRuntime(tb.resolveShardCount(len(plan.edges)))
		shardOf = planShards(plan, hostsPer, tb.shards.count)
	}
	tb.fabric = make([]*ether.Switch, plan.switches)
	for i := range tb.fabric {
		tb.fabric[i] = ether.NewSwitch(tb.shardSched(shardOf[i]), ether.SwitchConfig{
			BitsPerSecond: tb.cfg.BitsPerSecond,
			Propagation:   tb.cfg.Propagation,
			BitErrorRate:  tb.cfg.BitErrorRate,
			FullDuplex:    tb.cfg.Medium == MediumSwitchFullDuplex,
			Pool:          tb.shardPool(shardOf[i]),
			ID:            i,
		})
	}
	tb.trunks = make([]fabricTrunk, len(plan.trunks))
	tb.fabricAdj = make([][]int, plan.switches) // trunk indices per switch
	for ti, w := range plan.trunks {
		tr := &tb.trunks[ti]
		tr.wire = w
		if tb.shardMode() {
			// Every trunk becomes a mailbox channel regardless of whether
			// its ends share a shard: the windowed engine's behavior must
			// not depend on the partition, or shard counts would produce
			// different outputs.
			tr.ch, tr.pa, tr.pb = ether.ConnectTrunkChannel(tb.fabric[w.a], tb.fabric[w.b],
				ether.LinkConfig{
					BitsPerSecond: trunkRate,
					Propagation:   trunkProp,
					BitErrorRate:  tb.cfg.BitErrorRate,
					Pool:          tb.shardPool(shardOf[w.a]),
				},
				ether.LinkConfig{
					BitsPerSecond: trunkRate,
					Propagation:   trunkProp,
					BitErrorRate:  tb.cfg.BitErrorRate,
					Pool:          tb.shardPool(shardOf[w.b]),
				})
			tb.shards.channels = append(tb.shards.channels, tr.ch)
		} else {
			tr.link, tr.pa, tr.pb = ether.ConnectTrunk(tb.fabric[w.a], tb.fabric[w.b], ether.LinkConfig{
				BitsPerSecond: trunkRate,
				Propagation:   trunkProp,
				BitErrorRate:  tb.cfg.BitErrorRate,
				Pool:          tb.pool,
			})
		}
		// The base profile Reset restores after degrade faults is read back
		// from the built medium (post-default-fill), not from the spec: a
		// zero spec propagation means "LinkConfig default", and restoring a
		// raw zero would keep the degraded value instead.
		if tr.ch != nil {
			tr.baseProp, tr.baseBER = tr.ch.Profile()
		} else {
			tr.baseProp, tr.baseBER = tr.link.Profile()
		}
		tb.fabricAdj[w.a] = append(tb.fabricAdj[w.a], ti)
		tb.fabricAdj[w.b] = append(tb.fabricAdj[w.b], ti)
	}
	// Static spanning tree: BFS from switch 0 over trunks in wiring
	// order; every trunk not used for a first discovery is blocked on
	// both ends. The same routine recomputes the tree after topology
	// faults (spanningForest), where it reproduces this exact layout
	// whenever every trunk and switch is alive.
	tb.forestTree = make([]bool, len(plan.trunks))
	tb.forestVisited = make([]bool, plan.switches)
	tb.forestQueue = make([]int, 0, plan.switches)
	tb.spanningForest()
	for i, v := range tb.forestVisited {
		if !v {
			return fmt.Errorf("virtualwire: topology %v left switch %d disconnected", spec.Kind, i)
		}
	}
	for ti := range tb.trunks {
		tb.trunks[ti].inTree = tb.forestTree[ti]
		if !tb.forestTree[ti] {
			tb.setTrunkBlocked(ti, true)
		}
	}
	// Per-trunk state gauges stay readable on small fabrics; a 320-switch
	// fat-tree would bloat every RunReport, so they gate off above
	// trunkStateGaugeMax. Names are interned once here — fabricSnapshot
	// runs on report assembly and must not format strings per gather.
	if len(tb.trunks) <= trunkStateGaugeMax {
		tb.trunkStateNames = make([]string, len(tb.trunks))
		for i := range tb.trunks {
			tb.trunkStateNames[i] = fmt.Sprintf("trunk%02d_state", i)
		}
	}
	for i, n := range tb.nodes {
		edge := plan.edges[i%len(plan.edges)]
		if tb.shardMode() {
			tb.bindNodeShard(n, shardOf[edge])
		}
		tb.fabric[edge].AttachHost(n.host.NIC)
	}
	return nil
}

// planShards assigns every switch to one of k shards. Edge switches are
// cut into k contiguous blocks (in plan.edges order) balanced by
// attached-host count — contiguity keeps pods/neighbor switches
// together, a cheap stand-in for a min-cut since every generator lays
// related switches out adjacently. Interior switches (cores,
// aggregators) then adopt the majority shard of their spanning-tree
// children, processed leaves-first, so an aggregator lands with the pod
// block it serves and most tree trunks stay shard-internal. The result
// is a pure function of (plan, host layout, k): independent of seeds,
// GOMAXPROCS and run history.
func planShards(plan fabricPlan, hostsPer []int, k int) []int {
	if k > len(plan.edges) {
		k = len(plan.edges)
	}
	if k < 1 {
		k = 1
	}
	shard := make([]int, plan.switches)
	for i := range shard {
		shard[i] = -1
	}
	total := 0
	for _, e := range plan.edges {
		total += hostsPer[e]
	}
	s, cum := 0, 0
	for i, e := range plan.edges {
		shard[e] = s
		cum += hostsPer[e]
		remaining := len(plan.edges) - i - 1
		if s < k-1 && cum*k >= (s+1)*total && remaining >= k-1-s {
			s++
		}
	}
	// Spanning tree (same BFS as buildFabric: from switch 0 in wiring
	// order) to find each interior switch's children.
	adj := make([][]int, plan.switches)
	for ti, w := range plan.trunks {
		adj[w.a] = append(adj[w.a], ti)
		adj[w.b] = append(adj[w.b], ti)
	}
	parent := make([]int, plan.switches)
	for i := range parent {
		parent[i] = -1
	}
	visited := make([]bool, plan.switches)
	visited[0] = true
	order := []int{0}
	for qi := 0; qi < len(order); qi++ {
		v := order[qi]
		for _, ti := range adj[v] {
			w := plan.trunks[ti]
			other := w.a + w.b - v
			if !visited[other] {
				visited[other] = true
				parent[other] = v
				order = append(order, other)
			}
		}
	}
	children := make([][]int, plan.switches)
	for v, p := range parent {
		if p >= 0 {
			children[p] = append(children[p], v)
		}
	}
	counts := make([]int, k)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		if shard[v] >= 0 {
			continue
		}
		for j := range counts {
			counts[j] = 0
		}
		best := -1
		for _, c := range children[v] {
			if sc := shard[c]; sc >= 0 {
				counts[sc]++
				if best < 0 || counts[sc] > counts[best] || (counts[sc] == counts[best] && sc < best) {
					best = sc
				}
			}
		}
		if best < 0 {
			best = 0
		}
		shard[v] = best
	}
	for i := range shard {
		if shard[i] < 0 {
			// Unreached switches (disconnected plans are rejected later
			// by buildFabric) default to shard 0.
			shard[i] = 0
		}
	}
	return shard
}

// spanningForest recomputes the BFS spanning forest over the live
// fabric into tb.forestTree/forestVisited: roots are the lowest-index
// up-switches of each component, adjacency is walked in trunk wiring
// order, and failed trunks and down switches are excluded. With every
// trunk and switch alive it reproduces the build-time tree exactly
// (BFS from switch 0 in wiring order), so Reset and reconvergence agree
// on the pristine layout. Scratch buffers are reused: no allocation.
func (tb *Testbed) spanningForest() {
	for i := range tb.forestTree {
		tb.forestTree[i] = false
	}
	for i := range tb.forestVisited {
		tb.forestVisited[i] = false
	}
	queue := tb.forestQueue[:0]
	for root := range tb.fabric {
		if tb.forestVisited[root] || tb.fabric[root].Down() {
			continue
		}
		tb.forestVisited[root] = true
		queue = append(queue, root)
		for qi := 0; qi < len(queue); qi++ {
			s := queue[qi]
			for _, ti := range tb.fabricAdj[s] {
				tr := &tb.trunks[ti]
				if tr.failed {
					continue
				}
				other := tr.wire.a + tr.wire.b - s
				if tb.forestVisited[other] || tb.fabric[other].Down() {
					continue
				}
				tb.forestVisited[other] = true
				tb.forestTree[ti] = true
				queue = append(queue, other)
			}
		}
		queue = queue[:0]
	}
	tb.forestQueue = queue
}

// trunkStateGaugeMax bounds the fabrics that emit per-trunk state
// gauges (larger fabrics would bloat every report).
const trunkStateGaugeMax = 64

// Per-trunk gauge state encoding.
const (
	trunkStateForwarding = 0
	trunkStateBlocked    = 1
	trunkStateFailed     = 2
)

// fabricSnapshot aggregates the fabric's switches into one metrics
// source ("testbed"/"fabric"): per-switch sources at 320 switches would
// bloat every RunReport, and fabric-wide totals are what campaigns
// compare. Alongside the forwarding totals it reports the fault
// engine's failover counters and the fabric's live trunk state — the
// blocked_trunks gauge tracks runtime block/unblock, not the build-time
// layout, so spanning-tree failover is observable.
func (tb *Testbed) fabricSnapshot() MetricsSnapshot {
	var sn MetricsSnapshot
	var ingress, fwd, flood, blockedFr, dropped uint64
	downSwitches := 0
	var drops float64
	for _, sw := range tb.fabric {
		ingress += sw.IngressFrames
		fwd += sw.ForwardedFrames
		flood += sw.FloodedFrames
		blockedFr += sw.BlockedFrames
		dropped += sw.DroppedFrames
		if sw.Down() {
			downSwitches++
		}
		if v, ok := sw.Snapshot().Get("port_queue_drops"); ok {
			drops += v
		}
	}
	sn.Counter("ingress_frames", ingress)
	sn.Counter("forwarded_frames", fwd)
	sn.Counter("flooded_frames", flood)
	sn.Counter("blocked_frames", blockedFr)
	sn.Counter("dropped_frames", dropped)
	sn.Counter("port_queue_drops", uint64(drops))
	sn.Counter("failovers", tb.topo.failovers)
	sn.Counter("reconverge_ns_total", uint64(tb.topo.reconvergeTotal))
	sn.Gauge("reconverge_last_ns", float64(tb.topo.reconvergeLast))
	sn.Gauge("switches", float64(len(tb.fabric)))
	sn.Gauge("down_switches", float64(downSwitches))
	sn.Gauge("trunks", float64(len(tb.trunks)))
	sn.Gauge("blocked_trunks", float64(tb.blockedTrunks()))
	failedTrunks := 0
	for i := range tb.trunks {
		if tb.trunks[i].failed {
			failedTrunks++
		}
	}
	sn.Gauge("failed_trunks", float64(failedTrunks))
	for i, name := range tb.trunkStateNames {
		state := trunkStateForwarding
		switch {
		case tb.trunks[i].failed:
			state = trunkStateFailed
		case tb.trunkBlocked(i):
			state = trunkStateBlocked
		}
		sn.Gauge(name, float64(state))
	}
	return sn
}

// TrunkCount reports the number of trunks in the built fabric.
func (tb *Testbed) TrunkCount() int { return len(tb.trunks) }

// TrunkStatus is one trunk's live state (see Testbed.TrunkStatus).
type TrunkStatus struct {
	// A and B are the end switch indices.
	A, B int
	// InTree marks membership in the build-time spanning tree.
	InTree bool
	// Blocked and Failed are the live spanning-tree and fault states.
	Blocked, Failed bool
	// Propagation and BitErrorRate are the live profile (degrade faults
	// override the built values until Reset).
	Propagation  time.Duration
	BitErrorRate float64
}

// TrunkStatus reports a trunk's live state by wiring index.
func (tb *Testbed) TrunkStatus(i int) (TrunkStatus, error) {
	if i < 0 || i >= len(tb.trunks) {
		return TrunkStatus{}, fmt.Errorf("virtualwire: no trunk %d (fabric has %d)", i, len(tb.trunks))
	}
	tr := &tb.trunks[i]
	st := TrunkStatus{
		A: tr.wire.a, B: tr.wire.b,
		InTree:  tr.inTree,
		Blocked: tb.trunkBlocked(i),
		Failed:  tr.failed,
	}
	if tr.ch != nil {
		st.Propagation, st.BitErrorRate = tr.ch.Profile()
	} else if tr.link != nil {
		st.Propagation, st.BitErrorRate = tr.link.Profile()
	}
	return st, nil
}

// FabricSwitches reports the number of switches in the built fabric (0
// for single-switch or bus testbeds, or before build).
func (tb *Testbed) FabricSwitches() int { return len(tb.fabric) }

// AddHostGroup adds n hosts named <prefix><seq> (four-digit sequence)
// with deterministic MAC (02:56:57:...) and IP (10.x.y.z) identities
// derived from a testbed-wide host sequence — the bulk-population API for
// generated topologies, where hand-writing a 1000-row NODE_TABLE is not
// an option. Returns the new nodes in addition order.
func (tb *Testbed) AddHostGroup(prefix string, n int) ([]*Node, error) {
	if n <= 0 {
		return nil, fmt.Errorf("virtualwire: host group size %d", n)
	}
	if prefix == "" {
		prefix = "h"
	}
	out := make([]*Node, 0, n)
	for i := 0; i < n; i++ {
		tb.hostSeq++
		s := tb.hostSeq
		if s > 0xFFFFFF {
			return out, fmt.Errorf("virtualwire: host sequence overflow at %d", s)
		}
		name := fmt.Sprintf("%s%04d", prefix, s)
		mac := packet.MAC{0x02, 0x56, 0x57, byte(s >> 16), byte(s >> 8), byte(s)}
		ip := packet.IP{10, byte(s >> 16), byte(s >> 8), byte(s)}
		nd, err := tb.addHost(name, mac, ip)
		if err != nil {
			return out, err
		}
		out = append(out, nd)
	}
	return out, nil
}
