package virtualwire

import (
	"virtualwire/internal/gen"
)

// Scenario generation — the paper's "future work" (Section 8): derive
// fault-injection-plus-analysis scripts mechanically instead of writing
// them by hand. See examples/regression for the full workflow.
type (
	// GenConfig parametrizes scenario generation.
	GenConfig = gen.Config
	// GeneratedScenario is one generated test case.
	GeneratedScenario = gen.Scenario
	// FaultKind selects the injected fault of a generated case.
	FaultKind = gen.FaultKind
)

// Fault kinds available to GenerateScenarios.
const (
	FaultDrop    = gen.Drop
	FaultDelay   = gen.Delay
	FaultDup     = gen.Dup
	FaultModify  = gen.Modify
	FaultReorder = gen.Reorder
)

// GenerateScenarios emits one validated FSL scenario per (fault kind,
// occurrence) pair: each injects a single fault into the Nth packet of
// the target type and passes only if the stream keeps flowing afterward.
func GenerateScenarios(cfg GenConfig) ([]GeneratedScenario, error) {
	return gen.Generate(cfg)
}
