package virtualwire

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestRetransmissionScript runs scripts/tcp_retransmission.fsl: the
// variable-binding filter must isolate the retransmission of one
// specific segment, and the conforming TCP retransmits it exactly once.
func TestRetransmissionScript(t *testing.T) {
	script := readScript(t, "tcp_retransmission.fsl")
	tb, err := New(Config{Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AddNodesFromScript(script); err != nil {
		t.Fatal(err)
	}
	if err := tb.LoadScript(script); err != nil {
		t.Fatal(err)
	}
	bulk, err := tb.AddTCPBulk(TCPBulkConfig{
		From: "node1", To: "node2",
		SrcPort: 0x6000, DstPort: 0x4000, Bytes: 64 * 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tb.Run(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Result.Stopped {
		t.Fatalf("scenario did not STOP: %+v", rep.Result)
	}
	if !rep.Passed {
		t.Fatalf("failed: %+v", rep.Result)
	}
	if bulk.SenderStats().Retransmissions != 1 {
		t.Errorf("retransmissions = %d, want exactly 1", bulk.SenderStats().Retransmissions)
	}
	node2, _ := tb.Node("node2")
	if v, _ := node2.CounterValue("RT1"); v != 3 {
		t.Errorf("RT1 = %d, want 3 (binder + dropped original + retransmission)", v)
	}
}

// TestUDPFaultScenarios runs every scenario of the multi-scenario UDP
// regression file through LoadScriptScenario.
func TestUDPFaultScenarios(t *testing.T) {
	script := readScript(t, "udp_faults.fsl")
	names, err := ScenarioNames(script)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"dup_one", "delay_three", "reorder_window"}
	if len(names) != len(want) {
		t.Fatalf("scenarios = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("scenarios = %v, want %v", names, want)
		}
	}
	for i, name := range names {
		name := name
		seed := int64(62 + i)
		t.Run(name, func(t *testing.T) {
			tb, err := New(Config{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if err := tb.AddNodesFromScript(script); err != nil {
				t.Fatal(err)
			}
			if err := tb.LoadScriptScenario(script, name); err != nil {
				t.Fatal(err)
			}
			echo, err := tb.AddUDPEcho(UDPEchoConfig{
				Client: "node1", Server: "node2",
				ServerPort: 9000, Count: 40, Interval: 5 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := tb.Run(30 * time.Second)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Result.Stopped || !rep.Passed {
				t.Fatalf("%s: %+v (echo %d/%d)", name, rep.Result, echo.Received(), echo.Sent())
			}
		})
	}
	// Unknown scenario name errors.
	tb, _ := New(Config{})
	if err := tb.AddNodesFromScript(script); err != nil {
		t.Fatal(err)
	}
	if err := tb.LoadScriptScenario(script, "ghost"); err == nil {
		t.Error("unknown scenario accepted")
	}
}

// TestSummaryAndPcap exercises the post-run reporting surfaces.
func TestSummaryAndPcap(t *testing.T) {
	script := readScript(t, "fig5_tcp_ss_ca.fsl")
	var pcap bytes.Buffer
	tb, err := New(Config{Seed: 65, Pcap: &pcap, PcapNode: "node2"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AddNodesFromScript(script); err != nil {
		t.Fatal(err)
	}
	if err := tb.LoadScript(script); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.AddTCPBulk(TCPBulkConfig{
		From: "node1", To: "node2",
		SrcPort: 0x6000, DstPort: 0x4000, Bytes: 40 * 1024,
	}); err != nil {
		t.Fatal(err)
	}
	rep, err := tb.Run(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	sum := rep.Text()
	for _, wantStr := range []string{
		"scenario \"TCP_SS_CA_algo\"", "node1", "node2",
		"engine:", "verdict", "intercepted", "fault(s) injected",
	} {
		if !strings.Contains(sum, wantStr) {
			t.Errorf("report text missing %q:\n%s", wantStr, sum)
		}
	}
	// Valid pcap: magic + at least the handshake frames.
	if pcap.Len() < 24+3*16 {
		t.Errorf("pcap only %d bytes", pcap.Len())
	}
	magic := pcap.Bytes()[:4]
	if magic[0] != 0xd4 || magic[1] != 0xc3 || magic[2] != 0xb2 || magic[3] != 0xa1 {
		t.Errorf("pcap magic %x", magic)
	}
}

// TestInjectedFaultsJournal verifies the post-run injection journal.
func TestInjectedFaultsJournal(t *testing.T) {
	script := readScript(t, "udp_faults.fsl")
	tb, err := New(Config{Seed: 66})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AddNodesFromScript(script); err != nil {
		t.Fatal(err)
	}
	if err := tb.LoadScriptScenario(script, "delay_three"); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.AddUDPEcho(UDPEchoConfig{
		Client: "node1", Server: "node2", ServerPort: 9000,
		Count: 40, Interval: 5 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	faults := tb.InjectedFaults()
	if len(faults) != 3 {
		t.Fatalf("journal = %+v, want 3 delays", faults)
	}
	for i, f := range faults {
		if f.Kind != "DELAY" || f.Node != "node2" || f.PacketType != "udp_data" {
			t.Errorf("fault %d = %+v", i, f)
		}
		if i > 0 && f.At < faults[i-1].At {
			t.Error("journal not time ordered")
		}
	}
}

// TestUDPStreamWorkload verifies the CBR stream and its jitter metric.
func TestUDPStreamWorkload(t *testing.T) {
	tb, err := New(Config{Seed: 67})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.AddHost("a", "00:00:00:00:00:01", "10.0.0.1"); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.AddHost("b", "00:00:00:00:00:02", "10.0.0.2"); err != nil {
		t.Fatal(err)
	}
	stream, err := tb.AddUDPStream(UDPStreamConfig{
		From: "a", To: "b", Port: 9000, Count: 200, Interval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if stream.Received() != 200 {
		t.Fatalf("received %d/200", stream.Received())
	}
	// On an idle switch the inter-arrival gap stays at the send interval.
	if stream.MaxInterArrival() > 2*time.Millisecond {
		t.Errorf("max inter-arrival %v on an idle wire", stream.MaxInterArrival())
	}
}
