package virtualwire

import (
	"testing"
	"time"
)

const launchScript = `FILTER_TABLE
p0: (23 1 0x11), (36 2 0x1b58)
END
NODE_TABLE
node1 00:00:00:00:00:01 10.0.0.1
node2 00:00:00:00:00:02 10.0.0.2
END
SCENARIO launchtest 100ms
C: (node1)
(TRUE) >> ASSIGN_CNTR( C, 1 );
END`

// TestLaunchDeadlineReportsUnreachable: a deadline shorter than one wire
// traversal guarantees no remote node can acknowledge in time, so the run
// must terminate with a degraded launch-failed report naming the node —
// rather than hanging or pretending to have started.
func TestLaunchDeadlineReportsUnreachable(t *testing.T) {
	tb, err := New(Config{Seed: 5, LaunchDeadline: time.Nanosecond})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := tb.AddNodesFromScript(launchScript); err != nil {
		t.Fatalf("nodes: %v", err)
	}
	if err := tb.LoadScript(launchScript); err != nil {
		t.Fatalf("script: %v", err)
	}
	rep, err := tb.Run(time.Second)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Passed {
		t.Error("a failed launch must not pass")
	}
	if !rep.Result.LaunchFailed {
		t.Fatalf("LaunchFailed not reported: %+v", rep.Result)
	}
	if rep.Result.Started {
		t.Error("scenario reported started despite the launch failure")
	}
	if len(rep.Unreachable) != 1 || rep.Unreachable[0] != "node2" {
		t.Errorf("Unreachable = %v, want [node2]", rep.Unreachable)
	}
	// The run is terminal: virtual time stopped at the deadline, not the
	// horizon.
	if rep.Duration > 100*time.Millisecond {
		t.Errorf("run consumed %v, want early termination at the deadline", rep.Duration)
	}
	// The controller's distribution counters are part of the registry.
	found := false
	for _, s := range tb.Metrics().Gather() {
		if s.Node == MetricsNode && s.Layer == "controller" {
			found = true
			break
		}
	}
	if !found {
		t.Error("controller metrics source not registered")
	}
}

// TestLaunchKnobsForwarded: the facade's retry knobs reach the controller
// and a healthy testbed still launches with tight ones.
func TestLaunchKnobsForwarded(t *testing.T) {
	tb, err := New(Config{
		Seed:                6,
		LaunchRetryInterval: 5 * time.Millisecond,
		LaunchMaxAttempts:   3,
		LaunchDeadline:      500 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := tb.AddNodesFromScript(launchScript); err != nil {
		t.Fatalf("nodes: %v", err)
	}
	if err := tb.LoadScript(launchScript); err != nil {
		t.Fatalf("script: %v", err)
	}
	rep, err := tb.Run(time.Second)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !rep.Result.Started || rep.Result.LaunchFailed {
		t.Fatalf("healthy testbed failed to launch: %+v", rep.Result)
	}
	if len(rep.Unreachable) != 0 {
		t.Errorf("Unreachable = %v on a healthy launch", rep.Unreachable)
	}
}
