package virtualwire

import (
	"errors"
	"fmt"
	"strings"
)

// Typed sentinel errors. Every failure the facade reports is wrapped
// around one of these with %w, so callers — and in particular the
// campaign retry policy — classify outcomes with errors.Is instead of
// string matching.
var (
	// ErrScriptParse wraps every FSL parse or compile failure surfaced
	// by LoadScript, LoadScriptScenario, AddNodesFromScript,
	// ScenarioNames and CheckScript.
	ErrScriptParse = errors.New("script parse failed")

	// ErrLaunchFailed marks a run whose INIT distribution gave up: one
	// or more nodes never acknowledged within the launch deadline.
	// Returned by RunReport.Err; always accompanied by ErrUnreachable.
	ErrLaunchFailed = errors.New("scenario launch failed")

	// ErrUnreachable marks nodes that never acknowledged INIT. Wrapped
	// together with ErrLaunchFailed so callers can match either.
	ErrUnreachable = errors.New("node unreachable")

	// ErrHorizonExceeded marks a run cut short by its real-time budget:
	// the context deadline expired before the scenario finished. The
	// context's own error is wrapped alongside, so
	// errors.Is(err, context.DeadlineExceeded) also holds.
	ErrHorizonExceeded = errors.New("run horizon exceeded")
)

// scriptErr wraps an FSL front-end failure with the ErrScriptParse
// sentinel while preserving the original chain.
func scriptErr(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("virtualwire: %w: %w", ErrScriptParse, err)
}

// Err converts the report's terminal state into a typed error, or nil
// for a run that at least launched. A launch failure yields an error
// matching both ErrLaunchFailed and ErrUnreachable (errors.Is), naming
// the silent nodes. Flagged scenario errors are a verdict, not an
// execution failure, and do not produce an error here — inspect Passed
// and Errors for those.
func (r RunReport) Err() error {
	if r.Result.LaunchFailed {
		return fmt.Errorf("virtualwire: %w: %w: %s",
			ErrLaunchFailed, ErrUnreachable, strings.Join(r.Unreachable, ", "))
	}
	return nil
}
