package virtualwire

import (
	"encoding/binary"
	"fmt"
	"time"

	"virtualwire/internal/packet"
	"virtualwire/internal/sim"
	"virtualwire/internal/tcp"
)

// TCPBulkConfig describes a bulk TCP transfer workload, the traffic
// source for the Figure 5 scenario and the Figure 7 throughput sweep.
type TCPBulkConfig struct {
	// From and To name the client and server hosts.
	From, To string
	// SrcPort and DstPort are the connection's ports (the paper uses
	// 0x6000 -> 0x4000).
	SrcPort, DstPort uint16
	// Bytes, when positive, sends exactly this much data then
	// (optionally) closes.
	Bytes int
	// RateBitsPerSecond, when positive, paces application writes at
	// this offered rate instead (Figure 7's "offered data pumping
	// rate").
	RateBitsPerSecond float64
	// Duration bounds the paced transmission (0 = until the run ends).
	Duration time.Duration
	// CloseWhenDone sends FIN after Bytes are written.
	CloseWhenDone bool
	// DisableCongestionControl makes the sender ignore cwnd (a broken
	// TCP, for demonstrating that the analysis scripts catch it).
	DisableCongestionControl bool
}

// TCPBulk is a running bulk-transfer workload handle.
type TCPBulk struct {
	cfg  TCPBulkConfig
	conn *tcp.Conn

	connected   bool
	delivered   int
	firstByteAt time.Duration
	lastByteAt  time.Duration
	closed      bool
	failed      bool

	// clientClosed is the client-side "transfer finished" marker the
	// sharded pace loop watches. The legacy loop reads closed, which the
	// server's OnClose sets — a cross-shard read under sharded execution,
	// where the observed value would depend on the partition rather than
	// on virtual time.
	clientClosed bool
}

var (
	_ workload        = (*TCPBulk)(nil)
	_ shardedWorkload = (*TCPBulk)(nil)
)

// AddTCPBulk stages a bulk TCP workload; it starts when the scenario
// starts (or immediately when no script is loaded).
func (tb *Testbed) AddTCPBulk(cfg TCPBulkConfig) (*TCPBulk, error) {
	if _, ok := tb.byName[cfg.From]; !ok {
		return nil, fmt.Errorf("virtualwire: unknown host %q", cfg.From)
	}
	if _, ok := tb.byName[cfg.To]; !ok {
		return nil, fmt.Errorf("virtualwire: unknown host %q", cfg.To)
	}
	if cfg.Bytes <= 0 && cfg.RateBitsPerSecond <= 0 {
		return nil, fmt.Errorf("virtualwire: TCPBulk needs Bytes or RateBitsPerSecond")
	}
	w := &TCPBulk{cfg: cfg}
	tb.workloads = append(tb.workloads, w)
	return w, nil
}

func (w *TCPBulk) start(tb *Testbed) error {
	from := tb.byName[w.cfg.From]
	to := tb.byName[w.cfg.To]
	lst, err := to.tcp.Listen(w.cfg.DstPort)
	if err != nil {
		return err
	}
	lst.OnAccept = func(c *tcp.Conn) {
		c.OnData = func(d []byte) {
			if w.delivered == 0 {
				w.firstByteAt = tb.sched.Now()
			}
			w.delivered += len(d)
			w.lastByteAt = tb.sched.Now()
		}
		c.OnClose = func() {
			w.closed = true
			c.Close()
		}
	}
	conn, err := from.tcp.Connect(w.cfg.SrcPort, to.host.IP, w.cfg.DstPort)
	if err != nil {
		return err
	}
	w.conn = conn
	if w.cfg.DisableCongestionControl {
		conn.DisableCongestionControl()
	}
	conn.OnFail = func() { w.failed = true }
	conn.OnConnected = func() {
		w.connected = true
		if w.cfg.Bytes > 0 {
			conn.Send(make([]byte, w.cfg.Bytes))
			if w.cfg.CloseWhenDone {
				conn.Close()
			}
			return
		}
		w.pace(tb, tb.sched.Now())
	}
	return nil
}

// pace writes at the offered rate in 1 ms ticks, with bounded buffering
// so an overloaded connection exerts backpressure instead of growing the
// send buffer without limit.
func (w *TCPBulk) pace(tb *Testbed, started time.Duration) {
	const tick = time.Millisecond
	const maxBuffered = 512 * 1024
	perTick := int(w.cfg.RateBitsPerSecond * tick.Seconds() / 8)
	if perTick <= 0 {
		perTick = 1
	}
	var step func()
	step = func() {
		if w.failed || w.closed {
			return
		}
		if w.cfg.Duration > 0 && tb.sched.Now()-started >= w.cfg.Duration {
			if w.cfg.CloseWhenDone {
				w.conn.Close()
			}
			return
		}
		if w.conn.BufferedBytes() < maxBuffered {
			w.conn.Send(make([]byte, perTick))
		}
		tb.sched.After(tick, "tcpbulk.pace", step)
	}
	step()
}

// parts decomposes the transfer for sharded execution: the listener is
// installed here at the barrier (every shard parked), the connect-and-
// send loop runs on the client's shard. Server-side callbacks touch
// only server-written fields and read the server shard's clock; the
// client side owns everything else.
func (w *TCPBulk) parts(tb *Testbed) ([]workloadPart, error) {
	from := tb.byName[w.cfg.From]
	to := tb.byName[w.cfg.To]
	lst, err := to.tcp.Listen(w.cfg.DstPort)
	if err != nil {
		return nil, err
	}
	srvSched := to.host.Sched
	lst.OnAccept = func(c *tcp.Conn) {
		c.OnData = func(d []byte) {
			if w.delivered == 0 {
				w.firstByteAt = srvSched.Now()
			}
			w.delivered += len(d)
			w.lastByteAt = srvSched.Now()
		}
		c.OnClose = func() {
			w.closed = true
			c.Close()
		}
	}
	cliSched := from.host.Sched
	run := func() {
		conn, err := from.tcp.Connect(w.cfg.SrcPort, to.host.IP, w.cfg.DstPort)
		if err != nil {
			w.failed = true
			return
		}
		w.conn = conn
		if w.cfg.DisableCongestionControl {
			conn.DisableCongestionControl()
		}
		conn.OnFail = func() { w.failed = true }
		conn.OnConnected = func() {
			w.connected = true
			if w.cfg.Bytes > 0 {
				conn.Send(make([]byte, w.cfg.Bytes))
				if w.cfg.CloseWhenDone {
					conn.Close()
				}
				return
			}
			w.paceSharded(cliSched, cliSched.Now())
		}
	}
	return []workloadPart{{node: from, run: run}}, nil
}

// paceSharded is pace on the client shard's scheduler. It stops on the
// client-local clientClosed flag (set when this loop itself closes the
// connection) instead of the server-written closed marker.
func (w *TCPBulk) paceSharded(sched *sim.Scheduler, started time.Duration) {
	const tick = time.Millisecond
	const maxBuffered = 512 * 1024
	perTick := int(w.cfg.RateBitsPerSecond * tick.Seconds() / 8)
	if perTick <= 0 {
		perTick = 1
	}
	var step func()
	step = func() {
		if w.failed || w.clientClosed {
			return
		}
		if w.cfg.Duration > 0 && sched.Now()-started >= w.cfg.Duration {
			if w.cfg.CloseWhenDone {
				w.clientClosed = true
				w.conn.Close()
			}
			return
		}
		if w.conn.BufferedBytes() < maxBuffered {
			w.conn.Send(make([]byte, perTick))
		}
		sched.After(tick, "tcpbulk.pace", step)
	}
	step()
}

// Connected reports whether the handshake completed.
func (w *TCPBulk) Connected() bool { return w.connected }

// Failed reports a handshake or connection failure.
func (w *TCPBulk) Failed() bool { return w.failed }

// DeliveredBytes reports application bytes received in order at the
// server.
func (w *TCPBulk) DeliveredBytes() int { return w.delivered }

// GoodputBitsPerSecond reports delivered payload bits divided by the
// first-to-last-byte interval (0 until two deliveries happen).
func (w *TCPBulk) GoodputBitsPerSecond() float64 {
	dt := w.lastByteAt - w.firstByteAt
	if dt <= 0 || w.delivered == 0 {
		return 0
	}
	return float64(w.delivered*8) / dt.Seconds()
}

// CWND returns the sender's congestion window in segments.
func (w *TCPBulk) CWND() int { return w.conn.CWND() }

// Ssthresh returns the sender's slow-start threshold in segments.
func (w *TCPBulk) Ssthresh() int { return w.conn.Ssthresh() }

// InSlowStart reports the sender's congestion regime.
func (w *TCPBulk) InSlowStart() bool { return w.conn.InSlowStart() }

// SenderStats returns the client connection's protocol counters.
func (w *TCPBulk) SenderStats() tcp.Stats { return w.conn.Stats }

// UDPEchoConfig describes the UDP ping/echo workload behind Figure 8's
// round-trip-latency measurement.
type UDPEchoConfig struct {
	// Client and Server name the two hosts.
	Client, Server string
	// ServerPort is the echo port (client port is ServerPort+1 unless
	// ClientPort is set).
	ServerPort uint16
	ClientPort uint16
	// Size is the payload size in bytes (minimum 8 for the sequence
	// number; default 64).
	Size int
	// Interval paces the pings (default 1 ms).
	Interval time.Duration
	// Count bounds the pings (0 = until the run ends).
	Count int
}

// UDPEcho is a running echo workload handle.
type UDPEcho struct {
	cfg     UDPEchoConfig
	sent    int
	recvd   int
	rtts    []time.Duration
	pending map[uint64]time.Duration
}

var (
	_ workload        = (*UDPEcho)(nil)
	_ shardedWorkload = (*UDPEcho)(nil)
)

// AddUDPEcho stages a UDP echo workload.
func (tb *Testbed) AddUDPEcho(cfg UDPEchoConfig) (*UDPEcho, error) {
	if _, ok := tb.byName[cfg.Client]; !ok {
		return nil, fmt.Errorf("virtualwire: unknown host %q", cfg.Client)
	}
	if _, ok := tb.byName[cfg.Server]; !ok {
		return nil, fmt.Errorf("virtualwire: unknown host %q", cfg.Server)
	}
	if cfg.Size < 8 {
		cfg.Size = 64
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Millisecond
	}
	if cfg.ClientPort == 0 {
		cfg.ClientPort = cfg.ServerPort + 1
	}
	w := &UDPEcho{cfg: cfg, pending: make(map[uint64]time.Duration)}
	tb.workloads = append(tb.workloads, w)
	return w, nil
}

// echoRTTBuckets are the histogram bucket bounds for the echo RTT
// distribution, in seconds (100 µs .. 100 ms).
var echoRTTBuckets = []float64{
	100e-6, 250e-6, 500e-6, 1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3,
}

func (w *UDPEcho) start(tb *Testbed) error {
	client := tb.byName[w.cfg.Client]
	server := tb.byName[w.cfg.Server]
	rttHist := tb.reg.Histogram(w.cfg.Client, "workload", "udp_echo_rtt_seconds", echoRTTBuckets)
	srv, err := server.host.UDP.Bind(w.cfg.ServerPort)
	if err != nil {
		return err
	}
	srv.OnDatagram = func(src packet.IP, srcPort uint16, payload []byte) {
		_ = srv.SendTo(src, srcPort, payload)
	}
	cli, err := client.host.UDP.Bind(w.cfg.ClientPort)
	if err != nil {
		return err
	}
	cli.OnDatagram = func(_ packet.IP, _ uint16, payload []byte) {
		if len(payload) < 8 {
			return
		}
		seq := binary.BigEndian.Uint64(payload)
		sentAt, ok := w.pending[seq]
		if !ok {
			return
		}
		delete(w.pending, seq)
		w.recvd++
		rtt := tb.sched.Now() - sentAt
		w.rtts = append(w.rtts, rtt)
		rttHist.Observe(rtt.Seconds())
	}
	var ping func()
	ping = func() {
		if w.cfg.Count > 0 && w.sent >= w.cfg.Count {
			return
		}
		w.sent++
		seq := uint64(w.sent)
		payload := make([]byte, w.cfg.Size)
		binary.BigEndian.PutUint64(payload, seq)
		w.pending[seq] = tb.sched.Now()
		_ = cli.SendTo(server.host.IP, w.cfg.ServerPort, payload)
		tb.sched.After(w.cfg.Interval, "udpecho.ping", ping)
	}
	ping()
	return nil
}

// parts decomposes the echo workload: both sockets bind here at the
// barrier, the ping loop runs on the client's shard. The server handler
// only reflects datagrams; every workload field is client-written, with
// RTTs stamped from the client shard's clock.
func (w *UDPEcho) parts(tb *Testbed) ([]workloadPart, error) {
	client := tb.byName[w.cfg.Client]
	server := tb.byName[w.cfg.Server]
	rttHist := tb.reg.Histogram(w.cfg.Client, "workload", "udp_echo_rtt_seconds", echoRTTBuckets)
	srv, err := server.host.UDP.Bind(w.cfg.ServerPort)
	if err != nil {
		return nil, err
	}
	srv.OnDatagram = func(src packet.IP, srcPort uint16, payload []byte) {
		_ = srv.SendTo(src, srcPort, payload)
	}
	cli, err := client.host.UDP.Bind(w.cfg.ClientPort)
	if err != nil {
		return nil, err
	}
	sched := client.host.Sched
	cli.OnDatagram = func(_ packet.IP, _ uint16, payload []byte) {
		if len(payload) < 8 {
			return
		}
		seq := binary.BigEndian.Uint64(payload)
		sentAt, ok := w.pending[seq]
		if !ok {
			return
		}
		delete(w.pending, seq)
		w.recvd++
		rtt := sched.Now() - sentAt
		w.rtts = append(w.rtts, rtt)
		rttHist.Observe(rtt.Seconds())
	}
	run := func() {
		var ping func()
		ping = func() {
			if w.cfg.Count > 0 && w.sent >= w.cfg.Count {
				return
			}
			w.sent++
			seq := uint64(w.sent)
			payload := make([]byte, w.cfg.Size)
			binary.BigEndian.PutUint64(payload, seq)
			w.pending[seq] = sched.Now()
			_ = cli.SendTo(server.host.IP, w.cfg.ServerPort, payload)
			sched.After(w.cfg.Interval, "udpecho.ping", ping)
		}
		ping()
	}
	return []workloadPart{{node: client, run: run}}, nil
}

// Sent reports pings transmitted.
func (w *UDPEcho) Sent() int { return w.sent }

// Received reports echoes received.
func (w *UDPEcho) Received() int { return w.recvd }

// RTTs returns all round-trip samples.
func (w *UDPEcho) RTTs() []time.Duration {
	out := make([]time.Duration, len(w.rtts))
	copy(out, w.rtts)
	return out
}

// MeanRTT returns the average round-trip time (0 with no samples).
func (w *UDPEcho) MeanRTT() time.Duration {
	if len(w.rtts) == 0 {
		return 0
	}
	var sum time.Duration
	for _, r := range w.rtts {
		sum += r
	}
	return sum / time.Duration(len(w.rtts))
}

// UDPStreamConfig describes a constant-bit-rate datagram stream (no
// echo): the kind of traffic Rether's real-time mode exists to protect.
type UDPStreamConfig struct {
	// From and To name the hosts.
	From, To string
	// Port is the destination port (source is Port+1 unless SrcPort is
	// set).
	Port    uint16
	SrcPort uint16
	// Size is the datagram payload size (default 512).
	Size int
	// Interval paces the stream (default 1 ms).
	Interval time.Duration
	// Count bounds the datagrams (0 = until the run ends).
	Count int
}

// UDPStream is a running CBR workload handle.
type UDPStream struct {
	cfg   UDPStreamConfig
	sent  int
	recvd int
	// inter-arrival tracking for jitter analysis
	lastAt   time.Duration
	maxGap   time.Duration
	firstSet bool
}

var (
	_ workload        = (*UDPStream)(nil)
	_ shardedWorkload = (*UDPStream)(nil)
)

// AddUDPStream stages a one-way constant-bit-rate datagram stream.
func (tb *Testbed) AddUDPStream(cfg UDPStreamConfig) (*UDPStream, error) {
	if _, ok := tb.byName[cfg.From]; !ok {
		return nil, fmt.Errorf("virtualwire: unknown host %q", cfg.From)
	}
	if _, ok := tb.byName[cfg.To]; !ok {
		return nil, fmt.Errorf("virtualwire: unknown host %q", cfg.To)
	}
	if cfg.Size <= 0 {
		cfg.Size = 512
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Millisecond
	}
	if cfg.SrcPort == 0 {
		cfg.SrcPort = cfg.Port + 1
	}
	w := &UDPStream{cfg: cfg}
	tb.workloads = append(tb.workloads, w)
	return w, nil
}

func (w *UDPStream) start(tb *Testbed) error {
	from := tb.byName[w.cfg.From]
	to := tb.byName[w.cfg.To]
	sink, err := to.host.UDP.Bind(w.cfg.Port)
	if err != nil {
		return err
	}
	sink.OnDatagram = func(packet.IP, uint16, []byte) {
		now := tb.sched.Now()
		if w.firstSet {
			if gap := now - w.lastAt; gap > w.maxGap {
				w.maxGap = gap
			}
		}
		w.firstSet = true
		w.lastAt = now
		w.recvd++
	}
	src, err := from.host.UDP.Bind(w.cfg.SrcPort)
	if err != nil {
		return err
	}
	payload := make([]byte, w.cfg.Size)
	var tick func()
	tick = func() {
		if w.cfg.Count > 0 && w.sent >= w.cfg.Count {
			return
		}
		w.sent++
		_ = src.SendTo(to.host.IP, w.cfg.Port, payload)
		tb.sched.After(w.cfg.Interval, "udpstream.tick", tick)
	}
	tick()
	return nil
}

// parts decomposes the stream: the sink binds here at the barrier and
// owns the receive-side fields (recvd, gap tracking) on its own shard
// and clock; the tick loop runs on the sender's shard and owns sent.
func (w *UDPStream) parts(tb *Testbed) ([]workloadPart, error) {
	from := tb.byName[w.cfg.From]
	to := tb.byName[w.cfg.To]
	sink, err := to.host.UDP.Bind(w.cfg.Port)
	if err != nil {
		return nil, err
	}
	sinkSched := to.host.Sched
	sink.OnDatagram = func(packet.IP, uint16, []byte) {
		now := sinkSched.Now()
		if w.firstSet {
			if gap := now - w.lastAt; gap > w.maxGap {
				w.maxGap = gap
			}
		}
		w.firstSet = true
		w.lastAt = now
		w.recvd++
	}
	src, err := from.host.UDP.Bind(w.cfg.SrcPort)
	if err != nil {
		return nil, err
	}
	sched := from.host.Sched
	run := func() {
		payload := make([]byte, w.cfg.Size)
		var tick func()
		tick = func() {
			if w.cfg.Count > 0 && w.sent >= w.cfg.Count {
				return
			}
			w.sent++
			_ = src.SendTo(to.host.IP, w.cfg.Port, payload)
			sched.After(w.cfg.Interval, "udpstream.tick", tick)
		}
		tick()
	}
	return []workloadPart{{node: from, run: run}}, nil
}

// Sent reports datagrams transmitted.
func (w *UDPStream) Sent() int { return w.sent }

// Received reports datagrams delivered.
func (w *UDPStream) Received() int { return w.recvd }

// MaxInterArrival reports the largest gap between consecutive deliveries
// — the real-time metric a Rether reservation is supposed to bound.
func (w *UDPStream) MaxInterArrival() time.Duration { return w.maxGap }
