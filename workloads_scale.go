package virtualwire

import (
	"fmt"
	"math/rand"
	"time"

	"virtualwire/internal/tcp"
)

// Scale workloads for generated topologies: Incast (N senders converge
// on one receiver — the classic many-to-one switch-buffer stress) and
// ManyFlow (hundreds of independent TCP transfers spread over the
// fabric). Both derive their host sets from the testbed so campaigns can
// say "incast over 500 hosts" without naming 500 nodes.

// IncastConfig describes an N-to-1 TCP convergence workload.
type IncastConfig struct {
	// To names the receiver; default is the first host.
	To string
	// Senders names the sending hosts explicitly; empty means every
	// other host (capped by Count).
	Senders []string
	// Count caps the number of senders drawn from the default all-hosts
	// set (0 = no cap). Ignored when Senders is explicit.
	Count int
	// DstPort is the receiver's listening port (default 0x5000).
	DstPort uint16
	// SrcPort is every sender's source port (default 0x6000; senders are
	// distinct hosts, so the shared port is unambiguous).
	SrcPort uint16
	// Bytes is the per-sender transfer size (default 64 KiB).
	Bytes int
	// Stagger spaces the connection attempts (default 100 µs) so a
	// 500-way incast does not serialize every SYN into one burst.
	Stagger time.Duration
}

// Incast is a running N-to-1 workload handle.
type Incast struct {
	cfg       IncastConfig
	senders   []string
	delivered int
	completed int
	// senderFail holds one failure counter per sender. Under sharded
	// execution each sender's shard writes only its own slot (a shared
	// counter would be a cross-shard race); the legacy path uses the same
	// slots so Failed() sums identically either way.
	senderFail []int
}

var (
	_ workload        = (*Incast)(nil)
	_ shardedWorkload = (*Incast)(nil)
)

// AddIncast stages an N-to-1 TCP incast workload.
func (tb *Testbed) AddIncast(cfg IncastConfig) (*Incast, error) {
	if cfg.To == "" {
		if len(tb.nodes) == 0 {
			return nil, fmt.Errorf("virtualwire: incast needs hosts")
		}
		cfg.To = tb.nodes[0].name
	}
	if _, ok := tb.byName[cfg.To]; !ok {
		return nil, fmt.Errorf("virtualwire: unknown host %q", cfg.To)
	}
	if cfg.DstPort == 0 {
		cfg.DstPort = 0x5000
	}
	if cfg.SrcPort == 0 {
		cfg.SrcPort = 0x6000
	}
	if cfg.Bytes <= 0 {
		cfg.Bytes = 64 << 10
	}
	if cfg.Stagger <= 0 {
		cfg.Stagger = 100 * time.Microsecond
	}
	w := &Incast{cfg: cfg}
	if len(cfg.Senders) > 0 {
		for _, name := range cfg.Senders {
			if _, ok := tb.byName[name]; !ok {
				return nil, fmt.Errorf("virtualwire: unknown host %q", name)
			}
			if name == cfg.To {
				return nil, fmt.Errorf("virtualwire: incast sender %q is the receiver", name)
			}
		}
		w.senders = append([]string(nil), cfg.Senders...)
	} else {
		for _, n := range tb.nodes {
			if n.name == cfg.To {
				continue
			}
			w.senders = append(w.senders, n.name)
			if cfg.Count > 0 && len(w.senders) >= cfg.Count {
				break
			}
		}
		if len(w.senders) == 0 {
			return nil, fmt.Errorf("virtualwire: incast needs at least one sender")
		}
	}
	tb.workloads = append(tb.workloads, w)
	return w, nil
}

func (w *Incast) start(tb *Testbed) error {
	if err := w.setupReceiver(tb); err != nil {
		return err
	}
	for i, name := range w.senders {
		from := tb.byName[name]
		delay := time.Duration(i) * w.cfg.Stagger
		tb.sched.After(delay, "incast.connect", w.connectFunc(i, from, tb.byName[w.cfg.To]))
	}
	return nil
}

// setupReceiver installs the listener and allocates the per-sender
// failure slots; shared by the legacy and sharded paths.
func (w *Incast) setupReceiver(tb *Testbed) error {
	to := tb.byName[w.cfg.To]
	lst, err := to.tcp.Listen(w.cfg.DstPort)
	if err != nil {
		return err
	}
	lst.OnAccept = func(c *tcp.Conn) {
		got := 0
		c.OnData = func(d []byte) {
			w.delivered += len(d)
			before := got
			got += len(d)
			if before < w.cfg.Bytes && got >= w.cfg.Bytes {
				w.completed++
			}
		}
		c.OnClose = func() { c.Close() }
	}
	w.senderFail = make([]int, len(w.senders))
	return nil
}

// connectFunc returns sender i's connect-and-send closure. It touches
// only sender-local TCP state and the sender's own failure slot.
func (w *Incast) connectFunc(i int, from, to *Node) func() {
	return func() {
		conn, err := from.tcp.Connect(w.cfg.SrcPort, to.host.IP, w.cfg.DstPort)
		if err != nil {
			w.senderFail[i]++
			return
		}
		conn.OnFail = func() { w.senderFail[i]++ }
		conn.OnConnected = func() {
			conn.Send(make([]byte, w.cfg.Bytes))
			conn.Close()
		}
	}
}

// parts decomposes the incast for sharded execution: the receiver's
// listener is installed at the barrier; each sender gets one part on
// its own shard that schedules the staggered connect locally.
func (w *Incast) parts(tb *Testbed) ([]workloadPart, error) {
	if err := w.setupReceiver(tb); err != nil {
		return nil, err
	}
	to := tb.byName[w.cfg.To]
	parts := make([]workloadPart, 0, len(w.senders))
	for i, name := range w.senders {
		from := tb.byName[name]
		delay := time.Duration(i) * w.cfg.Stagger
		connect := w.connectFunc(i, from, to)
		sched := from.host.Sched
		parts = append(parts, workloadPart{node: from, run: func() {
			sched.After(delay, "incast.connect", connect)
		}})
	}
	return parts, nil
}

// Senders reports how many senders the workload targets.
func (w *Incast) Senders() int { return len(w.senders) }

// Completed reports senders whose full transfer arrived at the receiver.
func (w *Incast) Completed() int { return w.completed }

// DeliveredBytes reports total application bytes received.
func (w *Incast) DeliveredBytes() int { return w.delivered }

// Failed reports connections that failed to establish or aborted.
func (w *Incast) Failed() int {
	n := 0
	for _, f := range w.senderFail {
		n += f
	}
	return n
}

// ManyFlowConfig describes a fabric-wide mesh of independent TCP flows.
type ManyFlowConfig struct {
	// Hosts names the participating hosts; empty means all hosts.
	Hosts []string
	// Flows is the number of random (src, dst) pairs (default one per
	// host, capped at 4096).
	Flows int
	// BasePort is the first destination port; flow f listens on
	// BasePort+f on its destination and connects from BasePort+f on its
	// source, keeping every flow's demux key unique (default 0x7000).
	BasePort uint16
	// Bytes is the per-flow transfer size (default 16 KiB).
	Bytes int
	// PairSeed drives the pair selection (default 1). Like topology
	// wiring, pair choice is deliberately independent of the run seed so
	// reset and fresh testbeds replay the same flow matrix.
	PairSeed int64
	// Stagger spaces the connection attempts (default 50 µs).
	Stagger time.Duration
}

// ManyFlow is a running flow-mesh workload handle.
type ManyFlow struct {
	conf  ManyFlowConfig
	hosts []string
	flows int
	// Per-flow result slots: delivered/completed are written by the
	// flow's destination shard, failed by its source shard. Distinct
	// slots keep every write single-owner under sharded execution; the
	// legacy path uses the same slots so the accessors sum identically.
	flowDelivered []int
	flowCompleted []int
	flowFailed    []int
}

var (
	_ workload        = (*ManyFlow)(nil)
	_ shardedWorkload = (*ManyFlow)(nil)
)

// AddManyFlow stages a mesh of independent point-to-point TCP flows over
// random host pairs.
func (tb *Testbed) AddManyFlow(cfg ManyFlowConfig) (*ManyFlow, error) {
	w := &ManyFlow{conf: cfg}
	if len(cfg.Hosts) > 0 {
		for _, name := range cfg.Hosts {
			if _, ok := tb.byName[name]; !ok {
				return nil, fmt.Errorf("virtualwire: unknown host %q", name)
			}
		}
		w.hosts = append([]string(nil), cfg.Hosts...)
	} else {
		for _, n := range tb.nodes {
			w.hosts = append(w.hosts, n.name)
		}
	}
	if len(w.hosts) < 2 {
		return nil, fmt.Errorf("virtualwire: manyflow needs at least two hosts")
	}
	w.flows = cfg.Flows
	if w.flows <= 0 {
		w.flows = len(w.hosts)
	}
	if w.flows > 4096 {
		w.flows = 4096
	}
	if w.conf.BasePort == 0 {
		w.conf.BasePort = 0x7000
	}
	if w.conf.Bytes <= 0 {
		w.conf.Bytes = 16 << 10
	}
	if w.conf.PairSeed == 0 {
		w.conf.PairSeed = 1
	}
	if w.conf.Stagger <= 0 {
		w.conf.Stagger = 50 * time.Microsecond
	}
	tb.workloads = append(tb.workloads, w)
	return w, nil
}

func (w *ManyFlow) start(tb *Testbed) error {
	w.allocSlots()
	rng := rand.New(rand.NewSource(w.conf.PairSeed))
	n := len(w.hosts)
	for f := 0; f < w.flows; f++ {
		si := rng.Intn(n)
		di := rng.Intn(n - 1)
		if di >= si {
			di++
		}
		src := tb.byName[w.hosts[si]]
		dst := tb.byName[w.hosts[di]]
		port := w.conf.BasePort + uint16(f)
		if err := w.setupFlowListener(f, dst, port); err != nil {
			return err
		}
		delay := time.Duration(f) * w.conf.Stagger
		tb.sched.After(delay, "manyflow.connect", w.connectFunc(f, src, dst, port))
	}
	return nil
}

func (w *ManyFlow) allocSlots() {
	w.flowDelivered = make([]int, w.flows)
	w.flowCompleted = make([]int, w.flows)
	w.flowFailed = make([]int, w.flows)
}

// setupFlowListener installs flow f's listener on its destination; the
// accept callbacks write only flow f's destination-owned slots.
func (w *ManyFlow) setupFlowListener(f int, dst *Node, port uint16) error {
	lst, err := dst.tcp.Listen(port)
	if err != nil {
		return err
	}
	lst.OnAccept = func(c *tcp.Conn) {
		got := 0
		c.OnData = func(d []byte) {
			w.flowDelivered[f] += len(d)
			before := got
			got += len(d)
			if before < w.conf.Bytes && got >= w.conf.Bytes {
				w.flowCompleted[f]++
			}
		}
		c.OnClose = func() { c.Close() }
	}
	return nil
}

// connectFunc returns flow f's connect-and-send closure, touching only
// source-local TCP state and flow f's failure slot.
func (w *ManyFlow) connectFunc(f int, src, dst *Node, port uint16) func() {
	return func() {
		conn, err := src.tcp.Connect(port, dst.host.IP, port)
		if err != nil {
			w.flowFailed[f]++
			return
		}
		conn.OnFail = func() { w.flowFailed[f]++ }
		conn.OnConnected = func() {
			conn.Send(make([]byte, w.conf.Bytes))
			conn.Close()
		}
	}
}

// parts decomposes the mesh for sharded execution: pair selection and
// every listener registration happen at the barrier (the pair RNG is
// seeded from PairSeed, so the flow matrix matches the legacy path);
// each flow gets one part on its source's shard that schedules the
// staggered connect locally.
func (w *ManyFlow) parts(tb *Testbed) ([]workloadPart, error) {
	w.allocSlots()
	rng := rand.New(rand.NewSource(w.conf.PairSeed))
	n := len(w.hosts)
	parts := make([]workloadPart, 0, w.flows)
	for f := 0; f < w.flows; f++ {
		si := rng.Intn(n)
		di := rng.Intn(n - 1)
		if di >= si {
			di++
		}
		src := tb.byName[w.hosts[si]]
		dst := tb.byName[w.hosts[di]]
		port := w.conf.BasePort + uint16(f)
		if err := w.setupFlowListener(f, dst, port); err != nil {
			return nil, err
		}
		delay := time.Duration(f) * w.conf.Stagger
		connect := w.connectFunc(f, src, dst, port)
		sched := src.host.Sched
		parts = append(parts, workloadPart{node: src, run: func() {
			sched.After(delay, "manyflow.connect", connect)
		}})
	}
	return parts, nil
}

// Flows reports the number of staged flows.
func (w *ManyFlow) Flows() int { return w.flows }

// Completed reports flows whose full transfer arrived.
func (w *ManyFlow) Completed() int { return sumSlots(w.flowCompleted) }

// DeliveredBytes reports total application bytes received across flows.
func (w *ManyFlow) DeliveredBytes() int { return sumSlots(w.flowDelivered) }

// Failed reports flows that failed to establish or aborted.
func (w *ManyFlow) Failed() int { return sumSlots(w.flowFailed) }

func sumSlots(slots []int) int {
	n := 0
	for _, v := range slots {
		n += v
	}
	return n
}
