package virtualwire

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"time"

	"virtualwire/internal/metrics"
)

// Metrics aliases re-exported so callers can consume the observability
// layer without importing internal packages.
type (
	// MetricsRegistry is the testbed's live instrument registry (see
	// Testbed.Metrics).
	MetricsRegistry = metrics.Registry
	// MetricsSnapshot is one layer's instrument readings (see
	// Node.Snapshot).
	MetricsSnapshot = metrics.Snapshot
	// MetricsSample is one gathered reading, ready for export.
	MetricsSample = metrics.Sample
	// MetricsPoint is one sampled instant of the whole registry.
	MetricsPoint = metrics.Point
	// MetricsSeries is a run's sampled time series plus final readings.
	MetricsSeries = metrics.Series
)

// MetricsNode is the sentinel node label for testbed-global instruments
// (the scheduler and the medium).
const MetricsNode = "testbed"

// Metrics returns the live instrument registry. Layer sources are
// registered when the testbed is built (first Run or RunFor); direct
// instruments (for example workload histograms) may be created on it at
// any time.
func (tb *Testbed) Metrics() *MetricsRegistry { return tb.reg }

// MetricsSeries returns the run's sampled time series (empty unless
// Config.MetricsSampleInterval was set) together with a final gather of
// every instrument at the current virtual time.
func (tb *Testbed) MetricsSeries() MetricsSeries {
	s := MetricsSeries{FinalAt: tb.sched.Now(), Final: tb.reg.Gather()}
	if tb.sampler != nil {
		s.Interval = tb.sampler.Interval()
		s.Points = tb.sampler.Points()
	}
	return s
}

// WriteMetricsJSON writes a series as indented JSON.
func WriteMetricsJSON(w io.Writer, s MetricsSeries) error { return metrics.WriteJSON(w, s) }

// WriteMetricsCSV writes a series in long CSV format.
func WriteMetricsCSV(w io.Writer, s MetricsSeries) error { return metrics.WriteCSV(w, s) }

// WriteMetricsPrometheus writes samples in the Prometheus text
// exposition format (one name{node=...,layer=...} value line each).
func WriteMetricsPrometheus(w io.Writer, samples []MetricsSample) error {
	return metrics.WritePrometheus(w, samples)
}

// MetricsSummary condenses the registry at run end for the RunReport.
type MetricsSummary struct {
	// Instruments is the number of distinct readings gathered.
	Instruments int `json:"instruments"`
	// SampledPoints is how many time-series points the sampler holds.
	SampledPoints int `json:"sampled_points,omitempty"`
	// SampleInterval echoes Config.MetricsSampleInterval.
	SampleInterval time.Duration `json:"sample_interval_ns,omitempty"`
	// Totals sums the final counter readings across nodes, keyed
	// "layer/name" (gauges and histograms are omitted: summing
	// instantaneous values across nodes rarely means anything).
	Totals map[string]float64 `json:"totals,omitempty"`
}

// MarshalJSON writes the summary without reflection. A summary rides in
// every campaign record, and encoding/json's map encoder (sort + copy
// every key and value through reflect.Value) dominated the per-run
// allocation profile. Output is identical to the reflected encoding:
// fields in declaration order, zero values omitted, Totals keys sorted.
func (m MetricsSummary) MarshalJSON() ([]byte, error) {
	b := make([]byte, 0, 40+len(m.Totals)*40)
	b = append(b, `{"instruments":`...)
	b = strconv.AppendInt(b, int64(m.Instruments), 10)
	if m.SampledPoints != 0 {
		b = append(b, `,"sampled_points":`...)
		b = strconv.AppendInt(b, int64(m.SampledPoints), 10)
	}
	if m.SampleInterval != 0 {
		b = append(b, `,"sample_interval_ns":`...)
		b = strconv.AppendInt(b, int64(m.SampleInterval), 10)
	}
	if len(m.Totals) != 0 {
		b = append(b, `,"totals":{`...)
		keys := make([]string, 0, len(m.Totals))
		for k := range m.Totals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for i, k := range keys {
			if i > 0 {
				b = append(b, ',')
			}
			// Keys are "layer/name" identifiers: no characters that
			// JSON string encoding would escape.
			b = append(b, '"')
			b = append(b, k...)
			b = append(b, `":`...)
			b = appendJSONFloat(b, m.Totals[k])
		}
		b = append(b, '}')
	}
	b = append(b, '}')
	return b, nil
}

// appendJSONFloat formats a float64 exactly as encoding/json does, so
// the custom marshaller above stays byte-compatible with the reflected
// one.
func appendJSONFloat(b []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		// encoding/json trims "e-09" style exponents to "e-9".
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// totalsKey returns the interned "layer/name" Totals key, so a summary
// gathered every run concatenates each distinct key once per testbed
// lifetime instead of once per counter per run.
func (tb *Testbed) totalsKey(layer, name string) string {
	k := [2]string{layer, name}
	if s, ok := tb.totalsKeys[k]; ok {
		return s
	}
	if tb.totalsKeys == nil {
		tb.totalsKeys = make(map[[2]string]string)
	}
	s := layer + "/" + name
	tb.totalsKeys[k] = s
	return s
}

func (tb *Testbed) metricsSummary() MetricsSummary {
	final := tb.reg.Gather()
	sum := MetricsSummary{
		Instruments: len(final),
		Totals:      make(map[string]float64, 64),
	}
	for _, s := range final {
		if s.Kind != metrics.KindCounter {
			continue
		}
		// Free-list hit counters depend on whether the run started from a
		// fresh or a reused (Reset) testbed — the only observable the warm
		// pools change. Excluding them keeps RunReports bit-identical
		// across the two paths; the full readings stay available from
		// Metrics()/MetricsSeries.
		if (s.Layer == "pool" && s.Name == "hits") ||
			(s.Layer == "scheduler" && s.Name == "events_recycled") {
			continue
		}
		sum.Totals[tb.totalsKey(s.Layer, s.Name)] += s.Value
	}
	if tb.sampler != nil {
		sum.SampledPoints = tb.sampler.Len()
		sum.SampleInterval = tb.sampler.Interval()
	}
	return sum
}

// Snapshot returns this node's current instrument readings for one
// layer. Valid layers are "engine", "nic", "ip", "tcp", "rll" and
// "rether"; ok is false for a layer the node does not run (and for "tcp"
// before the testbed is built). This is the uniform replacement for the
// per-layer one-off accessors (EngineStats, RetherRingSize, ...).
func (n *Node) Snapshot(layer string) (MetricsSnapshot, bool) {
	switch layer {
	case "engine":
		return n.engine.Snapshot(), true
	case "nic":
		return n.host.NIC.Snapshot(), true
	case "ip":
		return n.host.IPv4.Snapshot(), true
	case "tcp":
		if n.tcp != nil {
			return n.tcp.Snapshot(), true
		}
	case "rll":
		if n.rll != nil {
			return n.rll.Snapshot(), true
		}
	case "rether":
		if n.rether != nil {
			return n.rether.Snapshot(), true
		}
	}
	return MetricsSnapshot{}, false
}

// SnapshotLayers lists the layers Node.Snapshot can report for this node
// right now.
func (n *Node) SnapshotLayers() []string {
	layers := []string{"engine", "nic", "ip"}
	if n.tcp != nil {
		layers = append(layers, "tcp")
	}
	if n.rll != nil {
		layers = append(layers, "rll")
	}
	if n.rether != nil {
		layers = append(layers, "rether")
	}
	return layers
}

// registerMetricSources wires every built layer into the registry with
// the uniform Snapshot hook; called once from build().
func (tb *Testbed) registerMetricSources() {
	if tb.shards != nil {
		// Sharded engine: one aggregate source each for the per-shard
		// schedulers and pools. Counter sums are shard-count invariant
		// (every event executes on exactly one queue, every frame cycles
		// through exactly one pool), so reports match the single-queue
		// readings byte for byte.
		tb.reg.RegisterSource(MetricsNode, "scheduler", tb.shardSchedulerSnapshot)
		tb.reg.RegisterSource(MetricsNode, "pool", tb.shardPoolSnapshot)
	} else {
		tb.reg.RegisterSource(MetricsNode, "scheduler", tb.sched.Snapshot)
		tb.reg.RegisterSource(MetricsNode, "pool", tb.pool.Snapshot)
	}
	if tb.ctl != nil {
		tb.reg.RegisterSource(MetricsNode, "controller", tb.ctl.Snapshot)
	}
	if tb.sw != nil {
		tb.reg.RegisterSource(MetricsNode, "switch", tb.sw.Snapshot)
	}
	if len(tb.fabric) > 0 {
		// The fabric registers as one aggregate source: per-switch sources
		// at fat-tree scale (hundreds of switches) would swamp every
		// gather and RunReport with keys nobody compares.
		tb.reg.RegisterSource(MetricsNode, "fabric", tb.fabricSnapshot)
	}
	if tb.bus != nil {
		tb.reg.RegisterSource(MetricsNode, "bus", tb.bus.Snapshot)
	}
	for _, n := range tb.nodes {
		tb.reg.RegisterSource(n.name, "nic", n.host.NIC.Snapshot)
		tb.reg.RegisterSource(n.name, "ip", n.host.IPv4.Snapshot)
		tb.reg.RegisterSource(n.name, "engine", n.engine.Snapshot)
		tb.reg.RegisterSource(n.name, "tcp", n.tcp.Snapshot)
		if n.rll != nil {
			tb.reg.RegisterSource(n.name, "rll", n.rll.Snapshot)
		}
		if n.rether != nil {
			tb.reg.RegisterSource(n.name, "rether", n.rether.Snapshot)
		}
	}
	if tb.cfg.MetricsSampleInterval > 0 {
		tb.sampler = metrics.NewSampler(tb.reg,
			tb.cfg.MetricsSampleInterval, tb.cfg.MetricsRingCapacity,
			tb.sched.Now,
			func(d time.Duration, fn func()) { tb.sched.After(d, "metrics.sample", fn) })
		tb.sampler.Start()
	}
}

// WriteMetricsFile writes the current series to w in the named format:
// "json", "csv" or "prom"/"prometheus" (the latter exports only the
// final gather, as Prometheus text carries no timestamps here).
func (tb *Testbed) WriteMetricsFile(w io.Writer, format string) error {
	s := tb.MetricsSeries()
	switch format {
	case "json":
		return metrics.WriteJSON(w, s)
	case "csv":
		return metrics.WriteCSV(w, s)
	case "prom", "prometheus":
		return metrics.WritePrometheus(w, s.Final)
	}
	return fmt.Errorf("virtualwire: unknown metrics format %q (want json, csv or prom)", format)
}
