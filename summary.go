package virtualwire

import (
	"fmt"

	"virtualwire/internal/fsl"
)

// ScenarioNames lists the SCENARIO blocks of a (possibly multi-scenario)
// FSL script without staging anything.
func ScenarioNames(src string) ([]string, error) {
	progs, err := fsl.CompileAll(src)
	if err != nil {
		return nil, scriptErr(err)
	}
	names := make([]string, 0, len(progs))
	for _, p := range progs {
		names = append(names, p.Name)
	}
	return names, nil
}

// CheckScript compiles src without building anything, verifying that the
// named scenario exists (any scenario when name is empty). Failures wrap
// ErrScriptParse, so a campaign can reject a bad spec before spending a
// single run on it.
func CheckScript(src, name string) error {
	progs, err := fsl.CompileAll(src)
	if err != nil {
		return scriptErr(err)
	}
	if name == "" {
		return nil
	}
	for _, p := range progs {
		if p.Name == name {
			return nil
		}
	}
	return scriptErr(fmt.Errorf("script has no scenario %q", name))
}

// LoadScriptScenario compiles a multi-scenario script and stages the
// named scenario (LoadScript requires exactly one SCENARIO block).
func (tb *Testbed) LoadScriptScenario(src, name string) error {
	progs, err := fsl.CompileAll(src)
	if err != nil {
		return scriptErr(err)
	}
	for _, p := range progs {
		if p.Name != name {
			continue
		}
		for _, nd := range p.Nodes {
			n, ok := tb.byName[nd.Name]
			if !ok {
				return fmt.Errorf("virtualwire: script node %q not in testbed", nd.Name)
			}
			if n.host.MAC != nd.MAC || n.host.IP != nd.IP {
				return fmt.Errorf("virtualwire: script node %q identity mismatch", nd.Name)
			}
		}
		tb.prog = p
		tb.compiled = nil
		return nil
	}
	return scriptErr(fmt.Errorf("script has no scenario %q", name))
}
