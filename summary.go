package virtualwire

import (
	"fmt"
	"strings"

	"virtualwire/internal/fsl"
)

// ScenarioNames lists the SCENARIO blocks of a (possibly multi-scenario)
// FSL script without staging anything.
func ScenarioNames(src string) ([]string, error) {
	progs, err := fsl.CompileAll(src)
	if err != nil {
		return nil, scriptErr(err)
	}
	names := make([]string, 0, len(progs))
	for _, p := range progs {
		names = append(names, p.Name)
	}
	return names, nil
}

// CheckScript compiles src without building anything, verifying that the
// named scenario exists (any scenario when name is empty). Failures wrap
// ErrScriptParse, so a campaign can reject a bad spec before spending a
// single run on it.
func CheckScript(src, name string) error {
	progs, err := fsl.CompileAll(src)
	if err != nil {
		return scriptErr(err)
	}
	if name == "" {
		return nil
	}
	for _, p := range progs {
		if p.Name == name {
			return nil
		}
	}
	return scriptErr(fmt.Errorf("script has no scenario %q", name))
}

// LoadScriptScenario compiles a multi-scenario script and stages the
// named scenario (LoadScript requires exactly one SCENARIO block).
func (tb *Testbed) LoadScriptScenario(src, name string) error {
	progs, err := fsl.CompileAll(src)
	if err != nil {
		return scriptErr(err)
	}
	for _, p := range progs {
		if p.Name != name {
			continue
		}
		for _, nd := range p.Nodes {
			n, ok := tb.byName[nd.Name]
			if !ok {
				return fmt.Errorf("virtualwire: script node %q not in testbed", nd.Name)
			}
			if n.host.MAC != nd.MAC || n.host.IP != nd.IP {
				return fmt.Errorf("virtualwire: script node %q identity mismatch", nd.Name)
			}
		}
		tb.prog = p
		return nil
	}
	return scriptErr(fmt.Errorf("script has no scenario %q", name))
}

// Summary renders a human-readable post-run report: scenario outcome,
// per-node engine activity, and protocol-layer statistics. Intended for
// CLI output and example programs.
//
// Deprecated: the same data now travels structured in the RunReport
// returned by Run/RunContext (Result, Nodes, Metrics); render it with
// RunReport.Text or marshal it with RunReport.WriteJSON. This shim is
// kept so existing callers and examples continue to compile.
func (tb *Testbed) Summary() string {
	var b strings.Builder
	if tb.ctl != nil {
		res := tb.ctl.Result()
		fmt.Fprintf(&b, "scenario %q: %s\n", tb.prog.Name, res)
		for _, e := range res.Errors {
			fmt.Fprintf(&b, "  error: %s\n", e)
		}
	} else {
		b.WriteString("no scenario loaded\n")
	}
	fmt.Fprintf(&b, "virtual time %v, %d events\n", tb.sched.Now(), tb.sched.Executed())
	for _, n := range tb.nodes {
		st := n.engine.Stats
		fmt.Fprintf(&b, "%-8s engine: %d intercepted, %d matched, %d counter updates, %d actions",
			n.name, st.PacketsIntercepted, st.PacketsMatched, st.CounterUpdates, st.ActionsFired)
		if faults := st.Drops + st.Delays + st.Dups + st.Modifies + st.Reorders; faults > 0 {
			fmt.Fprintf(&b, " (faults: %d drop, %d delay, %d dup, %d modify, %d reorder)",
				st.Drops, st.Delays, st.Dups, st.Modifies, st.Reorders)
		}
		if n.engine.Failed() {
			b.WriteString(" [CRASHED by FAIL]")
		}
		b.WriteString("\n")
		if st.CtlSent+st.CtlRcvd > 0 {
			fmt.Fprintf(&b, "%-8s control plane: %d sent / %d received (%d bytes)\n",
				"", st.CtlSent, st.CtlRcvd, st.CtlBytes)
		}
		if n.rll != nil {
			rs := n.rll.Stats
			fmt.Fprintf(&b, "%-8s rll: %d data, %d retransmitted, %d acks, %d crc drops\n",
				"", rs.DataSent, rs.DataRetrans, rs.AcksSent, rs.CRCDrops)
		}
		if n.rether != nil {
			ts := n.rether.Stats
			fmt.Fprintf(&b, "%-8s rether: %d tokens sent, %d received, %d deaths declared, ring size %d\n",
				"", ts.TokensSent, ts.TokensReceived, ts.NodesDeclaredDead, len(n.rether.Ring()))
		}
		ns := n.host.NIC.Stats
		fmt.Fprintf(&b, "%-8s nic: %d tx / %d rx frames, %d collisions, %d crc errors\n",
			"", ns.TxFrames, ns.RxFrames, ns.Collisions, ns.CRCErrors)
	}
	return b.String()
}
