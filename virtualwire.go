// Package virtualwire is a reproduction of "VirtualWire: A Fault
// Injection and Analysis Tool for Network Protocols" (De, Neogi, Chiueh;
// ICDCS 2003): a distributed network fault injection and analysis system,
// together with the complete simulated testbed it runs on.
//
// A Testbed assembles hosts on a simulated Ethernet (switch or shared
// bus), inserts a VirtualWire engine between each host's link layer and
// IP stack, optionally adds the Reliable Link Layer and the Rether
// token-passing protocol, compiles a Fault Specification Language script
// into the six execution tables, distributes them over the control plane,
// runs the scenario against real protocol traffic (a from-scratch TCP,
// UDP, Rether), and reports injected faults and flagged specification
// violations.
//
// Minimal use:
//
//	tb, _ := virtualwire.New(virtualwire.Config{})
//	tb.AddNodesFromScript(script)    // hosts from the NODE_TABLE
//	tb.LoadScript(script)            // compile + stage the scenario
//	tb.AddTCPBulk(virtualwire.TCPBulkConfig{From: "node1", To: "node2",
//	    SrcPort: 0x6000, DstPort: 0x4000, Bytes: 1 << 20})
//	report, _ := tb.Run(30 * time.Second)
//	fmt.Println(report.Result, report.Passed)
package virtualwire

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"virtualwire/internal/core"
	"virtualwire/internal/ether"
	"virtualwire/internal/fsl"
	"virtualwire/internal/metrics"
	"virtualwire/internal/packet"
	"virtualwire/internal/rether"
	"virtualwire/internal/rll"
	"virtualwire/internal/sim"
	"virtualwire/internal/stack"
	"virtualwire/internal/tcp"
	"virtualwire/internal/trace"
)

// Aliases re-exported so the public API is self-contained.
type (
	// Result is the scenario outcome (explicit STOP, inactivity
	// timeout, flagged errors).
	Result = core.Result
	// ErrorReport is one FLAG_ERR occurrence.
	ErrorReport = core.ErrorReport
	// CostModel charges virtual processing time per packet in the
	// engines (see the Figure 8 experiment).
	CostModel = core.CostModel
	// TraceEntry is one captured frame.
	TraceEntry = trace.Entry
)

// Removed in this release: the deprecated `Report` alias and
// `Testbed.Summary()`. Runs return a RunReport; render it with
// RunReport.Text (the structured replacement for Summary) or marshal it
// with RunReport.WriteJSON.

// ClassifierStrategy selects the per-engine packet classification
// algorithm (re-export of core.Strategy).
type ClassifierStrategy = core.Strategy

// Classifier strategies.
const (
	// ClassifierDefault keeps the historical behavior: linear scan
	// unless Config.IndexedClassifier is set.
	ClassifierDefault = core.StrategyDefault
	// ClassifierLinear forces the paper's linear first-match scan.
	ClassifierLinear = core.StrategyLinear
	// ClassifierIndexed forces the ethertype-indexed ablation.
	ClassifierIndexed = core.StrategyIndexed
	// ClassifierCompiled installs the dispatch tree compiled once per
	// program (CompileScript) and shared across all engines.
	ClassifierCompiled = core.StrategyCompiled
	// ClassifierAuto picks compiled for tables of
	// core.AutoCompileThreshold+ filters, linear below.
	ClassifierAuto = core.StrategyAuto
)

// ParseClassifierStrategy resolves a strategy name ("", "default",
// "linear", "indexed", "compiled", "auto").
func ParseClassifierStrategy(s string) (ClassifierStrategy, error) {
	switch s {
	case "", "default":
		return ClassifierDefault, nil
	case "linear":
		return ClassifierLinear, nil
	case "indexed":
		return ClassifierIndexed, nil
	case "compiled":
		return ClassifierCompiled, nil
	case "auto":
		return ClassifierAuto, nil
	}
	return ClassifierDefault, fmt.Errorf("virtualwire: unknown classifier strategy %q", s)
}

// MediumKind selects the testbed wiring.
type MediumKind int

// Medium kinds.
const (
	// MediumSwitch is a store-and-forward switch with half-duplex port
	// segments (the paper's 100 Mbps switch).
	MediumSwitch MediumKind = iota + 1
	// MediumBus is a single CSMA/CD shared bus (Rether's natural home).
	MediumBus
	// MediumSwitchFullDuplex uses full-duplex ports (ablation).
	MediumSwitchFullDuplex
)

// Config parametrizes a testbed.
type Config struct {
	// Seed drives all randomness; equal seeds give identical runs.
	Seed int64
	// Medium selects switch (default) or shared bus wiring.
	Medium MediumKind
	// BitsPerSecond is the link bandwidth (default 100 Mbps).
	BitsPerSecond float64
	// Propagation is the per-segment propagation delay (default 500ns).
	Propagation time.Duration
	// BitErrorRate is the per-bit corruption probability on the wire.
	BitErrorRate float64
	// RLL inserts the Reliable Link Layer under every engine.
	RLL bool
	// RLLWindow is the RLL go-back-N window (default 32).
	RLLWindow int
	// Cost is the engine processing-cost model (zero = free).
	Cost CostModel
	// IndexedClassifier enables the ethertype-indexed classifier
	// ablation instead of the paper's linear scan.
	IndexedClassifier bool
	// Classifier selects the classification strategy explicitly
	// (overrides IndexedClassifier when non-default); ClassifierCompiled
	// installs the dispatch tree compiled once per script.
	Classifier ClassifierStrategy
	// Topology, when non-nil with a Kind other than TopoSingle, replaces
	// the single switch with a generated multi-switch fabric (star,
	// ring, fat-tree, random) joined by trunk links — the 1000-node
	// scale substrate. Requires a switch Medium. See docs/TOPOLOGIES.md.
	Topology *TopologySpec
	// TopologyFaults schedules deterministic virtual-time fabric faults
	// — trunk failure/restore/flap, per-trunk latency/BER degradation,
	// switch crash/restart — against the generated Topology. A tree
	// trunk's death triggers STP-style reconvergence after the spec's
	// ReconvergeDelay: the best redundant trunk unblocks (deterministic
	// tie-break by wiring order) and stale MAC entries flush. Requires a
	// multi-switch Topology. See docs/TOPOLOGIES.md, "Fault axes".
	TopologyFaults []TopologyFaultSpec
	// Shards selects the conservative-windowed parallel engine: the
	// fabric is partitioned into this many shards, each running its own
	// event queue on its own goroutine, synchronized at trunk-lookahead
	// window barriers. Output is byte-identical at any shard count.
	// 0 (the default) keeps the classic single-queue engine; ShardsAuto
	// picks min(GOMAXPROCS, edge switches); explicit counts are clamped
	// to the fabric size. Requires a switch medium and is incompatible
	// with TraceCapacity and MetricsSampleInterval. See
	// docs/PERFORMANCE.md, "Sharded execution".
	Shards int
	// TraceCapacity, when positive, records a tcpdump-like trace of up
	// to this many frames (tap directly above each NIC).
	TraceCapacity int
	// ControlNode names the host carrying the programming front-end;
	// default is the script's first node.
	ControlNode string
	// LaunchRetryInterval is the base virtual-time interval at which the
	// controller re-sends INIT chunks to nodes that have not acknowledged
	// (default core.DefaultInitRetryInterval). Rounds back off
	// exponentially.
	LaunchRetryInterval time.Duration
	// LaunchMaxAttempts bounds INIT distributions per node (default
	// core.DefaultInitMaxAttempts).
	LaunchMaxAttempts int
	// LaunchDeadline bounds the launch phase (default
	// core.DefaultLaunchDeadline): if any node stays silent past it, the
	// run terminates with Result.LaunchFailed and the silent nodes in
	// Report.Unreachable instead of waiting forever.
	LaunchDeadline time.Duration
	// Pcap, when non-nil, receives a live libpcap-format capture of all
	// frames traversing PcapNode's interface (tcpdump/Wireshark
	// compatible).
	Pcap io.Writer
	// PcapNode names the capture point (default: the first host).
	PcapNode string
	// MetricsSampleInterval, when positive, samples every registered
	// instrument at this virtual-time cadence into a ring of time-series
	// points (read back with MetricsSeries; see docs/OBSERVABILITY.md).
	MetricsSampleInterval time.Duration
	// MetricsRingCapacity bounds the sampled points kept (default 4096;
	// when full the oldest point is overwritten).
	MetricsRingCapacity int
}

// Node is one testbed host.
type Node struct {
	tb     *Testbed
	name   string
	host   *stack.Host
	engine *core.Engine
	rll    *rll.RLL
	rether *rether.Layer
	tcp    *tcp.Stack
}

// Name returns the host name.
func (n *Node) Name() string { return n.name }

// MAC returns the hardware address as a string.
func (n *Node) MAC() string { return n.host.MAC.String() }

// IP returns the IPv4 address as a string.
func (n *Node) IP() string { return n.host.IP.String() }

// CounterValue reads a scenario counter homed on this node (0, false if
// the scenario has no such counter).
func (n *Node) CounterValue(name string) (int64, bool) {
	return n.engine.CounterValueByName(name)
}

// Failed reports whether a FAIL action crashed this node.
func (n *Node) Failed() bool { return n.engine.Failed() }

// RetherRingSize reports the node's current ring membership size (0 if
// Rether is not installed).
//
// Deprecated: read the "ring_size" gauge of Node.Snapshot("rether")
// instead; this one-off accessor is kept for compatibility.
func (n *Node) RetherRingSize() int {
	if n.rether == nil {
		return 0
	}
	return len(n.rether.Ring())
}

// RequestRTSlots asks the Rether ring monitor to reserve per-cycle
// real-time transmission slots for this node (admission control). The
// callback fires inside the simulation with the grant outcome. Valid
// after the testbed is built (i.e. once Run has been called, combine
// with RunFor to observe the effect).
func (n *Node) RequestRTSlots(slots int, cb func(granted bool, slots int)) error {
	if n.rether == nil {
		return fmt.Errorf("virtualwire: host %q does not run Rether", n.name)
	}
	n.rether.RequestReservation(slots, func(r rether.ReserveResult) {
		if cb != nil {
			cb(r.Granted, r.Slots)
		}
	})
	return nil
}

// EngineStats returns a snapshot of the node's engine counters.
//
// Deprecated: use Node.Snapshot("engine") for the uniform metrics view;
// this one-off accessor is kept for compatibility.
func (n *Node) EngineStats() core.EngineStats { return n.engine.Stats }

// InjectedFault describes one fault an engine applied, for reports.
type InjectedFault struct {
	At         time.Duration `json:"at_ns"`
	Node       string        `json:"node"`
	Kind       string        `json:"kind"`
	PacketType string        `json:"packet_type,omitempty"`
}

// InjectedFaults returns every fault applied across the testbed, merged
// in time order (ties broken by node name) — the run's injection
// journal. The Report returned by Run carries the same data in
// Report.Faults; this accessor remains as a thin delegate.
func (tb *Testbed) InjectedFaults() []InjectedFault {
	var out []InjectedFault
	// Fabric-level injections (trunk failures, flaps, switch crashes,
	// reconvergence events) ride the same journal as engine faults: the
	// fault surface composes instead of bypassing the FSL reporting.
	out = append(out, tb.topo.log...)
	for _, n := range tb.nodes {
		for _, f := range n.engine.FaultLog() {
			pkt := ""
			if tb.prog != nil && f.Filter >= 0 && int(f.Filter) < len(tb.prog.Filters) {
				pkt = tb.prog.Filters[f.Filter].Name
			}
			out = append(out, InjectedFault{
				At: f.At, Node: n.name, Kind: f.Kind.String(), PacketType: pkt,
			})
		}
	}
	// Per-engine logs are already time-ordered; a stable sort with a
	// node-name tie-break merges them deterministically.
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// Testbed is a complete VirtualWire deployment: hosts, media, engines,
// optional RLL/Rether, workloads and one staged scenario.
type Testbed struct {
	cfg   Config
	sched *sim.Scheduler
	pool  *ether.FramePool
	sw    *ether.Switch
	bus   *ether.SharedBus

	nodes  []*Node
	byName map[string]*Node

	// fabric is the generated multi-switch topology (empty for the
	// classic single switch / bus); wired once by build, kept by Reset.
	fabric    []*ether.Switch
	trunks    []fabricTrunk // built trunks in wiring order
	fabricAdj [][]int       // switch index -> trunk indices, wiring order
	hostSeq   int           // AddHostGroup identity sequence

	// Spanning-forest scratch buffers (build + reconvergence) and the
	// interned per-trunk gauge names for small fabrics.
	forestTree      []bool
	forestVisited   []bool
	forestQueue     []int
	trunkStateNames []string

	// topo is the topology fault engine's runtime state (trunk
	// failure/flap schedules, pending reconvergence, failover metrics).
	topo topoFaultState

	prog     *core.Program
	compiled *CompiledScript // non-nil when prog came from LoadCompiled
	ctl      *core.Controller
	tracing  *trace.Buffer
	reg      *metrics.Registry
	sampler  *metrics.Sampler

	totalsKeys map[[2]string]string // interned "layer/name" summary keys

	retherRing []string
	retherCfg  rether.Config
	rtStreams  []portPair

	workloads []workload
	built     bool

	// shards is the windowed parallel engine's runtime (nil unless
	// Config.Shards is set); created in build.
	shards *shardRuntime
}

type portPair struct {
	srcPort, dstPort uint16
}

type workload interface {
	start(tb *Testbed) error
}

// New creates an empty testbed.
func New(cfg Config) (*Testbed, error) {
	if cfg.Medium == 0 {
		cfg.Medium = MediumSwitch
	}
	if err := validateShardConfig(&cfg); err != nil {
		return nil, err
	}
	tb := &Testbed{
		cfg:    cfg,
		sched:  sim.NewScheduler(cfg.Seed),
		pool:   ether.NewFramePool(),
		byName: make(map[string]*Node),
		reg:    metrics.NewRegistry(),
	}
	switch cfg.Medium {
	case MediumSwitch, MediumSwitchFullDuplex:
		if tb.topologyActive() {
			// The fabric's switches are created in build(), once the host
			// count (which sizes auto topologies) is known.
			break
		}
		tb.sw = ether.NewSwitch(tb.sched, ether.SwitchConfig{
			BitsPerSecond: cfg.BitsPerSecond,
			Propagation:   cfg.Propagation,
			BitErrorRate:  cfg.BitErrorRate,
			FullDuplex:    cfg.Medium == MediumSwitchFullDuplex,
			Pool:          tb.pool,
		})
	case MediumBus:
		if tb.topologyActive() {
			return nil, fmt.Errorf("virtualwire: topology %v requires a switch medium", cfg.Topology.Kind)
		}
		tb.bus = ether.NewSharedBus(tb.sched, ether.BusConfig{
			BitsPerSecond: cfg.BitsPerSecond,
			Propagation:   cfg.Propagation,
			BitErrorRate:  cfg.BitErrorRate,
			Pool:          tb.pool,
		})
	default:
		return nil, fmt.Errorf("virtualwire: unknown medium %d", cfg.Medium)
	}
	if cfg.TraceCapacity > 0 {
		tb.tracing = trace.NewBuffer(cfg.TraceCapacity)
	}
	return tb, nil
}

// AddHost adds a host with the given identity. Must be called before Run.
func (tb *Testbed) AddHost(name, mac, ip string) (*Node, error) {
	if tb.built {
		return nil, fmt.Errorf("virtualwire: testbed already built")
	}
	if _, dup := tb.byName[name]; dup {
		return nil, fmt.Errorf("virtualwire: host %q already added", name)
	}
	m, err := packet.ParseMAC(mac)
	if err != nil {
		return nil, err
	}
	addr, err := packet.ParseIP(ip)
	if err != nil {
		return nil, err
	}
	return tb.addHost(name, m, addr)
}

// addHost is AddHost after identity parsing — also the entry point for
// compiled scripts, whose NODE_TABLE already carries parsed addresses.
func (tb *Testbed) addHost(name string, m packet.MAC, addr packet.IP) (*Node, error) {
	if tb.built {
		return nil, fmt.Errorf("virtualwire: testbed already built")
	}
	if _, dup := tb.byName[name]; dup {
		return nil, fmt.Errorf("virtualwire: host %q already added", name)
	}
	h := stack.NewHost(tb.sched, name, m, addr)
	switch {
	case tb.topologyActive():
		// Attachment is deferred to buildFabric, which round-robins hosts
		// across the fabric's edge switches once their count is known.
	case tb.sw != nil:
		tb.sw.AttachHost(h.NIC)
	default:
		tb.bus.Attach(h.NIC)
	}
	n := &Node{
		tb:     tb,
		name:   name,
		host:   h,
		engine: core.NewEngine(tb.sched, m),
	}
	n.engine.Cost = tb.cfg.Cost
	n.engine.UseIndexedClassifier = tb.cfg.IndexedClassifier
	n.engine.ClassifyStrategy = tb.cfg.Classifier
	if tb.cfg.RLL {
		n.rll = rll.New(tb.sched, m, rll.Config{Window: tb.cfg.RLLWindow})
		n.rll.SetPool(tb.pool)
		h.NIC.DeliverCorrupt = true // the RLL validates its own CRC
	}
	tb.nodes = append(tb.nodes, n)
	tb.byName[name] = n
	return n, nil
}

// AddNodesFromScript creates one host per NODE_TABLE row of an FSL
// script.
func (tb *Testbed) AddNodesFromScript(src string) error {
	s, err := fsl.Parse(src)
	if err != nil {
		return scriptErr(err)
	}
	for _, nd := range s.Nodes {
		if _, err := tb.AddHost(nd.Name, nd.MAC, nd.IP); err != nil {
			return err
		}
	}
	return nil
}

// Node returns a host by name.
func (tb *Testbed) Node(name string) (*Node, bool) {
	n, ok := tb.byName[name]
	return n, ok
}

// Nodes returns all hosts in addition order.
func (tb *Testbed) Nodes() []*Node {
	out := make([]*Node, len(tb.nodes))
	copy(out, tb.nodes)
	return out
}

// InstallRether runs the Rether token-passing protocol on the named
// hosts, in the given ring order. RT port pairs registered with
// AddRTStream are served from the real-time queue.
func (tb *Testbed) InstallRether(ringOrder []string, cfg RetherConfig) error {
	if tb.built {
		return fmt.Errorf("virtualwire: testbed already built")
	}
	for _, name := range ringOrder {
		if _, ok := tb.byName[name]; !ok {
			return fmt.Errorf("virtualwire: rether ring names unknown host %q", name)
		}
	}
	tb.retherRing = append([]string(nil), ringOrder...)
	tb.retherCfg = rether.Config{
		BEQuota:          cfg.BEQuota,
		RTQuota:          cfg.RTQuota,
		TokenAckTimeout:  cfg.TokenAckTimeout,
		TokenRetries:     cfg.TokenRetries,
		TokenIdleTimeout: cfg.TokenIdleTimeout,
	}
	return nil
}

// RetherConfig tunes the Rether installation (zero values select the
// paper-faithful defaults, including 3 token transmissions before a node
// is declared dead).
type RetherConfig struct {
	BEQuota          int
	RTQuota          int
	TokenAckTimeout  time.Duration
	TokenRetries     int
	TokenIdleTimeout time.Duration
}

// AddRTStream marks TCP/UDP traffic with the given source and destination
// ports as real-time for Rether's reservation queue.
func (tb *Testbed) AddRTStream(srcPort, dstPort uint16) {
	tb.rtStreams = append(tb.rtStreams, portPair{srcPort, dstPort})
}

// LoadScript compiles an FSL script and stages its (single) scenario.
// Every node in the script's NODE_TABLE must already exist with matching
// MAC and IP.
func (tb *Testbed) LoadScript(src string) error {
	prog, err := fsl.Compile(src)
	if err != nil {
		return scriptErr(err)
	}
	for _, nd := range prog.Nodes {
		n, ok := tb.byName[nd.Name]
		if !ok {
			return fmt.Errorf("virtualwire: script node %q not in testbed", nd.Name)
		}
		if n.host.MAC != nd.MAC || n.host.IP != nd.IP {
			return fmt.Errorf("virtualwire: script node %q identity mismatch (script %s/%s, testbed %s/%s)",
				nd.Name, nd.MAC, nd.IP, n.MAC(), n.IP())
		}
	}
	tb.prog = prog
	tb.compiled = nil
	return nil
}

// build assembles every host's layer chain and the controller.
func (tb *Testbed) build() error {
	if tb.built {
		return nil
	}
	tb.built = true
	if tb.topologyActive() {
		if err := tb.buildFabric(); err != nil {
			return err
		}
	}
	if err := tb.stageTopoFaults(); err != nil {
		return err
	}
	inRing := make(map[string]bool, len(tb.retherRing))
	var ringMACs []packet.MAC
	for _, name := range tb.retherRing {
		inRing[name] = true
		ringMACs = append(ringMACs, tb.byName[name].host.MAC)
	}
	var pcapWriter *trace.PcapWriter
	if tb.cfg.Pcap != nil {
		pw, err := trace.NewPcapWriter(tb.cfg.Pcap)
		if err != nil {
			return err
		}
		pcapWriter = pw
	}
	pcapNode := tb.cfg.PcapNode
	if pcapNode == "" && len(tb.nodes) > 0 {
		pcapNode = tb.nodes[0].name
	}
	for _, n := range tb.nodes {
		// Layers run on the node's scheduler — tb.sched everywhere except
		// sharded fabrics, where buildFabric has rebound each host to its
		// shard's queue.
		var layers []stack.Layer
		if tb.tracing != nil {
			layers = append(layers, trace.NewTap(n.host.Sched, n.name, tb.tracing))
		}
		if pcapWriter != nil && n.name == pcapNode {
			layers = append(layers, trace.NewPcapTap(n.host.Sched, pcapWriter))
		}
		if n.rll != nil {
			layers = append(layers, n.rll)
		}
		layers = append(layers, n.engine)
		if inRing[n.name] {
			rcfg := tb.retherCfg
			rcfg.Ring = ringMACs
			n.rether = rether.New(n.host.Sched, n.host.MAC, rcfg)
			if len(tb.rtStreams) > 0 {
				streams := append([]portPair(nil), tb.rtStreams...)
				n.rether.ClassifyRT = func(fr *ether.Frame) bool {
					return matchesRTStream(fr, streams)
				}
			}
			layers = append(layers, n.rether)
		}
		n.host.Build(layers...)
		n.tcp = tcp.NewStack(n.host)
	}
	// Static ARP: everyone knows everyone (the Node Table).
	for _, a := range tb.nodes {
		for _, b := range tb.nodes {
			a.host.Neighbors[b.host.IP] = b.host.MAC
		}
	}
	for _, name := range tb.retherRing {
		tb.byName[name].rether.Start()
	}
	if tb.prog != nil {
		ctlName := tb.cfg.ControlNode
		if ctlName == "" {
			ctlName = tb.prog.Nodes[0].Name
		}
		ctlID, ok := tb.prog.NodeByName(ctlName)
		if !ok {
			return fmt.Errorf("virtualwire: control node %q not in script", ctlName)
		}
		ctl, err := core.NewController(tb.byName[ctlName].host.Sched, tb.prog, tb.byName[ctlName].engine, ctlID)
		if err != nil {
			return err
		}
		if tb.cfg.LaunchRetryInterval > 0 {
			ctl.InitRetryInterval = tb.cfg.LaunchRetryInterval
		}
		if tb.cfg.LaunchMaxAttempts > 0 {
			ctl.InitMaxAttempts = tb.cfg.LaunchMaxAttempts
		}
		if tb.cfg.LaunchDeadline > 0 {
			ctl.LaunchDeadline = tb.cfg.LaunchDeadline
		}
		if tb.compiled != nil && tb.compiled.prog == tb.prog {
			ctl.SetInitBlob(tb.compiled.initBlob)
			// Engines receiving that blob over the wire can adopt the
			// shared program without ever gob-decoding it.
			for _, n := range tb.nodes {
				n.engine.SeedProgramCache(tb.compiled.initBlob, tb.compiled.prog)
			}
		}
		tb.ctl = ctl
	}
	if tb.shardMode() {
		tb.finishShardBuild()
	}
	tb.registerMetricSources()
	return nil
}

func matchesRTStream(fr *ether.Frame, streams []portPair) bool {
	d := fr.Data
	if fr.EtherType() != packet.EtherTypeIPv4 || len(d) < packet.OffTCPDport+2 {
		return false
	}
	proto := d[packet.OffIPProto]
	if proto != packet.ProtoTCP && proto != packet.ProtoUDP {
		return false
	}
	sp := uint16(d[packet.OffTCPSport])<<8 | uint16(d[packet.OffTCPSport+1])
	dp := uint16(d[packet.OffTCPDport])<<8 | uint16(d[packet.OffTCPDport+1])
	for _, s := range streams {
		if (sp == s.srcPort && dp == s.dstPort) || (sp == s.dstPort && dp == s.srcPort) {
			return true
		}
	}
	return false
}

// Run builds the testbed (if needed), launches the scenario, starts the
// workloads once every engine is initialized, and runs until the horizon
// or until the scenario finishes and all traffic drains. It is a thin
// wrapper around RunContext with a background context.
func (tb *Testbed) Run(horizon time.Duration) (RunReport, error) {
	return tb.RunContext(context.Background(), horizon)
}

// ctxPollEvents is how many simulation events RunContext executes
// between context polls. Events are sub-microsecond of real time, so
// cancellation still lands within a fraction of a millisecond while the
// hot loop stays free of per-event channel operations.
const ctxPollEvents = 64

// RunContext is Run with cooperative cancellation: the context is
// polled at event-loop granularity (between simulation events, never
// mid-event), so cancelling it — or letting its deadline expire — stops
// the run promptly with a partial RunReport describing everything that
// happened up to the interruption.
//
// The returned error is nil for a run that reached its horizon or
// finished its scenario (inspect the report for the verdict). When the
// context interrupts the run, the partial report is returned together
// with an error wrapping ctx.Err(); if the context's deadline expired
// the error additionally matches ErrHorizonExceeded, which the campaign
// executor's retry policy treats as transient.
func (tb *Testbed) RunContext(ctx context.Context, horizon time.Duration) (RunReport, error) {
	if err := tb.build(); err != nil {
		return RunReport{}, err
	}
	if tb.shardMode() {
		return tb.runShardedContext(ctx, horizon)
	}
	start := tb.sched.Now()
	if tb.ctl != nil {
		startWorkloads := func() {
			for _, w := range tb.workloads {
				w := w
				tb.sched.After(0, "vw.workload", func() {
					_ = w.start(tb)
				})
			}
		}
		tb.ctl.OnStarted = startWorkloads
		if err := tb.ctl.Launch(); err != nil {
			return RunReport{}, err
		}
	} else {
		for _, w := range tb.workloads {
			if err := w.start(tb); err != nil {
				return RunReport{}, err
			}
		}
	}
	// The run loop: execute events up to the horizon, stopping early if
	// the scenario finishes, the queue drains, or the context fires.
	// Events strictly past the horizon are never executed (RunUntil
	// semantics); on a clean exit the clock is advanced to the horizon so
	// a subsequent RunFor continues from there.
	deadline := start + horizon
	done := ctx.Done() // nil for context.Background(): polling elides
	countdown := ctxPollEvents
	var ctxErr error
	for {
		if done != nil {
			countdown--
			if countdown <= 0 {
				countdown = ctxPollEvents
				select {
				case <-done:
					ctxErr = ctx.Err()
				default:
				}
				if ctxErr != nil {
					break
				}
			}
		}
		if tb.ctl != nil && tb.ctl.Finished() {
			break
		}
		next, ok := tb.sched.PeekTime()
		if !ok || next > deadline {
			// Drained or nothing left before the horizon: idle time
			// still passes.
			if tb.sched.Now() < deadline {
				if err := tb.sched.RunUntil(deadline); err != nil {
					return RunReport{}, err
				}
			}
			break
		}
		tb.sched.Step()
	}
	rep := tb.assembleRunReport(start, tb.sched.Executed())
	return finishRunReport(rep, ctxErr)
}

// assembleRunReport gathers the run outcome shared by the legacy and
// sharded engines: duration, scenario verdict, fault journal, per-node
// reports and the metrics digest.
func (tb *Testbed) assembleRunReport(start time.Duration, events uint64) RunReport {
	rep := RunReport{
		Seed:     tb.cfg.Seed,
		Duration: tb.sched.Now() - start,
		Events:   events,
	}
	if tb.ctl != nil {
		rep.Scenario = tb.prog.Name
		rep.Result = tb.ctl.Result()
		rep.Passed = rep.Result.Passed(tb.prog.InactivityTimeout > 0)
		for _, nid := range rep.Result.Unreachable {
			rep.Unreachable = append(rep.Unreachable, tb.prog.Nodes[nid].Name)
		}
	} else {
		rep.Passed = true
	}
	rep.Verdict = verdict(rep.Result, tb.ctl != nil)
	rep.Faults = tb.InjectedFaults()
	rep.Errors = append([]ErrorReport(nil), rep.Result.Errors...)
	rep.Nodes = tb.nodeReports()
	rep.Metrics = tb.metricsSummary()
	return rep
}

// finishRunReport applies the context-interruption error wrapping shared
// by both engines.
func finishRunReport(rep RunReport, ctxErr error) (RunReport, error) {
	if ctxErr != nil {
		rep.Passed = false
		if errors.Is(ctxErr, context.DeadlineExceeded) {
			return rep, fmt.Errorf("virtualwire: run interrupted at t=%v: %w: %w",
				rep.Duration, ErrHorizonExceeded, ctxErr)
		}
		return rep, fmt.Errorf("virtualwire: run interrupted at t=%v: %w",
			rep.Duration, ctxErr)
	}
	return rep, nil
}

// RunFor advances the simulation by d. It builds the testbed if needed,
// so staged experiments can warm traffic up (through the node-level
// APIs) before Run launches the scenario; note that neither the staged
// scenario nor the registered workloads start until Run is called.
func (tb *Testbed) RunFor(d time.Duration) error {
	if err := tb.build(); err != nil {
		return err
	}
	if tb.shardMode() {
		ctxErr, err := tb.runWindowed(context.Background(), tb.sched.Now()+d)
		if err != nil {
			return err
		}
		return ctxErr
	}
	return tb.sched.RunUntil(tb.sched.Now() + d)
}

// Now returns the current virtual time.
func (tb *Testbed) Now() time.Duration { return tb.sched.Now() }

// Trace returns the captured frames (empty unless Config.TraceCapacity
// was set).
func (tb *Testbed) Trace() []TraceEntry {
	if tb.tracing == nil {
		return nil
	}
	return tb.tracing.Entries()
}

// TraceFilter returns captured frames whose summary, node or direction
// matches all given substrings.
func (tb *Testbed) TraceFilter(substrings ...string) []TraceEntry {
	if tb.tracing == nil {
		return nil
	}
	return tb.tracing.Filter(substrings...)
}

// ScenarioResult returns the scenario outcome so far (valid after Run).
//
// Deprecated: the RunReport returned by Run/RunContext carries the same
// data in RunReport.Result and RunReport.Errors; this accessor remains
// as a thin shim for existing callers.
func (tb *Testbed) ScenarioResult() Result {
	if tb.ctl == nil {
		return Result{}
	}
	return tb.ctl.Result()
}

// DumpTables renders the compiled six tables of the loaded script.
func (tb *Testbed) DumpTables() string {
	if tb.prog == nil {
		return ""
	}
	return tb.prog.Dump()
}
