package virtualwire

import (
	"fmt"

	"virtualwire/internal/core"
	"virtualwire/internal/fsl"
)

// CompiledScript is an FSL script compiled exactly once: the immutable
// execution tables plus the pre-encoded INIT distribution blob. A
// CompiledScript is read-only after construction and safe to share
// across any number of testbeds and goroutines, so a campaign compiles
// each scenario variant once and every worker installs the shared tables
// with Testbed.LoadCompiled instead of re-parsing the source per run.
type CompiledScript struct {
	src      string
	prog     *core.Program
	initBlob []byte
}

// CompileScript compiles an FSL script with exactly one SCENARIO block.
// Failures wrap ErrScriptParse.
func CompileScript(src string) (*CompiledScript, error) {
	prog, err := fsl.Compile(src)
	if err != nil {
		return nil, scriptErr(err)
	}
	return newCompiledScript(src, prog)
}

// CompileScriptScenario compiles a (possibly multi-scenario) FSL script
// and selects the named scenario; an empty name requires exactly one
// SCENARIO block, like CompileScript. Failures wrap ErrScriptParse.
func CompileScriptScenario(src, scenario string) (*CompiledScript, error) {
	if scenario == "" {
		return CompileScript(src)
	}
	progs, err := fsl.CompileAll(src)
	if err != nil {
		return nil, scriptErr(err)
	}
	for _, p := range progs {
		if p.Name == scenario {
			return newCompiledScript(src, p)
		}
	}
	return nil, scriptErr(fmt.Errorf("script has no scenario %q", scenario))
}

func newCompiledScript(src string, prog *core.Program) (*CompiledScript, error) {
	blob, err := core.EncodeProgram(prog)
	if err != nil {
		return nil, err
	}
	// Build the classifier dispatch tree eagerly, alongside the INIT
	// blob: compile-once artifacts both, shared read-only by every engine
	// that adopts this program (Config.Classifier: compiled/auto).
	prog.CompiledDispatch()
	return &CompiledScript{src: src, prog: prog, initBlob: blob}, nil
}

// Scenario returns the compiled scenario's name.
func (cs *CompiledScript) Scenario() string { return cs.prog.Name }

// Source returns the FSL source the script was compiled from.
func (cs *CompiledScript) Source() string { return cs.src }

// NodeNames returns the NODE_TABLE host names in table order.
func (cs *CompiledScript) NodeNames() []string {
	out := make([]string, len(cs.prog.Nodes))
	for i, nd := range cs.prog.Nodes {
		out[i] = nd.Name
	}
	return out
}

// AddNodesFromCompiled creates one host per NODE_TABLE row of a compiled
// script — AddNodesFromScript without the re-parse.
func (tb *Testbed) AddNodesFromCompiled(cs *CompiledScript) error {
	for _, nd := range cs.prog.Nodes {
		if _, err := tb.addHost(nd.Name, nd.MAC, nd.IP); err != nil {
			return err
		}
	}
	return nil
}

// LoadCompiled stages a pre-compiled scenario — LoadScript without the
// per-testbed compile. Every node of the script's NODE_TABLE must
// already exist with matching identity. The staged tables stay shared:
// the testbed never mutates them, and the controller distributes the
// script's pre-encoded INIT blob instead of re-encoding per launch.
func (tb *Testbed) LoadCompiled(cs *CompiledScript) error {
	for _, nd := range cs.prog.Nodes {
		n, ok := tb.byName[nd.Name]
		if !ok {
			return fmt.Errorf("virtualwire: script node %q not in testbed", nd.Name)
		}
		if n.host.MAC != nd.MAC || n.host.IP != nd.IP {
			return fmt.Errorf("virtualwire: script node %q identity mismatch (script %s/%s, testbed %s/%s)",
				nd.Name, nd.MAC, nd.IP, n.MAC(), n.IP())
		}
	}
	tb.prog = cs.prog
	tb.compiled = cs
	return nil
}

// Reset rewinds a built testbed to its pristine pre-run state under a
// new seed: the scheduler (cancelling every outstanding event and timer),
// the media, every host's protocol layers, the engines and controller,
// all metrics and any trace buffer. The compiled tables, layer wiring,
// static ARP and registered metric sources survive, so a reused testbed
// runs the same scenario again without re-parsing, re-encoding or
// re-wiring anything — the core of the campaign executor's
// compile-once/reset-to-reuse pipeline.
//
// Registered workloads are cleared (re-add them before the next Run); a
// Config.Pcap writer, being an external stream, keeps whatever was
// already written. Reset before the first Run/RunFor is an error.
func (tb *Testbed) Reset(seed int64) error {
	if !tb.built {
		return fmt.Errorf("virtualwire: Reset before the testbed was built (call Run first)")
	}
	tb.cfg.Seed = seed
	tb.sched.Reset(seed)
	if tb.shards != nil {
		for i := 1; i < tb.shards.count; i++ {
			tb.shards.scheds[i].Reset(deriveShardSeed(seed, uint64(i)))
		}
	}
	if tb.sw != nil {
		tb.sw.Reset()
	}
	for _, sw := range tb.fabric {
		// Clears learned MACs, counters and fault state (down switches,
		// failed ports, failed/degraded trunk media); trunk wiring
		// survives. Spanning-tree blocking is restored to the build-time
		// layout below — reconvergence may have moved it during the run.
		sw.Reset()
	}
	for i := range tb.trunks {
		tr := &tb.trunks[i]
		tr.failed = false
		if tb.trunkBlocked(i) == tr.inTree {
			tb.setTrunkBlocked(i, !tr.inTree)
		}
		if tr.ch != nil {
			tr.ch.SetProfile(tr.baseProp, tr.baseBER)
		} else if tr.link != nil {
			tr.link.SetProfile(tr.baseProp, tr.baseBER)
		}
	}
	tb.resetTopoFaults()
	if tb.bus != nil {
		tb.bus.Reset()
	}
	for _, n := range tb.nodes {
		n.host.Reset()
		if n.tcp != nil {
			n.tcp.Reset()
		}
		if n.rll != nil {
			n.rll.Reset()
		}
		n.engine.Reset()
		if n.rether != nil {
			n.rether.Reset()
		}
	}
	// The pool resets only after every layer above drained its leftover
	// frames back (NIC transmit queues, RLL windows): those Puts belong
	// to the run being discarded, not the next one.
	tb.pool.Reset()
	if tb.shards != nil {
		// Extra shard pools reset under the same ordering rule; trunk
		// mailbox frames were recycled by the switch resets above (the
		// trunkHalf case drains undelivered deposits into their source
		// pool). Component generators reseed in place (no allocation) and
		// the workload start flag clears with the discarded run.
		for i := 1; i < tb.shards.count; i++ {
			tb.shards.pools[i].Reset()
		}
		tb.assignComponentRands(seed)
		tb.shards.startPending = false
		// Trunk fail/degrade faults moved the conservative lookahead during
		// the discarded run; the restored fabric re-derives it.
		tb.recomputeShardLookahead()
	}
	// Restart the token ring only after every member is back to zero.
	for _, name := range tb.retherRing {
		tb.byName[name].rether.Start()
	}
	if tb.ctl != nil {
		tb.ctl.Reset()
	}
	tb.reg.Reset()
	if tb.sampler != nil {
		tb.sampler.Reset()
		tb.sampler.Start()
	}
	if tb.tracing != nil {
		tb.tracing.Reset()
	}
	tb.workloads = tb.workloads[:0]
	return nil
}
