package virtualwire

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// RunReport is the unified outcome of a Run/RunContext: one
// JSON-marshalable value carrying the full result — scenario verdict,
// injection journal, flagged errors, unreachable nodes, per-node layer
// readings and a metrics digest — so callers no longer stitch it
// together from ScenarioResult, Summary, InjectedFaults and per-node
// accessors.
type RunReport struct {
	// Scenario is the staged scenario's name; empty when no script was
	// loaded.
	Scenario string `json:"scenario,omitempty"`
	// Seed echoes Config.Seed: together with the testbed construction
	// calls it identifies the run completely (equal seeds, equal runs).
	Seed int64 `json:"seed"`
	// Verdict condenses the outcome to one word: "passed", "flagged",
	// "inactivity", "launch_failed", "not_started", "horizon" (ran to
	// the horizon without an explicit STOP), or "no_scenario".
	Verdict string `json:"verdict"`
	// Result is the scenario outcome; zero-valued when no script was
	// loaded.
	Result Result `json:"result"`
	// Passed applies the conventional criterion: started, no flagged
	// errors, and an explicit STOP when the script declares an
	// inactivity timeout.
	Passed bool `json:"passed"`
	// Duration is the virtual time the run covered.
	Duration time.Duration `json:"virtual_ns"`
	// Events is the number of simulation events executed.
	Events uint64 `json:"events"`
	// Faults is the run's injection journal, merged across nodes in
	// time order (the same data Testbed.InjectedFaults returns).
	Faults []InjectedFault `json:"faults,omitempty"`
	// Errors collects every FLAG_ERR report, in arrival order.
	Errors []ErrorReport `json:"errors,omitempty"`
	// Unreachable names the nodes that never acknowledged INIT when the
	// launch was abandoned (Result.LaunchFailed); empty otherwise.
	Unreachable []string `json:"unreachable,omitempty"`
	// Nodes carries each host's per-layer instrument readings at run
	// end — the data Summary used to render, in a structured form.
	Nodes []NodeReport `json:"nodes,omitempty"`
	// Metrics digests the instrument registry at run end; the full
	// series is available from Testbed.MetricsSeries.
	Metrics MetricsSummary `json:"metrics"`
}

// NodeReport is one host's slice of a RunReport: its terminal state and
// every layer's instrument readings (the same values Node.Snapshot
// returns, keyed layer then metric name).
type NodeReport struct {
	Name    string                        `json:"name"`
	Crashed bool                          `json:"crashed,omitempty"`
	Layers  map[string]map[string]float64 `json:"layers,omitempty"`
}

// MarshalJSON writes the report without reflection, like
// MetricsSummary.MarshalJSON: the nested Layers maps otherwise dominate
// per-record encoding cost in campaigns. Output matches the reflected
// encoding (declaration order, omitted zero values, sorted map keys).
func (n NodeReport) MarshalJSON() ([]byte, error) {
	b := make([]byte, 0, 64+len(n.Layers)*256)
	b = append(b, `{"name":`...)
	b = appendJSONString(b, n.Name)
	if n.Crashed {
		b = append(b, `,"crashed":true`...)
	}
	if len(n.Layers) != 0 {
		b = append(b, `,"layers":{`...)
		layers := make([]string, 0, len(n.Layers))
		for l := range n.Layers {
			layers = append(layers, l)
		}
		sort.Strings(layers)
		for i, l := range layers {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendJSONString(b, l)
			b = append(b, `:{`...)
			vals := n.Layers[l]
			names := make([]string, 0, len(vals))
			for name := range vals {
				names = append(names, name)
			}
			sort.Strings(names)
			for j, name := range names {
				if j > 0 {
					b = append(b, ',')
				}
				b = appendJSONString(b, name)
				b = append(b, ':')
				b = appendJSONFloat(b, vals[name])
			}
			b = append(b, '}')
		}
		b = append(b, '}')
	}
	b = append(b, '}')
	return b, nil
}

// appendJSONString quotes s the way encoding/json would. Identifiers —
// the overwhelmingly common case for node, layer and metric names — take
// the allocation-free fast path; anything needing escapes falls back to
// the real encoder.
func appendJSONString(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= 0x7f || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			enc, _ := json.Marshal(s)
			return append(b, enc...)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

// verdict condenses a result into RunReport.Verdict.
func verdict(r Result, hasScenario bool) string {
	switch {
	case !hasScenario:
		return "no_scenario"
	case r.LaunchFailed:
		return "launch_failed"
	case !r.Started:
		return "not_started"
	case len(r.Errors) > 0:
		return "flagged"
	case r.Inactivity:
		return "inactivity"
	case r.Stopped:
		return "stopped"
	default:
		return "horizon"
	}
}

// WriteJSON writes the report as indented JSON. The encoding is
// deterministic: slices preserve run order and maps marshal with sorted
// keys, so equal runs produce byte-identical documents.
func (r RunReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Text renders the report for humans: verdict, flagged errors, fault
// journal size and per-node layer activity. It is the structured
// replacement for Testbed.Summary.
func (r RunReport) Text() string {
	var b strings.Builder
	if r.Scenario != "" {
		fmt.Fprintf(&b, "scenario %q: %s (verdict %s)\n", r.Scenario, r.Result, r.Verdict)
	} else {
		fmt.Fprintf(&b, "no scenario loaded (verdict %s)\n", r.Verdict)
	}
	for _, e := range r.Errors {
		fmt.Fprintf(&b, "  error: %s\n", e)
	}
	if len(r.Unreachable) > 0 {
		fmt.Fprintf(&b, "  unreachable: %s\n", strings.Join(r.Unreachable, ", "))
	}
	fmt.Fprintf(&b, "virtual time %v, %d events, %d fault(s) injected\n",
		r.Duration, r.Events, len(r.Faults))
	for _, n := range r.Nodes {
		fmt.Fprintf(&b, "%-8s", n.Name)
		if eng, ok := n.Layers["engine"]; ok {
			fmt.Fprintf(&b, " engine: %.0f intercepted, %.0f matched, %.0f actions",
				eng["packets_intercepted"], eng["packets_matched"], eng["actions_fired"])
		}
		if n.Crashed {
			b.WriteString(" [CRASHED by FAIL]")
		}
		b.WriteString("\n")
	}
	return b.String()
}

// nodeReports gathers every host's layer snapshots for the report.
func (tb *Testbed) nodeReports() []NodeReport {
	out := make([]NodeReport, 0, len(tb.nodes))
	for _, n := range tb.nodes {
		nr := NodeReport{
			Name:    n.name,
			Crashed: n.engine.Failed(),
			Layers:  make(map[string]map[string]float64),
		}
		for _, layer := range n.SnapshotLayers() {
			snap, ok := n.Snapshot(layer)
			if !ok {
				continue
			}
			vals := make(map[string]float64, len(snap.Values))
			for _, v := range snap.Values {
				vals[v.Name] = v.Value
			}
			nr.Layers[layer] = vals
		}
		out = append(out, nr)
	}
	return out
}
