package virtualwire

import (
	"strings"
	"testing"
	"time"
)

// TestRetherReservationViaFacade exercises the admission-control API end
// to end on the Figure 6 testbed.
func TestRetherReservationViaFacade(t *testing.T) {
	script := readScript(t, "fig6_rether_failure.fsl")
	tb, err := New(Config{Seed: 51, Medium: MediumBus})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AddNodesFromScript(script); err != nil {
		t.Fatal(err)
	}
	if err := tb.InstallRether([]string{"node1", "node2", "node3", "node4"},
		RetherConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := tb.LoadScript(script); err != nil {
		t.Fatal(err)
	}
	// Build happens inside Run; start with a short idle spin.
	if _, err := tb.Run(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	node4, _ := tb.Node("node4")
	var granted bool
	var slots int
	if err := node4.RequestRTSlots(12, func(g bool, s int) { granted = g; slots = s }); err != nil {
		t.Fatalf("request: %v", err)
	}
	if err := tb.RunFor(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !granted || slots != 12 {
		t.Errorf("reservation: granted=%v slots=%d", granted, slots)
	}
	// A host without Rether reports an error.
	tb2, _ := New(Config{Seed: 52})
	n, err := tb2.AddHost("x", "00:00:00:00:00:33", "10.9.9.9")
	if err != nil {
		t.Fatal(err)
	}
	if err := n.RequestRTSlots(1, nil); err == nil {
		t.Error("reservation on a non-Rether host succeeded")
	}
}

// TestRetherWithRLLUnderBitErrors combines every layer: Rether over the
// engines over the RLL on a noisy bus. The ring must stay intact (no
// false failure detection from masked bit errors) and data must flow.
func TestRetherWithRLLUnderBitErrors(t *testing.T) {
	script := readScript(t, "fig6_rether_failure.fsl")
	tb, err := New(Config{
		Seed:         53,
		Medium:       MediumBus,
		RLL:          true,
		BitErrorRate: 5e-8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AddNodesFromScript(script); err != nil {
		t.Fatal(err)
	}
	if err := tb.InstallRether([]string{"node1", "node2", "node3", "node4"},
		RetherConfig{}); err != nil {
		t.Fatal(err)
	}
	// No scenario script loaded: this is a pure substrate soak.
	echoServer, _ := tb.Node("node4")
	_ = echoServer
	bulk, err := tb.AddTCPBulk(TCPBulkConfig{
		From: "node1", To: "node4",
		SrcPort: 0x6000, DstPort: 0x4000, Bytes: 128 * 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if bulk.DeliveredBytes() != 128*1024 {
		t.Fatalf("delivered %d", bulk.DeliveredBytes())
	}
	for _, name := range []string{"node1", "node2", "node3", "node4"} {
		n, _ := tb.Node(name)
		if got := n.RetherRingSize(); got != 4 {
			t.Errorf("%s ring size = %d; bit errors leaked past the RLL into failure detection", name, got)
		}
	}
}

// TestTestbedMisuse covers the builder's error paths.
func TestTestbedMisuse(t *testing.T) {
	tb, _ := New(Config{})
	if _, err := tb.AddHost("a", "zz:bad:mac", "10.0.0.1"); err == nil {
		t.Error("bad MAC accepted")
	}
	if _, err := tb.AddHost("a", "00:00:00:00:00:01", "999.0.0.1"); err == nil {
		t.Error("bad IP accepted")
	}
	if _, err := tb.AddHost("a", "00:00:00:00:00:01", "10.0.0.1"); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.AddHost("a", "00:00:00:00:00:02", "10.0.0.2"); err == nil {
		t.Error("duplicate host accepted")
	}
	if err := tb.InstallRether([]string{"ghost"}, RetherConfig{}); err == nil {
		t.Error("rether ring with unknown host accepted")
	}
	if _, err := tb.AddTCPBulk(TCPBulkConfig{From: "ghost", To: "a", Bytes: 1}); err == nil {
		t.Error("workload with unknown host accepted")
	}
	if _, err := tb.AddTCPBulk(TCPBulkConfig{From: "a", To: "a"}); err == nil {
		t.Error("workload without Bytes or Rate accepted")
	}
	if _, err := tb.AddUDPEcho(UDPEchoConfig{Client: "ghost", Server: "a"}); err == nil {
		t.Error("echo with unknown host accepted")
	}
	if err := tb.LoadScript("SCENARIO"); err == nil {
		t.Error("malformed script accepted")
	}
	if err := tb.RunFor(time.Second); err != nil {
		t.Errorf("RunFor before Run now builds the testbed itself, got %v", err)
	}
	if _, err := New(Config{Medium: MediumKind(99)}); err == nil {
		t.Error("unknown medium accepted")
	}
}

// TestMediumBusEndToEnd runs the plain facade over the shared bus.
func TestMediumBusEndToEnd(t *testing.T) {
	tb, err := New(Config{Seed: 54, Medium: MediumBus})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.AddHost("a", "00:00:00:00:00:01", "10.0.0.1"); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.AddHost("b", "00:00:00:00:00:02", "10.0.0.2"); err != nil {
		t.Fatal(err)
	}
	echo, err := tb.AddUDPEcho(UDPEchoConfig{Client: "a", Server: "b", ServerPort: 7, Count: 50})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if echo.Received() != 50 {
		t.Errorf("received %d/50 on the bus", echo.Received())
	}
}

// TestNodeAccessors covers the small identity surface of Node.
func TestNodeAccessors(t *testing.T) {
	tb, _ := New(Config{})
	n, err := tb.AddHost("node9", "00:46:61:af:fe:09", "192.168.1.9")
	if err != nil {
		t.Fatal(err)
	}
	if n.Name() != "node9" {
		t.Errorf("Name = %q", n.Name())
	}
	if n.MAC() != "00:46:61:af:fe:09" {
		t.Errorf("MAC = %q", n.MAC())
	}
	if n.IP() != "192.168.1.9" {
		t.Errorf("IP = %q", n.IP())
	}
	if n.Failed() {
		t.Error("fresh node failed")
	}
	if n.RetherRingSize() != 0 {
		t.Error("ring size without rether")
	}
	if _, ok := n.CounterValue("nope"); ok {
		t.Error("counter value without a program")
	}
	if got := tb.Nodes(); len(got) != 1 || got[0] != n {
		t.Errorf("Nodes() = %v", got)
	}
	if _, ok := tb.Node("ghost"); ok {
		t.Error("ghost node found")
	}
	if tb.DumpTables() != "" {
		t.Error("DumpTables without a script")
	}
	if tr := tb.Trace(); tr != nil {
		t.Errorf("Trace without capacity: %v", tr)
	}
}

// TestGenerateScenariosFacade smoke-tests the public generation wrapper.
func TestGenerateScenariosFacade(t *testing.T) {
	scs, err := GenerateScenarios(GenConfig{
		Prologue: `
FILTER_TABLE
f: (34 2 0x6000), (36 2 0x4000), (47 1 0x10 0x10)
END
NODE_TABLE
a 00:00:00:00:00:01 10.0.0.1
b 00:00:00:00:00:02 10.0.0.2
END
`,
		PacketType: "f", From: "a", To: "b", Dir: "RECV",
		Faults:      []FaultKind{FaultDrop},
		Occurrences: []int{4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 1 || !strings.Contains(scs[0].Script, "DROP") {
		t.Errorf("scenarios: %+v", scs)
	}
}
