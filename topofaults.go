package virtualwire

// Topology fault engine: the fabric itself as a fault surface. Trunk
// failure/restore/flap, per-trunk latency/BER degradation and switch
// crash/restart are scheduled in virtual time from
// Config.TopologyFaults and applied deterministically by both engines:
// the legacy single-queue engine schedules them as ordinary events,
// while the sharded windowed engine applies them at window barriers —
// window ends never cross a pending fault time, so the live-trunk set
// (and with it the conservative lookahead) is constant within any
// window and the output stays byte-identical at every shard count.
//
// A topology change triggers STP-style reconvergence after the spec's
// ReconvergeDelay: the spanning forest over live trunks is recomputed
// (deterministic tie-break by wiring order — see spanningForest), the
// best redundant trunk unblocks, stale MAC entries flush fabric-wide,
// and the failover is counted in the fabric metrics and the fault
// journal. See docs/TOPOLOGIES.md, "Fault axes".

import (
	"fmt"
	"sort"
	"time"
)

// TopologyFaultKind selects a fabric fault.
type TopologyFaultKind int

// Topology fault kinds.
const (
	// TrunkDown fails a trunk at At: both end ports go dead, queued
	// egress frames drop (counted as port queue drops), and frames
	// already on the wire are discarded at the far port. A tree trunk's
	// death triggers reconvergence.
	TrunkDown TopologyFaultKind = iota + 1
	// TrunkUp restores a failed trunk at At. The trunk stays blocked
	// until reconvergence re-admits it to the tree (STP-style).
	TrunkUp
	// TrunkFlap expands into Count down/up cycles starting at At: down
	// at the start of each Period, up halfway through it.
	TrunkFlap
	// TrunkDegrade overrides the trunk's propagation delay and/or bit
	// error rate at At (the link stays up; no reconvergence).
	TrunkDegrade
	// SwitchDown crashes a switch at At: every ingress frame is
	// discarded and its forwarding pipeline drops. Triggers
	// reconvergence (the switch leaves the tree).
	SwitchDown
	// SwitchUp restarts a crashed switch at At and triggers
	// reconvergence to re-admit it.
	SwitchUp
)

// String names the kind as campaign specs spell it.
func (k TopologyFaultKind) String() string {
	switch k {
	case TrunkDown:
		return "trunk_down"
	case TrunkUp:
		return "trunk_up"
	case TrunkFlap:
		return "trunk_flap"
	case TrunkDegrade:
		return "trunk_degrade"
	case SwitchDown:
		return "switch_down"
	case SwitchUp:
		return "switch_up"
	}
	return "unknown"
}

// ParseTopologyFaultKind resolves a kind name ("trunk_down"/"down",
// "trunk_up"/"up", "trunk_flap"/"flap", "trunk_degrade"/"degrade",
// "switch_down", "switch_up").
func ParseTopologyFaultKind(s string) (TopologyFaultKind, error) {
	switch s {
	case "trunk_down", "down":
		return TrunkDown, nil
	case "trunk_up", "up":
		return TrunkUp, nil
	case "trunk_flap", "flap":
		return TrunkFlap, nil
	case "trunk_degrade", "degrade":
		return TrunkDegrade, nil
	case "switch_down":
		return SwitchDown, nil
	case "switch_up":
		return SwitchUp, nil
	}
	return 0, fmt.Errorf("virtualwire: unknown topology fault kind %q", s)
}

// TopologyFaultSpec schedules one fabric fault (see Config.TopologyFaults).
type TopologyFaultSpec struct {
	// Kind selects the fault.
	Kind TopologyFaultKind
	// At is the virtual time of the fault (flaps: of the first cycle).
	At time.Duration
	// Trunk is the target trunk's wiring index (trunk kinds).
	Trunk int
	// Switch is the target switch index (switch kinds).
	Switch int
	// Period is one full TrunkFlap cycle — down for Period/2, up for
	// Period/2 (default 100ms).
	Period time.Duration
	// Count is the number of TrunkFlap cycles (default 1).
	Count int
	// Propagation, when positive, is TrunkDegrade's new trunk
	// propagation delay.
	Propagation time.Duration
	// BitErrorRate, when non-nil, is TrunkDegrade's new per-bit
	// corruption probability (0 restores a clean wire).
	BitErrorRate *float64
}

// topoEvent is one expanded, staged fault application.
type topoEvent struct {
	at    time.Duration
	kind  TopologyFaultKind
	trunk int
	sw    int
	prop  time.Duration
	ber   float64 // negative keeps the current rate
}

// topoFaultState is the fault engine's runtime state on a Testbed.
type topoFaultState struct {
	// events is the expanded schedule, sorted by time; built once at
	// stage time and reused across Reset.
	events []topoEvent
	// next indexes the first unapplied event (sharded engine; the
	// legacy engine applies events via the scheduler).
	next int
	// delay is the resolved reconvergence latency.
	delay time.Duration

	// One pending reconvergence at a time: triggers while one is
	// pending coalesce into it (reconvergeFrom keeps the earliest).
	reconvergePending bool
	reconvergeAt      time.Duration
	reconvergeFrom    time.Duration

	failovers       uint64
	reconvergeTotal time.Duration
	reconvergeLast  time.Duration

	// log journals applied fabric faults for RunReport.Faults.
	log []InjectedFault
}

// stageTopoFaults validates Config.TopologyFaults against the built
// fabric and expands them into the sorted event schedule. Called once
// from build; Reset re-arms the same schedule.
func (tb *Testbed) stageTopoFaults() error {
	specs := tb.cfg.TopologyFaults
	if len(specs) == 0 {
		return nil
	}
	if len(tb.fabric) == 0 {
		return fmt.Errorf("virtualwire: TopologyFaults require a multi-switch Topology")
	}
	checkTrunk := func(i int) error {
		if i < 0 || i >= len(tb.trunks) {
			return fmt.Errorf("virtualwire: topology fault targets trunk %d (fabric has %d)", i, len(tb.trunks))
		}
		return nil
	}
	for si := range specs {
		f := &specs[si]
		if f.At < 0 {
			return fmt.Errorf("virtualwire: topology fault %d at negative time %v", si, f.At)
		}
		switch f.Kind {
		case TrunkDown, TrunkUp:
			if err := checkTrunk(f.Trunk); err != nil {
				return err
			}
			tb.topo.events = append(tb.topo.events, topoEvent{at: f.At, kind: f.Kind, trunk: f.Trunk, ber: -1})
		case TrunkFlap:
			if err := checkTrunk(f.Trunk); err != nil {
				return err
			}
			period := f.Period
			if period <= 0 {
				period = 100 * time.Millisecond
			}
			count := f.Count
			if count <= 0 {
				count = 1
			}
			for c := 0; c < count; c++ {
				base := f.At + time.Duration(c)*period
				tb.topo.events = append(tb.topo.events,
					topoEvent{at: base, kind: TrunkDown, trunk: f.Trunk, ber: -1},
					topoEvent{at: base + period/2, kind: TrunkUp, trunk: f.Trunk, ber: -1})
			}
		case TrunkDegrade:
			if err := checkTrunk(f.Trunk); err != nil {
				return err
			}
			if f.Propagation <= 0 && f.BitErrorRate == nil {
				return fmt.Errorf("virtualwire: trunk_degrade fault %d overrides neither Propagation nor BitErrorRate", si)
			}
			ber := -1.0
			if f.BitErrorRate != nil {
				if *f.BitErrorRate < 0 {
					return fmt.Errorf("virtualwire: trunk_degrade fault %d has negative BitErrorRate", si)
				}
				ber = *f.BitErrorRate
			}
			tb.topo.events = append(tb.topo.events,
				topoEvent{at: f.At, kind: TrunkDegrade, trunk: f.Trunk, prop: f.Propagation, ber: ber})
		case SwitchDown, SwitchUp:
			if f.Switch < 0 || f.Switch >= len(tb.fabric) {
				return fmt.Errorf("virtualwire: topology fault targets switch %d (fabric has %d)", f.Switch, len(tb.fabric))
			}
			tb.topo.events = append(tb.topo.events, topoEvent{at: f.At, kind: f.Kind, sw: f.Switch, ber: -1})
		default:
			return fmt.Errorf("virtualwire: topology fault %d has unknown kind %d", si, f.Kind)
		}
	}
	// Stable by time: same-instant faults apply in spec order.
	sort.SliceStable(tb.topo.events, func(i, j int) bool {
		return tb.topo.events[i].at < tb.topo.events[j].at
	})
	if !tb.shardMode() {
		tb.scheduleTopoEvents()
	}
	return nil
}

// scheduleTopoEvents arms the staged schedule on the legacy engine's
// scheduler (build and every Reset).
func (tb *Testbed) scheduleTopoEvents() {
	for i := range tb.topo.events {
		ev := tb.topo.events[i]
		tb.sched.At(ev.at, "fabric.fault", func() { tb.applyTopoFault(ev) })
	}
}

// resetTopoFaults rewinds the fault engine (Reset): counters and journal
// clear, the schedule re-arms. The caller has already restored trunk
// block/fail/profile state and the scheduler.
func (tb *Testbed) resetTopoFaults() {
	st := &tb.topo
	st.next = 0
	st.reconvergePending = false
	st.reconvergeAt, st.reconvergeFrom = 0, 0
	st.failovers = 0
	st.reconvergeTotal, st.reconvergeLast = 0, 0
	st.log = st.log[:0]
	if !tb.shardMode() && len(st.events) > 0 {
		tb.scheduleTopoEvents()
	}
}

// applyTopoFault mutates the fabric for one staged event. Runs as a
// scheduler event (legacy) or at a window barrier with every shard
// parked (sharded) — single-threaded either way.
func (tb *Testbed) applyTopoFault(ev topoEvent) {
	switch ev.kind {
	case TrunkDown:
		tb.applyTrunkFailed(ev.trunk, true, ev.at)
	case TrunkUp:
		tb.applyTrunkFailed(ev.trunk, false, ev.at)
	case TrunkDegrade:
		tb.applyTrunkDegrade(ev.trunk, ev.prop, ev.ber, ev.at)
	case SwitchDown:
		tb.applySwitchDown(ev.sw, true, ev.at)
	case SwitchUp:
		tb.applySwitchDown(ev.sw, false, ev.at)
	}
}

// applyTrunkFailed fails or restores a trunk: port fault flags on both
// ends, egress queue flush on failure (in-flight frames still arrive
// and are discarded at the dead far port), and a reconvergence trigger.
// A restored trunk stays blocked until reconvergence re-admits it.
func (tb *Testbed) applyTrunkFailed(ti int, failed bool, at time.Duration) {
	tr := &tb.trunks[ti]
	if tr.failed == failed {
		return
	}
	tr.failed = failed
	tb.fabric[tr.wire.a].SetPortFailed(tr.pa, failed)
	tb.fabric[tr.wire.b].SetPortFailed(tr.pb, failed)
	// Dead or freshly restored, the trunk is out of the active tree
	// until reconvergence says otherwise.
	tb.setTrunkBlocked(ti, true)
	if tr.ch != nil {
		tr.ch.SetFailed(failed)
	} else if tr.link != nil {
		tr.link.SetFailed(failed)
	}
	kind := "trunk_up"
	if failed {
		kind = "trunk_down"
	}
	tb.logTopoFault(at, kind, ti, -1)
	tb.scheduleReconverge(at)
	tb.recomputeShardLookahead()
}

// applyTrunkDegrade overrides a trunk's live profile. The link stays up:
// no reconvergence, but the shard lookahead re-derives (a longer
// propagation buys longer windows; a shorter one must tighten them).
func (tb *Testbed) applyTrunkDegrade(ti int, prop time.Duration, ber float64, at time.Duration) {
	tr := &tb.trunks[ti]
	if tr.ch != nil {
		tr.ch.SetProfile(prop, ber)
	} else if tr.link != nil {
		tr.link.SetProfile(prop, ber)
	}
	tb.logTopoFault(at, "trunk_degrade", ti, -1)
	tb.recomputeShardLookahead()
}

// applySwitchDown crashes or restarts a switch. A down switch discards
// all ingress and drops its pipeline at fire time; frames already
// committed to its egress queues drain (they left the forwarding plane
// before the crash). Either transition triggers reconvergence.
func (tb *Testbed) applySwitchDown(si int, down bool, at time.Duration) {
	sw := tb.fabric[si]
	if sw.Down() == down {
		return
	}
	sw.SetDown(down)
	if !down {
		// A restarting switch boots with every trunk port blocked until
		// reconvergence re-admits its trunks to the tree.
		for _, ti := range tb.fabricAdj[si] {
			if !tb.trunks[ti].failed {
				tb.setTrunkBlocked(ti, true)
			}
		}
	}
	kind := "switch_up"
	if down {
		kind = "switch_down"
	}
	tb.logTopoFault(at, kind, -1, si)
	tb.scheduleReconverge(at)
}

// scheduleReconverge arms (or coalesces into) the pending reconvergence
// activation at trigger time + ReconvergeDelay.
func (tb *Testbed) scheduleReconverge(at time.Duration) {
	st := &tb.topo
	if st.reconvergePending {
		return
	}
	st.reconvergePending = true
	st.reconvergeFrom = at
	st.reconvergeAt = at + st.delay
	if !tb.shardMode() {
		tb.sched.At(st.reconvergeAt, "fabric.reconverge", tb.activateReconverge)
	}
}

// activateReconverge recomputes the spanning forest over the live fabric
// and applies the block/unblock diff: the deterministic wiring-order BFS
// promotes the best redundant trunk for every lost tree edge. Any change
// flushes MAC tables fabric-wide (stale entries point into the old tree)
// and counts as a failover.
func (tb *Testbed) activateReconverge() {
	st := &tb.topo
	if !st.reconvergePending {
		return
	}
	st.reconvergePending = false
	now := st.reconvergeAt
	tb.spanningForest()
	changed := 0
	for i := range tb.trunks {
		want := !tb.forestTree[i] // blocked unless in the live forest
		if tb.trunks[i].failed {
			want = true
		}
		if tb.trunkBlocked(i) != want {
			tb.setTrunkBlocked(i, want)
			changed++
		}
	}
	st.reconvergeLast = now - st.reconvergeFrom
	st.reconvergeTotal += st.reconvergeLast
	if changed == 0 {
		// The topology change had no forwarding consequence (a leaf
		// trunk with no redundant path): not a failover.
		return
	}
	for _, sw := range tb.fabric {
		if !sw.Down() {
			sw.FlushTable()
		}
	}
	st.failovers++
	tb.logTopoFault(now, "reconverge", -1, -1)
}

// logTopoFault journals one applied fabric fault.
func (tb *Testbed) logTopoFault(at time.Duration, kind string, trunk, sw int) {
	f := InjectedFault{At: at, Node: "fabric", Kind: kind}
	switch {
	case trunk >= 0:
		f.PacketType = fmt.Sprintf("trunk%d", trunk)
	case sw >= 0:
		f.PacketType = fmt.Sprintf("switch%d", sw)
	}
	tb.topo.log = append(tb.topo.log, f)
}

// applyTopoFaultsUpTo applies every staged fault and pending
// reconvergence due at or before bound, in time order. The sharded
// coordinator calls it at each window barrier with all shards parked;
// window ends are capped at nextTopoBoundary so no simulation event at
// or after a fault time can execute before the fault applies. Reports
// whether anything was applied.
func (tb *Testbed) applyTopoFaultsUpTo(bound time.Duration) bool {
	st := &tb.topo
	applied := false
	for {
		evOK := st.next < len(st.events)
		var evAt time.Duration
		if evOK {
			evAt = st.events[st.next].at
		}
		switch {
		case evOK && evAt <= bound && (!st.reconvergePending || evAt <= st.reconvergeAt):
			ev := st.events[st.next]
			st.next++
			tb.applyTopoFault(ev)
		case st.reconvergePending && st.reconvergeAt <= bound:
			tb.activateReconverge()
		default:
			return applied
		}
		applied = true
	}
}

// nextTopoBoundary reports the next unapplied fault or pending
// reconvergence time (sharded window bound).
func (tb *Testbed) nextTopoBoundary() (time.Duration, bool) {
	st := &tb.topo
	t, ok := time.Duration(0), false
	if st.next < len(st.events) {
		t, ok = st.events[st.next].at, true
	}
	if st.reconvergePending && (!ok || st.reconvergeAt < t) {
		t, ok = st.reconvergeAt, true
	}
	return t, ok
}

// recomputeShardLookahead re-derives the conservative window lookahead
// from the live (non-failed) trunks. A failed trunk cannot start a new
// transmission, so it no longer constrains windows; its still-in-flight
// frames are covered by the unconditional earliest-trunk-arrival bound.
func (tb *Testbed) recomputeShardLookahead() {
	sr := tb.shards
	if sr == nil {
		return
	}
	sr.lookahead = 0
	for i := range tb.trunks {
		tr := &tb.trunks[i]
		if tr.ch == nil || tr.failed {
			continue
		}
		if la := tr.ch.Lookahead(); sr.lookahead == 0 || la < sr.lookahead {
			sr.lookahead = la
		}
	}
}
