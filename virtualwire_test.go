package virtualwire

import (
	"os"
	"strings"
	"testing"
	"time"
)

func readScript(t testing.TB, name string) string {
	t.Helper()
	b, err := os.ReadFile("scripts/" + name)
	if err != nil {
		t.Fatalf("read script: %v", err)
	}
	return string(b)
}

// fig5Testbed assembles the Section 6.1 testbed: two hosts on a 100 Mbps
// switch, the Figure 5 scenario, and a bulk TCP transfer 0x6000 -> 0x4000.
func fig5Testbed(t testing.TB, seed int64, brokenTCP bool) (*Testbed, *TCPBulk) {
	t.Helper()
	script := readScript(t, "fig5_tcp_ss_ca.fsl")
	tb, err := New(Config{Seed: seed})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := tb.AddNodesFromScript(script); err != nil {
		t.Fatalf("nodes: %v", err)
	}
	if err := tb.LoadScript(script); err != nil {
		t.Fatalf("script: %v", err)
	}
	bulk, err := tb.AddTCPBulk(TCPBulkConfig{
		From: "node1", To: "node2",
		SrcPort: 0x6000, DstPort: 0x4000,
		Bytes:                    80 * 1024,
		DisableCongestionControl: brokenTCP,
	})
	if err != nil {
		t.Fatalf("bulk: %v", err)
	}
	return tb, bulk
}

// TestFigure5ConformingTCPPasses is the paper's Section 6.1 result: the
// SYNACK drop forces ssthresh to 2, the implementation switches to
// congestion avoidance at the crossover, and the analysis script flags no
// error ("The TCP implementation ... behaved correctly").
func TestFigure5ConformingTCPPasses(t *testing.T) {
	tb, bulk := fig5Testbed(t, 1, false)
	rep, err := tb.Run(60 * time.Second)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !rep.Passed {
		t.Fatalf("scenario failed: %+v", rep.Result)
	}
	if bulk.DeliveredBytes() != 80*1024 {
		t.Fatalf("delivered %d bytes", bulk.DeliveredBytes())
	}
	node1, _ := tb.Node("node1")
	// The injected fault: the first SYNACK was dropped at node1, so at
	// least two were observed.
	if v, ok := node1.CounterValue("SYNACK"); !ok || v < 2 {
		t.Errorf("SYNACK counter = %d, want >= 2 (drop forced a retransmission)", v)
	}
	if bulk.SenderStats().SynRetries == 0 {
		t.Error("client never retransmitted its SYN")
	}
	// The implementation crossed into congestion avoidance...
	if bulk.Ssthresh() != 2 {
		t.Errorf("ssthresh = %d, want 2", bulk.Ssthresh())
	}
	if bulk.InSlowStart() {
		t.Error("sender still in slow start at the end of the transfer")
	}
	// ...and the script's mirror of cwnd tracks the implementation.
	scriptCwnd, ok := node1.CounterValue("CWND")
	if !ok {
		t.Fatal("CWND counter missing")
	}
	real := int64(bulk.CWND())
	if scriptCwnd < real-1 || scriptCwnd > real+1 {
		t.Errorf("script CWND = %d, implementation cwnd = %d (mirror diverged)", scriptCwnd, real)
	}
	if scriptCwnd <= 2 {
		t.Errorf("script CWND = %d never left slow start", scriptCwnd)
	}
	if canTx, _ := node1.CounterValue("CanTx"); canTx < 0 {
		t.Errorf("CanTx = %d at end", canTx)
	}
}

// TestFigure5BrokenTCPFlagged is the converse the tool exists for: a TCP
// that ignores its congestion window violates the script's CanTx >= 0
// invariant and the FAE flags it, with zero instrumentation of the TCP.
func TestFigure5BrokenTCPFlagged(t *testing.T) {
	tb, _ := fig5Testbed(t, 2, true)
	rep, err := tb.Run(60 * time.Second)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Passed {
		t.Fatal("broken TCP passed the Figure 5 analysis script")
	}
	if len(rep.Result.Errors) == 0 {
		t.Fatal("no FLAG_ERR collected")
	}
	if rep.Result.Errors[0].Node != 0 {
		t.Errorf("error flagged at node %d, want node1", rep.Result.Errors[0].Node)
	}
}

// fig6Testbed assembles the Section 6.2 testbed: four Rether nodes on a
// shared bus with a real-time TCP stream node1 -> node4.
func fig6Testbed(t testing.TB, seed int64) (*Testbed, *TCPBulk) {
	t.Helper()
	script := readScript(t, "fig6_rether_failure.fsl")
	tb, err := New(Config{Seed: seed, Medium: MediumBus})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := tb.AddNodesFromScript(script); err != nil {
		t.Fatalf("nodes: %v", err)
	}
	if err := tb.InstallRether([]string{"node1", "node2", "node3", "node4"}, RetherConfig{}); err != nil {
		t.Fatalf("rether: %v", err)
	}
	tb.AddRTStream(0x6000, 0x4000)
	if err := tb.LoadScript(script); err != nil {
		t.Fatalf("script: %v", err)
	}
	bulk, err := tb.AddTCPBulk(TCPBulkConfig{
		From: "node1", To: "node4",
		SrcPort: 0x6000, DstPort: 0x4000,
		Bytes: 4 << 20,
	})
	if err != nil {
		t.Fatalf("bulk: %v", err)
	}
	return tb, bulk
}

// TestFigure6RetherRecovery is the paper's Section 6.2 result: node3 is
// crashed by the script once 1000 TCP data packets have crossed; Rether
// must detect the failure after exactly 3 token transmissions,
// reconstruct the ring, and complete a survivors-only token cycle inside
// the 1 s inactivity timeout, at which point the script STOPs the
// scenario with no errors.
func TestFigure6RetherRecovery(t *testing.T) {
	tb, bulk := fig6Testbed(t, 3)
	rep, err := tb.Run(120 * time.Second)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !rep.Result.Stopped {
		t.Fatalf("scenario did not STOP: %+v (delivered %d bytes)",
			rep.Result, bulk.DeliveredBytes())
	}
	if !rep.Passed {
		t.Fatalf("scenario failed: %+v", rep.Result)
	}
	node2, _ := tb.Node("node2")
	node3, _ := tb.Node("node3")
	if !node3.Failed() {
		t.Error("node3 was never crashed")
	}
	// Exactly 3 token transmissions toward the dead node (the >3 rule
	// would have flagged an error otherwise; check the counter too).
	if v, ok := node2.CounterValue("TokensFrom2"); !ok || v != 3 {
		t.Errorf("TokensFrom2 = %d, want exactly 3", v)
	}
	// Survivors reconstructed a 3-node ring.
	for _, name := range []string{"node1", "node2", "node4"} {
		n, _ := tb.Node(name)
		if got := n.RetherRingSize(); got != 3 {
			t.Errorf("%s ring size = %d, want 3", name, got)
		}
	}
	// The data crossing threshold really was reached.
	node4, _ := tb.Node("node4")
	if v, _ := node4.CounterValue("CNT_DATA"); v <= 1000 {
		t.Errorf("CNT_DATA = %d, want > 1000", v)
	}
}

// TestFigure6RealTimeTransportUnaffected checks the paper's stronger
// claim: the node1->node4 real-time stream keeps flowing across the
// failure and recovery.
func TestFigure6RealTimeTransportUnaffected(t *testing.T) {
	tb, bulk := fig6Testbed(t, 4)
	if _, err := tb.Run(120 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	before := bulk.DeliveredBytes()
	if before == 0 {
		t.Fatal("no data crossed before/at the failure")
	}
	// Keep running past the scenario end: data must continue to flow on
	// the reconstructed ring.
	if err := tb.RunFor(3 * time.Second); err != nil {
		t.Fatalf("runfor: %v", err)
	}
	if bulk.DeliveredBytes() <= before {
		t.Errorf("stream stalled after recovery: %d then %d bytes",
			before, bulk.DeliveredBytes())
	}
}

func TestQuickstartDropCausesRetransmission(t *testing.T) {
	script := `
FILTER_TABLE
TCP_data: (34 2 0x6000), (36 2 0x4000), (47 1 0x10 0x10)
END
NODE_TABLE
node1 00:00:00:00:00:01 10.0.0.1
node2 00:00:00:00:00:02 10.0.0.2
END
SCENARIO drop_fifth
DATA: (TCP_data, node1, node2, RECV)
(TRUE) >> ENABLE_CNTR( DATA );
((DATA = 5)) >> DROP TCP_data, node1, node2, RECV;
END`
	tb, err := New(Config{Seed: 5, TraceCapacity: 10000})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if err := tb.AddNodesFromScript(script); err != nil {
		t.Fatalf("nodes: %v", err)
	}
	if err := tb.LoadScript(script); err != nil {
		t.Fatalf("script: %v", err)
	}
	bulk, err := tb.AddTCPBulk(TCPBulkConfig{
		From: "node1", To: "node2", SrcPort: 0x6000, DstPort: 0x4000,
		Bytes: 64 * 1024,
	})
	if err != nil {
		t.Fatalf("bulk: %v", err)
	}
	rep, err := tb.Run(60 * time.Second)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !rep.Passed {
		t.Fatalf("result: %+v", rep.Result)
	}
	if bulk.DeliveredBytes() != 64*1024 {
		t.Errorf("delivered %d", bulk.DeliveredBytes())
	}
	if bulk.SenderStats().Retransmissions == 0 {
		t.Error("injected drop caused no retransmission")
	}
	if len(tb.TraceFilter("tcp")) == 0 {
		t.Error("trace captured nothing")
	}
}

func TestRLLTestbedSurvivesBitErrors(t *testing.T) {
	// With a noisy wire and the RLL enabled, a plain TCP transfer (no
	// script) must complete without the engines ever seeing a loss they
	// didn't inject.
	tb, err := New(Config{Seed: 6, RLL: true, BitErrorRate: 1e-6})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	for _, h := range [][3]string{
		{"a", "00:00:00:00:00:0a", "10.0.0.10"},
		{"b", "00:00:00:00:00:0b", "10.0.0.11"},
	} {
		if _, err := tb.AddHost(h[0], h[1], h[2]); err != nil {
			t.Fatalf("host: %v", err)
		}
	}
	bulk, err := tb.AddTCPBulk(TCPBulkConfig{
		From: "a", To: "b", SrcPort: 1000, DstPort: 2000, Bytes: 512 * 1024,
	})
	if err != nil {
		t.Fatalf("bulk: %v", err)
	}
	if _, err := tb.Run(60 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if bulk.DeliveredBytes() != 512*1024 {
		t.Fatalf("delivered %d", bulk.DeliveredBytes())
	}
	// The RLL masked every wire error: TCP saw no retransmissions.
	if bulk.SenderStats().Retransmissions != 0 {
		t.Errorf("TCP retransmitted %d segments despite the RLL",
			bulk.SenderStats().Retransmissions)
	}
}

func TestUDPEchoWorkload(t *testing.T) {
	tb, err := New(Config{Seed: 7})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if _, err := tb.AddHost("a", "00:00:00:00:00:01", "10.0.0.1"); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.AddHost("b", "00:00:00:00:00:02", "10.0.0.2"); err != nil {
		t.Fatal(err)
	}
	echo, err := tb.AddUDPEcho(UDPEchoConfig{
		Client: "a", Server: "b", ServerPort: 7, Count: 100,
	})
	if err != nil {
		t.Fatalf("echo: %v", err)
	}
	if _, err := tb.Run(time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if echo.Received() != 100 {
		t.Fatalf("received %d/100", echo.Received())
	}
	if echo.MeanRTT() <= 0 || echo.MeanRTT() > time.Millisecond {
		t.Errorf("mean RTT = %v", echo.MeanRTT())
	}
}

func TestLoadScriptValidation(t *testing.T) {
	script := `
FILTER_TABLE
f: (12 2 0x0800)
END
NODE_TABLE
node1 00:00:00:00:00:01 10.0.0.1
END
SCENARIO s
C: (node1)
(TRUE) >> ASSIGN_CNTR( C, 1 );
END`
	tb, _ := New(Config{})
	if err := tb.LoadScript(script); err == nil || !strings.Contains(err.Error(), "not in testbed") {
		t.Errorf("missing-node error = %v", err)
	}
	if _, err := tb.AddHost("node1", "00:00:00:00:00:99", "10.0.0.1"); err != nil {
		t.Fatal(err)
	}
	if err := tb.LoadScript(script); err == nil || !strings.Contains(err.Error(), "identity mismatch") {
		t.Errorf("mismatch error = %v", err)
	}
}

func TestDumpTablesViaFacade(t *testing.T) {
	script := readScript(t, "fig6_rether_failure.fsl")
	tb, _ := New(Config{Medium: MediumBus})
	if err := tb.AddNodesFromScript(script); err != nil {
		t.Fatal(err)
	}
	if err := tb.LoadScript(script); err != nil {
		t.Fatal(err)
	}
	d := tb.DumpTables()
	if !strings.Contains(d, "ACTION TABLE") || !strings.Contains(d, "tr_token") {
		t.Errorf("dump incomplete:\n%s", d)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int64, uint64) {
		tb, bulk := fig5Testbed(t, 42, false)
		rep, err := tb.Run(30 * time.Second)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		n1, _ := tb.Node("node1")
		cwnd, _ := n1.CounterValue("CWND")
		_ = bulk
		return cwnd, rep.Events
	}
	c1, e1 := run()
	c2, e2 := run()
	if c1 != c2 || e1 != e2 {
		t.Errorf("runs diverged: cwnd %d/%d events %d/%d", c1, c2, e1, e2)
	}
}
