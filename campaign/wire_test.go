package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestParseSpecRoundTrip(t *testing.T) {
	src := `{
		"name": "wire-test",
		"seed": 7,
		"seed_count": 3,
		"script": "",
		"hosts": 4,
		"horizon": "2s",
		"configs": [{"label": "a"}, {"label": "b", "medium": "bus"}]
	}`
	spec, err := ParseSpec([]byte(src))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if spec.Version != SpecVersion {
		t.Errorf("Version = %d, want %d (normalized)", spec.Version, SpecVersion)
	}
	if spec.Runs() != 6 {
		t.Errorf("Runs = %d, want 6", spec.Runs())
	}
	// A re-marshalled spec parses to the same normalized value.
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseSpec(b)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if again.Hash() != spec.Hash() {
		t.Error("round-tripped spec hashes differently")
	}
}

func TestParseSpecRejectsUnknownField(t *testing.T) {
	_, err := ParseSpec([]byte(`{"horizon": "1s", "hosts": 2, "sedes": 5}`))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
	if !strings.Contains(err.Error(), "sedes") {
		t.Errorf("error does not name the unknown field: %v", err)
	}
}

func TestParseSpecRejectsFutureVersion(t *testing.T) {
	_, err := ParseSpec([]byte(`{"version": 99, "horizon": "1s", "hosts": 2}`))
	if err == nil {
		t.Fatal("future version accepted")
	}
	var fe *FieldError
	if !errors.As(err, &fe) || fe.Path != "version" {
		t.Errorf("err = %v, want FieldError at \"version\"", err)
	}
}

func TestParseSpecRejectsTrailingData(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"horizon": "1s", "hosts": 2} {"horizon": "2s"}`)); err == nil {
		t.Fatal("trailing data accepted")
	}
}

func TestParseSpecTypeErrorNamesField(t *testing.T) {
	_, err := ParseSpec([]byte(`{"horizon": "1s", "hosts": 2, "configs": [{"medium": 7}]}`))
	if err == nil {
		t.Fatal("type error accepted")
	}
	if !strings.Contains(err.Error(), "medium") {
		t.Errorf("error does not name the mistyped field: %v", err)
	}
}

func TestValidateNamesFieldPaths(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		path string
	}{
		{"horizon", func(s *Spec) { s.Horizon = 0 }, "horizon"},
		{"retries", func(s *Spec) { s.Retries = -1 }, "retries"},
		{"medium", func(s *Spec) { s.Configs[1].Medium = "pigeon" }, "configs[1].medium"},
		{"classifier", func(s *Spec) { s.Configs[0].Classifier = "warp" }, "configs[0].classifier"},
		{"workload", func(s *Spec) { s.Workloads[0].Kind = "stampede" }, "workloads[0].kind"},
		{"trunkfault", func(s *Spec) {
			s.Configs[0].Topology = &TopologyOverride{Kind: "ring"}
			s.Configs[0].TrunkFaults = []TrunkFault{{Kind: "melt"}}
		}, "configs[0].trunk_faults[0].kind"},
		{"faults-no-topo", func(s *Spec) {
			s.Configs[0].TrunkFaults = []TrunkFault{{Kind: "trunk_down"}}
		}, "configs[0].trunk_faults"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := Spec{
				Seed:      1,
				Hosts:     2,
				Horizon:   Duration(time.Second),
				Configs:   []ConfigOverride{{Label: "a"}, {Label: "b"}},
				Workloads: []WorkloadSpec{{Kind: "manyflow", Flows: 1, Bytes: 64}},
			}
			tc.mut(&spec)
			err := spec.Validate()
			if err == nil {
				t.Fatal("invalid spec accepted")
			}
			var fe *FieldError
			if !errors.As(err, &fe) {
				t.Fatalf("err = %v (%T), want *FieldError", err, err)
			}
			if fe.Path != tc.path {
				t.Errorf("path = %q, want %q (err: %v)", fe.Path, tc.path, err)
			}
		})
	}
}

func TestValidateVariantPaths(t *testing.T) {
	spec := Spec{
		Seed:    1,
		Script:  quickstartScript,
		Horizon: Duration(time.Second),
		Variants: []Variant{
			{Label: "ok"},
			{Label: "bad", Workload: &WorkloadSpec{Kind: "smoke-signals"}},
		},
	}
	err := spec.Validate()
	var fe *FieldError
	if !errors.As(err, &fe) || fe.Path != "variants[1].workload.kind" {
		t.Errorf("err = %v, want FieldError at variants[1].workload.kind", err)
	}
}

func TestNormalizeCanonicalizesSeedAxis(t *testing.T) {
	a := Spec{Seed: 1, Hosts: 2, Horizon: Duration(time.Second)}
	b := a
	b.SeedCount = 1 // explicit default
	a.Normalize()
	b.Normalize()
	if a.SeedCount != 1 || a.Version != SpecVersion {
		t.Errorf("normalized a = %+v", a)
	}
	if a.Hash() != b.Hash() {
		t.Error("implicit and explicit SeedCount=1 hash differently")
	}

	c := Spec{Seed: 1, Hosts: 2, Horizon: Duration(time.Second), Seeds: []int64{4, 5}, SeedCount: 9}
	c.Normalize()
	if c.SeedCount != 2 {
		t.Errorf("SeedCount = %d, want len(Seeds) = 2", c.SeedCount)
	}
	// Idempotent.
	before := c.Hash()
	c.Normalize()
	if c.Hash() != before {
		t.Error("Normalize is not idempotent under Hash")
	}
}

func TestHashDiscriminates(t *testing.T) {
	a := Spec{Seed: 1, Hosts: 2, Horizon: Duration(time.Second)}
	b := a
	b.Seed = 2
	if a.Hash() == b.Hash() {
		t.Error("specs with different seeds hash equal")
	}
}

func TestMaxShards(t *testing.T) {
	s := Spec{Seed: 1, Hosts: 2, Horizon: Duration(time.Second)}
	if got := s.MaxShards(); got != 1 {
		t.Errorf("MaxShards (legacy) = %d, want 1", got)
	}
	four := 4
	s.Configs = []ConfigOverride{{}, {Shards: &four}}
	if got := s.MaxShards(); got != 4 {
		t.Errorf("MaxShards = %d, want 4", got)
	}
}

// ParseSpec is the CLI -spec path: a spec a previous release wrote (no
// version field) must keep parsing under the documented policy.
func TestParseSpecAcceptsVersionlessSpec(t *testing.T) {
	spec, err := ParseSpec([]byte(`{"seed": 3, "hosts": 2, "horizon": "500ms"}`))
	if err != nil {
		t.Fatalf("versionless spec rejected: %v", err)
	}
	if spec.Version != SpecVersion {
		t.Errorf("Version = %d, want %d", spec.Version, SpecVersion)
	}
	if _, err := Run(context.Background(), *spec, Options{Workers: 1}); err != nil {
		t.Fatalf("parsed spec does not run: %v", err)
	}
}
