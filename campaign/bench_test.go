package campaign

import (
	"context"
	"io"
	"runtime"
	"testing"
)

// benchSpec is a 16-run quickstart matrix; small enough to iterate,
// large enough to exercise the pool, window and ordered collector.
func benchSpec() Spec {
	spec := quickstartSpec(8, []float64{0, 1e-6})
	spec.Workloads[0].Bytes = 8 * 1024
	return spec
}

func benchCampaign(b *testing.B, workers int) {
	// Asking for more workers than CPUs measures goroutine interleaving
	// noise, not executor scaling: on a 1-CPU box an 8-worker figure once
	// read as a speedup that no real machine would see. Clamp, and record
	// the CPU count so persisted results carry the machine context.
	if n := runtime.NumCPU(); workers > n {
		workers = n
	}
	spec := benchSpec()
	runs := spec.Runs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum, err := Run(context.Background(), spec, Options{Workers: workers, Sink: io.Discard})
		if err != nil {
			b.Fatal(err)
		}
		if sum.Passed != runs {
			b.Fatalf("passed %d/%d", sum.Passed, runs)
		}
	}
	b.ReportMetric(float64(runs*b.N)/b.Elapsed().Seconds(), "runs/s")
	b.ReportMetric(float64(runtime.NumCPU()), "cpus")
}

// BenchmarkCampaignSerial measures per-run cost without pool overhead.
func BenchmarkCampaignSerial(b *testing.B) { benchCampaign(b, 1) }

// BenchmarkCampaignParallel measures campaign throughput at the default
// worker count; runs/s versus the serial figure shows executor scaling.
func BenchmarkCampaignParallel(b *testing.B) { benchCampaign(b, runtime.GOMAXPROCS(0)) }

// The fixed-width worker benchmarks trace the scaling curve (compare
// runs/s against BenchmarkCampaignSerial). Worker testbeds are compiled
// once and reset between runs, so added workers cost goroutines, not
// testbed rebuilds; the curve flattens at the machine's core count.
func BenchmarkCampaignWorkers2(b *testing.B) { benchCampaign(b, 2) }
func BenchmarkCampaignWorkers4(b *testing.B) { benchCampaign(b, 4) }
func BenchmarkCampaignWorkers8(b *testing.B) { benchCampaign(b, 8) }
