package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"virtualwire"
	"virtualwire/internal/metrics"
)

// Run outcome labels recorded per run.
const (
	// OutcomePass: the run completed and its scenario verdict passed
	// (scriptless runs pass whenever they complete).
	OutcomePass = "pass"
	// OutcomeFail: the run completed but the scenario verdict failed
	// (flagged errors, inactivity, never started).
	OutcomeFail = "fail"
	// OutcomeLaunchFailed: the control-plane launch kept failing after
	// every retry.
	OutcomeLaunchFailed = "launch_failed"
	// OutcomeTimeout: the per-run wall-clock Timeout kept expiring
	// after every retry.
	OutcomeTimeout = "timeout"
	// OutcomeError: a non-transient failure (bad workload host, script
	// staging error, ...).
	OutcomeError = "error"
	// OutcomeCanceled: the campaign context was canceled while the run
	// was in flight; canceled runs are counted but not written to the
	// sink, so the JSONL stream stays deterministic.
	OutcomeCanceled = "canceled"
)

// RunRecord is one finished run, as streamed to the JSONL sink. Every
// field is derived from the simulation (virtual time, seeds, counters)
// — never from wall-clock time — so records are byte-identical across
// worker counts and hosts.
type RunRecord struct {
	// Index is the run's position in the canonical matrix order.
	Index int `json:"index"`
	// Label identifies the matrix point ("ber=1e-6/tcp/s3").
	Label string `json:"label"`
	// Config and Workload echo the axis labels separately.
	Config   string `json:"config,omitempty"`
	Workload string `json:"workload,omitempty"`
	// SeedIndex and Seed locate the run on the seed axis.
	SeedIndex int   `json:"seed_index"`
	Seed      int64 `json:"seed"`
	// Attempts counts tries including the final one (>1 after retries).
	Attempts int `json:"attempts"`
	// Outcome is one of the Outcome* labels.
	Outcome string `json:"outcome"`
	// Error carries the final attempt's error text, if any.
	Error string `json:"error,omitempty"`

	// Workload measurements (populated per WorkloadSpec.Kind).
	DeliveredBytes  int      `json:"delivered_bytes,omitempty"`
	GoodputMbps     float64  `json:"goodput_mbps,omitempty"`
	Retransmissions int      `json:"retransmissions,omitempty"`
	Sent            int      `json:"sent,omitempty"`
	Received        int      `json:"received,omitempty"`
	MeanRTT         Duration `json:"mean_rtt,omitempty"`
	MaxInterArrival Duration `json:"max_inter_arrival,omitempty"`

	// Report is the run's full RunReport (faults, flagged errors,
	// per-node metrics). Nil only when the run never produced one.
	Report *virtualwire.RunReport `json:"report,omitempty"`
}

// runFunc executes one attempt of one matrix point; tests substitute it
// to simulate transient failures.
type runFunc func(ctx context.Context, spec *Spec, p point, rec *RunRecord) error

// Options tunes the executor; the zero value is usable.
type Options struct {
	// Workers bounds concurrent runs (default GOMAXPROCS, clamped to
	// the matrix size). The worker count never affects output bytes.
	Workers int
	// Sink, when non-nil, receives one JSON line per finished run, in
	// run-index order. Writes happen from the collector only, so the
	// sink needs no locking.
	Sink io.Writer
	// OnRecord, when non-nil, observes each record after it is flushed
	// to the sink, in run-index order (progress bars, live dashboards,
	// tests that cancel mid-campaign).
	OnRecord func(RunRecord)
	// Window bounds how far ahead of the oldest unflushed run a worker
	// may start (default 4×Workers), keeping memory O(workers), not
	// O(runs), even when one slow run holds up the ordered flush.
	Window int

	// FirstIndex resumes an interrupted campaign: runs with index below
	// it are taken as already recorded by a previous invocation — they
	// are neither executed nor written, and the sink continues at
	// FirstIndex. Per-run seeds derive from the run index, so the
	// resumed records are byte-identical to an uninterrupted run's.
	FirstIndex int
	// Prior seeds the Summary with the records a previous invocation
	// already flushed (unmarshalled back from its sink). They are
	// tallied in order before any new run, never re-written, so the
	// final Summary equals the uninterrupted campaign's.
	Prior []RunRecord
	// StrictOrder suppresses the post-cancellation courtesy flush of
	// completed records beyond a gap: the sink then only ever holds the
	// contiguous run-index prefix, the invariant a resume scan depends
	// on. Interactive use leaves it off to keep every finished record.
	StrictOrder bool

	// run substitutes the per-attempt executor in tests. When set, the
	// reusable-testbed pipeline is bypassed entirely.
	run runFunc
}

// normalize resolves every defaultable option in one place, so the
// zero value of Options is usable and both executor paths (serial,
// pooled) agree on the effective settings. maxShards is the widest
// per-run shard count in the matrix (1 for legacy runs): when any run
// shards, the worker pool shrinks so workers x shards stays within
// GOMAXPROCS — every goroutine in a sharded run computes, so
// oversubscribing the pool just adds barrier contention. A matrix of
// purely legacy runs keeps the classic one-worker-per-CPU sizing (the
// worker count never affects output bytes either way).
func (o *Options) normalize(matrixSize, maxShards int) {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if maxShards > 1 {
		if budget := runtime.GOMAXPROCS(0) / maxShards; o.Workers > budget {
			o.Workers = budget
		}
		if o.Workers < 1 {
			o.Workers = 1
		}
	}
	if o.Workers > matrixSize && matrixSize > 0 {
		o.Workers = matrixSize
	}
	if o.Window <= 0 {
		o.Window = 4 * o.Workers
	}
	if o.Window < o.Workers {
		o.Window = o.Workers
	}
}

// maxShards reports the widest shard request across the matrix, for
// worker budgeting: auto counts as GOMAXPROCS (its upper bound), legacy
// as 1.
func maxShards(points []point) int {
	max := 1
	for i := range points {
		s := points[i].cfg.Shards
		if s == nil {
			continue
		}
		k := *s
		if k == virtualwire.ShardsAuto {
			k = runtime.GOMAXPROCS(0)
		}
		if k > max {
			max = k
		}
	}
	return max
}

// newRunner returns the per-attempt executor for one worker: the test
// substitute when set, otherwise a compile-once/reset-to-reuse executor
// owning its private testbed cache. Each worker gets its own runner, so
// testbeds are never shared across goroutines.
func (o *Options) newRunner(spec *Spec) runFunc {
	if o.run != nil {
		return o.run
	}
	return newTestbedCache(spec).run
}

// Run executes the spec's matrix and returns its Summary. The context
// cancels the whole campaign: in-flight runs stop at event-loop
// granularity, finished records already flushed stay in the sink, and
// Run returns the partial summary alongside ctx's error.
//
// Determinism: records are produced by independent seeded testbeds and
// flushed in run-index order, so the sink bytes and the Summary are
// identical for any worker count.
func Run(ctx context.Context, spec Spec, opts Options) (*Summary, error) {
	points, err := spec.expand()
	if err != nil {
		return nil, err
	}
	first := opts.FirstIndex
	if first < 0 {
		first = 0
	}
	if first > len(points) {
		return nil, fmt.Errorf("campaign: FirstIndex %d beyond the %d-run matrix", opts.FirstIndex, len(points))
	}
	todo := points[first:]
	opts.normalize(len(todo), maxShards(points))
	workers := opts.Workers
	agg := newAggregator(&spec, len(points))
	// Fold the previous invocation's records into the tallies, in their
	// original order, without re-writing them: the resumed Summary must
	// equal the uninterrupted campaign's.
	var noSink Options
	for _, r := range opts.Prior {
		if err := agg.collect(r, &noSink); err != nil {
			return agg.finish(), err
		}
	}
	if len(todo) == 0 {
		return agg.finish(), nil
	}

	if workers <= 1 {
		run := opts.newRunner(&spec)
		for _, p := range todo {
			if ctx.Err() != nil {
				break
			}
			rec := runPoint(ctx, &spec, p, run)
			if err := agg.collect(rec, &opts); err != nil {
				return agg.finish(), err
			}
		}
		return agg.finish(), ctx.Err()
	}

	window := opts.Window

	// Workers acquire a window slot BEFORE taking a run index, so the
	// worker that ends up with the lowest outstanding index can never
	// starve behind higher indices holding every slot; the collector
	// releases a slot per flushed record.
	sem := make(chan struct{}, window)
	results := make(chan RunRecord, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			run := opts.newRunner(&spec)
			for {
				select {
				case sem <- struct{}{}:
				case <-ctx.Done():
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(todo) {
					<-sem
					return
				}
				results <- runPoint(ctx, &spec, todo[i], run)
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Single collector: reorder to run-index order, flush the
	// contiguous prefix, release window slots as records retire.
	pending := make(map[int]RunRecord, window)
	base := first
	var sinkErr error
	for rec := range results {
		pending[rec.Index] = rec
		for {
			r, ok := pending[base]
			if !ok {
				break
			}
			delete(pending, base)
			base++
			<-sem
			if sinkErr == nil {
				sinkErr = agg.collect(r, &opts)
				if sinkErr != nil {
					// Keep draining so workers can exit, but stop
					// writing.
					opts.Sink, opts.OnRecord = nil, nil
				}
			} else {
				_ = agg.collect(r, &opts)
			}
			if opts.StrictOrder && r.Outcome == OutcomeCanceled {
				// A canceled run leaves a hole in the sink (canceled
				// records are never written); later completions must
				// not be written past it, or the contiguous-prefix
				// invariant breaks for the resume scan.
				opts.Sink, opts.OnRecord = nil, nil
			}
		}
	}
	// Cancellation can leave gaps (indices never taken); flush whatever
	// completed above the gap, still in index order. StrictOrder skips
	// this courtesy flush so the sink keeps its contiguous-prefix
	// invariant for resume scans.
	if !opts.StrictOrder {
		for i := base; i < len(points) && len(pending) > 0; i++ {
			if r, ok := pending[i]; ok {
				delete(pending, i)
				if e := agg.collect(r, &opts); sinkErr == nil && e != nil {
					sinkErr = e
				}
			}
		}
	}
	sum := agg.finish()
	if sinkErr != nil {
		return sum, sinkErr
	}
	return sum, ctx.Err()
}

// runPoint executes one matrix point with the retry policy: transient
// failures (launch failure, wall-clock timeout) are retried up to
// spec.Retries extra attempts; campaign cancellation and permanent
// errors are not.
func runPoint(ctx context.Context, spec *Spec, p point, run runFunc) RunRecord {
	base := RunRecord{
		Index: p.index, Label: p.label,
		Config: p.configLabel, Workload: p.workloadLabel,
		SeedIndex: p.seedIndex, Seed: p.seed,
	}
	for attempt := 1; ; attempt++ {
		rec := base
		rec.Attempts = attempt
		err := run(ctx, spec, p, &rec)
		if err == nil && rec.Report != nil {
			err = rec.Report.Err()
		}
		if err == nil {
			if rec.Report == nil || rec.Report.Passed || rec.Report.Scenario == "" {
				rec.Outcome = OutcomePass
			} else {
				rec.Outcome = OutcomeFail
			}
			return rec
		}
		rec.Error = err.Error()
		if ctx.Err() != nil {
			rec.Outcome = OutcomeCanceled
			return rec
		}
		if attempt <= spec.Retries && Transient(err) {
			continue
		}
		switch {
		case errors.Is(err, virtualwire.ErrLaunchFailed):
			rec.Outcome = OutcomeLaunchFailed
		case errors.Is(err, virtualwire.ErrHorizonExceeded):
			rec.Outcome = OutcomeTimeout
		default:
			rec.Outcome = OutcomeError
		}
		return rec
	}
}

// Transient reports whether err is worth retrying with a fresh testbed:
// launch failures, unreachable nodes and per-run wall-clock timeouts
// qualify; script errors and campaign cancellation do not.
func Transient(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, virtualwire.ErrScriptParse) {
		return false
	}
	return errors.Is(err, virtualwire.ErrLaunchFailed) ||
		errors.Is(err, virtualwire.ErrUnreachable) ||
		errors.Is(err, virtualwire.ErrHorizonExceeded) ||
		errors.Is(err, context.DeadlineExceeded)
}

// testbedCache is the compile-once/reset-to-reuse executor: one per
// worker goroutine (never shared), it keeps a long-lived testbed per
// matrix shape and rewinds it with Testbed.Reset between runs instead
// of rebuilding the whole stack. Reset-vs-fresh determinism is a tested
// invariant of the facade, so which path a given run takes — and
// therefore the worker count — never changes the record bytes.
type testbedCache struct {
	spec *Spec
	tbs  map[int]*virtualwire.Testbed // shapeID → reusable testbed
}

func newTestbedCache(spec *Spec) *testbedCache {
	return &testbedCache{spec: spec, tbs: make(map[int]*virtualwire.Testbed)}
}

// run executes one attempt of one point, reusing the shape's testbed
// when possible. Compiled-script points reuse via the staged tables;
// scriptless host-group points (Spec.Hosts) reuse their generated hosts
// and fabric. Remaining shapes (hosts from a separate Spec.Nodes source)
// fall back to a fresh build per run.
func (c *testbedCache) run(ctx context.Context, spec *Spec, p point, rec *RunRecord) error {
	hostGroup := p.compiled == nil && p.script == "" && spec.Nodes == "" && spec.Hosts > 0
	if !hostGroup && (p.compiled == nil || (spec.Nodes != "" && spec.Nodes != p.script)) {
		return runOnce(ctx, spec, p, rec)
	}
	tb := c.tbs[p.shapeID]
	if tb != nil {
		if err := tb.Reset(p.seed); err != nil {
			// A testbed that cannot be rewound (never built) is dropped,
			// not reused dirty.
			delete(c.tbs, p.shapeID)
			tb = nil
		}
	}
	if tb == nil {
		cfg := virtualwire.Config{Seed: p.seed}
		if err := p.cfg.apply(&cfg); err != nil {
			return err
		}
		fresh, err := virtualwire.New(cfg)
		if err != nil {
			return err
		}
		if hostGroup {
			if _, err := fresh.AddHostGroup("h", spec.Hosts); err != nil {
				return err
			}
		} else {
			if err := fresh.AddNodesFromCompiled(p.compiled); err != nil {
				return err
			}
			if err := fresh.LoadCompiled(p.compiled); err != nil {
				return err
			}
		}
		tb = fresh
		c.tbs[p.shapeID] = tb
	}
	return finishRun(ctx, spec, p, rec, tb)
}

// runOnce builds a private testbed for the point and runs it to the
// horizon under the per-run wall-clock timeout. It is the fallback (and
// test-visible) per-run path; the campaign executor normally routes
// through testbedCache.run instead.
func runOnce(ctx context.Context, spec *Spec, p point, rec *RunRecord) error {
	cfg := virtualwire.Config{Seed: p.seed}
	if err := p.cfg.apply(&cfg); err != nil {
		return err
	}
	tb, err := virtualwire.New(cfg)
	if err != nil {
		return err
	}
	nodeSrc := spec.Nodes
	if nodeSrc == "" {
		nodeSrc = p.script
	}
	switch {
	case nodeSrc == "" && spec.Hosts > 0:
		_, err = tb.AddHostGroup("h", spec.Hosts)
	case p.compiled != nil && nodeSrc == p.script:
		err = tb.AddNodesFromCompiled(p.compiled)
	default:
		err = tb.AddNodesFromScript(nodeSrc)
	}
	if err != nil {
		return err
	}
	if p.script != "" {
		if p.compiled != nil {
			err = tb.LoadCompiled(p.compiled)
		} else if p.scenario != "" {
			err = tb.LoadScriptScenario(p.script, p.scenario)
		} else {
			err = tb.LoadScript(p.script)
		}
		if err != nil {
			return err
		}
	}
	return finishRun(ctx, spec, p, rec, tb)
}

// finishRun installs the point's workload on a staged testbed, runs it
// to the horizon under the per-run wall-clock timeout, and extracts the
// record.
func finishRun(ctx context.Context, spec *Spec, p point, rec *RunRecord, tb *virtualwire.Testbed) error {
	var m measurer
	var err error
	if p.wl != nil {
		if m, err = p.wl.install(tb); err != nil {
			return err
		}
	}
	runCtx := ctx
	if spec.Timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, spec.Timeout.D())
		defer cancel()
	}
	rep, err := tb.RunContext(runCtx, spec.Horizon.D())
	rec.Report = &rep
	if m != nil {
		m.measure(rec)
	}
	if err != nil && runCtx.Err() != nil && ctx.Err() == nil {
		// The per-run deadline fired, not the campaign context: label
		// it a wall-clock timeout so the retry policy treats it as
		// transient.
		err = fmt.Errorf("campaign: run %d exceeded wall-clock timeout %v: %w: %w",
			p.index, time.Duration(spec.Timeout), virtualwire.ErrHorizonExceeded, err)
	}
	return err
}

// aggregator folds flushed records into the Summary; single-goroutine.
type aggregator struct {
	sum      Summary
	goodputs []float64
	rtts     []float64
	rollup   *metrics.Rollup
}

func newAggregator(spec *Spec, runs int) *aggregator {
	return &aggregator{
		sum: Summary{
			Name:     spec.Name,
			Seed:     spec.Seed,
			Runs:     runs,
			Outcomes: make(map[string]int),
		},
		rollup: metrics.NewRollup(),
	}
}

// collect flushes one record (sink, callback) and folds it into the
// tallies. Canceled records are tallied but never written.
func (a *aggregator) collect(rec RunRecord, opts *Options) error {
	a.sum.Outcomes[rec.Outcome]++
	if rec.Outcome == OutcomeCanceled {
		a.sum.Canceled++
		return nil
	}
	a.sum.Completed++
	a.sum.Attempts += rec.Attempts
	if rec.Attempts > 1 {
		a.sum.Retried++
	}
	switch rec.Outcome {
	case OutcomePass:
		a.sum.Passed++
	case OutcomeFail:
		a.sum.Failed++
	case OutcomeLaunchFailed:
		a.sum.LaunchFailed++
	case OutcomeTimeout:
		a.sum.Timeouts++
	default:
		a.sum.Errored++
	}
	if rep := rec.Report; rep != nil {
		a.sum.FlaggedErrors += len(rep.Errors)
		a.sum.FaultsInjected += len(rep.Faults)
		a.sum.Events += rep.Events
		a.sum.VirtualTime += Duration(rep.Duration)
		a.rollup.Add(rep.Metrics.Totals)
	}
	if rec.GoodputMbps > 0 {
		a.goodputs = append(a.goodputs, rec.GoodputMbps)
	}
	if rec.MeanRTT > 0 {
		a.rtts = append(a.rtts, float64(rec.MeanRTT))
	}
	if opts.Sink != nil {
		line, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("campaign: marshal record %d: %w", rec.Index, err)
		}
		line = append(line, '\n')
		if _, err := opts.Sink.Write(line); err != nil {
			return fmt.Errorf("campaign: sink write: %w", err)
		}
	}
	if opts.OnRecord != nil {
		opts.OnRecord(rec)
	}
	return nil
}

func (a *aggregator) finish() *Summary {
	a.sum.Interrupted = a.sum.Completed < a.sum.Runs
	if len(a.goodputs) > 0 {
		d := metrics.Summarize(a.goodputs)
		a.sum.GoodputMbps = &d
	}
	if len(a.rtts) > 0 {
		d := metrics.Summarize(a.rtts)
		a.sum.RTTNanos = &d
	}
	if a.rollup.Runs() > 0 {
		a.sum.MetricsTotals = a.rollup.Totals()
	}
	return &a.sum
}
