package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"virtualwire"
)

// quickstartScript is the paper's quickstart scenario: drop the fifth
// TCP data packet at the receiver (same text as
// scripts/quickstart_drop.fsl).
const quickstartScript = `
FILTER_TABLE
TCP_data: (34 2 0x6000), (36 2 0x4000), (47 1 0x10 0x10)
END

NODE_TABLE
node1 00:00:00:00:00:01 10.0.0.1
node2 00:00:00:00:00:02 10.0.0.2
END

SCENARIO quickstart_drop_fifth
DATA: (TCP_data, node1, node2, RECV)
(TRUE) >> ENABLE_CNTR( DATA );
((DATA = 5)) >> DROP TCP_data, node1, node2, RECV;
END
`

func tcpWorkload(bytes int) WorkloadSpec {
	return WorkloadSpec{
		Kind: "tcpbulk", From: "node1", To: "node2",
		SrcPort: 0x6000, DstPort: 0x4000, Bytes: bytes,
	}
}

func quickstartSpec(seeds int, bers []float64) Spec {
	spec := Spec{
		Name:      "quickstart-matrix",
		Seed:      42,
		SeedCount: seeds,
		Script:    quickstartScript,
		Horizon:   Duration(30 * time.Second),
		Workloads: []WorkloadSpec{tcpWorkload(16 * 1024)},
	}
	for _, ber := range bers {
		b := ber
		spec.Configs = append(spec.Configs, ConfigOverride{
			Label:        fmt.Sprintf("ber=%g", b),
			BitErrorRate: &b,
		})
	}
	return spec
}

// runToBytes executes the spec and returns (JSONL sink bytes, summary
// JSON bytes).
func runToBytes(t *testing.T, spec Spec, workers int) ([]byte, []byte) {
	t.Helper()
	var sink bytes.Buffer
	sum, err := Run(context.Background(), spec, Options{Workers: workers, Sink: &sink})
	if err != nil {
		t.Fatalf("Run(workers=%d): %v", workers, err)
	}
	var sumJSON bytes.Buffer
	if err := sum.WriteJSON(&sumJSON); err != nil {
		t.Fatalf("summary marshal: %v", err)
	}
	return sink.Bytes(), sumJSON.Bytes()
}

// TestDeterministicAcrossWorkers is the core campaign guarantee: same
// spec and seed give byte-identical JSONL and summary on 1, 4 and 8
// workers.
func TestDeterministicAcrossWorkers(t *testing.T) {
	spec := quickstartSpec(3, []float64{0, 1e-6})
	refSink, refSum := runToBytes(t, spec, 1)
	if len(refSink) == 0 {
		t.Fatal("empty sink")
	}
	if got := bytes.Count(refSink, []byte("\n")); got != spec.Runs() {
		t.Fatalf("sink lines = %d, want %d", got, spec.Runs())
	}
	for _, workers := range []int{4, 8} {
		gotSink, gotSum := runToBytes(t, spec, workers)
		if !bytes.Equal(gotSink, refSink) {
			t.Errorf("JSONL with %d workers differs from serial run", workers)
		}
		if !bytes.Equal(gotSum, refSum) {
			t.Errorf("summary with %d workers differs from serial run", workers)
		}
	}

	// Sanity on content: every record passed, faults were injected.
	var sum Summary
	if err := json.Unmarshal(refSum, &sum); err != nil {
		t.Fatalf("summary unmarshal: %v", err)
	}
	if sum.Completed != spec.Runs() || sum.Passed != spec.Runs() {
		t.Errorf("summary counts = %d completed / %d passed, want %d", sum.Completed, sum.Passed, spec.Runs())
	}
	if sum.FaultsInjected < spec.Runs() {
		t.Errorf("faults injected = %d, want >= %d (one drop per run)", sum.FaultsInjected, spec.Runs())
	}
	if sum.GoodputMbps == nil || sum.GoodputMbps.Count != spec.Runs() {
		t.Errorf("goodput distribution = %+v, want %d samples", sum.GoodputMbps, spec.Runs())
	}
	if sum.MetricsTotals["engine/drops"] < float64(spec.Runs()) {
		t.Errorf("rolled-up engine/drops = %v, want >= %d", sum.MetricsTotals["engine/drops"], spec.Runs())
	}
}

// TestRecordFields spot-checks one record's shape in the JSONL stream.
func TestRecordFields(t *testing.T) {
	spec := quickstartSpec(2, []float64{0})
	sink, _ := runToBytes(t, spec, 2)
	lines := strings.Split(strings.TrimSpace(string(sink)), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	for i, line := range lines {
		var rec RunRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if rec.Index != i {
			t.Errorf("line %d has index %d", i, rec.Index)
		}
		if rec.Seed != DeriveSeed(spec.Seed, i) {
			t.Errorf("record %d seed = %d, want derived %d", i, rec.Seed, DeriveSeed(spec.Seed, i))
		}
		if rec.Outcome != OutcomePass || rec.Attempts != 1 {
			t.Errorf("record %d: outcome %q attempts %d", i, rec.Outcome, rec.Attempts)
		}
		if rec.Report == nil || rec.Report.Scenario != "quickstart_drop_fifth" {
			t.Errorf("record %d report = %+v", i, rec.Report)
		}
		if rec.DeliveredBytes != 16*1024 {
			t.Errorf("record %d delivered = %d", i, rec.DeliveredBytes)
		}
	}
}

// TestCancellationMidCampaign cancels from OnRecord and checks the
// partial flush: a contiguous prefix of records is in the sink, the
// summary is marked interrupted, and Run returns context.Canceled.
func TestCancellationMidCampaign(t *testing.T) {
	spec := quickstartSpec(12, []float64{0, 1e-6}) // 24 runs
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var sink bytes.Buffer
	seen := 0
	sum, err := Run(ctx, spec, Options{
		Workers: 4,
		Sink:    &sink,
		OnRecord: func(RunRecord) {
			seen++
			if seen == 5 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if seen < 5 {
		t.Fatalf("OnRecord saw %d records", seen)
	}
	lines := strings.Split(strings.TrimSpace(sink.String()), "\n")
	if len(lines) >= spec.Runs() {
		t.Errorf("cancellation flushed all %d runs", len(lines))
	}
	for i, line := range lines {
		var rec RunRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d not valid JSON: %v", i, err)
		}
	}
	if !sum.Interrupted {
		t.Error("summary not marked interrupted")
	}
	if sum.Completed != len(lines) {
		t.Errorf("summary.Completed = %d, sink has %d lines", sum.Completed, len(lines))
	}
	if sum.Completed+sum.Canceled > spec.Runs() {
		t.Errorf("completed %d + canceled %d exceeds matrix %d", sum.Completed, sum.Canceled, spec.Runs())
	}
}

// TestPreCanceledContext: a context canceled before Run starts yields
// zero completed runs and a prompt return.
func TestPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := quickstartSpec(4, []float64{0})
	for _, workers := range []int{1, 4} {
		sum, err := Run(ctx, spec, Options{Workers: workers})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if sum.Completed != 0 {
			t.Errorf("workers=%d: completed %d runs under canceled context", workers, sum.Completed)
		}
	}
}

// TestRetryOnTransient substitutes the per-attempt executor to fail
// each run's first attempt with a transient (launch) error and checks
// the retry policy recovers.
func TestRetryOnTransient(t *testing.T) {
	spec := quickstartSpec(3, []float64{0})
	spec.Retries = 2
	var mu sync.Mutex
	attempts := make(map[int]int)
	opts := Options{
		Workers: 3,
		run: func(ctx context.Context, s *Spec, p point, rec *RunRecord) error {
			mu.Lock()
			attempts[p.index]++
			n := attempts[p.index]
			mu.Unlock()
			if n == 1 {
				return fmt.Errorf("flaky launch: %w", virtualwire.ErrLaunchFailed)
			}
			return runOnce(ctx, s, p, rec)
		},
	}
	var sink bytes.Buffer
	opts.Sink = &sink
	sum, err := Run(context.Background(), spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Passed != 3 || sum.Retried != 3 {
		t.Fatalf("summary = %d passed, %d retried, want 3/3", sum.Passed, sum.Retried)
	}
	if sum.Attempts != 6 {
		t.Errorf("attempts = %d, want 6", sum.Attempts)
	}
	for i, line := range strings.Split(strings.TrimSpace(sink.String()), "\n") {
		var rec RunRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Attempts != 2 || rec.Outcome != OutcomePass {
			t.Errorf("record %d: attempts %d outcome %q", i, rec.Attempts, rec.Outcome)
		}
	}
}

// TestRetriesExhausted: a run that keeps failing transiently ends with
// the matching outcome after Retries+1 attempts; permanent errors are
// not retried at all.
func TestRetriesExhausted(t *testing.T) {
	spec := quickstartSpec(1, []float64{0})
	spec.Retries = 2
	calls := 0
	opts := Options{
		Workers: 1,
		run: func(context.Context, *Spec, point, *RunRecord) error {
			calls++
			return fmt.Errorf("always down: %w", virtualwire.ErrLaunchFailed)
		},
	}
	sum, err := Run(context.Background(), spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("attempts = %d, want Retries+1 = 3", calls)
	}
	if sum.LaunchFailed != 1 || sum.Outcomes[OutcomeLaunchFailed] != 1 {
		t.Errorf("summary = %+v, want one launch_failed", sum.Outcomes)
	}

	calls = 0
	opts.run = func(context.Context, *Spec, point, *RunRecord) error {
		calls++
		return errors.New("permanent misconfiguration")
	}
	sum, err = Run(context.Background(), spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("permanent error retried: %d attempts", calls)
	}
	if sum.Errored != 1 {
		t.Errorf("summary = %+v, want one error outcome", sum.Outcomes)
	}
}

// TestPerRunTimeout: a wall-clock Timeout interrupts the run, counts as
// transient, and is labelled OutcomeTimeout once retries are exhausted.
func TestPerRunTimeout(t *testing.T) {
	spec := quickstartSpec(1, []float64{0})
	spec.Timeout = Duration(time.Nanosecond) // no run can finish in this
	spec.Retries = 1
	sum, err := Run(context.Background(), spec, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Timeouts != 1 {
		t.Fatalf("summary = %+v, want one timeout", sum.Outcomes)
	}
	if sum.Attempts != 2 {
		t.Errorf("attempts = %d, want 2 (timeout retried once)", sum.Attempts)
	}
}

func TestTransientClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{fmt.Errorf("x: %w", virtualwire.ErrLaunchFailed), true},
		{fmt.Errorf("x: %w", virtualwire.ErrUnreachable), true},
		{fmt.Errorf("x: %w", virtualwire.ErrHorizonExceeded), true},
		{context.DeadlineExceeded, true},
		{context.Canceled, false},
		{fmt.Errorf("x: %w", virtualwire.ErrScriptParse), false},
		{errors.New("misc"), false},
	}
	for _, c := range cases {
		if got := Transient(c.err); got != c.want {
			t.Errorf("Transient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestDeriveSeedSpread(t *testing.T) {
	seen := make(map[int64]bool)
	for i := 0; i < 1000; i++ {
		s := DeriveSeed(42, i)
		if seen[s] {
			t.Fatalf("seed collision at index %d", i)
		}
		seen[s] = true
	}
	if DeriveSeed(42, 0) != DeriveSeed(42, 0) {
		t.Error("derivation not stable")
	}
	if DeriveSeed(42, 0) == DeriveSeed(43, 0) {
		t.Error("campaign seed ignored")
	}
}

func TestSpecValidation(t *testing.T) {
	base := quickstartSpec(1, []float64{0})

	bad := base
	bad.Horizon = 0
	if _, err := Run(context.Background(), bad, Options{}); err == nil {
		t.Error("zero horizon accepted")
	}

	bad = base
	bad.Script = "FILTER_TABLE garbage"
	if _, err := Run(context.Background(), bad, Options{}); !errors.Is(err, virtualwire.ErrScriptParse) {
		t.Errorf("bad script: err = %v, want ErrScriptParse", err)
	}

	bad = base
	bad.Scenario = "no_such_scenario"
	if _, err := Run(context.Background(), bad, Options{}); !errors.Is(err, virtualwire.ErrScriptParse) {
		t.Errorf("missing scenario: err = %v, want ErrScriptParse", err)
	}

	bad = base
	bad.Configs[0].Medium = "carrier-pigeon"
	if _, err := Run(context.Background(), bad, Options{}); err == nil {
		t.Error("bad medium accepted")
	}

	bad = base
	bad.Workloads[0].Kind = "smoke-signals"
	if _, err := Run(context.Background(), bad, Options{}); err == nil {
		t.Error("bad workload kind accepted")
	}

	bad = base
	bad.Variants = []Variant{{}}
	if _, err := Run(context.Background(), bad, Options{}); err == nil {
		t.Error("Variants alongside Configs accepted")
	}

	bad = Spec{Horizon: Duration(time.Second)}
	if _, err := Run(context.Background(), bad, Options{}); err == nil {
		t.Error("spec with no script and no nodes accepted")
	}
}

func TestDurationJSON(t *testing.T) {
	var d Duration
	for _, src := range []string{`"1.5s"`, `1500000000`} {
		if err := json.Unmarshal([]byte(src), &d); err != nil {
			t.Fatalf("unmarshal %s: %v", src, err)
		}
		if d.D() != 1500*time.Millisecond {
			t.Errorf("unmarshal %s = %v", src, d.D())
		}
	}
	out, err := json.Marshal(Duration(30 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != `"30s"` {
		t.Errorf("marshal = %s", out)
	}
	if err := json.Unmarshal([]byte(`"bogus"`), &d); err == nil {
		t.Error("bogus duration accepted")
	}
}

// TestVariantMatrix exercises the explicit-variant mode: one scriptless
// baseline plus one scripted variant, sharing the node table.
func TestVariantMatrix(t *testing.T) {
	noScript := ""
	seed7 := int64(7)
	wl := tcpWorkload(8 * 1024)
	spec := Spec{
		Name:    "variants",
		Seed:    1,
		Nodes:   quickstartScript,
		Script:  quickstartScript,
		Horizon: Duration(30 * time.Second),
		Variants: []Variant{
			{Label: "baseline", Script: &noScript, Workload: &wl, Seed: &seed7},
			{Label: "faulted", Workload: &wl},
		},
	}
	var sink bytes.Buffer
	sum, err := Run(context.Background(), spec, Options{Workers: 2, Sink: &sink})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Completed != 2 || sum.Passed != 2 {
		t.Fatalf("summary = %+v", sum)
	}
	lines := strings.Split(strings.TrimSpace(sink.String()), "\n")
	var base, faulted RunRecord
	if err := json.Unmarshal([]byte(lines[0]), &base); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &faulted); err != nil {
		t.Fatal(err)
	}
	if base.Label != "baseline" || base.Seed != 7 {
		t.Errorf("baseline record = %+v", base)
	}
	if base.Report.Scenario != "" {
		t.Errorf("baseline ran scenario %q", base.Report.Scenario)
	}
	if faulted.Report.Scenario != "quickstart_drop_fifth" || len(faulted.Report.Faults) == 0 {
		t.Errorf("faulted record = %+v", faulted)
	}
}

// TestSummaryText smoke-tests the human rendering.
func TestSummaryText(t *testing.T) {
	spec := quickstartSpec(2, []float64{0})
	sum, err := Run(context.Background(), spec, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	text := sum.Text()
	for _, want := range []string{"quickstart-matrix", "2/2 runs completed", "2 pass", "goodput Mbps", "engine/drops"} {
		if !strings.Contains(text, want) {
			t.Errorf("summary text missing %q:\n%s", want, text)
		}
	}
}
