package campaign

import (
	"bytes"
	"context"
	"testing"
	"time"
)

// TestThousandRunAcceptance is the campaign subsystem's acceptance
// matrix: 1000 runs (250 seeds × 4 bit-error rates) of the quickstart
// drop scenario. The 8-worker aggregate (JSONL and summary) must be
// byte-identical to the serial one.
func TestThousandRunAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-run matrix skipped in -short mode")
	}
	spec := quickstartSpec(250, []float64{0, 1e-7, 1e-6, 1e-5})
	spec.Workloads[0].Bytes = 8 * 1024
	if n := spec.Runs(); n != 1000 {
		t.Fatalf("matrix size = %d, want 1000", n)
	}
	spec.Timeout = Duration(time.Minute)

	serialSink, serialSum := runToBytes(t, spec, 1)
	parSink, parSum := runToBytes(t, spec, 8)
	if !bytes.Equal(serialSink, parSink) {
		t.Error("8-worker JSONL differs from serial")
	}
	if !bytes.Equal(serialSum, parSum) {
		t.Error("8-worker summary differs from serial")
	}
	if got := bytes.Count(serialSink, []byte("\n")); got != 1000 {
		t.Errorf("sink lines = %d, want 1000", got)
	}
}

// TestCancellationIsPrompt bounds how long cancellation takes to stop a
// large in-flight campaign (the event-loop poll granularity is 64
// events, so this is generous).
func TestCancellationIsPrompt(t *testing.T) {
	spec := quickstartSpec(200, []float64{0, 1e-6}) // 400 runs
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := 0
	start := time.Now()
	var canceledAt time.Time
	_, err := Run(ctx, spec, Options{
		Workers: 8,
		OnRecord: func(RunRecord) {
			done++
			if done == 20 {
				canceledAt = time.Now()
				cancel()
			}
		},
	})
	if err == nil {
		t.Fatal("campaign ran to completion despite cancel")
	}
	if canceledAt.IsZero() {
		t.Fatalf("campaign finished before 20 records (took %v)", time.Since(start))
	}
	if lag := time.Since(canceledAt); lag > 5*time.Second {
		t.Errorf("cancellation took %v to unwind", lag)
	}
}
