package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"virtualwire/campaign"
)

// Client talks to a vwcampaignd daemon. The zero value is not usable:
// construct with NewClient.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for the daemon at addr, which may be a
// bare host:port or a full http:// base URL.
func NewClient(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{base: strings.TrimRight(addr, "/"), http: http.DefaultClient}
}

// do issues a request and decodes either the JSON body into out or the
// daemon's {"error": ...} envelope into an error.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	resp, err := c.send(ctx, method, path, body, "")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("service: decode %s %s response: %w", method, path, err)
	}
	return nil
}

func (c *Client) send(ctx context.Context, method, path string, body any, accept string) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return nil, fmt.Errorf("service: marshal request: %w", err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	if resp.StatusCode >= 300 {
		defer resp.Body.Close()
		return nil, decodeAPIError(resp)
	}
	return resp, nil
}

// decodeAPIError turns a non-2xx response into an error carrying the
// daemon's message.
func decodeAPIError(resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var ae apiError
	if json.Unmarshal(b, &ae) == nil && ae.Error != "" {
		return fmt.Errorf("service: %s (HTTP %d)", ae.Error, resp.StatusCode)
	}
	return fmt.Errorf("service: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(b))
}

// Submit sends a raw spec (the bytes of a -spec file) for tenant and
// returns the accepted job's status. The daemon validates the spec with
// the same versioned ParseSpec the CLI uses, so a spec that runs
// in-process submits unchanged.
func (c *Client) Submit(ctx context.Context, tenant string, rawSpec []byte, workers int) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/campaigns", SubmitRequest{
		Tenant:  tenant,
		Workers: workers,
		Spec:    json.RawMessage(rawSpec),
	}, &st)
	return st, err
}

// Status fetches one job's current status.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/campaigns/"+url.PathEscape(id), nil, &st)
	return st, err
}

// List fetches every job's status; tenant filters when non-empty.
func (c *Client) List(ctx context.Context, tenant string) ([]JobStatus, error) {
	path := "/v1/campaigns"
	if tenant != "" {
		path += "?tenant=" + url.QueryEscape(tenant)
	}
	var out struct {
		Jobs []JobStatus `json:"jobs"`
	}
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out.Jobs, err
}

// Cancel stops a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/campaigns/"+url.PathEscape(id)+"/cancel", nil, &st)
	return st, err
}

// StreamRecords follows the job's record stream until it is complete
// (or ctx ends). Each journal line is written to sink verbatim — byte
// for byte what an in-process run would have written — and, when
// onRecord is non-nil, also decoded and handed over for live progress.
func (c *Client) StreamRecords(ctx context.Context, id string, sink io.Writer, onRecord func(campaign.RunRecord)) error {
	resp, err := c.send(ctx, http.MethodGet, "/v1/campaigns/"+url.PathEscape(id)+"/records", nil, "")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	r := bufio.NewReaderSize(resp.Body, 1<<20)
	for {
		line, err := r.ReadBytes('\n')
		if len(line) > 0 {
			if sink != nil {
				if _, werr := sink.Write(line); werr != nil {
					return fmt.Errorf("service: write record: %w", werr)
				}
			}
			if onRecord != nil && line[len(line)-1] == '\n' {
				var rec campaign.RunRecord
				if json.Unmarshal(line[:len(line)-1], &rec) == nil {
					onRecord(rec)
				}
			}
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("service: record stream: %w", err)
		}
	}
}

// Summary fetches the job's summary; wait blocks until the job is
// terminal. A nil summary with a nil error means the job is still
// running (only possible with wait=false).
func (c *Client) Summary(ctx context.Context, id string, wait bool) (*campaign.Summary, error) {
	path := "/v1/campaigns/" + url.PathEscape(id) + "/summary"
	if wait {
		path += "?wait=1"
	}
	resp, err := c.send(ctx, http.MethodGet, path, nil, "")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusAccepted {
		return nil, nil
	}
	var sum campaign.Summary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		return nil, fmt.Errorf("service: decode summary: %w", err)
	}
	return &sum, nil
}
