package service_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"virtualwire/campaign"
	"virtualwire/campaign/service"
)

// testSpec builds a small scriptless campaign: seeds runs over a
// generated two-host testbed. Normalized up front so the in-process
// reference and the service run the exact same spec value.
func testSpec(seeds int) *campaign.Spec {
	s := &campaign.Spec{
		Name:      "svc-test",
		Seed:      42,
		SeedCount: seeds,
		Hosts:     2,
		Horizon:   campaign.Duration(5 * time.Second),
	}
	s.Normalize()
	return s
}

// inProcessBytes runs the spec through campaign.Run directly — the
// byte-identity reference every service test compares against.
func inProcessBytes(t *testing.T, spec *campaign.Spec) (jsonl, summary []byte) {
	t.Helper()
	var sink, sumBuf bytes.Buffer
	sum, err := campaign.Run(context.Background(), *spec, campaign.Options{Workers: 1, Sink: &sink})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if err := sum.WriteJSON(&sumBuf); err != nil {
		t.Fatal(err)
	}
	return sink.Bytes(), sumBuf.Bytes()
}

func readJournal(t *testing.T, dir, id string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, "jobs", id, "runs.jsonl"))
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	return b
}

func openManager(t *testing.T, dir string, budget int) *service.Manager {
	t.Helper()
	m, err := service.Open(service.Config{Dir: dir, Budget: budget, Logf: t.Logf})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return m
}

// A submitted job must run to completion with a journal byte-identical
// to an in-process campaign.Run of the same spec, and a summary that
// serializes identically — the service adds scheduling, not semantics.
func TestManagerJournalMatchesInProcess(t *testing.T) {
	spec := testSpec(6)
	wantJSONL, wantSummary := inProcessBytes(t, spec)

	dir := t.TempDir()
	m := openManager(t, dir, 4)
	defer m.Close()

	st, err := m.Submit("acme", spec, 2)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st.Tenant != "acme" || st.Runs != spec.Runs() {
		t.Errorf("submit status = %+v", st)
	}
	final, err := m.Wait(context.Background(), st.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if final.State != service.StateDone || final.Completed != spec.Runs() {
		t.Fatalf("final status = %+v", final)
	}
	if got := readJournal(t, dir, st.ID); !bytes.Equal(got, wantJSONL) {
		t.Errorf("service journal differs from in-process run (%d vs %d bytes)", len(got), len(wantJSONL))
	}
	sum, _, err := m.Summary(st.ID)
	if err != nil || sum == nil {
		t.Fatalf("Summary: %v (sum=%v)", err, sum)
	}
	var sumBuf bytes.Buffer
	if err := sum.WriteJSON(&sumBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sumBuf.Bytes(), wantSummary) {
		t.Errorf("service summary differs:\n%s\nwant:\n%s", sumBuf.Bytes(), wantSummary)
	}
}

// Canceling a queued job must dequeue it without ever running a run;
// canceling the running blocker lets the manager drain.
func TestCancelQueuedJob(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, dir, 1)
	defer m.Close()

	blocker, err := m.Submit("a", testSpec(100000), 1)
	if err != nil {
		t.Fatalf("submit blocker: %v", err)
	}
	queued, err := m.Submit("a", testSpec(1), 1)
	if err != nil {
		t.Fatalf("submit queued: %v", err)
	}
	st, err := m.Cancel(queued.ID)
	if err != nil || st.State != service.StateCanceled {
		t.Fatalf("cancel queued: %v, state %s", err, st.State)
	}
	if st.Completed != 0 {
		t.Errorf("canceled queued job completed %d runs", st.Completed)
	}
	if _, err := m.Cancel(blocker.ID); err != nil {
		t.Fatalf("cancel blocker: %v", err)
	}
	final, err := m.Wait(context.Background(), blocker.ID)
	if err != nil || final.State != service.StateCanceled {
		t.Fatalf("blocker final: %v, %+v", err, final)
	}
	// Canceling a terminal job is a no-op, not an error.
	if st, err := m.Cancel(blocker.ID); err != nil || st.State != service.StateCanceled {
		t.Errorf("re-cancel: %v, %+v", err, st)
	}
}

// Closing the manager mid-campaign and reopening over the same journal
// root must resume the interrupted job where its journal ends — without
// re-running completed runs — and finish with the same bytes as one
// uninterrupted run. This is the daemon kill+restart path.
func TestCloseReopenResumesInterruptedJob(t *testing.T) {
	spec := testSpec(60)
	wantJSONL, wantSummary := inProcessBytes(t, spec)

	dir := t.TempDir()
	m1 := openManager(t, dir, 2)
	st, err := m1.Submit("acme", spec, 2)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Let a few records reach the journal, then stop the daemon the way
	// a SIGTERM would.
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur, err := m1.Get(st.ID)
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if cur.Completed >= 3 {
			break
		}
		if cur.State == service.StateDone {
			t.Skip("campaign finished before it could be interrupted")
		}
		if time.Now().After(deadline) {
			t.Fatalf("no progress before deadline: %+v", cur)
		}
		time.Sleep(time.Millisecond)
	}
	m1.Close()

	partial := readJournal(t, dir, st.ID)
	if len(partial) == 0 || len(partial) >= len(wantJSONL) {
		t.Fatalf("interrupted journal is %d bytes of %d", len(partial), len(wantJSONL))
	}
	if !bytes.HasPrefix(wantJSONL, partial) {
		t.Fatal("interrupted journal is not a prefix of the uninterrupted run")
	}
	priorRuns := bytes.Count(partial, []byte("\n"))

	m2 := openManager(t, dir, 2)
	defer m2.Close()
	final, err := m2.Wait(context.Background(), st.ID)
	if err != nil {
		t.Fatalf("Wait after reopen: %v", err)
	}
	if final.State != service.StateDone {
		t.Fatalf("resumed job ended %s: %+v", final.State, final)
	}
	if final.ResumedFrom != priorRuns {
		t.Errorf("ResumedFrom = %d, want %d (journaled runs must not re-run)", final.ResumedFrom, priorRuns)
	}
	if got := readJournal(t, dir, st.ID); !bytes.Equal(got, wantJSONL) {
		t.Errorf("resumed journal differs from uninterrupted run (%d vs %d bytes)", len(got), len(wantJSONL))
	}
	sum, _, err := m2.Summary(st.ID)
	if err != nil || sum == nil {
		t.Fatalf("Summary after resume: %v", err)
	}
	var sumBuf bytes.Buffer
	if err := sum.WriteJSON(&sumBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sumBuf.Bytes(), wantSummary) {
		t.Errorf("resumed summary differs:\n%s\nwant:\n%s", sumBuf.Bytes(), wantSummary)
	}
}

// A terminal job must survive a reopen as readable history: status,
// journal and summary served from disk, nothing re-run.
func TestReopenServesTerminalJob(t *testing.T) {
	spec := testSpec(2)
	wantJSONL, _ := inProcessBytes(t, spec)

	dir := t.TempDir()
	m1 := openManager(t, dir, 2)
	st, err := m1.Submit("", spec, 1)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := m1.Wait(context.Background(), st.ID); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	m1.Close()

	m2 := openManager(t, dir, 2)
	defer m2.Close()
	got, err := m2.Get(st.ID)
	if err != nil || got.State != service.StateDone {
		t.Fatalf("reopened status: %v, %+v", err, got)
	}
	if got.Completed != spec.Runs() {
		t.Errorf("Completed = %d, want %d", got.Completed, spec.Runs())
	}
	sum, _, err := m2.Summary(st.ID)
	if err != nil || sum == nil {
		t.Fatalf("Summary from disk: %v (sum=%v)", err, sum)
	}
	if !bytes.Equal(readJournal(t, dir, st.ID), wantJSONL) {
		t.Error("terminal journal changed across reopen")
	}
}

// Round-robin fairness: with tenant a's queue three deep and tenant b
// holding one job, b's job must start after a's first job, not after
// a's whole queue. StartSeq makes the scheduler's start order
// observable without wall-clock races.
func TestFairSchedulingAcrossTenants(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, dir, 1)
	defer m.Close()

	blocker, err := m.Submit("blk", testSpec(100000), 1)
	if err != nil {
		t.Fatalf("submit blocker: %v", err)
	}
	submit := func(tenant string) service.JobStatus {
		st, err := m.Submit(tenant, testSpec(1), 1)
		if err != nil {
			t.Fatalf("submit %s: %v", tenant, err)
		}
		if st.State != service.StateQueued {
			t.Fatalf("tenant %s job started with budget exhausted: %+v", tenant, st)
		}
		return st
	}
	a1, a2, a3 := submit("a"), submit("a"), submit("a")
	b1 := submit("b")

	if _, err := m.Cancel(blocker.ID); err != nil {
		t.Fatalf("cancel blocker: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	seq := make(map[string]int)
	for _, st := range []service.JobStatus{a1, a2, a3, b1} {
		final, err := m.Wait(ctx, st.ID)
		if err != nil {
			t.Fatalf("wait %s: %v", st.ID, err)
		}
		if final.State != service.StateDone {
			t.Fatalf("job %s ended %s", st.ID, final.State)
		}
		seq[st.ID] = final.StartSeq
	}
	if !(seq[a1.ID] < seq[b1.ID] && seq[b1.ID] < seq[a2.ID] && seq[a2.ID] < seq[a3.ID]) {
		t.Errorf("start order unfair: a1=%d b1=%d a2=%d a3=%d (want a1 < b1 < a2 < a3)",
			seq[a1.ID], seq[b1.ID], seq[a2.ID], seq[a3.ID])
	}
}

// Two managers over one journal root would corrupt each other's
// journals; the flock makes the second Open fail until the first
// closes.
func TestJournalRootLocked(t *testing.T) {
	dir := t.TempDir()
	m1 := openManager(t, dir, 1)
	if _, err := service.Open(service.Config{Dir: dir, Budget: 1}); err == nil {
		t.Error("second Open on a locked journal root succeeded")
	}
	m1.Close()
	m2, err := service.Open(service.Config{Dir: dir, Budget: 1})
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	m2.Close()
}

// Submit must reject an invalid spec with a field-path error and leave
// no job behind.
func TestSubmitRejectsInvalidSpec(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, dir, 1)
	defer m.Close()

	bad := testSpec(1)
	bad.Configs = []campaign.ConfigOverride{{Medium: "pigeon"}}
	if _, err := m.Submit("", bad, 1); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if jobs := m.List(""); len(jobs) != 0 {
		t.Errorf("rejected submit left %d jobs", len(jobs))
	}
}
