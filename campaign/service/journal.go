package service

// On-disk journal layout, one directory per job under <Dir>/jobs/<id>/:
//
//	job.json     submit-time header: tenant, worker grant, normalized
//	             spec and its canonical hash. Written once, atomically.
//	runs.jsonl   the record stream, appended one line per finished run
//	             in run-index order — always a contiguous prefix of the
//	             matrix (campaign.Options.StrictOrder). This is the
//	             same bytes a client streams and an in-process run
//	             would have written.
//	status.json  terminal state (done/failed/canceled), written once on
//	             retirement. Its absence marks a job as interrupted: a
//	             daemon that died mid-campaign never wrote it.
//	summary.json the campaign Summary (done and canceled jobs).
//
// Resume: for a job with no terminal status, scanRecords replays
// runs.jsonl, keeps the longest prefix of well-formed records whose
// indexes count 0,1,2,…, truncates the file after it (a SIGKILL can
// land mid-write), and hands campaign.Run FirstIndex = len(prefix) and
// the prefix as Prior. Byte-identity across the kill is then exactly
// the campaign executor's resume invariant.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"virtualwire/campaign"
)

const (
	jobFile     = "job.json"
	recordsFile = "runs.jsonl"
	statusFile  = "status.json"
	summaryFile = "summary.json"
)

// jobHeader is the durable submit record.
type jobHeader struct {
	ID       string        `json:"id"`
	Seq      int           `json:"seq"`
	Tenant   string        `json:"tenant"`
	Workers  int           `json:"workers"`
	SpecHash string        `json:"spec_hash"`
	Spec     campaign.Spec `json:"spec"`
}

// statusRecord is the durable terminal state.
type statusRecord struct {
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

// writeJSONFile writes v as JSON atomically (temp file + rename), so a
// kill mid-write never leaves a torn header or status.
func writeJSONFile(dir, name string, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("service: marshal %s: %w", name, err)
	}
	tmp, err := os.CreateTemp(dir, name+".tmp*")
	if err != nil {
		return fmt.Errorf("service: %w", err)
	}
	_, werr := tmp.Write(append(b, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("service: write %s: %w", name, firstErr(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("service: %w", err)
	}
	return nil
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

func readJSONFile(dir, name string, v any) error {
	b, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	return json.Unmarshal(b, v)
}

// writeJobHeader creates the job directory and its header.
func writeJobHeader(j *Job) error {
	if err := os.MkdirAll(j.dir, 0o755); err != nil {
		return fmt.Errorf("service: %w", err)
	}
	return writeJSONFile(j.dir, jobFile, jobHeader{
		ID:       j.id,
		Seq:      j.seq,
		Tenant:   j.tenant,
		Workers:  j.workers,
		SpecHash: j.specHash,
		Spec:     j.spec,
	})
}

// scanRecords replays a journal's record stream and returns the longest
// contiguous well-formed prefix plus its byte length. Anything after it
// — a torn last line from a kill mid-write, or records past a
// cancellation hole — is not part of the resumable prefix.
func scanRecords(path string) (prior []campaign.RunRecord, goodLen int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			// No trailing newline: a torn final write. Drop it.
			return prior, goodLen, nil
		}
		if err != nil {
			return nil, 0, err
		}
		var rec campaign.RunRecord
		if json.Unmarshal(line[:len(line)-1], &rec) != nil || rec.Index != len(prior) {
			return prior, goodLen, nil
		}
		prior = append(prior, rec)
		goodLen += int64(len(line))
	}
}

// loadJournal restores every journaled job: terminal jobs become
// readable history, interrupted ones re-queue at their resume point in
// original submit order.
func (m *Manager) loadJournal() error {
	jobsDir := filepath.Join(m.cfg.Dir, "jobs")
	entries, err := os.ReadDir(jobsDir)
	if err != nil {
		return fmt.Errorf("service: %w", err)
	}
	var loaded []*Job
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(jobsDir, e.Name())
		var hdr jobHeader
		if err := readJSONFile(dir, jobFile, &hdr); err != nil {
			m.cfg.Logf("service: skipping %s: unreadable header: %v", e.Name(), err)
			continue
		}
		j := &Job{
			id:       hdr.ID,
			seq:      hdr.Seq,
			tenant:   hdr.Tenant,
			dir:      dir,
			spec:     hdr.Spec,
			specHash: hdr.SpecHash,
			workers:  hdr.Workers,
			runs:     hdr.Spec.Runs(),
			done:     make(chan struct{}),
			change:   make(chan struct{}),
		}
		j.cost = m.slotCost(&j.spec, j.workers)
		if err := m.restoreJob(j); err != nil {
			j.state = StateFailed
			j.errText = err.Error()
			close(j.done)
		}
		loaded = append(loaded, j)
	}
	sort.Slice(loaded, func(a, b int) bool { return loaded[a].seq < loaded[b].seq })
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, j := range loaded {
		if j.seq > m.nextSeq {
			m.nextSeq = j.seq
		}
		m.addJobLocked(j)
		if j.state == StateQueued {
			m.enqueueLocked(j)
			m.cfg.Logf("service: job %s (tenant %s): resuming from run %d/%d", j.id, j.tenant, j.firstIndex, j.runs)
		}
	}
	return nil
}

// restoreJob classifies one journaled job and prepares it for serving
// or resumption. The spec hash is re-derived and checked so a spec
// edited (or corrupted) between daemon runs fails loudly instead of
// resuming against a different matrix.
func (m *Manager) restoreJob(j *Job) error {
	if got := j.spec.Hash(); got != j.specHash {
		return fmt.Errorf("service: journal spec hash mismatch for %s: header says %s, spec hashes to %s", j.id, j.specHash, got)
	}
	prior, goodLen, err := scanRecords(filepath.Join(j.dir, recordsFile))
	if err != nil {
		return fmt.Errorf("service: scan journal for %s: %w", j.id, err)
	}
	j.completed = len(prior)
	for i := range prior {
		if prior[i].Outcome == campaign.OutcomePass {
			j.passed++
		} else {
			j.failed++
		}
	}
	j.safeLen.Store(goodLen)

	var st statusRecord
	switch err := readJSONFile(j.dir, statusFile, &st); {
	case err == nil:
		j.state = st.State
		j.errText = st.Error
		close(j.done)
		return nil
	case os.IsNotExist(err):
		// Interrupted (or never started): resume. Truncate anything
		// after the contiguous prefix so the append continues it.
		if err := os.Truncate(filepath.Join(j.dir, recordsFile), goodLen); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("service: truncate journal for %s: %w", j.id, err)
		}
		j.state = StateQueued
		j.firstIndex = len(prior)
		j.prior = prior
		j.resumed = j.firstIndex > 0
		return nil
	default:
		return fmt.Errorf("service: read status for %s: %w", j.id, err)
	}
}
