// Package service runs fault-injection campaigns as a service: a
// Manager owns a multi-tenant job queue over the campaign executor,
// schedules queued campaigns fairly (round-robin across tenants) within
// a shared worker-slot budget, journals every job to disk so a killed
// daemon resumes interrupted campaigns without re-running completed
// runs, and exposes the whole thing over an HTTP/JSON API (see
// NewHandler) consumed by cmd/vwcampaignd and the vwcampaign client.
//
// Determinism contract: a job's runs.jsonl is byte-identical to an
// in-process campaign.Run of the same spec at any worker or shard
// count, including across a kill+resume of the daemon mid-campaign.
// The pieces that make that hold: per-run seeds derive from (campaign
// seed, run index); the executor flushes records in run-index order;
// campaign.Options.StrictOrder keeps the journal a contiguous
// run-index prefix; and the resume scan truncates anything after that
// prefix before handing campaign.Run the remaining indexes. See
// docs/SERVICE.md.
package service

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"

	"virtualwire/campaign"
)

// Job states, as reported in JobStatus.State.
const (
	// StateQueued: accepted and journaled, waiting for worker slots.
	StateQueued = "queued"
	// StateRunning: executing under the scheduler's slot grant.
	StateRunning = "running"
	// StateDone: every run recorded and the summary written.
	StateDone = "done"
	// StateFailed: the executor returned a non-cancellation error, or
	// the journal failed integrity checks at resume.
	StateFailed = "failed"
	// StateCanceled: canceled by a client; the journaled prefix and a
	// partial summary remain readable.
	StateCanceled = "canceled"
)

// Config tunes a Manager. Dir is required; everything else defaults.
type Config struct {
	// Dir is the journal root. Jobs live in Dir/jobs/<id>/.
	Dir string
	// Budget is the shared worker-slot pool: the sum over running jobs
	// of workers × max shards per run never exceeds it (default
	// GOMAXPROCS). One slot is one expected-busy goroutine.
	Budget int
	// DefaultWorkers is granted to jobs that do not ask for a worker
	// count (default: the full budget).
	DefaultWorkers int
	// Logf, when non-nil, receives one line per job state transition.
	Logf func(format string, args ...any)
}

// Manager is the campaign service: submit jobs, watch them, stream
// their journals, cancel them. Safe for concurrent use.
type Manager struct {
	cfg Config

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string            // job IDs in submit order
	tenants  []string            // tenant names in first-appearance order
	queues   map[string][]*Job   // tenant → queued jobs, FIFO
	rrNext   int                 // round-robin cursor into tenants
	free     int                 // free worker slots
	nextSeq  int                 // next job sequence number
	startSeq int                 // scheduler start counter (fairness observable)
	closed   bool

	closedCh chan struct{}
	wg       sync.WaitGroup
	lock     *os.File // held flock on Dir/LOCK for the manager's lifetime
}

// Job is one submitted campaign and its journal. All mutable fields
// are guarded by the Manager's mutex; safeLen is atomic so streamers
// can tail the journal without taking it.
type Job struct {
	id     string
	seq    int
	tenant string
	dir    string

	spec     campaign.Spec
	specHash string
	workers  int // effective worker grant
	cost     int // slots held while running: workers × spec.MaxShards, capped at budget

	state      string
	startSeq   int
	runs       int
	completed  int
	passed     int
	failed     int
	errText    string
	resumed    bool
	firstIndex int
	prior      []campaign.RunRecord
	summary    *campaign.Summary

	safeLen atomic.Int64 // journal bytes safe to serve (whole records only)
	cancel  context.CancelFunc
	done    chan struct{} // closed on terminal state
	change  chan struct{} // closed and replaced on every visible update
}

// JobStatus is the wire form of a job's current state.
type JobStatus struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant"`
	State    string `json:"state"`
	SpecHash string `json:"spec_hash"`
	Workers  int    `json:"workers"`
	// Runs is the matrix size; Completed counts journaled records.
	Runs      int `json:"runs"`
	Completed int `json:"completed"`
	Passed    int `json:"passed"`
	Failed    int `json:"failed"`
	// ResumedFrom is the run index this daemon resumed the job at,
	// after recovering its journal (0 for jobs born here).
	ResumedFrom int `json:"resumed_from,omitempty"`
	// StartSeq orders scheduler starts across jobs (1 = started first);
	// 0 means not started yet. It makes fairness observable and
	// testable without wall-clock timestamps.
	StartSeq int    `json:"start_seq,omitempty"`
	Error    string `json:"error,omitempty"`
}

// Open loads (or initializes) the journal root and returns a running
// Manager. Jobs a previous daemon left unfinished — no terminal status
// on disk — are re-queued at their journal's resume point, in original
// submit order, before any new submission.
func Open(cfg Config) (*Manager, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("service: Config.Dir is required")
	}
	if cfg.Budget <= 0 {
		cfg.Budget = runtime.GOMAXPROCS(0)
	}
	if cfg.DefaultWorkers <= 0 || cfg.DefaultWorkers > cfg.Budget {
		cfg.DefaultWorkers = cfg.Budget
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(filepath.Join(cfg.Dir, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	// Two managers over one journal root would truncate and append each
	// other's files; an exclusive flock makes that a startup error.
	lock, err := lockDir(cfg.Dir)
	if err != nil {
		return nil, err
	}
	m := &Manager{
		cfg:      cfg,
		jobs:     make(map[string]*Job),
		queues:   make(map[string][]*Job),
		free:     cfg.Budget,
		closedCh: make(chan struct{}),
		lock:     lock,
	}
	if err := m.loadJournal(); err != nil {
		lock.Close()
		return nil, err
	}
	m.mu.Lock()
	m.scheduleLocked()
	m.mu.Unlock()
	return m, nil
}

// Budget reports the manager's worker-slot pool size.
func (m *Manager) Budget() int { return m.cfg.Budget }

// Submit validates, journals and enqueues one campaign for tenant.
// workers <= 0 asks for the default grant; the grant is clamped so
// workers × spec.MaxShards fits the budget. The spec must already be
// validated (ParseSpec or Validate); Submit re-checks cheaply.
func (m *Manager) Submit(tenant string, spec *campaign.Spec, workers int) (JobStatus, error) {
	if tenant == "" {
		tenant = "default"
	}
	norm := *spec
	norm.Normalize()
	if err := norm.Validate(); err != nil {
		return JobStatus{}, err
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return JobStatus{}, fmt.Errorf("service: manager is closed")
	}
	m.nextSeq++
	seq := m.nextSeq
	m.mu.Unlock()

	j := &Job{
		id:       fmt.Sprintf("j%06d", seq),
		seq:      seq,
		tenant:   tenant,
		spec:     norm,
		specHash: norm.Hash(),
		workers:  m.grantWorkers(&norm, workers),
		state:    StateQueued,
		runs:     norm.Runs(),
		done:     make(chan struct{}),
		change:   make(chan struct{}),
	}
	j.cost = m.slotCost(&norm, j.workers)
	j.dir = filepath.Join(m.cfg.Dir, "jobs", j.id)
	if err := writeJobHeader(j); err != nil {
		return JobStatus{}, err
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return JobStatus{}, fmt.Errorf("service: manager is closed")
	}
	m.addJobLocked(j)
	m.enqueueLocked(j)
	m.scheduleLocked()
	return j.statusLocked(), nil
}

// grantWorkers resolves a submit-time worker request against the
// budget: workers × maxShards must fit, but never below one worker.
func (m *Manager) grantWorkers(spec *campaign.Spec, requested int) int {
	w := requested
	if w <= 0 {
		w = m.cfg.DefaultWorkers
	}
	maxSh := spec.MaxShards()
	if maxSh < 1 {
		maxSh = 1
	}
	if w*maxSh > m.cfg.Budget {
		w = m.cfg.Budget / maxSh
	}
	if w < 1 {
		w = 1
	}
	return w
}

// slotCost is what a running job holds out of the budget. A job whose
// minimal footprint (one worker × its shard width) exceeds the budget
// is admitted at full-budget cost rather than rejected — it simply
// runs alone, and the campaign executor's own GOMAXPROCS clamp bounds
// the real parallelism.
func (m *Manager) slotCost(spec *campaign.Spec, workers int) int {
	maxSh := spec.MaxShards()
	if maxSh < 1 {
		maxSh = 1
	}
	cost := workers * maxSh
	if cost > m.cfg.Budget {
		cost = m.cfg.Budget
	}
	if cost < 1 {
		cost = 1
	}
	return cost
}

// addJobLocked registers the job in the id map and orderings.
func (m *Manager) addJobLocked(j *Job) {
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	if _, ok := m.queues[j.tenant]; !ok {
		found := false
		for _, t := range m.tenants {
			if t == j.tenant {
				found = true
				break
			}
		}
		if !found {
			m.tenants = append(m.tenants, j.tenant)
		}
		m.queues[j.tenant] = nil
	}
}

func (m *Manager) enqueueLocked(j *Job) {
	m.queues[j.tenant] = append(m.queues[j.tenant], j)
}

// scheduleLocked starts every queued job the budget allows, visiting
// tenants round-robin from the cursor so no tenant's queue depth can
// starve another tenant's next job. Within a tenant, jobs start in
// submit order (head of line).
func (m *Manager) scheduleLocked() {
	if m.closed {
		return
	}
	for {
		started := false
		n := len(m.tenants)
		for k := 0; k < n; k++ {
			ti := (m.rrNext + k) % n
			q := m.queues[m.tenants[ti]]
			if len(q) == 0 {
				continue
			}
			j := q[0]
			if j.cost > m.free {
				continue
			}
			m.queues[m.tenants[ti]] = q[1:]
			m.rrNext = (ti + 1) % n
			m.startLocked(j)
			started = true
		}
		if !started {
			return
		}
	}
}

func (m *Manager) startLocked(j *Job) {
	m.free -= j.cost
	m.startSeq++
	j.startSeq = m.startSeq
	j.state = StateRunning
	ctx, cancel := context.WithCancel(context.Background())
	j.cancel = cancel
	m.bumpLocked(j)
	m.cfg.Logf("service: job %s (tenant %s): running (%d workers, %d slots, resume from %d)",
		j.id, j.tenant, j.workers, j.cost, j.firstIndex)
	m.wg.Add(1)
	go m.runJob(ctx, j)
}

// runJob executes the job's campaign against its journal.
func (m *Manager) runJob(ctx context.Context, j *Job) {
	defer m.wg.Done()
	f, err := os.OpenFile(filepath.Join(j.dir, recordsFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		m.finishJob(j, nil, fmt.Errorf("service: open journal: %w", err))
		return
	}
	sink := &journalSink{f: f, j: j}
	opts := campaign.Options{
		Workers:     j.workers,
		Sink:        sink,
		StrictOrder: true,
		FirstIndex:  j.firstIndex,
		Prior:       j.prior,
		OnRecord:    func(r campaign.RunRecord) { m.noteRecord(j, r) },
	}
	sum, runErr := campaign.Run(ctx, j.spec, opts)
	if cerr := f.Close(); runErr == nil && cerr != nil {
		runErr = fmt.Errorf("service: close journal: %w", cerr)
	}
	m.finishJob(j, sum, runErr)
}

// journalSink appends whole record lines to the journal and publishes
// the new safe length. The campaign collector writes exactly one line
// per call, so safeLen only ever advances over complete records.
type journalSink struct {
	f *os.File
	j *Job
}

func (s *journalSink) Write(p []byte) (int, error) {
	n, err := s.f.Write(p)
	if err == nil {
		s.j.safeLen.Add(int64(n))
	}
	return n, err
}

// noteRecord folds one flushed record into the job's live counters.
func (m *Manager) noteRecord(j *Job, r campaign.RunRecord) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j.completed++
	if r.Outcome == campaign.OutcomePass {
		j.passed++
	} else {
		j.failed++
	}
	m.bumpLocked(j)
}

// finishJob retires a run: journals the terminal state, releases the
// job's slots and wakes the scheduler. A manager shutdown (Close) is
// not terminal — the journal is left resumable and no status is
// written, exactly as if the daemon had been killed.
func (m *Manager) finishJob(j *Job, sum *campaign.Summary, runErr error) {
	m.mu.Lock()
	interrupted := m.closed
	canceled := j.state == StateCanceled
	m.mu.Unlock()

	state := StateDone
	var errText string
	switch {
	case interrupted:
		// Leave the journal untouched: a reopened manager resumes it.
		state = StateRunning
	case canceled:
		state = StateCanceled
	case runErr != nil:
		state, errText = StateFailed, runErr.Error()
	}

	if !interrupted {
		if sum != nil && (state == StateDone || state == StateCanceled) {
			if err := writeJSONFile(j.dir, summaryFile, sum); err != nil && state == StateDone {
				state, errText = StateFailed, err.Error()
			}
		}
		if err := writeJSONFile(j.dir, statusFile, statusRecord{State: state, Error: errText}); err != nil {
			state, errText = StateFailed, err.Error()
		}
	}

	m.mu.Lock()
	j.state = state
	j.errText = errText
	j.summary = sum
	j.prior = nil // the journal owns the records now
	if !interrupted || state != StateRunning {
		close(j.done)
	}
	m.free += j.cost
	m.bumpLocked(j)
	m.cfg.Logf("service: job %s (tenant %s): %s (%d/%d runs)", j.id, j.tenant, state, j.completed, j.runs)
	m.scheduleLocked()
	m.mu.Unlock()
}

// bumpLocked wakes everything waiting on the job's state.
func (m *Manager) bumpLocked(j *Job) {
	close(j.change)
	j.change = make(chan struct{})
}

// Get returns the job's current status.
func (m *Manager) Get(id string) (JobStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("service: no job %q", id)
	}
	return j.statusLocked(), nil
}

// List returns every job's status in submit order; tenant filters when
// non-empty.
func (m *Manager) List(tenant string) []JobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []JobStatus
	for _, id := range m.order {
		j := m.jobs[id]
		if tenant != "" && j.tenant != tenant {
			continue
		}
		out = append(out, j.statusLocked())
	}
	return out
}

// Cancel stops a queued or running job. Canceling a terminal job is a
// no-op returning its status.
func (m *Manager) Cancel(id string) (JobStatus, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return JobStatus{}, fmt.Errorf("service: no job %q", id)
	}
	switch j.state {
	case StateQueued:
		q := m.queues[j.tenant]
		for i, qj := range q {
			if qj == j {
				m.queues[j.tenant] = append(q[:i:i], q[i+1:]...)
				break
			}
		}
		j.state = StateCanceled
		m.bumpLocked(j)
		st := j.statusLocked()
		dir := j.dir
		close(j.done)
		m.mu.Unlock()
		_ = writeJSONFile(dir, statusFile, statusRecord{State: StateCanceled})
		return st, nil
	case StateRunning:
		j.state = StateCanceled // finishJob sees this and journals it
		cancel := j.cancel
		m.bumpLocked(j)
		m.mu.Unlock()
		cancel()
		st, err := m.Get(id)
		return st, err
	default:
		st := j.statusLocked()
		m.mu.Unlock()
		return st, nil
	}
}

// Wait blocks until the job reaches a terminal state (or ctx ends) and
// returns its final status.
func (m *Manager) Wait(ctx context.Context, id string) (JobStatus, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return JobStatus{}, fmt.Errorf("service: no job %q", id)
	}
	done := j.done
	m.mu.Unlock()
	select {
	case <-done:
		return m.Get(id)
	case <-m.closedCh:
		return JobStatus{}, fmt.Errorf("service: manager closed while waiting for %s", id)
	case <-ctx.Done():
		return JobStatus{}, ctx.Err()
	}
}

// Summary returns the job's summary: the full one for done jobs, the
// partial one for canceled/failed jobs when available.
func (m *Manager) Summary(id string) (*campaign.Summary, JobStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, JobStatus{}, fmt.Errorf("service: no job %q", id)
	}
	st := j.statusLocked()
	if j.summary == nil && (j.state == StateDone || j.state == StateCanceled) {
		// Terminal before this process started: load from the journal.
		var sum campaign.Summary
		if err := readJSONFile(j.dir, summaryFile, &sum); err == nil {
			j.summary = &sum
		}
	}
	return j.summary, st, nil
}

// Close stops the manager the way a SIGTERM stops the daemon: running
// jobs are interrupted mid-campaign and their journals left exactly as
// a kill would — no terminal status — so a reopened Manager resumes
// them. Queued jobs stay queued on disk. Close blocks until every
// executor goroutine has returned.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	close(m.closedCh)
	var cancels []context.CancelFunc
	for _, j := range m.jobs {
		if j.state == StateRunning && j.cancel != nil {
			cancels = append(cancels, j.cancel)
		}
	}
	m.mu.Unlock()
	for _, c := range cancels {
		c()
	}
	m.wg.Wait()
	if m.lock != nil {
		m.lock.Close() // releases the journal-root flock
	}
}

// statusLocked snapshots the job under the manager lock.
func (j *Job) statusLocked() JobStatus {
	return JobStatus{
		ID:          j.id,
		Tenant:      j.tenant,
		State:       j.state,
		SpecHash:    j.specHash,
		Workers:     j.workers,
		Runs:        j.runs,
		Completed:   j.completed,
		Passed:      j.passed,
		Failed:      j.failed,
		ResumedFrom: j.firstIndex,
		StartSeq:    j.startSeq,
		Error:       j.errText,
	}
}

// watch returns the channel closed at the job's next visible update.
func (m *Manager) watch(j *Job) <-chan struct{} {
	m.mu.Lock()
	defer m.mu.Unlock()
	return j.change
}

// job resolves an id under the lock (for the HTTP layer).
func (m *Manager) job(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

func (m *Manager) jobState(j *Job) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return j.state
}
