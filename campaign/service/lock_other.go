//go:build !unix

package service

import (
	"fmt"
	"os"
	"path/filepath"
)

// lockDir on platforms without flock falls back to holding the file
// open without mutual exclusion; concurrent daemons over one journal
// root are then the operator's responsibility.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	return f, nil
}
