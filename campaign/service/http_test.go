package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"virtualwire/campaign"
	"virtualwire/campaign/service"
)

func startServer(t *testing.T, budget int) (*service.Manager, *service.Client, *httptest.Server) {
	t.Helper()
	m := openManager(t, t.TempDir(), budget)
	ts := httptest.NewServer(service.NewHandler(m))
	t.Cleanup(func() {
		ts.Close()
		m.Close()
	})
	return m, service.NewClient(ts.URL), ts
}

func rawSpec(t *testing.T, spec *campaign.Spec) []byte {
	t.Helper()
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// The full remote round trip: submit over HTTP, stream the records
// while the job runs, fetch the summary. The streamed bytes must equal
// an in-process run — the client-side half of the byte-identity
// contract.
func TestHTTPSubmitStreamSummary(t *testing.T) {
	spec := testSpec(4)
	wantJSONL, wantSummary := inProcessBytes(t, spec)
	_, c, _ := startServer(t, 2)
	ctx := context.Background()

	st, err := c.Submit(ctx, "acme", rawSpec(t, spec), 2)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st.ID == "" || st.Tenant != "acme" {
		t.Fatalf("submit status = %+v", st)
	}

	var streamed bytes.Buffer
	var live int
	if err := c.StreamRecords(ctx, st.ID, &streamed, func(campaign.RunRecord) { live++ }); err != nil {
		t.Fatalf("StreamRecords: %v", err)
	}
	if !bytes.Equal(streamed.Bytes(), wantJSONL) {
		t.Errorf("streamed records differ from in-process run (%d vs %d bytes)", streamed.Len(), len(wantJSONL))
	}
	if live != spec.Runs() {
		t.Errorf("onRecord fired %d times, want %d", live, spec.Runs())
	}

	sum, err := c.Summary(ctx, st.ID, true)
	if err != nil || sum == nil {
		t.Fatalf("Summary: %v (sum=%v)", err, sum)
	}
	var sumBuf bytes.Buffer
	if err := sum.WriteJSON(&sumBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sumBuf.Bytes(), wantSummary) {
		t.Errorf("remote summary differs:\n%s\nwant:\n%s", sumBuf.Bytes(), wantSummary)
	}

	final, err := c.Status(ctx, st.ID)
	if err != nil || final.State != service.StateDone {
		t.Fatalf("Status: %v, %+v", err, final)
	}
	jobs, err := c.List(ctx, "acme")
	if err != nil || len(jobs) != 1 || jobs[0].ID != st.ID {
		t.Errorf("List: %v, %+v", err, jobs)
	}
}

// Submit-time validation failures surface as 400s naming the offending
// spec field, for both schema violations and unknown fields.
func TestHTTPSubmitRejectsBadSpecs(t *testing.T) {
	_, c, ts := startServer(t, 1)
	ctx := context.Background()

	cases := []struct {
		name, spec, want string
	}{
		{"unknown-field", `{"hosts": 2, "horizon": "1s", "sedes": 1}`, "sedes"},
		{"bad-medium", `{"hosts": 2, "horizon": "1s", "configs": [{"medium": "pigeon"}]}`, "configs[0].medium"},
		{"future-version", `{"version": 99, "hosts": 2, "horizon": "1s"}`, "version"},
		{"no-horizon", `{"hosts": 2}`, "horizon"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := c.Submit(ctx, "", []byte(tc.spec), 1)
			if err == nil {
				t.Fatal("bad spec accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error does not name %q: %v", tc.want, err)
			}
		})
	}

	// The submit envelope itself is strict too.
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json",
		strings.NewReader(`{"bogus": 1, "spec": {"hosts": 2, "horizon": "1s"}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown envelope field: HTTP %d, want 400", resp.StatusCode)
	}
}

func TestHTTPUnknownJob(t *testing.T) {
	_, c, _ := startServer(t, 1)
	if _, err := c.Status(context.Background(), "j999999"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("missing job: %v, want HTTP 404", err)
	}
}

// Cancel over HTTP stops a running job; its journal stays a readable
// contiguous prefix and the stream terminates.
func TestHTTPCancelRunningJob(t *testing.T) {
	_, c, _ := startServer(t, 1)
	ctx := context.Background()

	st, err := c.Submit(ctx, "", rawSpec(t, testSpec(100000)), 1)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	sum, err := c.Summary(ctx, st.ID, true)
	if err != nil {
		t.Fatalf("Summary after cancel: %v", err)
	}
	final, err := c.Status(ctx, st.ID)
	if err != nil || final.State != service.StateCanceled {
		t.Fatalf("Status: %v, %+v", err, final)
	}
	if sum != nil && sum.Completed != final.Completed {
		t.Errorf("partial summary has %d runs, status says %d", sum.Completed, final.Completed)
	}
	var streamed bytes.Buffer
	if err := c.StreamRecords(ctx, st.ID, &streamed, nil); err != nil {
		t.Fatalf("StreamRecords after cancel: %v", err)
	}
	if got := bytes.Count(streamed.Bytes(), []byte("\n")); got != final.Completed {
		t.Errorf("stream has %d records, status says %d", got, final.Completed)
	}
}

// The SSE variant frames each record as a data event and signals the
// terminal state with a done event.
func TestHTTPRecordsSSE(t *testing.T) {
	_, c, ts := startServer(t, 1)
	ctx := context.Background()

	spec := testSpec(2)
	st, err := c.Submit(ctx, "", rawSpec(t, spec), 1)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := c.Summary(ctx, st.ID, true); err != nil {
		t.Fatalf("wait: %v", err)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/campaigns/"+st.ID+"/records", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if got := bytes.Count(body, []byte("data: {")); got != spec.Runs() {
		t.Errorf("SSE stream has %d record frames, want %d\n%s", got, spec.Runs(), body)
	}
	if !bytes.Contains(body, []byte("event: done\ndata: done\n\n")) {
		t.Errorf("SSE stream missing done event:\n%s", body)
	}
}

// /metrics exposes per-job series through the existing Prometheus
// exporter, keyed by job id.
func TestHTTPMetrics(t *testing.T) {
	_, c, ts := startServer(t, 1)
	ctx := context.Background()

	st, err := c.Submit(ctx, "acme", rawSpec(t, testSpec(1)), 1)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := c.Summary(ctx, st.ID, true); err != nil {
		t.Fatalf("wait: %v", err)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		`vw_campaignd_runs_completed{node="` + st.ID + `"`,
		`vw_campaignd_jobs_running{node="tenant:acme"`,
		`vw_campaignd_worker_slots{node="service"`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}
