package service

// HTTP/JSON API, versioned under /v1 (see docs/SERVICE.md):
//
//	POST /v1/campaigns                submit {tenant?, workers?, spec}
//	GET  /v1/campaigns[?tenant=]      list jobs
//	GET  /v1/campaigns/{id}           job status
//	GET  /v1/campaigns/{id}/records   stream the record journal: raw
//	                                  JSONL (chunked) by default, SSE
//	                                  when Accept: text/event-stream
//	GET  /v1/campaigns/{id}/summary   summary (?wait=1 blocks until
//	                                  terminal)
//	POST /v1/campaigns/{id}/cancel    cancel
//	GET  /metrics                     Prometheus text exposition
//	GET  /healthz                     liveness
//
// Records are streamed verbatim from the journal — the same bytes the
// executor wrote — so a client that saves the stream holds a file
// byte-identical to an in-process run of the same spec.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"virtualwire/campaign"
	"virtualwire/internal/metrics"
)

// SubmitRequest is the POST /v1/campaigns body. The spec rides as raw
// JSON so it goes through campaign.ParseSpec — the same strict,
// versioned decode path the CLI -spec flag uses.
type SubmitRequest struct {
	// Tenant buckets the job for fair scheduling ("default" if empty).
	Tenant string `json:"tenant,omitempty"`
	// Workers requests a worker-pool size (0 = service default); the
	// grant is clamped so workers × shards fits the daemon's budget.
	Workers int `json:"workers,omitempty"`
	// Spec is the versioned campaign spec.
	Spec json.RawMessage `json:"spec"`
}

// apiError is every non-2xx body.
type apiError struct {
	Error string `json:"error"`
}

// NewHandler serves the Manager's API.
func NewHandler(m *Manager) http.Handler {
	h := &handler{m: m}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", h.submit)
	mux.HandleFunc("GET /v1/campaigns", h.list)
	mux.HandleFunc("GET /v1/campaigns/{id}", h.get)
	mux.HandleFunc("GET /v1/campaigns/{id}/records", h.records)
	mux.HandleFunc("GET /v1/campaigns/{id}/summary", h.summary)
	mux.HandleFunc("POST /v1/campaigns/{id}/cancel", h.cancel)
	mux.HandleFunc("GET /metrics", h.metrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	return mux
}

type handler struct {
	m *Manager
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

func (h *handler) submit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req SubmitRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "submit request: %v", err)
		return
	}
	if len(req.Spec) == 0 {
		writeError(w, http.StatusBadRequest, `submit request: missing "spec"`)
		return
	}
	spec, err := campaign.ParseSpec(req.Spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	st, err := h.m.Submit(req.Tenant, spec, req.Workers)
	if err != nil {
		code := http.StatusInternalServerError
		var fe *campaign.FieldError
		if errors.As(err, &fe) {
			code = http.StatusBadRequest
		}
		writeError(w, code, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, st)
}

func (h *handler) list(w http.ResponseWriter, r *http.Request) {
	jobs := h.m.List(r.URL.Query().Get("tenant"))
	if jobs == nil {
		jobs = []JobStatus{}
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobStatus `json:"jobs"`
	}{jobs})
}

func (h *handler) get(w http.ResponseWriter, r *http.Request) {
	st, err := h.m.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (h *handler) cancel(w http.ResponseWriter, r *http.Request) {
	st, err := h.m.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (h *handler) summary(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if wait, _ := strconv.ParseBool(r.URL.Query().Get("wait")); wait {
		if _, err := h.m.Wait(r.Context(), id); err != nil {
			code := http.StatusNotFound
			if r.Context().Err() != nil {
				code = 499 // client closed request
			}
			writeError(w, code, "%v", err)
			return
		}
	}
	sum, st, err := h.m.Summary(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	if sum == nil {
		switch st.State {
		case StateQueued, StateRunning:
			writeJSON(w, http.StatusAccepted, st)
		default:
			writeError(w, http.StatusConflict, "service: job %s is %s with no summary: %s", id, st.State, st.Error)
		}
		return
	}
	writeJSON(w, http.StatusOK, sum)
}

// records streams the job's journal. The default stream is the raw
// JSONL bytes, flushed record by record while the job runs; with
// Accept: text/event-stream each record becomes one SSE data frame and
// a final "done" event carries the terminal state.
func (h *handler) records(w http.ResponseWriter, r *http.Request) {
	j, ok := h.m.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "service: no job %q", r.PathValue("id"))
		return
	}
	sse := r.Header.Get("Accept") == "text/event-stream"
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}

	path := filepath.Join(j.dir, recordsFile)
	var f *os.File
	defer func() {
		if f != nil {
			f.Close()
		}
	}()
	var off int64
	var lineBuf *bufio.Reader
	for {
		// Take the watch channel before sampling state: any update after
		// this point closes it, so progress between the checks below and
		// the select cannot be missed.
		change := h.m.watch(j)

		// Publish everything under the safe watermark, then wait for
		// growth or a terminal state.
		safe := j.safeLen.Load()
		if f == nil && safe > 0 {
			var err error
			if f, err = os.Open(path); err != nil {
				return
			}
			if sse {
				lineBuf = bufio.NewReaderSize(f, 1<<20)
			}
		}
		if off < safe {
			if sse {
				if !copySSE(w, lineBuf, safe-off) {
					return
				}
			} else {
				if _, err := io.CopyN(w, f, safe-off); err != nil {
					return
				}
			}
			off = safe
			flush()
			continue
		}
		state := h.m.jobState(j)
		terminal := state == StateDone || state == StateFailed || state == StateCanceled
		if terminal && off >= j.safeLen.Load() {
			if sse {
				fmt.Fprintf(w, "event: done\ndata: %s\n\n", state)
				flush()
			}
			return
		}
		select {
		case <-change:
		case <-r.Context().Done():
			return
		case <-h.m.closedCh:
			return
		}
	}
}

// copySSE re-frames n bytes of JSONL as SSE data events.
func copySSE(w io.Writer, r *bufio.Reader, n int64) bool {
	for n > 0 {
		line, err := r.ReadBytes('\n')
		if err != nil {
			return false
		}
		n -= int64(len(line))
		if _, err := fmt.Fprintf(w, "data: %s\n\n", line[:len(line)-1]); err != nil {
			return false
		}
	}
	return true
}

// metrics exposes the service's own state in the Prometheus text
// format, reusing the simulator's exporter: every sample is keyed
// (node, layer, name), with the job id as the node label — per-job
// scrape series without a second exposition library.
func (h *handler) metrics(w http.ResponseWriter, r *http.Request) {
	var samples []metrics.Sample
	add := func(node, name string, kind metrics.Kind, v float64) {
		samples = append(samples, metrics.Sample{
			Node: node, Layer: "campaignd", Name: name, Kind: kind, Value: v,
		})
	}

	m := h.m
	m.mu.Lock()
	type tenantCounts struct{ queued, running, terminal int }
	byTenant := make(map[string]*tenantCounts)
	for _, id := range m.order {
		j := m.jobs[id]
		tc := byTenant[j.tenant]
		if tc == nil {
			tc = &tenantCounts{}
			byTenant[j.tenant] = tc
		}
		switch j.state {
		case StateQueued:
			tc.queued++
		case StateRunning:
			tc.running++
		default:
			tc.terminal++
		}
		add(j.id, "runs", metrics.KindGauge, float64(j.runs))
		add(j.id, "runs_completed", metrics.KindCounter, float64(j.completed))
		add(j.id, "runs_passed", metrics.KindCounter, float64(j.passed))
		add(j.id, "runs_failed", metrics.KindCounter, float64(j.failed))
		add(j.id, "workers", metrics.KindGauge, float64(j.workers))
		add(j.id, "running", metrics.KindGauge, boolGauge(j.state == StateRunning))
	}
	free, total := m.free, m.cfg.Budget
	jobsTotal := len(m.order)
	tenants := append([]string(nil), m.tenants...)
	m.mu.Unlock()

	sort.Strings(tenants)
	for _, t := range tenants {
		tc := byTenant[t]
		add("tenant:"+t, "jobs_queued", metrics.KindGauge, float64(tc.queued))
		add("tenant:"+t, "jobs_running", metrics.KindGauge, float64(tc.running))
		add("tenant:"+t, "jobs_terminal", metrics.KindGauge, float64(tc.terminal))
	}
	add("service", "jobs", metrics.KindGauge, float64(jobsTotal))
	add("service", "worker_slots", metrics.KindGauge, float64(total))
	add("service", "worker_slots_free", metrics.KindGauge, float64(free))

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = metrics.WritePrometheus(w, samples)
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
