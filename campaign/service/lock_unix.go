//go:build unix

package service

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes an exclusive advisory flock on dir/LOCK. The lock is
// held for the returned file's lifetime and vanishes with the process,
// so a SIGKILL never leaves a stale lock behind.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("service: journal root %s is in use by another daemon: %w", dir, err)
	}
	return f, nil
}
