package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

// scanJSONL parses a sink's bytes back into records, asserting the
// contiguous-prefix invariant StrictOrder promises.
func scanJSONL(t *testing.T, b []byte) []RunRecord {
	t.Helper()
	var recs []RunRecord
	for _, line := range bytes.Split(b, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var r RunRecord
		if err := json.Unmarshal(line, &r); err != nil {
			t.Fatalf("bad sink line %q: %v", line, err)
		}
		if r.Index != len(recs) {
			t.Fatalf("sink not a contiguous prefix: line %d has index %d", len(recs), r.Index)
		}
		recs = append(recs, r)
	}
	return recs
}

// A campaign resumed with FirstIndex/Prior must append exactly the
// missing records: the concatenated sink bytes and the final summary
// equal a single uninterrupted run's, at any worker count and any cut
// point. The prior prefix is sliced from a reference run — exactly
// what the service journal's resume scan hands back after a kill.
func TestResumeMatchesUninterrupted(t *testing.T) {
	spec := quickstartSpec(6, []float64{0, 1e-6})

	wantJSONL, wantSummary := runToBytes(t, spec, 1)
	lines := bytes.SplitAfter(wantJSONL, []byte("\n"))

	for _, workers := range []int{1, 4} {
		for _, cut := range []int{1, 3, spec.Runs() - 1} {
			var partial []byte
			for _, line := range lines[:cut] {
				partial = append(partial, line...)
			}
			prior := scanJSONL(t, partial)
			if len(prior) != cut {
				t.Fatalf("sliced %d prior records, want %d", len(prior), cut)
			}

			sink := bytes.NewBuffer(append([]byte(nil), partial...))
			sum, err := Run(context.Background(), spec, Options{
				Workers:     workers,
				Sink:        sink,
				StrictOrder: true,
				FirstIndex:  cut,
				Prior:       prior,
			})
			if err != nil {
				t.Fatalf("workers=%d cut=%d: resume: %v", workers, cut, err)
			}
			if !bytes.Equal(sink.Bytes(), wantJSONL) {
				t.Errorf("workers=%d cut=%d: resumed JSONL differs from uninterrupted run", workers, cut)
			}
			var sumBuf bytes.Buffer
			if err := sum.WriteJSON(&sumBuf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(sumBuf.Bytes(), wantSummary) {
				t.Errorf("workers=%d cut=%d: resumed summary differs from uninterrupted run:\n--- resumed\n%s\n--- uninterrupted\n%s",
					workers, cut, sumBuf.Bytes(), wantSummary)
			}
		}
	}
}

// Cancellation under StrictOrder must leave the sink a contiguous
// run-index prefix of the uninterrupted byte stream — never a record
// above a hole — which is what makes a canceled or killed journal
// resumable at all. (The run may complete before cancellation lands;
// the invariant holds either way.)
func TestStrictOrderCancelKeepsContiguousPrefix(t *testing.T) {
	spec := quickstartSpec(6, []float64{0, 1e-6})
	wantJSONL, _ := runToBytes(t, spec, 1)

	for _, workers := range []int{1, 4} {
		var sink bytes.Buffer
		ctx, cancel := context.WithCancel(context.Background())
		flushed := 0
		_, err := Run(ctx, spec, Options{
			Workers:     workers,
			Sink:        &sink,
			StrictOrder: true,
			OnRecord: func(RunRecord) {
				flushed++
				if flushed == 3 {
					cancel()
				}
			},
		})
		cancel()
		prior := scanJSONL(t, sink.Bytes()) // fatals on any index gap
		if err == nil && len(prior) != spec.Runs() {
			t.Errorf("workers=%d: run reported success with %d of %d records", workers, len(prior), spec.Runs())
		}
		if !bytes.HasPrefix(wantJSONL, sink.Bytes()) {
			t.Errorf("workers=%d: canceled sink is not a byte prefix of the uninterrupted run", workers)
		}
	}
}

// Resuming past the final record is the "killed after the last flush"
// case: no run executes, the summary is rebuilt from Prior alone.
func TestResumeFromCompleteJournal(t *testing.T) {
	spec := quickstartSpec(2, nil)
	wantJSONL, wantSummary := runToBytes(t, spec, 1)
	prior := scanJSONL(t, wantJSONL)

	var sink bytes.Buffer
	sum, err := Run(context.Background(), spec, Options{
		Sink:        &sink,
		StrictOrder: true,
		FirstIndex:  len(prior),
		Prior:       prior,
	})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if sink.Len() != 0 {
		t.Errorf("resume past the end re-wrote %d bytes", sink.Len())
	}
	var sumBuf bytes.Buffer
	if err := sum.WriteJSON(&sumBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sumBuf.Bytes(), wantSummary) {
		t.Errorf("summary rebuilt from Prior differs:\n%s\nwant:\n%s", sumBuf.Bytes(), wantSummary)
	}
}

func TestResumeBeyondMatrixRejected(t *testing.T) {
	spec := quickstartSpec(1, nil)
	if _, err := Run(context.Background(), spec, Options{FirstIndex: spec.Runs() + 1}); err == nil {
		t.Error("FirstIndex beyond the matrix accepted")
	}
}
