package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"virtualwire/internal/metrics"
)

// Distribution is the order-statistics summary used for campaign-level
// measurement percentiles (re-exported from the metrics layer).
type Distribution = metrics.Distribution

// Summary aggregates a campaign: outcome counts, retry accounting,
// fault/error totals, measurement percentiles and rolled-up metric
// counters. Like RunRecord it contains no wall-clock data, so equal
// campaigns marshal to identical bytes on any worker count.
type Summary struct {
	// Name and Seed echo the spec.
	Name string `json:"name,omitempty"`
	Seed int64  `json:"seed"`
	// Runs is the planned matrix size; Completed counts records
	// actually flushed (less than Runs after cancellation).
	Runs      int `json:"runs"`
	Completed int `json:"completed"`
	// Outcome tallies.
	Passed       int `json:"passed"`
	Failed       int `json:"failed"`
	LaunchFailed int `json:"launch_failed,omitempty"`
	Timeouts     int `json:"timeouts,omitempty"`
	Errored      int `json:"errored,omitempty"`
	Canceled     int `json:"canceled,omitempty"`
	// Outcomes maps every outcome label to its count (includes
	// canceled in-flight runs, which have no sink record).
	Outcomes map[string]int `json:"outcomes"`
	// Interrupted is set when the campaign did not flush every planned
	// run (cancellation or a sink failure).
	Interrupted bool `json:"interrupted,omitempty"`
	// Retried counts runs needing more than one attempt; Attempts sums
	// attempts across completed runs.
	Retried  int `json:"retried,omitempty"`
	Attempts int `json:"attempts"`
	// Fault-injection totals across completed runs.
	FaultsInjected int `json:"faults_injected"`
	FlaggedErrors  int `json:"flagged_errors"`
	// Events and VirtualTime sum the per-run scheduler work.
	Events      uint64   `json:"events"`
	VirtualTime Duration `json:"virtual_time"`
	// GoodputMbps summarizes tcpbulk goodput across runs that moved
	// data; RTTNanos summarizes udpecho mean round-trip times (ns).
	GoodputMbps *Distribution `json:"goodput_mbps,omitempty"`
	RTTNanos    *Distribution `json:"rtt_ns,omitempty"`
	// MetricsTotals rolls up every run's counter totals ("layer/name").
	MetricsTotals map[string]float64 `json:"metrics_totals,omitempty"`
}

// WriteJSON writes the summary as indented JSON. Map keys marshal
// sorted, so output is deterministic.
func (s *Summary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Text renders a compact human-readable summary.
func (s *Summary) Text() string {
	var b strings.Builder
	name := s.Name
	if name == "" {
		name = "campaign"
	}
	fmt.Fprintf(&b, "%s (seed %d): %d/%d runs completed", name, s.Seed, s.Completed, s.Runs)
	if s.Interrupted {
		b.WriteString(" [interrupted]")
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "  outcomes: %d pass, %d fail", s.Passed, s.Failed)
	if s.LaunchFailed > 0 {
		fmt.Fprintf(&b, ", %d launch-failed", s.LaunchFailed)
	}
	if s.Timeouts > 0 {
		fmt.Fprintf(&b, ", %d timeout", s.Timeouts)
	}
	if s.Errored > 0 {
		fmt.Fprintf(&b, ", %d error", s.Errored)
	}
	if s.Canceled > 0 {
		fmt.Fprintf(&b, ", %d canceled", s.Canceled)
	}
	b.WriteString("\n")
	if s.Retried > 0 {
		fmt.Fprintf(&b, "  retries: %d runs retried (%d attempts total)\n", s.Retried, s.Attempts)
	}
	fmt.Fprintf(&b, "  faults injected: %d, flagged errors: %d\n", s.FaultsInjected, s.FlaggedErrors)
	fmt.Fprintf(&b, "  simulated: %v virtual time, %d events\n", time.Duration(s.VirtualTime), s.Events)
	if d := s.GoodputMbps; d != nil {
		fmt.Fprintf(&b, "  goodput Mbps: p50 %.3f, p90 %.3f, p99 %.3f (min %.3f, max %.3f, mean %.3f, n=%d)\n",
			d.P50, d.P90, d.P99, d.Min, d.Max, d.Mean, d.Count)
	}
	if d := s.RTTNanos; d != nil {
		fmt.Fprintf(&b, "  mean RTT: p50 %v, p90 %v, p99 %v (min %v, max %v, n=%d)\n",
			time.Duration(d.P50), time.Duration(d.P90), time.Duration(d.P99),
			time.Duration(d.Min), time.Duration(d.Max), d.Count)
	}
	if len(s.MetricsTotals) > 0 {
		keys := make([]string, 0, len(s.MetricsTotals))
		for k := range s.MetricsTotals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "  metric totals (%d counters):\n", len(keys))
		for _, k := range keys {
			fmt.Fprintf(&b, "    %-40s %g\n", k, s.MetricsTotals[k])
		}
	}
	return b.String()
}
