package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// scaleSpec is a scriptless host-group campaign over a multi-switch
// fabric: the topology-scale shape that has no NODE_TABLE at all.
func scaleSpec(hosts, seeds int) Spec {
	return Spec{
		Name:      "scale-matrix",
		Seed:      7,
		SeedCount: seeds,
		Hosts:     hosts,
		Horizon:   Duration(5 * time.Second),
		Configs: []ConfigOverride{{
			Label:      "star/compiled",
			Classifier: "compiled",
			Topology:   &TopologyOverride{Kind: "star", Switches: 3},
		}},
		Workloads: []WorkloadSpec{{
			Kind: "incast", Count: 8, Bytes: 4 << 10,
		}},
	}
}

// Scriptless host-group campaigns run, reuse worker testbeds across
// seeds, and stay deterministic across worker counts.
func TestHostGroupCampaign(t *testing.T) {
	spec := scaleSpec(24, 4)
	refSink, refSum := runToBytes(t, spec, 1)
	if got := bytes.Count(refSink, []byte("\n")); got != spec.Runs() {
		t.Fatalf("sink lines = %d, want %d", got, spec.Runs())
	}
	gotSink, gotSum := runToBytes(t, spec, 4)
	if !bytes.Equal(gotSink, refSink) {
		t.Error("JSONL with 4 workers differs from serial run")
	}
	if !bytes.Equal(gotSum, refSum) {
		t.Error("summary with 4 workers differs from serial run")
	}

	var sum Summary
	if err := json.Unmarshal(refSum, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Passed != spec.Runs() {
		t.Fatalf("passed %d/%d", sum.Passed, spec.Runs())
	}
	if sum.MetricsTotals["fabric/forwarded_frames"] <= 0 {
		t.Errorf("no fabric forwarding in rollup: %v", sum.MetricsTotals)
	}

	// Every incast completed: Received (completed transfers) == Sent
	// (senders) in each record.
	for _, line := range strings.Split(strings.TrimSpace(string(refSink)), "\n") {
		var rec RunRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Sent != 8 || rec.Received != 8 {
			t.Fatalf("record %d: %d/%d incast transfers completed", rec.Index, rec.Received, rec.Sent)
		}
		if rec.DeliveredBytes != 8*(4<<10) {
			t.Fatalf("record %d: delivered %d bytes", rec.Index, rec.DeliveredBytes)
		}
	}
}

// The classifier axis composes with scripted campaigns: linear and
// compiled strategies produce byte-identical records.
func TestClassifierAxisEquivalence(t *testing.T) {
	base := quickstartSpec(2, nil)
	mk := func(strategy string) Spec {
		s := base
		s.Configs = []ConfigOverride{{Classifier: strategy}}
		return s
	}
	linSink, _ := runToBytes(t, mk("linear"), 1)
	cmpSink, _ := runToBytes(t, mk("compiled"), 1)
	if !bytes.Equal(linSink, cmpSink) {
		t.Fatal("compiled classifier changed campaign records vs linear")
	}
}

// shardAxisSpec is a scriptless fabric campaign whose config label is
// pinned, so the emitted records carry no trace of the shard count: the
// JSONL stream and summary must come out byte-identical whichever
// engine ran them.
func shardAxisSpec(shards int) Spec {
	sh := shards
	return Spec{
		Name:      "shard-identity",
		Seed:      11,
		SeedCount: 3,
		Hosts:     24,
		Horizon:   Duration(5 * time.Second),
		Configs: []ConfigOverride{{
			Label:    "star4",
			Shards:   &sh,
			Topology: &TopologyOverride{Kind: "star", Switches: 4},
		}},
		Workloads: []WorkloadSpec{{Kind: "manyflow", Flows: 12, Bytes: 2 << 10}},
	}
}

// TestShardAxisIdentity extends the determinism guarantee through the
// campaign layer: the same matrix produces byte-identical JSONL and
// summary whether each run executes on the windowed engine at 1, 2 or
// 4 shards, and regardless of executor worker count.
func TestShardAxisIdentity(t *testing.T) {
	spec := shardAxisSpec(1)
	refSink, refSum := runToBytes(t, spec, 1)
	if got := bytes.Count(refSink, []byte("\n")); got != spec.Runs() {
		t.Fatalf("sink lines = %d, want %d", got, spec.Runs())
	}
	for _, shards := range []int{2, 4} {
		gotSink, gotSum := runToBytes(t, shardAxisSpec(shards), 1)
		if !bytes.Equal(gotSink, refSink) {
			t.Errorf("JSONL at %d shards differs from 1 shard", shards)
		}
		if !bytes.Equal(gotSum, refSum) {
			t.Errorf("summary at %d shards differs from 1 shard", shards)
		}
	}
	// Sharded runs under a parallel executor: the worker budget shrinks
	// but the bytes must not move.
	gotSink, gotSum := runToBytes(t, shardAxisSpec(4), 4)
	if !bytes.Equal(gotSink, refSink) {
		t.Error("JSONL from 4 workers x 4 shards differs from serial")
	}
	if !bytes.Equal(gotSum, refSum) {
		t.Error("summary from 4 workers x 4 shards differs from serial")
	}

	var sum Summary
	if err := json.Unmarshal(refSum, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Passed != spec.Runs() {
		t.Fatalf("passed %d/%d", sum.Passed, spec.Runs())
	}
}

// Topology/classifier validation fails fast at expand time, before any
// run starts.
func TestScaleSpecValidation(t *testing.T) {
	bad := scaleSpec(24, 1)
	bad.Configs[0].Classifier = "warp"
	if _, err := Run(context.Background(), bad, Options{Workers: 1}); err == nil {
		t.Error("unknown classifier accepted")
	}
	bad = scaleSpec(24, 1)
	bad.Configs[0].Topology.Kind = "moebius"
	if _, err := Run(context.Background(), bad, Options{Workers: 1}); err == nil {
		t.Error("unknown topology kind accepted")
	}
	bad = scaleSpec(24, 1)
	bad.Hosts = 0
	if _, err := Run(context.Background(), bad, Options{Workers: 1}); err == nil {
		t.Error("scriptless spec with no hosts accepted")
	}
	bad = scaleSpec(24, 1)
	bad.Workloads[0].Kind = "stampede"
	if _, err := Run(context.Background(), bad, Options{Workers: 1}); err == nil {
		t.Error("unknown workload kind accepted")
	}
}
